// Command matrix-bench regenerates every table and figure in the paper's
// evaluation (§4) and runs the named workload scenarios. Each experiment
// prints the same rows/series the paper reports (the index in
// internal/experiments maps ids to figures). Multi-run experiments and
// scenario sweeps execute concurrently on the sweep engine (bounded by
// -workers).
//
// Usage:
//
//	matrix-bench -list
//	matrix-bench -exp all
//	matrix-bench -exp fig2a,fig2b -seed 7
//	matrix-bench -exp scenarios -scenario flashcrowd,lossy -workers 4
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"matrix/internal/experiments"
	"matrix/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "matrix-bench:", err)
		os.Exit(1)
	}
}

var order = []string{"fig2a", "fig2b", "staticvs", "microswitch", "micromc", "microtraffic", "userstudy", "asymptotic", "degraded", "scenarios"}

func run(args []string) error {
	fs := flag.NewFlagSet("matrix-bench", flag.ContinueOnError)
	expFlag := fs.String("exp", "all", "experiments to run: all or a comma list of "+strings.Join(order, ","))
	seed := fs.Int64("seed", 1, "random seed")
	workers := fs.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS)")
	scenarioFlag := fs.String("scenario", "all", "scenarios for -exp scenarios: all or a comma list of "+strings.Join(experiments.ScenarioNames(), ","))
	listFlag := fs.Bool("list", false, "print the scenario table (name + description) and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *listFlag {
		for _, sc := range experiments.Scenarios() {
			fmt.Printf("%-14s %s\n", sc.Name, sc.Title)
		}
		return nil
	}

	// Ctrl-C cancels in-flight sweeps mid-run instead of between runs.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	runner := experiments.Runner{Workers: *workers}

	want := map[string]bool{}
	if *expFlag == "all" {
		for _, e := range order {
			want[e] = true
		}
	} else {
		for _, e := range strings.Split(*expFlag, ",") {
			e = strings.TrimSpace(e)
			if e == "" {
				continue
			}
			found := false
			for _, known := range order {
				if e == known {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("unknown experiment %q (known: %s)", e, strings.Join(order, ","))
			}
			want[e] = true
		}
	}

	var scenarios []string
	if *scenarioFlag != "all" {
		for _, s := range strings.Split(*scenarioFlag, ",") {
			if s = strings.TrimSpace(s); s != "" {
				scenarios = append(scenarios, s)
			}
		}
	}

	// Figure 2's two panels come from one simulation run.
	var fig2 *sim.Result
	if want["fig2a"] || want["fig2b"] {
		fmt.Fprintln(os.Stderr, "running Figure 2 hotspot scenario (300 simulated seconds)...")
		res, err := experiments.RunFigure2(ctx, runner, *seed)
		if err != nil {
			return err
		}
		fig2 = res
	}
	for _, e := range order {
		if !want[e] {
			continue
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		switch e {
		case "fig2a":
			fmt.Print(experiments.Figure2a(fig2).String())
		case "fig2b":
			fmt.Print(experiments.Figure2b(fig2).String())
		case "staticvs":
			r, err := experiments.RunStaticVsMatrix(ctx, runner, *seed)
			if err != nil {
				return err
			}
			fmt.Print(r.String())
		case "microswitch":
			r, err := experiments.RunSwitchingMicro(ctx, runner, *seed)
			if err != nil {
				return err
			}
			fmt.Print(r.String())
		case "micromc":
			r, err := experiments.RunCoordinatorMicro(ctx)
			if err != nil {
				return err
			}
			fmt.Print(r.String())
		case "microtraffic":
			r, err := experiments.RunTrafficMicro(ctx, runner, *seed)
			if err != nil {
				return err
			}
			fmt.Print(r.String())
		case "userstudy":
			r, err := experiments.RunUserStudy(ctx, runner, *seed)
			if err != nil {
				return err
			}
			fmt.Print(r.String())
		case "asymptotic":
			fmt.Print(experiments.RunAsymptotic().String())
		case "degraded":
			r, err := experiments.RunDegradedStaticVsMatrix(ctx, runner, *seed)
			if err != nil {
				return err
			}
			fmt.Print(r.String())
		case "scenarios":
			r, err := experiments.RunScenarios(ctx, runner, *seed, scenarios...)
			if err != nil {
				return err
			}
			fmt.Print(r.String())
		}
		fmt.Println()
	}
	return nil
}
