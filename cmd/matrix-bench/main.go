// Command matrix-bench regenerates every table and figure in the paper's
// evaluation (§4) and runs the named workload scenarios. Each experiment
// prints the same rows/series the paper reports (the index in
// internal/experiments maps ids to figures). Multi-run experiments and
// scenario sweeps execute concurrently on the sweep engine (bounded by
// -workers).
//
// Usage:
//
//	matrix-bench -list
//	matrix-bench -exp all
//	matrix-bench -exp fig2a,fig2b -seed 7
//	matrix-bench -exp scenarios -scenario flashcrowd,lossy -workers 4
//	matrix-bench -trace out.json                   # Perfetto trace of flashcrowd
//	matrix-bench -record out/ -audit               # flight recording + decision audit
//	matrix-bench -bench-json BENCH.json            # machine-readable cost record
//	matrix-bench -bench-baseline BENCH.json        # regression gate vs committed record
package main

import (
	"bufio"
	"context"
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"matrix/internal/bench"
	"matrix/internal/experiments"
	"matrix/internal/flight"
	"matrix/internal/policy"
	"matrix/internal/sim"
	"matrix/internal/snapshot"
	"matrix/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "matrix-bench:", err)
		os.Exit(1)
	}
}

var order = []string{"fig2a", "fig2b", "staticvs", "microswitch", "micromc", "microtraffic", "userstudy", "asymptotic", "degraded", "recovery", "policy", "scenarios"}

func run(args []string) error {
	fs := flag.NewFlagSet("matrix-bench", flag.ContinueOnError)
	expFlag := fs.String("exp", "all", "experiments to run: all or a comma list of "+strings.Join(order, ","))
	seed := fs.Int64("seed", 1, "random seed")
	workers := fs.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS)")
	simWorkers := fs.Int("sim-workers", 0, "intra-sim tick worker pool per simulation (<=1 = serial; fingerprints are identical for any value)")
	scenarioFlag := fs.String("scenario", "all", "scenarios for -exp scenarios: all or a comma list of "+strings.Join(experiments.ScenarioNames(), ","))
	listFlag := fs.Bool("list", false, "print the scenario and policy tables (name + description) and exit")
	policyFlag := fs.String("policy", "", "decision policy for sweeps and single-run modes: "+strings.Join(policy.Names(), ", ")+" (empty = paper; -exp policy always runs all of them)")
	branchFlag := fs.Bool("branch", false, "share scenario-family warmups via snapshots in -exp scenarios (results identical to cold starts)")
	snapFile := fs.String("snapshot", "", "run one -scenario, snapshot its full state at -snapshot-at into this file, then finish the run")
	snapAt := fs.Float64("snapshot-at", 0, "virtual time (seconds) of the -snapshot capture (0 = half the scenario duration)")
	restoreFile := fs.String("restore", "", "restore a -snapshot file and finish its run (fingerprint matches the uninterrupted run)")
	traceFile := fs.String("trace", "", "run one -scenario (default flashcrowd) with the tracer attached and write Chrome trace JSON (Perfetto-loadable) to this file")
	recordDir := fs.String("record", "", "run one -scenario (default flashcrowd) with the flight recorder attached and write flight.csv, flight.json and audit.txt into this directory; combine with -trace to get the counter tracks and decision instants merged into the Perfetto trace")
	auditFlag := fs.Bool("audit", false, "with -record: also print the decision audit timeline on stdout")
	benchJSON := fs.String("bench-json", "", "measure the bench scenarios (-scenario, default flashcrowd,reclaimstress) and write the machine-readable record to this file")
	benchBaseline := fs.String("bench-baseline", "", "measure the bench scenarios and fail if tick cost regressed past -bench-threshold vs this committed record")
	benchRepeats := fs.Int("bench-repeats", 2, "full runs per bench scenario (the fastest wins)")
	benchThreshold := fs.Float64("bench-threshold", bench.DefaultThreshold, "relative ns/tick regression that fails -bench-baseline")
	pprofAddr := fs.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060) for CPU/heap profiling while experiments run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := servePprof(*pprofAddr); err != nil {
		return err
	}
	// An unknown -policy fails at parse time with the valid names listed,
	// netem.ParseSpec-style, before any simulation starts.
	if err := policy.Valid(*policyFlag); err != nil {
		return err
	}

	if *listFlag {
		fmt.Println("scenarios:")
		for _, sc := range experiments.Scenarios() {
			fmt.Printf("  %-14s %s\n", sc.Name, sc.Title)
		}
		fmt.Println("policies:")
		for _, name := range policy.Names() {
			fmt.Printf("  %-14s %s\n", name, policy.Describe(name))
		}
		return nil
	}

	// Ctrl-C cancels in-flight sweeps mid-run instead of between runs.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	runner := experiments.Runner{Workers: *workers, SimWorkers: *simWorkers, Policy: *policyFlag}

	if *restoreFile != "" {
		return runRestore(ctx, *restoreFile, *simWorkers, *policyFlag)
	}
	if *snapFile != "" {
		return runSnapshot(ctx, *snapFile, *snapAt, *scenarioFlag, *seed, *simWorkers, *policyFlag)
	}
	if *auditFlag && *recordDir == "" {
		return fmt.Errorf("-audit requires -record")
	}
	if *recordDir != "" {
		return runRecord(ctx, *recordDir, *auditFlag, *traceFile, *scenarioFlag, *seed, *simWorkers, *policyFlag)
	}
	if *traceFile != "" {
		return runTrace(ctx, *traceFile, *scenarioFlag, *seed, *simWorkers, *policyFlag)
	}
	if *benchJSON != "" || *benchBaseline != "" {
		return runBench(ctx, *benchJSON, *benchBaseline, *scenarioFlag, *seed, *simWorkers, *benchRepeats, *benchThreshold, *policyFlag)
	}

	want := map[string]bool{}
	if *expFlag == "all" {
		for _, e := range order {
			want[e] = true
		}
	} else {
		for _, e := range strings.Split(*expFlag, ",") {
			e = strings.TrimSpace(e)
			if e == "" {
				continue
			}
			found := false
			for _, known := range order {
				if e == known {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("unknown experiment %q (known: %s)", e, strings.Join(order, ","))
			}
			want[e] = true
		}
	}

	var scenarios []string
	if *scenarioFlag != "all" {
		for _, s := range strings.Split(*scenarioFlag, ",") {
			if s = strings.TrimSpace(s); s != "" {
				scenarios = append(scenarios, s)
			}
		}
	}

	// Figure 2's two panels come from one simulation run.
	var fig2 *sim.Result
	if want["fig2a"] || want["fig2b"] {
		fmt.Fprintln(os.Stderr, "running Figure 2 hotspot scenario (300 simulated seconds)...")
		res, err := experiments.RunFigure2(ctx, runner, *seed)
		if err != nil {
			return err
		}
		fig2 = res
	}
	for _, e := range order {
		if !want[e] {
			continue
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		switch e {
		case "fig2a":
			fmt.Print(experiments.Figure2a(fig2).String())
		case "fig2b":
			fmt.Print(experiments.Figure2b(fig2).String())
		case "staticvs":
			r, err := experiments.RunStaticVsMatrix(ctx, runner, *seed)
			if err != nil {
				return err
			}
			fmt.Print(r.String())
		case "microswitch":
			r, err := experiments.RunSwitchingMicro(ctx, runner, *seed)
			if err != nil {
				return err
			}
			fmt.Print(r.String())
		case "micromc":
			r, err := experiments.RunCoordinatorMicro(ctx)
			if err != nil {
				return err
			}
			fmt.Print(r.String())
		case "microtraffic":
			r, err := experiments.RunTrafficMicro(ctx, runner, *seed)
			if err != nil {
				return err
			}
			fmt.Print(r.String())
		case "userstudy":
			r, err := experiments.RunUserStudy(ctx, runner, *seed)
			if err != nil {
				return err
			}
			fmt.Print(r.String())
		case "asymptotic":
			fmt.Print(experiments.RunAsymptotic().String())
		case "degraded":
			r, err := experiments.RunDegradedStaticVsMatrix(ctx, runner, *seed)
			if err != nil {
				return err
			}
			fmt.Print(r.String())
		case "recovery":
			r, err := experiments.RunRecovery(ctx, runner, *seed)
			if err != nil {
				return err
			}
			fmt.Print(r.String())
		case "policy":
			fmt.Fprintln(os.Stderr, "running policy head-to-head (all policies x full scenario table, branched warmups)...")
			r, err := experiments.RunPolicyStudy(ctx, runner, *seed)
			if err != nil {
				return err
			}
			fmt.Print(r.String())
		case "scenarios":
			start := time.Now()
			run := experiments.RunScenarios
			if *branchFlag {
				run = experiments.RunScenariosBranched
			}
			r, err := run(ctx, runner, *seed, scenarios...)
			if err != nil {
				return err
			}
			fmt.Print(r.String())
			mode := "cold"
			if *branchFlag {
				mode = "branched"
			}
			fmt.Fprintf(os.Stderr, "scenario sweep (%s) took %.2fs\n", mode, time.Since(start).Seconds())
		}
		fmt.Println()
	}
	return nil
}

// runSnapshot runs one scenario, captures its complete state at the given
// virtual time into a file, then finishes the run and prints its
// fingerprint digest — the value a later -restore run must reproduce.
func runSnapshot(ctx context.Context, path string, at float64, scenarioFlag string, seed int64, simWorkers int, pol string) error {
	name := strings.TrimSpace(scenarioFlag)
	if name == "" || name == "all" || strings.Contains(name, ",") {
		return fmt.Errorf("-snapshot needs exactly one -scenario (have %q)", scenarioFlag)
	}
	sc, ok := experiments.ScenarioByName(name)
	if !ok {
		return fmt.Errorf("unknown scenario %q (known: %s)", name, strings.Join(experiments.ScenarioNames(), ","))
	}
	cfg := sc.Config(seed)
	cfg.SimWorkers = simWorkers
	cfg.Policy = pol
	// A capture point at or past the scenario's end would silently never
	// fire mid-run (the loop below finishes first and captures a trivial
	// end-state snapshot); a negative one is never reached. Fail fast and
	// name the valid range against the resolved duration instead.
	if at < 0 || at >= cfg.DurationSeconds {
		return fmt.Errorf("-snapshot-at %g is outside scenario %q, which runs %g simulated seconds; valid range is 0 < t < %g (0 picks the midpoint)",
			at, name, cfg.DurationSeconds, cfg.DurationSeconds)
	}
	if at == 0 {
		at = cfg.DurationSeconds / 2
	}
	s, err := sim.New(cfg)
	if err != nil {
		return err
	}
	if err := s.Start(); err != nil {
		return err
	}
	if err := stepAll(ctx, s, at); err != nil {
		return err
	}
	snap, err := snapshot.Capture(s)
	if err != nil {
		return err
	}
	if err := snapshot.WriteFile(path, snap); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "snapshot of %q at t=%.1fs written to %s\n", name, s.Now(), path)
	if err := stepAll(ctx, s, 0); err != nil {
		return err
	}
	printFingerprint(name, s.Finish())
	return nil
}

// stepAll drives s until done (or until the next tick would reach `until`,
// when positive), polling ctx so Ctrl-C cancels mid-run.
func stepAll(ctx context.Context, s *sim.Sim, until float64) error {
	for n := 0; !s.Done(); n++ {
		if until > 0 && s.NextTime() >= until {
			return nil
		}
		if n%50 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if err := s.Step(); err != nil {
			return err
		}
	}
	return nil
}

// runRestore loads a snapshot file, finishes the run, and prints the same
// fingerprint digest the capturing process printed — whatever -sim-workers
// either process ran with (snapshots never record a worker count). A
// -policy naming a different policy than the captured run swaps it in at
// the restore point (fresh policy state), so the digest then diverges by
// design.
func runRestore(ctx context.Context, path string, simWorkers int, pol string) error {
	snap, err := snapshot.ReadFile(path)
	if err != nil {
		return err
	}
	s, err := snapshot.RestoreWith(snap, sim.RestoreOptions{SimWorkers: simWorkers, Policy: pol})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "restored snapshot from %s at t=%.1fs\n", path, s.NextTime())
	if err := stepAll(ctx, s, 0); err != nil {
		return err
	}
	printFingerprint("restored", s.Finish())
	return nil
}

// servePprof exposes net/http/pprof on addr (empty = off). The profile
// handlers live on http.DefaultServeMux via the pprof import.
func servePprof(addr string) error {
	if addr == "" {
		return nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("pprof listen: %w", err)
	}
	fmt.Fprintf(os.Stderr, "pprof at http://%s/debug/pprof/\n", ln.Addr())
	go func() { _ = http.Serve(ln, nil) }()
	return nil
}

// oneScenario resolves the single scenario a mode needs, defaulting to
// def when the -scenario flag was left at "all".
func oneScenario(scenarioFlag, def string) (experiments.Scenario, error) {
	name := strings.TrimSpace(scenarioFlag)
	if name == "" || name == "all" {
		name = def
	}
	if strings.Contains(name, ",") {
		return experiments.Scenario{}, fmt.Errorf("this mode needs exactly one -scenario (have %q)", scenarioFlag)
	}
	sc, ok := experiments.ScenarioByName(name)
	if !ok {
		return experiments.Scenario{}, fmt.Errorf("unknown scenario %q (known: %s)", name, strings.Join(experiments.ScenarioNames(), ","))
	}
	return sc, nil
}

// runTrace runs one scenario with the tracer attached and writes the ring
// as Chrome trace JSON — load the file at https://ui.perfetto.dev. The
// traced run's fingerprint is identical to the untraced run's (tracing is
// observation only), so the digest printed here matches a plain run.
func runTrace(ctx context.Context, path, scenarioFlag string, seed int64, simWorkers int, pol string) error {
	sc, err := oneScenario(scenarioFlag, "flashcrowd")
	if err != nil {
		return err
	}
	cfg := sc.Config(seed)
	cfg.SimWorkers = simWorkers
	cfg.Policy = pol
	s, err := sim.New(cfg)
	if err != nil {
		return err
	}
	tr := trace.New(0)
	s.SetTracer(tr)
	if err := s.Start(); err != nil {
		return err
	}
	if err := stepAll(ctx, s, 0); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := tr.WriteJSON(w); err != nil {
		_ = f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "trace of %q: %d events (%d dropped by the ring) written to %s\n",
		sc.Name, tr.Len(), tr.Dropped(), path)
	printFingerprint(sc.Name, s.Finish())
	return nil
}

// runRecord runs one scenario with the flight recorder attached and writes
// the recording artifacts into dir: flight.csv (time series), flight.json
// (series + decision log, schema matrix-flight/1) and audit.txt (the
// human-readable decision timeline). Recording is observation only — the
// fingerprint printed here matches an unrecorded run, and the artifact
// bytes are identical for any -sim-workers value. When -trace is also set,
// the recording's counter tracks and decision instants are merged into the
// Perfetto trace before it is written.
func runRecord(ctx context.Context, dir string, audit bool, tracePath, scenarioFlag string, seed int64, simWorkers int, pol string) error {
	sc, err := oneScenario(scenarioFlag, "flashcrowd")
	if err != nil {
		return err
	}
	cfg := sc.Config(seed)
	cfg.SimWorkers = simWorkers
	cfg.Policy = pol
	s, err := sim.New(cfg)
	if err != nil {
		return err
	}
	rec := flight.New()
	s.SetRecorder(rec)
	var tr *trace.Tracer
	if tracePath != "" {
		tr = trace.New(0)
		s.SetTracer(tr)
	}
	if err := s.Start(); err != nil {
		return err
	}
	if err := stepAll(ctx, s, 0); err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	artifacts := []struct {
		name  string
		write func(io.Writer) error
	}{
		{"flight.csv", rec.WriteCSV},
		{"flight.json", rec.WriteJSON},
		{"audit.txt", rec.WriteTimeline},
	}
	for _, a := range artifacts {
		if err := writeArtifact(filepath.Join(dir, a.name), a.write); err != nil {
			return err
		}
	}
	if tr != nil {
		rec.MergeTrace(tr)
		if err := writeArtifact(tracePath, tr.WriteJSON); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trace of %q with flight counters merged written to %s\n", sc.Name, tracePath)
	}
	fmt.Fprintf(os.Stderr, "flight recording of %q: %d samples x %d series, %d decisions written to %s\n",
		sc.Name, rec.Rows(), len(rec.Columns()), len(rec.Decisions()), dir)
	if audit {
		if err := rec.WriteTimeline(os.Stdout); err != nil {
			return err
		}
	}
	printFingerprint(sc.Name, s.Finish())
	return nil
}

// writeArtifact creates path and streams write into it, surfacing close
// errors (a full disk shows up at close with buffered writers).
func writeArtifact(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// benchDefaults is the scenario set the bench gate measures when
// -scenario is left at "all": one split-heavy churn workload and one
// reclaim-thrashing workload bound the tick path from both sides.
var benchDefaults = []string{"flashcrowd", "reclaimstress"}

// runBench measures the bench scenario set, optionally writes the record
// (-bench-json) and optionally gates against a committed baseline
// (-bench-baseline), returning an error — a non-zero exit — on
// regression.
func runBench(ctx context.Context, jsonPath, baselinePath, scenarioFlag string, seed int64, simWorkers, repeats int, threshold float64, pol string) error {
	names := benchDefaults
	if s := strings.TrimSpace(scenarioFlag); s != "" && s != "all" {
		names = nil
		for _, n := range strings.Split(s, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	// Load the baseline before measuring anything: a missing or
	// wrong-schema file should fail in milliseconds, not minutes.
	var base *bench.File
	if baselinePath != "" {
		var err error
		if base, err = bench.ReadFile(baselinePath); err != nil {
			return err
		}
	}
	f := bench.NewFile()
	for _, name := range names {
		sc, ok := experiments.ScenarioByName(name)
		if !ok {
			return fmt.Errorf("unknown scenario %q (known: %s)", name, strings.Join(experiments.ScenarioNames(), ","))
		}
		cfg := sc.Config(seed)
		cfg.SimWorkers = simWorkers
		cfg.Policy = pol
		start := time.Now()
		m, err := bench.Run(ctx, cfg, repeats)
		if err != nil {
			return fmt.Errorf("bench %s: %w", name, err)
		}
		f.Scenarios[name] = m
		fmt.Fprintf(os.Stderr, "bench %s: %d ticks x%d runs in %.1fs\n", name, m.Ticks, repeats, time.Since(start).Seconds())
	}
	printBench(f)
	if jsonPath != "" {
		if err := bench.WriteFile(jsonPath, f); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "bench record written to %s\n", jsonPath)
	}
	if base != nil {
		if err := bench.Compare(base, f, threshold); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "bench gate passed vs %s (threshold %.0f%%)\n", baselinePath, threshold*100)
	}
	return nil
}

// printBench renders the measurement table on stdout.
func printBench(f *bench.File) {
	names := make([]string, 0, len(f.Scenarios))
	for name := range f.Scenarios {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("%-16s %12s %12s %12s %10s %10s\n", "scenario", "ns/tick", "allocs/tick", "ticks/sec", "p50 ms", "p95 ms")
	for _, name := range names {
		m := f.Scenarios[name]
		fmt.Printf("%-16s %12.0f %12.1f %12.0f %10.2f %10.2f\n",
			name, m.NsPerTick, m.AllocsPerTick, m.TicksPerSec, m.LatencyP50Ms, m.LatencyP95Ms)
	}
}

func printFingerprint(name string, res *sim.Result) {
	sum := sha256.Sum256([]byte(res.Fingerprint()))
	fmt.Printf("%s: peak=%d final=%d redirects=%d dropped=%d fingerprint sha256=%x\n",
		name, res.PeakServers, res.FinalServers, res.Redirects, res.DroppedPackets, sum)
}
