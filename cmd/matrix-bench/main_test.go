package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"matrix/internal/bench"
	"matrix/internal/policy"
	"matrix/internal/trace"
)

// TestTraceFlashcrowd is the tentpole acceptance test: `matrix-bench
// -trace out.json` (flashcrowd by default) must produce structurally
// valid Chrome trace JSON containing tick-phase slices and at least one
// cross-server packet span.
func TestTraceFlashcrowd(t *testing.T) {
	if testing.Short() {
		t.Skip("full flashcrowd run")
	}
	path := filepath.Join(t.TempDir(), "out.json")
	if err := run([]string{"-trace", path, "-sim-workers", "2"}); err != nil {
		t.Fatalf("run -trace: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.ValidateJSON(data); err != nil {
		t.Fatalf("trace not structurally valid: %v", err)
	}

	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			ID2  *struct {
				Global string `json:"global"`
			} `json:"id2"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	slices := map[string]bool{}
	spans := map[string]map[string]bool{}
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			slices[e.Name] = true
		case "b", "n", "e":
			if e.ID2 == nil {
				continue
			}
			m := spans[e.ID2.Global]
			if m == nil {
				m = map[string]bool{}
				spans[e.ID2.Global] = m
			}
			m[e.Name] = true
		}
	}
	for _, want := range []string{"tick", "phase-a", "phase-b", "server-process"} {
		if !slices[want] {
			t.Errorf("trace has no %q slice", want)
		}
	}
	cross := 0
	for _, names := range spans {
		if names["packet"] && names["peer-forward"] {
			cross++
		}
	}
	if cross == 0 {
		t.Errorf("no cross-server packet span in flashcrowd trace (%d spans)", len(spans))
	}
}

// TestRecordFlashcrowd covers the flight-recorder CLI path: `matrix-bench
// -record out/ -trace out.json` must write all three artifacts with their
// documented shapes and merge counter tracks into a still-valid Perfetto
// trace.
func TestRecordFlashcrowd(t *testing.T) {
	if testing.Short() {
		t.Skip("full flashcrowd run")
	}
	dir := t.TempDir()
	recDir := filepath.Join(dir, "rec")
	tracePath := filepath.Join(dir, "out.json")
	if err := run([]string{"-record", recDir, "-trace", tracePath, "-sim-workers", "2"}); err != nil {
		t.Fatalf("run -record: %v", err)
	}

	csvData, err := os.ReadFile(filepath.Join(recDir, "flight.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csvData), "tick,time,") {
		t.Errorf("flight.csv header = %q, want tick,time,... prefix", firstLine(csvData))
	}
	if !strings.Contains(firstLine(csvData), "servers/active") {
		t.Errorf("flight.csv header %q missing servers/active column", firstLine(csvData))
	}

	jsonData, err := os.ReadFile(filepath.Join(recDir, "flight.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema    string                   `json:"schema"`
		Rows      int                      `json:"rows"`
		Decisions []map[string]interface{} `json:"decisions"`
	}
	if err := json.Unmarshal(jsonData, &doc); err != nil {
		t.Fatalf("flight.json: %v", err)
	}
	if doc.Schema != "matrix-flight/1" {
		t.Errorf("flight.json schema = %q", doc.Schema)
	}
	if doc.Rows == 0 || len(doc.Decisions) == 0 {
		t.Errorf("flight.json empty: rows=%d decisions=%d", doc.Rows, len(doc.Decisions))
	}

	audit, err := os.ReadFile(filepath.Join(recDir, "audit.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(audit), "# decision audit:") {
		t.Errorf("audit.txt header = %q", firstLine(audit))
	}
	if !strings.Contains(string(audit), "split") {
		t.Error("audit.txt records no split decision for flashcrowd")
	}

	traceData, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.ValidateJSON(traceData); err != nil {
		t.Fatalf("merged trace not structurally valid: %v", err)
	}
	var tdoc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(traceData, &tdoc); err != nil {
		t.Fatal(err)
	}
	counters := map[string]bool{}
	for _, e := range tdoc.TraceEvents {
		if e.Ph == "C" {
			counters[e.Name] = true
		}
	}
	if !counters["servers/active"] || !counters["imbalance/cov-pct"] {
		t.Errorf("merged trace missing flight counter tracks (have %d counters)", len(counters))
	}
}

func firstLine(b []byte) string {
	s := string(b)
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// TestBenchJSONAndGate covers the bench record + gate CLI path with one
// real measurement: the record is schema-valid, and a generous synthetic
// baseline passes the gate in the same invocation.
func TestBenchJSONAndGate(t *testing.T) {
	if testing.Short() {
		t.Skip("full flashcrowd run")
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "bench.json")
	basePath := filepath.Join(dir, "base.json")
	base := bench.NewFile()
	base.Scenarios["flashcrowd"] = bench.Measurement{NsPerTick: 1e15} // nothing is slower than this
	if err := bench.WriteFile(basePath, base); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-bench-json", out, "-bench-baseline", basePath,
		"-bench-repeats", "1", "-scenario", "flashcrowd", "-sim-workers", "2"})
	if err != nil {
		t.Fatalf("bench run: %v", err)
	}
	f, err := bench.ReadFile(out)
	if err != nil {
		t.Fatalf("bench record unreadable: %v", err)
	}
	m, ok := f.Scenarios["flashcrowd"]
	if !ok || m.NsPerTick <= 0 || m.Ticks <= 0 || m.TicksPerSec <= 0 {
		t.Errorf("bench record implausible: %+v", f.Scenarios)
	}
}

// TestPolicyFlag table-tests the parse-time -policy validation: every
// registered name (and the empty default) is accepted, unknown names fail
// before any simulation starts and the error lists the valid names. The
// runs pair -policy with -list, which exits after printing the tables, so
// the accept cases stay milliseconds.
func TestPolicyFlag(t *testing.T) {
	type tc struct {
		name    string
		policy  string
		wantErr string
	}
	cases := []tc{
		{"empty means paper", "", ""},
		{"unknown name", "nope", "unknown policy"},
		{"near miss", "papers", "unknown policy"},
		{"case sensitive", "Paper", "unknown policy"},
	}
	for _, name := range policy.Names() {
		cases = append(cases, tc{"registered " + name, name, ""})
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := run([]string{"-list", "-policy", c.policy})
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("run -policy %q: %v", c.policy, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("run -policy %q: err = %v, want %q", c.policy, err, c.wantErr)
			}
			// The parse-time error names the valid choices, like the
			// netem/middleware spec parsers do.
			if !strings.Contains(err.Error(), "paper") {
				t.Errorf("error %v does not list the registered policies", err)
			}
		})
	}
}

// TestFlagValidation exercises the cheap error paths: bad scenario names
// and baselines must fail before any simulation runs.
func TestFlagValidation(t *testing.T) {
	if err := run([]string{"-trace", "/tmp/x.json", "-scenario", "nope"}); err == nil || !strings.Contains(err.Error(), "unknown scenario") {
		t.Errorf("-trace with unknown scenario: %v", err)
	}
	if err := run([]string{"-trace", "/tmp/x.json", "-scenario", "flashcrowd,lossy"}); err == nil || !strings.Contains(err.Error(), "exactly one") {
		t.Errorf("-trace with two scenarios: %v", err)
	}
	if err := run([]string{"-bench-baseline", "/does/not/exist.json"}); err == nil {
		t.Error("-bench-baseline with missing file succeeded")
	}
	badSchema := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(badSchema, []byte(`{"schema":"matrix-bench/99","scenarios":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-bench-baseline", badSchema}); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("-bench-baseline with wrong schema: %v", err)
	}
	if err := run([]string{"-bench-json", "/tmp/x.json", "-scenario", "nope"}); err == nil || !strings.Contains(err.Error(), "unknown scenario") {
		t.Errorf("-bench-json with unknown scenario: %v", err)
	}
	if err := run([]string{"-audit"}); err == nil || !strings.Contains(err.Error(), "-record") {
		t.Errorf("-audit without -record: %v", err)
	}
	if err := run([]string{"-record", "/tmp/rec", "-scenario", "nope"}); err == nil || !strings.Contains(err.Error(), "unknown scenario") {
		t.Errorf("-record with unknown scenario: %v", err)
	}
}
