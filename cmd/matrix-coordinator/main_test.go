package main

import (
	"strings"
	"testing"
)

// TestHealthFlagValidation pins the parse-time guards on the fleet-health
// and admin-drain knobs: a typo fails the invocation with a pointed error
// before the coordinator binds a listener or an admin dial goes out.
func TestHealthFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"negative-heartbeat", []string{"-heartbeat-every", "-1s"}, "-heartbeat-every must not be negative"},
		{"negative-misses", []string{"-heartbeat-every", "1s", "-lease-misses", "-2"}, "-lease-misses must not be negative"},
		{"misses-without-heartbeat", []string{"-lease-misses", "5"}, "-lease-misses requires -heartbeat-every"},
		{"negative-drain-target", []string{"-drain", "-7"}, "-drain wants a server id"},
		{"drain-exit-without-drain", []string{"-drain-exit"}, "-drain-exit requires -drain"},
		{"bad-world", []string{"-world", "circle"}, "invalid -world"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args)
			if err == nil {
				t.Fatalf("run(%v) accepted an invalid config", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("run(%v) error %q does not mention %q", tc.args, err, tc.want)
			}
		})
	}
}

// TestAdminDrainUnreachableCoordinator: admin mode with nobody listening
// fails on the dial, not with a hang or a panic.
func TestAdminDrainUnreachableCoordinator(t *testing.T) {
	err := run([]string{"-addr", "127.0.0.1:1", "-drain", "3"})
	if err == nil {
		t.Fatal("run(-drain 3) against a dead coordinator succeeded")
	}
	if strings.Contains(err.Error(), "denied") {
		t.Errorf("error %q should be a dial failure, not a drain verdict", err)
	}
}
