// Command matrix-coordinator runs a standalone Matrix Coordinator (MC) over
// TCP. Matrix servers (cmd/matrix-server) dial it to register; the MC owns
// the world partitioning and pushes overlap tables after every split or
// reclamation.
//
// Usage:
//
//	matrix-coordinator -addr :7000 -world 1000x1000
//	matrix-coordinator -addr :7000 -world 1000x1000 -static 4   # baseline
//	matrix-coordinator -addr :7000 -heartbeat-every 1s          # self-healing
//	matrix-coordinator -addr :7000 -drain 3                     # admin: drain server 3
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"matrix"
	"matrix/internal/id"
	"matrix/internal/logging"
	"matrix/internal/protocol"
	"matrix/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "matrix-coordinator:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("matrix-coordinator", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7000", "listen address for server registrations")
	world := fs.String("world", "1000x1000", "game world size WxH")
	staticN := fs.Int("static", 0, "run the static-partitioning baseline with N fixed servers (0 = adaptive Matrix)")
	decPolicy := fs.String("policy", "", "spare-selection/placement decision policy: "+strings.Join(matrix.PolicyNames(), ", ")+" (empty = paper)")
	statusEvery := fs.Duration("status", 10*time.Second, "status print interval (0 = silent)")
	metricsAddr := fs.String("metrics-addr", "", "serve Prometheus /metrics plus /healthz, /readyz and the /fleetz JSON snapshot on this address (empty = off)")
	traceAddr := fs.String("trace-addr", "", "serve the control-plane trace ring (correlation instants for split/adopt/drain fan-out) as /trace.json on this address (empty = tracing off)")
	pprofAddr := fs.String("pprof-addr", "", "serve net/http/pprof profiling endpoints on this address (empty = off)")
	logLevel := fs.String("log-level", "info", "minimum log level: "+logging.LevelNames)
	logJSON := fs.Bool("log-json", false, "emit one JSON object per log line instead of text")
	heartbeatEvery := fs.Duration("heartbeat-every", 0, "enable fleet health tracking: expire a server's lease after -lease-misses missed heartbeats at this cadence and re-home its regions onto warm spares (0 = off)")
	leaseMisses := fs.Int("lease-misses", 0, "consecutive missed heartbeats that kill a lease (0 = default 3; requires -heartbeat-every)")
	drainTarget := fs.Int("drain", 0, "admin mode: ask the running coordinator at -addr to drain server N, print the verdict and exit")
	drainExit := fs.Bool("drain-exit", false, "with -drain: retire server N from the fleet instead of returning it to the spare pool")
	if err := fs.Parse(args); err != nil {
		return err
	}

	level, err := logging.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	logger := logging.New(os.Stderr, level, *logJSON, slog.String("component", "mc"))

	// Health, drain and policy knobs fail at parse time, not mid-run.
	if err := matrix.ValidatePolicy(*decPolicy); err != nil {
		return err
	}
	if *heartbeatEvery < 0 {
		return fmt.Errorf("health: -heartbeat-every must not be negative (got %v)", *heartbeatEvery)
	}
	if *leaseMisses < 0 {
		return fmt.Errorf("health: -lease-misses must not be negative (got %d)", *leaseMisses)
	}
	if *leaseMisses > 0 && *heartbeatEvery == 0 {
		return fmt.Errorf("health: -lease-misses requires -heartbeat-every")
	}
	if *drainTarget < 0 {
		return fmt.Errorf("drain: -drain wants a server id (got %d)", *drainTarget)
	}
	if *drainExit && *drainTarget == 0 {
		return fmt.Errorf("drain: -drain-exit requires -drain")
	}
	if *drainTarget > 0 {
		return adminDrain(logger, *addr, id.ServerID(*drainTarget), *drainExit)
	}

	w, h, err := parseWorld(*world)
	if err != nil {
		return err
	}
	if err := servePprof(logger, *pprofAddr); err != nil {
		return err
	}
	opts := []matrix.Option{
		matrix.WithAddr(*addr),
		matrix.WithWorld(matrix.R(0, 0, w, h)),
		matrix.WithPolicy(*decPolicy),
		matrix.WithLogger(logging.Std(logger, slog.LevelInfo)),
	}
	if *staticN > 0 {
		tiles, err := matrix.StaticGrid(matrix.R(0, 0, w, h), *staticN)
		if err != nil {
			return err
		}
		opts = append(opts, matrix.WithStaticPartitions(tiles))
	}
	if *heartbeatEvery > 0 {
		opts = append(opts,
			matrix.WithHeartbeatEvery(*heartbeatEvery),
			matrix.WithLeaseMisses(*leaseMisses))
		logger.Info("health tracking leases", "every", *heartbeatEvery, "misses", *leaseMisses)
	}
	var tr *matrix.Tracer
	if *traceAddr != "" {
		tr = matrix.NewTracer(0)
		opts = append(opts, matrix.WithTracer(tr))
	}
	mc, err := matrix.ServeCoordinator(opts...)
	if err != nil {
		return err
	}
	defer mc.Close()
	logger.Info("coordinator listening", "addr", mc.Addr(),
		"world", fmt.Sprintf("%gx%g", w, h), "static", *staticN)
	if *metricsAddr != "" {
		bound, closer, err := mc.ServeMetrics(*metricsAddr)
		if err != nil {
			return err
		}
		defer closer.Close()
		logger.Info("metrics serving", "url", "http://"+bound+"/metrics")
		logger.Info("fleet snapshot serving", "url", "http://"+bound+"/fleetz")
	}
	if tr != nil {
		bound, closer, err := tr.Serve(*traceAddr)
		if err != nil {
			return err
		}
		defer closer.Close()
		logger.Info("trace ring serving", "url", "http://"+bound+"/trace.json")
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if *statusEvery <= 0 {
		<-stop
		return nil
	}
	ticker := time.NewTicker(*statusEvery)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return nil
		case <-ticker.C:
			parts := mc.Partitions()
			logger.Info("status", "active", len(parts),
				"splits", mc.Splits(), "reclaims", mc.Reclaims())
			if *heartbeatEvery > 0 {
				logger.Info("health", "deaths", mc.Deaths(), "adoptions", mc.Adoptions(),
					"drains", mc.Drains(), "parked", len(mc.Parked()))
			}
			for sid, bounds := range parts {
				logger.Info("partition", "server", sid.String(), "region", bounds.String())
			}
		}
	}
}

// servePprof exposes the net/http/pprof endpoints (registered on the
// default mux by the blank import) on their own listener, kept off the
// metrics address so profiling can be firewalled separately.
func servePprof(logger *slog.Logger, addr string) error {
	if addr == "" {
		return nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("pprof: %w", err)
	}
	go func() { _ = http.Serve(ln, nil) }()
	logger.Info("pprof serving", "url", "http://"+ln.Addr().String()+"/debug/pprof/")
	return nil
}

// adminDrain dials a running coordinator, opens with a DrainRequest naming
// the target server (instead of registering) and reports the verdict.
func adminDrain(logger *slog.Logger, addr string, target id.ServerID, exit bool) error {
	conn, err := transport.TCPNetwork{}.Dial(addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := conn.Send(&protocol.DrainRequest{Server: target, Exit: exit}); err != nil {
		return err
	}
	reply, err := conn.Recv()
	if err != nil {
		return fmt.Errorf("receive drain verdict: %w", err)
	}
	dr, ok := reply.(*protocol.DrainReply)
	if !ok {
		return fmt.Errorf("unexpected reply %v", reply.MsgType())
	}
	if !dr.Granted {
		return fmt.Errorf("drain of %v denied: %s", target, dr.Reason)
	}
	logger.Info("drain granted", "server", target.String(), "exit", exit)
	return nil
}

// parseWorld parses "WxH".
func parseWorld(s string) (w, h float64, err error) {
	parts := strings.SplitN(s, "x", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("invalid -world %q (want WxH)", s)
	}
	if _, err := fmt.Sscanf(parts[0], "%g", &w); err != nil {
		return 0, 0, fmt.Errorf("invalid world width %q", parts[0])
	}
	if _, err := fmt.Sscanf(parts[1], "%g", &h); err != nil {
		return 0, 0, fmt.Errorf("invalid world height %q", parts[1])
	}
	if w <= 0 || h <= 0 {
		return 0, 0, fmt.Errorf("world dimensions must be positive")
	}
	return w, h, nil
}
