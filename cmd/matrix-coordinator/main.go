// Command matrix-coordinator runs a standalone Matrix Coordinator (MC) over
// TCP. Matrix servers (cmd/matrix-server) dial it to register; the MC owns
// the world partitioning and pushes overlap tables after every split or
// reclamation.
//
// Usage:
//
//	matrix-coordinator -addr :7000 -world 1000x1000
//	matrix-coordinator -addr :7000 -world 1000x1000 -static 4   # baseline
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"matrix"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "matrix-coordinator:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("matrix-coordinator", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7000", "listen address for server registrations")
	world := fs.String("world", "1000x1000", "game world size WxH")
	staticN := fs.Int("static", 0, "run the static-partitioning baseline with N fixed servers (0 = adaptive Matrix)")
	statusEvery := fs.Duration("status", 10*time.Second, "status print interval (0 = silent)")
	metricsAddr := fs.String("metrics-addr", "", "serve a Prometheus /metrics endpoint on this address (empty = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	w, h, err := parseWorld(*world)
	if err != nil {
		return err
	}
	opts := []matrix.Option{
		matrix.WithAddr(*addr),
		matrix.WithWorld(matrix.R(0, 0, w, h)),
		matrix.WithLogger(log.New(os.Stderr, "mc ", log.LstdFlags)),
	}
	if *staticN > 0 {
		tiles, err := matrix.StaticGrid(matrix.R(0, 0, w, h), *staticN)
		if err != nil {
			return err
		}
		opts = append(opts, matrix.WithStaticPartitions(tiles))
	}
	mc, err := matrix.ServeCoordinator(opts...)
	if err != nil {
		return err
	}
	defer mc.Close()
	log.Printf("coordinator listening at %s (world %gx%g, static=%d)", mc.Addr(), w, h, *staticN)
	if *metricsAddr != "" {
		bound, closer, err := mc.ServeMetrics(*metricsAddr)
		if err != nil {
			return err
		}
		defer closer.Close()
		log.Printf("metrics: serving http://%s/metrics", bound)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if *statusEvery <= 0 {
		<-stop
		return nil
	}
	ticker := time.NewTicker(*statusEvery)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return nil
		case <-ticker.C:
			parts := mc.Partitions()
			log.Printf("status: %d active servers, %d splits, %d reclaims",
				len(parts), mc.Splits(), mc.Reclaims())
			for sid, bounds := range parts {
				log.Printf("  %v -> %v", sid, bounds)
			}
		}
	}
}

// parseWorld parses "WxH".
func parseWorld(s string) (w, h float64, err error) {
	parts := strings.SplitN(s, "x", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("invalid -world %q (want WxH)", s)
	}
	if _, err := fmt.Sscanf(parts[0], "%g", &w); err != nil {
		return 0, 0, fmt.Errorf("invalid world width %q", parts[0])
	}
	if _, err := fmt.Sscanf(parts[1], "%g", &h); err != nil {
		return 0, 0, fmt.Errorf("invalid world height %q", parts[1])
	}
	if w <= 0 || h <= 0 {
		return 0, 0, fmt.Errorf("world dimensions must be positive")
	}
	return w, h, nil
}
