// Command matrix-loadgen drives synthetic game clients against a live
// Matrix deployment: N clients join near a point, move and act according to
// a bundled game profile, and the tool reports the response-latency
// distribution and how many server switches Matrix performed — a live
// version of the paper's hotspot experiment.
//
// Usage:
//
//	matrix-loadgen -server 127.0.0.1:7101 -clients 100 -x 750 -y 250 -spread 60 -duration 30s
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"math"
	"math/rand"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"sort"
	"time"

	"matrix"
	"matrix/internal/game"
	"matrix/internal/gameclient"
	"matrix/internal/host"
	"matrix/internal/logging"
	"matrix/internal/netem"
	"matrix/internal/protocol"
	"matrix/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "matrix-loadgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("matrix-loadgen", flag.ContinueOnError)
	server := fs.String("server", "127.0.0.1:7101", "game server to join")
	clients := fs.Int("clients", 50, "number of clients")
	x := fs.Float64("x", 500, "join center X")
	y := fs.Float64("y", 500, "join center Y")
	spread := fs.Float64("spread", 100, "join spread radius")
	duration := fs.Duration("duration", 30*time.Second, "run duration")
	profileName := fs.String("profile", "bzflag", "workload profile: bzflag, daimonin, quake2")
	seed := fs.Int64("seed", 1, "random seed")
	worldFlag := fs.String("world", "1000x1000", "world size WxH (must match the coordinator)")
	netemSpec := fs.String("netem", "", "emulate a degraded network on every client connection, e.g. delay=40ms,jitter=25ms,loss=2% (empty = off)")
	netemSeed := fs.Int64("netem-seed", 0, "seed for the netem impairment streams (0 = derive from -seed)")
	pprofAddr := fs.String("pprof-addr", "", "serve net/http/pprof profiling endpoints on this address (empty = off)")
	logLevel := fs.String("log-level", "info", "minimum log level: "+logging.LevelNames)
	logJSON := fs.Bool("log-json", false, "emit one JSON object per log line instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}

	level, err := logging.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	logger := logging.New(os.Stderr, level, *logJSON, slog.String("component", "loadgen"))

	if *pprofAddr != "" {
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof: %w", err)
		}
		go func() { _ = http.Serve(ln, nil) }()
		logger.Info("pprof serving", "url", "http://"+ln.Addr().String()+"/debug/pprof/")
	}

	profile, ok := game.Profiles()[*profileName]
	if !ok {
		return fmt.Errorf("unknown profile %q", *profileName)
	}
	var w, h float64
	if _, err := fmt.Sscanf(*worldFlag, "%gx%g", &w, &h); err != nil {
		return fmt.Errorf("invalid -world %q", *worldFlag)
	}
	world := matrix.R(0, 0, w, h)

	link, err := netem.ParseSpec(*netemSpec)
	if err != nil {
		return err
	}
	if *netemSeed == 0 {
		*netemSeed = *seed
	}
	network := netem.WrapNetwork(transport.TCPNetwork{}, link, *netemSeed)
	if !link.Zero() {
		logger.Info("netem impairing client connections", "link", link.String())
	}

	rnd := rand.New(rand.NewSource(*seed))
	type agent struct {
		h     *host.ClientHost
		mover *game.Mover
	}
	agents := make([]agent, 0, *clients)
	for i := 0; i < *clients; i++ {
		ang := rnd.Float64() * 2 * math.Pi
		r := math.Sqrt(rnd.Float64()) * *spread
		pos := world.Clamp(matrix.Pt(*x+r*math.Cos(ang), *y+r*math.Sin(ang)))
		ch, err := host.DialClient(host.ClientConfig{
			Network:    network,
			ServerAddr: *server,
			Client:     gameclient.Config{ID: matrix.ClientID(i + 1), Pos: pos},
			Logger:     logging.Std(logger, slog.LevelDebug),
		})
		if err != nil {
			return fmt.Errorf("client %d: %w", i, err)
		}
		defer ch.Close()
		mover := game.NewMover(profile, world, *seed+int64(i)*7919)
		mover.Attract(matrix.Pt(*x, *y), *spread)
		agents = append(agents, agent{h: ch, mover: mover})
	}
	logger.Info("clients joined", "clients", len(agents),
		"x", *x, "y", *y, "spread", *spread, "duration", *duration, "profile", profile.Name)

	interval := time.Duration(float64(time.Second) / profile.UpdatesPerSec)
	deadline := time.Now().Add(*duration)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for time.Now().Before(deadline) {
		<-ticker.C
		for _, a := range agents {
			cl := a.h.Client()
			if !cl.Connected() {
				continue
			}
			var u *protocol.GameUpdate
			switch a.mover.PickKind() {
			case protocol.KindMove:
				u = cl.MakeMove(a.mover.Step(cl.Pos(), interval.Seconds()))
			case protocol.KindAction:
				u = cl.MakeAction(protocol.KindAction, a.mover.ActionTarget(cl.Pos()))
			default:
				u = cl.MakeAction(protocol.KindChat, cl.Pos())
			}
			if err := a.h.Send(u); err != nil {
				continue // redirect in flight; the next tick retries
			}
		}
	}

	// Report.
	var lats []float64
	var switches, echoes uint64
	for _, a := range agents {
		st := a.h.Client().Stats()
		switches += st.Switches
		echoes += st.EchoCount
		for _, d := range a.h.Client().Latencies() {
			lats = append(lats, float64(d)/float64(time.Millisecond))
		}
	}
	sort.Float64s(lats)
	q := func(p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		i := int(p*float64(len(lats))) - 1
		if i < 0 {
			i = 0
		}
		return lats[i]
	}
	fmt.Printf("echoes=%d switches=%d latency ms: p50=%.1f p95=%.1f p99=%.1f max=%.1f\n",
		echoes, switches, q(0.50), q(0.95), q(0.99), q(1.0))
	return nil
}
