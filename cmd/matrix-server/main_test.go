package main

import (
	"strings"
	"testing"
)

// TestMiddlewareFlagValidation pins the parse-time guards: malformed
// -middleware specs and nonsense knob values must fail the invocation
// with a pointed error before anything dials the coordinator.
func TestMiddlewareFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"unknown-stage", []string{"-middleware", "auth,teleport"}, `unknown stage "teleport"`},
		{"duplicate-stage", []string{"-middleware", "ratelimit,ratelimit"}, `duplicate stage "ratelimit"`},
		{"empty-element", []string{"-middleware", "auth,,audit"}, "bad spec element"},
		{"zero-rate", []string{"-middleware", "ratelimit", "-rate-limit", "0"}, "rate limit must be positive"},
		{"negative-rate", []string{"-middleware", "ratelimit", "-rate-limit", "-3"}, "rate limit must be positive"},
		{"nan-rate", []string{"-middleware", "ratelimit", "-rate-limit", "NaN"}, "rate limit must be positive"},
		{"zero-shed-queue", []string{"-middleware", "admission", "-shed-queue", "0"}, "shed queue must be positive"},
		{"negative-shed-queue", []string{"-middleware", "admission", "-shed-queue", "-1"}, "shed queue must be positive"},
		{"auth-without-secret", []string{"-middleware", "auth"}, "requires -auth-secret"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args)
			if err == nil {
				t.Fatalf("run(%v) accepted an invalid middleware config", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("run(%v) error %q does not mention %q", tc.args, err, tc.want)
			}
		})
	}
}

// TestDrainFlagValidation pins the parse-time guards on the graceful
// shutdown knobs.
func TestDrainFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"exit-without-drain", []string{"-drain-exit"}, "-drain-exit requires -drain"},
		{"zero-timeout", []string{"-drain", "-drain-timeout", "0s"}, "-drain-timeout must be positive"},
		{"negative-timeout", []string{"-drain", "-drain-timeout", "-5s"}, "-drain-timeout must be positive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args)
			if err == nil {
				t.Fatalf("run(%v) accepted an invalid drain config", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("run(%v) error %q does not mention %q", tc.args, err, tc.want)
			}
		})
	}
}

// TestDrainFlagValidationBeforeDial proves the drain guards fire before the
// coordinator dial: with an unreachable coordinator the flag error wins.
func TestDrainFlagValidationBeforeDial(t *testing.T) {
	args := []string{"-coordinator", "127.0.0.1:1", "-drain-exit"}
	err := run(args)
	if err == nil || !strings.Contains(err.Error(), "-drain-exit requires -drain") {
		t.Errorf("run(%v) = %v, want the flag error (not a dial error)", args, err)
	}
}

// TestMiddlewareFlagValidationBeforeDial proves the guards fire at parse
// time: with an unreachable coordinator, a valid chain spec fails on the
// dial while an invalid one fails on the spec — the spec error wins.
func TestMiddlewareFlagValidationBeforeDial(t *testing.T) {
	args := []string{"-coordinator", "127.0.0.1:1", "-middleware", "nonsense"}
	err := run(args)
	if err == nil || !strings.Contains(err.Error(), `unknown stage "nonsense"`) {
		t.Errorf("run(%v) = %v, want the spec error (not a dial error)", args, err)
	}
}
