// Command matrix-server runs one Matrix server with its co-located game
// server over TCP. It registers with the coordinator; the first registered
// server owns the whole world and later ones wait in the spare pool until a
// split assigns them a partition.
//
// Usage:
//
//	matrix-server -coordinator 127.0.0.1:7000 -addr :7101 -radius 40
//	matrix-server -coordinator 127.0.0.1:7000 -trace-addr :7171  # live trace ring
//	matrix-server -coordinator 127.0.0.1:7000 -log-json -log-level debug
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"matrix"
	"matrix/internal/logging"
	"matrix/internal/middleware"
	"matrix/internal/netem"
	"matrix/internal/protocol"
	"matrix/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "matrix-server:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("matrix-server", flag.ContinueOnError)
	mcAddr := fs.String("coordinator", "127.0.0.1:7000", "coordinator address")
	addr := fs.String("addr", "127.0.0.1:0", "listen address for clients and peers")
	radius := fs.Float64("radius", 40, "game visibility radius")
	overload := fs.Int("overload", 300, "client count that triggers a split")
	underload := fs.Int("underload", 150, "client count below which a child may be reclaimed")
	overloadQ := fs.Int("overload-queue", 0, "queue length that also triggers a split (0 = off)")
	decPolicy := fs.String("policy", "", "split/reclaim decision policy: "+strings.Join(matrix.PolicyNames(), ", ")+" (empty = paper)")
	serviceRate := fs.Int("service-rate", 500, "packets processed per tick")
	tick := fs.Duration("tick", 10*time.Millisecond, "game-server processing tick")
	statusEvery := fs.Duration("status", 10*time.Second, "status print interval (0 = silent)")
	netemSpec := fs.String("netem", "", "emulate a degraded network on every connection, e.g. delay=40ms,jitter=25ms,loss=2% (empty = off)")
	netemSeed := fs.Int64("netem-seed", 1, "seed for the netem impairment streams")
	mwSpec := fs.String("middleware", "", "wire-path interceptor stages in request order, e.g. auth,ratelimit,admission,audit (empty = off)")
	rateLimit := fs.Float64("rate-limit", 200, "per-client sustained updates/sec for the ratelimit stage (must be positive)")
	rateBurst := fs.Float64("rate-burst", 0, "token-bucket depth for the ratelimit stage (0 = 2x -rate-limit)")
	shedQueue := fs.Int("shed-queue", 5000, "queue length at which the admission stage sheds data-plane frames")
	authSecret := fs.String("auth-secret", "", "shared session token the auth stage requires on every hello")
	metricsAddr := fs.String("metrics-addr", "", "serve Prometheus /metrics plus /healthz and /readyz on this address (empty = off)")
	traceAddr := fs.String("trace-addr", "", "serve the live packet-path trace ring on this address: /trace.json (Perfetto) and /trace.txt (empty = off)")
	pprofAddr := fs.String("pprof-addr", "", "serve net/http/pprof profiling endpoints on this address (empty = off)")
	logLevel := fs.String("log-level", "info", "minimum log level: "+logging.LevelNames)
	logJSON := fs.Bool("log-json", false, "emit one JSON object per log line instead of text")
	dumpAddr := fs.String("dump", "", "dump mode: fetch a running matrix-server's state from this address (via a protocol snapshot frame) and exit")
	outFile := fs.String("o", "", "with -dump: write the snapshot blob here (default stdout)")
	restoreFile := fs.String("restore", "", "restore this node's state from a snapshot blob at startup (file produced by -dump)")
	snapshotFile := fs.String("snapshot-file", "", "periodically checkpoint this node's state to this file (atomic rename)")
	snapshotEvery := fs.Duration("snapshot-every", 30*time.Second, "checkpoint period for -snapshot-file")
	heartbeatEvery := fs.Duration("heartbeat-every", time.Second, "heartbeat cadence to the coordinator (negative = off; ignored by coordinators without -heartbeat-every)")
	checkpointEvery := fs.Duration("checkpoint-every", 10*time.Second, "ship a state checkpoint to the coordinator this often while owning a partition (negative = off)")
	drain := fs.Bool("drain", false, "on SIGINT/SIGTERM, drain via the coordinator — migrate the partition, redirect clients — before exiting")
	drainExit := fs.Bool("drain-exit", false, "with -drain: retire from the fleet instead of returning to the spare pool")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "with -drain: give up on a stuck drain after this long")
	if err := fs.Parse(args); err != nil {
		return err
	}

	level, err := logging.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	logger := logging.New(os.Stderr, level, *logJSON, slog.String("component", "server"))

	if *dumpAddr != "" {
		return dump(logger, *dumpAddr, *outFile)
	}

	// Drain knobs are validated at parse time too: a typo must not surface
	// only at the moment the operator tries to take the server down.
	if *drainExit && !*drain {
		return fmt.Errorf("drain: -drain-exit requires -drain")
	}
	if *drain && *drainTimeout <= 0 {
		return fmt.Errorf("drain: -drain-timeout must be positive (got %v)", *drainTimeout)
	}

	policy := matrix.DefaultLoadPolicy()
	policy.OverloadClients = *overload
	policy.UnderloadClients = *underload
	policy.OverloadQueue = *overloadQ
	// Like the netem and middleware specs, a mistyped -policy fails the
	// invocation at parse time instead of surfacing mid-run.
	if err := matrix.ValidatePolicy(*decPolicy); err != nil {
		return err
	}

	link, err := netem.ParseSpec(*netemSpec)
	if err != nil {
		return err
	}
	// Middleware knobs are validated here, at parse time, so a typo fails
	// the invocation instead of surfacing mid-run (netem.ParseSpec style).
	stages, err := matrix.ParseMiddlewareSpec(*mwSpec)
	if err != nil {
		return err
	}
	if err := middleware.ValidateRate(*rateLimit); err != nil {
		return err
	}
	if *shedQueue <= 0 {
		return fmt.Errorf("middleware: shed queue must be positive (got %d)", *shedQueue)
	}
	for _, s := range stages {
		if s == middleware.StageAuth && *authSecret == "" {
			return fmt.Errorf("middleware: stage %q requires -auth-secret", s)
		}
	}
	mw := matrix.HostMiddleware{
		Stages:          stages,
		AuthSecret:      *authSecret,
		RateLimitPerSec: *rateLimit,
		RateLimitBurst:  *rateBurst,
		ShedQueue:       *shedQueue,
	}
	network := netem.WrapNetwork(transport.TCPNetwork{}, link, *netemSeed)
	if !link.Zero() {
		logger.Info("netem impairing all connections", "spec", link.String(), "seed", *netemSeed)
	}

	if err := servePprof(logger, *pprofAddr); err != nil {
		return err
	}

	opts := []matrix.Option{
		matrix.WithNetwork(network),
		matrix.WithAddr(*addr),
		matrix.WithRadius(*radius),
		matrix.WithLoadPolicy(policy),
		matrix.WithPolicy(*decPolicy),
		matrix.WithServiceRate(*serviceRate),
		matrix.WithTickInterval(*tick),
		matrix.WithHeartbeatEvery(*heartbeatEvery),
		matrix.WithCheckpointEvery(*checkpointEvery),
		matrix.WithLogger(logging.Std(logger, slog.LevelInfo)),
	}
	var tr *matrix.Tracer
	if *traceAddr != "" {
		tr = matrix.NewTracer(0)
		opts = append(opts, matrix.WithTracer(tr))
	}
	if len(stages) > 0 {
		opts = append(opts, matrix.WithMiddleware(mw))
		logger.Info("middleware chain enabled", "stages", fmt.Sprint(stages),
			"rate_per_sec", *rateLimit, "burst", *rateBurst, "shed_queue", *shedQueue)
	}
	if *restoreFile != "" {
		blob, err := os.ReadFile(*restoreFile)
		if err != nil {
			return err
		}
		// Applied before the server serves: no join window a restore wipes.
		opts = append(opts, matrix.WithRestoreSnapshot(blob))
	}
	srv, err := matrix.StartServer(*mcAddr, opts...)
	if err != nil {
		return err
	}
	defer srv.Close()
	logger = logger.With("server", srv.ID().String())
	logger.Info("server listening", "addr", srv.Addr(), "region", srv.Bounds().String())
	if *metricsAddr != "" {
		bound, closer, err := srv.ServeMetrics(*metricsAddr)
		if err != nil {
			return err
		}
		defer closer.Close()
		logger.Info("metrics serving", "url", "http://"+bound+"/metrics")
	}
	if tr != nil {
		bound, closer, err := tr.Serve(*traceAddr)
		if err != nil {
			return err
		}
		defer closer.Close()
		logger.Info("trace ring serving", "url", "http://"+bound+"/trace.json")
	}
	if *restoreFile != "" {
		logger.Info("restored state", "file", *restoreFile,
			"active", srv.Active(), "region", srv.Bounds().String(), "clients", srv.ClientCount())
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	var statusC, snapC <-chan time.Time
	if *statusEvery > 0 {
		t := time.NewTicker(*statusEvery)
		defer t.Stop()
		statusC = t.C
	}
	if *snapshotFile != "" && *snapshotEvery > 0 {
		t := time.NewTicker(*snapshotEvery)
		defer t.Stop()
		snapC = t.C
	}
	for {
		select {
		case <-stop:
			if !*drain {
				return nil
			}
			logger.Info("drain evacuating", "exit", *drainExit, "timeout", *drainTimeout)
			if err := srv.Drain(*drainExit, *drainTimeout); err != nil {
				return fmt.Errorf("drain: %w", err)
			}
			logger.Info("drain complete, shutting down")
			return nil
		case <-statusC:
			logger.Info("status", "active", srv.Active(), "region", srv.Bounds().String(),
				"clients", srv.ClientCount(), "queue", srv.QueueLen())
		case <-snapC:
			if err := checkpoint(srv, *snapshotFile); err != nil {
				logger.Warn("checkpoint failed", "err", err)
			}
		}
	}
}

// servePprof exposes the net/http/pprof endpoints (registered on the
// default mux by the blank import) on their own listener, kept off the
// metrics address so profiling can be firewalled separately.
func servePprof(logger *slog.Logger, addr string) error {
	if addr == "" {
		return nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("pprof: %w", err)
	}
	go func() { _ = http.Serve(ln, nil) }()
	logger.Info("pprof serving", "url", "http://"+ln.Addr().String()+"/debug/pprof/")
	return nil
}

// checkpoint writes the node's state with an atomic rename, so a crash
// mid-write never corrupts the last good checkpoint.
func checkpoint(srv *matrix.Server, path string) error {
	blob, err := srv.Snapshot()
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// dump connects to a running matrix-server, requests its state via a
// protocol snapshot frame, and writes the blob.
func dump(logger *slog.Logger, addr, out string) error {
	conn, err := transport.TCPNetwork{}.Dial(addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := conn.Send(&protocol.SnapshotRequest{}); err != nil {
		return err
	}
	// The server streams the blob in chunks, the last one marked Final.
	var blob []byte
	for {
		reply, err := conn.Recv()
		if err != nil {
			return fmt.Errorf("receive snapshot: %w", err)
		}
		data, ok := reply.(*protocol.SnapshotData)
		if !ok {
			return fmt.Errorf("unexpected reply %v", reply.MsgType())
		}
		blob = append(blob, data.Blob...)
		if data.Final {
			break
		}
	}
	if out == "" {
		_, err = os.Stdout.Write(blob)
		return err
	}
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		return err
	}
	logger.Info("wrote snapshot", "bytes", len(blob), "from", addr, "to", out)
	return nil
}
