// Command matrix-server runs one Matrix server with its co-located game
// server over TCP. It registers with the coordinator; the first registered
// server owns the whole world and later ones wait in the spare pool until a
// split assigns them a partition.
//
// Usage:
//
//	matrix-server -coordinator 127.0.0.1:7000 -addr :7101 -radius 40
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"matrix"
	"matrix/internal/netem"
	"matrix/internal/transport"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "matrix-server:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("matrix-server", flag.ContinueOnError)
	mcAddr := fs.String("coordinator", "127.0.0.1:7000", "coordinator address")
	addr := fs.String("addr", "127.0.0.1:0", "listen address for clients and peers")
	radius := fs.Float64("radius", 40, "game visibility radius")
	overload := fs.Int("overload", 300, "client count that triggers a split")
	underload := fs.Int("underload", 150, "client count below which a child may be reclaimed")
	overloadQ := fs.Int("overload-queue", 0, "queue length that also triggers a split (0 = off)")
	serviceRate := fs.Int("service-rate", 500, "packets processed per tick")
	tick := fs.Duration("tick", 10*time.Millisecond, "game-server processing tick")
	statusEvery := fs.Duration("status", 10*time.Second, "status print interval (0 = silent)")
	netemSpec := fs.String("netem", "", "emulate a degraded network on every connection, e.g. delay=40ms,jitter=25ms,loss=2% (empty = off)")
	netemSeed := fs.Int64("netem-seed", 1, "seed for the netem impairment streams")
	if err := fs.Parse(args); err != nil {
		return err
	}

	policy := matrix.DefaultLoadPolicy()
	policy.OverloadClients = *overload
	policy.UnderloadClients = *underload
	policy.OverloadQueue = *overloadQ

	link, err := netem.ParseSpec(*netemSpec)
	if err != nil {
		return err
	}
	network := netem.WrapNetwork(transport.TCPNetwork{}, link, *netemSeed)
	if !link.Zero() {
		log.Printf("netem: impairing all connections with %s (seed %d)", link, *netemSeed)
	}

	srv, err := matrix.StartServer(*mcAddr,
		matrix.WithNetwork(network),
		matrix.WithAddr(*addr),
		matrix.WithRadius(*radius),
		matrix.WithLoadPolicy(policy),
		matrix.WithServiceRate(*serviceRate),
		matrix.WithTickInterval(*tick),
		matrix.WithLogger(log.New(os.Stderr, "server ", log.LstdFlags)),
	)
	if err != nil {
		return err
	}
	defer srv.Close()
	log.Printf("server %v listening at %s (bounds %v)", srv.ID(), srv.Addr(), srv.Bounds())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if *statusEvery <= 0 {
		<-stop
		return nil
	}
	ticker := time.NewTicker(*statusEvery)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return nil
		case <-ticker.C:
			log.Printf("status: active=%v bounds=%v clients=%d queue=%d",
				srv.Active(), srv.Bounds(), srv.ClientCount(), srv.QueueLen())
		}
	}
}
