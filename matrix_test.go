package matrix_test

import (
	"testing"
	"time"

	"matrix"
)

func TestPublicClusterLifecycle(t *testing.T) {
	nw := matrix.NewMemNetwork()
	mc, err := matrix.ServeCoordinator(
		matrix.WithNetwork(nw),
		matrix.WithWorld(matrix.R(0, 0, 500, 500)),
	)
	if err != nil {
		t.Fatalf("ServeCoordinator: %v", err)
	}
	defer mc.Close()

	srv, err := matrix.StartServer(mc.Addr(),
		matrix.WithNetwork(nw),
		matrix.WithRadius(30),
		matrix.WithTickInterval(2*time.Millisecond),
	)
	if err != nil {
		t.Fatalf("StartServer: %v", err)
	}
	defer srv.Close()
	if !srv.Active() {
		t.Fatal("first server must own the world")
	}
	if got := srv.Bounds(); !got.Eq(matrix.R(0, 0, 500, 500)) {
		t.Fatalf("bounds = %v", got)
	}
	if got := mc.ActiveServers(); len(got) != 1 || got[0] != srv.ID() {
		t.Fatalf("ActiveServers = %v", got)
	}

	cl, err := matrix.Dial(srv.Addr(), 1, matrix.Pt(100, 100), matrix.WithNetwork(nw))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	if cl.Server() != srv.ID() {
		t.Errorf("client server = %v", cl.Server())
	}
	if err := cl.Act(matrix.KindAction, matrix.Pt(101, 100)); err != nil {
		t.Fatalf("Act: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && cl.Stats().Echoes == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	if cl.Stats().Echoes == 0 {
		t.Fatal("no echo received through the public API")
	}
	if err := cl.Move(matrix.Pt(120, 120)); err != nil {
		t.Fatalf("Move: %v", err)
	}
	if len(cl.Latencies()) == 0 {
		t.Error("no latencies recorded")
	}
	if got := srv.ClientCount(); got != 1 {
		t.Errorf("ClientCount = %d", got)
	}
}

func TestPublicSimulation(t *testing.T) {
	world := matrix.R(0, 0, 1000, 1000)
	policy := matrix.DefaultLoadPolicy()
	policy.OverloadClients = 50
	policy.UnderloadClients = 25
	res, err := matrix.RunSimulation(matrix.SimulationConfig{
		Profile:         matrix.BzflagProfile(),
		World:           world,
		Seed:            1,
		DurationSeconds: 40,
		MaxServers:      4,
		BasePopulation:  20,
		LoadPolicy:      policy,
		Script: matrix.Script{
			{At: 5, Kind: matrix.EventJoin, Count: 100, Center: matrix.Pt(750, 250), Spread: 80, Tag: "hot"},
		},
	})
	if err != nil {
		t.Fatalf("RunSimulation: %v", err)
	}
	if res.PeakServers < 2 {
		t.Errorf("hotspot did not trigger splits: peak=%d", res.PeakServers)
	}
	if res.Latency.Count() == 0 {
		t.Error("no latency samples")
	}
}

func TestStaticGridPublic(t *testing.T) {
	tiles, err := matrix.StaticGrid(matrix.R(0, 0, 100, 100), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tiles) != 4 {
		t.Fatalf("tiles = %d", len(tiles))
	}
	if _, err := matrix.StaticGrid(matrix.Rect{}, 4); err == nil {
		t.Error("empty world must fail")
	}
}

func TestProfilesPublic(t *testing.T) {
	for _, p := range []matrix.Profile{matrix.BzflagProfile(), matrix.DaimoninProfile(), matrix.Quake2Profile()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	s := matrix.Figure2Script(matrix.R(0, 0, 1000, 1000))
	if err := s.Validate(); err != nil {
		t.Errorf("Figure2Script: %v", err)
	}
	if matrix.DefaultLoadPolicy().OverloadClients != 300 {
		t.Error("default policy must match the paper")
	}
}
