// Repository benchmarks: one testing.B benchmark per table and figure in
// the paper's evaluation (E1–E5, see internal/experiments), plus
// ablations for the design choices and microbenchmarks of the
// latency-critical primitives. docs/PERF.md records the allocation
// baseline the codec and envelope-path benchmarks are held to.
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks report their headline numbers as custom
// metrics, so `-bench` output doubles as the reproduction record.
package matrix_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"matrix"
	"matrix/internal/experiments"
	"matrix/internal/game"
	"matrix/internal/geom"
	"matrix/internal/id"
	"matrix/internal/load"
	"matrix/internal/overlap"
	"matrix/internal/protocol"
	"matrix/internal/sim"
	"matrix/internal/space"
)

// --- E1: Figure 2 ---

// fig2Result caches the Figure 2 run across the two panel benchmarks (the
// paper's two panels come from one experiment).
var fig2Result *sim.Result

func fig2(b *testing.B) *sim.Result {
	b.Helper()
	if fig2Result == nil {
		res, err := experiments.RunFigure2(context.Background(), experiments.Runner{}, 1)
		if err != nil {
			b.Fatal(err)
		}
		fig2Result = res
	}
	return fig2Result
}

// BenchmarkFigure2aHotspotClients regenerates Figure 2(a): clients per
// server over time under the 600-client hotspot.
func BenchmarkFigure2aHotspotClients(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := fig2(b)
		r := experiments.Figure2a(res)
		b.ReportMetric(r.Numbers["peak_servers"], "peak-servers")
		b.ReportMetric(r.Numbers["splits"], "splits")
		b.ReportMetric(r.Numbers["reclaims"], "reclaims")
		b.ReportMetric(r.Numbers["final_servers"], "final-servers")
		if i == 0 {
			b.Log("\n" + r.String())
		}
	}
}

// BenchmarkFigure2bQueueLengths regenerates Figure 2(b): receive-queue
// length per server over time for the same run.
func BenchmarkFigure2bQueueLengths(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := fig2(b)
		r := experiments.Figure2b(res)
		b.ReportMetric(r.Numbers["peak_queue"], "peak-queue")
		b.ReportMetric(r.Numbers["final_queue"], "final-queue")
		if i == 0 {
			b.Log("\n" + r.String())
		}
	}
}

// --- E2: static partitioning vs Matrix ---

// BenchmarkStaticVsMatrix regenerates the §4.2 comparison for all three
// games: static partitioning saturates and drops; Matrix deploys extra
// servers and recovers.
func BenchmarkStaticVsMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunStaticVsMatrix(context.Background(), experiments.Runner{}, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Numbers["bzflag/static/dropped"], "bzflag-static-drops")
		b.ReportMetric(r.Numbers["bzflag/matrix/dropped"], "bzflag-matrix-drops")
		b.ReportMetric(r.Numbers["bzflag/matrix/peak_servers"], "bzflag-matrix-servers")
		if i == 0 {
			b.Log("\n" + r.String())
		}
	}
}

// --- E3: microbenchmarks ---

// BenchmarkSwitchingLatency regenerates the client switching-latency
// microbenchmark (E3a).
func BenchmarkSwitchingLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunSwitchingMicro(context.Background(), experiments.Runner{}, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Numbers["mean_ms"], "mean-ms")
		b.ReportMetric(r.Numbers["p95_ms"], "p95-ms")
		b.ReportMetric(r.Numbers["switches"], "switches")
		if i == 0 {
			b.Log("\n" + r.String())
		}
	}
}

// BenchmarkCoordinatorOverhead regenerates the MC-overhead microbenchmark
// (E3b): overlap-table recompute cost vs fleet size.
func BenchmarkCoordinatorOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunCoordinatorMicro(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Numbers["ms_n128"], "ms-at-128-servers")
		if i == 0 {
			b.Log("\n" + r.String())
		}
	}
}

// BenchmarkOverlapTraffic regenerates the traffic-vs-overlap microbenchmark
// (E3c): inter-Matrix bytes track overlap-region size linearly.
func BenchmarkOverlapTraffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunTrafficMicro(context.Background(), experiments.Runner{}, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Numbers["fwd_packets_r10"], "fwd-pkts-r10")
		b.ReportMetric(r.Numbers["fwd_packets_r80"], "fwd-pkts-r80")
		if i == 0 {
			b.Log("\n" + r.String())
		}
	}
}

// --- E4: user-study proxy ---

// BenchmarkUserTransparency regenerates the user-study proxy: steady-state
// response latency with and without splits.
func BenchmarkUserTransparency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunUserStudy(context.Background(), experiments.Runner{}, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Numbers["quiet_p95"], "quiet-p95-ms")
		b.ReportMetric(r.Numbers["busy_p95"], "busy-p95-ms")
		b.ReportMetric(r.Numbers["busy_switches"], "switches")
		if i == 0 {
			b.Log("\n" + r.String())
		}
	}
}

// --- E5: asymptotic analysis ---

// BenchmarkAsymptoticModel regenerates the §4.2 scaling model sweep.
func BenchmarkAsymptoticModel(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunAsymptotic()
		last = r.Numbers["players_at_10k"]
		if i == 0 {
			b.Log("\n" + r.String())
		}
	}
	b.ReportMetric(last, "players-at-10k-servers")
}

// --- scenario sweep (shared scenario table) ---

// BenchmarkScenarioSweep runs every named workload scenario concurrently
// on the sweep engine and reports each scenario's headline numbers; it is
// also the wall-clock measure of the engine itself (one full sweep per
// iteration).
func BenchmarkScenarioSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunScenarios(context.Background(), experiments.Runner{}, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, name := range experiments.ScenarioNames() {
			b.ReportMetric(r.Numbers[name+"/peak_servers"], name+"-peak-servers")
		}
		if i == 0 {
			b.Log("\n" + r.String())
		}
	}
}

// BenchmarkScenarioSimWorkers measures the intra-sim tick engine: the two
// biggest single runs in the table (the surge family's shared warmup
// scenario and the crash-recovery scenario) at increasing
// Config.SimWorkers. Results are byte-identical across the sweep (the
// engine's contract); only the wall clock moves. docs/PERF.md records
// this table — regenerate with:
//
//	go test -bench ScenarioSimWorkers -benchtime 3x
func BenchmarkScenarioSimWorkers(b *testing.B) {
	if testing.Short() {
		b.Skip("8 full runs of the two heaviest scenarios; the CI smoke step only needs benchmarks to compile")
	}
	for _, name := range []string{"surge-drain", "recovery"} {
		sc, ok := experiments.ScenarioByName(name)
		if !ok {
			b.Fatalf("scenario %q missing from the table", name)
		}
		for _, w := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/sim-workers=%d", name, w), func(b *testing.B) {
				var peak float64
				for i := 0; i < b.N; i++ {
					cfg := sc.Config(1)
					cfg.SimWorkers = w
					s, err := sim.New(cfg)
					if err != nil {
						b.Fatal(err)
					}
					res, err := s.Run()
					if err != nil {
						b.Fatal(err)
					}
					peak = float64(res.PeakServers)
				}
				b.ReportMetric(peak, "peak-servers")
			})
		}
	}
}

// --- Ablations (design choices the paper leaves open) ---

// ablationConfig is a small hotspot scenario shared by the ablations.
func ablationConfig(seed int64) sim.Config {
	world := geom.R(0, 0, 1000, 1000)
	return sim.Config{
		Profile:         game.Bzflag(),
		World:           world,
		Seed:            seed,
		DurationSeconds: 90,
		MaxServers:      6,
		BasePopulation:  20,
		Script: game.Script{
			{At: 5, Kind: game.EventJoin, Count: 120, Center: geom.Pt(800, 300), Spread: 150, Tag: "hot"},
			{At: 40, Kind: game.EventLeave, Count: 120, Tag: "hot"},
		},
		LoadPolicy: load.Config{
			OverloadClients:  60,
			UnderloadClients: 30,
			SplitCooldown:    2 * time.Second,
			ReclaimDwell:     3 * time.Second,
			ReclaimHeadroom:  0.8,
		},
	}
}

// BenchmarkAblationReclaimDwell compares the paper-style dwell hysteresis
// against a near-zero dwell, counting topology churn (splits+reclaims): the
// "simple heuristics to prevent oscillations" at work.
func BenchmarkAblationReclaimDwell(b *testing.B) {
	run := func(dwell time.Duration) float64 {
		cfg := ablationConfig(3)
		cfg.LoadPolicy.ReclaimDwell = dwell
		s, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			b.Fatal(err)
		}
		return float64(len(res.Events))
	}
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = run(3 * time.Second)
		without = run(time.Millisecond)
	}
	b.ReportMetric(with, "events-with-dwell")
	b.ReportMetric(without, "events-no-dwell")
}

// BenchmarkAblationSplitPolicy compares split-to-left against the mirror
// split-to-right on identical load: both are load-oblivious, showing the
// paper's "though simple, this algorithm still provides good performance"
// is not sensitive to the handedness choice.
func BenchmarkAblationSplitPolicy(b *testing.B) {
	run := func(policy space.SplitPolicy) (float64, float64) {
		m, err := space.NewMap(geom.R(0, 0, 1024, 1024), 1)
		if err != nil {
			b.Fatal(err)
		}
		var gen id.Generator
		gen.NextServer()
		live := []id.ServerID{1}
		for i := 0; len(live) < 64; i++ {
			// Deterministic round-robin victim selection.
			victim := live[(i*7+3)%len(live)]
			child := gen.NextServer()
			if _, _, err := m.Split(victim, child, policy); err != nil {
				b.Fatal(err)
			}
			live = append(live, child)
		}
		// Quality metrics: worst aspect ratio and overlap area at R=20.
		worstAspect := 1.0
		tables, err := overlap.BuildAll(m.Partitions(), 20, 1)
		if err != nil {
			b.Fatal(err)
		}
		var overlapArea float64
		for _, p := range m.Partitions() {
			a := p.Bounds.Width() / p.Bounds.Height()
			if a < 1 {
				a = 1 / a
			}
			if a > worstAspect {
				worstAspect = a
			}
			overlapArea += tables[p.Owner].OverlapArea()
		}
		return worstAspect, overlapArea
	}
	var la, ra float64
	for i := 0; i < b.N; i++ {
		la, _ = run(space.SplitToLeft{})
		ra, _ = run(space.SplitToRight{})
	}
	b.ReportMetric(la, "left-worst-aspect")
	b.ReportMetric(ra, "right-worst-aspect")
}

// --- primitive microbenchmarks (the O(1) and codec claims) ---

// BenchmarkTableLookup measures the fast-path consistency-set lookup the
// paper claims is O(1): the cost must stay flat as the fleet grows.
func BenchmarkTableLookup(b *testing.B) {
	for _, n := range []int{4, 16, 64, 256} {
		b.Run(fmt.Sprintf("servers-%d", n), func(b *testing.B) {
			m, err := space.NewMap(geom.R(0, 0, 4096, 4096), 1)
			if err != nil {
				b.Fatal(err)
			}
			var gen id.Generator
			gen.NextServer()
			live := []id.ServerID{1}
			for i := 0; len(live) < n; i++ {
				victim := live[(i*13+5)%len(live)]
				child := gen.NextServer()
				if _, _, err := m.Split(victim, child, space.SplitToLeft{}); err != nil {
					b.Fatal(err)
				}
				live = append(live, child)
			}
			tab, err := overlap.BuildTable(1, m.Partitions(), 25, 1)
			if err != nil {
				b.Fatal(err)
			}
			bounds := tab.Bounds()
			pts := make([]geom.Point, 64)
			for i := range pts {
				fx := float64(i%8) / 8
				fy := float64(i/8) / 8
				pts[i] = geom.Pt(bounds.MinX+fx*bounds.Width(), bounds.MinY+fy*bounds.Height())
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = tab.Lookup(pts[i%len(pts)])
			}
		})
	}
}

// BenchmarkCodecGameUpdate measures wire-codec throughput for the dominant
// packet type. The append-encode variant is the hot path the transports
// use: encoding into a reused buffer is allocation-free in steady state
// (docs/PERF.md records the baseline).
func BenchmarkCodecGameUpdate(b *testing.B) {
	u := &protocol.GameUpdate{
		Client: 42, Seq: 7, Kind: protocol.KindMove,
		Origin: geom.Pt(123.5, 456.25), Dest: geom.Pt(124, 457),
		SentUnix: 1234567890, Payload: make([]byte, 48),
	}
	b.Run("marshal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := protocol.Marshal(u); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("append-encode", func(b *testing.B) {
		b.ReportAllocs()
		buf := make([]byte, 0, 256)
		var err error
		for i := 0; i < b.N; i++ {
			if buf, err = protocol.AppendEncode(buf[:0], u); err != nil {
				b.Fatal(err)
			}
		}
	})
	frame, err := protocol.Marshal(u)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("unmarshal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := protocol.Unmarshal(frame); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCodecBatch measures the per-tick batch path: N forwards packed
// into one frame with a reused buffer, versus N individual marshals — the
// amortization the transports exploit via SendBatch.
func BenchmarkCodecBatch(b *testing.B) {
	const n = 32
	msgs := make([]protocol.Message, n)
	for i := range msgs {
		msgs[i] = &protocol.Forward{From: 1, Update: protocol.GameUpdate{
			Client: matrix.ClientID(i + 1), Seq: 7, Kind: protocol.KindMove,
			Origin: geom.Pt(123.5, 456.25), Dest: geom.Pt(124, 457),
			SentUnix: 1234567890, Payload: make([]byte, 48),
		}}
	}
	b.Run("per-message", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, m := range msgs {
				if _, err := protocol.Marshal(m); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batched", func(b *testing.B) {
		b.ReportAllocs()
		buf := make([]byte, 0, 8192)
		var ends []int
		for i := 0; i < b.N; i++ {
			out, e, err := protocol.AppendBatches(buf[:0], ends, msgs)
			if err != nil {
				b.Fatal(err)
			}
			buf, ends = out, e
		}
	})
}

// BenchmarkOverlapTableBuild measures the MC-side table construction that
// runs on every split/reclaim.
func BenchmarkOverlapTableBuild(b *testing.B) {
	m, err := space.NewMap(geom.R(0, 0, 4096, 4096), 1)
	if err != nil {
		b.Fatal(err)
	}
	var gen id.Generator
	gen.NextServer()
	live := []id.ServerID{1}
	for i := 0; len(live) < 32; i++ {
		victim := live[(i*13+5)%len(live)]
		child := gen.NextServer()
		if _, _, err := m.Split(victim, child, space.SplitToLeft{}); err != nil {
			b.Fatal(err)
		}
		live = append(live, child)
	}
	parts := m.Partitions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := overlap.BuildAll(parts, 25, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndSimTick measures whole-cluster simulation throughput
// (packets processed per wall second), characterizing the harness itself.
// Allocations are reported because the per-tick envelope path is pinned to
// a budget (docs/PERF.md): regressions show up here first.
func BenchmarkEndToEndSimTick(b *testing.B) {
	cfg := matrix.SimulationConfig{
		Profile:         matrix.BzflagProfile(),
		World:           matrix.R(0, 0, 1000, 1000),
		Seed:            1,
		DurationSeconds: 10,
		MaxServers:      2,
		BasePopulation:  100,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := matrix.RunSimulation(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
