// Correlation-ID observability. Every control frame a single coordinator
// decision fans out into — split replies, range updates, adoptions, drains
// and the client redirects they cause — carries the decision's correlation
// ID (see protocol.SplitReply.Corr). A host with a tracer attached emits one
// instant event per stamped frame it sends or receives, so one handoff can
// be followed coordinator→server→client across the per-process trace files
// by filtering on the "corr" arg.
package host

import (
	"matrix/internal/protocol"
	"matrix/internal/trace"
)

// Coordinator trace track layout: one process, control-plane events on one
// thread (the coordinator host has no tick loop).
const (
	coordTracePid     = 1
	coordTraceTidCtrl = 1
)

// corrInfo extracts a control frame's correlation ID together with the
// static instant-event name for its type; corr 0 means unstamped.
func corrInfo(m protocol.Message) (uint64, string) {
	switch v := m.(type) {
	case *protocol.SplitReply:
		return v.Corr, "corr/split-reply"
	case *protocol.RangeUpdate:
		return v.Corr, "corr/range-update"
	case *protocol.Redirect:
		return v.Corr, "corr/redirect"
	case *protocol.DrainRequest:
		return v.Corr, "corr/drain-request"
	case *protocol.Adopt:
		return v.Corr, "corr/adopt"
	}
	return 0, ""
}

// traceCorr emits one correlation instant on (pid, tid) when m is stamped.
// Callers guard on their tracer being non-nil.
func traceCorr(tr *trace.Tracer, pid, tid int32, m protocol.Message) {
	if corr, name := corrInfo(m); corr != 0 {
		tr.InstantArg(pid, tid, name, tr.Now(), "corr", int64(corr))
	}
}
