// Package host runs the Matrix state machines over real transports: the
// production deployment mode. A CoordinatorHost serves the MC; a ServerHost
// pairs one Matrix server with its co-located game server and pumps
// messages between the MC, peer servers and game clients; a ClientHost
// drives a game client through joins, updates and transparent redirects.
//
// The cmd/ binaries are thin wrappers around this package, and the same
// hosts run unchanged over the in-memory transport in integration tests.
package host

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync"
	"time"

	"matrix/internal/coordinator"
	"matrix/internal/id"
	"matrix/internal/metrics"
	"matrix/internal/protocol"
	"matrix/internal/trace"
	"matrix/internal/transport"
)

// Host errors.
var (
	ErrClosed      = errors.New("host: closed")
	ErrBadHello    = errors.New("host: connection did not start with a registration")
	ErrNotWelcomed = errors.New("host: server never sent a welcome")
)

// CoordinatorHost serves a Matrix Coordinator on a listener. Matrix servers
// connect, register, and then exchange control messages over the same
// connection.
type CoordinatorHost struct {
	mc     *coordinator.Coordinator
	ln     transport.Listener
	logger *log.Logger

	mu     sync.Mutex
	conns  map[id.ServerID]transport.Conn
	closed bool
	// tr, when non-nil, gets one instant event per correlation-stamped
	// control frame the host sends (see corr.go). Guarded by mu: SetTracer
	// may run while the lease loop is delivering.
	tr *trace.Tracer

	wg   sync.WaitGroup
	done chan struct{}
}

// ServeCoordinator starts an MC on addr (empty = transport default). When
// cfg enables health tracking (HeartbeatEvery > 0) the host also runs the
// lease loop that expires silent servers and re-homes their regions.
func ServeCoordinator(nw transport.Network, addr string, cfg coordinator.Config, logger *log.Logger) (*CoordinatorHost, error) {
	mc, err := coordinator.New(cfg)
	if err != nil {
		return nil, err
	}
	ln, err := nw.Listen(addr)
	if err != nil {
		return nil, err
	}
	if logger == nil {
		logger = log.New(logDiscard{}, "", 0)
	}
	h := &CoordinatorHost{
		mc:     mc,
		ln:     ln,
		logger: logger,
		conns:  make(map[id.ServerID]transport.Conn),
		done:   make(chan struct{}),
	}
	h.wg.Add(1)
	go h.acceptLoop()
	if cfg.HeartbeatEvery > 0 {
		h.wg.Add(1)
		go h.leaseLoop(cfg.HeartbeatEvery)
	}
	return h, nil
}

// leaseLoop drives the coordinator's failure detector: every heartbeat
// interval it expires overdue leases and delivers whatever remediation
// (adoptions, demotions) falls out.
func (h *CoordinatorHost) leaseLoop(every time.Duration) {
	defer h.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-h.done:
			return
		case <-t.C:
			h.deliver(h.mc.Tick())
		}
	}
}

// logDiscard is an io.Writer that drops everything (avoids importing
// io/ioutil just for tests).
type logDiscard struct{}

func (logDiscard) Write(p []byte) (int, error) { return len(p), nil }

// Addr returns the address servers should dial.
func (h *CoordinatorHost) Addr() string { return h.ln.Addr() }

// SetTracer attaches a tracer: every correlation-stamped control frame the
// host sends from now on gets an instant event, so a split/adopt/drain can
// be matched against the receiving server's trace by its corr value.
func (h *CoordinatorHost) SetTracer(tr *trace.Tracer) {
	h.mu.Lock()
	h.tr = tr
	h.mu.Unlock()
	if tr != nil {
		tr.NameProcess(coordTracePid, "coordinator")
		tr.NameThread(coordTracePid, coordTraceTidCtrl, "control")
	}
}

// ServeMetrics starts a Prometheus-format HTTP endpoint for the
// coordinator on addr — /metrics plus /healthz and /readyz — returning
// the bound address and a closer that stops the endpoint. Values are
// sampled at scrape time.
func (h *CoordinatorHost) ServeMetrics(addr string) (string, io.Closer, error) {
	return metrics.ServeMux(addr, h.writeMetrics, h.Ready, map[string]http.HandlerFunc{
		"/fleetz": h.serveFleetz,
	})
}

// serveFleetz renders the coordinator's operator snapshot — the region
// tree, per-server load and lease state, and the recent decision ring — as
// JSON (see coordinator.FleetSnapshot for the schema).
func (h *CoordinatorHost) serveFleetz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(h.mc.Fleet()); err != nil {
		h.logger.Printf("coordinator: /fleetz encode: %v", err)
	}
}

// Ready is the /readyz probe: nil until the host is closed. The listener
// accepting is the coordinator's only liveness dependency — it has no
// upstream of its own.
func (h *CoordinatorHost) Ready() error {
	h.mu.Lock()
	closed := h.closed
	h.mu.Unlock()
	if closed {
		return errors.New("host closed")
	}
	return nil
}

// writeMetrics renders one scrape.
func (h *CoordinatorHost) writeMetrics(w io.Writer) {
	h.mu.Lock()
	conns := len(h.conns)
	h.mu.Unlock()
	fmt.Fprintf(w, "# TYPE matrix_mc_server_conns gauge\nmatrix_mc_server_conns %d\n", conns)
	fmt.Fprintf(w, "# TYPE matrix_mc_active_servers gauge\nmatrix_mc_active_servers %d\n", len(h.mc.ActiveServers()))
	fmt.Fprintf(w, "# TYPE matrix_mc_spare_servers gauge\nmatrix_mc_spare_servers %d\n", h.mc.SpareCount())
	fmt.Fprintf(w, "# TYPE matrix_mc_splits_total counter\nmatrix_mc_splits_total %d\n", h.mc.Splits())
	fmt.Fprintf(w, "# TYPE matrix_mc_reclaims_total counter\nmatrix_mc_reclaims_total %d\n", h.mc.Reclaims())
	fmt.Fprintf(w, "# TYPE matrix_mc_deaths_total counter\nmatrix_mc_deaths_total %d\n", h.mc.Deaths())
	fmt.Fprintf(w, "# TYPE matrix_mc_adoptions_total counter\nmatrix_mc_adoptions_total %d\n", h.mc.Adoptions())
	fmt.Fprintf(w, "# TYPE matrix_mc_drains_total counter\nmatrix_mc_drains_total %d\n", h.mc.Drains())
	fmt.Fprintf(w, "# TYPE matrix_mc_parked_regions gauge\nmatrix_mc_parked_regions %d\n", len(h.mc.Parked()))
	metrics.WriteRuntime(w)
}

// AdminDrain asks the coordinator to drain target (operator action): its
// partition migrates to a spare or folds into its parent, and the fallout
// is delivered to the fleet. With exit the server is retired instead of
// returned to the spare pool. An admin connection that opens with a
// DrainRequest frame lands here too.
func (h *CoordinatorHost) AdminDrain(target id.ServerID, exit bool) error {
	envs, err := h.mc.Drain(target, exit)
	if err != nil {
		return err
	}
	h.logger.Printf("coordinator: admin drain of %v (exit=%v)", target, exit)
	h.deliver(envs)
	return nil
}

// MC exposes the underlying coordinator (status tooling).
func (h *CoordinatorHost) MC() *coordinator.Coordinator { return h.mc }

// Close shuts the host down and waits for its goroutines.
func (h *CoordinatorHost) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	close(h.done)
	conns := make([]transport.Conn, 0, len(h.conns))
	for _, c := range h.conns {
		conns = append(conns, c)
	}
	h.mu.Unlock()
	err := h.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	h.wg.Wait()
	return err
}

// acceptLoop admits server connections.
func (h *CoordinatorHost) acceptLoop() {
	defer h.wg.Done()
	for {
		conn, err := h.ln.Accept()
		if err != nil {
			return
		}
		h.wg.Add(1)
		go h.serveConn(conn)
	}
}

// serveConn performs the registration handshake then pumps control
// messages.
func (h *CoordinatorHost) serveConn(conn transport.Conn) {
	defer h.wg.Done()
	first, err := conn.Recv()
	if err != nil {
		_ = conn.Close()
		return
	}
	// An admin connection opens with a DrainRequest naming a target server
	// instead of registering: grant or deny, deliver the fallout to the
	// fleet, and close.
	if dr, isDrain := first.(*protocol.DrainRequest); isDrain {
		if err := h.AdminDrain(dr.Server, dr.Exit); err != nil {
			_ = conn.Send(&protocol.DrainReply{Granted: false, Reason: err.Error()})
		} else {
			_ = conn.Send(&protocol.DrainReply{Granted: true})
		}
		_ = conn.Close()
		return
	}
	req, ok := first.(*protocol.RegisterRequest)
	if !ok {
		h.logger.Printf("coordinator: %s: first message was %v", conn.RemoteAddr(), first.MsgType())
		_ = conn.Send(&protocol.ErrorMsg{Of: first.MsgType(), Reason: ErrBadHello.Error()})
		_ = conn.Close()
		return
	}
	reply, envs, err := h.mc.Register(req.Addr, req.Radius)
	if err != nil {
		_ = conn.Send(&protocol.ErrorMsg{Of: protocol.TypeRegisterRequest, Reason: err.Error()})
		_ = conn.Close()
		return
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		_ = conn.Close()
		return
	}
	h.conns[reply.Server] = conn
	h.mu.Unlock()
	if err := conn.Send(reply); err != nil {
		h.drop(reply.Server, conn)
		return
	}
	h.logger.Printf("coordinator: registered %v at %s", reply.Server, req.Addr)
	h.deliver(envs)

	for {
		m, err := conn.Recv()
		if err != nil {
			h.drop(reply.Server, conn)
			return
		}
		out, err := h.mc.HandleMessage(reply.Server, m)
		if err != nil {
			h.logger.Printf("coordinator: %v: %v", reply.Server, err)
		}
		h.deliver(out)
	}
}

// deliver sends envelopes to their registered connections.
func (h *CoordinatorHost) deliver(envs []coordinator.Envelope) {
	for _, e := range envs {
		h.mu.Lock()
		conn, ok := h.conns[e.To]
		tr := h.tr
		h.mu.Unlock()
		if tr != nil {
			// The decision's correlation ID leaves the coordinator here;
			// emitted even when the target connection is gone, so the trace
			// shows decisions whose fan-out never reached the fleet.
			traceCorr(tr, coordTracePid, coordTraceTidCtrl, e.Msg)
		}
		if !ok {
			h.logger.Printf("coordinator: no connection for %v (dropping %v)", e.To, e.Msg.MsgType())
			continue
		}
		if err := conn.Send(e.Msg); err != nil {
			h.drop(e.To, conn)
		}
	}
}

// drop forgets a dead server connection and, when health tracking is on,
// tells the coordinator so the lease expires immediately instead of after N
// missed beats. Remediation envelopes go straight back out to the fleet.
func (h *CoordinatorHost) drop(sid id.ServerID, conn transport.Conn) {
	_ = conn.Close()
	h.mu.Lock()
	current := h.conns[sid] == conn
	if current {
		delete(h.conns, sid)
	}
	closed := h.closed
	h.mu.Unlock()
	if current && !closed {
		h.logger.Printf("coordinator: connection to %v lost", sid)
		h.deliver(h.mc.HandleDisconnect(sid))
	}
}
