package host

import (
	"testing"
	"time"

	"matrix/internal/coordinator"
	"matrix/internal/gameclient"
	"matrix/internal/gameserver"
	"matrix/internal/geom"
	"matrix/internal/id"
	"matrix/internal/load"
	"matrix/internal/protocol"
	"matrix/internal/snapshot"
	"matrix/internal/transport"
)

// waitFor polls cond up to 10 seconds.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func startCluster(t *testing.T, nw transport.Network, servers int, policy load.Config) (*CoordinatorHost, []*ServerHost) {
	t.Helper()
	mc, err := ServeCoordinator(nw, "", coordinator.Config{World: geom.R(0, 0, 1000, 1000)}, nil)
	if err != nil {
		t.Fatalf("ServeCoordinator: %v", err)
	}
	t.Cleanup(func() { mc.Close() })
	hosts := make([]*ServerHost, 0, servers)
	for i := 0; i < servers; i++ {
		sh, err := StartServer(ServerConfig{
			Network:        nw,
			Coordinator:    mc.Addr(),
			Radius:         40,
			Load:           policy,
			TickInterval:   2 * time.Millisecond,
			ReportInterval: 50 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("StartServer %d: %v", i, err)
		}
		t.Cleanup(func() { sh.Close() })
		hosts = append(hosts, sh)
	}
	return mc, hosts
}

func TestClientJoinAndEcho(t *testing.T) {
	nw := transport.NewMemNetwork()
	_, hosts := startCluster(t, nw, 1, load.Config{})
	ch, err := DialClient(ClientConfig{
		Network:    nw,
		ServerAddr: hosts[0].Addr(),
		Client:     gameclient.Config{ID: 1, Pos: geom.Pt(100, 100)},
	})
	if err != nil {
		t.Fatalf("DialClient: %v", err)
	}
	defer ch.Close()
	if !ch.Client().Connected() {
		t.Fatal("client not connected after DialClient")
	}
	// Send an action; the echo must come back and record a latency.
	if err := ch.Send(ch.Client().MakeAction(protocol.KindAction, geom.Pt(101, 100))); err != nil {
		t.Fatalf("Send: %v", err)
	}
	waitFor(t, "echo", func() bool { return ch.Client().Stats().EchoCount >= 1 })
	if len(ch.Client().Latencies()) == 0 {
		t.Error("no latency recorded")
	}
}

func TestTwoClientsSeeEachOther(t *testing.T) {
	nw := transport.NewMemNetwork()
	_, hosts := startCluster(t, nw, 1, load.Config{})
	a, err := DialClient(ClientConfig{Network: nw, ServerAddr: hosts[0].Addr(),
		Client: gameclient.Config{ID: 1, Pos: geom.Pt(100, 100)}})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := DialClient(ClientConfig{Network: nw, ServerAddr: hosts[0].Addr(),
		Client: gameclient.Config{ID: 2, Pos: geom.Pt(110, 100)}})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.Send(a.Client().MakeAction(protocol.KindAction, geom.Pt(105, 100))); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "b sees a's action", func() bool { return b.Client().Stats().Received >= 1 })
}

// TestSplitRedirectsClientsTransparently drives enough clients into one
// half of the world to force a split, then checks the cluster state and
// that clients were transparently switched to the child server.
func TestSplitRedirectsClientsTransparently(t *testing.T) {
	nw := transport.NewMemNetwork()
	policy := load.Config{
		OverloadClients:  8,
		UnderloadClients: 4,
		SplitCooldown:    100 * time.Millisecond,
		ReclaimDwell:     time.Hour, // no reclaims during this test
		ReclaimHeadroom:  0.8,
	}
	mc, hosts := startCluster(t, nw, 2, policy)
	// 12 clients clustered in the LEFT half: the root splits and hands the
	// left half (with all these clients) to the spare.
	var clients []*ClientHost
	for i := 0; i < 12; i++ {
		ch, err := DialClient(ClientConfig{
			Network:    nw,
			ServerAddr: hosts[0].Addr(),
			Client:     gameclient.Config{ID: gameclientID(i + 1), Pos: geom.Pt(100+float64(i), 500)},
		})
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		defer ch.Close()
		clients = append(clients, ch)
	}
	waitFor(t, "split", func() bool { return mc.MC().Splits() >= 1 })
	waitFor(t, "clients migrate", func() bool {
		return hosts[1].Game().ClientCount() >= 12
	})
	// Clients must be reconnected (welcomed) at the child server.
	for i, ch := range clients {
		ch := ch
		waitFor(t, "client reconnected", func() bool { return ch.Client().Connected() })
		if got := ch.Client().Server(); got != hosts[1].ID() {
			t.Errorf("client %d on %v, want %v", i, got, hosts[1].ID())
		}
		if ch.Client().Stats().Switches == 0 {
			t.Errorf("client %d never switched", i)
		}
	}
	// The world must still be exactly tiled.
	if err := mc.MC().Validate(); err != nil {
		t.Errorf("MC invariants: %v", err)
	}
	// And traffic still flows after the migration.
	c := clients[0]
	before := c.Client().Stats().EchoCount
	if err := c.Send(c.Client().MakeAction(protocol.KindAction, geom.Pt(105, 500))); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "post-switch echo", func() bool { return c.Client().Stats().EchoCount > before })
}

// TestCrossBorderVisibilityOverTCP runs a two-server world over real TCP
// sockets and checks that an event near the boundary reaches a client on
// the other server — the end-to-end localized-consistency path.
func TestCrossBorderVisibilityOverTCP(t *testing.T) {
	nw := transport.TCPNetwork{}
	policy := load.Config{
		OverloadClients:  4,
		UnderloadClients: 1,
		SplitCooldown:    100 * time.Millisecond,
		ReclaimDwell:     time.Hour,
		ReclaimHeadroom:  0.8,
	}
	mc, hosts := startCluster(t, nw, 2, policy)
	// Fill the left half to force the split.
	var clients []*ClientHost
	for i := 0; i < 6; i++ {
		ch, err := DialClient(ClientConfig{
			Network:    nw,
			ServerAddr: hosts[0].Addr(),
			Client:     gameclient.Config{ID: gameclientID(i + 1), Pos: geom.Pt(480, 500)},
		})
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		defer ch.Close()
		clients = append(clients, ch)
	}
	waitFor(t, "split", func() bool { return mc.MC().Splits() >= 1 })
	// A fresh client just right of the boundary connects to the root.
	right, err := DialClient(ClientConfig{
		Network:    nw,
		ServerAddr: hosts[0].Addr(),
		Client:     gameclient.Config{ID: 99, Pos: geom.Pt(510, 500)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer right.Close()
	// Wait until the left-half clients have migrated to the child.
	waitFor(t, "migration", func() bool { return hosts[1].Game().ClientCount() >= 6 })
	left := clients[0]
	waitFor(t, "left reconnected", func() bool { return left.Client().Connected() })

	// An action at the boundary by a left-side client must reach the
	// right-side client across servers (origin 480 is within R=40 of 510).
	before := right.Client().Stats().Received
	if err := left.Send(left.Client().MakeAction(protocol.KindAction, geom.Pt(490, 500))); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "cross-border delivery", func() bool {
		return right.Client().Stats().Received > before
	})
}

// gameclientID keeps client-ID literals tidy in table setups.
func gameclientID(i int) id.ClientID { return id.ClientID(i) }

// TestSnapshotFrameDumpsNodeState pins the wire surface: any connection
// can request a server's full state with a SnapshotRequest frame, and the
// blob restores a game world into a fresh node.
func TestSnapshotFrameDumpsNodeState(t *testing.T) {
	nw := transport.NewMemNetwork()
	_, hosts := startCluster(t, nw, 1, load.Config{})

	// Put some world state on the server: two clients join and move.
	for i := 1; i <= 2; i++ {
		c, err := DialClient(ClientConfig{
			Network:    nw,
			ServerAddr: hosts[0].Addr(),
			Client:     gameclient.Config{ID: gameclientID(i), Pos: geom.Pt(float64(100*i), 200)},
		})
		if err != nil {
			t.Fatalf("dial client %d: %v", i, err)
		}
		t.Cleanup(func() { c.Close() })
	}
	waitFor(t, "clients joined", func() bool { return hosts[0].Game().ClientCount() == 2 })

	conn, err := nw.Dial(hosts[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(&protocol.SnapshotRequest{}); err != nil {
		t.Fatal(err)
	}
	var blob []byte
	for {
		reply, err := conn.Recv()
		if err != nil {
			t.Fatalf("receive snapshot reply: %v", err)
		}
		data, ok := reply.(*protocol.SnapshotData)
		if !ok {
			t.Fatalf("reply is %v, want snapshot-data", reply.MsgType())
		}
		blob = append(blob, data.Blob...)
		if data.Final {
			break
		}
	}
	node, err := snapshot.DecodeNode(blob)
	if err != nil {
		t.Fatalf("decode blob: %v", err)
	}
	if len(node.Game.Clients) != 2 {
		t.Errorf("blob carries %d clients, want 2", len(node.Game.Clients))
	}
	if node.Core.ID != hosts[0].ID() {
		t.Errorf("blob core ID = %v, want %v", node.Core.ID, hosts[0].ID())
	}

	// The blob restores a game world into a fresh game server (the live
	// -restore semantic: world state only, identity/bounds stay local).
	gs, err := gameserver.New(gameserver.Config{Server: 99, Bounds: geom.R(0, 0, 1000, 1000), Radius: 40})
	if err != nil {
		t.Fatal(err)
	}
	if err := snapshot.RestoreNodeGame(blob, gs); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if gs.ClientCount() != 2 {
		t.Errorf("restored game server holds %d clients, want 2", gs.ClientCount())
	}
}
