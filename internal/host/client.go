package host

import (
	"fmt"
	"log"
	"sync"
	"time"

	"matrix/internal/gameclient"
	"matrix/internal/protocol"
	"matrix/internal/transport"
)

// ClientConfig configures a hosted game client.
type ClientConfig struct {
	// Network supplies transports.
	Network transport.Network
	// ServerAddr is the initial game server to join.
	ServerAddr string
	// Client is the client state machine's configuration.
	Client gameclient.Config
	// AuthToken is the session credential stamped on every hello (initial
	// join and every redirect rejoin), verified by servers running the
	// middleware auth stage. Empty keeps hellos token-free.
	AuthToken string
	// WelcomeTimeout bounds the join handshake (default 5s).
	WelcomeTimeout time.Duration
	// FallbackAddrs lists additional game servers to try when the live
	// connection dies without a redirect (the owner crashed). The redial
	// loop cycles last-known-owner, ServerAddr, then these until one
	// accepts the hello; the hello-retry path on any live server then
	// routes the client to its real owner.
	FallbackAddrs []string
	// RedialEvery is the crash-reconnect retry cadence (default 200ms,
	// negative disables redialing entirely).
	RedialEvery time.Duration
	// Logger receives diagnostics (nil = silent).
	Logger *log.Logger
}

// ClientHost drives one game client over the network, transparently
// reconnecting on redirects (the player never notices Matrix).
type ClientHost struct {
	cfg ClientConfig
	cl  *gameclient.Client

	mu        sync.Mutex
	conn      transport.Conn
	closed    bool
	redialing bool // one crash-redial loop at a time

	welcomed chan struct{} // closed on first welcome
	once     sync.Once
	wg       sync.WaitGroup
}

// DialClient connects, joins, and starts the receive pump. It returns once
// the first welcome arrives (the client is in the game).
func DialClient(cfg ClientConfig) (*ClientHost, error) {
	if cfg.WelcomeTimeout <= 0 {
		cfg.WelcomeTimeout = 5 * time.Second
	}
	if cfg.RedialEvery == 0 {
		cfg.RedialEvery = 200 * time.Millisecond
	}
	if cfg.Logger == nil {
		cfg.Logger = log.New(logDiscard{}, "", 0)
	}
	cl, err := gameclient.New(cfg.Client)
	if err != nil {
		return nil, err
	}
	h := &ClientHost{cfg: cfg, cl: cl, welcomed: make(chan struct{})}
	if err := h.connect(cfg.ServerAddr); err != nil {
		return nil, err
	}
	select {
	case <-h.welcomed:
		return h, nil
	case <-time.After(cfg.WelcomeTimeout):
		_ = h.Close()
		return nil, ErrNotWelcomed
	}
}

// connect dials addr, sends the hello and starts the pump for that
// connection.
func (h *ClientHost) connect(addr string) error {
	conn, err := h.cfg.Network.Dial(addr)
	if err != nil {
		return fmt.Errorf("host: client dial %s: %w", addr, err)
	}
	hello := h.cl.Hello()
	hello.Token = h.cfg.AuthToken
	if err := conn.Send(hello); err != nil {
		_ = conn.Close()
		return err
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		_ = conn.Close()
		return ErrClosed
	}
	old := h.conn
	h.conn = conn
	h.mu.Unlock()
	if old != nil {
		_ = old.Close()
	}
	h.wg.Add(1)
	go h.recvLoop(conn)
	return nil
}

// recvLoop pumps one connection until it dies or is replaced. A connection
// that dies while still current (no redirect replaced it) means the server
// crashed under the client: the redial loop takes over.
func (h *ClientHost) recvLoop(conn transport.Conn) {
	defer h.wg.Done()
	for {
		m, err := conn.Recv()
		if err != nil {
			h.maybeRedial(conn)
			return
		}
		ev, err := h.cl.Handle(m)
		if err != nil {
			h.cfg.Logger.Printf("client %v: %v", h.cl.ID(), err)
			continue
		}
		switch ev {
		case gameclient.EventConnected:
			h.once.Do(func() { close(h.welcomed) })
		case gameclient.EventSwitchServer:
			// Transparent server switch: reconnect in the background so
			// this loop can drain and exit.
			addr := h.cl.ServerAddr()
			h.wg.Add(1)
			go func() {
				defer h.wg.Done()
				if err := h.connect(addr); err != nil && err != ErrClosed {
					h.cfg.Logger.Printf("client %v: reconnect %s: %v", h.cl.ID(), addr, err)
					// The redirect target is already gone too; fall back
					// to cycling every known address.
					h.startRedial()
				}
			}()
			return
		}
	}
}

// maybeRedial starts the crash-redial loop if dead is still the live
// connection — a redirect-replaced connection dying is routine, not a
// crash.
func (h *ClientHost) maybeRedial(dead transport.Conn) {
	h.mu.Lock()
	current := h.conn == dead && !h.closed
	h.mu.Unlock()
	if current {
		h.startRedial()
	}
}

// startRedial spawns at most one background redial loop. Only clients that
// made it into the game redial: a connection rejected at the hello (bad
// token, admission) surfaces as ErrNotWelcomed from DialClient instead of
// hammering the server with retries.
func (h *ClientHost) startRedial() {
	if h.cfg.RedialEvery <= 0 {
		return
	}
	select {
	case <-h.welcomed:
	default:
		return
	}
	h.mu.Lock()
	if h.closed || h.redialing {
		h.mu.Unlock()
		return
	}
	h.redialing = true
	h.mu.Unlock()
	h.cl.Disconnect()
	h.wg.Add(1)
	go h.redialLoop()
}

// redialLoop cycles candidate servers until one accepts the hello again:
// the last-known owner first (it may come back), then the original join
// address, then the configured fallbacks. Any live Matrix server welcomes
// the client and, via the hello-retry path, migrates it to the partition
// owner — so reaching *any* survivor is enough to converge.
func (h *ClientHost) redialLoop() {
	defer h.wg.Done()
	defer func() {
		h.mu.Lock()
		h.redialing = false
		h.mu.Unlock()
	}()
	for attempt := 0; ; attempt++ {
		h.mu.Lock()
		closed := h.closed
		h.mu.Unlock()
		if closed {
			return
		}
		var cands []string
		if a := h.cl.ServerAddr(); a != "" {
			cands = append(cands, a)
		}
		if h.cfg.ServerAddr != "" {
			cands = append(cands, h.cfg.ServerAddr)
		}
		cands = append(cands, h.cfg.FallbackAddrs...)
		if len(cands) == 0 {
			return
		}
		addr := cands[attempt%len(cands)]
		err := h.connect(addr)
		if err == nil {
			h.cfg.Logger.Printf("client %v: re-joined via %s", h.cl.ID(), addr)
			return
		}
		if err == ErrClosed {
			return
		}
		time.Sleep(h.cfg.RedialEvery)
	}
}

// Send transmits one update to the current game server.
func (h *ClientHost) Send(u *protocol.GameUpdate) error {
	h.mu.Lock()
	conn := h.conn
	closed := h.closed
	h.mu.Unlock()
	if closed || conn == nil {
		return ErrClosed
	}
	return conn.Send(u)
}

// Client exposes the client state machine (positions, latencies, stats).
func (h *ClientHost) Client() *gameclient.Client { return h.cl }

// Close disconnects and waits for the pumps.
func (h *ClientHost) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	conn := h.conn
	h.mu.Unlock()
	if conn != nil {
		_ = conn.Close()
	}
	h.wg.Wait()
	return nil
}
