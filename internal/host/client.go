package host

import (
	"fmt"
	"log"
	"sync"
	"time"

	"matrix/internal/gameclient"
	"matrix/internal/protocol"
	"matrix/internal/transport"
)

// ClientConfig configures a hosted game client.
type ClientConfig struct {
	// Network supplies transports.
	Network transport.Network
	// ServerAddr is the initial game server to join.
	ServerAddr string
	// Client is the client state machine's configuration.
	Client gameclient.Config
	// AuthToken is the session credential stamped on every hello (initial
	// join and every redirect rejoin), verified by servers running the
	// middleware auth stage. Empty keeps hellos token-free.
	AuthToken string
	// WelcomeTimeout bounds the join handshake (default 5s).
	WelcomeTimeout time.Duration
	// Logger receives diagnostics (nil = silent).
	Logger *log.Logger
}

// ClientHost drives one game client over the network, transparently
// reconnecting on redirects (the player never notices Matrix).
type ClientHost struct {
	cfg ClientConfig
	cl  *gameclient.Client

	mu     sync.Mutex
	conn   transport.Conn
	closed bool

	welcomed chan struct{} // closed on first welcome
	once     sync.Once
	wg       sync.WaitGroup
}

// DialClient connects, joins, and starts the receive pump. It returns once
// the first welcome arrives (the client is in the game).
func DialClient(cfg ClientConfig) (*ClientHost, error) {
	if cfg.WelcomeTimeout <= 0 {
		cfg.WelcomeTimeout = 5 * time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = log.New(logDiscard{}, "", 0)
	}
	cl, err := gameclient.New(cfg.Client)
	if err != nil {
		return nil, err
	}
	h := &ClientHost{cfg: cfg, cl: cl, welcomed: make(chan struct{})}
	if err := h.connect(cfg.ServerAddr); err != nil {
		return nil, err
	}
	select {
	case <-h.welcomed:
		return h, nil
	case <-time.After(cfg.WelcomeTimeout):
		_ = h.Close()
		return nil, ErrNotWelcomed
	}
}

// connect dials addr, sends the hello and starts the pump for that
// connection.
func (h *ClientHost) connect(addr string) error {
	conn, err := h.cfg.Network.Dial(addr)
	if err != nil {
		return fmt.Errorf("host: client dial %s: %w", addr, err)
	}
	hello := h.cl.Hello()
	hello.Token = h.cfg.AuthToken
	if err := conn.Send(hello); err != nil {
		_ = conn.Close()
		return err
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		_ = conn.Close()
		return ErrClosed
	}
	old := h.conn
	h.conn = conn
	h.mu.Unlock()
	if old != nil {
		_ = old.Close()
	}
	h.wg.Add(1)
	go h.recvLoop(conn)
	return nil
}

// recvLoop pumps one connection until it dies or is replaced.
func (h *ClientHost) recvLoop(conn transport.Conn) {
	defer h.wg.Done()
	for {
		m, err := conn.Recv()
		if err != nil {
			return
		}
		ev, err := h.cl.Handle(m)
		if err != nil {
			h.cfg.Logger.Printf("client %v: %v", h.cl.ID(), err)
			continue
		}
		switch ev {
		case gameclient.EventConnected:
			h.once.Do(func() { close(h.welcomed) })
		case gameclient.EventSwitchServer:
			// Transparent server switch: reconnect in the background so
			// this loop can drain and exit.
			addr := h.cl.ServerAddr()
			h.wg.Add(1)
			go func() {
				defer h.wg.Done()
				if err := h.connect(addr); err != nil && err != ErrClosed {
					h.cfg.Logger.Printf("client %v: reconnect %s: %v", h.cl.ID(), addr, err)
				}
			}()
			return
		}
	}
}

// Send transmits one update to the current game server.
func (h *ClientHost) Send(u *protocol.GameUpdate) error {
	h.mu.Lock()
	conn := h.conn
	closed := h.closed
	h.mu.Unlock()
	if closed || conn == nil {
		return ErrClosed
	}
	return conn.Send(u)
}

// Client exposes the client state machine (positions, latencies, stats).
func (h *ClientHost) Client() *gameclient.Client { return h.cl }

// Close disconnects and waits for the pumps.
func (h *ClientHost) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	conn := h.conn
	h.mu.Unlock()
	if conn != nil {
		_ = conn.Close()
	}
	h.wg.Wait()
	return nil
}
