package host

import (
	"errors"
	"fmt"
	"io"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"matrix/internal/core"
	"matrix/internal/gameserver"
	"matrix/internal/id"
	"matrix/internal/load"
	"matrix/internal/metrics"
	"matrix/internal/middleware"
	"matrix/internal/policy"
	"matrix/internal/protocol"
	"matrix/internal/scratch"
	"matrix/internal/snapshot"
	"matrix/internal/trace"
	"matrix/internal/transport"
)

// ServerConfig configures a combined Matrix server + game server host.
type ServerConfig struct {
	// Network supplies transports (TCP in production, MemNetwork in tests).
	Network transport.Network
	// Coordinator is the MC's dial address.
	Coordinator string
	// ListenAddr is where peers and game clients reach this server
	// (empty = transport default; the resolved address is registered with
	// the MC).
	ListenAddr string
	// Radius is the game's visibility radius.
	Radius float64
	// Load tunes the split/reclaim policy (zero value = paper defaults).
	Load load.Config
	// Policy names the decision policy (internal/policy) that judges this
	// server's splits and reclaims. Empty means the paper's rules.
	Policy string
	// TickInterval is the game-server processing cadence (default 10ms).
	TickInterval time.Duration
	// ServiceRate is the packets processed per tick (default 500).
	ServiceRate int
	// MaxQueue bounds the receive queue (0 = unbounded).
	MaxQueue int
	// ReportInterval is the load-report cadence (default 1s).
	ReportInterval time.Duration
	// Logger receives diagnostics (nil = silent).
	Logger *log.Logger
	// Restore, when non-nil, is a snapshot blob (see snapshot.MarshalNode)
	// whose game-world state — client avatars and map objects — this node
	// adopts before it starts serving, so no client can join into a window
	// that a later restore would wipe. Topology is not restored: the node
	// registers freshly and owns whatever the MC assigns.
	Restore []byte
	// Middleware configures the wire-path interceptor chain judging every
	// client and peer frame before it reaches the game server (zero value
	// = no chain).
	Middleware middleware.Config
	// PeerDialTimeout bounds the background dial of a peer connection
	// (default 3s). On failure the queued frames are dropped with a log
	// line; the tick loop never waits on connection establishment.
	PeerDialTimeout time.Duration
	// HeartbeatEvery is the lease-renewal cadence towards the MC (default
	// 1s, negative disables). A coordinator with health tracking off
	// ignores the beats, so the default is always safe.
	HeartbeatEvery time.Duration
	// CheckpointEvery is how often this node ships its full state to the
	// MC as the recovery blob a warm spare adopts after a crash (default
	// 10s, negative disables). Only partition owners ship; spares have
	// nothing to lose.
	CheckpointEvery time.Duration
	// Tracer, when non-nil, records tick-phase slices and packet-path
	// events into its ring (wall-clock microseconds since tracer creation)
	// and turns on the tick-phase histograms in /metrics. Nil — the default
	// — costs nothing on the frame path.
	Tracer *trace.Tracer
}

func (c ServerConfig) sanitized() ServerConfig {
	if c.TickInterval <= 0 {
		c.TickInterval = 10 * time.Millisecond
	}
	if c.PeerDialTimeout <= 0 {
		c.PeerDialTimeout = 3 * time.Second
	}
	if c.ServiceRate <= 0 {
		c.ServiceRate = 500
	}
	if c.ReportInterval <= 0 {
		c.ReportInterval = time.Second
	}
	if c.HeartbeatEvery == 0 {
		c.HeartbeatEvery = time.Second
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 10 * time.Second
	}
	if c.Logger == nil {
		c.Logger = log.New(logDiscard{}, "", 0)
	}
	return c
}

// ServerHost runs one Matrix server with its co-located game server over
// real transports.
type ServerHost struct {
	cfg    ServerConfig
	core   *core.Server
	gs     *gameserver.Server
	mcConn transport.Conn
	ln     transport.Listener

	mw      *middleware.Chain // nil when no chain is configured
	started time.Time         // epoch of the middleware clock

	// Observability: tr mirrors cfg.Tracer (nil = off); treg holds the
	// tick-phase histograms, populated only while tracing and reset on
	// every /metrics scrape so the raw-sample store stays bounded; mcDown
	// flips when the coordinator connection dies (readiness signal).
	tr     *trace.Tracer
	treg   *metrics.Registry
	mcDown atomic.Bool

	mu      sync.Mutex
	peers   map[string]transport.Conn // outbound, keyed by dial address
	dialing map[string][]protocol.Message
	inbound map[transport.Conn]bool // accepted peer connections
	clients map[id.ClientID]transport.Conn
	closed  bool

	// ingress is the single-writer funnel: mcLoop and the peer pumps park
	// core-bound messages here and tickLoop alone routes them, so every
	// frame to a peer connection leaves from the tick goroutine in batch
	// order — an MC-triggered state transfer can no longer interleave with
	// (or overtake flushing of) the tick's batched traffic.
	ingressMu    sync.Mutex
	ingress      []ingressMsg
	ingressSpare []ingressMsg

	// tickLoop-owned scratch (no locking): the per-tick envelope buffers
	// and the per-peer message batches flushed as one frame per peer per
	// tick. Map entries and their slices are reused across ticks.
	tickEnvs     scratch.Buf[gameserver.Envelope]
	tickCoreEnvs scratch.Buf[core.Envelope]
	tickBatch    map[string][]protocol.Message

	// Health state. adoptBuf/ticks/cpTick are tick-goroutine owned (Adopt
	// frames and the checkpoint ticker both run there).
	beatsPaused atomic.Bool // test hook: simulate a zombie (alive, silent)
	drainActive atomic.Bool // a drain grant arrived; drainWatch is running
	drainExit   atomic.Bool // the grant asked for exit instead of re-pooling
	drainReply  chan *protocol.DrainReply
	drained     chan struct{} // closed when the evacuation completes
	drainOnce   sync.Once
	adoptBuf    []byte        // accumulating chunked Adopt blob
	ticks       atomic.Uint64 // game ticks processed (atomic: /metrics reads it)
	// cpTick is the tick count when the last checkpoint shipped; atomic so
	// harnesses can watch checkpoint progress from outside the tick loop.
	cpTick atomic.Uint64

	wg   sync.WaitGroup
	done chan struct{}
}

// StartServer registers with the MC and brings the pumps up.
func StartServer(cfg ServerConfig) (*ServerHost, error) {
	cfg = cfg.sanitized()
	var mw *middleware.Chain
	if cfg.Middleware.Enabled() {
		var err error
		if mw, err = middleware.New(cfg.Middleware); err != nil {
			return nil, err
		}
	}
	ln, err := cfg.Network.Listen(cfg.ListenAddr)
	if err != nil {
		return nil, err
	}
	mcConn, err := cfg.Network.Dial(cfg.Coordinator)
	if err != nil {
		_ = ln.Close()
		return nil, fmt.Errorf("host: dial coordinator: %w", err)
	}
	if err := mcConn.Send(&protocol.RegisterRequest{Addr: ln.Addr(), Radius: cfg.Radius}); err != nil {
		_ = ln.Close()
		_ = mcConn.Close()
		return nil, err
	}
	first, err := mcConn.Recv()
	if err != nil {
		_ = ln.Close()
		_ = mcConn.Close()
		return nil, fmt.Errorf("host: registration reply: %w", err)
	}
	reply, ok := first.(*protocol.RegisterReply)
	if !ok {
		_ = ln.Close()
		_ = mcConn.Close()
		return nil, fmt.Errorf("host: unexpected registration reply %v", first.MsgType())
	}

	pol, err := policy.New(cfg.Policy)
	if err != nil {
		_ = ln.Close()
		_ = mcConn.Close()
		return nil, err
	}
	cs, err := core.NewServer(core.Config{Load: cfg.Load, Policy: pol}, reply, cfg.Radius)
	if err != nil {
		_ = ln.Close()
		_ = mcConn.Close()
		return nil, err
	}
	gs, err := gameserver.New(gameserver.Config{
		Server:       reply.Server,
		Bounds:       reply.Bounds,
		Radius:       cfg.Radius,
		MaxQueue:     cfg.MaxQueue,
		ResolveOwner: cs.ResolveOwner,
	})
	if err != nil {
		_ = ln.Close()
		_ = mcConn.Close()
		return nil, err
	}

	// Boot-time restore runs before any pump starts: no client can have
	// joined yet, so the adopted world can never wipe a live session.
	if cfg.Restore != nil {
		if err := snapshot.RestoreNodeGame(cfg.Restore, gs); err != nil {
			_ = ln.Close()
			_ = mcConn.Close()
			return nil, fmt.Errorf("host: restore snapshot: %w", err)
		}
	}

	h := &ServerHost{
		cfg:        cfg,
		core:       cs,
		gs:         gs,
		mcConn:     mcConn,
		ln:         ln,
		mw:         mw,
		tr:         cfg.Tracer,
		treg:       metrics.NewRegistry(),
		started:    time.Now(),
		peers:      make(map[string]transport.Conn),
		dialing:    make(map[string][]protocol.Message),
		inbound:    make(map[transport.Conn]bool),
		clients:    make(map[id.ClientID]transport.Conn),
		tickBatch:  make(map[string][]protocol.Message),
		drainReply: make(chan *protocol.DrainReply, 1),
		drained:    make(chan struct{}),
		done:       make(chan struct{}),
	}
	if h.tr != nil {
		h.tr.NameProcess(hostTracePid, cs.ID().String())
		h.tr.NameThread(hostTracePid, hostTraceTidTick, "tick")
		h.tr.NameThread(hostTracePid, hostTraceTidNet, "net")
	}
	h.wg.Add(3)
	go h.mcLoop()
	go h.acceptLoop()
	go h.tickLoop()
	cfg.Logger.Printf("server %v up at %s (bounds %v)", cs.ID(), ln.Addr(), cs.Bounds())
	return h, nil
}

// ID returns the Matrix server's identity.
func (h *ServerHost) ID() id.ServerID { return h.core.ID() }

// Addr returns the listener address.
func (h *ServerHost) Addr() string { return h.ln.Addr() }

// Core exposes the Matrix server (status tooling).
func (h *ServerHost) Core() *core.Server { return h.core }

// Game exposes the game server (status tooling).
func (h *ServerHost) Game() *gameserver.Server { return h.gs }

// Snapshot dumps this node's complete state (Matrix server + game server)
// as a versioned blob — the payload of a protocol SnapshotData stream.
func (h *ServerHost) Snapshot() ([]byte, error) {
	return snapshot.MarshalNode(h.core, h.gs)
}

// snapshotChunkSize keeps each SnapshotData frame comfortably under the
// codec's MaxFrameSize, so a heavily loaded node still dumps cleanly.
const snapshotChunkSize = 1 << 20

// sendSnapshotChunks streams a snapshot blob as SnapshotData frames, the
// last one marked Final.
func sendSnapshotChunks(conn transport.Conn, blob []byte) error {
	for start := 0; ; start += snapshotChunkSize {
		end := start + snapshotChunkSize
		if end > len(blob) {
			end = len(blob)
		}
		final := end == len(blob)
		if err := conn.Send(&protocol.SnapshotData{Blob: blob[start:end], Final: final}); err != nil {
			return err
		}
		if final {
			return nil
		}
	}
}

// RestoreSnapshot re-adopts the game-world state (client avatars and map
// objects) from a Snapshot blob. Topology is NOT restored: this host
// registered freshly with the MC and owns whatever range that produced —
// the live crash-recovery semantic (the world state survives the crash).
// Boot-time restores should use ServerConfig.Restore instead, which
// applies before the host serves: a live RestoreSnapshot replaces the
// world wholesale, dropping the avatar of any client that joined since
// the blob was captured (it stays connected and must rejoin).
func (h *ServerHost) RestoreSnapshot(blob []byte) error {
	return snapshot.RestoreNodeGame(blob, h.gs)
}

// Close stops the host and waits for its goroutines.
func (h *ServerHost) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	close(h.done)
	conns := make([]transport.Conn, 0, len(h.peers)+len(h.inbound)+len(h.clients)+1)
	conns = append(conns, h.mcConn)
	for _, c := range h.peers {
		conns = append(conns, c)
	}
	for c := range h.inbound {
		conns = append(conns, c)
	}
	for _, c := range h.clients {
		conns = append(conns, c)
	}
	h.mu.Unlock()
	err := h.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	h.wg.Wait()
	if h.mw != nil {
		h.mw.Close()
	}
	return err
}

// clockSeconds is the middleware clock: monotonic seconds since the host
// started.
func (h *ServerHost) clockSeconds() float64 { return time.Since(h.started).Seconds() }

// ServeMetrics starts a Prometheus-format HTTP endpoint for this host on
// addr — /metrics plus /healthz (liveness) and /readyz (readiness, see
// Ready) — returning the bound address and a closer that stops the
// endpoint. Gauges are sampled at scrape time; the middleware chain's
// counters are included when a chain is configured.
func (h *ServerHost) ServeMetrics(addr string) (string, io.Closer, error) {
	return metrics.ServeWith(addr, h.writeMetrics, h.Ready)
}

// writeMetrics renders one scrape. The tick-phase histograms (populated
// only while tracing) are reset after rendering so their raw-sample store
// is bounded by the scrape interval, not the process lifetime.
func (h *ServerHost) writeMetrics(w io.Writer) {
	rep := h.gs.LoadReport()
	fmt.Fprintf(w, "# TYPE matrix_server_clients gauge\nmatrix_server_clients %d\n", rep.Clients)
	fmt.Fprintf(w, "# TYPE matrix_server_queue_len gauge\nmatrix_server_queue_len %d\n", rep.QueueLen)
	h.mu.Lock()
	peers := len(h.peers)
	h.mu.Unlock()
	fmt.Fprintf(w, "# TYPE matrix_server_peer_conns gauge\nmatrix_server_peer_conns %d\n", peers)
	fmt.Fprintf(w, "# TYPE matrix_server_ticks counter\nmatrix_server_ticks %d\n", h.ticks.Load())
	if h.mw != nil {
		h.mw.Stats().WritePrometheus(w)
	}
	if h.tr != nil {
		metrics.WritePrometheus(w, h.treg)
		for _, name := range hostPhaseHistograms {
			h.treg.Histogram(name).Reset()
		}
	}
	metrics.WriteRuntime(w)
}

// mcLoop pumps coordinator messages into the ingress funnel; the tick
// goroutine does the actual routing (see drainIngress).
func (h *ServerHost) mcLoop() {
	defer h.wg.Done()
	for {
		m, err := h.mcConn.Recv()
		if err != nil {
			// Losing the MC link means no more range updates or drain
			// grants can arrive: flag it so /readyz flips to 503.
			h.mcDown.Store(true)
			return
		}
		h.enqueueIngress(id.None, m)
	}
}

// ingressMsg is one coordinator- or peer-originated message awaiting the
// tick goroutine.
type ingressMsg struct {
	from id.ServerID
	msg  protocol.Message
}

// maxIngress bounds the funnel between ticks; beyond it frames are dropped
// with a log line rather than growing without bound while the tick
// goroutine is busy.
const maxIngress = 1 << 16

// enqueueIngress parks one coordinator- or peer-originated message for the
// tick goroutine. Routing core envelopes only there keeps every peer
// connection single-writer, so the state-before-redirect wire order cannot
// be broken by an mcLoop or peer-pump send racing the tick flush.
func (h *ServerHost) enqueueIngress(from id.ServerID, m protocol.Message) {
	h.ingressMu.Lock()
	if len(h.ingress) >= maxIngress {
		h.ingressMu.Unlock()
		h.cfg.Logger.Printf("server %v: ingress overflow, dropping %v", h.core.ID(), m.MsgType())
		return
	}
	h.ingress = append(h.ingress, ingressMsg{from: from, msg: m})
	h.ingressMu.Unlock()
}

// drainIngress feeds everything the funnel holds through the Matrix
// server, collecting peer-bound fallout into batch. Runs on the tick
// goroutine only; both backing slices are reused tick over tick.
func (h *ServerHost) drainIngress(batch map[string][]protocol.Message) {
	h.ingressMu.Lock()
	msgs := h.ingress
	h.ingress = h.ingressSpare[:0]
	h.ingressMu.Unlock()
	for _, im := range msgs {
		if h.tr != nil {
			// Correlation-stamped control frames mark their arrival, pairing
			// with the coordinator trace's departure instant (see corr.go).
			traceCorr(h.tr, hostTracePid, hostTraceTidTick, im.msg)
		}
		// Health frames are host-level concerns the Matrix core never
		// sees; intercepting them here (on the tick goroutine, in arrival
		// order) guarantees an Adopt restore lands before the activating
		// RangeUpdate that follows it on the MC connection.
		switch m := im.msg.(type) {
		case *protocol.Adopt:
			h.handleAdopt(m)
			continue
		case *protocol.DrainReply:
			select {
			case h.drainReply <- m:
			default:
			}
			continue
		case *protocol.DrainRequest:
			h.startDrain(m.Exit)
			continue
		}
		if h.tr != nil {
			h.tracePeerHandle(im.msg)
		}
		envs, err := h.core.HandleMessage(im.from, im.msg)
		if err != nil {
			h.cfg.Logger.Printf("server %v: message %v: %v", h.core.ID(), im.msg.MsgType(), err)
		}
		h.routeCore(envs, batch)
	}
	for i := range msgs {
		msgs[i] = ingressMsg{}
	}
	h.ingressSpare = msgs[:0]
}

// acceptLoop admits peer and client connections; the first message
// disambiguates them.
func (h *ServerHost) acceptLoop() {
	defer h.wg.Done()
	for {
		conn, err := h.ln.Accept()
		if err != nil {
			return
		}
		h.wg.Add(1)
		go h.serveConn(conn)
	}
}

// serveConn classifies one inbound connection.
func (h *ServerHost) serveConn(conn transport.Conn) {
	defer h.wg.Done()
	first, err := conn.Recv()
	if err != nil {
		_ = conn.Close()
		return
	}
	switch m := first.(type) {
	case *protocol.ClientHello:
		h.serveClient(conn, m)
	case *protocol.SnapshotRequest:
		// Operator dump: stream this node's full state and close.
		blob, err := snapshot.MarshalNode(h.core, h.gs)
		if err != nil {
			h.cfg.Logger.Printf("server %v: snapshot: %v", h.core.ID(), err)
		} else if err := sendSnapshotChunks(conn, blob); err != nil {
			h.cfg.Logger.Printf("server %v: snapshot send: %v", h.core.ID(), err)
		}
		_ = conn.Close()
	case *protocol.Forward, *protocol.StateTransfer:
		h.mu.Lock()
		if h.closed {
			h.mu.Unlock()
			_ = conn.Close()
			return
		}
		h.inbound[conn] = true
		h.mu.Unlock()
		h.servePeer(conn, first)
		h.mu.Lock()
		delete(h.inbound, conn)
		h.mu.Unlock()
	default:
		h.cfg.Logger.Printf("server %v: unexpected first message %v", h.core.ID(), m.MsgType())
		_ = conn.Close()
	}
}

// serveClient pumps one game client's connection. Every frame passes the
// middleware chain first (when configured): the hello must clear auth
// before the connection is even registered, and per-frame judging reuses
// one Request so the steady-state path does not allocate.
func (h *ServerHost) serveClient(conn transport.Conn, hello *protocol.ClientHello) {
	var req middleware.Request
	if h.mw != nil {
		req = middleware.Request{
			Source:   middleware.SourceClient,
			Client:   hello.Client,
			Msg:      hello,
			Now:      h.clockSeconds(),
			QueueLen: h.gs.QueueLen(),
		}
		if v := h.mw.Handle(&req); !v.Admitted() {
			h.cfg.Logger.Printf("server %v: client %v hello rejected: %v", h.core.ID(), hello.Client, v)
			_ = conn.Send(&protocol.ErrorMsg{Of: protocol.TypeClientHello, Reason: "middleware: " + v.String()})
			_ = conn.Close()
			return
		}
	}

	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		_ = conn.Close()
		return
	}
	if old, ok := h.clients[hello.Client]; ok && old != conn {
		_ = old.Close()
	}
	h.clients[hello.Client] = conn
	h.mu.Unlock()

	if err := h.gs.Enqueue(hello); err != nil {
		h.cfg.Logger.Printf("server %v: join %v dropped: %v", h.core.ID(), hello.Client, err)
	}
	for {
		m, err := conn.Recv()
		if err != nil {
			h.dropClient(hello.Client, conn)
			return
		}
		if h.mw != nil {
			req.Msg = m
			req.Now = h.clockSeconds()
			req.QueueLen = h.gs.QueueLen()
			if !h.mw.Handle(&req).Admitted() {
				continue // judged and counted; the frame is simply not delivered
			}
		}
		if h.tr != nil {
			h.tracePacketIn(m)
		}
		if err := h.gs.Enqueue(m); err != nil && err != gameserver.ErrQueueOverflow {
			h.cfg.Logger.Printf("server %v: client %v: %v", h.core.ID(), hello.Client, err)
		}
	}
}

// servePeer pumps a peer Matrix server's connection. Frames are judged by
// the middleware chain (admission control sheds forwarded data plane under
// overload) and parked in the ingress funnel for the tick goroutine.
func (h *ServerHost) servePeer(conn transport.Conn, first protocol.Message) {
	var req middleware.Request
	handle := func(m protocol.Message) {
		from := id.None
		switch pm := m.(type) {
		case *protocol.Forward:
			from = pm.From
		case *protocol.StateTransfer:
			from = pm.From
		}
		if h.mw != nil {
			req = middleware.Request{
				Source:   middleware.SourcePeer,
				Peer:     from,
				Msg:      m,
				Now:      h.clockSeconds(),
				QueueLen: h.gs.QueueLen(),
			}
			if !h.mw.Handle(&req).Admitted() {
				return
			}
		}
		h.enqueueIngress(from, m)
	}
	handle(first)
	for {
		m, err := conn.Recv()
		if err != nil {
			_ = conn.Close()
			return
		}
		handle(m)
	}
}

// tickLoop drives game-server processing, periodic load reports, lease
// heartbeats and checkpoint shipping. Everything that writes the MC
// connection runs here, keeping it single-writer.
func (h *ServerHost) tickLoop() {
	defer h.wg.Done()
	tick := time.NewTicker(h.cfg.TickInterval)
	report := time.NewTicker(h.cfg.ReportInterval)
	defer tick.Stop()
	defer report.Stop()
	var beatC, cpC <-chan time.Time
	if h.cfg.HeartbeatEvery > 0 {
		beat := time.NewTicker(h.cfg.HeartbeatEvery)
		defer beat.Stop()
		beatC = beat.C
	}
	if h.cfg.CheckpointEvery > 0 {
		cp := time.NewTicker(h.cfg.CheckpointEvery)
		defer cp.Stop()
		cpC = cp.C
	}
	for {
		select {
		case <-h.done:
			return
		case <-beatC:
			if h.beatsPaused.Load() {
				continue
			}
			rep := h.gs.LoadReport()
			hb := &protocol.Heartbeat{
				Server:         h.core.ID(),
				Clients:        rep.Clients,
				QueueLen:       rep.QueueLen,
				CheckpointTick: h.cpTick.Load(),
			}
			if err := h.mcConn.Send(hb); err != nil {
				h.cfg.Logger.Printf("server %v: heartbeat: %v", h.core.ID(), err)
			}
		case <-cpC:
			h.shipCheckpoint()
		case <-tick.C:
			h.ticks.Add(1)
			t0 := h.tr.Now()
			// Coordinator and peer fallout first: split/reclaim state
			// transfers join this tick's batch, ahead of whatever redirects
			// the game server emits below (routeGame flushes the batch
			// before any redirect reaches a client).
			h.drainIngress(h.tickBatch)
			t1 := h.tr.Now()
			envs, err := h.gs.ProcessAppend(h.tickEnvs.Take(), h.cfg.ServiceRate)
			if err != nil {
				h.cfg.Logger.Printf("server %v: process: %v", h.core.ID(), err)
			}
			t2 := h.tr.Now()
			// Everything this tick produced for the same peer leaves as one
			// batch frame — the per-message framing and write amortized
			// across the tick.
			h.routeGame(envs, h.tickBatch)
			h.flushBatches(h.tickBatch)
			h.tickEnvs.Done(envs)
			if h.tr != nil {
				h.traceTick(t0, t1, t2, h.tr.Now())
			}
		case <-report.C:
			rep := h.gs.LoadReport()
			envs, err := h.core.HandleLocalLoad(int(rep.Clients), int(rep.QueueLen))
			if err != nil {
				h.cfg.Logger.Printf("server %v: load report: %v", h.core.ID(), err)
				continue
			}
			h.routeCore(envs, nil)
		}
	}
}

// routeCore delivers a Matrix server's envelopes. When batch is non-nil,
// peer-bound messages are collected into it (keyed by dial address) for a
// later flushBatches instead of being sent immediately; coordinator and
// game-server deliveries are never deferred.
func (h *ServerHost) routeCore(envs []core.Envelope, batch map[string][]protocol.Message) {
	for _, e := range envs {
		switch e.Dest {
		case core.DestCoordinator:
			if err := h.mcConn.Send(e.Msg); err != nil {
				h.cfg.Logger.Printf("server %v: mc send: %v", h.core.ID(), err)
			}
		case core.DestGameServer:
			if err := h.gs.Enqueue(e.Msg); err != nil && err != gameserver.ErrQueueOverflow {
				h.cfg.Logger.Printf("server %v: enqueue: %v", h.core.ID(), err)
			}
		case core.DestPeer:
			if h.tr != nil {
				h.tracePeerForward(e.Msg)
			}
			if batch != nil {
				if e.Addr == "" {
					h.cfg.Logger.Printf("server %v: no address for peer (dropping %v)", h.core.ID(), e.Msg.MsgType())
					continue
				}
				batch[e.Addr] = append(batch[e.Addr], e.Msg)
				continue
			}
			h.sendPeer(e.Addr, e.Msg)
		}
	}
}

// routeGame delivers a game server's envelopes, collecting peer-bound
// fallout into batch (see routeCore).
func (h *ServerHost) routeGame(envs []gameserver.Envelope, batch map[string][]protocol.Message) {
	for _, e := range envs {
		switch e.Dest {
		case gameserver.DestMatrix:
			// Game updates — the dominant message — route through a
			// tickLoop-owned reused buffer; routeCore consumes it fully
			// (enqueue/collect, never re-entering this core) before the
			// next envelope.
			var out []core.Envelope
			var err error
			reused := false
			if u, isUpdate := e.Msg.(*protocol.GameUpdate); isUpdate {
				out, err = h.core.AppendGameUpdate(h.tickCoreEnvs.Take(), u)
				reused = true
			} else {
				out, err = h.core.HandleMessage(id.None, e.Msg)
			}
			if err != nil {
				h.cfg.Logger.Printf("server %v: game->matrix: %v", h.core.ID(), err)
			} else {
				h.routeCore(out, batch)
			}
			if reused {
				h.tickCoreEnvs.Done(out)
			}
		case gameserver.DestClient:
			// Migration ordering: a redirected client's state transfer is
			// sitting in the peer batch (the game server emits state before
			// the redirect). Flush before the redirect reaches the client
			// so the state frame precedes the client's rejoin on the wire.
			// Redirects are rare, so the early flush barely dents batching.
			if _, isRedirect := e.Msg.(*protocol.Redirect); isRedirect && batch != nil {
				h.flushBatches(batch)
			}
			h.mu.Lock()
			conn, ok := h.clients[e.Client]
			h.mu.Unlock()
			if !ok {
				continue // client disconnected; deliveries are best-effort
			}
			if h.tr != nil {
				h.tracePacketOut(e.Client, e.Msg)
				// A corr-stamped redirect closes the handoff's server leg:
				// the decision is now visible to the client.
				traceCorr(h.tr, hostTracePid, hostTraceTidTick, e.Msg)
			}
			if err := conn.Send(e.Msg); err != nil {
				h.dropClient(e.Client, conn)
			}
		}
	}
}

// flushBatches sends every collected per-peer batch as one frame and
// resets the batch map for reuse (entries keep their capacity; the peer
// set is small and stable).
func (h *ServerHost) flushBatches(batch map[string][]protocol.Message) {
	for addr, msgs := range batch {
		if len(msgs) > 0 {
			h.sendPeerMsgs(addr, msgs...)
		}
		for i := range msgs {
			msgs[i] = nil
		}
		batch[addr] = msgs[:0]
	}
}

// sendPeer sends one message to a peer Matrix server. (A one-message
// batch frames identically to a plain send, so this shares the batch
// path.)
func (h *ServerHost) sendPeer(addr string, m protocol.Message) {
	if addr == "" {
		h.cfg.Logger.Printf("server %v: no address for peer (dropping %v)", h.core.ID(), m.MsgType())
		return
	}
	h.sendPeerMsgs(addr, m)
}

// maxDialBacklog bounds the frames queued behind an in-flight peer dial.
const maxDialBacklog = 4096

// sendPeerMsgs sends msgs as one batch to a peer Matrix server. The first
// send to an unconnected address starts a background bounded-timeout dial
// and queues the messages behind it — the tick loop never blocks on a
// dead peer's dial — and sends issued while the dial is in flight join
// the queue, which dialPeer flushes in order before publishing the
// connection, so nothing sent later can overtake the backlog.
func (h *ServerHost) sendPeerMsgs(addr string, msgs ...protocol.Message) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	conn, ok := h.peers[addr]
	if !ok {
		pending, inFlight := h.dialing[addr]
		if len(pending)+len(msgs) > maxDialBacklog {
			h.mu.Unlock()
			h.cfg.Logger.Printf("server %v: dial backlog to peer %s full, dropping %d message(s)", h.core.ID(), addr, len(msgs))
			return
		}
		// Copied, not aliased: the caller reuses its batch slices.
		h.dialing[addr] = append(pending, msgs...)
		if !inFlight {
			h.wg.Add(1)
			go h.dialPeer(addr)
		}
		h.mu.Unlock()
		return
	}
	h.mu.Unlock()
	h.sendPeerConn(addr, conn, msgs)
}

// dialPeer performs the background bounded dial for addr, then flushes the
// queued messages in order before publishing the connection to h.peers.
func (h *ServerHost) dialPeer(addr string) {
	defer h.wg.Done()
	conn, err := h.dialTimeout(addr)
	if err != nil {
		h.mu.Lock()
		n := len(h.dialing[addr])
		delete(h.dialing, addr)
		h.mu.Unlock()
		h.cfg.Logger.Printf("server %v: dial peer %s: %v (dropped %d queued message(s))", h.core.ID(), addr, err, n)
		return
	}
	for {
		h.mu.Lock()
		if h.closed {
			delete(h.dialing, addr)
			h.mu.Unlock()
			_ = conn.Close()
			return
		}
		pending := h.dialing[addr]
		if len(pending) == 0 {
			// Backlog drained: publish. From here sends go direct.
			h.peers[addr] = conn
			delete(h.dialing, addr)
			h.mu.Unlock()
			return
		}
		h.dialing[addr] = nil
		h.mu.Unlock()
		h.sendPeerConn(addr, conn, pending)
	}
}

// dialTimeout dials addr within the configured bound: natively when the
// network supports deadlines, otherwise by racing Dial against a timer (a
// late success is then closed by a reaper goroutine — the dial may
// linger, the caller never does).
func (h *ServerHost) dialTimeout(addr string) (transport.Conn, error) {
	d := h.cfg.PeerDialTimeout
	if td, ok := h.cfg.Network.(transport.TimeoutDialer); ok {
		return td.DialTimeout(addr, d)
	}
	type result struct {
		conn transport.Conn
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		conn, err := h.cfg.Network.Dial(addr)
		ch <- result{conn, err}
	}()
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.conn, r.err
	case <-timer.C:
		go func() {
			if r := <-ch; r.conn != nil {
				_ = r.conn.Close()
			}
		}()
		return nil, fmt.Errorf("host: dial peer %s: timeout after %v", addr, d)
	}
}

// sendPeerConn transmits msgs on an established peer connection, salvaging
// encode failures individually and forgetting the connection when it is
// lost.
func (h *ServerHost) sendPeerConn(addr string, conn transport.Conn, msgs []protocol.Message) {
	err := conn.SendBatch(msgs)
	if err != nil && !errors.Is(err, transport.ErrClosed) {
		// Encode failure (an oversized message): the connection is still
		// healthy, and batch encoding is all-or-nothing, so salvage the
		// tick by sending individually — only the offending message is
		// lost, matching the old per-message path's isolation.
		h.cfg.Logger.Printf("server %v: batch to peer %s: %v; retrying individually", h.core.ID(), addr, err)
		for _, m := range msgs {
			if err = conn.Send(m); err != nil {
				if errors.Is(err, transport.ErrClosed) {
					break
				}
				h.cfg.Logger.Printf("server %v: dropping %v to peer %s: %v", h.core.ID(), m.MsgType(), addr, err)
				err = nil
			}
		}
	}
	if errors.Is(err, transport.ErrClosed) {
		h.cfg.Logger.Printf("server %v: peer %s connection lost: %v", h.core.ID(), addr, err)
		h.mu.Lock()
		if h.peers[addr] == conn {
			delete(h.peers, addr)
		}
		h.mu.Unlock()
		_ = conn.Close()
	}
}

// handleAdopt accumulates a chunked Adopt stream and, on the final chunk,
// restores the victim's world into this node's game server. Runs on the
// tick goroutine via drainIngress, so the restore strictly precedes the
// activating RangeUpdate the MC sends next on the same connection.
func (h *ServerHost) handleAdopt(m *protocol.Adopt) {
	h.adoptBuf = append(h.adoptBuf, m.Blob...)
	if !m.Final {
		return
	}
	blob := h.adoptBuf
	h.adoptBuf = nil
	if len(blob) == 0 {
		h.cfg.Logger.Printf("server %v: cold-adopting %v's region %v (no checkpoint: world starts empty)",
			h.core.ID(), m.Victim, m.Bounds)
		return
	}
	if err := snapshot.RestoreNodeGame(blob, h.gs); err != nil {
		h.cfg.Logger.Printf("server %v: adopt restore of %v's checkpoint: %v", h.core.ID(), m.Victim, err)
		return
	}
	h.cfg.Logger.Printf("server %v: adopted %v's region %v from checkpoint (%d bytes)",
		h.core.ID(), m.Victim, m.Bounds, len(blob))
}

// shipCheckpoint streams this node's full state to the MC as SnapshotData
// chunks — the blob a warm spare restores if this node dies. Spares ship
// nothing: they own no world. Runs on the tick goroutine.
func (h *ServerHost) shipCheckpoint() {
	if !h.core.Active() {
		return
	}
	blob, err := snapshot.MarshalNode(h.core, h.gs)
	if err != nil {
		h.cfg.Logger.Printf("server %v: checkpoint marshal: %v", h.core.ID(), err)
		return
	}
	if err := sendSnapshotChunks(h.mcConn, blob); err != nil {
		h.cfg.Logger.Printf("server %v: checkpoint ship: %v", h.core.ID(), err)
		return
	}
	h.cpTick.Store(h.ticks.Load())
}

// CheckpointTick reports the game tick at which the last checkpoint
// shipped to the coordinator (0 = none yet). A strictly increasing value
// means fresh checkpoints keep landing.
func (h *ServerHost) CheckpointTick() uint64 { return h.cpTick.Load() }

// PauseHeartbeats stops (or resumes) lease renewal without touching any
// connection: the zombie test hook — a process that is alive and serving
// but looks dead to the coordinator.
func (h *ServerHost) PauseHeartbeats(paused bool) { h.beatsPaused.Store(paused) }

// startDrain reacts to a drain grant from the MC: a background watcher
// waits for the evacuation (deactivation plus live client handoff) to
// finish, then marks the host drained.
func (h *ServerHost) startDrain(exit bool) {
	if exit {
		h.drainExit.Store(true)
	}
	if !h.drainActive.CompareAndSwap(false, true) {
		return
	}
	h.wg.Add(1)
	go h.drainWatch()
}

// drainWatch polls until the node has fully evacuated: deactivated, no
// avatars left, no peer dials in flight — held for a few consecutive polls
// so an in-flight state transfer cannot race the verdict.
func (h *ServerHost) drainWatch() {
	defer h.wg.Done()
	poll := h.cfg.TickInterval * 2
	if poll < 10*time.Millisecond {
		poll = 10 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	settled := 0
	for {
		select {
		case <-h.done:
			return
		case <-t.C:
			if h.evacuated() {
				settled++
			} else {
				settled = 0
			}
			if settled >= 3 {
				h.drainOnce.Do(func() { close(h.drained) })
				h.cfg.Logger.Printf("server %v: drained (exit=%v)", h.core.ID(), h.drainExit.Load())
				return
			}
		}
	}
}

// evacuated reports whether this node holds no world responsibility.
func (h *ServerHost) evacuated() bool {
	if h.core.Active() || h.gs.ClientCount() != 0 {
		return false
	}
	h.mu.Lock()
	pending := len(h.dialing)
	h.mu.Unlock()
	return pending == 0
}

// Drain asks the MC to evacuate this server, then blocks until the
// evacuation completes (or timeout). With exit set the server retires for
// good — the caller should Close it once Drain returns — otherwise it
// re-joins the MC's spare pool and keeps serving.
func (h *ServerHost) Drain(exit bool, timeout time.Duration) error {
	if err := h.mcConn.Send(&protocol.DrainRequest{Server: h.core.ID(), Exit: exit}); err != nil {
		return fmt.Errorf("host: drain request: %w", err)
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	select {
	case rep := <-h.drainReply:
		if !rep.Granted {
			return fmt.Errorf("host: drain denied: %s", rep.Reason)
		}
	case <-deadline.C:
		return errors.New("host: no drain reply before timeout")
	case <-h.done:
		return ErrClosed
	}
	select {
	case <-h.drained:
		return nil
	case <-deadline.C:
		return errors.New("host: drain did not complete before timeout")
	case <-h.done:
		return ErrClosed
	}
}

// Drained is closed once a granted drain has fully evacuated this node.
func (h *ServerHost) Drained() <-chan struct{} { return h.drained }

// DrainExitRequested reports whether the drain grant asked this process to
// exit rather than re-join the spare pool (the cmd binary checks it after
// Drained fires).
func (h *ServerHost) DrainExitRequested() bool { return h.drainExit.Load() }

// dropClient forgets a client connection (and, when this was the client's
// live connection, its rate-limit bucket — a reconnect starts fresh).
func (h *ServerHost) dropClient(c id.ClientID, conn transport.Conn) {
	_ = conn.Close()
	h.mu.Lock()
	current := h.clients[c] == conn
	if current {
		delete(h.clients, c)
	}
	h.mu.Unlock()
	if current && h.mw != nil {
		if l := h.mw.Limiter(); l != nil {
			l.Forget(c)
		}
	}
}
