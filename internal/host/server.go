package host

import (
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"matrix/internal/core"
	"matrix/internal/gameserver"
	"matrix/internal/id"
	"matrix/internal/load"
	"matrix/internal/protocol"
	"matrix/internal/scratch"
	"matrix/internal/snapshot"
	"matrix/internal/transport"
)

// ServerConfig configures a combined Matrix server + game server host.
type ServerConfig struct {
	// Network supplies transports (TCP in production, MemNetwork in tests).
	Network transport.Network
	// Coordinator is the MC's dial address.
	Coordinator string
	// ListenAddr is where peers and game clients reach this server
	// (empty = transport default; the resolved address is registered with
	// the MC).
	ListenAddr string
	// Radius is the game's visibility radius.
	Radius float64
	// Load tunes the split/reclaim policy (zero value = paper defaults).
	Load load.Config
	// TickInterval is the game-server processing cadence (default 10ms).
	TickInterval time.Duration
	// ServiceRate is the packets processed per tick (default 500).
	ServiceRate int
	// MaxQueue bounds the receive queue (0 = unbounded).
	MaxQueue int
	// ReportInterval is the load-report cadence (default 1s).
	ReportInterval time.Duration
	// Logger receives diagnostics (nil = silent).
	Logger *log.Logger
	// Restore, when non-nil, is a snapshot blob (see snapshot.MarshalNode)
	// whose game-world state — client avatars and map objects — this node
	// adopts before it starts serving, so no client can join into a window
	// that a later restore would wipe. Topology is not restored: the node
	// registers freshly and owns whatever the MC assigns.
	Restore []byte
}

func (c ServerConfig) sanitized() ServerConfig {
	if c.TickInterval <= 0 {
		c.TickInterval = 10 * time.Millisecond
	}
	if c.ServiceRate <= 0 {
		c.ServiceRate = 500
	}
	if c.ReportInterval <= 0 {
		c.ReportInterval = time.Second
	}
	if c.Logger == nil {
		c.Logger = log.New(logDiscard{}, "", 0)
	}
	return c
}

// ServerHost runs one Matrix server with its co-located game server over
// real transports.
type ServerHost struct {
	cfg    ServerConfig
	core   *core.Server
	gs     *gameserver.Server
	mcConn transport.Conn
	ln     transport.Listener

	mu      sync.Mutex
	peers   map[string]transport.Conn // outbound, keyed by dial address
	inbound map[transport.Conn]bool   // accepted peer connections
	clients map[id.ClientID]transport.Conn
	closed  bool

	// tickLoop-owned scratch (no locking): the per-tick envelope buffers
	// and the per-peer message batches flushed as one frame per peer per
	// tick. Map entries and their slices are reused across ticks.
	tickEnvs     scratch.Buf[gameserver.Envelope]
	tickCoreEnvs scratch.Buf[core.Envelope]
	tickBatch    map[string][]protocol.Message

	wg   sync.WaitGroup
	done chan struct{}
}

// StartServer registers with the MC and brings the pumps up.
func StartServer(cfg ServerConfig) (*ServerHost, error) {
	cfg = cfg.sanitized()
	ln, err := cfg.Network.Listen(cfg.ListenAddr)
	if err != nil {
		return nil, err
	}
	mcConn, err := cfg.Network.Dial(cfg.Coordinator)
	if err != nil {
		_ = ln.Close()
		return nil, fmt.Errorf("host: dial coordinator: %w", err)
	}
	if err := mcConn.Send(&protocol.RegisterRequest{Addr: ln.Addr(), Radius: cfg.Radius}); err != nil {
		_ = ln.Close()
		_ = mcConn.Close()
		return nil, err
	}
	first, err := mcConn.Recv()
	if err != nil {
		_ = ln.Close()
		_ = mcConn.Close()
		return nil, fmt.Errorf("host: registration reply: %w", err)
	}
	reply, ok := first.(*protocol.RegisterReply)
	if !ok {
		_ = ln.Close()
		_ = mcConn.Close()
		return nil, fmt.Errorf("host: unexpected registration reply %v", first.MsgType())
	}

	cs, err := core.NewServer(core.Config{Load: cfg.Load}, reply, cfg.Radius)
	if err != nil {
		_ = ln.Close()
		_ = mcConn.Close()
		return nil, err
	}
	gs, err := gameserver.New(gameserver.Config{
		Server:       reply.Server,
		Bounds:       reply.Bounds,
		Radius:       cfg.Radius,
		MaxQueue:     cfg.MaxQueue,
		ResolveOwner: cs.ResolveOwner,
	})
	if err != nil {
		_ = ln.Close()
		_ = mcConn.Close()
		return nil, err
	}

	// Boot-time restore runs before any pump starts: no client can have
	// joined yet, so the adopted world can never wipe a live session.
	if cfg.Restore != nil {
		if err := snapshot.RestoreNodeGame(cfg.Restore, gs); err != nil {
			_ = ln.Close()
			_ = mcConn.Close()
			return nil, fmt.Errorf("host: restore snapshot: %w", err)
		}
	}

	h := &ServerHost{
		cfg:       cfg,
		core:      cs,
		gs:        gs,
		mcConn:    mcConn,
		ln:        ln,
		peers:     make(map[string]transport.Conn),
		inbound:   make(map[transport.Conn]bool),
		clients:   make(map[id.ClientID]transport.Conn),
		tickBatch: make(map[string][]protocol.Message),
		done:      make(chan struct{}),
	}
	h.wg.Add(3)
	go h.mcLoop()
	go h.acceptLoop()
	go h.tickLoop()
	cfg.Logger.Printf("server %v up at %s (bounds %v)", cs.ID(), ln.Addr(), cs.Bounds())
	return h, nil
}

// ID returns the Matrix server's identity.
func (h *ServerHost) ID() id.ServerID { return h.core.ID() }

// Addr returns the listener address.
func (h *ServerHost) Addr() string { return h.ln.Addr() }

// Core exposes the Matrix server (status tooling).
func (h *ServerHost) Core() *core.Server { return h.core }

// Game exposes the game server (status tooling).
func (h *ServerHost) Game() *gameserver.Server { return h.gs }

// Snapshot dumps this node's complete state (Matrix server + game server)
// as a versioned blob — the payload of a protocol SnapshotData stream.
func (h *ServerHost) Snapshot() ([]byte, error) {
	return snapshot.MarshalNode(h.core, h.gs)
}

// snapshotChunkSize keeps each SnapshotData frame comfortably under the
// codec's MaxFrameSize, so a heavily loaded node still dumps cleanly.
const snapshotChunkSize = 1 << 20

// sendSnapshotChunks streams a snapshot blob as SnapshotData frames, the
// last one marked Final.
func sendSnapshotChunks(conn transport.Conn, blob []byte) error {
	for start := 0; ; start += snapshotChunkSize {
		end := start + snapshotChunkSize
		if end > len(blob) {
			end = len(blob)
		}
		final := end == len(blob)
		if err := conn.Send(&protocol.SnapshotData{Blob: blob[start:end], Final: final}); err != nil {
			return err
		}
		if final {
			return nil
		}
	}
}

// RestoreSnapshot re-adopts the game-world state (client avatars and map
// objects) from a Snapshot blob. Topology is NOT restored: this host
// registered freshly with the MC and owns whatever range that produced —
// the live crash-recovery semantic (the world state survives the crash).
// Boot-time restores should use ServerConfig.Restore instead, which
// applies before the host serves: a live RestoreSnapshot replaces the
// world wholesale, dropping the avatar of any client that joined since
// the blob was captured (it stays connected and must rejoin).
func (h *ServerHost) RestoreSnapshot(blob []byte) error {
	return snapshot.RestoreNodeGame(blob, h.gs)
}

// Close stops the host and waits for its goroutines.
func (h *ServerHost) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	close(h.done)
	conns := make([]transport.Conn, 0, len(h.peers)+len(h.inbound)+len(h.clients)+1)
	conns = append(conns, h.mcConn)
	for _, c := range h.peers {
		conns = append(conns, c)
	}
	for c := range h.inbound {
		conns = append(conns, c)
	}
	for _, c := range h.clients {
		conns = append(conns, c)
	}
	h.mu.Unlock()
	err := h.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	h.wg.Wait()
	return err
}

// mcLoop pumps coordinator messages into the Matrix server.
func (h *ServerHost) mcLoop() {
	defer h.wg.Done()
	for {
		m, err := h.mcConn.Recv()
		if err != nil {
			return
		}
		envs, err := h.core.HandleMessage(id.None, m)
		if err != nil {
			h.cfg.Logger.Printf("server %v: mc message %v: %v", h.core.ID(), m.MsgType(), err)
		}
		h.routeCore(envs, nil)
	}
}

// acceptLoop admits peer and client connections; the first message
// disambiguates them.
func (h *ServerHost) acceptLoop() {
	defer h.wg.Done()
	for {
		conn, err := h.ln.Accept()
		if err != nil {
			return
		}
		h.wg.Add(1)
		go h.serveConn(conn)
	}
}

// serveConn classifies one inbound connection.
func (h *ServerHost) serveConn(conn transport.Conn) {
	defer h.wg.Done()
	first, err := conn.Recv()
	if err != nil {
		_ = conn.Close()
		return
	}
	switch m := first.(type) {
	case *protocol.ClientHello:
		h.serveClient(conn, m)
	case *protocol.SnapshotRequest:
		// Operator dump: stream this node's full state and close.
		blob, err := snapshot.MarshalNode(h.core, h.gs)
		if err != nil {
			h.cfg.Logger.Printf("server %v: snapshot: %v", h.core.ID(), err)
		} else if err := sendSnapshotChunks(conn, blob); err != nil {
			h.cfg.Logger.Printf("server %v: snapshot send: %v", h.core.ID(), err)
		}
		_ = conn.Close()
	case *protocol.Forward, *protocol.StateTransfer:
		h.mu.Lock()
		if h.closed {
			h.mu.Unlock()
			_ = conn.Close()
			return
		}
		h.inbound[conn] = true
		h.mu.Unlock()
		h.servePeer(conn, first)
		h.mu.Lock()
		delete(h.inbound, conn)
		h.mu.Unlock()
	default:
		h.cfg.Logger.Printf("server %v: unexpected first message %v", h.core.ID(), m.MsgType())
		_ = conn.Close()
	}
}

// serveClient pumps one game client's connection.
func (h *ServerHost) serveClient(conn transport.Conn, hello *protocol.ClientHello) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		_ = conn.Close()
		return
	}
	if old, ok := h.clients[hello.Client]; ok && old != conn {
		_ = old.Close()
	}
	h.clients[hello.Client] = conn
	h.mu.Unlock()

	if err := h.gs.Enqueue(hello); err != nil {
		h.cfg.Logger.Printf("server %v: join %v dropped: %v", h.core.ID(), hello.Client, err)
	}
	for {
		m, err := conn.Recv()
		if err != nil {
			h.dropClient(hello.Client, conn)
			return
		}
		if err := h.gs.Enqueue(m); err != nil && err != gameserver.ErrQueueOverflow {
			h.cfg.Logger.Printf("server %v: client %v: %v", h.core.ID(), hello.Client, err)
		}
	}
}

// servePeer pumps a peer Matrix server's connection.
func (h *ServerHost) servePeer(conn transport.Conn, first protocol.Message) {
	handle := func(m protocol.Message) {
		from := id.None
		switch pm := m.(type) {
		case *protocol.Forward:
			from = pm.From
		case *protocol.StateTransfer:
			from = pm.From
		}
		envs, err := h.core.HandleMessage(from, m)
		if err != nil {
			h.cfg.Logger.Printf("server %v: peer message %v: %v", h.core.ID(), m.MsgType(), err)
		}
		h.routeCore(envs, nil)
	}
	handle(first)
	for {
		m, err := conn.Recv()
		if err != nil {
			_ = conn.Close()
			return
		}
		handle(m)
	}
}

// tickLoop drives game-server processing and periodic load reports.
func (h *ServerHost) tickLoop() {
	defer h.wg.Done()
	tick := time.NewTicker(h.cfg.TickInterval)
	report := time.NewTicker(h.cfg.ReportInterval)
	defer tick.Stop()
	defer report.Stop()
	for {
		select {
		case <-h.done:
			return
		case <-tick.C:
			envs, err := h.gs.ProcessAppend(h.tickEnvs.Take(), h.cfg.ServiceRate)
			if err != nil {
				h.cfg.Logger.Printf("server %v: process: %v", h.core.ID(), err)
			}
			// Everything this tick produced for the same peer leaves as one
			// batch frame — the per-message framing and write amortized
			// across the tick.
			h.routeGame(envs, h.tickBatch)
			h.flushBatches(h.tickBatch)
			h.tickEnvs.Done(envs)
		case <-report.C:
			rep := h.gs.LoadReport()
			envs, err := h.core.HandleLocalLoad(int(rep.Clients), int(rep.QueueLen))
			if err != nil {
				h.cfg.Logger.Printf("server %v: load report: %v", h.core.ID(), err)
				continue
			}
			h.routeCore(envs, nil)
		}
	}
}

// routeCore delivers a Matrix server's envelopes. When batch is non-nil,
// peer-bound messages are collected into it (keyed by dial address) for a
// later flushBatches instead of being sent immediately; coordinator and
// game-server deliveries are never deferred.
func (h *ServerHost) routeCore(envs []core.Envelope, batch map[string][]protocol.Message) {
	for _, e := range envs {
		switch e.Dest {
		case core.DestCoordinator:
			if err := h.mcConn.Send(e.Msg); err != nil {
				h.cfg.Logger.Printf("server %v: mc send: %v", h.core.ID(), err)
			}
		case core.DestGameServer:
			if err := h.gs.Enqueue(e.Msg); err != nil && err != gameserver.ErrQueueOverflow {
				h.cfg.Logger.Printf("server %v: enqueue: %v", h.core.ID(), err)
			}
		case core.DestPeer:
			if batch != nil {
				if e.Addr == "" {
					h.cfg.Logger.Printf("server %v: no address for peer (dropping %v)", h.core.ID(), e.Msg.MsgType())
					continue
				}
				batch[e.Addr] = append(batch[e.Addr], e.Msg)
				continue
			}
			h.sendPeer(e.Addr, e.Msg)
		}
	}
}

// routeGame delivers a game server's envelopes, collecting peer-bound
// fallout into batch (see routeCore).
func (h *ServerHost) routeGame(envs []gameserver.Envelope, batch map[string][]protocol.Message) {
	for _, e := range envs {
		switch e.Dest {
		case gameserver.DestMatrix:
			// Game updates — the dominant message — route through a
			// tickLoop-owned reused buffer; routeCore consumes it fully
			// (enqueue/collect, never re-entering this core) before the
			// next envelope.
			var out []core.Envelope
			var err error
			reused := false
			if u, isUpdate := e.Msg.(*protocol.GameUpdate); isUpdate {
				out, err = h.core.AppendGameUpdate(h.tickCoreEnvs.Take(), u)
				reused = true
			} else {
				out, err = h.core.HandleMessage(id.None, e.Msg)
			}
			if err != nil {
				h.cfg.Logger.Printf("server %v: game->matrix: %v", h.core.ID(), err)
			} else {
				h.routeCore(out, batch)
			}
			if reused {
				h.tickCoreEnvs.Done(out)
			}
		case gameserver.DestClient:
			// Migration ordering: a redirected client's state transfer is
			// sitting in the peer batch (the game server emits state before
			// the redirect). Flush before the redirect reaches the client
			// so the state frame precedes the client's rejoin on the wire.
			// Redirects are rare, so the early flush barely dents batching.
			if _, isRedirect := e.Msg.(*protocol.Redirect); isRedirect && batch != nil {
				h.flushBatches(batch)
			}
			h.mu.Lock()
			conn, ok := h.clients[e.Client]
			h.mu.Unlock()
			if !ok {
				continue // client disconnected; deliveries are best-effort
			}
			if err := conn.Send(e.Msg); err != nil {
				h.dropClient(e.Client, conn)
			}
		}
	}
}

// flushBatches sends every collected per-peer batch as one frame and
// resets the batch map for reuse (entries keep their capacity; the peer
// set is small and stable).
func (h *ServerHost) flushBatches(batch map[string][]protocol.Message) {
	for addr, msgs := range batch {
		if len(msgs) > 0 {
			h.sendPeerMsgs(addr, msgs...)
		}
		for i := range msgs {
			msgs[i] = nil
		}
		batch[addr] = msgs[:0]
	}
}

// sendPeer sends one message to a peer Matrix server. (A one-message
// batch frames identically to a plain send, so this shares the batch
// path.)
func (h *ServerHost) sendPeer(addr string, m protocol.Message) {
	if addr == "" {
		h.cfg.Logger.Printf("server %v: no address for peer (dropping %v)", h.core.ID(), m.MsgType())
		return
	}
	h.sendPeerMsgs(addr, m)
}

// sendPeerMsgs sends msgs as one batch to a peer Matrix server, dialing
// and caching the connection on first use.
func (h *ServerHost) sendPeerMsgs(addr string, msgs ...protocol.Message) {
	h.mu.Lock()
	conn, ok := h.peers[addr]
	h.mu.Unlock()
	if !ok {
		var err error
		conn, err = h.cfg.Network.Dial(addr)
		if err != nil {
			h.cfg.Logger.Printf("server %v: dial peer %s: %v", h.core.ID(), addr, err)
			return
		}
		h.mu.Lock()
		if h.closed {
			h.mu.Unlock()
			_ = conn.Close()
			return
		}
		if existing, raced := h.peers[addr]; raced {
			h.mu.Unlock()
			_ = conn.Close()
			conn = existing
		} else {
			h.peers[addr] = conn
			h.mu.Unlock()
		}
	}
	err := conn.SendBatch(msgs)
	if err != nil && !errors.Is(err, transport.ErrClosed) {
		// Encode failure (an oversized message): the connection is still
		// healthy, and batch encoding is all-or-nothing, so salvage the
		// tick by sending individually — only the offending message is
		// lost, matching the old per-message path's isolation.
		h.cfg.Logger.Printf("server %v: batch to peer %s: %v; retrying individually", h.core.ID(), addr, err)
		for _, m := range msgs {
			if err = conn.Send(m); err != nil {
				if errors.Is(err, transport.ErrClosed) {
					break
				}
				h.cfg.Logger.Printf("server %v: dropping %v to peer %s: %v", h.core.ID(), m.MsgType(), addr, err)
				err = nil
			}
		}
	}
	if errors.Is(err, transport.ErrClosed) {
		h.cfg.Logger.Printf("server %v: peer %s connection lost: %v", h.core.ID(), addr, err)
		h.mu.Lock()
		if h.peers[addr] == conn {
			delete(h.peers, addr)
		}
		h.mu.Unlock()
		_ = conn.Close()
	}
}

// dropClient forgets a client connection.
func (h *ServerHost) dropClient(c id.ClientID, conn transport.Conn) {
	_ = conn.Close()
	h.mu.Lock()
	if h.clients[c] == conn {
		delete(h.clients, c)
	}
	h.mu.Unlock()
}
