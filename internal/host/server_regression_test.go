package host

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"matrix/internal/coordinator"
	"matrix/internal/core"
	"matrix/internal/gameclient"
	"matrix/internal/gameserver"
	"matrix/internal/geom"
	"matrix/internal/id"
	"matrix/internal/load"
	"matrix/internal/middleware"
	"matrix/internal/protocol"
	"matrix/internal/transport"
)

// gatedNetwork wraps a Network so dials to chosen addresses block until a
// gate channel is closed — a blackholed peer from the dialer's point of
// view. It deliberately does NOT implement transport.TimeoutDialer, so the
// host must bound the dial itself.
type gatedNetwork struct {
	inner transport.Network
	mu    sync.Mutex
	gates map[string]chan struct{}
}

func newGatedNetwork(inner transport.Network) *gatedNetwork {
	return &gatedNetwork{inner: inner, gates: make(map[string]chan struct{})}
}

// gate makes future dials to addr block until the returned channel closes.
func (n *gatedNetwork) gate(addr string) chan struct{} {
	ch := make(chan struct{})
	n.mu.Lock()
	n.gates[addr] = ch
	n.mu.Unlock()
	return ch
}

func (n *gatedNetwork) Listen(addr string) (transport.Listener, error) {
	return n.inner.Listen(addr)
}

func (n *gatedNetwork) Dial(addr string) (transport.Conn, error) {
	n.mu.Lock()
	ch := n.gates[addr]
	n.mu.Unlock()
	if ch != nil {
		<-ch
	}
	return n.inner.Dial(addr)
}

// fwd fabricates a peer-bound forward with a recognizable sequence number.
func fwd(seq int) *protocol.Forward {
	return &protocol.Forward{From: 1, Update: protocol.GameUpdate{
		Client: 1, Seq: id.PacketSeq(seq), Kind: protocol.KindAction,
		Origin: geom.Pt(1, 1), Dest: geom.Pt(1, 1),
	}}
}

// TestDeadPeerDoesNotStallTicks pins the S1 regression: a send to a peer
// whose address blackholes (dial never completes) must return immediately
// and the tick loop must keep serving clients at full rate while the
// bounded background dial times out.
func TestDeadPeerDoesNotStallTicks(t *testing.T) {
	nw := newGatedNetwork(transport.NewMemNetwork())
	nw.gate("blackhole:1") // never opened
	mc, err := ServeCoordinator(nw, "", coordinatorConfigForTest(), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mc.Close() })
	h, err := StartServer(ServerConfig{
		Network:         nw,
		Coordinator:     mc.Addr(),
		Radius:          40,
		TickInterval:    2 * time.Millisecond,
		PeerDialTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { h.Close() })

	ch, err := DialClient(ClientConfig{
		Network:    nw,
		ServerAddr: h.Addr(),
		Client:     gameclient.Config{ID: 1, Pos: geom.Pt(100, 100)},
	})
	if err != nil {
		t.Fatalf("DialClient: %v", err)
	}
	defer ch.Close()

	// Sends to the dead peer must not block the caller (the tick goroutine
	// in production).
	for i := 1; i <= 3; i++ {
		start := time.Now()
		h.sendPeerMsgs("blackhole:1", fwd(i))
		if d := time.Since(start); d > time.Second {
			t.Fatalf("sendPeerMsgs blocked %v on a dead peer", d)
		}
	}

	// While the dial is still pending, client traffic keeps echoing: the
	// tick loop is alive.
	if err := ch.Send(ch.Client().MakeAction(protocol.KindAction, geom.Pt(101, 100))); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "echo during blocked dial", func() bool {
		return ch.Client().Stats().EchoCount >= 1
	})

	// The bounded dial times out and the queued frames are dropped: the
	// pending entry must disappear rather than accumulate forever.
	waitFor(t, "dial backlog cleanup", func() bool {
		h.mu.Lock()
		_, inFlight := h.dialing["blackhole:1"]
		h.mu.Unlock()
		return !inFlight
	})
}

// TestPeerDialBacklogFlushedInOrder pins the ordering half of the S1 fix:
// frames queued while a peer dial is in flight are flushed in send order
// before the connection is published, so nothing sent later overtakes the
// backlog.
func TestPeerDialBacklogFlushedInOrder(t *testing.T) {
	mem := transport.NewMemNetwork()
	nw := newGatedNetwork(mem)
	open := nw.gate("peer:slow")
	_, hosts := startCluster(t, nw, 1, load.Config{})
	h := hosts[0]

	ln, err := mem.Listen("peer:slow")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var seqMu sync.Mutex
	var got []int
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		for {
			m, err := conn.Recv()
			if err != nil {
				return
			}
			if f, ok := m.(*protocol.Forward); ok {
				seqMu.Lock()
				got = append(got, int(f.Update.Seq))
				seqMu.Unlock()
			}
		}
	}()

	// Three sends while the dial is gated: all queue behind it.
	h.sendPeerMsgs("peer:slow", fwd(1))
	h.sendPeerMsgs("peer:slow", fwd(2), fwd(3))
	close(open)

	waitFor(t, "backlog flushed", func() bool {
		seqMu.Lock()
		defer seqMu.Unlock()
		return len(got) == 3
	})
	// Once published, later sends go direct over the same connection.
	waitFor(t, "connection published", func() bool {
		h.mu.Lock()
		defer h.mu.Unlock()
		return h.peers["peer:slow"] != nil
	})
	h.sendPeerMsgs("peer:slow", fwd(4))
	waitFor(t, "direct send", func() bool {
		seqMu.Lock()
		defer seqMu.Unlock()
		return len(got) == 4
	})
	seqMu.Lock()
	defer seqMu.Unlock()
	for i, want := range []int{1, 2, 3, 4} {
		if got[i] != want {
			t.Fatalf("delivery order = %v, want [1 2 3 4]", got)
		}
	}
}

// TestStateBeforeRedirectWireOrder pins the S2 regression: peer-bound
// fallout routed on the tick goroutine is deferred into the tick batch (not
// sent from other goroutines), and routeGame flushes that batch before any
// redirect reaches a client — the migrating state is committed to the peer
// connection ahead of the client's rejoin.
func TestStateBeforeRedirectWireOrder(t *testing.T) {
	nw := transport.NewMemNetwork()
	_, hosts := startCluster(t, nw, 1, load.Config{})
	h := hosts[0]

	// A fake peer captures what the host sends it.
	ln, err := nw.Listen("peer:x")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	peerGot := make(chan protocol.Message, 16)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		for {
			m, err := conn.Recv()
			if err != nil {
				return
			}
			peerGot <- m
		}
	}()

	// A raw client connection (no auto-reconnect) registered with the host.
	cl, err := nw.Dial(h.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Send(&protocol.ClientHello{Client: 42, Pos: geom.Pt(100, 100)}); err != nil {
		t.Fatal(err)
	}
	clientGot := make(chan protocol.Message, 16)
	go func() {
		for {
			m, err := cl.Recv()
			if err != nil {
				return
			}
			clientGot <- m
		}
	}()
	waitFor(t, "client registered", func() bool {
		h.mu.Lock()
		defer h.mu.Unlock()
		return h.clients[42] != nil
	})

	// Establish the peer connection first (warm-up frame), so the ordered
	// flush below runs synchronously on the established connection.
	h.sendPeerMsgs("peer:x", fwd(0))
	select {
	case <-peerGot:
	case <-time.After(5 * time.Second):
		t.Fatal("warm-up frame never arrived")
	}

	// Simulate what the tick goroutine does during a migration: the state
	// transfer is routed first and must be DEFERRED into the batch (the S2
	// fix — before it, another goroutine could push it onto the wire out of
	// order), then the redirect flushes the batch ahead of itself.
	batch := make(map[string][]protocol.Message)
	st := &protocol.StateTransfer{From: h.ID(), To: 99, Final: true}
	h.routeCore([]core.Envelope{{Dest: core.DestPeer, Peer: 99, Addr: "peer:x", Msg: st}}, batch)
	if len(batch["peer:x"]) != 1 {
		t.Fatalf("state transfer not deferred into batch: %v", batch)
	}
	select {
	case m := <-peerGot:
		t.Fatalf("peer already received %v before the flush", m.MsgType())
	default:
	}

	h.routeGame([]gameserver.Envelope{{
		Dest:   gameserver.DestClient,
		Client: 42,
		Msg:    &protocol.Redirect{Client: 42, NewOwner: 99, NewAddr: "peer:x"},
	}}, batch)

	// The redirect arrives; the state transfer was sent on the (established,
	// single-writer) peer connection before it, so it must already be there.
	waitForMsg := func(ch chan protocol.Message, want protocol.MsgType) protocol.Message {
		deadline := time.After(5 * time.Second)
		for {
			select {
			case m := <-ch:
				if m.MsgType() == want {
					return m
				}
			case <-deadline:
				t.Fatalf("no %v frame arrived", want)
			}
		}
	}
	waitForMsg(clientGot, protocol.TypeRedirect)
	select {
	case m := <-peerGot:
		if m.MsgType() != protocol.TypeStateTransfer {
			t.Fatalf("peer got %v, want state transfer", m.MsgType())
		}
	case <-time.After(time.Second):
		t.Fatal("state transfer not on the peer connection after the redirect was delivered")
	}
}

// TestIngressFunnelOverflowDrops pins the funnel's bound: beyond maxIngress
// parked messages, enqueueIngress drops rather than growing without limit.
func TestIngressFunnelOverflowDrops(t *testing.T) {
	nw := transport.NewMemNetwork()
	mc, err := ServeCoordinator(nw, "", coordinatorConfigForTest(), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mc.Close() })
	// A near-stopped tick loop so the funnel is not drained mid-test.
	h, err := StartServer(ServerConfig{
		Network:      nw,
		Coordinator:  mc.Addr(),
		Radius:       40,
		TickInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { h.Close() })

	h.ingressMu.Lock()
	h.ingress = make([]ingressMsg, maxIngress)
	h.ingressMu.Unlock()
	h.enqueueIngress(id.None, fwd(1))
	h.ingressMu.Lock()
	n := len(h.ingress)
	h.ingress = nil
	h.ingressMu.Unlock()
	if n != maxIngress {
		t.Fatalf("ingress grew to %d, want overflow drop at %d", n, maxIngress)
	}
}

// TestIngressFunnelConcurrentEnqueue drives the funnel from several
// goroutines at once — the mcLoop/peer-pump interleaving of the S2 bug —
// and checks every message is processed by the tick goroutine (inbound
// state transfers reach the game server via core routing, and nothing
// races).
func TestIngressFunnelConcurrentEnqueue(t *testing.T) {
	nw := transport.NewMemNetwork()
	_, hosts := startCluster(t, nw, 1, load.Config{})
	h := hosts[0]

	const writers, perWriter = 4, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// Inbound transfer addressed to us: core routes it to the
				// game server — a benign, countable path.
				h.enqueueIngress(99, &protocol.StateTransfer{From: 99, To: h.ID(), Final: true})
			}
		}()
	}
	wg.Wait()
	waitFor(t, "funnel drained", func() bool {
		h.ingressMu.Lock()
		defer h.ingressMu.Unlock()
		return len(h.ingress) == 0
	})
}

// coordinatorConfigForTest returns the config startCluster uses, for tests
// that build hosts by hand.
func coordinatorConfigForTest() coordinator.Config {
	return coordinator.Config{World: geom.R(0, 0, 1000, 1000)}
}

// TestMiddlewareAuthAndRateLimitOverWire runs the chain end to end: a
// tokenless client is rejected at the hello, an authenticated client joins,
// and its update flood is rate limited while control frames flow.
func TestMiddlewareAuthAndRateLimitOverWire(t *testing.T) {
	nw := transport.NewMemNetwork()
	mc, err := ServeCoordinator(nw, "", coordinatorConfigForTest(), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mc.Close() })
	h, err := StartServer(ServerConfig{
		Network:      nw,
		Coordinator:  mc.Addr(),
		Radius:       40,
		TickInterval: 2 * time.Millisecond,
		Middleware: middleware.Config{
			Stages:          []string{middleware.StageAuth, middleware.StageRateLimit},
			AuthSecret:      "s3cret",
			RateLimitPerSec: 0.001, // effectively: the burst and nothing more
			RateLimitBurst:  2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { h.Close() })

	// Wrong token: the hello is rejected before the join, so the client
	// never sees a welcome.
	if _, err := DialClient(ClientConfig{
		Network:        nw,
		ServerAddr:     h.Addr(),
		AuthToken:      "wrong",
		Client:         gameclient.Config{ID: 1, Pos: geom.Pt(100, 100)},
		WelcomeTimeout: 300 * time.Millisecond,
	}); err != ErrNotWelcomed {
		t.Fatalf("bad-token dial error = %v, want ErrNotWelcomed", err)
	}
	if got := h.mw.Stats().AuthFailed.Value(); got != 1 {
		t.Fatalf("AuthFailed = %d, want 1", got)
	}

	// Right token: joins normally.
	ch, err := DialClient(ClientConfig{
		Network:    nw,
		ServerAddr: h.Addr(),
		AuthToken:  "s3cret",
		Client:     gameclient.Config{ID: 2, Pos: geom.Pt(100, 100)},
	})
	if err != nil {
		t.Fatalf("DialClient with token: %v", err)
	}
	defer ch.Close()

	// Flood updates: the burst admits two, the rest are shed at the wire.
	for i := 0; i < 10; i++ {
		if err := ch.Send(ch.Client().MakeAction(protocol.KindAction, geom.Pt(101, 100))); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "rate limiting", func() bool {
		return h.mw.Stats().RateLimited.Value() >= 8
	})
	waitFor(t, "burst echoed", func() bool {
		return ch.Client().Stats().EchoCount >= 2
	})
	if got := ch.Client().Stats().EchoCount; got > 2 {
		t.Fatalf("EchoCount = %d, want exactly the burst of 2", got)
	}
}

// TestServeMetricsEndpoint scrapes the /metrics endpoints of a server (with
// a middleware chain) and the coordinator once, and checks the core series
// are present.
func TestServeMetricsEndpoint(t *testing.T) {
	nw := transport.NewMemNetwork()
	mc, err := ServeCoordinator(nw, "", coordinatorConfigForTest(), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mc.Close() })
	h, err := StartServer(ServerConfig{
		Network:      nw,
		Coordinator:  mc.Addr(),
		Radius:       40,
		TickInterval: 2 * time.Millisecond,
		Middleware: middleware.Config{
			Stages:    []string{middleware.StageRateLimit, middleware.StageAdmission},
			ShedQueue: 100,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { h.Close() })

	scrape := func(serve func(string) (string, io.Closer, error)) string {
		t.Helper()
		addr, closer, err := serve("127.0.0.1:0")
		if err != nil {
			t.Fatalf("ServeMetrics: %v", err)
		}
		defer closer.Close()
		resp, err := http.Get("http://" + addr + "/metrics")
		if err != nil {
			t.Fatalf("scrape: %v", err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("scrape status %d", resp.StatusCode)
		}
		return string(body)
	}

	sbody := scrape(h.ServeMetrics)
	for _, want := range []string{
		"matrix_server_clients ",
		"matrix_server_queue_len ",
		"matrix_server_peer_conns ",
		"matrix_mw_dropped_total",
	} {
		if !strings.Contains(sbody, want) {
			t.Errorf("server scrape missing %q:\n%s", want, sbody)
		}
	}
	cbody := scrape(mc.ServeMetrics)
	for _, want := range []string{
		"matrix_mc_server_conns 1",
		"matrix_mc_active_servers 1",
		"matrix_mc_splits_total 0",
	} {
		if !strings.Contains(cbody, want) {
			t.Errorf("coordinator scrape missing %q:\n%s", want, cbody)
		}
	}
}
