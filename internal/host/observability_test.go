package host

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"matrix/internal/coordinator"
	"matrix/internal/gameclient"
	"matrix/internal/geom"
	"matrix/internal/protocol"
	"matrix/internal/trace"
	"matrix/internal/transport"
)

// httpGet fetches one URL and returns status and body.
func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// TestServerHostTracing attaches a tracer to a live server host, pushes a
// client packet through it, and checks the ring holds tick-phase slices
// and a complete packet span, exporting as valid trace JSON.
func TestServerHostTracing(t *testing.T) {
	nw := transport.NewMemNetwork()
	mc, err := ServeCoordinator(nw, "", coordinator.Config{World: geom.R(0, 0, 1000, 1000)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	tr := trace.New(1 << 16)
	sh, err := StartServer(ServerConfig{
		Network:        nw,
		Coordinator:    mc.Addr(),
		Radius:         40,
		TickInterval:   2 * time.Millisecond,
		ReportInterval: 50 * time.Millisecond,
		Tracer:         tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()

	ch, err := DialClient(ClientConfig{
		Network:    nw,
		ServerAddr: sh.Addr(),
		Client:     gameclient.Config{ID: 7, Pos: geom.Pt(100, 100)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ch.Close()
	if err := ch.Send(ch.Client().MakeAction(protocol.KindAction, geom.Pt(101, 100))); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "echo", func() bool { return ch.Client().Stats().EchoCount >= 1 })

	// Stop the host before reading the ring so the snapshot holds the
	// complete run — a live Events() call is safe but would race the
	// arrival of the very spans this test asserts on.
	_ = ch.Close()
	if err := sh.Close(); err != nil {
		t.Fatal(err)
	}

	slices := map[string]bool{}
	spans := map[uint64]map[byte]bool{}
	for _, e := range tr.Events() {
		switch e.Ph {
		case trace.PhaseSlice:
			slices[e.Name] = true
		case trace.PhaseAsyncBegin, trace.PhaseAsyncEnd:
			m := spans[e.ID]
			if m == nil {
				m = map[byte]bool{}
				spans[e.ID] = m
			}
			m[e.Ph] = true
		}
	}
	for _, want := range []string{"drain-ingress", "process", "route-flush", "tick"} {
		if !slices[want] {
			t.Errorf("no %q slice in live trace", want)
		}
	}
	complete := 0
	for _, phs := range spans {
		if phs[trace.PhaseAsyncBegin] && phs[trace.PhaseAsyncEnd] {
			complete++
		}
	}
	if complete == 0 {
		t.Errorf("no complete packet span (begin+end); spans: %d", len(spans))
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := trace.ValidateJSON(buf.Bytes()); err != nil {
		t.Errorf("live trace export invalid: %v", err)
	}
}

// TestServerHostMetricsAndHealth scrapes a traced server host's metrics
// endpoint: tick-phase summaries and runtime gauges must render, the
// phase histograms must reset between scrapes, and /healthz and /readyz
// must report the host's state (ready while serving, 503 once the MC
// connection dies).
func TestServerHostMetricsAndHealth(t *testing.T) {
	nw := transport.NewMemNetwork()
	mc, err := ServeCoordinator(nw, "", coordinator.Config{World: geom.R(0, 0, 1000, 1000)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	sh, err := StartServer(ServerConfig{
		Network:        nw,
		Coordinator:    mc.Addr(),
		Radius:         40,
		TickInterval:   2 * time.Millisecond,
		ReportInterval: 50 * time.Millisecond,
		Tracer:         trace.New(1 << 16),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	addr, closer, err := sh.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()

	waitFor(t, "ticks", func() bool { return sh.ticks.Load() > 10 })
	code, body := httpGet(t, "http://"+addr+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"matrix_server_clients",
		"matrix_server_ticks",
		"matrix_tick_total_ms_count",
		"matrix_tick_total_ms{quantile=\"0.5\"}",
		"matrix_runtime_goroutines",
		"matrix_runtime_heap_inuse_bytes",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Reset-on-scrape: an immediate second scrape must carry fewer
	// tick-phase samples than the ticks accumulated so far.
	_, body2 := httpGet(t, "http://"+addr+"/metrics")
	if !strings.Contains(body2, "matrix_tick_total_ms_count") {
		t.Fatalf("second scrape missing tick histogram")
	}
	var n int
	for _, line := range strings.Split(body2, "\n") {
		if strings.HasPrefix(line, "matrix_tick_total_ms_count ") {
			if _, err := fmt.Sscanf(line, "matrix_tick_total_ms_count %d", &n); err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
		}
	}
	if n > int(sh.ticks.Load()) {
		t.Errorf("tick histogram not reset on scrape: count %d > total ticks %d", n, sh.ticks.Load())
	}

	if code, body := httpGet(t, "http://"+addr+"/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Errorf("/healthz = %d %q, want 200 ok", code, body)
	}
	if code, _ := httpGet(t, "http://"+addr+"/readyz"); code != http.StatusOK {
		t.Errorf("/readyz = %d while serving, want 200", code)
	}

	// Kill the MC connection: readiness must flip, liveness must not.
	mc.Close()
	waitFor(t, "readyz 503", func() bool {
		code, _ := httpGet(t, "http://"+addr+"/readyz")
		return code == http.StatusServiceUnavailable
	})
	if code, _ := httpGet(t, "http://"+addr+"/healthz"); code != http.StatusOK {
		t.Errorf("/healthz = %d after MC loss, want 200 (process is alive)", code)
	}
}

// TestCoordinatorHostMetricsAndHealth covers the MC-side endpoint: the
// coordinator gauges and runtime metrics render, and readiness tracks the
// host's closed state.
func TestCoordinatorHostMetricsAndHealth(t *testing.T) {
	nw := transport.NewMemNetwork()
	mc, err := ServeCoordinator(nw, "", coordinator.Config{World: geom.R(0, 0, 1000, 1000)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	addr, closer, err := mc.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()

	code, body := httpGet(t, "http://"+addr+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{"matrix_mc_active_servers", "matrix_runtime_goroutines"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if code, _ := httpGet(t, "http://"+addr+"/readyz"); code != http.StatusOK {
		t.Errorf("/readyz = %d while serving, want 200", code)
	}
	mc.Close()
	waitFor(t, "readyz 503 after close", func() bool {
		code, _ := httpGet(t, "http://"+addr+"/readyz")
		return code == http.StatusServiceUnavailable
	})
}

// TestUntracedHostHasNoTickHistograms pins the off-by-default contract:
// without a Tracer the scrape carries no tick-phase summaries and the hot
// path never touches the histogram registry.
func TestUntracedHostHasNoTickHistograms(t *testing.T) {
	nw := transport.NewMemNetwork()
	mc, err := ServeCoordinator(nw, "", coordinator.Config{World: geom.R(0, 0, 1000, 1000)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	sh, err := StartServer(ServerConfig{
		Network:        nw,
		Coordinator:    mc.Addr(),
		Radius:         40,
		TickInterval:   2 * time.Millisecond,
		ReportInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	addr, closer, err := sh.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	waitFor(t, "ticks", func() bool { return sh.ticks.Load() > 5 })
	_, body := httpGet(t, "http://"+addr+"/metrics")
	if strings.Contains(body, "matrix_tick_") {
		t.Error("untraced host scrape carries tick-phase histograms")
	}
	if !strings.Contains(body, "matrix_runtime_goroutines") {
		t.Error("untraced host scrape missing runtime gauges")
	}
}
