// Live-host observability: tick-phase slices and packet-path events for a
// ServerHost with a Tracer attached, plus the readiness probe backing
// /readyz.
//
// Unlike the simulator (which runs on a virtual clock), the live host uses
// the tracer's default clock — wall microseconds since the tracer was
// created — so slices from the tick loop and async packet spans from the
// connection pumps land on one shared timeline. The tick-phase histograms
// live in a host-local registry that writeMetrics resets after every
// scrape, keeping the raw-sample store bounded by the scrape interval.
package host

import (
	"errors"

	"matrix/internal/id"
	"matrix/internal/protocol"
)

// Trace track layout for a live host: one process (the host), with the
// tick loop on tid 1 and connection-pump events on tid 2. Packet spans are
// async events, so they render on their own id-keyed tracks.
const (
	hostTracePid     = 1
	hostTraceTidTick = 1
	hostTraceTidNet  = 2
)

// hostPhaseHistograms names the tick-phase histograms writeMetrics renders
// and resets each scrape (milliseconds per tick spent in each phase).
var hostPhaseHistograms = []string{
	"tick/drain-ms",
	"tick/process-ms",
	"tick/route-ms",
	"tick/total-ms",
}

// hostPacketID correlates one client packet across the host's layers: the
// client id in the high bits, the packet sequence in the low 24 — the same
// scheme the simulator uses, so tooling reads both the same way.
func hostPacketID(c id.ClientID, seq id.PacketSeq) uint64 {
	return uint64(c)<<24 | uint64(seq)&0xFFFFFF
}

// traceTick closes the tick's phase slices and feeds the phase histograms.
// t0..t3 bracket drainIngress, ProcessAppend, and routeGame+flushBatches.
// Called from the tick goroutine only, and only while tracing.
func (h *ServerHost) traceTick(t0, t1, t2, t3 int64) {
	h.tr.Slice(hostTracePid, hostTraceTidTick, "drain-ingress", t0, t1-t0)
	h.tr.Slice(hostTracePid, hostTraceTidTick, "process", t1, t2-t1)
	h.tr.Slice(hostTracePid, hostTraceTidTick, "route-flush", t2, t3-t2)
	h.tr.Slice(hostTracePid, hostTraceTidTick, "tick", t0, t3-t0)
	h.treg.Histogram("tick/drain-ms").Observe(float64(t1-t0) / 1000)
	h.treg.Histogram("tick/process-ms").Observe(float64(t2-t1) / 1000)
	h.treg.Histogram("tick/route-ms").Observe(float64(t3-t2) / 1000)
	h.treg.Histogram("tick/total-ms").Observe(float64(t3-t0) / 1000)
}

// tracePacketIn opens a packet span when a client game update clears the
// middleware chain and enters the inbox. Runs on the client's connection
// goroutine; the tracer is lock-free, so this is safe alongside the tick.
func (h *ServerHost) tracePacketIn(m protocol.Message) {
	if u, ok := m.(*protocol.GameUpdate); ok {
		h.tr.AsyncBegin(hostTracePid, "packet", "packet", hostPacketID(u.Client, u.Seq), h.tr.Now())
	}
}

// tracePeerForward marks a packet leaving for a peer Matrix server.
func (h *ServerHost) tracePeerForward(m protocol.Message) {
	if f, ok := m.(*protocol.Forward); ok {
		h.tr.AsyncStep(hostTracePid, "packet", "peer-forward", hostPacketID(f.Update.Client, f.Update.Seq), h.tr.Now())
	}
}

// tracePeerHandle marks a forwarded packet entering this host's core from
// the ingress funnel.
func (h *ServerHost) tracePeerHandle(m protocol.Message) {
	if f, ok := m.(*protocol.Forward); ok {
		h.tr.AsyncStep(hostTracePid, "packet", "peer-handle", hostPacketID(f.Update.Client, f.Update.Seq), h.tr.Now())
	}
}

// tracePacketOut closes a packet span when the client's own update echoes
// back to it (the delivery the sim's latency measure uses too).
func (h *ServerHost) tracePacketOut(c id.ClientID, m protocol.Message) {
	if u, ok := m.(*protocol.GameUpdate); ok && u.Client == c {
		h.tr.AsyncEnd(hostTracePid, "packet", "packet", hostPacketID(u.Client, u.Seq), h.tr.Now())
	}
}

// Ready is the /readyz probe: nil while the host can serve traffic. It
// reports an error once the coordinator connection is lost, the host is
// closed, or a drain-for-exit has evacuated the node (a drain back to the
// spare pool keeps the host ready — it is still serving).
func (h *ServerHost) Ready() error {
	if h.mcDown.Load() {
		return errors.New("coordinator connection lost")
	}
	h.mu.Lock()
	closed := h.closed
	h.mu.Unlock()
	if closed {
		return errors.New("host closed")
	}
	select {
	case <-h.drained:
		if h.drainExit.Load() {
			return errors.New("drained for exit")
		}
	default:
	}
	return nil
}
