// Package metrics provides the measurement primitives behind every table
// and figure in the evaluation: counters, gauges, histograms with quantile
// estimation, and per-tick time series (the paper's Figure 2 plots client
// counts and queue lengths against time).
package metrics

import (
	"fmt"
	"maps"
	"math"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter, safe for concurrent use.
// Increments are a single atomic add — no lock traffic on hot paths.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d (negative deltas are ignored: counters are
// monotone by contract).
func (c *Counter) Add(d int64) {
	if d < 0 {
		return
	}
	c.v.Add(d)
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous value, safe for concurrent use. The float is
// stored as its IEEE-754 bits in an atomic word; Add is a CAS loop, so
// concurrent adjustments never lose updates and reads never block.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by d (may be negative).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram accumulates observations and reports count/mean/quantiles. It
// stores raw samples (the experiment scales here are small enough that the
// exactness is worth more than a sketch's memory savings).
type Histogram struct {
	mu      sync.Mutex
	samples []float64
	sorted  bool
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.samples = append(h.samples, v)
	h.sorted = false
	h.mu.Unlock()
}

// Count returns the number of samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Mean returns the sample mean (0 when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	var s float64
	for _, v := range h.samples {
		s += v
	}
	return s / float64(len(h.samples))
}

// Max returns the largest sample (0 when empty).
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	m := math.Inf(-1)
	for _, v := range h.samples {
		if v > m {
			m = v
		}
	}
	return m
}

// Quantile returns the q-quantile (0<=q<=1) using nearest-rank on the sorted
// samples; 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	if q <= 0 {
		return h.samples[0]
	}
	if q >= 1 {
		return h.samples[n-1]
	}
	idx := int(math.Ceil(q*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return h.samples[idx]
}

// Stddev returns the sample standard deviation (0 for fewer than 2 samples).
func (h *Histogram) Stddev() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.samples)
	if n < 2 {
		return 0
	}
	var sum float64
	for _, v := range h.samples {
		sum += v
	}
	mean := sum / float64(n)
	var ss float64
	for _, v := range h.samples {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Samples returns a copy of the raw samples in their current in-memory
// order (insertion order, or sorted if a quantile has been computed). Used
// by the snapshot subsystem; restoring the copy with NewHistogramFromSamples
// reproduces the histogram exactly.
func (h *Histogram) Samples() []float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]float64, len(h.samples))
	copy(out, h.samples)
	return out
}

// NewHistogramFromSamples rebuilds a histogram from a sample snapshot. The
// slice is copied.
func NewHistogramFromSamples(samples []float64) *Histogram {
	h := &Histogram{samples: make([]float64, len(samples))}
	copy(h.samples, samples)
	return h
}

// Reset discards all samples.
func (h *Histogram) Reset() {
	h.mu.Lock()
	h.samples = h.samples[:0]
	h.sorted = false
	h.mu.Unlock()
}

// Summary renders count/mean/p50/p95/p99/max on one line.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f",
		h.Count(), h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Max())
}

// Series is a named time series: (time, value) pairs appended in time order,
// exactly what the paper's Figure 2 graphs are made of.
type Series struct {
	mu     sync.Mutex
	name   string
	times  []float64
	values []float64
}

// NewSeries creates an empty series with a display name.
func NewSeries(name string) *Series { return &Series{name: name} }

// Name returns the series name.
func (s *Series) Name() string { return s.name }

// Append records the value at time t (seconds).
func (s *Series) Append(t, v float64) {
	s.mu.Lock()
	s.times = append(s.times, t)
	s.values = append(s.values, v)
	s.mu.Unlock()
}

// Len returns the number of points.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.times)
}

// Points returns copies of the time and value slices.
func (s *Series) Points() (times, values []float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	times = make([]float64, len(s.times))
	values = make([]float64, len(s.values))
	copy(times, s.times)
	copy(values, s.values)
	return times, values
}

// At returns the value recorded at the largest time <= t (0 if none).
func (s *Series) At(t float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	idx := sort.SearchFloat64s(s.times, t)
	if idx < len(s.times) && s.times[idx] == t {
		return s.values[idx]
	}
	if idx == 0 {
		return 0
	}
	return s.values[idx-1]
}

// Max returns the maximum value in the series (0 when empty).
func (s *Series) Max() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := 0.0
	for _, v := range s.values {
		if v > m {
			m = v
		}
	}
	return m
}

// Registry groups counters, gauges, histograms and series under string
// names. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	series     map[string]*Series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		series:     make(map[string]*Series),
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Series returns (creating if needed) the named series.
func (r *Registry) Series(name string) *Series {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.series[name]
	if !ok {
		s = NewSeries(name)
		r.series[name] = s
	}
	return s
}

// SeriesNames returns the sorted names of all series (useful for rendering
// per-server plots whose server set is dynamic).
func (r *Registry) SeriesNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.series))
	for n := range r.series {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// --- snapshot support ---
//
// RegistryState is a registry's serializable snapshot. Every collection is a
// name-sorted slice (never a map), so encoding a state twice produces
// byte-identical output — the property the snapshot subsystem's golden files
// pin.

// CounterState is one counter's snapshot.
type CounterState struct {
	Name  string
	Value int64
}

// GaugeState is one gauge's snapshot.
type GaugeState struct {
	Name  string
	Value float64
}

// HistogramState is one histogram's snapshot (samples in in-memory order).
type HistogramState struct {
	Name    string
	Samples []float64
}

// SeriesState is one time series' snapshot.
type SeriesState struct {
	Name   string
	Times  []float64
	Values []float64
}

// RegistryState is the whole registry's snapshot.
type RegistryState struct {
	Counters   []CounterState
	Gauges     []GaugeState
	Histograms []HistogramState
	Series     []SeriesState
}

// State snapshots every instrument in the registry, name-sorted.
func (r *Registry) State() RegistryState {
	r.mu.Lock()
	defer r.mu.Unlock()
	var st RegistryState
	for _, n := range sortedKeys(r.counters) {
		st.Counters = append(st.Counters, CounterState{Name: n, Value: r.counters[n].Value()})
	}
	for _, n := range sortedKeys(r.gauges) {
		st.Gauges = append(st.Gauges, GaugeState{Name: n, Value: r.gauges[n].Value()})
	}
	for _, n := range sortedKeys(r.histograms) {
		st.Histograms = append(st.Histograms, HistogramState{Name: n, Samples: r.histograms[n].Samples()})
	}
	for _, n := range sortedKeys(r.series) {
		times, values := r.series[n].Points()
		st.Series = append(st.Series, SeriesState{Name: n, Times: times, Values: values})
	}
	return st
}

// NewRegistryFromState rebuilds a registry from a snapshot. All slices are
// copied; the state stays usable for further restores.
func NewRegistryFromState(st RegistryState) *Registry {
	r := NewRegistry()
	for _, c := range st.Counters {
		r.counters[c.Name] = &Counter{}
		r.counters[c.Name].Add(c.Value)
	}
	for _, g := range st.Gauges {
		r.gauges[g.Name] = &Gauge{}
		r.gauges[g.Name].Set(g.Value)
	}
	for _, h := range st.Histograms {
		r.histograms[h.Name] = NewHistogramFromSamples(h.Samples)
	}
	for _, s := range st.Series {
		ns := NewSeries(s.Name)
		ns.times = make([]float64, len(s.Times))
		copy(ns.times, s.Times)
		ns.values = make([]float64, len(s.Values))
		copy(ns.values, s.Values)
		r.series[s.Name] = ns
	}
	return r
}

// sortedKeys returns a map's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	return slices.Sorted(maps.Keys(m))
}

// SeriesByPrefix returns all series whose name starts with prefix, sorted.
func (r *Registry) SeriesByPrefix(prefix string) []*Series {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.series))
	for n := range r.series {
		if strings.HasPrefix(n, prefix) {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	out := make([]*Series, len(names))
	for i, n := range names {
		out[i] = r.series[n]
	}
	return out
}
