package metrics

import (
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"runtime"
	"sort"
	"strings"
)

// PromName sanitizes an instrument name ("server/queue-len") into a
// Prometheus metric name ("matrix_server_queue_len"): a fixed matrix_
// prefix, with every rune outside [a-zA-Z0-9] mapped to '_'.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len("matrix_") + len(name))
	b.WriteString("matrix_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// summaryQuantiles are the quantile labels every histogram exports.
var summaryQuantiles = []float64{0.5, 0.95, 0.99}

// WritePrometheus renders every counter, gauge and histogram in reg in the
// Prometheus text exposition format. Counters get a _total suffix;
// histograms export as summaries: quantile-labelled sample lines (p50, p95,
// p99 by nearest rank) plus _count and _sum. Empty histograms export only
// _count 0 and _sum 0 — never a NaN quantile. Instruments appear in name
// order (Registry.State is name-sorted), so two scrapes of the same state
// are byte-identical. Series are a simulation artifact and are not scraped.
func WritePrometheus(w io.Writer, reg *Registry) {
	st := reg.State()
	for _, c := range st.Counters {
		n := PromName(c.Name) + "_total"
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, c.Value)
	}
	for _, g := range st.Gauges {
		n := PromName(g.Name)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", n, n, g.Value)
	}
	for _, h := range st.Histograms {
		n := PromName(h.Name)
		fmt.Fprintf(w, "# TYPE %s summary\n", n)
		var sum float64
		for _, s := range h.Samples {
			sum += s
		}
		if len(h.Samples) > 0 {
			sorted := append([]float64(nil), h.Samples...)
			sort.Float64s(sorted)
			for _, q := range summaryQuantiles {
				fmt.Fprintf(w, "%s{quantile=\"%g\"} %g\n", n, q, nearestRank(sorted, q))
			}
		}
		fmt.Fprintf(w, "%s_count %d\n%s_sum %g\n", n, len(h.Samples), n, sum)
	}
}

// nearestRank returns the q-quantile of sorted (non-empty) samples, the same
// nearest-rank rule Histogram.Quantile uses, so a scrape and a Summary()
// line never disagree.
func nearestRank(sorted []float64, q float64) float64 {
	n := len(sorted)
	idx := int(math.Ceil(q*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return sorted[idx]
}

// WriteRuntime appends Go runtime health gauges to a scrape: goroutine
// count, 99th-percentile GC pause over the runtime's recent-pause window,
// and heap bytes in use. Both hosts call this so every /metrics endpoint
// answers "is this process itself healthy" without attaching pprof.
func WriteRuntime(w io.Writer) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Fprintf(w, "# TYPE matrix_runtime_goroutines gauge\nmatrix_runtime_goroutines %d\n",
		runtime.NumGoroutine())
	fmt.Fprintf(w, "# TYPE matrix_runtime_gc_pause_p99_seconds gauge\nmatrix_runtime_gc_pause_p99_seconds %g\n",
		gcPauseP99(&ms))
	fmt.Fprintf(w, "# TYPE matrix_runtime_heap_inuse_bytes gauge\nmatrix_runtime_heap_inuse_bytes %d\n",
		ms.HeapInuse)
}

// gcPauseP99 computes the p99 GC pause in seconds from MemStats' circular
// pause buffer (up to the last 256 GCs); 0 before the first GC.
func gcPauseP99(ms *runtime.MemStats) float64 {
	n := int(ms.NumGC)
	if n == 0 {
		return 0
	}
	if n > len(ms.PauseNs) {
		n = len(ms.PauseNs)
	}
	pauses := make([]float64, n)
	for i := 0; i < n; i++ {
		pauses[i] = float64(ms.PauseNs[i])
	}
	sort.Float64s(pauses)
	return nearestRank(pauses, 0.99) / 1e9
}

// metricsServer ties an HTTP server to its listener for Close.
type metricsServer struct {
	srv *http.Server
}

// Close implements io.Closer.
func (m *metricsServer) Close() error { return m.srv.Close() }

// Serve starts an HTTP server on addr exposing GET /metrics, rendered by
// write on every scrape (write runs on the HTTP handler goroutine; callers
// typically refresh gauges there before rendering). It returns the bound
// address — useful when addr requests an ephemeral port — and a closer
// that stops the server.
func Serve(addr string, write func(io.Writer)) (string, io.Closer, error) {
	return ServeWith(addr, write, nil)
}

// ServeWith is Serve plus health probes: /healthz always answers 200 (the
// process is alive and serving), and /readyz answers 200 when ready()
// returns nil or 503 with the error text when it doesn't (nil ready = always
// ready). Orchestrators point liveness at /healthz and traffic-gating at
// /readyz; see docs/OPERATIONS.md.
func ServeWith(addr string, write func(io.Writer), ready func() error) (string, io.Closer, error) {
	return ServeMux(addr, write, ready, nil)
}

// ServeMux is ServeWith plus caller-supplied endpoints (e.g. the
// coordinator's /fleetz snapshot), registered on the same listener beside
// /metrics and the health probes. Patterns colliding with the built-in
// routes panic, as with any ServeMux double-registration.
func ServeMux(addr string, write func(io.Writer), ready func() error, extra map[string]http.HandlerFunc) (string, io.Closer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("metrics: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	for pattern, h := range extra {
		mux.HandleFunc(pattern, h)
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		write(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if ready != nil {
			if err := ready(); err != nil {
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprintln(w, err.Error())
				return
			}
		}
		fmt.Fprintln(w, "ready")
	})
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), &metricsServer{srv: srv}, nil
}
