package metrics

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
)

// PromName sanitizes an instrument name ("server/queue-len") into a
// Prometheus metric name ("matrix_server_queue_len"): a fixed matrix_
// prefix, with every rune outside [a-zA-Z0-9] mapped to '_'.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len("matrix_") + len(name))
	b.WriteString("matrix_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders every counter, gauge and histogram in reg in the
// Prometheus text exposition format. Counters get a _total suffix;
// histograms export their _count and _sum (the raw-sample store has no
// fixed buckets). Series are a simulation artifact and are not scraped.
func WritePrometheus(w io.Writer, reg *Registry) {
	st := reg.State()
	for _, c := range st.Counters {
		n := PromName(c.Name) + "_total"
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, c.Value)
	}
	for _, g := range st.Gauges {
		n := PromName(g.Name)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", n, n, g.Value)
	}
	for _, h := range st.Histograms {
		n := PromName(h.Name)
		var sum float64
		for _, s := range h.Samples {
			sum += s
		}
		fmt.Fprintf(w, "# TYPE %s summary\n%s_count %d\n%s_sum %g\n", n, n, len(h.Samples), n, sum)
	}
}

// metricsServer ties an HTTP server to its listener for Close.
type metricsServer struct {
	srv *http.Server
}

// Close implements io.Closer.
func (m *metricsServer) Close() error { return m.srv.Close() }

// Serve starts an HTTP server on addr exposing GET /metrics, rendered by
// write on every scrape (write runs on the HTTP handler goroutine; callers
// typically refresh gauges there before rendering). It returns the bound
// address — useful when addr requests an ephemeral port — and a closer
// that stops the server.
func Serve(addr string, write func(io.Writer)) (string, io.Closer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("metrics: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		write(w)
	})
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), &metricsServer{srv: srv}, nil
}
