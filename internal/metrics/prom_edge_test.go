package metrics

import (
	"bytes"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestEmptyHistogramQuantiles pins the empty-histogram contract end to end:
// the accessor answers 0 (never NaN), and a histogram emptied by Reset
// scrapes exactly like one that never observed — count/sum zeros, no
// quantile lines.
func TestEmptyHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%g) = %g, want 0", q, got)
		}
	}

	reg := NewRegistry()
	reg.Histogram("edge/reset-ms").Observe(42)
	before := scrape(reg)
	if !strings.Contains(before, `matrix_edge_reset_ms{quantile="0.5"} 42`) {
		t.Fatalf("populated histogram missing quantile line:\n%s", before)
	}
	reg.Histogram("edge/reset-ms").Reset()
	after := scrape(reg)
	if strings.Contains(after, "quantile") || strings.Contains(after, "NaN") {
		t.Errorf("reset histogram still emits quantiles:\n%s", after)
	}
	for _, line := range []string{"matrix_edge_reset_ms_count 0\n", "matrix_edge_reset_ms_sum 0\n"} {
		if !strings.Contains(after, line) {
			t.Errorf("reset histogram scrape missing %q:\n%s", line, after)
		}
	}
}

// TestHistogramResetConcurrentWithScrape hammers one histogram with
// observers and resetters while a scraper renders the registry. Run under
// -race (CI does) it proves Reset, Observe and the scrape's State() copy
// share nothing hot; the assertions check every scrape stays well-formed
// (counts parse, never negative, no NaN) no matter where a Reset lands.
func TestHistogramResetConcurrentWithScrape(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("edge/churn-ms")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 2; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					h.Observe(1.5)
				}
			}
		}()
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					h.Reset()
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		out := scrape(reg)
		if strings.Contains(out, "NaN") {
			t.Fatalf("scrape %d emitted NaN:\n%s", i, out)
		}
		idx := strings.Index(out, "matrix_edge_churn_ms_count ")
		if idx < 0 {
			t.Fatalf("scrape %d missing count line:\n%s", i, out)
		}
		rest := out[idx+len("matrix_edge_churn_ms_count "):]
		n, err := strconv.Atoi(rest[:strings.IndexByte(rest, '\n')])
		if err != nil || n < 0 {
			t.Fatalf("scrape %d count unparseable (%v): %q", i, err, rest)
		}
	}
	close(stop)
	wg.Wait()
}

// TestWriteRuntimeShape pins the exact exposition shape: the three runtime
// gauges, each a TYPE line followed by a sample line whose value parses,
// goroutines >= 1 and heap bytes > 0 in any live process.
func TestWriteRuntimeShape(t *testing.T) {
	var buf bytes.Buffer
	WriteRuntime(&buf)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	want := []string{
		"matrix_runtime_goroutines",
		"matrix_runtime_gc_pause_p99_seconds",
		"matrix_runtime_heap_inuse_bytes",
	}
	if len(lines) != 2*len(want) {
		t.Fatalf("WriteRuntime emitted %d lines, want %d:\n%s", len(lines), 2*len(want), buf.String())
	}
	vals := map[string]float64{}
	for i, name := range want {
		if typeLine := "# TYPE " + name + " gauge"; lines[2*i] != typeLine {
			t.Errorf("line %d = %q, want %q", 2*i, lines[2*i], typeLine)
		}
		sample := lines[2*i+1]
		if !strings.HasPrefix(sample, name+" ") {
			t.Fatalf("line %d = %q, want a %s sample", 2*i+1, sample, name)
		}
		v, err := strconv.ParseFloat(sample[len(name)+1:], 64)
		if err != nil {
			t.Fatalf("%s value unparseable: %v", name, err)
		}
		vals[name] = v
	}
	if vals["matrix_runtime_goroutines"] < 1 {
		t.Errorf("goroutines = %g, want >= 1", vals["matrix_runtime_goroutines"])
	}
	if vals["matrix_runtime_heap_inuse_bytes"] <= 0 {
		t.Errorf("heap_inuse = %g, want > 0", vals["matrix_runtime_heap_inuse_bytes"])
	}
	if vals["matrix_runtime_gc_pause_p99_seconds"] < 0 {
		t.Errorf("gc_pause_p99 = %g, want >= 0", vals["matrix_runtime_gc_pause_p99_seconds"])
	}
}

// TestServeMuxExtraEndpoints serves a caller-supplied endpoint beside
// /metrics and the health probes (the coordinator's /fleetz pattern).
func TestServeMuxExtraEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("mux/ops").Inc()
	addr, closer, err := ServeMux(
		"127.0.0.1:0",
		func(w io.Writer) { WritePrometheus(w, reg) },
		nil,
		map[string]http.HandlerFunc{
			"/fleetz": func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Content-Type", "application/json")
				io.WriteString(w, `{"ok":true}`)
			},
		})
	if err != nil {
		t.Fatalf("ServeMux: %v", err)
	}
	defer closer.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}
	if code, body := get("/fleetz"); code != 200 || body != `{"ok":true}` {
		t.Fatalf("/fleetz = %d %q", code, body)
	}
	// The built-in routes survive the extra registration.
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "matrix_mux_ops_total 1") {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	if code, _ := get("/healthz"); code != 200 {
		t.Fatalf("/healthz = %d, want 200", code)
	}
}
