package metrics

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Error("zero value must start at 0")
	}
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("Value = %d, want 5", got)
	}
	c.Add(-3) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Errorf("negative Add must be ignored, got %d", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Errorf("Value = %d, want 8000", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(3.5)
	g.Add(-1.5)
	if got := g.Value(); got != 2 {
		t.Errorf("Value = %v, want 2", got)
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Error("empty histogram must report zeros")
	}
	for _, v := range []float64{1, 2, 3, 4, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Mean() != 3 {
		t.Errorf("Mean = %v", h.Mean())
	}
	if h.Max() != 5 {
		t.Errorf("Max = %v", h.Max())
	}
	if got := h.Quantile(0.5); got != 3 {
		t.Errorf("p50 = %v, want 3", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("q0 = %v, want min", got)
	}
	if got := h.Quantile(1); got != 5 {
		t.Errorf("q1 = %v, want max", got)
	}
	if h.Summary() == "" {
		t.Error("Summary must be non-empty")
	}
}

func TestHistogramObserveAfterQuantile(t *testing.T) {
	var h Histogram
	h.Observe(5)
	h.Observe(1)
	if got := h.Quantile(1); got != 5 {
		t.Errorf("q1 = %v", got)
	}
	h.Observe(9) // must re-sort lazily
	if got := h.Quantile(1); got != 9 {
		t.Errorf("q1 after new sample = %v, want 9", got)
	}
}

func TestHistogramStddev(t *testing.T) {
	var h Histogram
	h.Observe(2)
	if h.Stddev() != 0 {
		t.Error("stddev of 1 sample must be 0")
	}
	h.Observe(4)
	// Sample stddev of {2,4} = sqrt(2).
	if got := h.Stddev(); math.Abs(got-math.Sqrt2) > 1e-12 {
		t.Errorf("Stddev = %v, want sqrt(2)", got)
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Observe(1)
	h.Reset()
	if h.Count() != 0 {
		t.Error("Reset must clear samples")
	}
}

func TestHistogramQuantileOrdering(t *testing.T) {
	f := func(raw []float64) bool {
		var h Histogram
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			h.Observe(v)
		}
		if h.Count() == 0 {
			return true
		}
		// Quantiles must be monotone in q.
		qs := []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1}
		prev := math.Inf(-1)
		for _, q := range qs {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramQuantileNearestRank(t *testing.T) {
	var h Histogram
	rnd := rand.New(rand.NewSource(1))
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = rnd.Float64() * 1000
	}
	for _, v := range vals {
		h.Observe(v)
	}
	sort.Float64s(vals)
	if got := h.Quantile(0.95); got != vals[94] {
		t.Errorf("p95 = %v, want %v (nearest rank)", got, vals[94])
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("clients")
	if s.Name() != "clients" {
		t.Errorf("Name = %q", s.Name())
	}
	s.Append(0, 10)
	s.Append(1, 20)
	s.Append(2, 15)
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
	times, values := s.Points()
	if len(times) != 3 || times[1] != 1 || values[1] != 20 {
		t.Errorf("Points = %v %v", times, values)
	}
	// Mutating the copies must not affect the series.
	values[0] = 999
	_, v2 := s.Points()
	if v2[0] != 10 {
		t.Error("Points must return copies")
	}
	if got := s.Max(); got != 20 {
		t.Errorf("Max = %v", got)
	}
}

func TestSeriesAt(t *testing.T) {
	s := NewSeries("x")
	s.Append(10, 1)
	s.Append(20, 2)
	tests := []struct {
		t, want float64
	}{
		{5, 0},  // before first point
		{10, 1}, // exact
		{15, 1}, // step-holds previous
		{20, 2},
		{99, 2},
	}
	for _, tt := range tests {
		if got := s.At(tt.t); got != tt.want {
			t.Errorf("At(%v) = %v, want %v", tt.t, got, tt.want)
		}
	}
}

func TestRegistryReuse(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("a")
	c1.Inc()
	if got := r.Counter("a").Value(); got != 1 {
		t.Error("Counter must return the same instance per name")
	}
	if r.Counter("b").Value() != 0 {
		t.Error("different name must be a fresh counter")
	}
	g := r.Gauge("g")
	g.Set(2)
	if r.Gauge("g").Value() != 2 {
		t.Error("Gauge identity")
	}
	h := r.Histogram("h")
	h.Observe(1)
	if r.Histogram("h").Count() != 1 {
		t.Error("Histogram identity")
	}
	s := r.Series("s")
	s.Append(0, 1)
	if r.Series("s").Len() != 1 {
		t.Error("Series identity")
	}
}

func TestRegistrySeriesQueries(t *testing.T) {
	r := NewRegistry()
	r.Series("clients/server-2")
	r.Series("clients/server-1")
	r.Series("queue/server-1")
	names := r.SeriesNames()
	if len(names) != 3 || names[0] != "clients/server-1" {
		t.Errorf("SeriesNames = %v", names)
	}
	byPfx := r.SeriesByPrefix("clients/")
	if len(byPfx) != 2 {
		t.Fatalf("SeriesByPrefix = %d entries", len(byPfx))
	}
	if byPfx[0].Name() != "clients/server-1" || byPfx[1].Name() != "clients/server-2" {
		t.Errorf("prefix order: %q, %q", byPfx[0].Name(), byPfx[1].Name())
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Counter("shared").Inc()
				r.Histogram("lat").Observe(float64(j))
				r.Series("ts").Append(float64(j), 1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 1600 {
		t.Errorf("shared counter = %d", got)
	}
	if got := r.Histogram("lat").Count(); got != 1600 {
		t.Errorf("histogram count = %d", got)
	}
}
