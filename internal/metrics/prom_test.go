package metrics

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
)

// scrape renders reg once.
func scrape(reg *Registry) string {
	var buf bytes.Buffer
	WritePrometheus(&buf, reg)
	return buf.String()
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"server/queue-len": "matrix_server_queue_len",
		"latency":          "matrix_latency",
		"a.b c":            "matrix_a_b_c",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestWritePrometheusSortedStable: instruments appear name-sorted, and two
// scrapes of the same registry are byte-identical regardless of the order
// instruments were registered in.
func TestWritePrometheusSortedStable(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("zeta/ops").Add(3)
	reg.Counter("alpha/ops").Add(1)
	reg.Gauge("mid/level").Set(2.5)
	reg.Histogram("beta/lat-ms").Observe(1)

	first := scrape(reg)
	second := scrape(reg)
	if first != second {
		t.Fatalf("scrapes differ:\n--- first\n%s--- second\n%s", first, second)
	}
	alpha := strings.Index(first, "matrix_alpha_ops_total")
	zeta := strings.Index(first, "matrix_zeta_ops_total")
	if alpha < 0 || zeta < 0 || alpha > zeta {
		t.Fatalf("counters not name-sorted:\n%s", first)
	}

	// Same instruments registered in the opposite order scrape identically.
	reg2 := NewRegistry()
	reg2.Histogram("beta/lat-ms").Observe(1)
	reg2.Gauge("mid/level").Set(2.5)
	reg2.Counter("alpha/ops").Add(1)
	reg2.Counter("zeta/ops").Add(3)
	if got := scrape(reg2); got != first {
		t.Fatalf("registration order changed output:\n--- want\n%s--- got\n%s", first, got)
	}
}

// TestWritePrometheusHistogramQuantiles checks the summary lines are
// well-formed and agree with Histogram.Quantile's nearest-rank rule.
func TestWritePrometheusHistogramQuantiles(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("tick/phase-a-ms")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	out := scrape(reg)
	want := []string{
		"# TYPE matrix_tick_phase_a_ms summary\n",
		"matrix_tick_phase_a_ms{quantile=\"0.5\"} 50\n",
		"matrix_tick_phase_a_ms{quantile=\"0.95\"} 95\n",
		"matrix_tick_phase_a_ms{quantile=\"0.99\"} 99\n",
		"matrix_tick_phase_a_ms_count 100\n",
		"matrix_tick_phase_a_ms_sum 5050\n",
	}
	for _, line := range want {
		if !strings.Contains(out, line) {
			t.Errorf("scrape missing %q:\n%s", line, out)
		}
	}
	// The exported quantiles must match the in-process accessor.
	if got := h.Quantile(0.95); got != 95 {
		t.Fatalf("Histogram.Quantile(0.95) = %g, scrape said 95", got)
	}
}

// TestWritePrometheusEmpty: an empty registry scrapes to nothing, and an
// empty histogram emits count/sum zeros but no quantile lines — a NaN in
// the exposition would poison every downstream aggregation.
func TestWritePrometheusEmpty(t *testing.T) {
	if out := scrape(NewRegistry()); out != "" {
		t.Fatalf("empty registry scraped %q, want empty", out)
	}
	reg := NewRegistry()
	reg.Histogram("tick/empty-ms") // registered, never observed
	out := scrape(reg)
	if strings.Contains(out, "NaN") {
		t.Fatalf("empty histogram emitted NaN:\n%s", out)
	}
	if strings.Contains(out, "quantile") {
		t.Fatalf("empty histogram emitted quantile lines:\n%s", out)
	}
	for _, line := range []string{"matrix_tick_empty_ms_count 0\n", "matrix_tick_empty_ms_sum 0\n"} {
		if !strings.Contains(out, line) {
			t.Errorf("scrape missing %q:\n%s", line, out)
		}
	}
}

// TestWriteRuntime checks the runtime gauges render with sane values.
func TestWriteRuntime(t *testing.T) {
	var buf bytes.Buffer
	WriteRuntime(&buf)
	out := buf.String()
	for _, want := range []string{
		"# TYPE matrix_runtime_goroutines gauge\nmatrix_runtime_goroutines ",
		"# TYPE matrix_runtime_gc_pause_p99_seconds gauge\n",
		"# TYPE matrix_runtime_heap_inuse_bytes gauge\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("runtime scrape missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "NaN") {
		t.Fatalf("runtime scrape emitted NaN:\n%s", out)
	}
}

// TestServeWithHealth spins up the probe endpoints and flips readiness.
func TestServeWithHealth(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("probe/ops").Inc()
	var notReady atomic.Bool
	addr, closer, err := ServeWith(
		"127.0.0.1:0",
		func(w io.Writer) { WritePrometheus(w, reg) },
		func() error {
			if notReady.Load() {
				return io.ErrClosedPipe
			}
			return nil
		})
	if err != nil {
		t.Fatalf("ServeWith: %v", err)
	}
	defer closer.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "matrix_probe_ops_total 1") {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, body := get("/readyz"); code != 200 || !strings.Contains(body, "ready") {
		t.Fatalf("/readyz = %d %q", code, body)
	}
	notReady.Store(true)
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while not ready = %d %q, want 503", code, body)
	}
	// Liveness is unaffected by readiness.
	if code, _ := get("/healthz"); code != 200 {
		t.Fatalf("/healthz while not ready = %d, want 200", code)
	}
}
