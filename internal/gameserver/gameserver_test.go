package gameserver

import (
	"errors"
	"testing"

	"matrix/internal/geom"
	"matrix/internal/id"
	"matrix/internal/protocol"
)

func newTestGS(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Server == 0 {
		cfg.Server = 1
	}
	if cfg.Bounds.Empty() {
		cfg.Bounds = geom.R(0, 0, 100, 100)
	}
	if cfg.Radius == 0 {
		cfg.Radius = 5
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

// join admits a client at pos and drains the queue.
func join(t *testing.T, s *Server, c id.ClientID, pos geom.Point) {
	t.Helper()
	if err := s.Enqueue(&protocol.ClientHello{Client: c, Pos: pos}); err != nil {
		t.Fatal(err)
	}
	envs, err := s.Process(0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range envs {
		if w, ok := e.Msg.(*protocol.ClientWelcome); ok && e.Client == c {
			found = true
			if w.Server != 1 {
				t.Errorf("welcome names server %v", w.Server)
			}
		}
	}
	if !found {
		t.Fatalf("no welcome for %v", c)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("invalid server id must fail")
	}
	if _, err := New(Config{Server: 1, Radius: -1}); err == nil {
		t.Error("negative radius must fail")
	}
}

func TestJoinAndCount(t *testing.T) {
	s := newTestGS(t, Config{})
	join(t, s, 1, geom.Pt(10, 10))
	join(t, s, 2, geom.Pt(20, 20))
	if got := s.ClientCount(); got != 2 {
		t.Errorf("ClientCount = %d", got)
	}
	if got := s.Stats().JoinsAccepted; got != 2 {
		t.Errorf("JoinsAccepted = %d", got)
	}
	// Rejoin is not a new join.
	join(t, s, 1, geom.Pt(11, 11))
	if got := s.Stats().JoinsAccepted; got != 2 {
		t.Errorf("rejoin counted as join: %d", got)
	}
	if pos, ok := s.ClientPos(1); !ok || pos != geom.Pt(11, 11) {
		t.Errorf("ClientPos = %v,%v", pos, ok)
	}
}

func TestLocalUpdateForwardedToMatrixAndEchoed(t *testing.T) {
	s := newTestGS(t, Config{})
	join(t, s, 1, geom.Pt(10, 10))
	join(t, s, 2, geom.Pt(12, 10)) // within R=5 of client 1
	join(t, s, 3, geom.Pt(90, 90)) // far away

	u := &protocol.GameUpdate{
		Client: 1, Kind: protocol.KindAction,
		Origin: geom.Pt(10, 10), Dest: geom.Pt(10, 10),
		SentUnix: 111,
	}
	if err := s.Enqueue(u); err != nil {
		t.Fatal(err)
	}
	envs, err := s.Process(0)
	if err != nil {
		t.Fatal(err)
	}
	toMatrix := 0
	delivered := map[id.ClientID]bool{}
	for _, e := range envs {
		switch e.Dest {
		case DestMatrix:
			toMatrix++
		case DestClient:
			delivered[e.Client] = true
		}
	}
	if toMatrix != 1 {
		t.Errorf("forwarded to matrix %d times", toMatrix)
	}
	if !delivered[1] {
		t.Error("actor must receive its echo")
	}
	if !delivered[2] {
		t.Error("visible neighbour must receive the event")
	}
	if delivered[3] {
		t.Error("distant client must not receive the event")
	}
}

func TestMoveUpdatesPosition(t *testing.T) {
	s := newTestGS(t, Config{})
	join(t, s, 1, geom.Pt(10, 10))
	u := &protocol.GameUpdate{
		Client: 1, Kind: protocol.KindMove,
		Origin: geom.Pt(10, 10), Dest: geom.Pt(30, 40),
	}
	if err := s.Enqueue(u); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Process(0); err != nil {
		t.Fatal(err)
	}
	if pos, _ := s.ClientPos(1); pos != geom.Pt(30, 40) {
		t.Errorf("pos = %v", pos)
	}
}

func TestDespawnRemovesClient(t *testing.T) {
	s := newTestGS(t, Config{})
	join(t, s, 1, geom.Pt(10, 10))
	u := &protocol.GameUpdate{
		Client: 1, Kind: protocol.KindDespawn,
		Origin: geom.Pt(10, 10), Dest: geom.Pt(10, 10),
	}
	if err := s.Enqueue(u); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Process(0); err != nil {
		t.Fatal(err)
	}
	if got := s.ClientCount(); got != 0 {
		t.Errorf("ClientCount = %d after despawn", got)
	}
}

func TestPeerUpdateDeliveredNotForwarded(t *testing.T) {
	s := newTestGS(t, Config{})
	join(t, s, 1, geom.Pt(3, 50)) // near the west boundary
	// Update from a client on another server, 4 units away.
	u := &protocol.GameUpdate{
		Client: 99, Kind: protocol.KindAction,
		Origin: geom.Pt(-1, 50), Dest: geom.Pt(-1, 50),
	}
	if err := s.Enqueue(u); err != nil {
		t.Fatal(err)
	}
	envs, err := s.Process(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range envs {
		if e.Dest == DestMatrix {
			t.Error("peer update must not be re-forwarded to Matrix")
		}
	}
	found := false
	for _, e := range envs {
		if e.Dest == DestClient && e.Client == 1 {
			found = true
		}
	}
	if !found {
		t.Error("nearby client must see the cross-border event")
	}
	if got := s.Stats().Delivered; got == 0 {
		t.Error("Delivered not counted")
	}
}

func TestQueueBudgetAndOverflow(t *testing.T) {
	s := newTestGS(t, Config{MaxQueue: 3})
	for i := 0; i < 3; i++ {
		if err := s.Enqueue(&protocol.ClientHello{Client: id.ClientID(i + 1), Pos: geom.Pt(1, 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Enqueue(&protocol.ClientHello{Client: 9, Pos: geom.Pt(1, 1)}); !errors.Is(err, ErrQueueOverflow) {
		t.Fatalf("overflow err = %v", err)
	}
	if got := s.Stats().Dropped; got != 1 {
		t.Errorf("Dropped = %d", got)
	}
	if got := s.QueueLen(); got != 3 {
		t.Errorf("QueueLen = %d", got)
	}
	// Budgeted processing drains partially.
	if _, err := s.Process(2); err != nil {
		t.Fatal(err)
	}
	if got := s.QueueLen(); got != 1 {
		t.Errorf("QueueLen after budget = %d", got)
	}
	if got := s.Stats().Processed; got != 2 {
		t.Errorf("Processed = %d", got)
	}
}

func TestLoadReport(t *testing.T) {
	s := newTestGS(t, Config{})
	join(t, s, 1, geom.Pt(1, 1))
	if err := s.Enqueue(&protocol.ClientHello{Client: 2, Pos: geom.Pt(2, 2)}); err != nil {
		t.Fatal(err)
	}
	rep := s.LoadReport()
	if rep.Server != 1 || rep.Clients != 1 || rep.QueueLen != 1 {
		t.Errorf("LoadReport = %+v", rep)
	}
}

func TestRangeShrinkRedirectsAndTransfers(t *testing.T) {
	s := newTestGS(t, Config{TransferChunk: 2})
	// Three clients on the left half, two on the right.
	join(t, s, 1, geom.Pt(10, 10))
	join(t, s, 2, geom.Pt(20, 20))
	join(t, s, 3, geom.Pt(30, 30))
	join(t, s, 4, geom.Pt(80, 80))
	join(t, s, 5, geom.Pt(90, 90))
	s.AddObject(protocol.ObjectState{Object: 1, Pos: geom.Pt(5, 5)})   // left: migrates
	s.AddObject(protocol.ObjectState{Object: 2, Pos: geom.Pt(60, 60)}) // right: stays

	// Split: we keep the right half, child 7 takes the left.
	ru := &protocol.RangeUpdate{
		Server: 1,
		Bounds: geom.R(50, 0, 100, 100),
		Handoff: []protocol.HandoffTarget{
			{Server: 7, Addr: "child:7", Bounds: geom.R(0, 0, 50, 100)},
		},
	}
	if err := s.Enqueue(ru); err != nil {
		t.Fatal(err)
	}
	envs, err := s.Process(0)
	if err != nil {
		t.Fatal(err)
	}
	redirects := map[id.ClientID]*protocol.Redirect{}
	var transfers []*protocol.StateTransfer
	for _, e := range envs {
		switch m := e.Msg.(type) {
		case *protocol.Redirect:
			redirects[e.Client] = m
		case *protocol.StateTransfer:
			if e.Dest != DestMatrix {
				t.Error("state transfer must go via Matrix")
			}
			transfers = append(transfers, m)
		}
	}
	for _, c := range []id.ClientID{1, 2, 3} {
		r, ok := redirects[c]
		if !ok {
			t.Fatalf("client %v not redirected", c)
		}
		if r.NewOwner != 7 || r.NewAddr != "child:7" {
			t.Errorf("redirect = %+v", r)
		}
	}
	if len(redirects) != 3 {
		t.Errorf("redirected %d clients, want 3", len(redirects))
	}
	if got := s.ClientCount(); got != 2 {
		t.Errorf("remaining clients = %d", got)
	}
	// 3 client avatars in chunks of 2 => 2 transfers; plus 1 object
	// transfer; the last chunk per target is Final.
	clientObjs, mapObjs := 0, 0
	finals := 0
	for _, tr := range transfers {
		if tr.To != 7 {
			t.Errorf("transfer to %v", tr.To)
		}
		if tr.Final {
			finals++
		}
		for _, o := range tr.Objects {
			if o.Client != 0 {
				clientObjs++
			} else {
				mapObjs++
			}
		}
	}
	if clientObjs != 3 {
		t.Errorf("client objects moved = %d", clientObjs)
	}
	if mapObjs != 1 {
		t.Errorf("map objects moved = %d", mapObjs)
	}
	if finals == 0 {
		t.Error("no Final transfer chunk")
	}
	if got := s.ObjectCount(); got != 1 {
		t.Errorf("objects remaining = %d", got)
	}
	if got := s.Stats().Redirects; got != 3 {
		t.Errorf("Redirects = %d", got)
	}
}

func TestRangeGrowKeepsClients(t *testing.T) {
	s := newTestGS(t, Config{Bounds: geom.R(50, 0, 100, 100)})
	join(t, s, 1, geom.Pt(60, 50))
	ru := &protocol.RangeUpdate{Server: 1, Bounds: geom.R(0, 0, 100, 100)}
	if err := s.Enqueue(ru); err != nil {
		t.Fatal(err)
	}
	envs, err := s.Process(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != 0 {
		t.Errorf("grow produced envelopes: %+v", envs)
	}
	if got := s.ClientCount(); got != 1 {
		t.Errorf("ClientCount = %d", got)
	}
	if !s.Bounds().Eq(geom.R(0, 0, 100, 100)) {
		t.Errorf("bounds = %v", s.Bounds())
	}
}

func TestStateTransferAdoption(t *testing.T) {
	s := newTestGS(t, Config{})
	st := &protocol.StateTransfer{
		From: 2, To: 1, Final: true,
		Objects: []protocol.ObjectState{
			{Client: 42, Pos: geom.Pt(10, 10)},
			{Object: 7, Pos: geom.Pt(20, 20)},
		},
	}
	if err := s.Enqueue(st); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Process(0); err != nil {
		t.Fatal(err)
	}
	if got := s.ClientCount(); got != 1 {
		t.Errorf("adopted clients = %d", got)
	}
	if got := s.ObjectCount(); got != 1 {
		t.Errorf("adopted objects = %d", got)
	}
	if pos, ok := s.ClientPos(42); !ok || pos != geom.Pt(10, 10) {
		t.Errorf("adopted pos = %v,%v", pos, ok)
	}
	if got := s.Stats().StateReceived; got != 2 {
		t.Errorf("StateReceived = %d", got)
	}
	// The adopted client is visible to interest management immediately.
	u := &protocol.GameUpdate{Client: 99, Origin: geom.Pt(11, 10), Dest: geom.Pt(11, 10), Kind: protocol.KindAction}
	if err := s.Enqueue(u); err != nil {
		t.Fatal(err)
	}
	envs, err := s.Process(0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range envs {
		if e.Dest == DestClient && e.Client == 42 {
			found = true
		}
	}
	if !found {
		t.Error("adopted client must receive nearby events")
	}
}

func TestEnqueueNil(t *testing.T) {
	s := newTestGS(t, Config{})
	if err := s.Enqueue(nil); !errors.Is(err, ErrNilMessage) {
		t.Errorf("err = %v", err)
	}
}

func TestUnexpectedMessageType(t *testing.T) {
	s := newTestGS(t, Config{})
	if err := s.Enqueue(&protocol.Ack{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Process(0); err == nil {
		t.Error("unexpected message must surface an error")
	}
}

func TestRangeShrinkNoTargetKeepsClient(t *testing.T) {
	// A displaced client with no covering handoff target must not be
	// dropped silently.
	s := newTestGS(t, Config{})
	join(t, s, 1, geom.Pt(10, 10))
	ru := &protocol.RangeUpdate{Server: 1, Bounds: geom.R(50, 0, 100, 100)}
	if err := s.Enqueue(ru); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Process(0); err != nil {
		t.Fatal(err)
	}
	if got := s.ClientCount(); got != 1 {
		t.Errorf("client stranded without target was dropped: count=%d", got)
	}
}

// TestProcessAppendMatchesProcess drives two identically configured
// servers through the same traffic, one with the allocating API and one
// with the append API: the envelopes must be identical.
func TestProcessAppendMatchesProcess(t *testing.T) {
	mk := func() *Server { return newTestGS(t, Config{}) }
	a, b := mk(), mk()
	feed := func(s *Server) {
		for i := 1; i <= 10; i++ {
			if err := s.Enqueue(&protocol.ClientHello{Client: id.ClientID(i), Pos: geom.Pt(float64(i), 10)}); err != nil {
				t.Fatal(err)
			}
		}
		for i := 1; i <= 10; i++ {
			if err := s.Enqueue(&protocol.GameUpdate{
				Client: id.ClientID(i), Kind: protocol.KindMove,
				Origin: geom.Pt(float64(i), 10), Dest: geom.Pt(float64(i)+0.5, 10.5),
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	feed(a)
	feed(b)
	got, errA := a.Process(0)
	buf := make([]Envelope, 0, 4)
	want, errB := b.ProcessAppend(buf[:0], 0)
	if (errA == nil) != (errB == nil) {
		t.Fatalf("errors diverge: %v vs %v", errA, errB)
	}
	if len(got) != len(want) {
		t.Fatalf("envelope counts diverge: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Dest != want[i].Dest || got[i].Client != want[i].Client ||
			got[i].Msg.MsgType() != want[i].Msg.MsgType() {
			t.Errorf("envelope %d diverges: %+v vs %+v", i, got[i], want[i])
		}
	}
}

// TestProcessAppendZeroAllocSteadyState is the per-tick envelope path
// allocation budget: with connected clients and a reused buffer, handling
// a same-cell move update must not allocate.
func TestProcessAppendZeroAllocSteadyState(t *testing.T) {
	s := newTestGS(t, Config{})
	for i := 1; i <= 20; i++ {
		join(t, s, id.ClientID(i), geom.Pt(50+float64(i)*0.1, 50))
	}
	u := &protocol.GameUpdate{
		Client: 1, Kind: protocol.KindMove,
		Origin: geom.Pt(50.1, 50), Dest: geom.Pt(50.15, 50.05), // same grid cell
	}
	buf := make([]Envelope, 0, 64)
	// Warm the inbox and scratch capacities outside the measured region.
	for i := 0; i < 3; i++ {
		if err := s.Enqueue(u); err != nil {
			t.Fatal(err)
		}
		var err error
		buf, err = s.ProcessAppend(buf[:0], 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := s.Enqueue(u); err != nil {
			t.Fatal(err)
		}
		out, err := s.ProcessAppend(buf[:0], 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) == 0 {
			t.Fatal("no envelopes")
		}
		buf = out[:0]
	})
	if allocs != 0 {
		t.Errorf("per-tick envelope path allocates %.1f/op, budget is 0", allocs)
	}
}
