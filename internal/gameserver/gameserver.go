// Package gameserver implements the game-server substrate that Matrix
// assumes: the software that "stores the state of the game world and
// coordinates the activity of the players" (paper §3.2.2).
//
// The substrate is game-agnostic. It
//
//   - tracks connected clients by globally unique ID (the paper's callsign
//     requirement) and non-player map objects;
//   - spatially tags every client packet and hands it to the co-located
//     Matrix server;
//   - delivers events (local and peer-forwarded) to every client whose zone
//     of visibility contains the event, via a spatial hash grid;
//   - runs an explicit receive queue with a bounded per-tick service rate —
//     the queue length is exactly the metric of the paper's Figure 2(b);
//   - reacts to range changes by redirecting displaced clients and
//     transferring their state through Matrix.
//
// Like the Matrix server, it is a synchronous state machine returning
// envelopes; hosts (TCP pumps or the simulator) deliver them.
package gameserver

import (
	"errors"
	"fmt"
	"slices"
	"sort"
	"sync"

	"matrix/internal/geom"
	"matrix/internal/id"
	"matrix/internal/protocol"
	"matrix/internal/spatial"
)

// Game server errors.
var (
	ErrQueueOverflow = errors.New("gameserver: receive queue overflow")
	ErrNilMessage    = errors.New("gameserver: nil message")
)

// Dest says where a game-server envelope must be delivered.
type Dest uint8

// Envelope destinations.
const (
	// DestMatrix delivers to the co-located Matrix server.
	DestMatrix Dest = iota + 1
	// DestClient delivers to the client named in Envelope.Client.
	DestClient
)

// Envelope is one outbound message from the game server.
type Envelope struct {
	Dest   Dest
	Client id.ClientID // set when Dest == DestClient
	Msg    protocol.Message
}

// Config tunes a game server.
type Config struct {
	// Server is the co-located Matrix server's identity.
	Server id.ServerID
	// Bounds is the initial map range (empty for spares).
	Bounds geom.Rect
	// Radius is the game's visibility radius, used for interest
	// management when delivering events to clients.
	Radius float64
	// MaxQueue bounds the receive queue; packets beyond it are dropped
	// (and counted), modeling a server crashing under sustained overload
	// the way the paper's static baseline does. Zero means unbounded.
	MaxQueue int
	// TransferChunk is the max objects per StateTransfer message.
	// Zero defaults to 64.
	TransferChunk int
	// ResolveOwner, when set, lets the game server hand off clients whose
	// movement carries them across a partition boundary: it returns the
	// server (and address) owning a point outside our bounds. The
	// co-located Matrix server provides this ("Matrix provides the
	// identity of the appropriate game server"). When nil, wandering
	// clients stay connected until the next range change.
	ResolveOwner func(geom.Point) (id.ServerID, string, bool)
}

// Stats is a snapshot of game-server counters.
type Stats struct {
	Processed      uint64 // packets consumed from the queue
	Dropped        uint64 // packets lost to queue overflow
	Delivered      uint64 // event deliveries to clients
	Redirects      uint64 // clients redirected to other servers
	StateMoved     uint64 // objects sent in state transfers
	StateReceived  uint64 // objects adopted from state transfers
	JoinsAccepted  uint64
	ClientsCurrent int
	QueueLen       int
}

// clientState is the per-client record.
type clientState struct {
	id  id.ClientID
	pos geom.Point
}

// Server is one game server. Safe for concurrent use.
type Server struct {
	mu      sync.Mutex
	cfg     Config
	bounds  geom.Rect
	clients map[id.ClientID]*clientState
	grid    *spatial.Grid[id.ClientID]
	objects map[id.ObjectID]protocol.ObjectState
	// inbox[inboxHead:] is the receive queue. The consumed prefix is
	// compacted away lazily (see ProcessAppend), so the array is reused
	// across ticks without per-tick backlog copies.
	inbox     []protocol.Message
	inboxHead int
	stats     Stats
	scratch   []id.ClientID // reused query buffer
}

// New creates a game server.
func New(cfg Config) (*Server, error) {
	if !cfg.Server.Valid() {
		return nil, errors.New("gameserver: invalid server id")
	}
	if cfg.Radius < 0 {
		return nil, fmt.Errorf("gameserver: negative radius %v", cfg.Radius)
	}
	if cfg.TransferChunk <= 0 {
		cfg.TransferChunk = 64
	}
	cell := cfg.Radius
	if cell <= 0 {
		cell = 1
	}
	return &Server{
		cfg:     cfg,
		bounds:  cfg.Bounds,
		clients: make(map[id.ClientID]*clientState),
		grid:    spatial.NewGrid[id.ClientID](cell),
		objects: make(map[id.ObjectID]protocol.ObjectState),
	}, nil
}

// Bounds returns the current map range.
func (s *Server) Bounds() geom.Rect {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bounds
}

// ClientCount returns the number of connected clients — the paper's load
// metric.
func (s *Server) ClientCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.clients)
}

// QueueLen returns the current receive-queue length — the paper's Figure
// 2(b) metric.
func (s *Server) QueueLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.inbox) - s.inboxHead
}

// Stats returns a snapshot of the counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.ClientsCurrent = len(s.clients)
	st.QueueLen = len(s.inbox) - s.inboxHead
	return st
}

// ClientPos returns a connected client's position.
func (s *Server) ClientPos(c id.ClientID) (geom.Point, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cs, ok := s.clients[c]
	if !ok {
		return geom.Point{}, false
	}
	return cs.pos, true
}

// ObjectCount returns the number of non-player objects held.
func (s *Server) ObjectCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.objects)
}

// AddObject installs a non-player map object (trees, buildings, NPC state).
func (s *Server) AddObject(o protocol.ObjectState) {
	s.mu.Lock()
	s.objects[o.Object] = o
	s.mu.Unlock()
}

// Evict removes a client record without emitting any traffic — the
// server-side idle reaper. Unlike a despawn update it is not forwarded
// anywhere, so evicting a stale duplicate can never affect the client's
// live avatar on another server. Reports whether the client was present.
func (s *Server) Evict(c id.ClientID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.clients[c]; !ok {
		return false
	}
	delete(s.clients, c)
	s.grid.Remove(c)
	return true
}

// ClientIDs returns the connected clients' IDs, sorted.
func (s *Server) ClientIDs() []id.ClientID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]id.ClientID, 0, len(s.clients))
	for c := range s.clients {
		out = append(out, c)
	}
	slices.Sort(out)
	return out
}

// ClientSnap is one connected client inside a State snapshot.
type ClientSnap struct {
	Client id.ClientID
	Pos    geom.Point
}

// State is a game server's serializable snapshot: bounds, the authoritative
// client and object records, the pending receive queue (encoded wire
// frames, in arrival order) and the traffic counters. Clients and objects
// are sorted by ID so encoding the same server twice is byte-identical.
type State struct {
	Bounds  geom.Rect
	Clients []ClientSnap
	Objects []protocol.ObjectState
	Inbox   [][]byte
	Stats   Stats
}

// CaptureState snapshots the server.
func (s *Server) CaptureState() (*State, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := &State{Bounds: s.bounds, Stats: s.stats}
	st.Stats.ClientsCurrent = 0 // derived fields stay out of the snapshot
	st.Stats.QueueLen = 0
	for c, cs := range s.clients {
		st.Clients = append(st.Clients, ClientSnap{Client: c, Pos: cs.pos})
	}
	sort.Slice(st.Clients, func(i, j int) bool { return st.Clients[i].Client < st.Clients[j].Client })
	for _, o := range s.objects {
		o.Payload = append([]byte(nil), o.Payload...)
		st.Objects = append(st.Objects, o)
	}
	sort.Slice(st.Objects, func(i, j int) bool { return st.Objects[i].Object < st.Objects[j].Object })
	for _, m := range s.inbox[s.inboxHead:] {
		frame, err := protocol.Marshal(m)
		if err != nil {
			return nil, fmt.Errorf("gameserver: encode queued %v: %w", m.MsgType(), err)
		}
		st.Inbox = append(st.Inbox, frame)
	}
	return st, nil
}

// RestoreState overwrites the server's mutable state from a snapshot,
// keeping its config (including the ResolveOwner binding). The snapshot is
// not retained — restoring the same state twice is safe.
func (s *Server) RestoreState(st *State) error {
	inbox := make([]protocol.Message, 0, len(st.Inbox))
	for _, frame := range st.Inbox {
		m, err := protocol.Unmarshal(frame)
		if err != nil {
			return fmt.Errorf("gameserver: decode queued frame: %w", err)
		}
		inbox = append(inbox, m)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bounds = st.Bounds
	cell := s.cfg.Radius
	if cell <= 0 {
		cell = 1
	}
	s.clients = make(map[id.ClientID]*clientState, len(st.Clients))
	s.grid = spatial.NewGrid[id.ClientID](cell)
	for _, cs := range st.Clients {
		s.clients[cs.Client] = &clientState{id: cs.Client, pos: cs.Pos}
		s.grid.Insert(cs.Client, cs.Pos)
	}
	s.objects = make(map[id.ObjectID]protocol.ObjectState, len(st.Objects))
	for _, o := range st.Objects {
		o.Payload = append([]byte(nil), o.Payload...)
		s.objects[o.Object] = o
	}
	s.inbox = inbox
	s.inboxHead = 0
	s.stats = st.Stats
	s.stats.ClientsCurrent = 0
	s.stats.QueueLen = 0
	return nil
}

// Enqueue places an inbound message on the receive queue. It returns
// ErrQueueOverflow when the bounded queue is full (the packet is dropped
// and counted).
func (s *Server) Enqueue(m protocol.Message) error {
	if m == nil {
		return ErrNilMessage
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cfg.MaxQueue > 0 && len(s.inbox)-s.inboxHead >= s.cfg.MaxQueue {
		s.stats.Dropped++
		return ErrQueueOverflow
	}
	s.inbox = append(s.inbox, m)
	return nil
}

// Process consumes up to budget queued messages (all of them when budget
// <= 0) and returns the resulting envelopes in a fresh slice. Hot loops
// that tick every few milliseconds should use ProcessAppend with a reused
// buffer instead.
func (s *Server) Process(budget int) ([]Envelope, error) {
	return s.ProcessAppend(nil, budget)
}

// ProcessAppend consumes up to budget queued messages (all of them when
// budget <= 0), appending the resulting envelopes to dst, and returns the
// extended slice. The budget models the server's finite service rate:
// under overload the queue grows, which is what the paper's Figure 2(b)
// plots.
//
// Passing the same buffer back every tick (`buf = ProcessAppend(buf[:0],
// n)` after fully consuming it) makes the per-tick envelope path
// allocation-free in steady state; the appended envelopes are owned by the
// caller.
func (s *Server) ProcessAppend(dst []Envelope, budget int) ([]Envelope, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.inbox) - s.inboxHead
	if budget > 0 && budget < n {
		n = budget
	}
	var firstErr error
	for i := 0; i < n; i++ {
		m := s.inbox[s.inboxHead+i]
		s.inbox[s.inboxHead+i] = nil
		var err error
		dst, err = s.handleLocked(dst, m)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		s.stats.Processed++
	}
	s.inboxHead += n
	// Lazy compaction keeps the array reusable without making sustained
	// overload quadratic: a drained queue resets in O(1), and survivors
	// only slide to the front once the consumed prefix outweighs them
	// (amortized O(1) per message).
	if s.inboxHead == len(s.inbox) {
		s.inbox = s.inbox[:0]
		s.inboxHead = 0
	} else if s.inboxHead > len(s.inbox)/2 {
		rest := copy(s.inbox, s.inbox[s.inboxHead:])
		for i := rest; i < len(s.inbox); i++ {
			s.inbox[i] = nil
		}
		s.inbox = s.inbox[:rest]
		s.inboxHead = 0
	}
	return dst, firstErr
}

// LoadReport builds the periodic load report for the Matrix server.
func (s *Server) LoadReport() *protocol.LoadReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return &protocol.LoadReport{
		Server:   s.cfg.Server,
		Clients:  int32(len(s.clients)),
		QueueLen: int32(len(s.inbox) - s.inboxHead),
	}
}

// handleLocked dispatches one queued message, appending envelopes to dst.
func (s *Server) handleLocked(dst []Envelope, m protocol.Message) ([]Envelope, error) {
	switch msg := m.(type) {
	case *protocol.ClientHello:
		return s.handleHelloLocked(dst, msg)
	case *protocol.GameUpdate:
		return s.handleUpdateLocked(dst, msg)
	case *protocol.RangeUpdate:
		return s.handleRangeLocked(dst, msg)
	case *protocol.StateTransfer:
		return s.handleStateLocked(dst, msg)
	default:
		return dst, fmt.Errorf("gameserver: unexpected message %v", m.MsgType())
	}
}

// handleHelloLocked admits a client (or re-admits one migrating in).
func (s *Server) handleHelloLocked(dst []Envelope, h *protocol.ClientHello) ([]Envelope, error) {
	cs, ok := s.clients[h.Client]
	if !ok {
		cs = &clientState{id: h.Client}
		s.clients[h.Client] = cs
		s.stats.JoinsAccepted++
	}
	cs.pos = h.Pos
	s.grid.Insert(h.Client, h.Pos)
	return append(dst, Envelope{Dest: DestClient, Client: h.Client, Msg: &protocol.ClientWelcome{
		Server: s.cfg.Server,
		Bounds: s.bounds,
	}}), nil
}

// handleUpdateLocked processes one game packet. Packets from local clients
// are applied, delivered to visible local clients, and forwarded to Matrix;
// packets forwarded in from peers are delivered to visible local clients
// only.
func (s *Server) handleUpdateLocked(dst []Envelope, u *protocol.GameUpdate) ([]Envelope, error) {
	cs, local := s.clients[u.Client]
	if local {
		// The game server owns the authoritative position: apply movement
		// and spatially tag the packet from its own records.
		if u.Kind == protocol.KindMove {
			cs.pos = u.Dest
			s.grid.Insert(u.Client, u.Dest)
		}
		if u.Kind == protocol.KindDespawn {
			delete(s.clients, u.Client)
			s.grid.Remove(u.Client)
		}
		// Forward to Matrix for routing to peer servers.
		dst = append(dst, Envelope{Dest: DestMatrix, Msg: u})
		// Boundary crossing: a move that lands outside our range hands
		// the client off to the partition's owner.
		if u.Kind == protocol.KindMove && !s.bounds.Contains(cs.pos) && s.cfg.ResolveOwner != nil {
			if target, addr, ok := s.cfg.ResolveOwner(cs.pos); ok && target != s.cfg.Server {
				dst = s.migrateClientLocked(dst, cs, target, addr)
			}
		}
	}
	// Local consistency: every client whose visibility circle contains the
	// event sees it, including the actor (its echo is the response-latency
	// signal the evaluation measures).
	s.scratch = s.scratch[:0]
	s.scratch = s.grid.QueryCircle(u.Origin, s.cfg.Radius, s.scratch)
	if u.Dest != u.Origin {
		s.scratch = s.grid.QueryCircle(u.Dest, s.cfg.Radius, s.scratch)
	}
	// Grid queries walk hash maps, so their order is random; sort so the
	// whole pipeline stays deterministic for a fixed seed. Sorting also
	// makes duplicates (from the two-circle query) adjacent, so dedup is a
	// previous-element compare instead of a per-update map. slices.Sort,
	// unlike sort.Slice, does not allocate a closure — this runs once per
	// processed packet.
	slices.Sort(s.scratch)
	for i, c := range s.scratch {
		if i > 0 && c == s.scratch[i-1] {
			continue
		}
		dst = append(dst, Envelope{Dest: DestClient, Client: c, Msg: u})
		s.stats.Delivered++
	}
	return dst, nil
}

// migrateClientLocked hands one client to target: state first, then the
// redirect, mirroring the bulk path taken on range changes.
func (s *Server) migrateClientLocked(dst []Envelope, cs *clientState, target id.ServerID, addr string) []Envelope {
	dst = append(dst,
		Envelope{Dest: DestMatrix, Msg: &protocol.StateTransfer{
			From:    s.cfg.Server,
			To:      target,
			Objects: []protocol.ObjectState{{Client: cs.id, Pos: cs.pos}},
			Final:   true,
		}},
		Envelope{Dest: DestClient, Client: cs.id, Msg: &protocol.Redirect{
			Client:   cs.id,
			NewOwner: target,
			NewAddr:  addr,
		}},
	)
	s.stats.StateMoved++
	s.stats.Redirects++
	delete(s.clients, cs.id)
	s.grid.Remove(cs.id)
	return dst
}

// handleRangeLocked applies a new map range: displaced clients are
// redirected to the handoff targets and their state is transferred through
// Matrix in chunks.
func (s *Server) handleRangeLocked(dst []Envelope, r *protocol.RangeUpdate) ([]Envelope, error) {
	s.bounds = r.Bounds

	// Find clients now outside our range.
	s.scratch = s.scratch[:0]
	s.scratch = s.grid.QueryOutsideRect(r.Bounds, s.scratch)
	if len(s.scratch) == 0 {
		return dst, nil
	}
	// Deterministic migration order regardless of grid-map iteration order
	// (per-target grouping, chunking and redirects all inherit it).
	sort.Slice(s.scratch, func(i, j int) bool { return s.scratch[i] < s.scratch[j] })

	// Group them by handoff target.
	perTarget := make(map[id.ServerID][]*clientState)
	addrOf := make(map[id.ServerID]string, len(r.Handoff))
	for _, c := range s.scratch {
		cs, ok := s.clients[c]
		if !ok {
			continue
		}
		target, addr := resolveHandoff(r.Handoff, cs.pos)
		if !target.Valid() {
			// No target covers this client (shouldn't happen when the MC
			// is consistent); keep it rather than strand it.
			continue
		}
		perTarget[target] = append(perTarget[target], cs)
		addrOf[target] = addr
	}

	targets := make([]id.ServerID, 0, len(perTarget))
	for target := range perTarget {
		targets = append(targets, target)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
	for _, target := range targets {
		migrating := perTarget[target]
		// State first, then redirects: the receiving game server adopts
		// the avatars before the clients reconnect.
		chunk := make([]protocol.ObjectState, 0, s.cfg.TransferChunk)
		flush := func(final bool) {
			if len(chunk) == 0 && !final {
				return
			}
			st := &protocol.StateTransfer{
				From:    s.cfg.Server,
				To:      target,
				Objects: chunk,
				Final:   final,
			}
			dst = append(dst, Envelope{Dest: DestMatrix, Msg: st})
			chunk = make([]protocol.ObjectState, 0, s.cfg.TransferChunk)
		}
		for _, cs := range migrating {
			chunk = append(chunk, protocol.ObjectState{
				Client: cs.id,
				Pos:    cs.pos,
			})
			s.stats.StateMoved++
			if len(chunk) >= s.cfg.TransferChunk {
				flush(false)
			}
		}
		flush(true)
		for _, cs := range migrating {
			// Range-change redirects inherit the decision's correlation ID
			// so one split/reclaim can be followed coordinator→server→client.
			dst = append(dst, Envelope{Dest: DestClient, Client: cs.id, Msg: &protocol.Redirect{
				Client:   cs.id,
				NewOwner: target,
				NewAddr:  addrOf[target],
				Corr:     r.Corr,
			}})
			s.stats.Redirects++
			delete(s.clients, cs.id)
			s.grid.Remove(cs.id)
		}
	}

	// Map objects outside the range migrate too.
	perObjTarget := make(map[id.ServerID][]protocol.ObjectState)
	for oid, o := range s.objects {
		if r.Bounds.Contains(o.Pos) {
			continue
		}
		target, _ := resolveHandoff(r.Handoff, o.Pos)
		if !target.Valid() {
			continue
		}
		perObjTarget[target] = append(perObjTarget[target], o)
		delete(s.objects, oid)
	}
	objTargets := make([]id.ServerID, 0, len(perObjTarget))
	for target := range perObjTarget {
		objTargets = append(objTargets, target)
	}
	sort.Slice(objTargets, func(i, j int) bool { return objTargets[i] < objTargets[j] })
	for _, target := range objTargets {
		objs := perObjTarget[target]
		sort.Slice(objs, func(i, j int) bool { return objs[i].Object < objs[j].Object })
		for start := 0; start < len(objs); start += s.cfg.TransferChunk {
			end := start + s.cfg.TransferChunk
			if end > len(objs) {
				end = len(objs)
			}
			dst = append(dst, Envelope{Dest: DestMatrix, Msg: &protocol.StateTransfer{
				From:    s.cfg.Server,
				To:      target,
				Objects: objs[start:end],
				Final:   end == len(objs),
			}})
			s.stats.StateMoved += uint64(end - start)
		}
	}
	return dst, nil
}

// resolveHandoff finds the handoff target whose bounds contain p.
func resolveHandoff(handoff []protocol.HandoffTarget, p geom.Point) (id.ServerID, string) {
	for _, h := range handoff {
		if h.Bounds.Contains(p) {
			return h.Server, h.Addr
		}
	}
	return id.None, ""
}

// handleStateLocked adopts migrating state from another game server.
func (s *Server) handleStateLocked(dst []Envelope, st *protocol.StateTransfer) ([]Envelope, error) {
	for _, o := range st.Objects {
		if o.Client != 0 {
			cs, ok := s.clients[o.Client]
			if !ok {
				cs = &clientState{id: o.Client}
				s.clients[o.Client] = cs
			}
			cs.pos = o.Pos
			s.grid.Insert(o.Client, o.Pos)
		} else {
			s.objects[o.Object] = o
		}
		s.stats.StateReceived++
	}
	return dst, nil
}
