package snapshot

import (
	"testing"

	"matrix/internal/experiments"
	"matrix/internal/sim"
)

// TestScenarioFingerprintEquivalence is the tentpole acceptance gate on
// the real scenario table: snapshot a scenario mid-run at tick T, push the
// snapshot through the full serialize/deserialize path (what -snapshot /
// -restore files do between processes), restore, finish — the
// Result.Fingerprint must be byte-identical to the uninterrupted run.
// Covers plain, netem-impaired and crash-recovery scenarios.
func TestScenarioFingerprintEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs four table scenarios twice each")
	}
	for _, name := range []string{"flashcrowd", "reclaimstress", "lossy", "recovery"} {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			sc, ok := experiments.ScenarioByName(name)
			if !ok {
				t.Fatalf("scenario %q missing from the table", name)
			}
			cfg := sc.Config(9)

			cold, err := sim.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := cold.Start(); err != nil {
				t.Fatal(err)
			}
			want := finishRun(t, cold)

			warm, err := sim.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := warm.Start(); err != nil {
				t.Fatal(err)
			}
			runTo(t, warm, 55)
			snap, err := Capture(warm)
			if err != nil {
				t.Fatal(err)
			}
			data, err := Marshal(snap)
			if err != nil {
				t.Fatal(err)
			}
			decoded, err := Unmarshal(data)
			if err != nil {
				t.Fatal(err)
			}
			restored, err := Restore(decoded)
			if err != nil {
				t.Fatal(err)
			}
			if got := finishRun(t, restored); got != want {
				t.Errorf("scenario %q: restored run diverged from uninterrupted run", name)
			}
		})
	}
}
