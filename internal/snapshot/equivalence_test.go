package snapshot

import (
	"testing"

	"matrix/internal/experiments"
	"matrix/internal/sim"
)

// TestScenarioFingerprintEquivalence is the tentpole acceptance gate on
// the real scenario table: snapshot a scenario mid-run at tick T, push the
// snapshot through the full serialize/deserialize path (what -snapshot /
// -restore files do between processes), restore, finish — the
// Result.Fingerprint must be byte-identical to the uninterrupted run.
// Covers plain, netem-impaired and crash-recovery scenarios, and the
// intra-sim worker-pool matrix: the run is captured under a parallel tick
// engine and restored both serially and with a differently sized pool
// (snapshots never record a worker count; a restore lands in the same
// schedule-independent state whatever SimWorkers either side used).
func TestScenarioFingerprintEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs four table scenarios three times each")
	}
	for _, name := range []string{"flashcrowd", "reclaimstress", "lossy", "recovery"} {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			sc, ok := experiments.ScenarioByName(name)
			if !ok {
				t.Fatalf("scenario %q missing from the table", name)
			}
			cfg := sc.Config(9)

			cold, err := sim.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := cold.Start(); err != nil {
				t.Fatal(err)
			}
			want := finishRun(t, cold)

			warmCfg := cfg
			warmCfg.SimWorkers = 4 // capture under a parallel tick engine
			warm, err := sim.New(warmCfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := warm.Start(); err != nil {
				t.Fatal(err)
			}
			runTo(t, warm, 55)
			snap, err := Capture(warm)
			if err != nil {
				t.Fatal(err)
			}
			data, err := Marshal(snap)
			if err != nil {
				t.Fatal(err)
			}
			decoded, err := Unmarshal(data)
			if err != nil {
				t.Fatal(err)
			}
			restored, err := Restore(decoded)
			if err != nil {
				t.Fatal(err)
			}
			if got := finishRun(t, restored); got != want {
				t.Errorf("scenario %q: restored run diverged from uninterrupted run", name)
			}
			reparallel, err := RestoreWith(decoded, sim.RestoreOptions{SimWorkers: 8})
			if err != nil {
				t.Fatal(err)
			}
			if got := finishRun(t, reparallel); got != want {
				t.Errorf("scenario %q: SimWorkers=8 restore diverged from uninterrupted serial run", name)
			}
		})
	}

	// The same gate per rival policy: a run under each non-default policy
	// is captured mid-run — with the policy's internal state (overload
	// streaks, forecast history, churn windows) live in the snapshot —
	// serialized, restored and finished. Byte-identical fingerprints here
	// pin the stateful-policy half of the determinism contract that the
	// paper-policy scenarios above never exercise (the paper policy is
	// stateless beyond the mechanism's own timers).
	for _, pol := range []string{"hysteresis", "predictive", "costaware", "static"} {
		t.Run("policy-"+pol, func(t *testing.T) {
			t.Parallel()
			sc, ok := experiments.ScenarioByName("flashcrowd")
			if !ok {
				t.Fatal("scenario flashcrowd missing from the table")
			}
			cfg := sc.Config(9)
			cfg.Policy = pol

			cold, err := sim.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := cold.Start(); err != nil {
				t.Fatal(err)
			}
			want := finishRun(t, cold)

			warmCfg := cfg
			warmCfg.SimWorkers = 4
			warm, err := sim.New(warmCfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := warm.Start(); err != nil {
				t.Fatal(err)
			}
			runTo(t, warm, 55)
			snap, err := Capture(warm)
			if err != nil {
				t.Fatal(err)
			}
			data, err := Marshal(snap)
			if err != nil {
				t.Fatal(err)
			}
			decoded, err := Unmarshal(data)
			if err != nil {
				t.Fatal(err)
			}
			restored, err := Restore(decoded)
			if err != nil {
				t.Fatal(err)
			}
			if got := finishRun(t, restored); got != want {
				t.Errorf("policy %q: restored run diverged from uninterrupted run", pol)
			}
		})
	}
}
