// Package snapshot is the versioned, deterministic serialization layer for
// complete simulation state: Capture freezes a running sim.Sim into a
// Snapshot, Encode/Decode move snapshots through files or wires, and
// Restore rebuilds a simulation that continues byte-identically to the
// captured run (the Result.Fingerprint contract).
//
// The format is versioned JSON: a Snapshot envelope carrying the format
// version around sim.State, whose collections are all deterministically
// ordered slices — encoding the same state twice is byte-identical, the
// property the golden-file tests pin. Version bumps accompany any
// incompatible State change; Decode rejects versions it does not know, and
// the checked-in testdata goldens guarantee old snapshots keep decoding.
//
// Three consumers build on it:
//
//   - branching sweeps (internal/experiments) run a shared warmup once,
//     Capture, and fan scenario tails out via sim.RestoreWith;
//   - state-losing crash recovery inside the simulator restores individual
//     servers from periodic checkpoints (sim handles that itself; this
//     package defines the on-disk/wire envelope);
//   - the CLI surface: matrix-bench -snapshot/-restore files, and the
//     protocol's SnapshotRequest/SnapshotData frames, which carry a live
//     matrix-server's node state as a MarshalNode blob.
package snapshot

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"matrix/internal/core"
	"matrix/internal/gameserver"
	"matrix/internal/sim"
)

// Version is the current snapshot format version. Bump it on any
// incompatible change to sim.State or the component states it embeds, and
// add a decoder shim plus a testdata golden for the old version.
const Version = 1

// ErrVersion reports a snapshot whose format version this build cannot read.
var ErrVersion = errors.New("snapshot: unsupported format version")

// Snapshot is the versioned envelope around a complete simulation state.
type Snapshot struct {
	Version int
	Sim     *sim.State
}

// Capture freezes a running simulation (between two ticks, or after Done)
// into a Snapshot. The snapshot shares no mutable memory with the sim.
func Capture(s *sim.Sim) (*Snapshot, error) {
	st, err := s.CaptureState()
	if err != nil {
		return nil, err
	}
	return &Snapshot{Version: Version, Sim: st}, nil
}

// Restore rebuilds a simulation that continues the captured run
// byte-identically. The snapshot is not consumed: one snapshot may seed any
// number of restores.
func Restore(snap *Snapshot) (*sim.Sim, error) {
	if err := check(snap); err != nil {
		return nil, err
	}
	return sim.Restore(snap.Sim)
}

// RestoreWith rebuilds a simulation with a replaced script tail and/or run
// length — the branching-sweep primitive (see sim.RestoreOptions).
func RestoreWith(snap *Snapshot, opts sim.RestoreOptions) (*sim.Sim, error) {
	if err := check(snap); err != nil {
		return nil, err
	}
	return sim.RestoreWith(snap.Sim, opts)
}

func check(snap *Snapshot) error {
	if snap == nil || snap.Sim == nil {
		return errors.New("snapshot: empty snapshot")
	}
	if snap.Version != Version {
		return fmt.Errorf("%w: %d (this build reads %d)", ErrVersion, snap.Version, Version)
	}
	return nil
}

// Encode writes the snapshot. The output is deterministic: encoding the
// same snapshot twice produces byte-identical bytes.
func Encode(w io.Writer, snap *Snapshot) error {
	enc := json.NewEncoder(w)
	return enc.Encode(snap)
}

// Marshal renders the snapshot to deterministic bytes.
func Marshal(snap *Snapshot) ([]byte, error) {
	var buf bytes.Buffer
	if err := Encode(&buf, snap); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode reads one snapshot, rejecting unknown format versions.
func Decode(r io.Reader) (*Snapshot, error) {
	dec := json.NewDecoder(r)
	var snap Snapshot
	if err := dec.Decode(&snap); err != nil {
		return nil, fmt.Errorf("snapshot: decode: %w", err)
	}
	if snap.Version != Version {
		return nil, fmt.Errorf("%w: %d (this build reads %d)", ErrVersion, snap.Version, Version)
	}
	if snap.Sim == nil {
		return nil, errors.New("snapshot: no simulation state")
	}
	return &snap, nil
}

// Unmarshal parses snapshot bytes.
func Unmarshal(data []byte) (*Snapshot, error) {
	return Decode(bytes.NewReader(data))
}

// WriteFile captures nothing itself — it persists an existing snapshot.
func WriteFile(path string, snap *Snapshot) error {
	data, err := Marshal(snap)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// ReadFile loads a snapshot from disk.
func ReadFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Unmarshal(data)
}

// Node is the wire envelope for one live server's state: what a
// matrix-server returns for a protocol SnapshotRequest and accepts at boot
// via -restore. It shares the simulation snapshot's versioning.
type Node struct {
	Version int
	Core    *core.State
	Game    *gameserver.State
}

// MarshalNode captures one Matrix server + game server pair into a
// deterministic blob. The two components are captured sequentially under
// their own locks, so on a *live* node the Core and Game sections can
// straddle an in-flight topology change or migration (the simulator's
// checkpoints are immune — it captures between ticks). Each section is
// internally consistent, and the live restore path (RestoreNodeGame)
// consumes only the Game section, so the skew is observable only to
// tooling that correlates the two sections of a busy node's dump.
func MarshalNode(c *core.Server, g *gameserver.Server) ([]byte, error) {
	cs, err := c.CaptureState()
	if err != nil {
		return nil, err
	}
	gs, err := g.CaptureState()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(Node{Version: Version, Core: cs, Game: gs}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeNode parses a MarshalNode blob, rejecting unknown versions.
func DecodeNode(blob []byte) (*Node, error) {
	var n Node
	if err := json.Unmarshal(blob, &n); err != nil {
		return nil, fmt.Errorf("snapshot: decode node: %w", err)
	}
	if n.Version != Version {
		return nil, fmt.Errorf("%w: %d (this build reads %d)", ErrVersion, n.Version, Version)
	}
	if n.Core == nil || n.Game == nil {
		return nil, errors.New("snapshot: node blob incomplete")
	}
	return &n, nil
}

// RestoreNode loads a MarshalNode blob into a live server pair wholesale —
// both components, identity included. The components must carry the same
// ServerID the blob was captured from (the simulator's crash recovery path;
// a live restart that re-registered under a fresh ID should use
// RestoreNodeGame instead).
func RestoreNode(blob []byte, c *core.Server, g *gameserver.Server) error {
	n, err := DecodeNode(blob)
	if err != nil {
		return err
	}
	if err := c.RestoreState(n.Core); err != nil {
		return err
	}
	return g.RestoreState(n.Game)
}

// RestoreNodeGame loads only the game-world state (client avatars and map
// objects) from a MarshalNode blob into a live game server, keeping the
// server's current identity, bounds and receive queue. This is the live
// crash-recovery semantic: a restarted matrix-server re-registers with the
// MC (topology is always fresh) and re-adopts the world from its last
// checkpoint; the old queue's packets belong to connections that died with
// the old process.
func RestoreNodeGame(blob []byte, g *gameserver.Server) error {
	n, err := DecodeNode(blob)
	if err != nil {
		return err
	}
	st := *n.Game
	st.Bounds = g.Bounds()
	st.Inbox = nil
	return g.RestoreState(&st)
}
