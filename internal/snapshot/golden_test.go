package snapshot

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"matrix/internal/game"
	"matrix/internal/geom"
	"matrix/internal/id"
	"matrix/internal/load"
	"matrix/internal/netem"
	"matrix/internal/sim"
)

var update = flag.Bool("update", false, "rewrite the golden snapshot files")

// goldenConfig is a miniature run that still populates every snapshot
// section: netem link state and delayed messages, ghosts, checkpoints, a
// state-losing crash, splits and live clients.
func goldenConfig() sim.Config {
	return sim.Config{
		Profile:                game.Daimonin(), // low rate + short radius keep the golden small
		World:                  geom.R(0, 0, 200, 200),
		Seed:                   42,
		DurationSeconds:        40,
		MaxServers:             2,
		ServiceRatePerTick:     400,
		BasePopulation:         10,
		LoadPolicy:             load.Config{OverloadClients: 40, UnderloadClients: 20},
		CheckpointEverySeconds: 5,
		GhostExpirySeconds:     8,
		Netem:                  netem.Config{Link: netem.LinkConfig{DelayMs: 30, JitterMs: 80, Loss: 0.08}},
		Script: game.Script{
			{At: 3, Kind: game.EventJoin, Count: 50, Center: geom.Pt(150, 50), Spread: 20, Tag: "crowd"},
			{At: 12, Kind: game.EventLeave, Count: 25, Tag: "crowd"},
			{At: 16, Kind: game.EventCrashLose, Servers: []id.ServerID{2}},
			{At: 22, Kind: game.EventRecover},
		},
	}
}

const goldenPath = "testdata/v1-tiny.snap.json"

// goldenBytes regenerates the golden snapshot from the deterministic run.
func goldenBytes(t *testing.T) []byte {
	t.Helper()
	s, err := sim.New(goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	runTo(t, s, 26) // past the restart: ghosts, checkpoints and rejoins in flight
	snap, err := Capture(s)
	if err != nil {
		t.Fatal(err)
	}
	data, err := Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestGoldenV1 is the format gate (CI runs `-run Golden`): the checked-in
// v1 snapshot must decode with the current code, restore into a runnable
// simulation, and re-encode byte-identically. Any State change that breaks
// this must come with a Version bump and a decoder shim — never a silent
// format drift.
func TestGoldenV1(t *testing.T) {
	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, goldenBytes(t), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}

	snap, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("decode v1 golden with current code: %v", err)
	}
	if snap.Version != 1 {
		t.Fatalf("golden version = %d, want 1", snap.Version)
	}

	// Re-encode: byte-identical, or the format drifted without a bump.
	out, err := Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bytes.TrimSpace(out), bytes.TrimSpace(data)) {
		t.Error("golden snapshot does not re-encode byte-identically: the format drifted — bump snapshot.Version and add a new golden")
	}

	// Restore: the old snapshot must still produce a runnable simulation.
	restored, err := Restore(snap)
	if err != nil {
		t.Fatalf("restore v1 golden: %v", err)
	}
	fp := finishRun(t, restored)
	if fp == "" {
		t.Error("restored golden produced an empty fingerprint")
	}
}

// TestGoldenMatchesCurrentCapture pins capture determinism end to end: the
// same deterministic run captured by the current code must byte-match the
// checked-in golden. This fails when capture order or field contents change
// — the moment to decide between fixing the regression and bumping Version.
func TestGoldenMatchesCurrentCapture(t *testing.T) {
	if *update {
		t.Skip("golden being rewritten")
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	got := goldenBytes(t)
	if !bytes.Equal(bytes.TrimSpace(got), bytes.TrimSpace(want)) {
		t.Error("current capture of the golden run differs from the checked-in golden (regenerate with -update if intentional, and bump Version if the format changed)")
	}
}
