package snapshot

import (
	"bytes"
	"strings"
	"testing"

	"matrix/internal/game"
	"matrix/internal/geom"
	"matrix/internal/id"
	"matrix/internal/netem"
	"matrix/internal/sim"
)

// tinyConfig is a fast, fully featured run: netem (loss + reordering
// jitter), a crowd that forces splits, lost despawns (ghosts), periodic
// checkpoints and a state-losing crash — every snapshot field gets
// exercised in a few hundred ticks.
func tinyConfig(seed int64) sim.Config {
	return sim.Config{
		Profile:                game.Bzflag(),
		World:                  geom.R(0, 0, 400, 400),
		Seed:                   seed,
		DurationSeconds:        60,
		MaxServers:             4,
		ServiceRatePerTick:     150,
		BasePopulation:         40,
		CheckpointEverySeconds: 5,
		GhostExpirySeconds:     10,
		Netem:                  netem.Config{Link: netem.LinkConfig{DelayMs: 30, JitterMs: 150, Loss: 0.05}},
		Script: game.Script{
			{At: 4, Kind: game.EventJoin, Count: 320, Center: geom.Pt(300, 100), Spread: 30, Tag: "crowd"},
			{At: 18, Kind: game.EventLeave, Count: 120, Tag: "crowd"},
			{At: 24, Kind: game.EventCrashLose, Servers: []id.ServerID{2}},
			{At: 32, Kind: game.EventRecover},
			{At: 45, Kind: game.EventLeave, Count: 100, Tag: "crowd"},
		},
	}
}

// runTo steps a started sim until the next tick would reach t.
func runTo(t *testing.T, s *sim.Sim, until float64) {
	t.Helper()
	for !s.Done() && s.NextTime() < until {
		if err := s.Step(); err != nil {
			t.Fatalf("step: %v", err)
		}
	}
}

// finishRun drives a sim to completion and returns its fingerprint.
func finishRun(t *testing.T, s *sim.Sim) string {
	t.Helper()
	for !s.Done() {
		if err := s.Step(); err != nil {
			t.Fatalf("step: %v", err)
		}
	}
	return s.Finish().Fingerprint()
}

// TestCaptureRestoreCaptureByteStable pins the determinism of the format
// itself: capturing, restoring and capturing again must produce
// byte-identical snapshots — across several seeds and capture points.
func TestCaptureRestoreCaptureByteStable(t *testing.T) {
	t.Parallel()
	seeds := []int64{1, 7, 23}
	ats := []float64{10, 30}
	if testing.Short() {
		seeds = seeds[:1]
		ats = ats[1:]
	}
	for _, seed := range seeds {
		for _, at := range ats {
			s, err := sim.New(tinyConfig(seed))
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Start(); err != nil {
				t.Fatal(err)
			}
			runTo(t, s, at)

			snap, err := Capture(s)
			if err != nil {
				t.Fatalf("capture: %v", err)
			}
			first, err := Marshal(snap)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			decoded, err := Unmarshal(first)
			if err != nil {
				t.Fatalf("unmarshal: %v", err)
			}
			restored, err := Restore(decoded)
			if err != nil {
				t.Fatalf("restore: %v", err)
			}
			again, err := Capture(restored)
			if err != nil {
				t.Fatalf("recapture: %v", err)
			}
			second, err := Marshal(again)
			if err != nil {
				t.Fatalf("remarshal: %v", err)
			}
			if !bytes.Equal(first, second) {
				t.Errorf("seed %d t=%g: capture→restore→capture is not byte-stable (%d vs %d bytes)", seed, at, len(first), len(second))
			}
		}
	}
}

// TestRestoredRunContinuesIdentically is the tentpole contract on the tiny
// workload: snapshot mid-run, restore from the serialized bytes, finish —
// the fingerprint must match the uninterrupted run byte for byte. The
// scenario-table version of this test lives in equivalence_test.go.
func TestRestoredRunContinuesIdentically(t *testing.T) {
	t.Parallel()
	cfg := tinyConfig(7)

	cold, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cold.Start(); err != nil {
		t.Fatal(err)
	}
	want := finishRun(t, cold)

	warm, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := warm.Start(); err != nil {
		t.Fatal(err)
	}
	runTo(t, warm, 28) // mid-crash: the crashed server and its checkpoint are in flight
	snap, err := Capture(warm)
	if err != nil {
		t.Fatal(err)
	}
	data, err := Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(decoded)
	if err != nil {
		t.Fatal(err)
	}
	got := finishRun(t, restored)
	if got != want {
		t.Errorf("restored run diverged from uninterrupted run:\ncold:\n%s\nrestored:\n%s", want, got)
	}

	// The original may keep running too — capture must not disturb it.
	if got := finishRun(t, warm); got != want {
		t.Errorf("captured run diverged after capture:\n%s\nwant:\n%s", got, want)
	}
}

// TestRestoreWithScriptTail exercises the branching primitive: a warmup
// without impairment fans into tails whose scripts diverge after the
// snapshot point, and each tail matches its cold-start equivalent.
func TestRestoreWithScriptTail(t *testing.T) {
	t.Parallel()
	base := tinyConfig(11)
	base.Netem = netem.Config{}
	prefix := game.Script{
		{At: 4, Kind: game.EventJoin, Count: 320, Center: geom.Pt(300, 100), Spread: 30, Tag: "crowd"},
	}
	base.Script = prefix
	const cut = 20.0

	tails := []game.Script{
		append(append(game.Script{}, prefix...), game.Event{At: 25, Kind: game.EventLeave, Count: 200, Tag: "crowd"}),
		append(append(game.Script{}, prefix...),
			game.Event{At: 22, Kind: game.EventImpair, Impair: netem.LinkConfig{DelayMs: 50, JitterMs: 200, Loss: 0.03}},
			game.Event{At: 40, Kind: game.EventImpair}),
	}

	warm, err := sim.New(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := warm.Start(); err != nil {
		t.Fatal(err)
	}
	runTo(t, warm, cut)
	snap, err := Capture(warm)
	if err != nil {
		t.Fatal(err)
	}

	for i, tail := range tails {
		cfg := base
		cfg.Script = tail
		cold, err := sim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := cold.Start(); err != nil {
			t.Fatal(err)
		}
		want := finishRun(t, cold)

		branched, err := RestoreWith(snap, sim.RestoreOptions{Script: tail})
		if err != nil {
			t.Fatalf("tail %d: %v", i, err)
		}
		if got := finishRun(t, branched); got != want {
			t.Errorf("tail %d: branched run diverged from cold start:\n%s\nwant:\n%s", i, got, want)
		}
	}
}

// TestRestoreWithValidation rejects tails that rewrite executed history or
// end before the snapshot point.
func TestRestoreWithValidation(t *testing.T) {
	t.Parallel()
	cfg := tinyConfig(3)
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	runTo(t, s, 20)
	snap, err := Capture(s)
	if err != nil {
		t.Fatal(err)
	}

	bad := append(game.Script{}, cfg.Script...)
	bad[0].Count = 999 // rewrites an event already executed at t=4
	if _, err := RestoreWith(snap, sim.RestoreOptions{Script: bad}); err == nil {
		t.Error("rewriting an executed event should fail")
	}
	if _, err := RestoreWith(snap, sim.RestoreOptions{DurationSeconds: 5}); err == nil {
		t.Error("duration before the snapshot point should fail")
	}
	if _, err := RestoreWith(snap, sim.RestoreOptions{DurationSeconds: 90}); err != nil {
		t.Errorf("extending the duration should work: %v", err)
	}
}

// TestVersionRejected pins the version gate.
func TestVersionRejected(t *testing.T) {
	t.Parallel()
	data := []byte(`{"Version":99,"Sim":{}}`)
	if _, err := Unmarshal(data); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("unknown version should be rejected, got %v", err)
	}
}
