package logging

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug,
		"info":  slog.LevelInfo,
		"":      slog.LevelInfo,
		"WARN":  slog.LevelWarn,
		"error": slog.LevelError,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("verbose"); err == nil {
		t.Error("ParseLevel accepted an unknown level")
	}
}

func TestNewTextLevelAndAttrs(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, slog.LevelWarn, false, slog.String("component", "server"))
	l.Info("hidden")
	l.Warn("shown", "region", "0,0-500,500")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Error("info line emitted at warn level")
	}
	if !strings.Contains(out, "shown") || !strings.Contains(out, "component=server") || !strings.Contains(out, "region=") {
		t.Errorf("warn line missing fields: %q", out)
	}
}

func TestNewJSON(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, slog.LevelInfo, true, slog.String("component", "mc"))
	l.Info("up", "addr", "127.0.0.1:7000")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("not JSON: %v (%q)", err, buf.String())
	}
	if rec["msg"] != "up" || rec["component"] != "mc" || rec["addr"] != "127.0.0.1:7000" {
		t.Errorf("JSON record missing fields: %v", rec)
	}
}

func TestStdBridge(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, slog.LevelInfo, false, slog.String("component", "server"))
	std := Std(l, slog.LevelInfo)
	std.Printf("server %v up", 3)
	out := buf.String()
	if !strings.Contains(out, "server 3 up") || !strings.Contains(out, "component=server") {
		t.Errorf("bridged line mangled: %q", out)
	}
}
