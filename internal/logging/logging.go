// Package logging standardizes the cmd binaries' structured logging: one
// slog.Logger per process (text or JSON, levelled), with a bridge into
// the stdlib *log.Logger the host configs accept, so the internal
// packages stay slog-free while every emitted line carries the process's
// component attributes.
package logging

import (
	"fmt"
	"io"
	"log"
	"log/slog"
	"strings"
)

// Levels accepted by ParseLevel, in the order -log-level documents them.
const LevelNames = "debug, info, warn, error"

// ParseLevel maps a -log-level flag value onto a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (valid: %s)", s, LevelNames)
}

// New builds the process logger: text (human-oriented, the default) or
// JSON (machine-ingested) lines at or above level, with attrs stamped on
// every record (conventionally component=... plus server/region ids as
// they become known).
func New(w io.Writer, level slog.Level, json bool, attrs ...slog.Attr) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	if json {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	if len(attrs) > 0 {
		h = h.WithAttrs(attrs)
	}
	return slog.New(h)
}

// Std bridges l into a stdlib *log.Logger emitting at level — the shim
// the host configs (which accept *log.Logger) plug into, so internal
// diagnostics land in the same structured stream as the binary's own
// lines.
func Std(l *slog.Logger, level slog.Level) *log.Logger {
	return slog.NewLogLogger(l.Handler(), level)
}
