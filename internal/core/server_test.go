package core

import (
	"errors"
	"testing"
	"time"

	"matrix/internal/clock"
	"matrix/internal/geom"
	"matrix/internal/id"
	"matrix/internal/load"
	"matrix/internal/overlap"
	"matrix/internal/protocol"
	"matrix/internal/space"
)

const testRadius = 5.0

// newActiveServer builds a server owning bounds inside world, with an
// installed overlap table computed from parts.
func newActiveServer(t *testing.T, sid id.ServerID, parts []space.Partition, clk clock.Clock) *Server {
	t.Helper()
	var bounds geom.Rect
	for _, p := range parts {
		if p.Owner == sid {
			bounds = p.Bounds
		}
	}
	s, err := NewServer(Config{Clock: clk}, &protocol.RegisterReply{
		Server: sid,
		Bounds: bounds,
		World:  geom.R(0, 0, 100, 100),
	}, testRadius)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	installTables(t, s, parts)
	return s
}

// installTables pushes fresh overlap tables for the given partitioning.
func installTables(t *testing.T, s *Server, parts []space.Partition) {
	t.Helper()
	tabs, err := overlap.BuildAll(parts, testRadius, 1)
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[s.ID()]
	var peers []protocol.PeerAddr
	for _, p := range parts {
		if p.Owner != s.ID() {
			peers = append(peers, protocol.PeerAddr{Server: p.Owner, Addr: "addr-of-" + p.Owner.String()})
		}
	}
	msg := &protocol.OverlapTable{
		Server:  s.ID(),
		Version: tab.Version(),
		Bounds:  tab.Bounds(),
		Radius:  testRadius,
		Regions: protocol.RegionsToWire(tab.Regions()),
		Peers:   peers,
	}
	if _, err := s.HandleMessage(id.None, msg); err != nil {
		t.Fatalf("install table: %v", err)
	}
}

func twoParts() []space.Partition {
	return []space.Partition{
		{Owner: 1, Bounds: geom.R(50, 0, 100, 100)},
		{Owner: 2, Bounds: geom.R(0, 0, 50, 100)},
	}
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(Config{}, nil, 5); err == nil {
		t.Error("nil reply must fail")
	}
	if _, err := NewServer(Config{}, &protocol.RegisterReply{}, 5); err == nil {
		t.Error("invalid id must fail")
	}
	if _, err := NewServer(Config{}, &protocol.RegisterReply{Server: 1}, -1); err == nil {
		t.Error("negative radius must fail")
	}
	s, err := NewServer(Config{}, &protocol.RegisterReply{Server: 3, Bounds: geom.R(0, 0, 1, 1)}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.ID() != 3 || !s.Active() {
		t.Error("server misconfigured")
	}
	spare, err := NewServer(Config{}, &protocol.RegisterReply{Server: 4}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if spare.Active() {
		t.Error("empty bounds must mean spare")
	}
}

func TestGameUpdateInteriorNotForwarded(t *testing.T) {
	s := newActiveServer(t, 1, twoParts(), nil)
	envs, err := s.HandleGameUpdate(&protocol.GameUpdate{
		Client: 1, Kind: protocol.KindMove,
		Origin: geom.Pt(90, 50), Dest: geom.Pt(90, 50),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != 0 {
		t.Fatalf("interior update forwarded: %+v", envs)
	}
	st := s.Stats()
	if st.GamePacketsIn != 1 || st.PeerPacketsOut != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestGameUpdateBoundaryForwarded(t *testing.T) {
	s := newActiveServer(t, 1, twoParts(), nil)
	envs, err := s.HandleGameUpdate(&protocol.GameUpdate{
		Client: 1, Kind: protocol.KindMove,
		Origin: geom.Pt(52, 50), Dest: geom.Pt(52, 50),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != 1 {
		t.Fatalf("envelopes = %+v", envs)
	}
	e := envs[0]
	if e.Dest != DestPeer || e.Peer != 2 {
		t.Fatalf("envelope = %+v", e)
	}
	if e.Addr != "addr-of-server-2" {
		t.Errorf("addr = %q", e.Addr)
	}
	fwd, ok := e.Msg.(*protocol.Forward)
	if !ok || fwd.From != 1 {
		t.Fatalf("msg = %+v", e.Msg)
	}
	st := s.Stats()
	if st.PeerPacketsOut != 1 || st.PeerBytesOut == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestGameUpdateDestInOtherBand(t *testing.T) {
	// Origin interior, destination inside the boundary band: the packet
	// must still reach the neighbour (union of origin and dest sets).
	s := newActiveServer(t, 1, twoParts(), nil)
	envs, err := s.HandleGameUpdate(&protocol.GameUpdate{
		Client: 1, Kind: protocol.KindAction,
		Origin: geom.Pt(80, 50), Dest: geom.Pt(51, 50),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != 1 || envs[0].Peer != 2 {
		t.Fatalf("envelopes = %+v", envs)
	}
}

func TestGameUpdateInactive(t *testing.T) {
	s, err := NewServer(Config{}, &protocol.RegisterReply{Server: 9}, testRadius)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.HandleGameUpdate(&protocol.GameUpdate{}); !errors.Is(err, ErrInactive) {
		t.Errorf("err = %v", err)
	}
}

func TestGameUpdateNoTable(t *testing.T) {
	s, err := NewServer(Config{}, &protocol.RegisterReply{
		Server: 1, Bounds: geom.R(0, 0, 10, 10), World: geom.R(0, 0, 10, 10),
	}, testRadius)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.HandleGameUpdate(&protocol.GameUpdate{Origin: geom.Pt(1, 1), Dest: geom.Pt(1, 1)}); !errors.Is(err, ErrNoTable) {
		t.Errorf("err = %v", err)
	}
}

func TestKindRadiusException(t *testing.T) {
	// Chat messages carry a 20-unit radius; moves the default 5. A point
	// 10 units from the boundary is forwarded only for chat.
	parts := twoParts()
	s, err := NewServer(Config{
		KindRadius: map[protocol.UpdateKind]float64{protocol.KindChat: 20},
	}, &protocol.RegisterReply{
		Server: 1, Bounds: geom.R(50, 0, 100, 100), World: geom.R(0, 0, 100, 100),
	}, testRadius)
	if err != nil {
		t.Fatal(err)
	}
	// Install tables for both radii.
	for _, r := range []float64{testRadius, 20} {
		tabs, err := overlap.BuildAll(parts, r, 1)
		if err != nil {
			t.Fatal(err)
		}
		tab := tabs[1]
		msg := &protocol.OverlapTable{
			Server: 1, Version: 1, Bounds: tab.Bounds(), Radius: r,
			Regions: protocol.RegionsToWire(tab.Regions()),
			Peers:   []protocol.PeerAddr{{Server: 2, Addr: "x"}},
		}
		if _, err := s.HandleMessage(id.None, msg); err != nil {
			t.Fatal(err)
		}
	}
	at := geom.Pt(60, 50) // 10 units from the x=50 boundary
	move := &protocol.GameUpdate{Kind: protocol.KindMove, Origin: at, Dest: at}
	envs, err := s.HandleGameUpdate(move)
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != 0 {
		t.Errorf("move at 10 units forwarded with R=5: %+v", envs)
	}
	chat := &protocol.GameUpdate{Kind: protocol.KindChat, Origin: at, Dest: at}
	envs, err = s.HandleGameUpdate(chat)
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != 1 {
		t.Errorf("chat at 10 units not forwarded with R=20: %+v", envs)
	}
}

func TestPeerForwardRangeVerification(t *testing.T) {
	s := newActiveServer(t, 1, twoParts(), nil)
	// In range: origin within bounds expanded by R.
	in := &protocol.Forward{From: 2, Update: protocol.GameUpdate{
		Kind: protocol.KindMove, Origin: geom.Pt(47, 50), Dest: geom.Pt(47, 50),
	}}
	envs, err := s.HandleMessage(2, in)
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != 1 || envs[0].Dest != DestGameServer {
		t.Fatalf("envelopes = %+v", envs)
	}
	if _, ok := envs[0].Msg.(*protocol.GameUpdate); !ok {
		t.Fatalf("delivered %T", envs[0].Msg)
	}
	// Out of range: must be dropped and counted.
	out := &protocol.Forward{From: 2, Update: protocol.GameUpdate{
		Kind: protocol.KindMove, Origin: geom.Pt(10, 50), Dest: geom.Pt(10, 50),
	}}
	envs, err = s.HandleMessage(2, out)
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != 0 {
		t.Fatalf("out-of-range delivered: %+v", envs)
	}
	st := s.Stats()
	if st.DeliveredToGame != 1 || st.RangeRejected != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLoadReportTriggersSplitOnce(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	s := newActiveServer(t, 1, twoParts(), clk)
	envs, err := s.HandleLocalLoad(400, 50)
	if err != nil {
		t.Fatal(err)
	}
	var split *protocol.SplitRequest
	var report *protocol.LoadReport
	for _, e := range envs {
		switch m := e.Msg.(type) {
		case *protocol.SplitRequest:
			split = m
		case *protocol.LoadReport:
			report = m
		}
		if e.Dest != DestCoordinator {
			t.Errorf("load envelopes must go to the MC: %+v", e)
		}
	}
	if split == nil || split.Clients != 400 {
		t.Fatalf("split request = %+v", split)
	}
	if report == nil || report.QueueLen != 50 {
		t.Fatalf("load report = %+v", report)
	}
	// Second overloaded report while the split is pending: no new request.
	envs, err = s.HandleLocalLoad(450, 60)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range envs {
		if _, ok := e.Msg.(*protocol.SplitRequest); ok {
			t.Fatal("duplicate split request while pending")
		}
	}
	if got := s.Stats().SplitsRequested; got != 1 {
		t.Errorf("SplitsRequested = %d", got)
	}
}

func TestSplitReplyGrantedUpdatesState(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	s := newActiveServer(t, 1, twoParts(), clk)
	if _, err := s.HandleLocalLoad(400, 0); err != nil {
		t.Fatal(err)
	}
	keep := geom.R(75, 0, 100, 100)
	envs, err := s.HandleMessage(id.None, &protocol.SplitReply{
		Granted: true, Child: 3, ChildAddr: "c:9", Keep: keep, Give: geom.R(50, 0, 75, 100),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Bounds().Eq(keep) {
		t.Errorf("bounds = %v", s.Bounds())
	}
	kids := s.Children()
	if len(kids) != 1 || kids[0] != 3 {
		t.Errorf("children = %v", kids)
	}
	if addr, ok := s.PeerAddr(3); !ok || addr != "c:9" {
		t.Errorf("child addr = %q,%v", addr, ok)
	}
	if len(envs) != 1 || envs[0].Dest != DestGameServer {
		t.Fatalf("envelopes = %+v", envs)
	}
	ru, ok := envs[0].Msg.(*protocol.RangeUpdate)
	if !ok || !ru.Bounds.Eq(keep) {
		t.Fatalf("range update = %+v", envs[0].Msg)
	}
	if got := s.Stats().SplitsGranted; got != 1 {
		t.Errorf("SplitsGranted = %d", got)
	}
	// A denial clears the pending flag without state changes.
	if _, err := s.HandleLocalLoad(400, 0); err != nil {
		t.Fatal(err)
	}
}

func TestSplitReplyDeniedAllowsRetry(t *testing.T) {
	cfg := load.DefaultConfig()
	clk := clock.NewVirtual(time.Unix(0, 0))
	s := newActiveServer(t, 1, twoParts(), clk)
	if _, err := s.HandleLocalLoad(400, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.HandleMessage(id.None, &protocol.SplitReply{Granted: false, Reason: "pool"}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(cfg.SplitCooldown)
	envs, err := s.HandleLocalLoad(400, 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range envs {
		if _, ok := e.Msg.(*protocol.SplitRequest); ok {
			found = true
		}
	}
	if !found {
		t.Error("denied split must be retryable")
	}
}

func TestReclaimFlow(t *testing.T) {
	cfg := load.DefaultConfig()
	clk := clock.NewVirtual(time.Unix(0, 0))
	s := newActiveServer(t, 1, twoParts(), clk)
	// Adopt child 2 via a granted split reply.
	if _, err := s.HandleLocalLoad(400, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.HandleMessage(id.None, &protocol.SplitReply{
		Granted: true, Child: 2, Keep: geom.R(50, 0, 100, 100), Give: geom.R(0, 0, 50, 100),
	}); err != nil {
		t.Fatal(err)
	}
	// Parent load drops, then the child reports low load; the dwell timer
	// starts at the first moment the combined condition holds.
	if _, err := s.HandleLocalLoad(50, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.HandleMessage(id.None, &protocol.LoadReport{Server: 2, Clients: 40}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(cfg.ReclaimDwell)
	// The next local report requests the reclaim.
	envs, err := s.HandleLocalLoad(50, 0)
	if err != nil {
		t.Fatal(err)
	}
	var req *protocol.ReclaimRequest
	for _, e := range envs {
		if m, ok := e.Msg.(*protocol.ReclaimRequest); ok {
			req = m
		}
	}
	if req == nil || req.Child != 2 || req.Parent != 1 {
		t.Fatalf("reclaim request = %+v", req)
	}
	// Granted: merged bounds applied, child forgotten, game server told.
	merged := geom.R(0, 0, 100, 100)
	envs, err = s.HandleMessage(id.None, &protocol.ReclaimReply{Granted: true, Merged: merged})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Bounds().Eq(merged) {
		t.Errorf("bounds = %v", s.Bounds())
	}
	if len(s.Children()) != 0 {
		t.Errorf("children = %v", s.Children())
	}
	if len(envs) != 1 || envs[0].Dest != DestGameServer {
		t.Fatalf("envelopes = %+v", envs)
	}
	if got := s.Stats().ReclaimGranted; got != 1 {
		t.Errorf("ReclaimGranted = %d", got)
	}
}

func TestRangeUpdateActivateDeactivate(t *testing.T) {
	// A spare is activated by an MC range push, then deactivated.
	s, err := NewServer(Config{}, &protocol.RegisterReply{Server: 7, World: geom.R(0, 0, 100, 100)}, testRadius)
	if err != nil {
		t.Fatal(err)
	}
	give := geom.R(0, 0, 50, 100)
	envs, err := s.HandleMessage(id.None, &protocol.RangeUpdate{Server: 7, Bounds: give})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Active() || !s.Bounds().Eq(give) {
		t.Errorf("activation failed: active=%v bounds=%v", s.Active(), s.Bounds())
	}
	if len(envs) != 1 || envs[0].Dest != DestGameServer {
		t.Fatalf("envelopes = %+v", envs)
	}
	// Deactivate.
	if _, err := s.HandleMessage(id.None, &protocol.RangeUpdate{Server: 7, Bounds: geom.Rect{}}); err != nil {
		t.Fatal(err)
	}
	if s.Active() {
		t.Error("deactivation failed")
	}
	// Misdelivered update errors.
	if _, err := s.HandleMessage(id.None, &protocol.RangeUpdate{Server: 8, Bounds: give}); err == nil {
		t.Error("misdelivered range update must error")
	}
}

func TestStateTransferRouting(t *testing.T) {
	s := newActiveServer(t, 1, twoParts(), nil)
	// Outbound from local game server to peer 2.
	out := &protocol.StateTransfer{From: 1, To: 2, Final: true}
	envs, err := s.HandleMessage(id.None, out)
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != 1 || envs[0].Dest != DestPeer || envs[0].Peer != 2 {
		t.Fatalf("outbound = %+v", envs)
	}
	// Inbound addressed to us: delivered to game server.
	in := &protocol.StateTransfer{From: 2, To: 1, Final: true}
	envs, err = s.HandleMessage(2, in)
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != 1 || envs[0].Dest != DestGameServer {
		t.Fatalf("inbound = %+v", envs)
	}
	// Outbound to an unknown peer from the local game server fails.
	bad := &protocol.StateTransfer{From: 1, To: 42}
	if _, err := s.HandleMessage(id.None, bad); !errors.Is(err, ErrBadPeer) {
		t.Errorf("err = %v", err)
	}
}

func TestNonProximalFlow(t *testing.T) {
	s := newActiveServer(t, 1, twoParts(), nil)
	// Destination far outside our partition and its R-expansion.
	u := &protocol.GameUpdate{
		Client: 4, Kind: protocol.KindAction,
		Origin: geom.Pt(90, 50), Dest: geom.Pt(5, 5),
	}
	envs, err := s.HandleGameUpdate(u)
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != 1 || envs[0].Dest != DestCoordinator {
		t.Fatalf("envelopes = %+v", envs)
	}
	q, ok := envs[0].Msg.(*protocol.NonProximalQuery)
	if !ok || q.Point != geom.Pt(5, 5) {
		t.Fatalf("query = %+v", envs[0].Msg)
	}
	if got := s.Stats().NonProximalSent; got != 1 {
		t.Errorf("NonProximalSent = %d", got)
	}
	// The MC answers; the pending packet is forwarded to the named peers.
	envs, err = s.HandleMessage(id.None, &protocol.NonProximalReply{
		Servers: []id.ServerID{2},
		Peers:   []protocol.PeerAddr{{Server: 2, Addr: "b:2"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != 1 || envs[0].Peer != 2 {
		t.Fatalf("forwarded = %+v", envs)
	}
	fwd, ok := envs[0].Msg.(*protocol.Forward)
	if !ok || fwd.Update.Client != 4 {
		t.Fatalf("msg = %+v", envs[0].Msg)
	}
	// A reply with nothing pending errors.
	if _, err := s.HandleMessage(id.None, &protocol.NonProximalReply{}); !errors.Is(err, ErrNoPending) {
		t.Errorf("err = %v", err)
	}
}

func TestStaleTableIgnored(t *testing.T) {
	s := newActiveServer(t, 1, twoParts(), nil)
	// Current version is 1 (from installTables). Push version 5, then a
	// stale version 3: the stale one must be ignored.
	fresh := &protocol.OverlapTable{
		Server: 1, Version: 5, Bounds: geom.R(50, 0, 100, 100), Radius: testRadius,
	}
	if _, err := s.HandleMessage(id.None, fresh); err != nil {
		t.Fatal(err)
	}
	if got := s.TableVersion(); got != 5 {
		t.Fatalf("TableVersion = %d", got)
	}
	stale := &protocol.OverlapTable{
		Server: 1, Version: 3, Bounds: geom.R(0, 0, 10, 10), Radius: testRadius,
	}
	if _, err := s.HandleMessage(id.None, stale); err != nil {
		t.Fatal(err)
	}
	if got := s.TableVersion(); got != 5 {
		t.Errorf("stale table installed: version = %d", got)
	}
	// Misdelivered table errors.
	bad := &protocol.OverlapTable{Server: 9, Version: 9, Bounds: geom.R(0, 0, 1, 1), Radius: testRadius}
	if _, err := s.HandleMessage(id.None, bad); err == nil {
		t.Error("misdelivered table must error")
	}
}

func TestOverlapAreaExposed(t *testing.T) {
	s := newActiveServer(t, 1, twoParts(), nil)
	// Band of 5 x 100 along the shared edge.
	if got := s.OverlapArea(); got != 500 {
		t.Errorf("OverlapArea = %v, want 500", got)
	}
}

func TestHandleNilMessage(t *testing.T) {
	s := newActiveServer(t, 1, twoParts(), nil)
	if _, err := s.HandleMessage(id.None, nil); !errors.Is(err, ErrNilMessage) {
		t.Errorf("err = %v", err)
	}
}

func TestChildLoadForUnknownChildIgnored(t *testing.T) {
	s := newActiveServer(t, 1, twoParts(), nil)
	if _, err := s.HandleMessage(id.None, &protocol.LoadReport{Server: 77, Clients: 10}); err != nil {
		t.Errorf("unknown child load must be ignored, got %v", err)
	}
}

func TestDestString(t *testing.T) {
	if DestCoordinator.String() != "coordinator" ||
		DestGameServer.String() != "game-server" ||
		DestPeer.String() != "peer" {
		t.Error("Dest names wrong")
	}
	if Dest(0).String() != "dest(0)" {
		t.Error("invalid Dest String")
	}
}

// TestAppendGameUpdateMatchesHandle: the append API and the allocating
// wrapper must route identically.
func TestAppendGameUpdateMatchesHandle(t *testing.T) {
	a := newActiveServer(t, 1, twoParts(), nil)
	b := newActiveServer(t, 1, twoParts(), nil)
	updates := []*protocol.GameUpdate{
		{Client: 1, Kind: protocol.KindMove, Origin: geom.Pt(75, 50), Dest: geom.Pt(75, 50)}, // interior
		{Client: 2, Kind: protocol.KindMove, Origin: geom.Pt(51, 50), Dest: geom.Pt(51, 50)}, // boundary
		{Client: 3, Kind: protocol.KindAction, Origin: geom.Pt(52, 10), Dest: geom.Pt(53, 11)},
	}
	buf := make([]Envelope, 0, 4)
	for _, u := range updates {
		got, errA := a.HandleGameUpdate(u)
		want, errB := b.AppendGameUpdate(buf[:0], u)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("errors diverge: %v vs %v", errA, errB)
		}
		if len(got) != len(want) {
			t.Fatalf("envelope counts diverge: %d vs %d", len(got), len(want))
		}
		for i := range got {
			if got[i].Dest != want[i].Dest || got[i].Peer != want[i].Peer || got[i].Addr != want[i].Addr {
				t.Errorf("envelope %d diverges: %+v vs %+v", i, got[i], want[i])
			}
		}
		buf = want[:0]
	}
	sa, sb := a.Stats(), b.Stats()
	if sa != sb {
		t.Errorf("stats diverge: %+v vs %+v", sa, sb)
	}
}

// TestAppendGameUpdateAllocBudget pins the fast path: an interior update
// (no forwarding) must not allocate; a boundary update costs exactly the
// one shared Forward message.
func TestAppendGameUpdateAllocBudget(t *testing.T) {
	s := newActiveServer(t, 1, twoParts(), nil)
	buf := make([]Envelope, 0, 8)
	interior := &protocol.GameUpdate{Client: 1, Kind: protocol.KindMove, Origin: geom.Pt(75, 50), Dest: geom.Pt(75, 50)}
	boundary := &protocol.GameUpdate{Client: 2, Kind: protocol.KindMove, Origin: geom.Pt(51, 50), Dest: geom.Pt(51, 50)}
	run := func(u *protocol.GameUpdate) float64 {
		return testing.AllocsPerRun(100, func() {
			out, err := s.AppendGameUpdate(buf[:0], u)
			if err != nil {
				t.Fatal(err)
			}
			buf = out[:0]
		})
	}
	if got := run(interior); got != 0 {
		t.Errorf("interior update allocates %.1f/op, budget is 0", got)
	}
	if got := run(boundary); got > 1 {
		t.Errorf("boundary update allocates %.1f/op, budget is 1 (the shared Forward)", got)
	}
}
