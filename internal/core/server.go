// Package core implements the Matrix server, "the heart of our distributed
// middleware" (paper §3.2.3). A Matrix server
//
//   - receives spatially-tagged game packets from its co-located game server
//     and routes them to the peer Matrix servers in the packet's consistency
//     set via an O(1) overlap-table lookup;
//   - verifies the range of packets forwarded by peers before handing them
//     to its own game server;
//   - watches its game server's load and makes purely local split decisions
//     when overloaded, and reclaim decisions for its underloaded children;
//   - consults the Matrix Coordinator only for topology changes and rare
//     non-proximal interactions.
//
// The server is a synchronous state machine: handlers return envelopes (the
// messages to deliver) instead of doing I/O, so production transports and
// the deterministic simulation harness drive identical code.
package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"matrix/internal/clock"
	"matrix/internal/geom"
	"matrix/internal/id"
	"matrix/internal/load"
	"matrix/internal/overlap"
	"matrix/internal/policy"
	"matrix/internal/protocol"
)

// Core server errors.
var (
	ErrInactive   = errors.New("core: server owns no partition")
	ErrNoTable    = errors.New("core: no overlap table installed")
	ErrBadPeer    = errors.New("core: unknown peer server")
	ErrNoPending  = errors.New("core: non-proximal reply without pending packet")
	ErrNilMessage = errors.New("core: nil message")
)

// Dest says where an envelope must be delivered.
type Dest uint8

// Envelope destinations.
const (
	// DestCoordinator delivers to the MC.
	DestCoordinator Dest = iota + 1
	// DestGameServer delivers to the co-located game server.
	DestGameServer
	// DestPeer delivers to the peer Matrix server named by Envelope.Peer.
	DestPeer
)

// String implements fmt.Stringer.
func (d Dest) String() string {
	switch d {
	case DestCoordinator:
		return "coordinator"
	case DestGameServer:
		return "game-server"
	case DestPeer:
		return "peer"
	default:
		return fmt.Sprintf("dest(%d)", uint8(d))
	}
}

// Envelope is one message a handler wants delivered.
type Envelope struct {
	Dest Dest
	Peer id.ServerID // set when Dest == DestPeer
	Addr string      // dialable address of Peer, when known
	Msg  protocol.Message
}

// peerInfo is what a Matrix server knows about a peer: where to dial it and
// which part of the world it currently owns.
type peerInfo struct {
	addr   string
	bounds geom.Rect
}

// Config tunes a Matrix server.
type Config struct {
	// Load is the split/reclaim thresholds (zero value = paper defaults).
	Load load.Config
	// Policy decides when this server splits and reclaims (nil = the
	// default paper policy). The instance must be exclusive to this
	// server — stateful policies snapshot per server.
	Policy policy.Policy
	// Clock drives the policy timers (nil = wall clock).
	Clock clock.Clock
	// KindRadius optionally overrides the visibility radius per update
	// kind — the paper's "different visibility radii for exceptions". A
	// kind without an entry uses the game's default radius.
	KindRadius map[protocol.UpdateKind]float64
}

// Stats is a snapshot of a server's traffic counters, used by the
// evaluation harness.
type Stats struct {
	GamePacketsIn    uint64 // packets received from the local game server
	PeerPacketsIn    uint64 // forwards received from peers
	PeerPacketsOut   uint64 // forwards sent to peers
	PeerBytesOut     uint64 // encoded bytes of forwards sent to peers
	DeliveredToGame  uint64 // peer packets handed to the local game server
	RangeRejected    uint64 // peer packets dropped by range verification
	NonProximalSent  uint64 // MC consistency-set queries
	SplitsRequested  uint64
	SplitsGranted    uint64
	ReclaimRequested uint64
	ReclaimGranted   uint64
}

// Server is one Matrix server. Safe for concurrent use.
type Server struct {
	mu     sync.Mutex
	cfg    Config
	id     id.ServerID
	world  geom.Rect
	bounds geom.Rect
	active bool
	radius float64 // game default visibility radius
	tables map[float64]*overlap.Table
	peers  map[id.ServerID]peerInfo
	// peerOrder mirrors peers' keys, sorted: ResolveOwner runs per
	// boundary-crossing move and must scan peers in a deterministic order
	// without re-sorting on every call.
	peerOrder    []id.ServerID
	peersVersion uint64
	parent       id.ServerID
	child        map[id.ServerID]bool
	// childOrder records adoption order. Reclaims try children newest
	// first: splits always halve the parent's current rectangle, so only
	// the most recent unreclaimed child is guaranteed to merge back
	// cleanly (last-split-first order).
	childOrder []id.ServerID
	tracker    *load.Tracker

	pendingSplit   bool
	pendingReclaim id.ServerID // child being reclaimed, id.None when idle
	// reclaimDeniedUntil backs off children whose reclaim the MC denied
	// (not yet mergeable, or they have children of their own).
	reclaimDeniedUntil map[id.ServerID]time.Time
	pendingNonProx     []*protocol.GameUpdate

	stats Stats
}

// NewServer creates a Matrix server from its registration reply.
func NewServer(cfg Config, reply *protocol.RegisterReply, radius float64) (*Server, error) {
	if reply == nil {
		return nil, errors.New("core: nil registration reply")
	}
	if !reply.Server.Valid() {
		return nil, errors.New("core: invalid server id in registration")
	}
	if radius < 0 {
		return nil, fmt.Errorf("core: negative radius %v", radius)
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.Wall{}
	}
	tracker, err := load.NewTracker(cfg.Load, clk, cfg.Policy)
	if err != nil {
		return nil, err
	}
	return &Server{
		cfg:                cfg,
		id:                 reply.Server,
		world:              reply.World,
		bounds:             reply.Bounds,
		active:             !reply.Bounds.Empty(),
		radius:             radius,
		tables:             make(map[float64]*overlap.Table),
		peers:              make(map[id.ServerID]peerInfo),
		child:              make(map[id.ServerID]bool),
		tracker:            tracker,
		reclaimDeniedUntil: make(map[id.ServerID]time.Time),
	}, nil
}

// ID returns the server's identity.
func (s *Server) ID() id.ServerID { return s.id }

// Bounds returns the currently owned partition (empty when spare).
func (s *Server) Bounds() geom.Rect {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bounds
}

// Active reports whether the server currently owns a partition.
func (s *Server) Active() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.active
}

// Parent returns the split-tree parent (id.None for root or spares).
func (s *Server) Parent() id.ServerID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.parent
}

// Children returns this server's current children, sorted.
func (s *Server) Children() []id.ServerID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]id.ServerID, 0, len(s.child))
	for c := range s.child {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Stats returns a copy of the traffic counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Tracker exposes the load tracker (read-mostly; used by hosts to render
// status).
func (s *Server) Tracker() *load.Tracker { return s.tracker }

// HandleMessage dispatches any message arriving at this Matrix server and
// returns the envelopes to deliver.
//
// The from argument identifies peer Matrix servers for Forward and
// StateTransfer messages; messages from the MC or the local game server
// pass id.None.
func (s *Server) HandleMessage(from id.ServerID, m protocol.Message) ([]Envelope, error) {
	if m == nil {
		return nil, ErrNilMessage
	}
	switch msg := m.(type) {
	case *protocol.GameUpdate:
		return s.HandleGameUpdate(msg)
	case *protocol.Forward:
		return s.handlePeerForward(msg)
	case *protocol.LoadReport:
		if msg.Server == s.id || !msg.Server.Valid() {
			return s.HandleLocalLoad(int(msg.Clients), int(msg.QueueLen))
		}
		return s.handleChildLoad(msg)
	case *protocol.OverlapTable:
		return nil, s.handleOverlapTable(msg)
	case *protocol.SplitReply:
		return s.handleSplitReply(msg)
	case *protocol.ReclaimReply:
		return s.handleReclaimReply(msg)
	case *protocol.RangeUpdate:
		return s.handleRangeUpdate(msg)
	case *protocol.StateTransfer:
		return s.handleStateTransfer(from, msg)
	case *protocol.NonProximalReply:
		return s.handleNonProximalReply(msg)
	default:
		return nil, fmt.Errorf("core: unexpected message %v", m.MsgType())
	}
}

// HandleGameUpdate routes one spatially-tagged packet from the local game
// server to every peer in its consistency set, returning the envelopes in
// a fresh slice. Hot loops should use AppendGameUpdate with a reused
// buffer.
func (s *Server) HandleGameUpdate(u *protocol.GameUpdate) ([]Envelope, error) {
	return s.AppendGameUpdate(nil, u)
}

// AppendGameUpdate routes one spatially-tagged packet from the local game
// server to every peer in its consistency set, appending the envelopes to
// dst. This is the latency-critical fast path: a table lookup and one
// Forward per peer, no MC involvement unless the destination is
// non-proximal. A caller that fully consumes the returned slice before the
// next call can pass the same buffer back (`buf = AppendGameUpdate(buf[:0],
// u)`) and forward at one allocation per packet (the shared Forward) in
// steady state.
func (s *Server) AppendGameUpdate(dst []Envelope, u *protocol.GameUpdate) ([]Envelope, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.active {
		return dst, ErrInactive
	}
	s.stats.GamePacketsIn++

	radius := s.radiusForLocked(u.Kind)
	tab, ok := s.tables[radius]
	if !ok {
		return dst, fmt.Errorf("%w: radius %v", ErrNoTable, radius)
	}

	// Non-proximal destination: the table only covers our own partition,
	// so a far-away Dest needs the MC's global view (paper §3.2.4).
	if u.Dest != u.Origin && !s.bounds.Contains(u.Dest) && !tabCovers(tab, u.Dest, radius) {
		s.pendingNonProx = append(s.pendingNonProx, u)
		s.stats.NonProximalSent++
		return append(dst, Envelope{Dest: DestCoordinator, Msg: &protocol.NonProximalQuery{
			Server: s.id,
			Point:  u.Dest,
			Radius: radius,
		}}), nil
	}

	peers := tab.Lookup(u.Origin)
	if u.Dest != u.Origin {
		peers = peers.Union(tab.Lookup(u.Dest))
	}
	return s.forwardLocked(dst, u, peers)
}

// tabCovers reports whether p is close enough to our partition that the
// local table's conservative expansion already accounts for it.
func tabCovers(tab *overlap.Table, p geom.Point, radius float64) bool {
	return tab.Bounds().Expand(radius).ContainsClosed(p)
}

// forwardLocked appends Forward envelopes for every peer in set to dst.
// One Forward message is shared by every envelope (receivers never mutate
// it), so the fan-out costs a single allocation however wide the
// consistency set is.
func (s *Server) forwardLocked(dst []Envelope, u *protocol.GameUpdate, peers overlap.Set) ([]Envelope, error) {
	if len(peers) == 0 {
		return dst, nil
	}
	fwd := &protocol.Forward{From: s.id, Update: *u}
	size, err := protocol.Size(fwd)
	if err != nil {
		return dst, err
	}
	for _, p := range peers {
		dst = append(dst, Envelope{Dest: DestPeer, Peer: p, Addr: s.peers[p].addr, Msg: fwd})
		s.stats.PeerPacketsOut++
		s.stats.PeerBytesOut += uint64(size)
	}
	return dst, nil
}

// handlePeerForward verifies a peer-forwarded packet's range and, when
// valid, hands it to the local game server ("which then forward the packet,
// after verifying the packet's range, to their own game servers").
func (s *Server) handlePeerForward(f *protocol.Forward) ([]Envelope, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.active {
		return nil, ErrInactive
	}
	s.stats.PeerPacketsIn++
	radius := s.radiusForLocked(f.Update.Kind)
	reach := s.bounds.Expand(radius)
	if !reach.ContainsClosed(f.Update.Origin) && !reach.ContainsClosed(f.Update.Dest) {
		s.stats.RangeRejected++
		return nil, nil
	}
	s.stats.DeliveredToGame++
	u := f.Update
	return []Envelope{{Dest: DestGameServer, Msg: &u}}, nil
}

// HandleLocalLoad ingests the local game server's load report and applies
// the split/reclaim policy. Splits are purely local decisions: the server
// asks the MC for a spare the moment its own tracker says so.
func (s *Server) HandleLocalLoad(clients, queueLen int) ([]Envelope, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tracker.SetLoad(clients, queueLen)
	if !s.active {
		return nil, nil
	}
	var out []Envelope
	// Report load to the MC (it relays child loads to parents).
	out = append(out, Envelope{Dest: DestCoordinator, Msg: &protocol.LoadReport{
		Server:   s.id,
		Clients:  int32(clients),
		QueueLen: int32(queueLen),
	}})
	if !s.pendingSplit && s.tracker.ShouldSplit() {
		s.pendingSplit = true
		s.stats.SplitsRequested++
		out = append(out, Envelope{Dest: DestCoordinator, Msg: &protocol.SplitRequest{
			Server:  s.id,
			Clients: int32(clients),
		}})
	}
	if s.pendingReclaim == id.None {
		// Try children newest-first: only the most recently split-off
		// piece is guaranteed to merge back into our current rectangle.
		now := s.clockNow()
		for i := len(s.childOrder) - 1; i >= 0; i-- {
			child := s.childOrder[i]
			if until, denied := s.reclaimDeniedUntil[child]; denied && now.Before(until) {
				continue
			}
			if s.tracker.ReclaimCandidate(child) {
				s.pendingReclaim = child
				s.stats.ReclaimRequested++
				out = append(out, Envelope{Dest: DestCoordinator, Msg: &protocol.ReclaimRequest{
					Parent: s.id,
					Child:  child,
				}})
				break
			}
		}
	}
	return out, nil
}

// clockNow reads the policy clock.
func (s *Server) clockNow() time.Time {
	if s.cfg.Clock != nil {
		return s.cfg.Clock.Now()
	}
	return time.Now()
}

// handleChildLoad ingests a child's load report relayed by the MC.
func (s *Server) handleChildLoad(rep *protocol.LoadReport) ([]Envelope, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.child[rep.Server] {
		// A report for a server we no longer parent; ignore.
		return nil, nil
	}
	s.tracker.SetChildLoad(rep.Server, int(rep.Clients), int(rep.QueueLen))
	return nil, nil
}

// handleOverlapTable installs a freshly pushed routing table.
func (s *Server) handleOverlapTable(msg *protocol.OverlapTable) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if msg.Server != s.id {
		return fmt.Errorf("core: table for %v delivered to %v", msg.Server, s.id)
	}
	// Ignore stale pushes (the MC may race a split with a reclaim).
	if old, ok := s.tables[msg.Radius]; ok && old.Version() > msg.Version {
		return nil
	}
	tab, err := overlap.NewTableFromRegions(s.id, msg.Bounds, msg.Radius, msg.Version, protocol.RegionsFromWire(msg.Regions))
	if err != nil {
		return fmt.Errorf("core: install table: %w", err)
	}
	s.tables[msg.Radius] = tab
	s.bounds = msg.Bounds
	s.active = true
	// A strictly newer topology version invalidates everything we knew
	// about peers (stale bounds would misroute client handoffs); same-
	// version pushes (per-radius tables of one topology) merge.
	if msg.Version > s.peersVersion {
		s.peers = make(map[id.ServerID]peerInfo, len(msg.Peers))
		s.peerOrder = s.peerOrder[:0]
		s.peersVersion = msg.Version
	}
	for _, p := range msg.Peers {
		s.setPeerLocked(p.Server, peerInfo{addr: p.Addr, bounds: p.Bounds})
	}
	return nil
}

// setPeerLocked records/updates a peer, keeping peerOrder sorted.
func (s *Server) setPeerLocked(sid id.ServerID, info peerInfo) {
	if _, ok := s.peers[sid]; !ok {
		i := sort.Search(len(s.peerOrder), func(i int) bool { return s.peerOrder[i] >= sid })
		s.peerOrder = append(s.peerOrder, 0)
		copy(s.peerOrder[i+1:], s.peerOrder[i:])
		s.peerOrder[i] = sid
	}
	s.peers[sid] = info
}

// handleSplitReply finishes a split: adopt the kept bounds, remember the
// child, and tell the game server to shrink its range (which triggers the
// client redirects and state transfer).
func (s *Server) handleSplitReply(r *protocol.SplitReply) ([]Envelope, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pendingSplit = false
	if !r.Granted {
		return nil, nil
	}
	s.stats.SplitsGranted++
	s.tracker.NoteSplit()
	s.bounds = r.Keep
	if !s.child[r.Child] {
		s.childOrder = append(s.childOrder, r.Child)
	}
	s.child[r.Child] = true
	s.setPeerLocked(r.Child, peerInfo{addr: r.ChildAddr, bounds: r.Give})
	return []Envelope{{Dest: DestGameServer, Msg: &protocol.RangeUpdate{
		Server: s.id,
		Bounds: r.Keep,
		Handoff: []protocol.HandoffTarget{{
			Server: r.Child,
			Addr:   r.ChildAddr,
			Bounds: r.Give,
		}},
		// The split decision's correlation ID follows the range change to
		// the game server, which stamps it on the redirects it causes.
		Corr: r.Corr,
	}}}, nil
}

// handleReclaimReply finishes a reclamation: adopt the merged bounds and
// widen the game server's range. The reclaimed child's clients are
// transferred by the child's own game server reacting to its empty range.
func (s *Server) handleReclaimReply(r *protocol.ReclaimReply) ([]Envelope, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	child := s.pendingReclaim
	s.pendingReclaim = id.None
	if !r.Granted {
		// Back the denied child off for one dwell period so other
		// children get a turn on the next load report.
		if child.Valid() {
			s.reclaimDeniedUntil[child] = s.clockNow().Add(s.tracker.Config().ReclaimDwell)
		}
		return nil, nil
	}
	s.stats.ReclaimGranted++
	if child.Valid() {
		delete(s.child, child)
		delete(s.reclaimDeniedUntil, child)
		for i, c := range s.childOrder {
			if c == child {
				s.childOrder = append(s.childOrder[:i], s.childOrder[i+1:]...)
				break
			}
		}
		s.tracker.ForgetChild(child)
		s.tracker.NoteReclaim(child)
	}
	s.bounds = r.Merged
	return []Envelope{{Dest: DestGameServer, Msg: &protocol.RangeUpdate{
		Server: s.id,
		Bounds: r.Merged,
	}}}, nil
}

// handleRangeUpdate applies an MC-pushed range change: activation of a
// spare (split gave it a partition) or deactivation (it was reclaimed).
func (s *Server) handleRangeUpdate(r *protocol.RangeUpdate) ([]Envelope, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r.Server != s.id {
		return nil, fmt.Errorf("core: range update for %v delivered to %v", r.Server, s.id)
	}
	s.bounds = r.Bounds
	wasActive := s.active
	s.active = !r.Bounds.Empty()
	// Handoff targets are peers we are about to ship state to.
	for _, h := range r.Handoff {
		s.setPeerLocked(h.Server, peerInfo{addr: h.Addr, bounds: h.Bounds})
	}
	if !s.active && wasActive {
		// Deactivated: clear topology state; we are a spare again.
		s.child = make(map[id.ServerID]bool)
		s.childOrder = nil
		s.parent = id.None
		s.tables = make(map[float64]*overlap.Table)
		s.pendingSplit = false
		s.pendingReclaim = id.None
		s.reclaimDeniedUntil = make(map[id.ServerID]time.Time)
	}
	// The co-located game server always mirrors our range (handoff targets
	// and the decision's correlation ID included, so it can redirect
	// displaced clients and stamp those redirects).
	return []Envelope{{Dest: DestGameServer, Msg: &protocol.RangeUpdate{
		Server:  s.id,
		Bounds:  r.Bounds,
		Handoff: r.Handoff,
		Corr:    r.Corr,
	}}}, nil
}

// handleStateTransfer routes migrating game state: outbound chunks from the
// local game server go to the destination's Matrix server; inbound chunks
// are delivered to the local game server.
func (s *Server) handleStateTransfer(from id.ServerID, st *protocol.StateTransfer) ([]Envelope, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st.To == s.id {
		return []Envelope{{Dest: DestGameServer, Msg: st}}, nil
	}
	// Outbound: must come from the local game server (from == id.None) or
	// be relayed on behalf of our own id.
	info, ok := s.peers[st.To]
	if !ok && !from.Valid() {
		return nil, fmt.Errorf("%w: %v", ErrBadPeer, st.To)
	}
	return []Envelope{{Dest: DestPeer, Peer: st.To, Addr: info.addr, Msg: st}}, nil
}

// handleNonProximalReply resolves the oldest pending non-proximal packet
// with the MC's consistency set. Replies arrive in request order because
// both the MC and the transports preserve ordering.
func (s *Server) handleNonProximalReply(r *protocol.NonProximalReply) ([]Envelope, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.pendingNonProx) == 0 {
		return nil, ErrNoPending
	}
	u := s.pendingNonProx[0]
	s.pendingNonProx = s.pendingNonProx[1:]
	for _, p := range r.Peers {
		s.setPeerLocked(p.Server, peerInfo{addr: p.Addr, bounds: p.Bounds})
	}
	return s.forwardLocked(nil, u, overlap.NewSet(r.Servers...))
}

// TableState is one installed overlap table inside a State snapshot,
// carried as wire regions (the same representation the MC pushes).
type TableState struct {
	Radius  float64
	Version uint64
	Bounds  geom.Rect
	Regions []protocol.TableRegion
}

// PeerState is one known peer inside a State snapshot.
type PeerState struct {
	Server id.ServerID
	Addr   string
	Bounds geom.Rect
}

// DeniedState is one backed-off reclaim child inside a State snapshot.
type DeniedState struct {
	Child   id.ServerID
	UntilNs int64 // deadline, ns since the Unix epoch on the policy clock
}

// State is a Matrix server's serializable snapshot. Every collection is
// sorted (tables by radius, peers and denials by ID; children keep adoption
// order, which reclaim depends on), so encoding the same server twice is
// byte-identical.
type State struct {
	ID             id.ServerID
	World          geom.Rect
	Bounds         geom.Rect
	Active         bool
	Radius         float64
	PeersVersion   uint64
	Parent         id.ServerID
	Children       []id.ServerID // adoption order (newest last)
	Peers          []PeerState
	Tables         []TableState
	Tracker        load.TrackerState
	PendingSplit   bool
	PendingReclaim id.ServerID
	ReclaimDenied  []DeniedState
	PendingNonProx [][]byte // encoded GameUpdate frames, oldest first
	Stats          Stats
	// PolicyState is the split/reclaim policy's internal snapshot; nil for
	// stateless policies (paper, static), so pre-policy snapshots and the
	// default configuration encode byte-identically to version 1.
	PolicyState json.RawMessage `json:",omitempty"`
}

// CaptureState snapshots the server.
func (s *Server) CaptureState() (*State, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := &State{
		ID:             s.id,
		World:          s.world,
		Bounds:         s.bounds,
		Active:         s.active,
		Radius:         s.radius,
		PeersVersion:   s.peersVersion,
		Parent:         s.parent,
		Children:       append([]id.ServerID(nil), s.childOrder...),
		PendingSplit:   s.pendingSplit,
		PendingReclaim: s.pendingReclaim,
		Stats:          s.stats,
		Tracker:        s.tracker.State(),
	}
	if ps := s.tracker.PolicyState(); len(ps) > 0 {
		st.PolicyState = json.RawMessage(ps)
	}
	for _, sid := range s.peerOrder {
		info := s.peers[sid]
		st.Peers = append(st.Peers, PeerState{Server: sid, Addr: info.addr, Bounds: info.bounds})
	}
	radii := make([]float64, 0, len(s.tables))
	for r := range s.tables {
		radii = append(radii, r)
	}
	sort.Float64s(radii)
	for _, r := range radii {
		tab := s.tables[r]
		st.Tables = append(st.Tables, TableState{
			Radius:  r,
			Version: tab.Version(),
			Bounds:  tab.Bounds(),
			Regions: protocol.RegionsToWire(tab.Regions()),
		})
	}
	denied := make([]id.ServerID, 0, len(s.reclaimDeniedUntil))
	for c := range s.reclaimDeniedUntil {
		denied = append(denied, c)
	}
	sort.Slice(denied, func(i, j int) bool { return denied[i] < denied[j] })
	for _, c := range denied {
		st.ReclaimDenied = append(st.ReclaimDenied, DeniedState{Child: c, UntilNs: s.reclaimDeniedUntil[c].UnixNano()})
	}
	for _, u := range s.pendingNonProx {
		frame, err := protocol.Marshal(u)
		if err != nil {
			return nil, fmt.Errorf("core: encode pending non-proximal: %w", err)
		}
		st.PendingNonProx = append(st.PendingNonProx, frame)
	}
	return st, nil
}

// RestoreState overwrites the server's mutable state from a snapshot,
// keeping its config and clock. Overlap tables are rebuilt from their wire
// regions — the same reconstruction HandleMessage performs on an MC push —
// so routing behavior is identical to the captured run. The snapshot is not
// retained; restoring the same state twice is safe.
func (s *Server) RestoreState(st *State) error {
	tables := make(map[float64]*overlap.Table, len(st.Tables))
	for _, ts := range st.Tables {
		tab, err := overlap.NewTableFromRegions(st.ID, ts.Bounds, ts.Radius, ts.Version, protocol.RegionsFromWire(ts.Regions))
		if err != nil {
			return fmt.Errorf("core: rebuild table (r=%v): %w", ts.Radius, err)
		}
		tables[ts.Radius] = tab
	}
	pending := make([]*protocol.GameUpdate, 0, len(st.PendingNonProx))
	for _, frame := range st.PendingNonProx {
		m, err := protocol.Unmarshal(frame)
		if err != nil {
			return fmt.Errorf("core: decode pending non-proximal: %w", err)
		}
		u, ok := m.(*protocol.GameUpdate)
		if !ok {
			return fmt.Errorf("core: pending non-proximal frame holds %v", m.MsgType())
		}
		pending = append(pending, u)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if st.ID != s.id {
		return fmt.Errorf("core: state for %v restored into %v", st.ID, s.id)
	}
	s.world = st.World
	s.bounds = st.Bounds
	s.active = st.Active
	s.radius = st.Radius
	s.tables = tables
	s.peers = make(map[id.ServerID]peerInfo, len(st.Peers))
	s.peerOrder = s.peerOrder[:0]
	for _, p := range st.Peers {
		s.setPeerLocked(p.Server, peerInfo{addr: p.Addr, bounds: p.Bounds})
	}
	s.peersVersion = st.PeersVersion
	s.parent = st.Parent
	s.child = make(map[id.ServerID]bool, len(st.Children))
	s.childOrder = append([]id.ServerID(nil), st.Children...)
	for _, c := range st.Children {
		s.child[c] = true
	}
	s.tracker.RestoreState(st.Tracker)
	if err := s.tracker.RestorePolicyState(st.PolicyState); err != nil {
		return fmt.Errorf("core: restore policy state: %w", err)
	}
	s.pendingSplit = st.PendingSplit
	s.pendingReclaim = st.PendingReclaim
	s.reclaimDeniedUntil = make(map[id.ServerID]time.Time, len(st.ReclaimDenied))
	for _, d := range st.ReclaimDenied {
		s.reclaimDeniedUntil[d.Child] = time.Unix(0, d.UntilNs)
	}
	s.pendingNonProx = pending
	s.stats = st.Stats
	return nil
}

// radiusForLocked resolves the visibility radius for an update kind.
func (s *Server) radiusForLocked(k protocol.UpdateKind) float64 {
	if r, ok := s.cfg.KindRadius[k]; ok {
		return r
	}
	return s.radius
}

// PeerAddr returns the known address for a peer server.
func (s *Server) PeerAddr(p id.ServerID) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	info, ok := s.peers[p]
	return info.addr, ok
}

// ResolveOwner returns the peer server whose partition contains p, with its
// address. It is how the co-located game server learns where to hand off a
// client whose movement carried it across a partition boundary ("Matrix
// provides the identity of the appropriate game server"). Movement is
// continuous, so the new owner is always an adjacent partition, which the
// overlap tables already name as a peer.
func (s *Server) ResolveOwner(p geom.Point) (id.ServerID, string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.bounds.Contains(p) {
		return s.id, "", false // still ours: no handoff
	}
	// Sorted iteration: across a topology change two peers' recorded bounds
	// can transiently both contain p, and map order must not pick the
	// winner (determinism for a fixed seed).
	for _, sid := range s.peerOrder {
		if info := s.peers[sid]; info.bounds.Contains(p) {
			return sid, info.addr, true
		}
	}
	return id.None, "", false
}

// TableVersion returns the installed table version for the default radius
// (0 when none).
func (s *Server) TableVersion() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if tab, ok := s.tables[s.radius]; ok {
		return tab.Version()
	}
	return 0
}

// OverlapArea returns the total overlap-region area of the default-radius
// table (the paper's traffic-predicting metric).
func (s *Server) OverlapArea() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if tab, ok := s.tables[s.radius]; ok {
		return tab.OverlapArea()
	}
	return 0
}
