// Package clock abstracts time so the same middleware code runs against the
// wall clock in production mode and against a deterministic virtual clock in
// the simulation harness that regenerates the paper's experiments.
package clock

import (
	"sync"
	"time"
)

// Clock supplies the current time. Implementations must be safe for
// concurrent use.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Since returns the elapsed time since t.
	Since(t time.Time) time.Duration
}

// Wall is the real system clock.
type Wall struct{}

// Now implements Clock.
func (Wall) Now() time.Time { return time.Now() }

// Since implements Clock.
func (Wall) Since(t time.Time) time.Duration { return time.Since(t) }

// Virtual is a manually advanced clock for deterministic simulation. The
// zero value starts at the Unix epoch; use NewVirtual to pick an origin.
type Virtual struct {
	mu  sync.RWMutex
	now time.Time
}

// NewVirtual returns a virtual clock starting at origin.
func NewVirtual(origin time.Time) *Virtual {
	return &Virtual{now: origin}
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.now
}

// Since implements Clock.
func (v *Virtual) Since(t time.Time) time.Duration {
	return v.Now().Sub(t)
}

// Advance moves the clock forward by d (negative d is ignored).
func (v *Virtual) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.now = v.now.Add(d)
}

// Set jumps the clock to t if t is not earlier than the current time.
func (v *Virtual) Set(t time.Time) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if t.After(v.now) {
		v.now = t
	}
}

var (
	_ Clock = Wall{}
	_ Clock = (*Virtual)(nil)
)
