package clock

import (
	"sync"
	"testing"
	"time"
)

func TestWallAdvances(t *testing.T) {
	var c Wall
	a := c.Now()
	b := c.Now()
	if b.Before(a) {
		t.Error("wall clock went backwards")
	}
	if c.Since(a) < 0 {
		t.Error("Since negative")
	}
}

func TestVirtualAdvance(t *testing.T) {
	origin := time.Unix(1000, 0)
	v := NewVirtual(origin)
	if !v.Now().Equal(origin) {
		t.Fatalf("Now = %v, want origin", v.Now())
	}
	v.Advance(5 * time.Second)
	if got := v.Now(); !got.Equal(origin.Add(5 * time.Second)) {
		t.Fatalf("Now = %v", got)
	}
	if got := v.Since(origin); got != 5*time.Second {
		t.Fatalf("Since = %v", got)
	}
}

func TestVirtualNegativeAdvanceIgnored(t *testing.T) {
	v := NewVirtual(time.Unix(1000, 0))
	before := v.Now()
	v.Advance(-time.Second)
	if !v.Now().Equal(before) {
		t.Error("negative advance must be a no-op")
	}
}

func TestVirtualSetMonotone(t *testing.T) {
	origin := time.Unix(1000, 0)
	v := NewVirtual(origin)
	v.Set(origin.Add(10 * time.Second))
	if got := v.Now(); !got.Equal(origin.Add(10 * time.Second)) {
		t.Fatalf("Set forward failed: %v", got)
	}
	v.Set(origin) // backwards: ignored
	if got := v.Now(); !got.Equal(origin.Add(10 * time.Second)) {
		t.Fatalf("Set backwards must be ignored: %v", got)
	}
}

func TestVirtualConcurrent(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				v.Advance(time.Millisecond)
				_ = v.Now()
			}
		}()
	}
	wg.Wait()
	if got := v.Now(); !got.Equal(time.Unix(4, 0)) {
		t.Fatalf("Now = %v, want 4s total", got)
	}
}
