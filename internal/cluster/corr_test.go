package cluster

import (
	"testing"
	"time"

	"matrix/internal/geom"
	"matrix/internal/id"
	"matrix/internal/trace"
)

// corrInstants collects every correlation instant a tracer recorded,
// grouped by event name ("corr/drain-request", "corr/range-update", ...).
func corrInstants(tr *trace.Tracer) map[string][]int64 {
	out := map[string][]int64{}
	for _, e := range tr.Events() {
		if e.Ph == trace.PhaseInstant && e.ArgName == "corr" {
			out[e.Name] = append(out[e.Name], e.Arg)
		}
	}
	return out
}

func hasCorr(vals []int64, want int64) bool {
	for _, v := range vals {
		if v == want {
			return true
		}
	}
	return false
}

// TestDrainCorrSpansProcessTraces is the live-handoff observability
// acceptance test: one operator drain must be followable end-to-end by its
// correlation ID — the coordinator's trace shows the stamped fan-out
// leaving, the drained server's trace shows the same corr arriving
// (RangeUpdate + DrainRequest) and leaving again on the Redirects that
// push its clients to the successor.
func TestDrainCorrSpansProcessTraces(t *testing.T) {
	c, err := New(Config{Servers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	trMC := trace.New(0)
	c.SetCoordinatorTracer(trMC)
	trOwner := trace.New(0)
	traced, err := c.AddServerTraced(trOwner)
	if err != nil {
		t.Fatal(err)
	}

	// Hand the world to the traced server first, so the drain under test
	// is served BY a traced process: drain the untraced first owner onto
	// the traced spare.
	first := c.MC().ActiveServers()[0]
	if err := c.AdminDrain(first, false); err != nil {
		t.Fatal(err)
	}
	if !c.WaitUntilQuiet(convergeWithin, func() bool {
		a := c.MC().ActiveServers()
		return len(a) == 1 && a[0] == traced && c.Server(traced).Core().Active()
	}) {
		t.Fatalf("world never migrated to the traced server: active=%v", c.MC().ActiveServers())
	}
	adopt := corrInstants(trOwner)
	if len(adopt["corr/range-update"]) == 0 {
		t.Fatalf("traced server recorded no corr/range-update arrival for the handoff: %v", adopt)
	}

	// Clients join the traced owner; their eviction Redirects are the
	// handoff's client leg.
	for cid := id.ClientID(1); cid <= 3; cid++ {
		if err := c.AddClient(cid, geom.Pt(float64(200*cid), 400)); err != nil {
			t.Fatal(err)
		}
	}
	if !c.WaitUntil(convergeWithin, func() bool {
		return c.Server(traced).Game().ClientCount() == 3
	}) {
		t.Fatal("clients never joined the traced owner")
	}

	// A fresh spare stands by to inherit, then the traced owner drains.
	if _, err := c.AddServer(); err != nil {
		t.Fatal(err)
	}
	if err := c.AdminDrain(traced, false); err != nil {
		t.Fatal(err)
	}
	select {
	case <-c.Server(traced).Drained():
	case <-time.After(convergeWithin):
		t.Fatal("traced server never finished draining")
	}

	mc := corrInstants(trMC)
	drains := mc["corr/drain-request"]
	if len(drains) == 0 {
		t.Fatalf("coordinator trace has no corr/drain-request instant: %v", mc)
	}
	corr := drains[len(drains)-1] // the drain under test is the last one granted
	if corr == 0 {
		t.Fatal("drain correlation ID is zero")
	}
	if !hasCorr(mc["corr/range-update"], corr) {
		t.Errorf("coordinator trace missing the corr=%d RangeUpdate fan-out: %v", corr, mc)
	}

	srv := corrInstants(trOwner)
	if !hasCorr(srv["corr/drain-request"], corr) {
		t.Errorf("drained server's trace missing corr=%d DrainRequest arrival: %v", corr, srv)
	}
	if !hasCorr(srv["corr/range-update"], corr) {
		t.Errorf("drained server's trace missing corr=%d RangeUpdate arrival: %v", corr, srv)
	}
	if !hasCorr(srv["corr/redirect"], corr) {
		t.Errorf("drained server's trace missing corr=%d client Redirect departures: %v", corr, srv)
	}
}
