package cluster

import (
	"bufio"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"matrix"
)

// TestE2EKillNineOverTCP is the out-of-process version of the tentpole: it
// builds the real matrix-coordinator and matrix-server binaries, runs a
// two-server fleet over TCP, kill -9s the partition owner and asserts the
// fleet converges (spare adopts, metrics agree) and the client rejoins and
// keeps playing. Skipped under -short: it compiles binaries and forks
// processes.
func TestE2EKillNineOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping process-level e2e in -short mode")
	}

	bin := t.TempDir()
	coordBin := filepath.Join(bin, "matrix-coordinator")
	serverBin := filepath.Join(bin, "matrix-server")
	build(t, coordBin, "matrix/cmd/matrix-coordinator")
	build(t, serverBin, "matrix/cmd/matrix-server")

	mcAddr := freeAddr(t)
	metricsAddr := freeAddr(t)
	s1Addr := freeAddr(t)
	s2Addr := freeAddr(t)

	startProc(t, coordBin,
		"-addr", mcAddr, "-status", "0",
		"-heartbeat-every", "50ms", "-lease-misses", "3",
		"-metrics-addr", metricsAddr)
	// The metrics endpoint comes up after the MC listener binds, so a
	// successful scrape (key present, not a zero default) means servers
	// can register.
	waitFor(t, "coordinator up", func() bool {
		_, ok := scrape(metricsAddr)["matrix_mc_server_conns"]
		return ok
	})

	serverArgs := func(addr string) []string {
		return []string{
			"-coordinator", mcAddr, "-addr", addr, "-status", "0",
			"-tick", "2ms", "-heartbeat-every", "25ms", "-checkpoint-every", "50ms",
		}
	}
	// Start the victim first and alone so it deterministically registers
	// first and owns the whole world; the second server is the warm spare.
	victim := startProc(t, serverBin, serverArgs(s1Addr)...)
	waitFor(t, "owner registered", func() bool {
		return scrape(metricsAddr)["matrix_mc_active_servers"] == 1
	})
	startProc(t, serverBin, serverArgs(s2Addr)...)
	waitFor(t, "spare registered", func() bool {
		return scrape(metricsAddr)["matrix_mc_spare_servers"] == 1
	})

	cl, err := matrix.Dial(s1Addr, 1, matrix.Pt(500, 500),
		matrix.WithNetwork(matrix.TCP()),
		matrix.WithFallbackAddrs(s2Addr),
		matrix.WithRedialEvery(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	owner := cl.Server()

	// Let a post-join checkpoint ship, then kill -9 the owner.
	time.Sleep(300 * time.Millisecond)
	if err := victim.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = victim.Wait()

	waitFor(t, "spare adopted the world", func() bool {
		m := scrape(metricsAddr)
		return m["matrix_mc_deaths_total"] == 1 &&
			m["matrix_mc_adoptions_total"] == 1 &&
			m["matrix_mc_active_servers"] == 1
	})

	// The client redials the fallback and resumes against the heir.
	waitFor(t, "client rejoined the heir", func() bool {
		return cl.Server() != 0 && cl.Server() != owner
	})
	got := cl.Stats().Received
	waitFor(t, "client traffic flows again", func() bool {
		_ = cl.Move(matrix.Pt(501, 500))
		return cl.Stats().Received > got
	})
}

// build compiles a cmd package into dst with the module's own toolchain.
func build(t *testing.T, dst, pkg string) {
	t.Helper()
	cmd := exec.Command("go", "build", "-o", dst, pkg)
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}
}

// repoRoot walks up from the package dir to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test dir")
		}
		dir = parent
	}
}

// startProc launches a binary and guarantees it dies with the test.
func startProc(t *testing.T, bin string, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, args...)
	if testing.Verbose() {
		cmd.Stderr = os.Stderr
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", bin, err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	})
	return cmd
}

// freeAddr grabs an ephemeral 127.0.0.1 port and releases it for the
// process under test (racy in principle, fine for a test).
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	return addr
}

// scrape fetches and parses one Prometheus exposition from addr (missing
// endpoint = empty map, so callers can poll through startup).
func scrape(addr string) map[string]float64 {
	out := make(map[string]float64)
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
	if err != nil {
		return out
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		if v, err := strconv.ParseFloat(fields[1], 64); err == nil {
			out[fields[0]] = v
		}
	}
	return out
}

// waitFor polls cond for up to 10s (processes and TCP are slower than the
// in-memory fleet).
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
