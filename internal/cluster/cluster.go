// Package cluster is an in-process fleet harness: one Matrix Coordinator,
// K Matrix servers and a population of game clients, wired over the
// in-memory transport and running the exact hosts the cmd/ binaries run.
// Tests kill, zombify and drain servers and assert that the fleet heals —
// warm spares adopt the victim's regions from its last checkpoint and
// clients reconnect to whichever survivor owns their position.
package cluster

import (
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"matrix/internal/coordinator"
	"matrix/internal/gameclient"
	"matrix/internal/geom"
	"matrix/internal/host"
	"matrix/internal/id"
	"matrix/internal/load"
	"matrix/internal/protocol"
	"matrix/internal/trace"
	"matrix/internal/transport"
)

// Config sizes the fleet. The zero value is usable: defaults favour fast
// convergence under `go test` (10ms heartbeats, 3 misses, 25ms
// checkpoints, 2ms ticks).
type Config struct {
	// Servers is the initial fleet size; the first owns the whole world,
	// the rest wait as warm spares (default 2).
	Servers int
	// HeartbeatEvery is both the servers' beat cadence and the
	// coordinator's lease tick (default 10ms).
	HeartbeatEvery time.Duration
	// LeaseMisses kills a lease after this many missed beats (default 3).
	LeaseMisses int
	// CheckpointEvery is the servers' checkpoint-shipping cadence
	// (default 25ms).
	CheckpointEvery time.Duration
	// TickInterval is the game-server processing tick (default 2ms).
	TickInterval time.Duration
	// RedialEvery is the clients' crash-reconnect cadence (default 20ms,
	// negative disables redialing — for tests that isolate the
	// checkpoint-restore path from client rejoins).
	RedialEvery time.Duration
	// World is the full game world (default 1000x1000).
	World geom.Rect
	// Radius is the visibility radius (default 40).
	Radius float64
	// Load tunes split/reclaim thresholds (zero = paper defaults).
	Load load.Config
	// Logger receives fleet diagnostics (nil = silent).
	Logger *log.Logger
}

func (c Config) withDefaults() Config {
	if c.Servers == 0 {
		c.Servers = 2
	}
	if c.HeartbeatEvery == 0 {
		c.HeartbeatEvery = 10 * time.Millisecond
	}
	if c.LeaseMisses == 0 {
		c.LeaseMisses = 3
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 25 * time.Millisecond
	}
	if c.TickInterval == 0 {
		c.TickInterval = 2 * time.Millisecond
	}
	if c.RedialEvery == 0 {
		c.RedialEvery = 20 * time.Millisecond
	}
	if c.World.Empty() {
		c.World = geom.R(0, 0, 1000, 1000)
	}
	if c.Radius == 0 {
		c.Radius = 40
	}
	return c
}

// Cluster is a running in-process fleet.
type Cluster struct {
	cfg Config
	nw  transport.Network
	mc  *host.CoordinatorHost

	mu      sync.Mutex
	servers map[id.ServerID]*host.ServerHost
	clients map[id.ClientID]*host.ClientHost
	killed  map[id.ServerID]bool
}

// New starts a coordinator with health tracking on and cfg.Servers
// servers.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	nw := transport.NewMemNetwork()
	mc, err := host.ServeCoordinator(nw, "", coordinator.Config{
		World:          cfg.World,
		HeartbeatEvery: cfg.HeartbeatEvery,
		LeaseMisses:    cfg.LeaseMisses,
	}, cfg.Logger)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:     cfg,
		nw:      nw,
		mc:      mc,
		servers: make(map[id.ServerID]*host.ServerHost),
		clients: make(map[id.ClientID]*host.ClientHost),
		killed:  make(map[id.ServerID]bool),
	}
	for i := 0; i < cfg.Servers; i++ {
		if _, err := c.AddServer(); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// AddServer registers one more server with the coordinator. It becomes a
// warm spare unless the world is unowned (first server, or a parked
// region waits — then it adopts immediately).
func (c *Cluster) AddServer() (id.ServerID, error) { return c.addServer(nil) }

// AddServerTraced is AddServer with a tracer attached from boot, so a test
// can follow a control-plane decision's correlation ID from the
// coordinator's trace into this server's.
func (c *Cluster) AddServerTraced(tr *trace.Tracer) (id.ServerID, error) { return c.addServer(tr) }

// SetCoordinatorTracer attaches a tracer to the coordinator host: every
// correlation-stamped control frame it fans out from now on gets an
// instant event (see host.CoordinatorHost.SetTracer).
func (c *Cluster) SetCoordinatorTracer(tr *trace.Tracer) { c.mc.SetTracer(tr) }

func (c *Cluster) addServer(tr *trace.Tracer) (id.ServerID, error) {
	h, err := host.StartServer(host.ServerConfig{
		Network:         c.nw,
		Coordinator:     c.mc.Addr(),
		Radius:          c.cfg.Radius,
		Load:            c.cfg.Load,
		TickInterval:    c.cfg.TickInterval,
		HeartbeatEvery:  c.cfg.HeartbeatEvery,
		CheckpointEvery: c.cfg.CheckpointEvery,
		ReportInterval:  c.cfg.HeartbeatEvery,
		Logger:          c.cfg.Logger,
		Tracer:          tr,
	})
	if err != nil {
		return 0, err
	}
	c.mu.Lock()
	c.servers[h.ID()] = h
	c.mu.Unlock()
	return h.ID(), nil
}

// AddClient joins one client at pos. Its redial fallback list is the
// address of every server alive right now, so it can survive the crash of
// its own server as long as any other is reachable.
func (c *Cluster) AddClient(cid id.ClientID, pos geom.Point) error {
	owner := c.ownerAddr(pos)
	if owner == "" {
		return errors.New("cluster: no active server owns that position")
	}
	h, err := host.DialClient(host.ClientConfig{
		Network:       c.nw,
		ServerAddr:    owner,
		Client:        gameclient.Config{ID: cid, Pos: pos},
		FallbackAddrs: c.Addrs(),
		RedialEvery:   c.cfg.RedialEvery,
		Logger:        c.cfg.Logger,
	})
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.clients[cid] = h
	c.mu.Unlock()
	return nil
}

// ownerAddr finds the address of the active server owning pos.
func (c *Cluster) ownerAddr(pos geom.Point) string {
	for _, p := range c.mc.MC().Partitions() {
		if p.Bounds.Contains(pos) {
			c.mu.Lock()
			h := c.servers[p.Owner]
			c.mu.Unlock()
			if h != nil {
				return h.Addr()
			}
		}
	}
	return ""
}

// MC exposes the coordinator state machine for assertions.
func (c *Cluster) MC() *coordinator.Coordinator { return c.mc.MC() }

// Server returns a server host by ID (nil after Kill).
func (c *Cluster) Server(sid id.ServerID) *host.ServerHost {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.servers[sid]
}

// Client returns a client host by ID.
func (c *Cluster) Client(cid id.ClientID) *host.ClientHost {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.clients[cid]
}

// Addrs lists the addresses of every live server.
func (c *Cluster) Addrs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	addrs := make([]string, 0, len(c.servers))
	for _, h := range c.servers {
		addrs = append(addrs, h.Addr())
	}
	return addrs
}

// Kill takes a server down without ceremony — the in-process equivalent of
// kill -9: its listener and every connection drop dead. The coordinator
// sees the disconnect and remediates immediately.
func (c *Cluster) Kill(sid id.ServerID) error {
	c.mu.Lock()
	h := c.servers[sid]
	delete(c.servers, sid)
	c.killed[sid] = true
	c.mu.Unlock()
	if h == nil {
		return fmt.Errorf("cluster: no server %v", sid)
	}
	return h.Close()
}

// Zombie pauses (or resumes) a server's heartbeats while keeping its
// connections alive — the partitioned-but-running failure mode. The
// coordinator can only catch it by lease expiry.
func (c *Cluster) Zombie(sid id.ServerID, paused bool) error {
	h := c.Server(sid)
	if h == nil {
		return fmt.Errorf("cluster: no server %v", sid)
	}
	h.PauseHeartbeats(paused)
	return nil
}

// AdminDrain drains target over the wire: it opens an admin connection to
// the coordinator with a DrainRequest frame, exactly like
// `matrix-coordinator -drain N`.
func (c *Cluster) AdminDrain(target id.ServerID, exit bool) error {
	conn, err := c.nw.Dial(c.mc.Addr())
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := conn.Send(&protocol.DrainRequest{Server: target, Exit: exit}); err != nil {
		return err
	}
	reply, err := conn.Recv()
	if err != nil {
		return err
	}
	dr, ok := reply.(*protocol.DrainReply)
	if !ok {
		return fmt.Errorf("cluster: unexpected drain reply %v", reply.MsgType())
	}
	if !dr.Granted {
		return fmt.Errorf("cluster: drain denied: %s", dr.Reason)
	}
	return nil
}

// Pulse makes every connected client send one small move around its
// current position — enough traffic to exercise routing and, after a
// topology change, the hello-retry migration to the new owner.
func (c *Cluster) Pulse() {
	c.mu.Lock()
	clients := make([]*host.ClientHost, 0, len(c.clients))
	for _, h := range c.clients {
		clients = append(clients, h)
	}
	c.mu.Unlock()
	for _, h := range clients {
		cl := h.Client()
		pos := cl.Pos()
		_ = h.Send(cl.MakeMove(geom.Pt(pos.X+1, pos.Y)))
	}
}

// ClientServers reports which server each client currently believes owns
// it.
func (c *Cluster) ClientServers() map[id.ClientID]id.ServerID {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[id.ClientID]id.ServerID, len(c.clients))
	for cid, h := range c.clients {
		out[cid] = h.Client().Server()
	}
	return out
}

// WaitUntil polls cond (with a Pulse between polls, so client traffic
// keeps flowing) until it holds or the deadline passes.
func (c *Cluster) WaitUntil(d time.Duration, cond func() bool) bool {
	return c.wait(d, cond, true)
}

// WaitUntilQuiet is WaitUntil without the pulses: clients stay frozen, for
// tests that assert exact world state across a heal.
func (c *Cluster) WaitUntilQuiet(d time.Duration, cond func() bool) bool {
	return c.wait(d, cond, false)
}

func (c *Cluster) wait(d time.Duration, cond func() bool, pulse bool) bool {
	deadline := time.Now().Add(d)
	for {
		if cond() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		if pulse {
			c.Pulse()
		}
		time.Sleep(c.cfg.TickInterval)
	}
}

// WaitCheckpoint blocks until the coordinator holds a checkpoint for sid.
func (c *Cluster) WaitCheckpoint(sid id.ServerID, d time.Duration) bool {
	return c.WaitUntil(d, func() bool { return c.mc.MC().CheckpointSize(sid) > 0 })
}

// Close tears the whole fleet down, clients first.
func (c *Cluster) Close() {
	c.mu.Lock()
	clients := c.clients
	servers := c.servers
	c.clients = make(map[id.ClientID]*host.ClientHost)
	c.servers = make(map[id.ServerID]*host.ServerHost)
	c.mu.Unlock()
	for _, h := range clients {
		_ = h.Close()
	}
	for _, h := range servers {
		_ = h.Close()
	}
	_ = c.mc.Close()
}
