package cluster

import (
	"testing"
	"time"

	"matrix/internal/geom"
	"matrix/internal/id"
)

const convergeWithin = 5 * time.Second

// TestKillNineHealsFromCheckpoint is the tentpole: a server owning the
// whole world is killed without warning; the warm spare must adopt the
// region restored from the victim's last checkpoint — the same avatars at
// the same positions, without any client helping by reconnecting
// (redialing is disabled to isolate the checkpoint path).
func TestKillNineHealsFromCheckpoint(t *testing.T) {
	c, err := New(Config{Servers: 2, RedialEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	victim := c.MC().ActiveServers()[0]
	world := c.MC().Partitions()[0].Bounds
	positions := map[id.ClientID]geom.Point{
		1: geom.Pt(100, 100),
		2: geom.Pt(700, 300),
		3: geom.Pt(400, 800),
	}
	for cid, pos := range positions {
		if err := c.AddClient(cid, pos); err != nil {
			t.Fatal(err)
		}
	}
	// The checkpoint must include the avatars: wait until the server has
	// absorbed the joins AND shipped a fresh checkpoint afterwards. All
	// waits are quiet — the clients never move, so the restored world
	// must match the joined world exactly.
	if !c.WaitUntilQuiet(convergeWithin, func() bool {
		return c.Server(victim).Game().ClientCount() == len(positions)
	}) {
		t.Fatal("clients never joined the victim")
	}
	cp0 := c.Server(victim).CheckpointTick()
	if !c.WaitUntilQuiet(convergeWithin, func() bool {
		return c.Server(victim).CheckpointTick() > cp0
	}) {
		t.Fatal("victim never shipped a checkpoint after the joins")
	}

	if err := c.Kill(victim); err != nil {
		t.Fatal(err)
	}

	if !c.WaitUntilQuiet(convergeWithin, func() bool { return c.MC().Adoptions() == 1 }) {
		t.Fatalf("no adoption after kill: deaths=%d parked=%v", c.MC().Deaths(), c.MC().Parked())
	}
	if got := c.MC().Deaths(); got != 1 {
		t.Errorf("Deaths = %d, want 1", got)
	}
	active := c.MC().ActiveServers()
	if len(active) != 1 || active[0] == victim {
		t.Fatalf("ActiveServers = %v, want one survivor != %v", active, victim)
	}
	heir := c.Server(active[0])
	if !c.WaitUntilQuiet(convergeWithin, func() bool {
		return heir.Core().Active() && heir.Core().Bounds() == world
	}) {
		t.Errorf("heir bounds = %v, want the whole world %v", heir.Core().Bounds(), world)
	}
	// Same world served: every avatar is back, where it was, even though
	// no client ever reconnected.
	if !c.WaitUntilQuiet(convergeWithin, func() bool {
		return heir.Game().ClientCount() == len(positions)
	}) {
		t.Fatalf("heir serves %d avatars, want %d (checkpoint restore failed)",
			heir.Game().ClientCount(), len(positions))
	}
	for cid, want := range positions {
		got, ok := heir.Game().ClientPos(cid)
		if !ok {
			t.Errorf("client %v missing from the restored world", cid)
			continue
		}
		if got != want {
			t.Errorf("client %v restored at %v, joined at %v", cid, got, want)
		}
	}
	if err := c.MC().Validate(); err != nil {
		t.Errorf("coordinator invariants broken after heal: %v", err)
	}
}

// TestClientsReconnectAfterCrash: with redialing on, killed clients must
// find the surviving server (via their fallback list) and resume playing
// against the restored world.
func TestClientsReconnectAfterCrash(t *testing.T) {
	c, err := New(Config{Servers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	victim := c.MC().ActiveServers()[0]
	for cid := id.ClientID(1); cid <= 4; cid++ {
		if err := c.AddClient(cid, geom.Pt(float64(100*cid), 500)); err != nil {
			t.Fatal(err)
		}
	}
	if !c.WaitUntil(convergeWithin, func() bool {
		return c.Server(victim).CheckpointTick() > 0
	}) {
		t.Fatal("victim never shipped a checkpoint")
	}
	if err := c.Kill(victim); err != nil {
		t.Fatal(err)
	}

	// Every client ends up owned by the heir and its traffic flows again.
	if !c.WaitUntil(convergeWithin, func() bool {
		active := c.MC().ActiveServers()
		if len(active) != 1 || active[0] == victim {
			return false
		}
		for _, owner := range c.ClientServers() {
			if owner != active[0] {
				return false
			}
		}
		return true
	}) {
		t.Fatalf("clients never converged on the heir: owners=%v active=%v",
			c.ClientServers(), c.MC().ActiveServers())
	}
	heir := c.Server(c.MC().ActiveServers()[0])
	before := heir.Game().Stats().Processed
	if !c.WaitUntil(convergeWithin, func() bool {
		return heir.Game().Stats().Processed > before
	}) {
		t.Error("heir processes no client traffic after the heal")
	}
}

// TestZombieLeaseExpiresAndDemotes: a server that stops heartbeating but
// keeps its connection is only caught by lease expiry; when it comes back
// it finds itself replaced and is demoted to a spare.
func TestZombieLeaseExpiresAndDemotes(t *testing.T) {
	c, err := New(Config{Servers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	zombie := c.MC().ActiveServers()[0]
	if err := c.Zombie(zombie, true); err != nil {
		t.Fatal(err)
	}
	if !c.WaitUntil(convergeWithin, func() bool { return c.MC().Deaths() == 1 }) {
		t.Fatal("zombie's lease never expired")
	}
	if !c.WaitUntil(convergeWithin, func() bool { return c.MC().Adoptions() == 1 }) {
		t.Fatal("zombie's region was never adopted")
	}

	// Resurrect: the next heartbeat tells the coordinator it is alive but
	// replaced; it must be demoted into the spare pool, not serve stale
	// bounds.
	if err := c.Zombie(zombie, false); err != nil {
		t.Fatal(err)
	}
	if !c.WaitUntil(convergeWithin, func() bool {
		return c.MC().SpareCount() == 1 && !c.Server(zombie).Core().Active()
	}) {
		t.Fatalf("zombie not demoted to spare: spares=%d active=%v",
			c.MC().SpareCount(), c.Server(zombie).Core().Active())
	}
	active := c.MC().ActiveServers()
	if len(active) != 1 || active[0] == zombie {
		t.Errorf("ActiveServers = %v, want only the heir", active)
	}
}

// TestCrashWithEmptyPoolParksThenHeals: when the only server dies with no
// spare, the region parks (never lost); the next server to register
// adopts it immediately.
func TestCrashWithEmptyPoolParksThenHeals(t *testing.T) {
	c, err := New(Config{Servers: 1, RedialEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	victim := c.MC().ActiveServers()[0]
	if err := c.AddClient(1, geom.Pt(500, 500)); err != nil {
		t.Fatal(err)
	}
	cp0 := c.Server(victim).CheckpointTick()
	if !c.WaitUntil(convergeWithin, func() bool {
		return c.Server(victim).CheckpointTick() > cp0
	}) {
		t.Fatal("victim never shipped a checkpoint after the join")
	}
	if err := c.Kill(victim); err != nil {
		t.Fatal(err)
	}
	if !c.WaitUntil(convergeWithin, func() bool {
		parked := c.MC().Parked()
		return len(parked) == 1 && parked[0] == victim
	}) {
		t.Fatalf("victim's region not parked: parked=%v", c.MC().Parked())
	}
	if got := len(c.MC().ActiveServers()); got != 0 {
		t.Errorf("ActiveServers = %d, want 0 while parked", got)
	}

	// A fresh spare registers and the parked region lands on it, restored.
	heirID, err := c.AddServer()
	if err != nil {
		t.Fatal(err)
	}
	if !c.WaitUntil(convergeWithin, func() bool {
		return c.MC().Adoptions() == 1 && c.Server(heirID).Core().Active()
	}) {
		t.Fatal("parked region never adopted by the fresh spare")
	}
	if !c.WaitUntil(convergeWithin, func() bool {
		return c.Server(heirID).Game().ClientCount() == 1
	}) {
		t.Error("parked region's avatars not restored from checkpoint")
	}
}

// TestAdminDrainLiveMigration: an operator drains the active server over
// the wire; its partition must migrate to the spare via live handoff (no
// checkpoint), clients must follow, and the drainee must become an empty
// spare that reports itself drained.
func TestAdminDrainLiveMigration(t *testing.T) {
	c, err := New(Config{Servers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	drainee := c.MC().ActiveServers()[0]
	for cid := id.ClientID(1); cid <= 3; cid++ {
		if err := c.AddClient(cid, geom.Pt(float64(200*cid), 400)); err != nil {
			t.Fatal(err)
		}
	}
	if !c.WaitUntil(convergeWithin, func() bool {
		return c.Server(drainee).Game().ClientCount() == 3
	}) {
		t.Fatal("clients never joined the drainee")
	}

	if err := c.AdminDrain(drainee, false); err != nil {
		t.Fatal(err)
	}
	if got := c.MC().Drains(); got != 1 {
		t.Errorf("Drains = %d, want 1", got)
	}
	if got := c.MC().Deaths(); got != 0 {
		t.Errorf("Deaths = %d, want 0 — drain is not a failure", got)
	}
	active := c.MC().ActiveServers()
	if len(active) != 1 || active[0] == drainee {
		t.Fatalf("ActiveServers = %v, want only the migration target", active)
	}

	// The drainee empties out and says so.
	select {
	case <-c.Server(drainee).Drained():
	case <-time.After(convergeWithin):
		t.Fatalf("drainee never finished evacuating: clients=%d active=%v",
			c.Server(drainee).Game().ClientCount(), c.Server(drainee).Core().Active())
	}
	if got := c.Server(drainee).Game().ClientCount(); got != 0 {
		t.Errorf("drainee still serves %d clients", got)
	}

	// Clients keep playing against the new owner.
	heir := c.Server(active[0])
	if !c.WaitUntil(convergeWithin, func() bool {
		if heir.Game().ClientCount() != 3 {
			return false
		}
		for _, owner := range c.ClientServers() {
			if owner != active[0] {
				return false
			}
		}
		return true
	}) {
		t.Fatalf("clients never migrated: heir serves %d, owners=%v",
			heir.Game().ClientCount(), c.ClientServers())
	}
	// The drainee went back to the pool: it is eligible to adopt if the
	// heir dies.
	if got := c.MC().SpareCount(); got != 1 {
		t.Errorf("SpareCount = %d, want the drainee re-pooled", got)
	}
}

// TestServerInitiatedDrain: `matrix-server -drain` path — the server asks
// for its own drain over its coordinator connection and blocks until the
// fleet has taken its work.
func TestServerInitiatedDrain(t *testing.T) {
	c, err := New(Config{Servers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	drainee := c.MC().ActiveServers()[0]
	if err := c.AddClient(1, geom.Pt(500, 500)); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- c.Server(drainee).Drain(false, convergeWithin) }()
	// Keep client traffic flowing so migration can complete.
	if !c.WaitUntil(convergeWithin, func() bool {
		select {
		case err := <-done:
			done <- err
			return true
		default:
			return false
		}
	}) {
		t.Fatal("self-drain never completed")
	}
	if err := <-done; err != nil {
		t.Fatalf("self-drain failed: %v", err)
	}
	active := c.MC().ActiveServers()
	if len(active) != 1 || active[0] == drainee {
		t.Errorf("ActiveServers = %v, want only the migration target", active)
	}
	if !c.Server(drainee).Core().Active() && c.MC().SpareCount() != 1 {
		t.Errorf("drainee not re-pooled: spares=%d", c.MC().SpareCount())
	}
}

// TestDrainedSpareAdoptsLater closes the loop: a drained server must be a
// first-class warm spare — when the heir is killed, the old drainee
// adopts the world right back.
func TestDrainedSpareAdoptsLater(t *testing.T) {
	c, err := New(Config{Servers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	first := c.MC().ActiveServers()[0]
	if err := c.AdminDrain(first, false); err != nil {
		t.Fatal(err)
	}
	heir := c.MC().ActiveServers()[0]
	if heir == first {
		t.Fatalf("drain did not migrate ownership")
	}
	if !c.WaitUntil(convergeWithin, func() bool {
		return c.Server(heir).CheckpointTick() > 0
	}) {
		t.Fatal("heir never shipped a checkpoint")
	}
	if err := c.Kill(heir); err != nil {
		t.Fatal(err)
	}
	if !c.WaitUntil(convergeWithin, func() bool {
		active := c.MC().ActiveServers()
		return len(active) == 1 && active[0] == first && c.Server(first).Core().Active()
	}) {
		t.Fatalf("old drainee never adopted the world back: active=%v", c.MC().ActiveServers())
	}
}
