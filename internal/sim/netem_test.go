package sim

import (
	"strings"
	"testing"

	"matrix/internal/game"
	"matrix/internal/geom"
	"matrix/internal/id"
	"matrix/internal/load"
	"matrix/internal/netem"
)

// netemBaseConfig is a small, split-forcing workload for the netem tests.
func netemBaseConfig(seed int64) Config {
	world := geom.R(0, 0, 1000, 1000)
	return Config{
		Profile:            game.Bzflag(),
		World:              world,
		Seed:               seed,
		DurationSeconds:    40,
		MaxServers:         4,
		ServiceRatePerTick: 250,
		BasePopulation:     50,
		LoadPolicy:         load.Config{OverloadQueue: 3000},
		Script: game.Script{
			{At: 5, Kind: game.EventJoin, Count: 400, Center: geom.Pt(750, 250), Spread: 80, Tag: "hot"},
		},
	}
}

func runNetem(t *testing.T, cfg Config) *Result {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestNetemZeroConfigKeepsFingerprintShape(t *testing.T) {
	res := runNetem(t, netemBaseConfig(3))
	if res.NetemActive {
		t.Fatal("zero netem config activated emulation")
	}
	if strings.Contains(res.Fingerprint(), "netem ") {
		t.Fatal("netem line leaked into a netem-free fingerprint")
	}
}

func TestNetemImpairedRunDeterministicAndDistinct(t *testing.T) {
	impaired := func() Config {
		cfg := netemBaseConfig(3)
		cfg.Netem = netem.Config{Link: netem.LinkConfig{Loss: 0.05, JitterMs: 250}}
		return cfg
	}
	a := runNetem(t, impaired())
	b := runNetem(t, impaired())
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fixed (seed, netem config) produced differing fingerprints")
	}
	if !a.NetemActive || a.NetemLost == 0 || a.NetemDelayed == 0 {
		t.Fatalf("impairment did not register: active=%v lost=%d delayed=%d",
			a.NetemActive, a.NetemLost, a.NetemDelayed)
	}
	if !strings.Contains(a.Fingerprint(), "netem lost=") {
		t.Fatal("netem counters missing from the fingerprint")
	}
	clean := runNetem(t, netemBaseConfig(3))
	if clean.Fingerprint() == a.Fingerprint() {
		t.Fatal("impaired run byte-identical to clean run")
	}
	// A different netem seed under the same sim seed must change the
	// impairment draws.
	other := impaired()
	other.Netem.Seed = 99
	c := runNetem(t, other)
	if c.Fingerprint() == a.Fingerprint() {
		t.Fatal("netem seed change did not change the run")
	}
}

func TestNetemDelayOnlyPreservesTraffic(t *testing.T) {
	cfg := netemBaseConfig(3)
	cfg.Netem = netem.Config{Link: netem.LinkConfig{DelayMs: 150}}
	res := runNetem(t, cfg)
	if res.NetemLost != 0 || res.NetemSevered != 0 {
		t.Fatalf("delay-only config lost packets: lost=%d severed=%d", res.NetemLost, res.NetemSevered)
	}
	if res.NetemDelayed == 0 {
		t.Fatal("150ms delay on a 100ms tick never deferred a delivery")
	}
	if res.DeliveredUpdates == 0 {
		t.Fatal("no updates delivered under delay-only impairment")
	}
}

func TestNetemPartitionSeversPeerTraffic(t *testing.T) {
	cfg := netemBaseConfig(3)
	cfg.DurationSeconds = 60
	cfg.Script = append(cfg.Script,
		game.Event{At: 20, Kind: game.EventPartition, Servers: []id.ServerID{2}},
		game.Event{At: 45, Kind: game.EventHeal, Servers: []id.ServerID{2}},
	)
	res := runNetem(t, cfg)
	if !res.NetemActive {
		t.Fatal("partition script events did not activate netem")
	}
	if res.NetemSevered == 0 {
		t.Fatal("backbone partition severed nothing")
	}
	if res.NetemLost != 0 {
		t.Fatalf("partition-only run lost %d packets to the (disabled) loss models", res.NetemLost)
	}
	kinds := map[string]bool{}
	for _, e := range res.Events {
		kinds[e.Kind] = true
	}
	if !kinds["partition"] || !kinds["heal"] {
		t.Fatalf("partition/heal events missing from the event log: %v", kinds)
	}
}

func TestNetemCrashFreezesAndRecovers(t *testing.T) {
	cfg := netemBaseConfig(3)
	cfg.DurationSeconds = 60
	cfg.Script = append(cfg.Script,
		game.Event{At: 20, Kind: game.EventCrash, Servers: []id.ServerID{1}},
		game.Event{At: 30, Kind: game.EventRecover, Servers: []id.ServerID{1}},
	)

	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	var processedAtCrash, processedDuring uint64
	for !s.Done() {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
		_, gs, ok := s.Node(1)
		if !ok {
			t.Fatal("server 1 missing")
		}
		// Script events quantize to tick windows, so the crash lands in the
		// [19.9, 20.0) tick and the recover in [29.9, 30.0); observe well
		// inside those bounds.
		switch {
		case s.Now() > 20 && s.Now() < 20.2:
			processedAtCrash = gs.Stats().Processed
		case s.Now() > 20.5 && s.Now() < 29.5:
			processedDuring = gs.Stats().Processed
			if processedDuring != processedAtCrash {
				t.Fatalf("crashed server processed packets: %d -> %d", processedAtCrash, processedDuring)
			}
		}
	}
	res := s.Finish()
	_, gs, _ := s.Node(1)
	if gs.Stats().Processed == processedAtCrash {
		t.Fatal("recovered server never resumed processing")
	}
	if res.NetemSevered == 0 {
		t.Fatal("crashing the root server severed no traffic")
	}
}

// TestNetemCompatAllocPathIdentical pins that the buffer-reusing fast path
// and the legacy allocating path stay byte-identical under impairment too
// (delayed messages must not alias reused buffers).
func TestNetemCompatAllocPathIdentical(t *testing.T) {
	cfg := netemBaseConfig(5)
	cfg.Netem = netem.Config{Link: netem.LinkConfig{Loss: 0.03, JitterMs: 250}}
	fast, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fastRes, err := fast.Run()
	if err != nil {
		t.Fatal(err)
	}
	slow, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	slow.compatAlloc = true
	slowRes, err := slow.Run()
	if err != nil {
		t.Fatal(err)
	}
	if fastRes.Fingerprint() != slowRes.Fingerprint() {
		t.Fatal("append path and legacy path diverged under netem")
	}
}
