// Package sim is the evaluation harness: a deterministic, time-stepped
// simulator that drives a full Matrix deployment — coordinator, Matrix
// servers, game servers and hundreds of game clients — through scripted
// workloads on a virtual clock.
//
// The simulator substitutes for the paper's physical testbed. The
// middleware components are the production state machines from
// internal/core, internal/coordinator and internal/gameserver, driven
// synchronously; only the transport (direct delivery), the clock (virtual)
// and the client population (synthetic movers from internal/game) differ
// from a live deployment. Queue lengths, client counts, forwarded bytes and
// response latencies therefore measure the real protocol behaviour.
package sim

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"sort"
	"time"

	"matrix/internal/clock"
	"matrix/internal/coordinator"
	"matrix/internal/core"
	"matrix/internal/flight"
	"matrix/internal/game"
	"matrix/internal/gameclient"
	"matrix/internal/gameserver"
	"matrix/internal/geom"
	"matrix/internal/id"
	"matrix/internal/load"
	"matrix/internal/metrics"
	"matrix/internal/middleware"
	"matrix/internal/netem"
	"matrix/internal/policy"
	"matrix/internal/protocol"
	"matrix/internal/scratch"
	"matrix/internal/trace"
)

// Config describes one simulation run.
type Config struct {
	// Profile is the game workload (bzflag, daimonin, quake2).
	Profile game.Profile
	// World is the full map rectangle.
	World geom.Rect
	// Seed makes the run reproducible.
	Seed int64
	// TickSeconds is the simulation step (default 0.1s).
	TickSeconds float64
	// DurationSeconds is the simulated run length.
	DurationSeconds float64
	// MaxServers is the total server fleet (first one starts active, the
	// rest wait in the MC's pool). In static mode all of them are active
	// from the start with fixed partitions.
	MaxServers int
	// ServiceRatePerTick is how many queued packets a game server can
	// process per tick (its service capacity).
	ServiceRatePerTick int
	// MaxQueue bounds each game server's receive queue (0 = unbounded).
	MaxQueue int
	// LoadReportEverySeconds is the load-report period (default 1s).
	LoadReportEverySeconds float64
	// BasePopulation is the number of clients roaming the world from t=0.
	BasePopulation int
	// Script schedules hotspot joins and leaves.
	Script game.Script
	// Static, when non-empty, runs the static-partitioning baseline with
	// these fixed partitions instead of adaptive Matrix.
	Static []geom.Rect
	// LoadPolicy tunes split/reclaim thresholds (zero = paper defaults).
	LoadPolicy load.Config
	// Policy names the decision policy (internal/policy) that judges every
	// split, reclaim, placement and spare pick. Empty means the paper's
	// rules. Unlike SimWorkers this IS simulation state — it changes
	// results — so snapshots record it (omitted when empty, keeping
	// pre-policy snapshots byte-identical).
	Policy string `json:",omitempty"`
	// SampleEverySeconds is the series sampling period (default 1s).
	SampleEverySeconds float64
	// LatencyIgnoreBeforeSeconds, when positive, excludes response-latency
	// samples measured before this time from Result.Latency. Experiments
	// use it to measure steady-state player experience rather than the
	// join-burst transient (the paper's user study rated ongoing play).
	LatencyIgnoreBeforeSeconds float64
	// Netem models degraded networks: per-link delay + jitter, i.i.d. and
	// burst loss, with partitions and server crashes driven by Script
	// events. The zero value is an exact pass-through — envelopes deliver
	// instantly over the untouched fast path and the run's fingerprint is
	// byte-identical to a netem-free configuration. Netem.Seed zero
	// derives the impairment streams from Seed. Timed impairment script
	// events activate the model even when this config is zero.
	Netem netem.Config
	// CheckpointEverySeconds, when positive, snapshots every server's full
	// state (Matrix server + game server) on that period. Checkpoints feed
	// state-losing crash recovery: a server fail-stopped by an
	// EventCrashLose script event restarts from its last checkpoint when
	// recovered (cold, when no checkpoint exists yet).
	CheckpointEverySeconds float64
	// GhostExpirySeconds is the idle timeout after which a server expires a
	// ghost client — one whose despawn was lost by network emulation, or
	// one resurrected by a state-losing crash recovery rolling the server
	// back past its departure. Zero means the 30-second default; negative
	// disables expiry. Only runs with active network emulation can produce
	// ghosts, so netem-free fingerprints are unaffected.
	GhostExpirySeconds float64
	// Middleware, when non-nil and enabled, puts the wire-path admission
	// chain (internal/middleware) in front of every game server: per-client
	// token-bucket rate limiting on client updates and overload shedding of
	// data-plane traffic once a server's queue reaches ShedQueue. Every
	// admission decision runs on the stepping goroutine against virtual
	// time, so the judged run is deterministic — Result.Fingerprint stays
	// byte-identical for any SimWorkers value — and the decisions fold into
	// the fingerprint via the middleware counters.
	Middleware *MiddlewareConfig `json:",omitempty"`
	// SimWorkers bounds the intra-sim worker pool that fans each tick's
	// per-server work (game-server inbox processing and the co-located
	// Matrix server's packet/load logic) out across cores; <= 1 — the
	// default — runs the tick serially on the stepping goroutine. The
	// worker count NEVER affects results: Result.Fingerprint is
	// byte-identical for any value (see engine.go), so this is an
	// execution knob, not simulation state — snapshots do not record it
	// and a restored run picks its own.
	SimWorkers int `json:"-"`
}

// MiddlewareConfig is the simulator's projection of the host middleware
// chain: the two deterministic stages (rate limiting and overload
// admission). Auth and audit are wire-host concerns with no simulation
// analogue. A zero field disables its stage.
type MiddlewareConfig struct {
	// RateLimitPerSec is each client's sustained update budget (updates per
	// simulated second); despawns are exempt. Zero disables rate limiting.
	RateLimitPerSec float64 `json:",omitempty"`
	// RateLimitBurst is the token-bucket depth (default 2× the rate).
	RateLimitBurst float64 `json:",omitempty"`
	// ShedQueue is the game-server queue length at which data-plane
	// messages (minus despawns) are shed. Zero disables admission control.
	ShedQueue int `json:",omitempty"`
}

// Enabled reports whether any middleware stage is active.
func (m *MiddlewareConfig) Enabled() bool {
	return m != nil && (m.RateLimitPerSec > 0 || m.ShedQueue > 0)
}

// DefaultGhostExpirySeconds is the ghost-client idle timeout applied when
// Config.GhostExpirySeconds is zero.
const DefaultGhostExpirySeconds = 30

// sanitized fills defaults.
func (c Config) sanitized() (Config, error) {
	if err := c.Profile.Validate(); err != nil {
		return c, err
	}
	if c.World.Empty() {
		return c, errors.New("sim: empty world")
	}
	if c.TickSeconds <= 0 {
		c.TickSeconds = 0.1
	}
	if c.DurationSeconds <= 0 {
		return c, errors.New("sim: duration must be positive")
	}
	if c.MaxServers <= 0 {
		c.MaxServers = 1
	}
	if c.ServiceRatePerTick <= 0 {
		c.ServiceRatePerTick = 200
	}
	if c.LoadReportEverySeconds <= 0 {
		c.LoadReportEverySeconds = 1
	}
	if c.SampleEverySeconds <= 0 {
		c.SampleEverySeconds = 1
	}
	if err := c.Script.Validate(); err != nil {
		return c, err
	}
	if err := c.Netem.Validate(); err != nil {
		return c, err
	}
	if c.CheckpointEverySeconds < 0 {
		return c, errors.New("sim: negative checkpoint period")
	}
	if c.GhostExpirySeconds == 0 {
		c.GhostExpirySeconds = DefaultGhostExpirySeconds
	}
	if m := c.Middleware; m != nil {
		if m.RateLimitPerSec < 0 {
			return c, fmt.Errorf("sim: middleware rate limit must not be negative (got %v)", m.RateLimitPerSec)
		}
		if m.ShedQueue < 0 {
			return c, fmt.Errorf("sim: middleware shed queue must not be negative (got %d)", m.ShedQueue)
		}
	}
	if err := policy.Valid(c.Policy); err != nil {
		return c, fmt.Errorf("sim: %w", err)
	}
	return c, nil
}

// TopologyEvent records one split or reclamation.
type TopologyEvent struct {
	Time   float64
	Kind   string // "split" or "reclaim"
	Server id.ServerID
}

// Result carries everything the experiments report.
type Result struct {
	// Metrics holds the time series: "clients/server-N", "queue/server-N"
	// (the two panels of the paper's Figure 2) and "servers/active".
	Metrics *metrics.Registry
	// Latency is the distribution of client action→echo response times in
	// milliseconds.
	Latency *metrics.Histogram
	// SwitchLatency is the distribution of redirect→rejoin times in
	// milliseconds (the paper's switching-latency microbenchmark).
	SwitchLatency *metrics.Histogram
	// Events lists splits/reclaims in time order.
	Events []TopologyEvent
	// PeakServers is the maximum simultaneously active server count.
	PeakServers int
	// FinalServers is the active count at the end.
	FinalServers int
	// ForwardedBytes is the total inter-Matrix traffic.
	ForwardedBytes uint64
	// ForwardedPackets is the total inter-Matrix packet count.
	ForwardedPackets uint64
	// DroppedPackets counts queue-overflow losses (static mode's failure
	// signature).
	DroppedPackets uint64
	// DeliveredUpdates counts client-visible event deliveries.
	DeliveredUpdates uint64
	// Redirects counts client server-switches.
	Redirects uint64
	// OverlapAreaLast is the summed overlap area at the end of the run.
	OverlapAreaLast float64
	// ClientSeconds integrates connected clients over time (load measure).
	ClientSeconds float64
	// NetemActive records whether network emulation ran; the netem
	// counters join the fingerprint only when it did, so netem-free runs
	// keep their historical byte-identical fingerprints.
	NetemActive bool
	// NetemLost counts packets dropped by the random-loss models.
	NetemLost uint64
	// NetemSevered counts packets blackholed by partitions and crashes.
	NetemSevered uint64
	// NetemDelayed counts deliveries deferred by at least one tick.
	NetemDelayed uint64
	// GhostsExpired counts ghost clients culled by the idle timeout (see
	// Config.GhostExpirySeconds). Only possible when netem is active.
	GhostsExpired uint64
	// Restarts counts state-losing crash recoveries (EventCrashLose →
	// EventRecover restorations from checkpoint or cold).
	Restarts uint64
	// RecoveryRejoins counts clients forced to reconnect because their
	// server restarted (the redirect/rejoin storm a restart causes).
	RecoveryRejoins uint64
	// RecoveryGap is the distribution of recover→reconnected times in
	// milliseconds for clients of restarted servers (the recovery gap).
	RecoveryGap *metrics.Histogram
	// MiddlewareActive records whether the admission chain ran; its
	// counters join the fingerprint only when it did, so middleware-free
	// runs keep their historical byte-identical fingerprints.
	MiddlewareActive bool
	// RateLimited counts client updates shed by per-client token buckets.
	RateLimited uint64
	// AdmissionShed counts data-plane messages shed by overload admission.
	AdmissionShed uint64
}

// node is one server slot: a Matrix server and its co-located game server.
type node struct {
	core *core.Server
	gs   *gameserver.Server
}

// nodeCheckpoint is one server's periodic full-state capture, the restore
// point for state-losing crash recovery.
type nodeCheckpoint struct {
	takenAt float64
	core    *core.State
	game    *gameserver.State
}

// simClient is one synthetic player.
type simClient struct {
	cl        *gameclient.Client
	mover     *game.Mover
	tag       string
	assigned  id.ServerID // game server currently responsible
	acc       float64     // fractional updates owed
	alive     bool
	helloAt   float64 // last hello send time (for retry)
	redirAt   float64 // redirect time, for switch-latency measurement
	redirOpen bool
}

// Sim is one in-flight simulation.
type Sim struct {
	cfg     Config
	clk     *clock.Virtual
	mc      *coordinator.Coordinator
	nodes   map[id.ServerID]*node
	order   []id.ServerID // deterministic iteration order
	clients map[id.ClientID]*simClient
	gen     id.Generator
	reg     *metrics.Registry
	lat     *metrics.Histogram
	swLat   *metrics.Histogram
	events  []TopologyEvent
	res     Result
	now     float64
	rngSeed int64

	activePrev map[id.ServerID]bool
	// latSkip[c] = how many of client c's leading latency samples fall
	// before the measurement window and must be dropped.
	latSkip     map[id.ClientID]int
	latWindowed bool

	// Stepping state (owned by Start/Step; see Run for the canonical loop).
	started     bool
	finished    *Result
	dt          float64
	tick        int
	ticks       int
	script      game.Script
	rng         *mulberryRand
	reportEvery int
	sampleEvery int

	// Network emulation (nil when the run models a perfect network: every
	// send below then takes the untouched instant path). nq buckets
	// in-flight messages by due tick; within a bucket, insertion order is
	// send order, so delivery stays deterministic.
	nm *netem.Model
	nq map[int][]netemEntry

	// Crash-recovery state (only populated when netem is active).
	// ghosts records clients a server still holds but the sim knows are
	// gone (lost despawn, or a rollback resurrection), keyed to the time
	// the ghost appeared; loseState marks servers crashed by
	// EventCrashLose; checkpoints holds each server's latest periodic
	// state capture; rejoinSince tracks clients reconnecting after a
	// restart, for the recovery-gap histogram.
	ghosts      map[id.ClientID]float64
	loseState   map[id.ServerID]bool
	checkpoints map[id.ServerID]*nodeCheckpoint
	rejoinSince map[id.ClientID]float64
	recGap      *metrics.Histogram
	chkEvery    int     // checkpoint period in ticks (0 = off)
	ghostAfter  float64 // ghost idle timeout in seconds (<= 0 = off)

	// Per-tick scratch, reused across ticks (reset, not reallocated).
	idScratch []id.ClientID
	scScratch []*simClient

	// Tick-engine state (see engine.go): outs holds each server's buffered
	// phase-A fallout (indexed by position in order), gsBufs the per-worker
	// game-server envelope buffers, live the positions processing this
	// tick.
	outs   []serverOut
	gsBufs scratch.Pool[gameserver.Envelope]
	live   []int

	// Middleware admission state (nil when Config.Middleware is disabled):
	// one rate limiter per server, its per-client token buckets advanced on
	// virtual time. Judged on the stepping goroutine only — generateTraffic,
	// pumpNetem delivery and phase-B routing — never inside phase A, so the
	// decisions are identical for any SimWorkers value.
	mwLim map[id.ServerID]*middleware.RateLimiter

	// compatAlloc forces the legacy allocating APIs (Process /
	// HandleGameUpdate) instead of the buffer-reusing append APIs. Tests
	// set it to prove both paths produce byte-identical fingerprints.
	compatAlloc bool

	// Tracing state (see trace.go; nil tr = tracing off, the default).
	// trTickBase/trAnchor anchor the virtual-first trace clock at the
	// current tick; trBusy accumulates per-worker busy microseconds for the
	// occupancy measure. Like SimWorkers, the tracer is an execution knob,
	// not simulation state: snapshots do not record it and results are
	// byte-identical with or without one.
	tr         *trace.Tracer
	trTickBase int64
	trAnchor   time.Time
	trBusy     []int64

	// Flight recorder (see record.go; nil = recording off, the default).
	// The same execution-knob contract as the tracer: observation only,
	// never serialized, results byte-identical with or without one.
	rec *flight.Recorder
}

// New builds a simulation.
func New(cfg Config) (*Sim, error) {
	cfg, err := cfg.sanitized()
	if err != nil {
		return nil, err
	}
	s := &Sim{
		cfg:         cfg,
		clk:         clock.NewVirtual(time.Unix(0, 0)),
		nodes:       make(map[id.ServerID]*node),
		clients:     make(map[id.ClientID]*simClient),
		reg:         metrics.NewRegistry(),
		lat:         &metrics.Histogram{},
		swLat:       &metrics.Histogram{},
		recGap:      &metrics.Histogram{},
		activePrev:  make(map[id.ServerID]bool),
		latSkip:     make(map[id.ClientID]int),
		ghosts:      make(map[id.ClientID]float64),
		loseState:   make(map[id.ServerID]bool),
		checkpoints: make(map[id.ServerID]*nodeCheckpoint),
		rejoinSince: make(map[id.ClientID]float64),
		rngSeed:     cfg.Seed,
	}
	mcPol, err := policy.New(cfg.Policy)
	if err != nil {
		return nil, err
	}
	mcCfg := coordinator.Config{World: cfg.World, Static: cfg.Static, Policy: mcPol}
	s.mc, err = coordinator.New(mcCfg)
	if err != nil {
		return nil, err
	}

	// Register the fleet. In adaptive mode the first server becomes the
	// root and the rest are spares; in static mode every server gets its
	// fixed tile.
	fleet := cfg.MaxServers
	if len(cfg.Static) > 0 {
		fleet = len(cfg.Static)
	}
	for i := 0; i < fleet; i++ {
		if err := s.registerServer(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// registerServer creates one server slot and registers it with the MC.
func (s *Sim) registerServer() error {
	addr := fmt.Sprintf("sim:%d", len(s.order)+1)
	reply, envs, err := s.mc.Register(addr, s.cfg.Profile.Radius)
	if err != nil {
		return err
	}
	pol, err := policy.New(s.cfg.Policy)
	if err != nil {
		return err
	}
	cs, err := core.NewServer(core.Config{
		Load:   s.cfg.LoadPolicy,
		Clock:  s.clk,
		Policy: pol,
	}, reply, s.cfg.Profile.Radius)
	if err != nil {
		return err
	}
	gs, err := gameserver.New(gameserver.Config{
		Server:   reply.Server,
		Bounds:   reply.Bounds,
		Radius:   s.cfg.Profile.Radius,
		MaxQueue: s.cfg.MaxQueue,
		// Boundary handoffs resolve against the co-located Matrix server.
		ResolveOwner: cs.ResolveOwner,
	})
	if err != nil {
		return err
	}
	s.nodes[reply.Server] = &node{core: cs, gs: gs}
	s.order = append(s.order, reply.Server)
	for _, e := range envs {
		s.deliverToCore(e.To, id.None, e.Msg)
	}
	return nil
}

// limiterFor returns (lazily creating) server sid's rate limiter. Only
// called when the middleware chain is active.
func (s *Sim) limiterFor(sid id.ServerID) *middleware.RateLimiter {
	l := s.mwLim[sid]
	if l == nil {
		l = middleware.NewRateLimiter(s.cfg.Middleware.RateLimitPerSec, s.cfg.Middleware.RateLimitBurst)
		s.mwLim[sid] = l
	}
	return l
}

// admitIngress is the simulator's middleware chain: it judges one message
// arriving at server sid exactly as the wire host's chain would — the
// per-client token bucket first (client-sourced updates only, despawns
// exempt), then overload admission against the receiving queue. It returns
// false when the message is shed, counting the decision into the result
// (and thus the fingerprint). Runs on the stepping goroutine only.
func (s *Sim) admitIngress(sid id.ServerID, fromClient bool, m protocol.Message) bool {
	mw := s.cfg.Middleware
	if s.mwLim == nil {
		return true
	}
	if fromClient && mw.RateLimitPerSec > 0 {
		if u, ok := m.(*protocol.GameUpdate); ok && u.Kind != protocol.KindDespawn {
			if !s.limiterFor(sid).Allow(u.Client, s.now) {
				s.res.RateLimited++
				return false
			}
		}
	}
	if mw.ShedQueue > 0 && middleware.Sheddable(m) {
		if n, ok := s.nodes[sid]; ok && n.gs.QueueLen() >= mw.ShedQueue {
			s.res.AdmissionShed++
			return false
		}
	}
	return true
}

// deliverToCore hands a message to a Matrix server and routes the fallout.
// This is the general path: handlers build fresh envelope slices, which
// re-entrant deliveries (MC fallout, peer chains) require. The per-tick
// hot path is deliverLocalUpdate.
func (s *Sim) deliverToCore(to id.ServerID, from id.ServerID, m protocol.Message) {
	n, ok := s.nodes[to]
	if !ok {
		return
	}
	if s.tr != nil {
		if fwd, isFwd := m.(*protocol.Forward); isFwd {
			s.tr.AsyncStep(tracePidServer(to), "packet", "peer-handle",
				packetSpanID(fwd.Update.Client, fwd.Update.Seq), s.tr.Now())
		}
	}
	envs, err := n.core.HandleMessage(from, m)
	if err != nil {
		// Inactive servers legitimately reject packets that were in
		// flight across a topology change; everything else is counted
		// but must not stop the run.
		s.reg.Counter("errors/core").Inc()
		return
	}
	s.routeCoreEnvelopes(to, envs)
}

// routeCoreEnvelopes dispatches a Matrix server's outbox.
func (s *Sim) routeCoreEnvelopes(from id.ServerID, envs []core.Envelope) {
	for _, e := range envs {
		switch e.Dest {
		case core.DestCoordinator:
			mcEnvs, err := s.mc.HandleMessage(from, e.Msg)
			if err != nil {
				s.reg.Counter("errors/mc").Inc()
				continue
			}
			s.noteTopology(e.Msg, mcEnvs)
			for _, me := range mcEnvs {
				s.deliverToCore(me.To, id.None, me.Msg)
			}
		case core.DestGameServer:
			// Peer-forwarded data plane passes the local admission stage
			// before it can land on an overloaded queue.
			if !s.admitIngress(from, false, e.Msg) {
				continue
			}
			// Overflow drops are counted by the game server itself.
			_ = s.nodes[from].gs.Enqueue(e.Msg)
		case core.DestPeer:
			if s.tr != nil {
				// A forward crossing the server boundary: the cross-server
				// hop in the packet's span.
				if fwd, isFwd := e.Msg.(*protocol.Forward); isFwd {
					s.tr.AsyncStepArg(tracePidServer(from), "packet", "peer-forward",
						packetSpanID(fwd.Update.Client, fwd.Update.Seq), s.tr.Now(),
						"peer", int64(e.Peer))
				}
			}
			if s.nm != nil && s.impair(netem.ServerEndpoint(from), netem.ServerEndpoint(e.Peer), netemToCore, e.Msg) {
				continue
			}
			s.deliverToCore(e.Peer, from, e.Msg)
		}
	}
}

// noteTopology records granted splits/reclaims from MC replies in the
// topology event log and — when a flight recorder is attached — audits every
// grant AND denial with the inputs that produced it (see record.go).
func (s *Sim) noteTopology(req protocol.Message, envs []coordinator.Envelope) {
	switch rr := req.(type) {
	case *protocol.SplitRequest:
		for _, e := range envs {
			rep, ok := e.Msg.(*protocol.SplitReply)
			if !ok {
				continue
			}
			if rep.Granted {
				s.events = append(s.events, TopologyEvent{Time: s.now, Kind: "split", Server: rep.Child})
			}
			if s.rec != nil {
				s.auditSplit(rr, rep)
			}
		}
	case *protocol.ReclaimRequest:
		// A granted reclaim's correlation ID rides the child's deactivating
		// RangeUpdate (the reply itself stays unstamped for the parent).
		var corr uint64
		for _, e := range envs {
			if ru, ok := e.Msg.(*protocol.RangeUpdate); ok && ru.Corr != 0 {
				corr = ru.Corr
			}
		}
		for _, e := range envs {
			rep, ok := e.Msg.(*protocol.ReclaimReply)
			if !ok {
				continue
			}
			if rep.Granted {
				if debugTopology {
					fmt.Printf("sim: t=%.1f reclaim parent=%v child=%v\n", s.now, rr.Parent, rr.Child)
				}
				s.events = append(s.events, TopologyEvent{Time: s.now, Kind: "reclaim", Server: rr.Child})
			} else if debugTopology {
				fmt.Printf("sim: t=%.1f reclaim denied parent=%v child=%v reason=%q\n", s.now, rr.Parent, rr.Child, rep.Reason)
			}
			if s.rec != nil {
				s.auditReclaim(rr, rep, corr)
			}
		}
	}
}

// deliverToClient hands a message to a client and reacts to its events.
func (s *Sim) deliverToClient(cid id.ClientID, m protocol.Message) {
	sc, ok := s.clients[cid]
	if !ok || !sc.alive {
		return
	}
	if s.tr != nil {
		// The echo of the client's own update closes its packet span.
		if u, isUpdate := m.(*protocol.GameUpdate); isUpdate && u.Client == cid {
			s.tr.AsyncEnd(tracePidServer(sc.assigned), "packet", "packet",
				packetSpanID(u.Client, u.Seq), s.tr.Now())
		}
	}
	ev, err := sc.cl.Handle(m)
	if err != nil {
		s.reg.Counter("errors/client").Inc()
		return
	}
	switch ev {
	case gameclient.EventSwitchServer:
		// Reconnect: hello the new server straight away.
		sc.assigned = sc.cl.Server()
		sc.redirAt = s.now
		sc.redirOpen = true
		s.res.Redirects++
		s.sendHello(sc)
	case gameclient.EventConnected:
		if sc.redirOpen {
			s.swLat.Observe((s.now - sc.redirAt) * 1000)
			sc.redirOpen = false
		}
		if since, ok := s.rejoinSince[cid]; ok {
			// Reconnected after a server restart: the recovery gap.
			s.recGap.Observe((s.now - since) * 1000)
			delete(s.rejoinSince, cid)
		}
	}
}

// sendHello (re)joins the client's assigned game server.
func (s *Sim) sendHello(sc *simClient) {
	n, ok := s.nodes[sc.assigned]
	if !ok {
		return
	}
	sc.helloAt = s.now
	m := sc.cl.Hello()
	if s.nm != nil && s.impair(netem.ClientEndpoint(sc.cl.ID()), netem.ServerEndpoint(sc.assigned), netemToGS, m) {
		return
	}
	_ = n.gs.Enqueue(m) // overflow counted by the game server
}

// ownerOf finds the active server owning a point (the "lobby" lookup a
// production deployment would do via DNS or a login service).
func (s *Sim) ownerOf(p geom.Point) id.ServerID {
	for _, part := range s.mc.Partitions() {
		if part.Bounds.Contains(p) {
			return part.Owner
		}
	}
	// Half-open boundary case: clamp slightly inward and retry.
	eps := 1e-9
	q := geom.Pt(
		minf(p.X, s.cfg.World.MaxX-eps),
		minf(p.Y, s.cfg.World.MaxY-eps),
	)
	for _, part := range s.mc.Partitions() {
		if part.Bounds.Contains(q) {
			return part.Owner
		}
	}
	return id.None
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// addClient spawns a client at pos, optionally attracted to a hotspot.
func (s *Sim) addClient(pos geom.Point, tag string, attract *geom.Point, spread float64) {
	cid := s.gen.NextClient()
	cl, err := gameclient.New(gameclient.Config{ID: cid, Pos: pos, Clock: s.clk})
	if err != nil {
		return
	}
	mover := game.NewMover(s.cfg.Profile, s.cfg.World, s.rngSeed+int64(cid)*7919)
	if attract != nil {
		mover.Attract(*attract, spread)
	}
	sc := &simClient{
		cl:       cl,
		mover:    mover,
		tag:      tag,
		assigned: s.ownerOf(pos),
		alive:    true,
	}
	s.clients[cid] = sc
	s.sendHello(sc)
}

// removeClients despawns count clients with the given tag.
func (s *Sim) removeClients(tag string, count int) {
	// Deterministic order: ascending client ID.
	ids := make([]id.ClientID, 0, len(s.clients))
	for cid, sc := range s.clients {
		if sc.alive && sc.tag == tag {
			ids = append(ids, cid)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, cid := range ids {
		if count == 0 {
			return
		}
		sc := s.clients[cid]
		sc.alive = false
		if n, ok := s.nodes[sc.assigned]; ok {
			leave := sc.cl.MakeAction(protocol.KindDespawn, sc.cl.Pos())
			if s.nm == nil || !s.impair(netem.ClientEndpoint(cid), netem.ServerEndpoint(sc.assigned), netemToGS, leave) {
				_ = n.gs.Enqueue(leave) // overflow counted by the game server
			}
		}
		count--
	}
}

// netemDest says how a delayed message re-enters the simulation.
type netemDest uint8

const (
	// netemToGS enqueues on the destination server's game server.
	netemToGS netemDest = iota + 1
	// netemToClient delivers to the destination client.
	netemToClient
	// netemToCore hands the message to the destination Matrix server
	// (peer forwards).
	netemToCore
)

// netemEntry is one in-flight impaired message.
type netemEntry struct {
	from, to netem.Endpoint
	kind     netemDest
	msg      protocol.Message
}

// impair runs one send through the netem model. It returns true when the
// caller must NOT deliver instantly: the packet was lost, blackholed, or
// scheduled for a later tick. Callers only invoke it when s.nm != nil.
func (s *Sim) impair(from, to netem.Endpoint, kind netemDest, m protocol.Message) bool {
	v := s.nm.Judge(from, to, netem.DataPlane(m))
	if v.Severed {
		s.res.NetemSevered++
		s.noteLostDespawn(m)
		return true
	}
	if v.Drop {
		s.res.NetemLost++
		s.noteLostDespawn(m)
		return true
	}
	// Delays quantize UP to the tick grid (the simulator's delivery
	// quantum): any positive delay defers at least one tick, so sub-tick
	// impairment rounds up to the tick length rather than silently
	// vanishing. The epsilon keeps exact multiples (200ms on a 100ms
	// tick) from rounding an extra tick.
	t := int(math.Ceil(v.DelaySec/s.dt - 1e-9))
	if t < 1 {
		return false
	}
	s.res.NetemDelayed++
	due := s.tick + t
	s.nq[due] = append(s.nq[due], netemEntry{from: from, to: to, kind: kind, msg: m})
	return true
}

// pumpNetem delivers every in-flight message due this tick. Links severed
// while a message was in flight drop it on arrival (the packet was in the
// pipe when the cable was cut).
func (s *Sim) pumpNetem() {
	entries, ok := s.nq[s.tick]
	if !ok {
		return
	}
	delete(s.nq, s.tick)
	for _, e := range entries {
		if s.nm.Severed(e.from, e.to) {
			s.res.NetemSevered++
			s.noteLostDespawn(e.msg)
			continue
		}
		switch e.kind {
		case netemToGS:
			if n, ok := s.nodes[e.to.Server]; ok {
				// A delayed message is judged at arrival, like any other.
				if !s.admitIngress(e.to.Server, e.from.Client != 0, e.msg) {
					continue
				}
				_ = n.gs.Enqueue(e.msg) // overflow counted by the game server
			}
		case netemToClient:
			s.deliverToClient(e.to.Client, e.msg)
		case netemToCore:
			s.deliverToCore(e.to.Server, e.from.Server, e.msg)
		}
	}
}

// noteLostDespawn registers the ghost a lost despawn leaves behind: the
// server never learns the client is gone, so the idle-expiry pass (see
// expireGhosts) must cull it later.
func (s *Sim) noteLostDespawn(m protocol.Message) {
	if s.ghostAfter <= 0 {
		return
	}
	if u, ok := m.(*protocol.GameUpdate); ok && u.Kind == protocol.KindDespawn {
		s.ghosts[u.Client] = s.now
	}
}

// expireGhosts culls ghost records past the idle timeout: every server
// still holding the avatar evicts it locally, exactly what a production
// server's idle reaper does. The cull is server-local by design — it emits
// no despawn traffic, so evicting a rollback-resurrected duplicate can
// never ripple to the client's live avatar on its current server (which is
// always skipped). Copies on crashed (frozen) servers wait for the
// recovery; the record clears once no stale copy remains.
func (s *Sim) expireGhosts() {
	due := make([]id.ClientID, 0, len(s.ghosts))
	for cid, t0 := range s.ghosts {
		if s.now-t0 >= s.ghostAfter {
			due = append(due, cid)
		}
	}
	slices.Sort(due)
	for _, cid := range due {
		sc, scOK := s.clients[cid]
		live := scOK && sc.alive
		found, cleared := false, true
		for _, sid := range s.order {
			n := s.nodes[sid]
			if _, ok := n.gs.ClientPos(cid); !ok {
				continue
			}
			if live && sid == sc.assigned {
				continue // the legitimate avatar, not a ghost copy
			}
			found = true
			if s.nm != nil && s.nm.Crashed(sid) {
				cleared = false // frozen: evict after recovery (or rollback)
				continue
			}
			n.gs.Evict(cid)
		}
		if !found {
			// Already gone everywhere (state transfer raced the expiry).
			delete(s.ghosts, cid)
			continue
		}
		if cleared {
			s.res.GhostsExpired++
			delete(s.ghosts, cid)
		}
	}
}

// noteNetemEvent records a scripted impairment change in the topology
// event log (and thus the fingerprint).
func (s *Sim) noteNetemEvent(kind string, servers []id.ServerID) {
	if len(servers) == 0 {
		s.events = append(s.events, TopologyEvent{Time: s.now, Kind: kind})
		return
	}
	for _, sid := range servers {
		s.events = append(s.events, TopologyEvent{Time: s.now, Kind: kind, Server: sid})
	}
}

// mulberryRand is a tiny deterministic PRNG for per-sim decisions that must
// not disturb the movers' streams.
type mulberryRand struct{ state uint64 }

func (m *mulberryRand) next() float64 {
	m.state += 0x9E3779B97F4A7C15
	z := m.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

// Run executes the simulation to completion and returns the results. It is
// a thin loop over the step primitives; callers that need finer control
// (worker pools checking a context, cluster co-simulation on a shared
// clock) drive Start/Step/Done/Finish directly.
func (s *Sim) Run() (*Result, error) {
	if err := s.Start(); err != nil {
		return nil, err
	}
	for !s.Done() {
		if err := s.Step(); err != nil {
			return nil, err
		}
	}
	return s.Finish(), nil
}

// Start prepares the run: it spawns the base population and derives the
// tick, report and sample cadences. It must be called exactly once, before
// the first Step.
func (s *Sim) Start() error {
	if s.started {
		return errors.New("sim: Start called twice")
	}
	s.started = true
	s.initCadence()
	s.rng = &mulberryRand{state: uint64(s.cfg.Seed)*2654435761 + 1}

	// Network emulation activates on a non-zero config or any scripted
	// impairment event; otherwise every send below keeps the historical
	// instant path (and its byte-identical fingerprint).
	if s.cfg.Netem.Enabled() || s.script.HasImpairment() {
		ncfg := s.cfg.Netem
		if ncfg.Seed == 0 {
			ncfg.Seed = s.cfg.Seed
		}
		s.nm = netem.NewModel(ncfg)
		s.nq = make(map[int][]netemEntry)
		s.res.NetemActive = true
	}

	// The admission chain activates on an enabled middleware config; runs
	// without one keep the historical judge-free path (and fingerprint).
	if s.cfg.Middleware.Enabled() {
		s.mwLim = make(map[id.ServerID]*middleware.RateLimiter)
		s.res.MiddlewareActive = true
	}

	// Base population scattered uniformly.
	for i := 0; i < s.cfg.BasePopulation; i++ {
		pos := geom.Pt(
			s.cfg.World.MinX+s.rng.next()*s.cfg.World.Width(),
			s.cfg.World.MinY+s.rng.next()*s.cfg.World.Height(),
		)
		s.addClient(pos, "base", nil, 0)
	}

	return nil
}

// initCadence derives every tick-grid quantity from the sanitized config:
// tick length, total ticks, the sorted script, and the report, sample,
// checkpoint and ghost-expiry cadences. Start and the snapshot restore path
// share it, so a restored run steps on the identical grid.
func (s *Sim) initCadence() {
	s.dt = s.cfg.TickSeconds
	s.ticks = int(s.cfg.DurationSeconds/s.dt + 0.5)
	s.script = s.cfg.Script.Sorted()
	s.reportEvery = int(s.cfg.LoadReportEverySeconds/s.dt + 0.5)
	if s.reportEvery < 1 {
		s.reportEvery = 1
	}
	s.sampleEvery = int(s.cfg.SampleEverySeconds/s.dt + 0.5)
	if s.sampleEvery < 1 {
		s.sampleEvery = 1
	}
	s.chkEvery = 0
	if s.cfg.CheckpointEverySeconds > 0 {
		s.chkEvery = int(s.cfg.CheckpointEverySeconds/s.dt + 0.5)
		if s.chkEvery < 1 {
			s.chkEvery = 1
		}
	}
	s.ghostAfter = s.cfg.GhostExpirySeconds
}

// Done reports whether every tick has been stepped. A run of D seconds at
// tick dt spans round(D/dt)+1 steps (both endpoints are simulated).
func (s *Sim) Done() bool { return s.started && s.tick > s.ticks }

// Now returns the current virtual time in seconds.
func (s *Sim) Now() float64 { return s.now }

// Tick returns the index of the next tick Step will execute.
func (s *Sim) Tick() int { return s.tick }

// NextTime returns the virtual time of the next tick Step will execute.
// Branching sweeps step a warmup while NextTime() < T and then snapshot, so
// every event with At >= T belongs to the branches. Valid after Start.
func (s *Sim) NextTime() float64 { return float64(s.tick) * s.dt }

// Step advances the simulation by one tick: script events, client traffic,
// queue processing, load reports, hello retries, sampling.
func (s *Sim) Step() error {
	if !s.started {
		return errors.New("sim: Step before Start")
	}
	if s.Done() {
		return errors.New("sim: Step after Done")
	}
	tick := s.tick
	dt := s.dt
	s.now = float64(tick) * dt

	// Re-anchor the trace clock at the tick's virtual start (trace.go).
	// Tracing is pure observation: nothing below branches on it.
	var tickStart int64
	if s.tr != nil {
		tickStart = s.traceTickStart(s.cfg.SimWorkers)
	}

	// 1. Script events.
	for _, e := range s.script.Due(s.now, s.now+dt) {
		switch e.Kind {
		case game.EventJoin:
			for i := 0; i < e.Count; i++ {
				ang := s.rng.next() * 2 * math.Pi
				r := math.Sqrt(s.rng.next()) * e.Spread // area-uniform
				pos := s.cfg.World.Clamp(geom.Pt(
					e.Center.X+r*math.Cos(ang),
					e.Center.Y+r*math.Sin(ang),
				))
				c := e.Center
				s.addClient(pos, e.Tag, &c, e.Spread)
			}
		case game.EventLeave:
			s.removeClients(e.Tag, e.Count)
		case game.EventImpair:
			if s.nm != nil {
				s.nm.SetLink(e.Impair)
				s.noteNetemEvent("impair", nil)
			}
		case game.EventPartition:
			if s.nm != nil {
				s.nm.Cut(e.Servers)
				s.noteNetemEvent("partition", e.Servers)
			}
		case game.EventHeal:
			if s.nm != nil {
				s.nm.Heal(e.Servers)
				s.noteNetemEvent("heal", e.Servers)
			}
		case game.EventCrash:
			if s.nm != nil {
				s.nm.Crash(e.Servers)
				s.noteNetemEvent("crash", e.Servers)
			}
		case game.EventCrashLose:
			if s.nm != nil {
				s.nm.Crash(e.Servers)
				for _, sid := range e.Servers {
					s.loseState[sid] = true
				}
				s.noteNetemEvent("crash-lose", e.Servers)
			}
		case game.EventRecover:
			if s.nm != nil {
				recovered := e.Servers
				if len(recovered) == 0 {
					recovered = s.nm.CrashedServers()
				}
				s.nm.Recover(e.Servers)
				s.noteNetemEvent("recover", e.Servers)
				for _, sid := range recovered {
					if s.loseState[sid] {
						s.restartNode(sid)
					}
				}
			}
		}
	}

	// 1b. In-flight impaired messages due this tick arrive.
	if s.nm != nil {
		s.pumpNetem()
	}

	// 1c. Ghost expiry: cull clients whose departure their server never saw.
	if s.nm != nil && s.ghostAfter > 0 && len(s.ghosts) > 0 {
		s.expireGhosts()
	}

	// 2. Client traffic.
	s.generateTraffic(dt)

	// 3. Game servers process their queues — the two-phase tick engine
	// (engine.go). Phase A fans the per-server work out to the worker pool
	// (serially when SimWorkers <= 1): each live server drains its inbox
	// and hands its updates to its co-located Matrix server, touching only
	// its own state and buffering the fallout. Phase B merges the buffered
	// envelopes in canonical server order and routes them, so delivery,
	// netem judging and RNG consumption are byte-identical for any worker
	// count. Crashed servers are frozen: their queues keep whatever
	// arrived before the crash and resume draining on recovery.
	workers := s.ensureEngine()
	s.liveServers()
	processNode := s.processNode
	if s.tr != nil {
		processNode = s.traceProcessNode
	}
	paStart := s.tr.Now()
	s.runPhaseA(workers, processNode)
	if s.tr != nil {
		s.tracePhaseA(paStart, workers)
	}
	pbStart := s.tr.Now()
	s.routePhaseB()
	if s.tr != nil {
		s.tracePhaseB(pbStart)
	}

	// 4. Load reports, same two phases: every live active server runs its
	// split/reclaim policy against its own load in phase A, the MC traffic
	// routes canonically in phase B. Crashed servers report nothing, so
	// parents see a frozen last-known child load until recovery.
	if tick%s.reportEvery == 0 {
		lrStart := s.tr.Now()
		s.runPhaseA(workers, func(_, idx int) { s.loadReportNode(idx) })
		s.routePhaseB()
		if s.tr != nil {
			s.traceLoadReport(lrStart)
		}
	}

	// 5. Hello retries for clients stuck unconnected (dropped joins).
	for _, sc := range s.clientsInOrder() {
		if sc.alive && !sc.cl.Connected() && s.now-sc.helloAt >= 1.0 {
			s.sendHello(sc)
		}
	}

	// 6. Latency measurement window.
	if !s.latWindowed && s.cfg.LatencyIgnoreBeforeSeconds > 0 && s.now >= s.cfg.LatencyIgnoreBeforeSeconds {
		s.latWindowed = true
		for cid, sc := range s.clients {
			s.latSkip[cid] = len(sc.cl.Latencies())
		}
	}

	// 7. Sampling (and the flight-recorder row, when one is attached).
	if tick%s.sampleEvery == 0 {
		s.sample()
		if s.rec != nil {
			s.recordSample(tick)
		}
	}

	// 8. Periodic checkpoints (the restore points for state-losing crash
	// recovery). Crashed servers keep their last pre-crash checkpoint: a
	// dead process cannot checkpoint itself.
	if s.chkEvery > 0 && tick%s.chkEvery == 0 {
		s.takeCheckpoints()
	}

	if s.tr != nil {
		s.traceTickEnd(tickStart)
	}

	s.clk.Advance(time.Duration(dt * float64(time.Second)))
	s.tick++
	return nil
}

// takeCheckpoints captures every live server's full state.
func (s *Sim) takeCheckpoints() {
	for _, sid := range s.order {
		if s.nm != nil && s.nm.Crashed(sid) {
			continue
		}
		n := s.nodes[sid]
		cs, err := n.core.CaptureState()
		if err != nil {
			s.reg.Counter("errors/checkpoint").Inc()
			continue
		}
		gs, err := n.gs.CaptureState()
		if err != nil {
			s.reg.Counter("errors/checkpoint").Inc()
			continue
		}
		s.checkpoints[sid] = &nodeCheckpoint{takenAt: s.now, core: cs, game: gs}
	}
}

// restartNode models a state-losing crash recovery: the server process died
// and its replacement starts from the last periodic checkpoint (cold when
// none exists), resyncs its topology from the MC, and every client it served
// must reconnect — their connections died with the process.
func (s *Sim) restartNode(sid id.ServerID) {
	n, ok := s.nodes[sid]
	if !ok {
		return
	}
	delete(s.loseState, sid)
	// The process died: its in-memory token buckets died with it. A
	// restarted server starts every client's budget fresh.
	delete(s.mwLim, sid)
	chkCore, chkGame := s.blankNodeState(sid)
	if chk := s.checkpoints[sid]; chk != nil {
		chkCore, chkGame = chk.core, chk.game
	}
	if err := n.core.RestoreState(chkCore); err != nil {
		s.reg.Counter("errors/restart").Inc()
	}
	if err := n.gs.RestoreState(chkGame); err != nil {
		s.reg.Counter("errors/restart").Inc()
	}
	s.res.Restarts++
	s.events = append(s.events, TopologyEvent{Time: s.now, Kind: "restart", Server: sid})
	s.auditRestart(sid, n)

	// The checkpoint rollback resurrects avatars the server had since let
	// go of — departed clients AND clients who migrated to another server
	// after the checkpoint (their live avatar is elsewhere; the copy here
	// is a stale duplicate). Both register as ghosts; the idle expiry
	// culls every copy except a live client's current one.
	if s.ghostAfter > 0 {
		for _, cid := range n.gs.ClientIDs() {
			if sc, ok := s.clients[cid]; !ok || !sc.alive || sc.assigned != sid {
				s.ghosts[cid] = s.now
			}
		}
	}

	// Topology resync from the MC: fresh overlap tables (when the server
	// still owns a partition) and the authoritative range, with handoff
	// targets for every active partition so stale clients redirect out.
	envs, err := s.mc.Resync(sid)
	if err != nil {
		s.reg.Counter("errors/mc").Inc()
	}
	for _, e := range envs {
		s.deliverToCore(e.To, id.None, e.Msg)
	}

	// The restart reset every connection: clients of this server rejoin
	// via the hello-retry path, and the recovery-gap histogram times the
	// crash-recovery blackout each one experienced.
	for _, sc := range s.clientsInOrder() {
		if sc.alive && sc.assigned == sid {
			sc.cl.Disconnect()
			s.rejoinSince[sc.cl.ID()] = s.now
			s.res.RecoveryRejoins++
		}
	}
}

// blankNodeState is the cold-restart image: a registered but inactive
// server that has lost everything.
func (s *Sim) blankNodeState(sid id.ServerID) (*core.State, *gameserver.State) {
	return &core.State{ID: sid, World: s.cfg.World, Radius: s.cfg.Profile.Radius},
		&gameserver.State{}
}

// Finish aggregates and returns the result. Call it after Done (a pooled
// runner may also call it after an early cancellation to inspect the
// partial run). The aggregation runs once; repeat calls return the same
// Result, so a partial-run inspection cannot double-count.
func (s *Sim) Finish() *Result {
	if s.finished == nil {
		s.finished = s.finish()
	}
	return s.finished
}

// generateTraffic makes every connected client emit its due updates.
func (s *Sim) generateTraffic(dt float64) {
	for _, sc := range s.clientsInOrder() {
		if !sc.alive || !sc.cl.Connected() {
			continue
		}
		n, ok := s.nodes[sc.assigned]
		if !ok {
			continue
		}
		sc.acc += s.cfg.Profile.UpdatesPerSec * dt
		for sc.acc >= 1 {
			sc.acc--
			kind := sc.mover.PickKind()
			var u *protocol.GameUpdate
			switch kind {
			case protocol.KindMove:
				next := sc.mover.Step(sc.cl.Pos(), 1.0/s.cfg.Profile.UpdatesPerSec)
				u = sc.cl.MakeMove(next)
			case protocol.KindAction:
				u = sc.cl.MakeAction(protocol.KindAction, sc.mover.ActionTarget(sc.cl.Pos()))
			default:
				u = sc.cl.MakeAction(protocol.KindChat, sc.cl.Pos())
			}
			u.Payload = make([]byte, s.cfg.Profile.PayloadBytes)
			if s.nm != nil && s.impair(netem.ClientEndpoint(sc.cl.ID()), netem.ServerEndpoint(sc.assigned), netemToGS, u) {
				continue
			}
			// The network delivered it; the server's chain judges it.
			if !s.admitIngress(sc.assigned, true, u) {
				continue
			}
			if s.tr != nil {
				// The packet span opens as the update enters its server's
				// inbox and ends when its echo reaches the client.
				s.tr.AsyncBegin(tracePidServer(sc.assigned), "packet", "packet",
					packetSpanID(u.Client, u.Seq), s.tr.Now())
			}
			_ = n.gs.Enqueue(u) // overflow counted by the game server
		}
	}
}

// clientsInOrder returns clients sorted by ID for determinism. The
// returned slice is scratch reused across calls (twice per tick); callers
// must finish iterating before the next call.
func (s *Sim) clientsInOrder() []*simClient {
	ids := s.idScratch[:0]
	for cid := range s.clients {
		ids = append(ids, cid)
	}
	slices.Sort(ids)
	s.idScratch = ids
	out := s.scScratch[:0]
	for _, cid := range ids {
		out = append(out, s.clients[cid])
	}
	// Clear any stale tail left from a larger previous round, so the
	// scratch array never redundantly pins client records.
	if len(out) < len(s.scScratch) {
		clear(s.scScratch[len(out):])
	}
	s.scScratch = out
	return out
}

// sample appends the per-server series points (Figure 2's panels).
func (s *Sim) sample() {
	active := 0
	for _, sid := range s.order {
		n := s.nodes[sid]
		if n.core.Active() {
			active++
			s.reg.Series(fmt.Sprintf("clients/%v", sid)).Append(s.now, float64(n.gs.ClientCount()))
			s.reg.Series(fmt.Sprintf("queue/%v", sid)).Append(s.now, float64(n.gs.QueueLen()))
			s.res.ClientSeconds += float64(n.gs.ClientCount()) * s.cfg.SampleEverySeconds
		} else if s.activePrev[sid] {
			// One zero sample on deactivation closes the line.
			s.reg.Series(fmt.Sprintf("clients/%v", sid)).Append(s.now, 0)
			s.reg.Series(fmt.Sprintf("queue/%v", sid)).Append(s.now, 0)
		}
		s.activePrev[sid] = n.core.Active()
	}
	s.reg.Series("servers/active").Append(s.now, float64(active))
	var drops uint64
	for _, sid := range s.order {
		drops += s.nodes[sid].gs.Stats().Dropped
	}
	s.reg.Series("drops/total").Append(s.now, float64(drops))
	if active > s.res.PeakServers {
		s.res.PeakServers = active
	}
}

// finish aggregates the result.
func (s *Sim) finish() *Result {
	res := s.res
	res.Metrics = s.reg
	res.Latency = s.lat
	res.SwitchLatency = s.swLat
	res.RecoveryGap = s.recGap
	res.Events = s.events
	for _, sid := range s.order {
		n := s.nodes[sid]
		st := n.core.Stats()
		res.ForwardedBytes += st.PeerBytesOut
		res.ForwardedPackets += st.PeerPacketsOut
		res.OverlapAreaLast += n.core.OverlapArea()
		gst := n.gs.Stats()
		res.DeliveredUpdates += gst.Delivered
		res.DroppedPackets += gst.Dropped
		if n.core.Active() {
			res.FinalServers++
		}
	}
	// Collect client latencies (ms), honouring the measurement window.
	for cid, sc := range s.clients {
		lats := sc.cl.Latencies()
		if skip := s.latSkip[cid]; skip > 0 {
			if skip >= len(lats) {
				continue
			}
			lats = lats[skip:]
		}
		for _, d := range lats {
			res.Latency.Observe(float64(d) / float64(time.Millisecond))
		}
	}
	return &res
}

// SetSimWorkers re-bounds the intra-sim worker pool before the next Step
// (see Config.SimWorkers). The worker count never affects results, so
// changing it mid-run — e.g. on a sim restored from a snapshot, which
// does not record it — is always safe.
func (s *Sim) SetSimWorkers(n int) { s.cfg.SimWorkers = n }

// MC exposes the coordinator for assertions in tests and experiments.
func (s *Sim) MC() *coordinator.Coordinator { return s.mc }

// Node returns a server's components for inspection.
func (s *Sim) Node(sid id.ServerID) (*core.Server, *gameserver.Server, bool) {
	n, ok := s.nodes[sid]
	if !ok {
		return nil, nil, false
	}
	return n.core, n.gs, true
}

// debugTopology enables split/reclaim tracing in experiments (tests only).
var debugTopology = false

// DebugTopology toggles split/reclaim tracing to stdout.
func DebugTopology(on bool) { debugTopology = on }
