package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"matrix/internal/game"
	"matrix/internal/geom"
)

// TestChaosSoak drives randomized join/leave schedules through the full
// cluster and checks the global invariants after every run:
//
//   - the MC's partitioning always tiles the world exactly;
//   - no client is lost or duplicated across any number of splits,
//     reclamations and boundary handoffs;
//   - the topology consolidates once load disappears.
//
// This is the repository's end-to-end safety net: any regression in the
// split/reclaim protocol, the overlap tables, the client migration paths or
// the handoff resolution shows up here as a conservation failure.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak runs several randomized simulations")
	}
	for _, seed := range []int64{101, 202, 303} {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			rnd := rand.New(rand.NewSource(seed))
			world := geom.R(0, 0, 1000, 1000)

			// Random script: 3-5 hotspot waves at random spots, each fully
			// drained before the run ends.
			var script game.Script
			tTime := 5.0
			alive := 0
			waves := 3 + rnd.Intn(3)
			for w := 0; w < waves; w++ {
				count := 60 + rnd.Intn(80)
				center := geom.Pt(100+rnd.Float64()*800, 100+rnd.Float64()*800)
				script = append(script, game.Event{
					At: tTime, Kind: game.EventJoin, Count: count,
					Center: center, Spread: 60 + rnd.Float64()*100,
					Tag: fmt.Sprintf("wave%d", w),
				})
				alive += count
				tTime += 8 + rnd.Float64()*10
				script = append(script, game.Event{
					At: tTime, Kind: game.EventLeave, Count: count,
					Tag: fmt.Sprintf("wave%d", w),
				})
				alive -= count
				tTime += 5 + rnd.Float64()*8
			}
			// Keep the residual population under the reclaim-headroom
			// ceiling (0.8 x overload = 48 for smallPolicy), or the final
			// merge is — correctly — refused and the cluster settles at 2.
			base := 20 + rnd.Intn(15)

			s, err := New(Config{
				Profile:         game.Bzflag(),
				World:           world,
				Seed:            seed,
				DurationSeconds: tTime + 75, // leave time to consolidate
				MaxServers:      8,
				BasePopulation:  base,
				Script:          script,
				LoadPolicy:      smallPolicy(),
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.Run()
			if err != nil {
				t.Fatal(err)
			}

			// Invariant: partition tiling.
			if err := s.MC().Validate(); err != nil {
				t.Fatalf("partition invariants: %v", err)
			}
			// Invariant: client conservation (only the base population
			// remains).
			total := 0
			for _, part := range s.MC().Partitions() {
				_, gs, ok := s.Node(part.Owner)
				if !ok {
					t.Fatalf("active server %v missing", part.Owner)
				}
				total += gs.ClientCount()
			}
			if total != base {
				t.Errorf("clients after full drain = %d, want %d", total, base)
			}
			// Invariant: consolidation — base load fits one server.
			if res.FinalServers != 1 {
				t.Errorf("cluster did not consolidate: final=%d events=%d",
					res.FinalServers, len(res.Events))
			}
			// Sanity: waves actually exercised the machinery.
			if res.PeakServers < 2 {
				t.Errorf("soak never split: peak=%d", res.PeakServers)
			}
			if res.DroppedPackets != 0 {
				t.Errorf("unbounded queues must not drop: %d", res.DroppedPackets)
			}
		})
	}
}

// TestLatencyWindowExcludesTransient checks the measurement-window knob:
// samples before the window must not appear in the result.
func TestLatencyWindowExcludesTransient(t *testing.T) {
	run := func(window float64) int {
		s, err := New(Config{
			Profile:                    game.Bzflag(),
			World:                      geom.R(0, 0, 500, 500),
			Seed:                       9,
			DurationSeconds:            20,
			MaxServers:                 1,
			BasePopulation:             10,
			LatencyIgnoreBeforeSeconds: window,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Latency.Count()
	}
	all := run(0)
	half := run(10)
	if all == 0 {
		t.Fatal("no latency samples at all")
	}
	if half >= all {
		t.Errorf("window did not exclude samples: %d vs %d", half, all)
	}
	if half == 0 {
		t.Error("window excluded everything")
	}
}
