// Flight-recorder integration: the sampling and decision-audit hooks the
// simulator drives when a recorder is attached (see internal/flight).
//
// Every hook runs on the stepping goroutine — sampling from Step's stage 7,
// decision audit from phase-B envelope routing and script handling — so a
// recording is byte-identical for any SimWorkers value. Recording is
// observation only: nothing here mutates simulation state, and attaching a
// recorder never changes Result.Fingerprint (both pinned by tests).
package sim

import (
	"fmt"
	"math"

	"matrix/internal/flight"
	"matrix/internal/id"
	"matrix/internal/protocol"
)

// SetRecorder attaches (nil detaches) a flight recorder. Like the tracer
// and SimWorkers it is an execution knob, not simulation state: snapshots do
// not record it and results are byte-identical with or without one.
func (s *Sim) SetRecorder(r *flight.Recorder) { s.rec = r }

// recordSample appends one recorder row: per-server load, fleet shape,
// cumulative protocol counters and the derived imbalance statistics. Called
// on the sample cadence, right after the metrics-registry sample, so the
// recording and Result.Metrics describe the same instants.
func (s *Sim) recordSample(tick int) {
	s.rec.Sample(int64(tick), s.now)

	active, depth := 0, 0
	var total, maxClients float64
	counts := make([]float64, 0, len(s.order))
	for _, sid := range s.order {
		n := s.nodes[sid]
		if !n.core.Active() {
			continue
		}
		active++
		c := float64(n.gs.ClientCount())
		counts = append(counts, c)
		total += c
		if c > maxClients {
			maxClients = c
		}
		if d := s.treeDepth(sid); d > depth {
			depth = d
		}
		s.rec.Set(fmt.Sprintf("clients/%v", sid), c)
		s.rec.Set(fmt.Sprintf("queue/%v", sid), float64(n.gs.QueueLen()))
		s.rec.Set(fmt.Sprintf("objects/%v", sid), float64(n.gs.ObjectCount()))
	}
	s.rec.Set("servers/active", float64(active))
	s.rec.Set("servers/spare", float64(s.mc.SpareCount()))
	s.rec.Set("regions", float64(len(s.mc.Partitions())))
	s.rec.Set("tree/depth", float64(depth))

	var drops, delivered uint64
	for _, sid := range s.order {
		st := s.nodes[sid].gs.Stats()
		drops += st.Dropped
		delivered += st.Delivered
	}
	s.rec.Set("drops/total", float64(drops))
	s.rec.Set("delivered/total", float64(delivered))
	s.rec.Set("redirects/total", float64(s.res.Redirects))
	s.rec.Set("splits/total", float64(s.mc.Splits()))
	s.rec.Set("reclaims/total", float64(s.mc.Reclaims()))

	// Load-imbalance statistics over active-server client counts, recorded
	// as percents so the Perfetto counter tracks (integer-valued after the
	// merge's rounding) keep the signal: CoV of 0.42 becomes 42.
	if active > 0 && total > 0 {
		mean := total / float64(active)
		var ss float64
		for _, c := range counts {
			ss += (c - mean) * (c - mean)
		}
		cov := math.Sqrt(ss/float64(active)) / mean
		s.rec.Set("imbalance/cov-pct", cov*100)
		s.rec.Set("imbalance/max-mean-pct", maxClients/mean*100)
	} else {
		s.rec.Set("imbalance/cov-pct", 0)
		s.rec.Set("imbalance/max-mean-pct", 0)
	}

	// Subsystem counters join the recording only when their subsystem ran,
	// mirroring the fingerprint's conditional netem/middleware lines.
	if s.res.NetemActive {
		s.rec.Set("netem/lost", float64(s.res.NetemLost))
		s.rec.Set("netem/severed", float64(s.res.NetemSevered))
		s.rec.Set("netem/delayed", float64(s.res.NetemDelayed))
		s.rec.Set("ghosts/expired", float64(s.res.GhostsExpired))
		s.rec.Set("restarts/total", float64(s.res.Restarts))
		s.rec.Set("recovery/rejoins", float64(s.res.RecoveryRejoins))
	}
	if s.res.MiddlewareActive {
		s.rec.Set("mw/rate-limited", float64(s.res.RateLimited))
		s.rec.Set("mw/shed", float64(s.res.AdmissionShed))
	}
}

// treeDepth walks sid's split-tree parent chain to the root.
func (s *Sim) treeDepth(sid id.ServerID) int {
	d := 0
	for at := sid; ; {
		p := s.nodes[at].core.Parent()
		if !p.Valid() {
			return d
		}
		if _, ok := s.nodes[p]; !ok {
			return d
		}
		d++
		at = p
	}
}

// auditSplit records one split grant or denial with the inputs that
// produced it: the request's own load reading, the requester's tracker
// state and thresholds, and the MC's remaining spare pool.
func (s *Sim) auditSplit(req *protocol.SplitRequest, rep *protocol.SplitReply) {
	d := flight.Decision{
		Tick: int64(s.tick), Time: s.now, Kind: "split",
		Granted: rep.Granted, Server: int64(req.Server),
		Corr: rep.Corr, Reason: rep.Reason,
	}
	if rep.Granted {
		d.Child = int64(rep.Child)
	}
	if n, ok := s.nodes[req.Server]; ok {
		tr := n.core.Tracker()
		d.Policy = tr.Policy()
		// Request and reply complete within one tick (request emitted in
		// phase A, reply routed in the same phase B), so the verdict the
		// policy cached when it asked for this split is still current: the
		// audit reproduces the exact inputs the policy read.
		if v := tr.SplitVerdict(); len(v.Inputs) > 0 {
			for _, kv := range v.Inputs {
				d.Inputs = append(d.Inputs, flight.KV{Key: kv.Key, Val: kv.Val})
			}
			d.Inputs = append(d.Inputs, flight.KV{Key: "spares-left", Val: float64(s.mc.SpareCount())})
		} else {
			// No cached verdict (e.g. a stray reply after a restart wiped
			// the tracker): reconstruct from tracker state and thresholds.
			st, cfg := tr.State(), tr.Config()
			d.Inputs = append(d.Inputs,
				flight.KV{Key: "clients", Val: float64(req.Clients)},
				flight.KV{Key: "queue", Val: float64(st.QueueLen)},
				flight.KV{Key: "overload-clients", Val: float64(cfg.OverloadClients)},
				flight.KV{Key: "overload-queue", Val: float64(cfg.OverloadQueue)},
				flight.KV{Key: "split-cooldown-s", Val: cfg.SplitCooldown.Seconds()},
				flight.KV{Key: "spares-left", Val: float64(s.mc.SpareCount())},
			)
		}
	}
	s.rec.Record(d)
}

// auditReclaim records one reclaim grant or denial. corr is the correlation
// ID the MC stamped on the child's deactivating RangeUpdate (the reply
// itself is unstamped), zero for denials.
func (s *Sim) auditReclaim(req *protocol.ReclaimRequest, rep *protocol.ReclaimReply, corr uint64) {
	d := flight.Decision{
		Tick: int64(s.tick), Time: s.now, Kind: "reclaim",
		Granted: rep.Granted, Server: int64(req.Parent), Child: int64(req.Child),
		Corr: corr, Reason: rep.Reason,
	}
	if n, ok := s.nodes[req.Parent]; ok {
		tr := n.core.Tracker()
		d.Policy = tr.Policy()
		// As with splits, the round trip completes within one tick and the
		// parent forgets the child only when the reply lands, so the cached
		// verdict still describes exactly what the policy saw.
		if v := tr.ReclaimVerdict(req.Child); len(v.Inputs) > 0 {
			for _, kv := range v.Inputs {
				d.Inputs = append(d.Inputs, flight.KV{Key: kv.Key, Val: kv.Val})
			}
		} else {
			st, cfg := tr.State(), tr.Config()
			d.Inputs = append(d.Inputs,
				flight.KV{Key: "parent-clients", Val: float64(st.Clients)},
				flight.KV{Key: "parent-queue", Val: float64(st.QueueLen)},
				flight.KV{Key: "underload-clients", Val: float64(cfg.UnderloadClients)},
				flight.KV{Key: "reclaim-headroom", Val: cfg.ReclaimHeadroom},
				flight.KV{Key: "reclaim-dwell-s", Val: cfg.ReclaimDwell.Seconds()},
			)
			for _, ch := range st.Children {
				if ch.Child != req.Child {
					continue
				}
				d.Inputs = append(d.Inputs,
					flight.KV{Key: "child-clients", Val: float64(ch.Clients)},
					flight.KV{Key: "child-queue", Val: float64(ch.QueueLen)},
					flight.KV{Key: "child-below", Val: b01(ch.Below)},
				)
				break
			}
		}
	}
	s.rec.Record(d)
}

// auditRestart records one state-losing crash recovery: the checkpoint age
// it restored from (-1 for a cold restart) and the client count the rolled-
// back state resurrected. Called after the restore, before resync.
func (s *Sim) auditRestart(sid id.ServerID, n *node) {
	if s.rec == nil {
		return
	}
	age := -1.0
	if chk := s.checkpoints[sid]; chk != nil {
		age = s.now - chk.takenAt
	}
	s.rec.Record(flight.Decision{
		Tick: int64(s.tick), Time: s.now, Kind: "restart",
		Granted: true, Server: int64(sid),
		Inputs: []flight.KV{
			{Key: "checkpoint-age-s", Val: age},
			{Key: "clients", Val: float64(n.gs.ClientCount())},
		},
	})
}

func b01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
