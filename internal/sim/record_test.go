package sim

import (
	"bytes"
	"testing"

	"matrix/internal/flight"
	"matrix/internal/game"
	"matrix/internal/geom"
)

// recordTestConfig is a hotspot surge-and-drain run: the crowd forces
// splits, the drain forces reclaims, so the audit log sees grants and
// denials of both kinds.
func recordTestConfig(workers int) Config {
	return Config{
		Profile:         game.Bzflag(),
		World:           geom.R(0, 0, 1000, 1000),
		Seed:            3,
		DurationSeconds: 45,
		MaxServers:      4,
		BasePopulation:  30,
		Script: game.Script{
			{At: 5, Kind: game.EventJoin, Count: 150, Center: geom.Pt(750, 250), Spread: 80, Tag: "hot"},
			{At: 15, Kind: game.EventLeave, Count: 150, Tag: "hot"},
		},
		LoadPolicy: smallPolicy(),
		SimWorkers: workers,
	}
}

// TestRecordingPreservesFingerprint pins the acceptance criterion shared
// with the tracer: attaching a flight recorder leaves Result.Fingerprint
// byte-identical to the unrecorded run, serially and on a worker pool.
func TestRecordingPreservesFingerprint(t *testing.T) {
	run := func(workers int, rec *flight.Recorder) string {
		s, err := New(recordTestConfig(workers))
		if err != nil {
			t.Fatal(err)
		}
		s.SetRecorder(rec)
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Fingerprint()
	}
	base := run(1, nil)
	if got := run(1, flight.New()); got != base {
		t.Errorf("serial recorded fingerprint differs from unrecorded run")
	}
	if got := run(4, flight.New()); got != base {
		t.Errorf("4-worker recorded fingerprint differs from unrecorded serial run")
	}
}

// TestRecordingDeterministicAcrossWorkers pins the other acceptance
// criterion: every export — CSV, JSON, timeline — is byte-identical between
// a serial run and an 8-worker run of the same seed.
func TestRecordingDeterministicAcrossWorkers(t *testing.T) {
	record := func(workers int) (csv, js, tl []byte) {
		s, err := New(recordTestConfig(workers))
		if err != nil {
			t.Fatal(err)
		}
		rec := flight.New()
		s.SetRecorder(rec)
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		var c, j, l bytes.Buffer
		if err := rec.WriteCSV(&c); err != nil {
			t.Fatal(err)
		}
		if err := rec.WriteJSON(&j); err != nil {
			t.Fatal(err)
		}
		if err := rec.WriteTimeline(&l); err != nil {
			t.Fatal(err)
		}
		return c.Bytes(), j.Bytes(), l.Bytes()
	}
	c1, j1, l1 := record(1)
	c8, j8, l8 := record(8)
	if !bytes.Equal(c1, c8) {
		t.Error("CSV recording diverges between SimWorkers=1 and SimWorkers=8")
	}
	if !bytes.Equal(j1, j8) {
		t.Error("JSON recording diverges between SimWorkers=1 and SimWorkers=8")
	}
	if !bytes.Equal(l1, l8) {
		t.Error("audit timeline diverges between SimWorkers=1 and SimWorkers=8")
	}
	// Vacuous determinism proves nothing: the run must have recorded real
	// series and real decisions.
	if !bytes.Contains(c1, []byte("imbalance/cov-pct")) || !bytes.Contains(c1, []byte("servers/active")) {
		t.Errorf("CSV missing expected columns:\n%.200s", c1)
	}
	if !bytes.Contains(l1, []byte("split")) {
		t.Errorf("audit timeline has no split decisions:\n%.400s", l1)
	}
}

// TestAuditExplainsTopologyEvents checks the audit log's completeness and
// content: every split/reclaim in Result.Events has a granted decision at
// the same time for the same server, carrying a correlation ID and the load
// inputs that justify it against the configured thresholds.
func TestAuditExplainsTopologyEvents(t *testing.T) {
	s, err := New(recordTestConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	rec := flight.New()
	s.SetRecorder(rec)
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Rows() == 0 {
		t.Fatal("recorder sampled no rows")
	}

	decs := rec.Decisions()
	inputsOf := func(d flight.Decision) map[string]float64 {
		m := make(map[string]float64, len(d.Inputs))
		for _, kv := range d.Inputs {
			m[kv.Key] = kv.Val
		}
		return m
	}
	splits, reclaims := 0, 0
	for _, ev := range res.Events {
		if ev.Kind != "split" && ev.Kind != "reclaim" {
			continue
		}
		found := false
		for _, d := range decs {
			if d.Kind != ev.Kind || !d.Granted || d.Time != ev.Time || d.Child != int64(ev.Server) {
				continue
			}
			found = true
			in := inputsOf(d)
			switch ev.Kind {
			case "split":
				splits++
				if d.Corr == 0 {
					t.Errorf("granted split of %v at t=%.1f has no correlation ID", ev.Server, ev.Time)
				}
				if in["clients"] < in["overload-clients"] && in["queue"] < in["overload-queue"] {
					t.Errorf("split at t=%.1f not explained by its inputs: %v", ev.Time, d.Inputs)
				}
			case "reclaim":
				reclaims++
				if d.Corr == 0 {
					t.Errorf("granted reclaim of %v at t=%.1f has no correlation ID", ev.Server, ev.Time)
				}
				if _, ok := in["child-clients"]; !ok {
					t.Errorf("reclaim at t=%.1f lacks the child's recorded load: %v", ev.Time, d.Inputs)
				}
			}
		}
		if !found {
			t.Errorf("%s of server %v at t=%.1f has no granted audit decision", ev.Kind, ev.Server, ev.Time)
		}
	}
	if splits == 0 {
		t.Error("run produced no audited splits")
	}
	if reclaims == 0 {
		t.Error("run produced no audited reclaims")
	}
	// Denials carry a reason; the cooldown/dwell machinery produces some in
	// any surge-drain run this tight.
	for _, d := range decs {
		if !d.Granted && d.Reason == "" {
			t.Errorf("denied %s decision at t=%.1f has no reason", d.Kind, d.Time)
		}
	}
}
