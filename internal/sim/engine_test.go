package sim

import (
	"fmt"
	"reflect"
	"testing"

	"matrix/internal/game"
	"matrix/internal/id"
	"matrix/internal/netem"
)

// engineScenarios are the equivalence matrix: one clean topology-churning
// run, one netem-impaired run (delay + jitter + burst loss, so per-link
// RNG consumption order matters), and one state-losing crash recovery
// (checkpoints, restart, rejoin storm). Every worker count must produce
// byte-identical fingerprints on all three.
func engineScenarios() map[string]Config {
	impaired := stepTestConfig(23)
	impaired.Netem = netem.Config{Link: netem.LinkConfig{
		DelayMs:    30,
		JitterMs:   120,
		Loss:       0.02,
		BurstLoss:  0.25,
		BurstEnter: 0.02,
		BurstExit:  0.2,
	}}

	crash := stepTestConfig(31)
	crash.DurationSeconds = 40
	crash.CheckpointEverySeconds = 5
	crash.GhostExpirySeconds = 8
	crash.Script = append(crash.Script,
		game.Event{At: 22, Kind: game.EventCrashLose, Servers: []id.ServerID{2}},
		game.Event{At: 28, Kind: game.EventRecover, Servers: []id.ServerID{2}},
	)

	return map[string]Config{
		"clean":    stepTestConfig(17),
		"impaired": impaired,
		"recovery": crash,
	}
}

// engineWorkerCounts is the matrix of pool sizes; short mode keeps the
// race-suite runs (-race -cpu 1,2,8) bounded.
func engineWorkerCounts() []int {
	if testing.Short() {
		return []int{1, 4}
	}
	return []int{1, 2, 3, 8}
}

// runWithWorkers runs cfg with the given pool bound and returns the
// fingerprint.
func runWithWorkers(t *testing.T, cfg Config, workers int) string {
	t.Helper()
	cfg.SimWorkers = workers
	res, err := mustNew(t, cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	return res.Fingerprint()
}

// TestSimWorkersFingerprintIdentical is the tentpole contract: for a fixed
// config, Result.Fingerprint is byte-identical between the serial path
// (SimWorkers<=1) and any worker-pool size, on clean, netem-impaired and
// crash-recovery runs alike. It also doubles as the race-detector workload
// for the engine (the CI race suite runs this package at -cpu 1,4).
func TestSimWorkersFingerprintIdentical(t *testing.T) {
	for name, cfg := range engineScenarios() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			want := runWithWorkers(t, cfg, 1)
			for _, w := range engineWorkerCounts()[1:] {
				if got := runWithWorkers(t, cfg, w); got != want {
					t.Errorf("SimWorkers=%d fingerprint diverges from serial:\n--- serial\n%.400s\n--- workers=%d\n%.400s", w, want, w, got)
				}
			}
		})
	}
}

// TestSimWorkersStateIdenticalMidRun pins schedule independence at the
// state level, not just the aggregate fingerprint: a serial run and an
// 8-worker run paused at the same tick must capture reflect.DeepEqual
// states — the property that lets a snapshot taken under any worker count
// restore under any other.
func TestSimWorkersStateIdenticalMidRun(t *testing.T) {
	cfg := engineScenarios()["impaired"]
	capture := func(workers int) *State {
		c := cfg
		c.SimWorkers = workers
		s := mustNew(t, c)
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		for !s.Done() && s.NextTime() < 15 {
			if err := s.Step(); err != nil {
				t.Fatal(err)
			}
		}
		st, err := s.CaptureState()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	serial, parallel := capture(1), capture(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("mid-run state differs between SimWorkers=1 and SimWorkers=8")
	}
}

// TestSimWorkersRestoreAcrossWorkerCounts runs the snapshot/restore leg of
// the matrix: capture a serial run mid-flight, restore it with an 8-worker
// pool (snapshots never record a worker count), finish — the fingerprint
// must equal the uninterrupted serial run's. And symmetrically: capture
// under 8 workers, finish serially.
func TestSimWorkersRestoreAcrossWorkerCounts(t *testing.T) {
	for name, cfg := range engineScenarios() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			want := runWithWorkers(t, cfg, 1)

			for _, leg := range []struct {
				name          string
				before, after int
			}{
				{"serial-to-parallel", 1, 8},
				{"parallel-to-serial", 8, 1},
			} {
				c := cfg
				c.SimWorkers = leg.before
				s := mustNew(t, c)
				if err := s.Start(); err != nil {
					t.Fatal(err)
				}
				for !s.Done() && s.NextTime() < cfg.DurationSeconds/2 {
					if err := s.Step(); err != nil {
						t.Fatal(err)
					}
				}
				st, err := s.CaptureState()
				if err != nil {
					t.Fatal(err)
				}
				restored, err := RestoreWith(st, RestoreOptions{SimWorkers: leg.after})
				if err != nil {
					t.Fatal(err)
				}
				for !restored.Done() {
					if err := restored.Step(); err != nil {
						t.Fatal(err)
					}
				}
				if got := restored.Finish().Fingerprint(); got != want {
					t.Errorf("%s/%s: restored run diverges from uninterrupted serial run", name, leg.name)
				}
			}
		})
	}
}

// TestSimWorkersMidRunRebound changes the pool size every 50 ticks via
// SetSimWorkers: the worker count is a pure execution knob, so even a run
// that keeps re-bounding it mid-flight must reproduce the serial
// fingerprint.
func TestSimWorkersMidRunRebound(t *testing.T) {
	cfg := engineScenarios()["clean"]
	want := runWithWorkers(t, cfg, 1)

	s := mustNew(t, cfg)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	bounds := []int{1, 8, 2, 0, 5}
	for n := 0; !s.Done(); n++ {
		if n%50 == 0 {
			s.SetSimWorkers(bounds[(n/50)%len(bounds)])
		}
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Finish().Fingerprint(); got != want {
		t.Error("re-bounding SimWorkers mid-run changed the fingerprint")
	}
}

// TestSimWorkersCompatAllocPath drives the legacy allocating APIs through
// the worker pool: the compat path must stay byte-identical to both its
// serial self and the batched path, workers or not.
func TestSimWorkersCompatAllocPath(t *testing.T) {
	cfg := stepTestConfig(11)
	run := func(compat bool, workers int) string {
		c := cfg
		c.SimWorkers = workers
		s := mustNew(t, c)
		s.compatAlloc = compat
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Fingerprint()
	}
	want := run(false, 1)
	for _, tc := range []struct {
		compat  bool
		workers int
	}{{true, 1}, {true, 8}, {false, 8}} {
		if got := run(tc.compat, tc.workers); got != want {
			t.Errorf("compat=%v workers=%d diverges from batched serial", tc.compat, tc.workers)
		}
	}
}

// BenchmarkTickEngine measures one simulation's wall clock serial vs
// pooled (the docs/PERF.md intra-sim table comes from this on a multi-core
// box: go test -bench TickEngine -benchtime 3x matrix/internal/sim).
func BenchmarkTickEngine(b *testing.B) {
	if testing.Short() {
		b.Skip("4 full simulation runs; the CI smoke step only needs benchmarks to compile")
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := stepTestConfig(17)
				cfg.SimWorkers = workers
				s, err := New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := s.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
