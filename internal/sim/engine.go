// The intra-sim parallel tick engine: one simulation's per-server hot
// path — game-server inbox processing and the co-located Matrix server's
// packet/load logic — fans out across a bounded worker pool without
// changing a single byte of the run's Result.Fingerprint.
//
// The tick is split into two phases:
//
//   - Phase A (parallel): every live server drains its own inbox and hands
//     its own game updates and load report to its co-located Matrix
//     server. This work reads and writes only that server's state (the
//     game server, its spatial grid, and the co-located core — including
//     the ResolveOwner binding between the two) and emits envelopes into a
//     per-server output slot. No shared state is touched: no coordinator,
//     no netem model, no RNG, no clients, no metrics registry.
//
//   - Phase B (serial): the buffered fallout is merged in canonical server
//     order (registration order, the same order the serial loop uses) and
//     routed exactly as before — peer delivery, MC requests, client
//     delivery, netem judging. Everything order-sensitive (per-link netem
//     RNG draws, inbox append order, MC grant order, client event order)
//     happens here, on one goroutine, in an order that does not depend on
//     how phase A was scheduled.
//
// Workers claim servers through an atomic cursor, so WHICH worker runs a
// server is scheduling noise — but each server's output lands in its own
// slot and its computation touches only its own state, so the merged tick
// is byte-identical for any SimWorkers value (pinned by the equivalence
// tests and the race suite).
package sim

import (
	"sync"
	"sync/atomic"

	"matrix/internal/core"
	"matrix/internal/gameserver"
	"matrix/internal/id"
	"matrix/internal/netem"
	"matrix/internal/protocol"
	"matrix/internal/scratch"
)

// actionKind tags one buffered phase-B routing action.
type actionKind uint8

const (
	// actCore routes a batch of Matrix-server envelopes
	// (serverOut.coreEnvs[lo:hi]) through routeCoreEnvelopes.
	actCore actionKind = iota + 1
	// actClient delivers one message to a client (netem-judged first).
	actClient
)

// tickAction is one phase-B routing action. Actions preserve the exact
// emission order of the serial path: a game update's Matrix fallout routes
// before the next envelope's client delivery, just as the inline loop did.
type tickAction struct {
	kind   actionKind
	client id.ClientID // actClient: destination client
	msg    protocol.Message
	lo, hi int // actCore: slice bounds into serverOut.coreEnvs
}

// serverOut is one server's buffered phase-A fallout, reused across ticks.
// Only the worker that claimed the server writes it during phase A; phase B
// consumes it on the stepping goroutine.
type serverOut struct {
	actions  []tickAction
	coreEnvs []core.Envelope
	gsErrs   int64 // gs processing errors, merged into errors/gs
	coreErrs int64 // core handling errors, merged into errors/core

	actBuf scratch.Buf[tickAction]
	envBuf scratch.Buf[core.Envelope]
}

// reset readies the slot for a new phase A.
func (o *serverOut) reset() {
	o.actions = o.actBuf.Take()
	o.coreEnvs = o.envBuf.Take()
	o.gsErrs, o.coreErrs = 0, 0
}

// release returns the consumed buffers for reuse, clearing message
// pointers so a burst tick's envelopes are not pinned until the next one.
func (o *serverOut) release() {
	o.actBuf.Done(o.actions)
	o.envBuf.Done(o.coreEnvs)
	o.actions, o.coreEnvs = nil, nil
}

// ensureEngine sizes the per-server output slots and per-worker buffers.
// Cheap when already sized; called once per Step so a restored sim (which
// skips Start) and a mid-run SetSimWorkers both work.
func (s *Sim) ensureEngine() int {
	w := s.cfg.SimWorkers
	if w < 1 {
		w = 1
	}
	if n := len(s.order); len(s.outs) < n {
		s.outs = append(s.outs, make([]serverOut, n-len(s.outs))...)
	}
	s.gsBufs.Grow(w)
	return w
}

// liveServers rebuilds s.live: the positions (indexes into s.order) of
// every server that processes this tick. Crashed servers are frozen —
// their queues keep whatever arrived before the crash and resume draining
// on recovery. Computed serially so phase A never reads the netem model.
func (s *Sim) liveServers() {
	s.live = s.live[:0]
	for i, sid := range s.order {
		if s.nm != nil && s.nm.Crashed(sid) {
			continue
		}
		s.live = append(s.live, i)
	}
}

// runPhaseA executes f(worker, orderIndex) for every live server, fanning
// out to at most `workers` goroutines. The atomic cursor makes the
// server→worker assignment scheduling-dependent, which is safe because f
// only touches the claimed server's own state and its own output slot.
func (s *Sim) runPhaseA(workers int, f func(w, idx int)) {
	if workers > len(s.live) {
		workers = len(s.live)
	}
	if workers <= 1 {
		for _, idx := range s.live {
			f(0, idx)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(s.live) {
					return
				}
				f(k, s.live[i])
			}
		}(k)
	}
	wg.Wait()
}

// processNode is phase A of the queue-processing step for one server:
// drain up to the service budget from the inbox and hand the fallout to
// the co-located Matrix server, buffering every outbound envelope. Reads
// and writes only this server's state; the gs envelope buffer belongs to
// the claiming worker (each worker processes its servers sequentially).
func (s *Sim) processNode(w, idx int) {
	n := s.nodes[s.order[idx]]
	out := &s.outs[idx]
	out.reset()

	var envs []gameserver.Envelope
	var err error
	if s.compatAlloc {
		envs, err = n.gs.Process(s.cfg.ServiceRatePerTick)
	} else {
		gsBuf := s.gsBufs.Worker(w)
		envs, err = n.gs.ProcessAppend(gsBuf.Take(), s.cfg.ServiceRatePerTick)
		defer gsBuf.Done(envs)
	}
	if err != nil {
		out.gsErrs++
	}
	for _, e := range envs {
		switch e.Dest {
		case gameserver.DestMatrix:
			if s.tr != nil {
				// The packet reached the co-located Matrix server's handler:
				// the core-handle step in its span. Safe in phase A — the
				// tracer is lock-free and feeds nothing back into the tick.
				if u, isUpdate := e.Msg.(*protocol.GameUpdate); isUpdate {
					s.tr.AsyncStep(tracePidServer(s.order[idx]), "packet", "core-handle",
						packetSpanID(u.Client, u.Seq), s.tr.Now())
				}
			}
			out.appendCore(s, n, e.Msg)
		case gameserver.DestClient:
			out.actions = append(out.actions, tickAction{kind: actClient, client: e.Client, msg: e.Msg})
		}
	}
}

// appendCore hands one message from the game server to its co-located
// Matrix server and buffers the emitted envelopes as one phase-B action.
func (o *serverOut) appendCore(s *Sim, n *node, m protocol.Message) {
	lo := len(o.coreEnvs)
	var err error
	if u, isUpdate := m.(*protocol.GameUpdate); isUpdate && !s.compatAlloc {
		o.coreEnvs, err = n.core.AppendGameUpdate(o.coreEnvs, u)
	} else {
		var envs []core.Envelope
		envs, err = n.core.HandleMessage(id.None, m)
		o.coreEnvs = append(o.coreEnvs, envs...)
	}
	if err != nil {
		// Inactive servers legitimately reject packets in flight across a
		// topology change; count the error, route nothing — exactly what
		// the serial path did.
		o.coreEnvs = o.coreEnvs[:lo]
		o.coreErrs++
		return
	}
	if hi := len(o.coreEnvs); hi > lo {
		o.actions = append(o.actions, tickAction{kind: actCore, lo: lo, hi: hi})
	}
}

// loadReportNode is phase A of the load-report step for one server: build
// the report from the game server and run the core's split/reclaim policy
// on it, buffering the MC traffic it emits. Reads and writes only this
// server's state (the policy clock is read-only during a tick).
func (s *Sim) loadReportNode(idx int) {
	n := s.nodes[s.order[idx]]
	out := &s.outs[idx]
	out.reset()
	if !n.core.Active() {
		return
	}
	rep := n.gs.LoadReport()
	envs, err := n.core.HandleLocalLoad(int(rep.Clients), int(rep.QueueLen))
	if err != nil {
		out.coreErrs++
		return
	}
	lo := len(out.coreEnvs)
	out.coreEnvs = append(out.coreEnvs, envs...)
	if hi := len(out.coreEnvs); hi > lo {
		out.actions = append(out.actions, tickAction{kind: actCore, lo: lo, hi: hi})
	}
}

// routePhaseB merges every live server's buffered fallout in canonical
// server order and routes it. This is the only place the buffered
// envelopes touch shared state — the coordinator, peer servers, clients,
// the netem model and its per-link RNG streams — so one canonical order
// (registration order, then emission order within a server) governs every
// order-sensitive effect regardless of how phase A was scheduled.
func (s *Sim) routePhaseB() {
	for _, idx := range s.live {
		sid := s.order[idx]
		out := &s.outs[idx]
		if out.gsErrs > 0 {
			s.reg.Counter("errors/gs").Add(out.gsErrs)
		}
		if out.coreErrs > 0 {
			s.reg.Counter("errors/core").Add(out.coreErrs)
		}
		for _, a := range out.actions {
			switch a.kind {
			case actCore:
				s.routeCoreEnvelopes(sid, out.coreEnvs[a.lo:a.hi])
			case actClient:
				if s.nm != nil && s.impair(netem.ServerEndpoint(sid), netem.ClientEndpoint(a.client), netemToClient, a.msg) {
					continue
				}
				s.deliverToClient(a.client, a.msg)
			}
		}
		out.release()
	}
}
