package sim

import (
	"testing"

	"matrix/internal/game"
	"matrix/internal/geom"
)

// stepTestConfig is a small hotspot run that still splits, so the step
// primitives are exercised across a topology change.
func stepTestConfig(seed int64) Config {
	return Config{
		Profile:         game.Bzflag(),
		World:           geom.R(0, 0, 1000, 1000),
		Seed:            seed,
		DurationSeconds: 30,
		MaxServers:      4,
		BasePopulation:  30,
		Script: game.Script{
			{At: 5, Kind: game.EventJoin, Count: 150, Center: geom.Pt(750, 250), Spread: 80, Tag: "hot"},
			{At: 20, Kind: game.EventLeave, Count: 150, Tag: "hot"},
		},
		LoadPolicy: smallPolicy(),
	}
}

// TestStepPrimitivesMatchRun drives one sim with Run and an identical one
// with the exported Start/Step/Done/Finish loop: the results must be
// byte-identical (Run is a thin wrapper, not a second code path).
func TestStepPrimitivesMatchRun(t *testing.T) {
	ran, err := mustNew(t, stepTestConfig(17)).Run()
	if err != nil {
		t.Fatal(err)
	}

	s := mustNew(t, stepTestConfig(17))
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	steps := 0
	for !s.Done() {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
		steps++
	}
	stepped := s.Finish()

	// 30s at the default 0.1s tick = 301 steps (both endpoints simulated).
	if steps != 301 {
		t.Errorf("steps = %d, want 301", steps)
	}
	if got, want := stepped.Fingerprint(), ran.Fingerprint(); got != want {
		t.Errorf("stepped result differs from Run result:\n--- stepped\n%s\n--- run\n%s", got, want)
	}
	// Finish is memoized: repeat calls must not re-aggregate (double
	// counting) — they return the same Result.
	if s.Finish() != stepped {
		t.Error("second Finish returned a different Result")
	}
}

// TestStepOrdering checks the primitive misuse errors.
func TestStepOrdering(t *testing.T) {
	s := mustNew(t, stepTestConfig(1))
	if err := s.Step(); err == nil {
		t.Error("Step before Start must fail")
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err == nil {
		t.Error("second Start must fail")
	}
	for !s.Done() {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Step(); err == nil {
		t.Error("Step after Done must fail")
	}
}

// TestNowAdvances checks the virtual-time accessor pooled runners use for
// progress and partial-run inspection.
func TestNowAdvances(t *testing.T) {
	cfg := stepTestConfig(1)
	cfg.DurationSeconds = 2
	s := mustNew(t, cfg)
	if s.Done() {
		t.Fatal("Done before Start")
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	var last float64 = -1
	for !s.Done() {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
		if s.Now() < last {
			t.Fatalf("Now went backwards: %v after %v", s.Now(), last)
		}
		last = s.Now()
	}
	if last != 2.0 {
		t.Errorf("final Now = %v, want 2.0", last)
	}
}

func mustNew(t *testing.T, cfg Config) *Sim {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
