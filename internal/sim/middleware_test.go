package sim

import (
	"strings"
	"testing"
)

// mwTestConfig is the step-test workload with the admission chain turned
// on and tuned to bite: 2 updates/sec per client against bzflag's 5/sec
// offered rate, a shed threshold far below the load policy's overload
// queue, and a service rate slow enough that the join burst backs the
// hotspot's queue up past it.
func mwTestConfig(seed int64) Config {
	cfg := stepTestConfig(seed)
	cfg.ServiceRatePerTick = 40
	cfg.Middleware = &MiddlewareConfig{
		RateLimitPerSec: 2,
		RateLimitBurst:  2,
		ShedQueue:       20,
	}
	return cfg
}

// TestMiddlewareCountsAndFingerprint pins the chain's observable effect:
// both admission counters fire under the hotspot workload, the fingerprint
// grows a middleware line, and a chain-free run of the same seed keeps its
// historical fingerprint (no line, different trajectory).
func TestMiddlewareCountsAndFingerprint(t *testing.T) {
	res, err := mustNew(t, mwTestConfig(17)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.MiddlewareActive {
		t.Error("MiddlewareActive not set on a chain-enabled run")
	}
	if res.RateLimited == 0 {
		t.Error("rate limiter never fired under a 5/sec workload capped at 2/sec")
	}
	if res.AdmissionShed == 0 {
		t.Error("shed queue never fired under the join burst")
	}
	if !strings.Contains(res.Fingerprint(), "middleware ratelimited=") {
		t.Error("fingerprint missing the middleware line")
	}

	plain, err := mustNew(t, stepTestConfig(17)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.Fingerprint(), "middleware") {
		t.Error("chain-free fingerprint grew a middleware line")
	}
}

// TestMiddlewareFingerprintWorkerInvariant is the determinism leg of the
// admission chain: every judge point runs on the stepping goroutine, so
// the shedding trajectory — and with it the fingerprint — must be
// byte-identical between the serial path and a worker pool.
func TestMiddlewareFingerprintWorkerInvariant(t *testing.T) {
	cfg := mwTestConfig(23)
	want := runWithWorkers(t, cfg, 1)
	if !strings.Contains(want, "middleware ratelimited=") {
		t.Fatal("middleware line missing; the invariance check would be vacuous")
	}
	for _, w := range []int{2, 8} {
		if got := runWithWorkers(t, cfg, w); got != want {
			t.Errorf("SimWorkers=%d fingerprint diverges from serial:\n--- serial\n%.400s\n--- workers=%d\n%.400s", w, want, w, got)
		}
	}
}

// TestMiddlewareSnapshotRoundTrip pauses a chain-enabled run mid-flight,
// captures it, restores, and finishes: the fingerprint must match the
// uninterrupted run's. This pins the limiter-bucket state (NodeState.
// Limiter) and the admission counters through the snapshot round trip —
// a dropped bucket would refill a client's burst allowance and change
// every count downstream.
func TestMiddlewareSnapshotRoundTrip(t *testing.T) {
	cfg := mwTestConfig(17)
	want, err := mustNew(t, cfg).Run()
	if err != nil {
		t.Fatal(err)
	}

	s := mustNew(t, cfg)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	for !s.Done() && s.NextTime() < 15 {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	st, err := s.CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreWith(st, RestoreOptions{SimWorkers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for !restored.Done() {
		if err := restored.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if got := restored.Finish().Fingerprint(); got != want.Fingerprint() {
		t.Errorf("restored run diverges from uninterrupted run:\n--- uninterrupted\n%.400s\n--- restored\n%.400s", want.Fingerprint(), got)
	}
}

// TestMiddlewareConfigValidation rejects nonsense knobs at New time, in
// line with the rest of Config's parse-time validation.
func TestMiddlewareConfigValidation(t *testing.T) {
	for name, mw := range map[string]*MiddlewareConfig{
		"negative-rate":  {RateLimitPerSec: -1},
		"negative-queue": {ShedQueue: -5},
	} {
		cfg := stepTestConfig(1)
		cfg.Middleware = mw
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: New accepted %+v", name, mw)
		}
	}
}
