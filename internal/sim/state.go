// Snapshot support: State is a Sim's complete serializable image, and
// RestoreSim rebuilds a Sim that continues byte-identically to the captured
// run (fingerprint-verified by internal/snapshot's tests).
//
// Every collection in State is a deterministically ordered slice — node
// order is the registration order, clients and ghosts sort by ID, delayed
// buckets sort by due tick — so encoding the same State twice produces
// byte-identical output. Protocol messages held in queues serialize as wire
// frames (the codec the transports already pin with golden tests).
//
// The DTOs live here, next to the fields they mirror; internal/snapshot
// wraps State in a versioned envelope and owns the file format.
package sim

import (
	"errors"
	"fmt"
	"maps"
	"slices"
	"time"

	"matrix/internal/clock"
	"matrix/internal/coordinator"
	"matrix/internal/core"
	"matrix/internal/game"
	"matrix/internal/gameclient"
	"matrix/internal/gameserver"
	"matrix/internal/id"
	"matrix/internal/metrics"
	"matrix/internal/middleware"
	"matrix/internal/netem"
	"matrix/internal/policy"
	"matrix/internal/protocol"
)

// ClientState is one synthetic player inside a State.
type ClientState struct {
	Client    gameclient.State
	Mover     game.MoverState
	Tag       string
	Assigned  id.ServerID
	Acc       float64
	Alive     bool
	HelloAt   float64
	RedirAt   float64
	RedirOpen bool
}

// NodeState is one server slot inside a State.
type NodeState struct {
	Server id.ServerID
	Core   *core.State
	Game   *gameserver.State
	// Limiter is the server's middleware rate-limiter image (per-client
	// token buckets, sorted by client). Omitted when empty so middleware-
	// free snapshots re-encode byte-identically to their history.
	Limiter []middleware.BucketState `json:",omitempty"`
}

// DelayedEntry is one in-flight netem-delayed message.
type DelayedEntry struct {
	FromServer id.ServerID
	FromClient id.ClientID
	ToServer   id.ServerID
	ToClient   id.ClientID
	Kind       uint8
	Frame      []byte
}

// DelayedBucket holds the messages due at one tick, in send order.
type DelayedBucket struct {
	DueTick int
	Entries []DelayedEntry
}

// GhostState is one pending ghost client (lost despawn awaiting expiry).
type GhostState struct {
	Client    id.ClientID
	DroppedAt float64
}

// CheckpointState is one server's periodic checkpoint.
type CheckpointState struct {
	Server  id.ServerID
	TakenAt float64
	Core    *core.State
	Game    *gameserver.State
}

// RejoinState is one client reconnecting after a server restart.
type RejoinState struct {
	Client id.ClientID
	Since  float64
}

// SkipState is one client's latency-window skip count.
type SkipState struct {
	Client id.ClientID
	Skip   int
}

// CountersState mirrors the scalar accumulators of Result that are live
// during a run (the rest are derived at Finish).
type CountersState struct {
	PeakServers     int
	Redirects       uint64
	ClientSeconds   float64
	NetemActive     bool
	NetemLost       uint64
	NetemSevered    uint64
	NetemDelayed    uint64
	GhostsExpired   uint64
	Restarts        uint64
	RecoveryRejoins uint64
	// The middleware counters are omitted when zero, so snapshots captured
	// before the admission chain existed re-encode byte-identically.
	MiddlewareActive bool   `json:",omitempty"`
	RateLimited      uint64 `json:",omitempty"`
	AdmissionShed    uint64 `json:",omitempty"`
}

// State is a Sim's complete serializable image between two ticks.
type State struct {
	Config      Config
	Tick        int
	RNG         uint64
	Gen         id.GeneratorState
	Coordinator *coordinator.State
	Nodes       []NodeState
	Clients     []ClientState

	Registry      metrics.RegistryState
	Latency       []float64
	SwitchLatency []float64
	RecoveryGap   []float64
	Events        []TopologyEvent
	Counters      CountersState
	ActivePrev    []id.ServerID
	LatSkip       []SkipState
	LatWindowed   bool

	Netem       *netem.ModelState
	Delayed     []DelayedBucket
	Ghosts      []GhostState
	LoseState   []id.ServerID
	Checkpoints []CheckpointState
	Rejoins     []RejoinState
}

// CaptureState snapshots the simulation between two ticks. The returned
// State shares no mutable memory with the Sim: the run may continue (or the
// State may seed several restored runs) without either affecting the other.
// Valid after Start; the usual points are mid-run (between Step calls) or
// after Done.
func (s *Sim) CaptureState() (*State, error) {
	if !s.started {
		return nil, errors.New("sim: capture before Start")
	}
	st := &State{
		Config: s.cfg,
		Tick:   s.tick,
		RNG:    s.rng.state,
		Gen:    s.gen.State(),

		Registry:      s.reg.State(),
		Latency:       s.lat.Samples(),
		SwitchLatency: s.swLat.Samples(),
		RecoveryGap:   s.recGap.Samples(),
		Events:        append([]TopologyEvent(nil), s.events...),
		LatWindowed:   s.latWindowed,
		Counters: CountersState{
			PeakServers:     s.res.PeakServers,
			Redirects:       s.res.Redirects,
			ClientSeconds:   s.res.ClientSeconds,
			NetemActive:     s.res.NetemActive,
			NetemLost:       s.res.NetemLost,
			NetemSevered:    s.res.NetemSevered,
			NetemDelayed:    s.res.NetemDelayed,
			GhostsExpired:   s.res.GhostsExpired,
			Restarts:        s.res.Restarts,
			RecoveryRejoins: s.res.RecoveryRejoins,

			MiddlewareActive: s.res.MiddlewareActive,
			RateLimited:      s.res.RateLimited,
			AdmissionShed:    s.res.AdmissionShed,
		},
	}
	// The worker count is an execution knob that never affects results:
	// captured state is identical whatever pool the run used, and a
	// restored run picks its own (RestoreOptions.SimWorkers).
	st.Config.SimWorkers = 0
	st.Coordinator = s.mc.CaptureState()

	for _, sid := range s.order {
		n := s.nodes[sid]
		cs, err := n.core.CaptureState()
		if err != nil {
			return nil, fmt.Errorf("sim: capture %v core: %w", sid, err)
		}
		gs, err := n.gs.CaptureState()
		if err != nil {
			return nil, fmt.Errorf("sim: capture %v game server: %w", sid, err)
		}
		ns := NodeState{Server: sid, Core: cs, Game: gs}
		if l := s.mwLim[sid]; l != nil {
			ns.Limiter = l.State()
		}
		st.Nodes = append(st.Nodes, ns)
	}

	for _, cid := range sortedClientIDs(s.clients) {
		sc := s.clients[cid]
		st.Clients = append(st.Clients, ClientState{
			Client:    sc.cl.State(),
			Mover:     sc.mover.State(),
			Tag:       sc.tag,
			Assigned:  sc.assigned,
			Acc:       sc.acc,
			Alive:     sc.alive,
			HelloAt:   sc.helloAt,
			RedirAt:   sc.redirAt,
			RedirOpen: sc.redirOpen,
		})
	}

	for _, sid := range s.order {
		if s.activePrev[sid] {
			st.ActivePrev = append(st.ActivePrev, sid)
		}
	}
	for _, cid := range sortedClientIDs(s.latSkip) {
		st.LatSkip = append(st.LatSkip, SkipState{Client: cid, Skip: s.latSkip[cid]})
	}

	if s.nm != nil {
		ns := s.nm.State()
		st.Netem = &ns

		dues := make([]int, 0, len(s.nq))
		for due := range s.nq {
			dues = append(dues, due)
		}
		slices.Sort(dues)
		for _, due := range dues {
			bucket := DelayedBucket{DueTick: due}
			for _, e := range s.nq[due] {
				frame, err := protocol.Marshal(e.msg)
				if err != nil {
					return nil, fmt.Errorf("sim: capture delayed %v: %w", e.msg.MsgType(), err)
				}
				bucket.Entries = append(bucket.Entries, DelayedEntry{
					FromServer: e.from.Server,
					FromClient: e.from.Client,
					ToServer:   e.to.Server,
					ToClient:   e.to.Client,
					Kind:       uint8(e.kind),
					Frame:      frame,
				})
			}
			st.Delayed = append(st.Delayed, bucket)
		}

	}

	// Crash-recovery bookkeeping is independent of whether emulation is
	// active yet: a netem-free warmup accrues checkpoints that a branched
	// tail's crash events will need.
	for _, cid := range sortedClientIDs(s.ghosts) {
		st.Ghosts = append(st.Ghosts, GhostState{Client: cid, DroppedAt: s.ghosts[cid]})
	}
	for _, sid := range sortedServerIDs(s.loseState) {
		st.LoseState = append(st.LoseState, sid)
	}
	for _, sid := range s.order {
		if chk := s.checkpoints[sid]; chk != nil {
			st.Checkpoints = append(st.Checkpoints, CheckpointState{
				Server: sid, TakenAt: chk.takenAt, Core: chk.core, Game: chk.game,
			})
		}
	}
	for _, cid := range sortedClientIDs(s.rejoinSince) {
		st.Rejoins = append(st.Rejoins, RejoinState{Client: cid, Since: s.rejoinSince[cid]})
	}
	return st, nil
}

// RestoreOptions lets a restored run diverge from the captured one at or
// after the snapshot point — the branching-sweep primitive.
type RestoreOptions struct {
	// Script, when non-nil, replaces the captured config's script. Every
	// event strictly before the snapshot time must match the captured
	// script exactly (those events already executed); events at or after
	// it may differ freely.
	Script game.Script
	// DurationSeconds, when positive, overrides the captured run length.
	// It must not cut the run shorter than the snapshot point.
	DurationSeconds float64
	// SimWorkers, when positive, sets the restored run's intra-sim worker
	// pool (snapshots never record one — the worker count cannot affect
	// results, so the restored run continues byte-identically to the
	// captured one under any value).
	SimWorkers int
	// Policy, when non-empty, names the decision policy for the restored
	// run — the policy-sweep branching primitive: one warmup fans out into
	// one tail per rival. Naming a different policy than the captured run
	// swaps in fresh instances (their internal state starts empty and the
	// captured policy state is discarded); naming the same policy, or
	// leaving this empty, restores the captured policy state and the run
	// continues byte-identically.
	Policy string
}

// Restore rebuilds a simulation from a captured state; the state is not
// retained and may seed any number of restores.
func Restore(st *State) (*Sim, error) {
	return RestoreWith(st, RestoreOptions{})
}

// RestoreWith rebuilds a simulation from a captured state, optionally
// replacing the script tail and run length (see RestoreOptions). The
// restored run continues byte-identically to the captured one when the
// options are empty.
func RestoreWith(st *State, opts RestoreOptions) (*Sim, error) {
	cfg := st.Config
	snapTime := float64(st.Tick) * cfg.TickSeconds
	if opts.Script != nil {
		if err := scriptPrefixesMatch(cfg.Script, opts.Script, snapTime); err != nil {
			return nil, err
		}
		cfg.Script = opts.Script
	}
	if opts.DurationSeconds > 0 {
		cfg.DurationSeconds = opts.DurationSeconds
	}
	if opts.SimWorkers > 0 {
		cfg.SimWorkers = opts.SimWorkers
	}
	// A policy swap drops the captured policy state everywhere (coordinator,
	// per-server trackers, checkpoints): the new policy starts fresh at the
	// snapshot point, exactly as if it had observed nothing yet.
	dropPolicyState := false
	if opts.Policy != "" && policy.Normalize(opts.Policy) != policy.Normalize(cfg.Policy) {
		cfg.Policy = opts.Policy
		dropPolicyState = true
	}
	cfg, err := cfg.sanitized()
	if err != nil {
		return nil, err
	}
	if int(cfg.DurationSeconds/cfg.TickSeconds+0.5)+1 < st.Tick {
		return nil, errors.New("sim: restored duration ends before the snapshot point")
	}

	s := &Sim{
		cfg:         cfg,
		clk:         clock.NewVirtual(time.Unix(0, 0)),
		nodes:       make(map[id.ServerID]*node),
		clients:     make(map[id.ClientID]*simClient),
		reg:         metrics.NewRegistryFromState(st.Registry),
		lat:         metrics.NewHistogramFromSamples(st.Latency),
		swLat:       metrics.NewHistogramFromSamples(st.SwitchLatency),
		recGap:      metrics.NewHistogramFromSamples(st.RecoveryGap),
		activePrev:  make(map[id.ServerID]bool),
		latSkip:     make(map[id.ClientID]int),
		ghosts:      make(map[id.ClientID]float64),
		loseState:   make(map[id.ServerID]bool),
		checkpoints: make(map[id.ServerID]*nodeCheckpoint),
		rejoinSince: make(map[id.ClientID]float64),
		rngSeed:     cfg.Seed,
		started:     true,
		tick:        st.Tick,
		latWindowed: st.LatWindowed,
	}
	s.initCadence()
	s.rng = &mulberryRand{state: st.RNG}
	s.gen.SetState(st.Gen)
	s.now = float64(st.Tick) * s.dt
	// Advance the virtual clock tick by tick's worth in one jump: Time
	// addition is exact integer nanosecond arithmetic, so k single-tick
	// advances equal one k-tick advance.
	s.clk.Advance(time.Duration(st.Tick) * time.Duration(s.dt*float64(time.Second)))

	mcPol, err := policy.New(cfg.Policy)
	if err != nil {
		return nil, err
	}
	mcCfg := coordinator.Config{World: cfg.World, Static: cfg.Static, Policy: mcPol}
	s.mc, err = coordinator.New(mcCfg)
	if err != nil {
		return nil, err
	}
	if st.Coordinator == nil {
		return nil, errors.New("sim: state has no coordinator")
	}
	mcState := st.Coordinator
	if dropPolicyState && len(mcState.PolicyState) > 0 {
		cp := *mcState
		cp.PolicyState = nil
		mcState = &cp
	}
	if err := s.mc.RestoreState(mcState); err != nil {
		return nil, err
	}

	if cfg.Middleware.Enabled() {
		s.mwLim = make(map[id.ServerID]*middleware.RateLimiter)
		s.res.MiddlewareActive = true
	}

	for _, ns := range st.Nodes {
		if ns.Core == nil || ns.Game == nil {
			return nil, fmt.Errorf("sim: node %v state incomplete", ns.Server)
		}
		reply := &protocol.RegisterReply{Server: ns.Server, Bounds: ns.Core.Bounds, World: cfg.World}
		pol, err := policy.New(cfg.Policy)
		if err != nil {
			return nil, err
		}
		cs, err := core.NewServer(core.Config{Load: cfg.LoadPolicy, Clock: s.clk, Policy: pol}, reply, cfg.Profile.Radius)
		if err != nil {
			return nil, err
		}
		coreState := ns.Core
		if dropPolicyState && len(coreState.PolicyState) > 0 {
			cp := *coreState
			cp.PolicyState = nil
			coreState = &cp
		}
		if err := cs.RestoreState(coreState); err != nil {
			return nil, fmt.Errorf("sim: restore %v core: %w", ns.Server, err)
		}
		gs, err := gameserver.New(gameserver.Config{
			Server:       ns.Server,
			Bounds:       ns.Game.Bounds,
			Radius:       cfg.Profile.Radius,
			MaxQueue:     cfg.MaxQueue,
			ResolveOwner: cs.ResolveOwner,
		})
		if err != nil {
			return nil, err
		}
		if err := gs.RestoreState(ns.Game); err != nil {
			return nil, fmt.Errorf("sim: restore %v game server: %w", ns.Server, err)
		}
		s.nodes[ns.Server] = &node{core: cs, gs: gs}
		s.order = append(s.order, ns.Server)
		if s.mwLim != nil && len(ns.Limiter) > 0 {
			s.limiterFor(ns.Server).SetState(ns.Limiter)
		}
	}

	for _, cst := range st.Clients {
		cl, err := gameclient.NewFromState(cst.Client, s.clk)
		if err != nil {
			return nil, fmt.Errorf("sim: restore client %v: %w", cst.Client.ID, err)
		}
		s.clients[cst.Client.ID] = &simClient{
			cl:        cl,
			mover:     game.NewMoverFromState(cfg.Profile, cfg.World, cst.Mover),
			tag:       cst.Tag,
			assigned:  cst.Assigned,
			acc:       cst.Acc,
			alive:     cst.Alive,
			helloAt:   cst.HelloAt,
			redirAt:   cst.RedirAt,
			redirOpen: cst.RedirOpen,
		}
	}

	s.events = append([]TopologyEvent(nil), st.Events...)
	s.res.PeakServers = st.Counters.PeakServers
	s.res.Redirects = st.Counters.Redirects
	s.res.ClientSeconds = st.Counters.ClientSeconds
	s.res.NetemActive = st.Counters.NetemActive
	s.res.NetemLost = st.Counters.NetemLost
	s.res.NetemSevered = st.Counters.NetemSevered
	s.res.NetemDelayed = st.Counters.NetemDelayed
	s.res.GhostsExpired = st.Counters.GhostsExpired
	s.res.Restarts = st.Counters.Restarts
	s.res.RecoveryRejoins = st.Counters.RecoveryRejoins
	s.res.MiddlewareActive = st.Counters.MiddlewareActive
	s.res.RateLimited = st.Counters.RateLimited
	s.res.AdmissionShed = st.Counters.AdmissionShed
	for _, sid := range st.ActivePrev {
		s.activePrev[sid] = true
	}
	for _, sk := range st.LatSkip {
		s.latSkip[sk.Client] = sk.Skip
	}

	switch {
	case st.Netem != nil:
		s.nm = netem.NewModelFromState(*st.Netem)
		s.nq = make(map[int][]netemEntry)
		for _, bucket := range st.Delayed {
			entries := make([]netemEntry, 0, len(bucket.Entries))
			for _, e := range bucket.Entries {
				m, err := protocol.Unmarshal(e.Frame)
				if err != nil {
					return nil, fmt.Errorf("sim: restore delayed frame: %w", err)
				}
				entries = append(entries, netemEntry{
					from: netem.Endpoint{Server: e.FromServer, Client: e.FromClient},
					to:   netem.Endpoint{Server: e.ToServer, Client: e.ToClient},
					kind: netemDest(e.Kind),
					msg:  m,
				})
			}
			s.nq[bucket.DueTick] = entries
		}
	case cfg.Netem.Enabled() || s.script.HasImpairment():
		// The captured run never activated emulation, but the (possibly
		// replaced) script introduces it after the snapshot point — the
		// branching case of a clean warmup fanning into impaired tails.
		// This matches a cold run of the full script: its model would have
		// existed from t=0 but, with a zero link config and no events yet,
		// would have made no draws and held no link state.
		ncfg := cfg.Netem
		if ncfg.Seed == 0 {
			ncfg.Seed = cfg.Seed
		}
		s.nm = netem.NewModel(ncfg)
		s.nq = make(map[int][]netemEntry)
		s.res.NetemActive = true
	}
	for _, g := range st.Ghosts {
		s.ghosts[g.Client] = g.DroppedAt
	}
	for _, sid := range st.LoseState {
		s.loseState[sid] = true
	}
	for _, chk := range st.Checkpoints {
		coreChk := chk.Core
		if dropPolicyState && coreChk != nil && len(coreChk.PolicyState) > 0 {
			cp := *coreChk
			cp.PolicyState = nil
			coreChk = &cp
		}
		s.checkpoints[chk.Server] = &nodeCheckpoint{takenAt: chk.TakenAt, core: coreChk, game: chk.Game}
	}
	for _, r := range st.Rejoins {
		s.rejoinSince[r.Client] = r.Since
	}
	return s, nil
}

// scriptPrefixesMatch verifies that every event strictly before cutoff is
// identical in both scripts (after time-sorting, the order the simulator
// executes them in).
func scriptPrefixesMatch(captured, replacement game.Script, cutoff float64) error {
	a := captured.PrefixBefore(cutoff)
	b := replacement.PrefixBefore(cutoff)
	if len(a) != len(b) {
		return fmt.Errorf("sim: replacement script has %d events before t=%g, captured run had %d", len(b), cutoff, len(a))
	}
	for i := range a {
		if !eventsEqual(a[i], b[i]) {
			return fmt.Errorf("sim: replacement script diverges before the snapshot point (event %d, t=%g)", i, a[i].At)
		}
	}
	return nil
}

// eventsEqual compares two script events field by field.
func eventsEqual(a, b game.Event) bool {
	if a.At != b.At || a.Kind != b.Kind || a.Count != b.Count ||
		a.Center != b.Center || a.Spread != b.Spread || a.Tag != b.Tag ||
		a.Impair != b.Impair {
		return false
	}
	return slices.Equal(a.Servers, b.Servers)
}

// sortedClientIDs returns a client-keyed map's keys, sorted.
func sortedClientIDs[V any](m map[id.ClientID]V) []id.ClientID {
	return slices.Sorted(maps.Keys(m))
}

// sortedServerIDs returns a server-keyed map's keys, sorted.
func sortedServerIDs(m map[id.ServerID]bool) []id.ServerID {
	return slices.Sorted(maps.Keys(m))
}
