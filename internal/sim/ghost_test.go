package sim

import (
	"strings"
	"testing"

	"matrix/internal/game"
	"matrix/internal/geom"
	"matrix/internal/netem"
)

// ghostConfig drops every data-plane packet, so the scripted leave's
// despawns are all lost and every leaver becomes a ghost.
func ghostConfig(expiry float64) Config {
	return Config{
		Profile:            game.Bzflag(),
		World:              geom.R(0, 0, 300, 300),
		Seed:               5,
		DurationSeconds:    40,
		MaxServers:         1,
		ServiceRatePerTick: 500,
		BasePopulation:     10,
		GhostExpirySeconds: expiry,
		Netem:              netem.Config{Link: netem.LinkConfig{Loss: 1.0}},
		Script: game.Script{
			{At: 2, Kind: game.EventJoin, Count: 15, Center: geom.Pt(150, 150), Spread: 40, Tag: "crowd"},
			{At: 10, Kind: game.EventLeave, Count: 15, Tag: "crowd"},
		},
	}
}

// TestGhostClientsExpire pins the ghost fix: clients whose despawn the
// network lost are culled after the idle timeout, the server's population
// returns to truth, and the cull counter joins the fingerprint.
func TestGhostClientsExpire(t *testing.T) {
	t.Parallel()
	s, err := New(ghostConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	// Hellos are control-plane (never randomly lost), so everyone joins;
	// at t=10 the crowd leaves but every despawn is eaten by the loss
	// model. Just after the leave the server still holds the ghosts.
	for !s.Done() && s.Now() < 12 {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	sid := s.order[0]
	_, gs, _ := s.Node(sid)
	if got := gs.ClientCount(); got != 25 {
		t.Fatalf("before expiry: server holds %d clients, want 25 (10 base + 15 ghosts)", got)
	}
	res, err := func() (*Result, error) {
		for !s.Done() {
			if err := s.Step(); err != nil {
				return nil, err
			}
		}
		return s.Finish(), nil
	}()
	if err != nil {
		t.Fatal(err)
	}
	if got := gs.ClientCount(); got != 10 {
		t.Errorf("after expiry: server holds %d clients, want 10 (ghosts culled)", got)
	}
	if res.GhostsExpired != 15 {
		t.Errorf("GhostsExpired = %d, want 15", res.GhostsExpired)
	}
	if !strings.Contains(res.Fingerprint(), "ghosts=15") {
		t.Error("ghost counter missing from the fingerprint of a netem run")
	}
}

// TestGhostExpiryDisabled keeps the pre-fix behavior available: a negative
// timeout leaves ghosts in place (the documented observable consequence).
func TestGhostExpiryDisabled(t *testing.T) {
	t.Parallel()
	s, err := New(ghostConfig(-1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	_, gs, _ := s.Node(s.order[0])
	if got := gs.ClientCount(); got != 25 {
		t.Errorf("with expiry disabled: server holds %d clients, want 25 (ghosts retained)", got)
	}
	if res.GhostsExpired != 0 {
		t.Errorf("GhostsExpired = %d, want 0", res.GhostsExpired)
	}
}
