package sim

import (
	"fmt"
	"strings"

	"matrix/internal/metrics"
)

// Fingerprint renders a canonical, byte-comparable digest of the result:
// every aggregate, every topology event and every series point. Two runs
// of the same Config produce identical fingerprints regardless of whether
// they executed serially or on a worker pool — the determinism contract
// the sweep engine relies on.
func (r *Result) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "peak=%d final=%d fwdB=%d fwdP=%d dropped=%d delivered=%d redirects=%d overlap=%.6f clientsec=%.6f\n",
		r.PeakServers, r.FinalServers, r.ForwardedBytes, r.ForwardedPackets,
		r.DroppedPackets, r.DeliveredUpdates, r.Redirects, r.OverlapAreaLast, r.ClientSeconds)
	// The netem line appears only when emulation ran, so netem-free runs
	// keep their historical fingerprints while any fixed (seed, netem
	// config) pair pins its loss and delay behavior byte-for-byte.
	if r.NetemActive {
		fmt.Fprintf(&b, "netem lost=%d severed=%d delayed=%d ghosts=%d\n",
			r.NetemLost, r.NetemSevered, r.NetemDelayed, r.GhostsExpired)
		fmt.Fprintf(&b, "recovery restarts=%d rejoins=%d gap=%s\n",
			r.Restarts, r.RecoveryRejoins, histFingerprint(r.RecoveryGap))
	}
	// Likewise the middleware line joins only when the admission chain ran,
	// keeping chain-free fingerprints byte-identical to their history.
	if r.MiddlewareActive {
		fmt.Fprintf(&b, "middleware ratelimited=%d shed=%d\n", r.RateLimited, r.AdmissionShed)
	}
	for _, e := range r.Events {
		fmt.Fprintf(&b, "event t=%.3f %s server=%v\n", e.Time, e.Kind, e.Server)
	}
	fmt.Fprintf(&b, "latency %s\n", histFingerprint(r.Latency))
	fmt.Fprintf(&b, "switch-latency %s\n", histFingerprint(r.SwitchLatency))
	for _, name := range r.Metrics.SeriesNames() {
		times, values := r.Metrics.Series(name).Points()
		fmt.Fprintf(&b, "series %s", name)
		for i := range times {
			fmt.Fprintf(&b, " %g:%g", times[i], values[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// histFingerprint summarizes a histogram order-independently: quantiles
// are computed on the sorted samples, and forcing the sort first also
// makes the mean a sum over a canonical order (float addition is not
// commutative-associative at the last ulp, and finish() collects client
// latencies in map order).
func histFingerprint(h *metrics.Histogram) string {
	if h == nil {
		h = &metrics.Histogram{}
	}
	h.Quantile(0) // force the sort
	return h.Summary()
}
