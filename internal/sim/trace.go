// Tracing for the deterministic simulator: tick-phase profiling slices,
// worker-occupancy counters and cross-server packet spans, emitted into an
// attached internal/trace ring.
//
// The contract (pinned by TestTracingPreservesFingerprint and the alloc
// tests): tracing is OFF by default, costs zero allocations when off, and
// never influences the simulation — no RNG draws, no ordering changes, no
// registry series. Result.Fingerprint is byte-identical with and without a
// tracer attached. The engine histograms tracing feeds live in the result
// registry but are histogram instruments, which the fingerprint never
// renders (it walks series only), and they are registered only while a
// tracer is attached so untraced golden snapshots stay byte-stable too.
//
// The trace clock is virtual-first: each tick anchors the timeline at the
// tick's virtual time (tick N starts at N*dt seconds = N*dt*1e6 µs) and
// offsets within the tick advance in wall microseconds. Phase slices
// therefore nest inside their tick's virtual window and still show real
// compute durations; packet spans stretch across the virtual ticks a packet
// was actually in flight. A tick whose wall compute exceeds the virtual
// tick length (dt) paints past its window — cosmetic only.
package sim

import (
	"fmt"
	"time"

	"matrix/internal/id"
	"matrix/internal/trace"
)

// Trace pid/tid layout: the engine is pid 1 (tid 0 = stepping goroutine,
// tid 1..W = phase-A workers); server sid renders as pid 10+sid so packet
// spans hop between visibly distinct process tracks.
const (
	tracePidEngine     = 1
	tracePidServerBase = 10
)

// tracePidServer maps a server to its trace process id.
func tracePidServer(sid id.ServerID) int32 { return tracePidServerBase + int32(sid) }

// packetSpanID correlates one client packet across every server that
// touches it: the client id in the high bits, the packet sequence in the
// low 24 (a sim client emits far fewer than 16M updates).
func packetSpanID(c id.ClientID, seq id.PacketSeq) uint64 {
	return uint64(c)<<24 | uint64(seq)&0xFFFFFF
}

// SetTracer attaches (or, with nil, detaches) a tracer to the run. Call it
// before stepping; the sim installs its virtual-first clock into tr and
// names the engine and server tracks. Tracing is observation only: the
// run's Result.Fingerprint is byte-identical either way.
func (s *Sim) SetTracer(tr *trace.Tracer) {
	s.tr = tr
	if tr == nil {
		return
	}
	tr.SetClock(s.traceNow)
	tr.NameProcess(tracePidEngine, "engine")
	tr.NameThread(tracePidEngine, 0, "step")
	w := s.cfg.SimWorkers
	if w < 1 {
		w = 1
	}
	for k := 1; k <= w; k++ {
		tr.NameThread(tracePidEngine, int32(k), fmt.Sprintf("worker-%d", k))
	}
	for _, sid := range s.order {
		tr.NameProcess(tracePidServer(sid), sid.String())
	}
}

// Tracer returns the attached tracer (nil when tracing is off).
func (s *Sim) Tracer() *trace.Tracer { return s.tr }

// traceNow is the sim's trace clock: the current tick's virtual start plus
// the wall time spent inside the tick so far. trTickBase/trAnchor are
// written by the stepping goroutine before phase-A workers start, so worker
// reads are ordered by the goroutine-start happens-before edge.
func (s *Sim) traceNow() int64 {
	return s.trTickBase + time.Since(s.trAnchor).Microseconds()
}

// traceTickStart re-anchors the trace clock at the top of a tick and
// returns the tick's start timestamp.
func (s *Sim) traceTickStart(workers int) int64 {
	if workers < 1 {
		workers = 1
	}
	s.trTickBase = int64(s.now * 1e6)
	s.trAnchor = time.Now()
	if len(s.trBusy) < workers {
		s.trBusy = append(s.trBusy, make([]int64, workers-len(s.trBusy))...)
	}
	for i := range s.trBusy {
		s.trBusy[i] = 0
	}
	return s.trTickBase
}

// traceProcessNode wraps processNode with a per-server phase-A slice on the
// claiming worker's track and accumulates per-worker busy time for the
// occupancy measure. Installed only while tracing.
func (s *Sim) traceProcessNode(w, idx int) {
	t0 := s.traceNow()
	s.processNode(w, idx)
	d := s.traceNow() - t0
	s.tr.SliceArg(tracePidEngine, int32(w+1), "server-process", t0, d, "server", int64(s.order[idx]))
	s.reg.Histogram("engine/server-process-us").Observe(float64(d))
	s.trBusy[w] += d
}

// tracePhaseA closes the parallel-phase slice: total wall duration, the
// phase-A histogram, and worker occupancy (busy worker-µs over workers ×
// phase wall-µs — the live counterpart of the paper-era 77.8% parallel
// fraction). With one worker occupancy is 1 by construction.
func (s *Sim) tracePhaseA(start int64, workers int) {
	end := s.traceNow()
	dur := end - start
	s.tr.Slice(tracePidEngine, 0, "phase-a", start, dur)
	s.reg.Histogram("engine/phase-a-ms").Observe(float64(dur) / 1000)
	occ := 1.0
	if workers > 1 && dur > 0 {
		var busy int64
		for _, b := range s.trBusy {
			busy += b
		}
		occ = float64(busy) / (float64(workers) * float64(dur))
		if occ > 1 {
			occ = 1
		}
	}
	s.reg.Histogram("engine/worker-occupancy").Observe(occ)
	s.tr.Counter(tracePidEngine, "worker-occupancy-pct", end, int64(occ*100))
}

// tracePhaseB closes the serial merge slice and its histogram.
func (s *Sim) tracePhaseB(start int64) {
	dur := s.traceNow() - start
	s.tr.Slice(tracePidEngine, 0, "phase-b", start, dur)
	s.reg.Histogram("engine/phase-b-ms").Observe(float64(dur) / 1000)
}

// traceLoadReport closes the load-report stage slice (both phases).
func (s *Sim) traceLoadReport(start int64) {
	dur := s.traceNow() - start
	s.tr.Slice(tracePidEngine, 0, "load-report", start, dur)
	s.reg.Histogram("engine/load-report-ms").Observe(float64(dur) / 1000)
}

// traceTickEnd closes the tick slice and its histogram.
func (s *Sim) traceTickEnd(start int64) {
	dur := s.traceNow() - start
	s.tr.Slice(tracePidEngine, 0, "tick", start, dur)
	s.reg.Histogram("engine/tick-ms").Observe(float64(dur) / 1000)
}
