package sim

import "testing"

// TestBatchedPathFingerprintIdentical is the determinism contract of the
// allocation-lean refactor: the same seed driven through the legacy
// allocating APIs (Process / HandleGameUpdate) and through the
// buffer-reusing append APIs (ProcessAppend / AppendGameUpdate) must
// produce byte-identical fingerprints. The scenario splits under load, so
// the comparison covers forwarding, migration and topology changes, not
// just quiet traffic.
func TestBatchedPathFingerprintIdentical(t *testing.T) {
	run := func(compat bool) string {
		s, err := New(stepTestConfig(11))
		if err != nil {
			t.Fatal(err)
		}
		s.compatAlloc = compat
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Fingerprint()
	}
	legacy := run(true)
	batched := run(false)
	if legacy != batched {
		t.Errorf("fingerprints diverge between the allocating and batched paths:\nlegacy:\n%s\nbatched:\n%s", legacy, batched)
	}
	if events := run(false); events != batched {
		t.Errorf("batched path is not self-deterministic")
	}
}
