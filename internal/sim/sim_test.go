package sim

import (
	"testing"
	"time"

	"matrix/internal/game"
	"matrix/internal/geom"
	"matrix/internal/load"
	"matrix/internal/staticpart"
)

// smallPolicy scales the paper's thresholds down so integration tests can
// trigger splits with tens instead of hundreds of clients.
func smallPolicy() load.Config {
	return load.Config{
		OverloadClients:  60,
		UnderloadClients: 30,
		OverloadQueue:    400,
		SplitCooldown:    2 * time.Second,
		ReclaimDwell:     3 * time.Second,
		ReclaimHeadroom:  0.8,
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("zero config must fail (invalid profile)")
	}
	cfg := Config{Profile: game.Bzflag(), World: geom.R(0, 0, 100, 100)}
	if _, err := New(cfg); err == nil {
		t.Error("zero duration must fail")
	}
	bad := game.Script{{At: 5, Kind: game.EventJoin, Count: 1}, {At: 1, Kind: game.EventLeave, Count: 1}}
	cfg.DurationSeconds = 10
	cfg.Script = bad
	if _, err := New(cfg); err == nil {
		t.Error("invalid script must fail")
	}
}

func TestQuietRunSingleServer(t *testing.T) {
	s, err := New(Config{
		Profile:         game.Bzflag(),
		World:           geom.R(0, 0, 1000, 1000),
		Seed:            1,
		DurationSeconds: 30,
		MaxServers:      4,
		BasePopulation:  40,
		LoadPolicy:      smallPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakServers != 1 {
		t.Errorf("quiet run used %d servers, want 1", res.PeakServers)
	}
	if len(res.Events) != 0 {
		t.Errorf("quiet run produced topology events: %+v", res.Events)
	}
	if res.Latency.Count() == 0 {
		t.Error("no latency samples collected")
	}
	if res.DeliveredUpdates == 0 {
		t.Error("no updates delivered")
	}
	if err := s.MC().Validate(); err != nil {
		t.Errorf("MC invariants: %v", err)
	}
	// All 40 clients are on the single active server.
	_, gs, ok := s.Node(1)
	if !ok {
		t.Fatal("node 1 missing")
	}
	if got := gs.ClientCount(); got != 40 {
		t.Errorf("clients on server 1 = %d, want 40", got)
	}
}

func TestHotspotSplitsAndReclaims(t *testing.T) {
	world := geom.R(0, 0, 1000, 1000)
	script := game.Script{
		{At: 5, Kind: game.EventJoin, Count: 120, Center: geom.Pt(800, 300), Spread: 60, Tag: "hot"},
		{At: 40, Kind: game.EventLeave, Count: 60, Tag: "hot"},
		{At: 50, Kind: game.EventLeave, Count: 60, Tag: "hot"},
	}
	s, err := New(Config{
		Profile:         game.Bzflag(),
		World:           world,
		Seed:            2,
		DurationSeconds: 90,
		MaxServers:      6,
		BasePopulation:  20,
		Script:          script,
		LoadPolicy:      smallPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakServers < 2 {
		t.Fatalf("hotspot never split: peak=%d events=%+v", res.PeakServers, res.Events)
	}
	splits, reclaims := 0, 0
	for _, e := range res.Events {
		switch e.Kind {
		case "split":
			splits++
		case "reclaim":
			reclaims++
		}
	}
	if splits == 0 {
		t.Error("no splits recorded")
	}
	if reclaims == 0 {
		t.Errorf("no reclaims after drain: events=%+v final=%d", res.Events, res.FinalServers)
	}
	if res.FinalServers >= res.PeakServers {
		t.Errorf("servers not consolidated: final=%d peak=%d", res.FinalServers, res.PeakServers)
	}
	if err := s.MC().Validate(); err != nil {
		t.Errorf("MC invariants: %v", err)
	}
	// Inter-server traffic must have flowed (hotspot near no boundary at
	// start, but splits create boundaries through it).
	if res.ForwardedPackets == 0 {
		t.Error("no inter-Matrix forwards despite splits")
	}
	if res.Redirects == 0 {
		t.Error("no client redirects despite splits")
	}
	if res.SwitchLatency.Count() == 0 {
		t.Error("no switch latencies measured")
	}
}

func TestClientConservation(t *testing.T) {
	world := geom.R(0, 0, 1000, 1000)
	script := game.Script{
		{At: 5, Kind: game.EventJoin, Count: 100, Center: geom.Pt(700, 700), Spread: 50, Tag: "hot"},
	}
	s, err := New(Config{
		Profile:         game.Quake2(),
		World:           world,
		Seed:            3,
		DurationSeconds: 60,
		MaxServers:      5,
		BasePopulation:  30,
		Script:          script,
		LoadPolicy:      smallPolicy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Every client alive at the end must be connected somewhere, and the
	// per-server totals must add up (no client lost or duplicated by the
	// migrations).
	total := 0
	for _, part := range s.MC().Partitions() {
		_, gs, ok := s.Node(part.Owner)
		if !ok {
			t.Fatalf("active server %v has no node", part.Owner)
		}
		total += gs.ClientCount()
	}
	if total != 130 {
		t.Errorf("clients across servers = %d, want 130", total)
	}
}

func TestStaticBaselineFailsUnderHotspot(t *testing.T) {
	world := geom.R(0, 0, 1000, 1000)
	tiles, err := staticpart.Grid(world, 2)
	if err != nil {
		t.Fatal(err)
	}
	script := game.Script{
		{At: 5, Kind: game.EventJoin, Count: 120, Center: geom.Pt(800, 300), Spread: 150, Tag: "hot"},
	}
	// Visibility small relative to the crowd spread: the paper's asymptotic
	// analysis requires overlap populations to stay a small fraction of the
	// total for Matrix to win, so the comparison runs in that regime.
	profile := game.Bzflag()
	profile.Radius = 25
	const duration = 120.0
	mk := func(static []geom.Rect, maxServers int) *Result {
		s, err := New(Config{
			Profile:            profile,
			World:              world,
			Seed:               4,
			DurationSeconds:    duration,
			MaxServers:         maxServers,
			ServiceRatePerTick: 50, // capacity ≈ 100 clients; splits fire at 60
			MaxQueue:           500,
			BasePopulation:     20,
			Script:             script,
			Static:             static,
			LoadPolicy:         smallPolicy(),
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	staticRes := mk(tiles, 2)
	matrixRes := mk(nil, 10)

	if staticRes.PeakServers != 2 {
		t.Errorf("static peak = %d, want 2 fixed", staticRes.PeakServers)
	}
	if len(staticRes.Events) != 0 {
		t.Errorf("static produced topology events: %+v", staticRes.Events)
	}
	if matrixRes.PeakServers <= 2 {
		t.Errorf("matrix never outgrew static: peak=%d", matrixRes.PeakServers)
	}
	// The paper's claim: static "just fails" — it keeps dropping packets
	// for as long as the hotspot persists — while Matrix absorbs the load
	// with extra servers and recovers completely.
	lastWindow := func(r *Result) float64 {
		s := r.Metrics.Series("drops/total")
		return s.At(duration) - s.At(duration-30)
	}
	staticLate, matrixLate := lastWindow(staticRes), lastWindow(matrixRes)
	if staticLate < 1000 {
		t.Errorf("static baseline not in sustained failure: %v drops in last 30s", staticLate)
	}
	if matrixLate != 0 {
		t.Errorf("matrix still dropping at steady state: %v drops in last 30s", matrixLate)
	}
	if matrixRes.DroppedPackets >= staticRes.DroppedPackets {
		t.Errorf("matrix dropped %d vs static %d; matrix must drop less overall",
			matrixRes.DroppedPackets, staticRes.DroppedPackets)
	}
	// Steady-state queue: static pinned at the cap, matrix drained.
	staticQ, matrixQ := 0.0, 0.0
	for _, s := range staticRes.Metrics.SeriesByPrefix("queue/") {
		if v := s.At(duration); v > staticQ {
			staticQ = v
		}
	}
	for _, s := range matrixRes.Metrics.SeriesByPrefix("queue/") {
		if v := s.At(duration); v > matrixQ {
			matrixQ = v
		}
	}
	if staticQ < 450 {
		t.Errorf("static queue not saturated at end: %v", staticQ)
	}
	if matrixQ > 50 {
		t.Errorf("matrix queue not drained at end: %v", matrixQ)
	}
}

func TestDeterminism(t *testing.T) {
	world := geom.R(0, 0, 1000, 1000)
	script := game.Script{
		{At: 5, Kind: game.EventJoin, Count: 80, Center: geom.Pt(800, 300), Spread: 50, Tag: "hot"},
		{At: 30, Kind: game.EventLeave, Count: 80, Tag: "hot"},
	}
	run := func() *Result {
		s, err := New(Config{
			Profile:         game.Daimonin(),
			World:           world,
			Seed:            42,
			DurationSeconds: 50,
			MaxServers:      4,
			BasePopulation:  25,
			Script:          script,
			LoadPolicy:      smallPolicy(),
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.PeakServers != b.PeakServers {
		t.Errorf("peak differs: %d vs %d", a.PeakServers, b.PeakServers)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Errorf("event %d differs: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
	if a.ForwardedPackets != b.ForwardedPackets {
		t.Errorf("forwarded packets differ: %d vs %d", a.ForwardedPackets, b.ForwardedPackets)
	}
	if a.DeliveredUpdates != b.DeliveredUpdates {
		t.Errorf("delivered updates differ: %d vs %d", a.DeliveredUpdates, b.DeliveredUpdates)
	}
}

func TestSeriesRecorded(t *testing.T) {
	s, err := New(Config{
		Profile:         game.Bzflag(),
		World:           geom.R(0, 0, 500, 500),
		Seed:            5,
		DurationSeconds: 10,
		MaxServers:      2,
		BasePopulation:  10,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	clientSeries := res.Metrics.SeriesByPrefix("clients/")
	if len(clientSeries) == 0 {
		t.Fatal("no client series recorded")
	}
	if clientSeries[0].Len() < 10 {
		t.Errorf("series too short: %d points", clientSeries[0].Len())
	}
	active := res.Metrics.Series("servers/active")
	if active.Len() == 0 || active.Max() != 1 {
		t.Errorf("servers/active series wrong: len=%d max=%v", active.Len(), active.Max())
	}
}
