package sim

import (
	"bytes"
	"testing"

	"matrix/internal/game"
	"matrix/internal/geom"
	"matrix/internal/trace"
)

// hotspotTraceConfig is a small split-producing run: the hotspot forces a
// split, so packets cross server boundaries and the trace gets peer hops.
func hotspotTraceConfig(workers int) Config {
	return Config{
		Profile:         game.Bzflag(),
		World:           geom.R(0, 0, 1000, 1000),
		Seed:            2,
		DurationSeconds: 45,
		MaxServers:      6,
		BasePopulation:  20,
		Script: game.Script{
			{At: 5, Kind: game.EventJoin, Count: 120, Center: geom.Pt(800, 300), Spread: 60, Tag: "hot"},
		},
		LoadPolicy: smallPolicy(),
		SimWorkers: workers,
	}
}

// TestTracingPreservesFingerprint pins the acceptance criterion: attaching
// a tracer leaves Result.Fingerprint byte-identical to the untraced run,
// serially and on a worker pool.
func TestTracingPreservesFingerprint(t *testing.T) {
	run := func(workers int, tr *trace.Tracer) string {
		s, err := New(hotspotTraceConfig(workers))
		if err != nil {
			t.Fatal(err)
		}
		s.SetTracer(tr)
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Fingerprint()
	}
	base := run(1, nil)
	if got := run(1, trace.New(1<<16)); got != base {
		t.Errorf("serial traced fingerprint differs from untraced run")
	}
	if got := run(4, trace.New(1<<16)); got != base {
		t.Errorf("4-worker traced fingerprint differs from untraced serial run")
	}
}

// TestTraceContent checks the sim actually populates the ring: tick-phase
// slices on the engine track, per-server slices on worker tracks, engine
// histograms in the registry, and at least one cross-server packet span
// (an async span carrying a peer-forward step).
func TestTraceContent(t *testing.T) {
	s, err := New(hotspotTraceConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(1 << 18)
	s.SetTracer(tr)
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakServers < 2 {
		t.Fatalf("hotspot never split (peak=%d); no cross-server traffic to trace", res.PeakServers)
	}

	slices := map[string]int{}
	asyncByID := map[uint64]map[string]bool{}
	for _, e := range tr.Events() {
		switch e.Ph {
		case trace.PhaseSlice:
			slices[e.Name]++
		case trace.PhaseAsyncBegin, trace.PhaseAsyncInstant, trace.PhaseAsyncEnd:
			m := asyncByID[e.ID]
			if m == nil {
				m = map[string]bool{}
				asyncByID[e.ID] = m
			}
			m[e.Name] = true
		}
	}
	for _, want := range []string{"tick", "phase-a", "phase-b", "load-report", "server-process"} {
		if slices[want] == 0 {
			t.Errorf("no %q slices in trace (slices: %v)", want, slices)
		}
	}
	crossServer := 0
	for _, names := range asyncByID {
		if names["packet"] && names["peer-forward"] {
			crossServer++
		}
	}
	if crossServer == 0 {
		t.Errorf("no cross-server packet span (async spans: %d)", len(asyncByID))
	}

	// The engine histograms exist and saw every tick.
	ticks := res.Metrics.Histogram("engine/tick-ms").Count()
	if ticks == 0 {
		t.Error("engine/tick-ms histogram empty")
	}
	if got := res.Metrics.Histogram("engine/phase-a-ms").Count(); got != ticks {
		t.Errorf("phase-a-ms count = %d, want %d (one per tick)", got, ticks)
	}
	if got := res.Metrics.Histogram("engine/worker-occupancy").Count(); got != ticks {
		t.Errorf("worker-occupancy count = %d, want %d", got, ticks)
	}
	if occ := res.Metrics.Histogram("engine/worker-occupancy").Quantile(0.5); occ <= 0 || occ > 1 {
		t.Errorf("median worker occupancy %g outside (0, 1]", occ)
	}

	// The export is structurally valid Chrome trace JSON.
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := trace.ValidateJSON(buf.Bytes()); err != nil {
		t.Errorf("trace export invalid: %v", err)
	}
}

// TestUntracedRegistryHasNoEngineHistograms guards the golden-snapshot
// contract: without a tracer the engine histograms must not appear in the
// registry at all (snapshot capture serializes every registered histogram).
func TestUntracedRegistryHasNoEngineHistograms(t *testing.T) {
	cfg := hotspotTraceConfig(1)
	cfg.DurationSeconds = 5
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range res.Metrics.State().Histograms {
		t.Errorf("untraced run registered histogram %q", h.Name)
	}
}
