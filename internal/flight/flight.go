// Package flight is the simulator's flight recorder: a compact columnar
// time series of domain-level measurements (per-server load, region count,
// imbalance statistics, protocol counters) sampled once per report epoch,
// plus a decision audit log that captures every split grant/denial,
// reclaim, placement and restart together with the exact inputs that
// produced it.
//
// The recorder follows the same contract discipline as internal/trace:
//
//  1. Off means off. A nil *Recorder is the disabled recorder — every
//     method is nil-safe and returns immediately — so call sites hold a
//     possibly-nil pointer and record unconditionally.
//
//  2. Observation only. Recording never influences simulation results:
//     attaching a recorder must not change Result.Fingerprint (pinned by
//     test in internal/sim).
//
//  3. Deterministic bytes. Every export (CSV, JSON, timeline) is
//     byte-identical for byte-identical runs, for any -sim-workers value:
//     the simulator feeds the recorder from the stepping goroutine only,
//     and the writers sort columns and format floats canonically.
//
// Unlike the tracer's fixed ring, the recorder keeps everything: a sample
// is a handful of float64 appends per epoch, so even long runs stay small
// (hours of virtual time ≈ a few MB).
package flight

// Recorder accumulates rows of named columns plus an ordered decision log.
// It is single-goroutine by contract: the simulator drives it from the
// stepping goroutine, mirrors of live state must add their own locking.
type Recorder struct {
	ticks []int64
	times []float64
	cols  map[string][]float64
	names []string // insertion order; exports sort
	decs  []Decision
}

// New returns an empty Recorder.
func New() *Recorder {
	return &Recorder{cols: make(map[string][]float64)}
}

// KV is one named input to a decision, in the order the decider read them.
type KV struct {
	Key string  `json:"k"`
	Val float64 `json:"v"`
}

// Decision is one audited control-plane action: a split grant or denial, a
// reclaim, a placement/adoption, a drain, or a crash restart — recorded with
// the inputs (load readings, thresholds, dwell state, queue depth) the
// decider saw at that instant.
type Decision struct {
	Tick int64   `json:"tick"`
	Time float64 `json:"time"`
	// Kind is "split", "reclaim", "restart", "adopt" or "drain".
	Kind string `json:"kind"`
	// Granted is false for denials (Reason says why).
	Granted bool `json:"granted"`
	// Server is the deciding/affected server; Child the counterpart (the
	// new child of a split, the merged child of a reclaim, the adopting
	// spare). Zero when not applicable.
	Server int64 `json:"server"`
	Child  int64 `json:"child,omitempty"`
	// Corr is the correlation ID stamped on the control frames this
	// decision produced, 0 when none were sent (denials).
	Corr   uint64 `json:"corr,omitempty"`
	Reason string `json:"reason,omitempty"`
	// Policy names the decision policy that judged this action (split and
	// reclaim audits only); Inputs are the exact values it read.
	Policy string `json:"policy,omitempty"`
	Inputs []KV   `json:"inputs,omitempty"`
}

// Sample begins a new row at (tick, now). Subsequent Set calls fill the
// row's columns; unset columns export as zero.
func (r *Recorder) Sample(tick int64, now float64) {
	if r == nil {
		return
	}
	r.ticks = append(r.ticks, tick)
	r.times = append(r.times, now)
}

// Set stores v in the current row's column name, creating the column on
// first use (earlier rows backfill as zero). No-op before the first Sample.
func (r *Recorder) Set(name string, v float64) {
	if r == nil || len(r.ticks) == 0 {
		return
	}
	col, ok := r.cols[name]
	if !ok {
		r.names = append(r.names, name)
	}
	row := len(r.ticks) - 1
	for len(col) < row {
		col = append(col, 0)
	}
	if len(col) == row {
		col = append(col, v)
	} else {
		col[row] = v
	}
	r.cols[name] = col
}

// Record appends one decision to the audit log.
func (r *Recorder) Record(d Decision) {
	if r == nil {
		return
	}
	r.decs = append(r.decs, d)
}

// Rows reports how many samples have been taken.
func (r *Recorder) Rows() int {
	if r == nil {
		return 0
	}
	return len(r.ticks)
}

// Columns returns the recorded column names in insertion order. The
// returned slice is shared; callers must not mutate it.
func (r *Recorder) Columns() []string {
	if r == nil {
		return nil
	}
	return r.names
}

// Column returns column name's values padded to the row count, or nil for
// an unknown column.
func (r *Recorder) Column(name string) []float64 {
	if r == nil {
		return nil
	}
	col, ok := r.cols[name]
	if !ok {
		return nil
	}
	for len(col) < len(r.ticks) {
		col = append(col, 0)
	}
	r.cols[name] = col
	return col
}

// Decisions returns the audit log in record order. The returned slice is
// shared; callers must not mutate it.
func (r *Recorder) Decisions() []Decision {
	if r == nil {
		return nil
	}
	return r.decs
}
