package flight

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"matrix/internal/trace"
)

// The nil Recorder is the disabled recorder: every method must be safe.
func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Sample(1, 0.1)
	r.Set("x", 1)
	r.Record(Decision{Kind: "split"})
	if r.Rows() != 0 || r.Columns() != nil || r.Column("x") != nil || r.Decisions() != nil {
		t.Fatal("nil recorder leaked state")
	}
	r.MergeTrace(trace.New(16))
}

// Columns created late backfill earlier rows with zeros, and rows that
// never set a column export it as zero.
func TestSparseColumnsPadZero(t *testing.T) {
	r := New()
	r.Sample(0, 0)
	r.Set("a", 1)
	r.Sample(10, 1)
	r.Set("a", 2)
	r.Set("b", 7) // first appearance on row 1
	r.Sample(20, 2)
	r.Set("a", 3) // b unset on row 2
	if got := r.Column("b"); len(got) != 3 || got[0] != 0 || got[1] != 7 || got[2] != 0 {
		t.Fatalf("column b = %v, want [0 7 0]", got)
	}
	if got := r.Column("a"); len(got) != 3 || got[2] != 3 {
		t.Fatalf("column a = %v", got)
	}
}

// build records the same logical data with the given column insertion
// order; exports must not depend on that order.
func build(order []string) *Recorder {
	r := New()
	vals := map[string]float64{"clients/server-1": 12, "queue/server-1": 3, "servers/active": 1}
	for row := 0; row < 3; row++ {
		r.Sample(int64(row*10), float64(row))
		for _, n := range order {
			r.Set(n, vals[n]+float64(row))
		}
	}
	r.Record(Decision{Tick: 10, Time: 1, Kind: "split", Granted: true, Server: 1, Child: 2, Corr: 5,
		Inputs: []KV{{"clients", 412}, {"overload", 300}}})
	r.Record(Decision{Tick: 20, Time: 2, Kind: "reclaim", Granted: false, Server: 1, Child: 2,
		Reason: "child still has children", Inputs: []KV{{"child_clients", 88}}})
	return r
}

func exportAll(t *testing.T, r *Recorder) (csv, js, tl string) {
	t.Helper()
	var b1, b2, b3 bytes.Buffer
	if err := r.WriteCSV(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteTimeline(&b3); err != nil {
		t.Fatal(err)
	}
	return b1.String(), b2.String(), b3.String()
}

// Exports are canonical: the same recording written from different column
// insertion orders is byte-identical.
func TestExportsCanonical(t *testing.T) {
	a := build([]string{"clients/server-1", "queue/server-1", "servers/active"})
	b := build([]string{"servers/active", "queue/server-1", "clients/server-1"})
	ac, aj, at := exportAll(t, a)
	bc, bj, bt := exportAll(t, b)
	if ac != bc {
		t.Errorf("CSV depends on insertion order:\n%s\nvs\n%s", ac, bc)
	}
	if aj != bj {
		t.Errorf("JSON depends on insertion order")
	}
	if at != bt {
		t.Errorf("timeline depends on insertion order")
	}
	if !strings.HasPrefix(ac, "tick,time,clients/server-1,queue/server-1,servers/active\n") {
		t.Errorf("CSV header not sorted: %q", strings.SplitN(ac, "\n", 2)[0])
	}
}

// The JSON artifact round-trips with the documented schema.
func TestWriteJSONSchema(t *testing.T) {
	_, js, _ := exportAll(t, build([]string{"clients/server-1", "queue/server-1", "servers/active"}))
	var doc struct {
		Schema    string               `json:"schema"`
		Rows      int                  `json:"rows"`
		Ticks     []int64              `json:"ticks"`
		Columns   map[string][]float64 `json:"columns"`
		Decisions []Decision           `json:"decisions"`
	}
	if err := json.Unmarshal([]byte(js), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != Schema || doc.Rows != 3 || len(doc.Ticks) != 3 || len(doc.Columns) != 3 {
		t.Fatalf("unexpected doc header: %+v", doc)
	}
	if len(doc.Decisions) != 2 || doc.Decisions[0].Corr != 5 || doc.Decisions[1].Reason == "" {
		t.Fatalf("decisions did not round-trip: %+v", doc.Decisions)
	}
}

// The timeline names the decision, its verdict, the correlation ID and
// every recorded input.
func TestTimelineReadable(t *testing.T) {
	_, _, tl := exportAll(t, build([]string{"servers/active"}))
	for _, want := range []string{
		"split", "granted", "server=1", "child=2", "corr=5", "clients=412", "overload=300",
		"reclaim", "denied", `reason="child still has children"`,
	} {
		if !strings.Contains(tl, want) {
			t.Errorf("timeline missing %q:\n%s", want, tl)
		}
	}
}

// Merged traces stay loadable Chrome trace-event JSON: counter samples for
// every column and an instant per decision.
func TestMergeTraceValid(t *testing.T) {
	r := build([]string{"clients/server-1", "queue/server-1", "servers/active"})
	tr := trace.New(1024)
	r.MergeTrace(tr)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := trace.ValidateJSON(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"ph":"C"`, "clients/server-1", `"split"`, `"reclaim-denied"`, `"corr":5`} {
		if !strings.Contains(out, want) {
			t.Errorf("merged trace missing %q", want)
		}
	}
}
