package flight

import (
	"math"

	"matrix/internal/trace"
)

// TracePid is the process id flight data occupies when merged into a
// Perfetto trace — distinct from the sim engine (1) and the per-server
// processes (10+N), so the counter tracks group under one "flight" lane.
const TracePid = 2

// MergeTrace replays the recording into tr as Perfetto counter tracks (one
// per column, sampled at each row's virtual time) and one instant event per
// audited decision ("split" / "reclaim-denied" / "restart" / …, carrying
// the correlation ID when the decision stamped frames). Timestamps are
// virtual-time microseconds, the same clock the sim tracer uses, so flight
// counters line up under the tick slices. A nil tracer or nil recorder is
// a no-op. Merging happens after the run, off the hot path, so the static-
// name constraint of the live emit path does not apply.
func (r *Recorder) MergeTrace(tr *trace.Tracer) {
	if r == nil || tr == nil {
		return
	}
	tr.NameProcess(TracePid, "flight")
	names := r.sortedNames()
	for i := range r.ticks {
		ts := int64(math.Round(r.times[i] * 1e6))
		for _, n := range names {
			tr.Counter(TracePid, n, ts, int64(math.Round(r.Column(n)[i])))
		}
	}
	for _, d := range r.decs {
		name := d.Kind
		if !d.Granted {
			name = d.Kind + "-denied"
		}
		ts := int64(math.Round(d.Time * 1e6))
		if d.Corr != 0 {
			tr.InstantArg(TracePid, 0, name, ts, "corr", int64(d.Corr))
		} else {
			tr.InstantArg(TracePid, 0, name, ts, "server", d.Server)
		}
	}
}
