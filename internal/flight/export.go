package flight

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// sortedNames returns the column names in canonical (sorted) order, the
// order every export uses so recordings are byte-identical run to run.
func (r *Recorder) sortedNames() []string {
	names := append([]string(nil), r.names...)
	sort.Strings(names)
	return names
}

// WriteCSV renders the time series as CSV: a tick,time header plus one
// column per recorded name in sorted order, one row per sample. Floats use
// the shortest round-trip decimal form, so the bytes are deterministic.
func (r *Recorder) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	names := r.sortedNames()
	bw.WriteString("tick,time")
	for _, n := range names {
		bw.WriteByte(',')
		bw.WriteString(n)
	}
	bw.WriteByte('\n')
	for i := range r.ticks {
		bw.WriteString(strconv.FormatInt(r.ticks[i], 10))
		bw.WriteByte(',')
		bw.WriteString(strconv.FormatFloat(r.times[i], 'g', -1, 64))
		for _, n := range names {
			bw.WriteByte(',')
			bw.WriteString(strconv.FormatFloat(r.Column(n)[i], 'g', -1, 64))
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// jsonDoc is the artifact schema (matrix-flight/1): row-aligned tick/time
// arrays, a name→values column map, and the decision log in record order.
type jsonDoc struct {
	Schema    string               `json:"schema"`
	Rows      int                  `json:"rows"`
	Ticks     []int64              `json:"ticks"`
	Times     []float64            `json:"times"`
	Columns   map[string][]float64 `json:"columns"`
	Decisions []Decision           `json:"decisions"`
}

// Schema is the JSON artifact schema identifier.
const Schema = "matrix-flight/1"

// WriteJSON renders the full recording — series and audit log — as one
// JSON document. encoding/json sorts the column map's keys, so the bytes
// are deterministic.
func (r *Recorder) WriteJSON(w io.Writer) error {
	doc := jsonDoc{
		Schema:    Schema,
		Rows:      r.Rows(),
		Ticks:     r.ticks,
		Times:     r.times,
		Columns:   make(map[string][]float64, len(r.names)),
		Decisions: r.decs,
	}
	if doc.Ticks == nil {
		doc.Ticks = []int64{}
	}
	if doc.Times == nil {
		doc.Times = []float64{}
	}
	if doc.Decisions == nil {
		doc.Decisions = []Decision{}
	}
	for _, n := range r.names {
		doc.Columns[n] = r.Column(n)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// WriteTimeline renders the decision audit as a human-readable timeline,
// one decision per line with its recorded inputs in the order the decider
// read them.
func (r *Recorder) WriteTimeline(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# decision audit: %d decisions\n", len(r.decs))
	for _, d := range r.decs {
		verdict := "granted"
		if !d.Granted {
			verdict = "denied"
		}
		fmt.Fprintf(bw, "t=%.2fs tick=%d %-8s %-7s server=%d", d.Time, d.Tick, d.Kind, verdict, d.Server)
		if d.Child != 0 {
			fmt.Fprintf(bw, " child=%d", d.Child)
		}
		if d.Corr != 0 {
			fmt.Fprintf(bw, " corr=%d", d.Corr)
		}
		if d.Policy != "" {
			fmt.Fprintf(bw, " policy=%s", d.Policy)
		}
		for _, kv := range d.Inputs {
			fmt.Fprintf(bw, " %s=%s", kv.Key, strconv.FormatFloat(kv.Val, 'g', -1, 64))
		}
		if d.Reason != "" {
			fmt.Fprintf(bw, " reason=%q", d.Reason)
		}
		if _, err := fmt.Fprintln(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}
