package coordinator

import (
	"errors"
	"testing"

	"matrix/internal/geom"
	"matrix/internal/id"
	"matrix/internal/protocol"
)

func newTestMC(t *testing.T) *Coordinator {
	t.Helper()
	c, err := New(Config{World: geom.R(0, 0, 100, 100)})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

// register adds a server, failing the test on error.
func register(t *testing.T, c *Coordinator, addr string, radius float64) (*protocol.RegisterReply, []Envelope) {
	t.Helper()
	reply, envs, err := c.Register(addr, radius)
	if err != nil {
		t.Fatalf("Register(%s): %v", addr, err)
	}
	return reply, envs
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty world must be rejected")
	}
	if _, err := New(Config{World: geom.R(0, 0, 1, 1), ExtraRadii: []float64{-1}}); err == nil {
		t.Error("negative extra radius must be rejected")
	}
}

func TestFirstRegistrationOwnsWorld(t *testing.T) {
	c := newTestMC(t)
	reply, envs := register(t, c, "a:1", 5)
	if !reply.Server.Valid() {
		t.Fatal("no server id assigned")
	}
	if !reply.Bounds.Eq(geom.R(0, 0, 100, 100)) {
		t.Errorf("bounds = %v, want whole world", reply.Bounds)
	}
	// Single server: one table envelope with no regions.
	if len(envs) != 1 {
		t.Fatalf("got %d envelopes, want 1", len(envs))
	}
	tab, ok := envs[0].Msg.(*protocol.OverlapTable)
	if !ok {
		t.Fatalf("envelope is %T", envs[0].Msg)
	}
	if len(tab.Regions) != 0 {
		t.Errorf("single-server table has %d regions", len(tab.Regions))
	}
	if got := c.ActiveServers(); len(got) != 1 || got[0] != reply.Server {
		t.Errorf("ActiveServers = %v", got)
	}
}

func TestSecondRegistrationIsSpare(t *testing.T) {
	c := newTestMC(t)
	register(t, c, "a:1", 5)
	reply2, envs2 := register(t, c, "b:2", 5)
	if !reply2.Bounds.Empty() {
		t.Errorf("spare bounds = %v, want empty", reply2.Bounds)
	}
	if len(envs2) != 0 {
		t.Errorf("spare registration produced %d envelopes", len(envs2))
	}
	if c.SpareCount() != 1 {
		t.Errorf("SpareCount = %d", c.SpareCount())
	}
	if got := c.ActiveServers(); len(got) != 1 {
		t.Errorf("ActiveServers = %v", got)
	}
}

func TestSplitGrantsSpareAndBroadcastsTables(t *testing.T) {
	c := newTestMC(t)
	r1, _ := register(t, c, "a:1", 5)
	r2, _ := register(t, c, "b:2", 5)

	envs, err := c.HandleMessage(r1.Server, &protocol.SplitRequest{Server: r1.Server, Clients: 400})
	if err != nil {
		t.Fatalf("split: %v", err)
	}
	var reply *protocol.SplitReply
	var childRange *protocol.RangeUpdate
	tables := map[id.ServerID]*protocol.OverlapTable{}
	for _, e := range envs {
		switch m := e.Msg.(type) {
		case *protocol.SplitReply:
			reply = m
		case *protocol.RangeUpdate:
			if e.To == r2.Server {
				childRange = m
			}
		case *protocol.OverlapTable:
			tables[e.To] = m
		}
	}
	if reply == nil || !reply.Granted {
		t.Fatalf("split not granted: %+v", reply)
	}
	if reply.Child != r2.Server {
		t.Errorf("child = %v, want %v", reply.Child, r2.Server)
	}
	if reply.ChildAddr != "b:2" {
		t.Errorf("child addr = %q", reply.ChildAddr)
	}
	// Split-to-left on a square world: child gets the left half.
	if !reply.Give.Eq(geom.R(0, 0, 50, 100)) || !reply.Keep.Eq(geom.R(50, 0, 100, 100)) {
		t.Errorf("keep=%v give=%v", reply.Keep, reply.Give)
	}
	if childRange == nil || !childRange.Bounds.Eq(reply.Give) {
		t.Errorf("child range update = %+v", childRange)
	}
	// Both actives must get a fresh table naming the other as peer.
	for _, sid := range []id.ServerID{r1.Server, r2.Server} {
		tab, ok := tables[sid]
		if !ok {
			t.Fatalf("no table pushed to %v", sid)
		}
		if len(tab.Regions) != 1 {
			t.Errorf("server %v table has %d regions, want 1 band", sid, len(tab.Regions))
		}
		if len(tab.Peers) != 1 {
			t.Errorf("server %v table has %d peers", sid, len(tab.Peers))
		}
	}
	if c.SpareCount() != 0 {
		t.Errorf("SpareCount = %d after grant", c.SpareCount())
	}
	if c.Splits() != 1 {
		t.Errorf("Splits = %d", c.Splits())
	}
	if err := c.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestSplitDeniedWhenPoolEmpty(t *testing.T) {
	c := newTestMC(t)
	r1, _ := register(t, c, "a:1", 5)
	envs, err := c.HandleMessage(r1.Server, &protocol.SplitRequest{Server: r1.Server, Clients: 400})
	if err != nil {
		t.Fatalf("split: %v", err)
	}
	if len(envs) != 1 {
		t.Fatalf("envelopes = %d", len(envs))
	}
	reply, ok := envs[0].Msg.(*protocol.SplitReply)
	if !ok || reply.Granted {
		t.Fatalf("want denial, got %+v", envs[0].Msg)
	}
	if reply.Reason == "" {
		t.Error("denial must carry a reason")
	}
}

func TestSplitFromUnknownServer(t *testing.T) {
	c := newTestMC(t)
	register(t, c, "a:1", 5)
	_, err := c.HandleMessage(99, &protocol.SplitRequest{Server: 99})
	if !errors.Is(err, ErrUnknownServer) {
		t.Errorf("err = %v", err)
	}
}

func TestReclaimRoundTrip(t *testing.T) {
	c := newTestMC(t)
	r1, _ := register(t, c, "a:1", 5)
	r2, _ := register(t, c, "b:2", 5)
	if _, err := c.HandleMessage(r1.Server, &protocol.SplitRequest{Server: r1.Server, Clients: 400}); err != nil {
		t.Fatal(err)
	}

	envs, err := c.HandleMessage(r1.Server, &protocol.ReclaimRequest{Parent: r1.Server, Child: r2.Server})
	if err != nil {
		t.Fatalf("reclaim: %v", err)
	}
	var reply *protocol.ReclaimReply
	var childRange *protocol.RangeUpdate
	for _, e := range envs {
		switch m := e.Msg.(type) {
		case *protocol.ReclaimReply:
			reply = m
		case *protocol.RangeUpdate:
			if e.To == r2.Server {
				childRange = m
			}
		}
	}
	if reply == nil || !reply.Granted {
		t.Fatalf("reclaim not granted: %+v", reply)
	}
	if !reply.Merged.Eq(geom.R(0, 0, 100, 100)) {
		t.Errorf("merged = %v", reply.Merged)
	}
	if childRange == nil || !childRange.Bounds.Empty() {
		t.Errorf("child must be deactivated with empty bounds: %+v", childRange)
	}
	if c.SpareCount() != 1 {
		t.Errorf("child must return to pool, SpareCount = %d", c.SpareCount())
	}
	if c.Reclaims() != 1 {
		t.Errorf("Reclaims = %d", c.Reclaims())
	}
	// The returned spare is reusable by a later split.
	envs, err = c.HandleMessage(r1.Server, &protocol.SplitRequest{Server: r1.Server, Clients: 500})
	if err != nil {
		t.Fatal(err)
	}
	granted := false
	for _, e := range envs {
		if rep, ok := e.Msg.(*protocol.SplitReply); ok && rep.Granted {
			granted = true
			if rep.Child != r2.Server {
				t.Errorf("recycled child = %v, want %v", rep.Child, r2.Server)
			}
		}
	}
	if !granted {
		t.Error("split after reclaim must reuse the spare")
	}
}

func TestReclaimDenials(t *testing.T) {
	c := newTestMC(t)
	r1, _ := register(t, c, "a:1", 5)
	r2, _ := register(t, c, "b:2", 5)
	r3, _ := register(t, c, "c:3", 5)
	if _, err := c.HandleMessage(r1.Server, &protocol.SplitRequest{Server: r1.Server, Clients: 400}); err != nil {
		t.Fatal(err)
	}
	// r2 is now the child. A non-parent cannot reclaim it.
	envs, err := c.HandleMessage(r3.Server, &protocol.ReclaimRequest{Parent: r3.Server, Child: r2.Server})
	if err != nil {
		t.Fatal(err)
	}
	if rep, ok := envs[0].Msg.(*protocol.ReclaimReply); !ok || rep.Granted {
		t.Error("non-parent reclaim must be denied")
	}
	// Mismatched Parent field must be denied.
	envs, err = c.HandleMessage(r1.Server, &protocol.ReclaimRequest{Parent: r2.Server, Child: r2.Server})
	if err != nil {
		t.Fatal(err)
	}
	if rep, ok := envs[0].Msg.(*protocol.ReclaimReply); !ok || rep.Granted {
		t.Error("parent mismatch must be denied")
	}
	// Unknown child.
	envs, err = c.HandleMessage(r1.Server, &protocol.ReclaimRequest{Parent: r1.Server, Child: 99})
	if err != nil {
		t.Fatal(err)
	}
	if rep, ok := envs[0].Msg.(*protocol.ReclaimReply); !ok || rep.Granted {
		t.Error("unknown child must be denied")
	}
}

func TestLoadReportRelayedToParent(t *testing.T) {
	c := newTestMC(t)
	r1, _ := register(t, c, "a:1", 5)
	r2, _ := register(t, c, "b:2", 5)
	if _, err := c.HandleMessage(r1.Server, &protocol.SplitRequest{Server: r1.Server, Clients: 400}); err != nil {
		t.Fatal(err)
	}
	// Child reports load; parent must receive the relay.
	envs, err := c.HandleMessage(r2.Server, &protocol.LoadReport{Server: r2.Server, Clients: 120, QueueLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != 1 || envs[0].To != r1.Server {
		t.Fatalf("relay envelopes = %+v", envs)
	}
	rep, ok := envs[0].Msg.(*protocol.LoadReport)
	if !ok || rep.Server != r2.Server || rep.Clients != 120 {
		t.Fatalf("relayed = %+v", envs[0].Msg)
	}
	// Root's own report is not relayed anywhere.
	envs, err = c.HandleMessage(r1.Server, &protocol.LoadReport{Server: r1.Server, Clients: 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != 0 {
		t.Errorf("root relay = %+v", envs)
	}
}

func TestNonProximalQuery(t *testing.T) {
	c := newTestMC(t)
	r1, _ := register(t, c, "a:1", 5)
	register(t, c, "b:2", 5)
	if _, err := c.HandleMessage(r1.Server, &protocol.SplitRequest{Server: r1.Server, Clients: 400}); err != nil {
		t.Fatal(err)
	}
	// Query from server 1 about a point deep in server 2's half, with a
	// big radius: server 2 must be in the set.
	envs, err := c.HandleMessage(r1.Server, &protocol.NonProximalQuery{
		Server: r1.Server, Point: geom.Pt(10, 50), Radius: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	reply, ok := envs[0].Msg.(*protocol.NonProximalReply)
	if !ok {
		t.Fatalf("got %T", envs[0].Msg)
	}
	if len(reply.Servers) != 1 {
		t.Fatalf("servers = %v", reply.Servers)
	}
	if len(reply.Peers) != 1 || reply.Peers[0].Addr != "b:2" {
		t.Fatalf("peers = %+v", reply.Peers)
	}
	// Zero radius falls back to the game default.
	envs, err = c.HandleMessage(r1.Server, &protocol.NonProximalQuery{
		Server: r1.Server, Point: geom.Pt(52, 50),
	})
	if err != nil {
		t.Fatal(err)
	}
	reply = envs[0].Msg.(*protocol.NonProximalReply)
	if len(reply.Servers) != 1 {
		t.Errorf("default-radius query servers = %v", reply.Servers)
	}
}

func TestExtraRadiiProduceMultipleTables(t *testing.T) {
	c, err := New(Config{World: geom.R(0, 0, 100, 100), ExtraRadii: []float64{10}})
	if err != nil {
		t.Fatal(err)
	}
	r1, _, err := c.Register("a:1", 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Register("b:2", 5); err != nil {
		t.Fatal(err)
	}
	envs, err := c.HandleMessage(r1.Server, &protocol.SplitRequest{Server: r1.Server, Clients: 400})
	if err != nil {
		t.Fatal(err)
	}
	// Per server: one table for R=5 and one for R=10.
	radiiSeen := map[id.ServerID]map[float64]bool{}
	for _, e := range envs {
		if tab, ok := e.Msg.(*protocol.OverlapTable); ok {
			if radiiSeen[e.To] == nil {
				radiiSeen[e.To] = map[float64]bool{}
			}
			radiiSeen[e.To][tab.Radius] = true
		}
	}
	for sid, radii := range radiiSeen {
		if !radii[5] || !radii[10] {
			t.Errorf("server %v got radii %v, want both 5 and 10", sid, radii)
		}
	}
	if len(radiiSeen) != 2 {
		t.Errorf("tables pushed to %d servers, want 2", len(radiiSeen))
	}
}

func TestRecursiveSplitsProduceFigureTopology(t *testing.T) {
	// Reproduce the paper's Figure 2 narrative: server 1 splits to 2 (half
	// map each), then splits again to 3 (1 and 3 hold 1/4 each).
	c := newTestMC(t)
	r1, _ := register(t, c, "a:1", 5)
	register(t, c, "b:2", 5)
	register(t, c, "c:3", 5)
	if _, err := c.HandleMessage(r1.Server, &protocol.SplitRequest{Server: r1.Server, Clients: 600}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.HandleMessage(r1.Server, &protocol.SplitRequest{Server: r1.Server, Clients: 600}); err != nil {
		t.Fatal(err)
	}
	parts := c.Partitions()
	if len(parts) != 3 {
		t.Fatalf("partitions = %d", len(parts))
	}
	areas := map[id.ServerID]float64{}
	for _, p := range parts {
		areas[p.Owner] = p.Bounds.Area()
	}
	total := 100.0 * 100.0
	if areas[1] != total/4 {
		t.Errorf("server 1 area = %v, want 1/4 of world", areas[1])
	}
	if areas[2] != total/2 {
		t.Errorf("server 2 area = %v, want 1/2 of world", areas[2])
	}
	if areas[3] != total/4 {
		t.Errorf("server 3 area = %v, want 1/4 of world", areas[3])
	}
	if err := c.Validate(); err != nil {
		t.Error(err)
	}
}

func TestRegisterNegativeRadius(t *testing.T) {
	c := newTestMC(t)
	if _, _, err := c.Register("a:1", -5); !errors.Is(err, ErrBadRadius) {
		t.Errorf("err = %v", err)
	}
}

func TestUnexpectedMessage(t *testing.T) {
	c := newTestMC(t)
	r1, _ := register(t, c, "a:1", 5)
	if _, err := c.HandleMessage(r1.Server, &protocol.Ack{}); err == nil {
		t.Error("unexpected message type must error")
	}
}
