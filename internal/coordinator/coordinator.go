// Package coordinator implements the Matrix Coordinator (MC).
//
// The MC is deliberately off the packet fast path: it only acts when the
// world partitioning changes (registration, split, reclamation) and for the
// rare non-proximal interaction queries. Its job is to own the authoritative
// space.Map, compute overlap tables with axis-aligned bounding-box
// arithmetic, and push the updated tables to every Matrix server after each
// topology change (paper §3.2.4).
//
// The Coordinator is a synchronous state machine: every handler returns the
// messages to deliver ("envelopes") instead of performing I/O, so the same
// code is driven by the TCP message pumps in production and by the
// deterministic simulation harness in the evaluation.
package coordinator

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"matrix/internal/clock"
	"matrix/internal/geom"
	"matrix/internal/id"
	"matrix/internal/overlap"
	"matrix/internal/policy"
	"matrix/internal/protocol"
	"matrix/internal/space"
)

// Coordinator errors.
var (
	ErrPoolExhausted = errors.New("coordinator: no spare servers available")
	ErrUnknownServer = errors.New("coordinator: unknown server")
	ErrNotSpare      = errors.New("coordinator: server is not a spare")
	ErrBadRadius     = errors.New("coordinator: radius must be positive")
	ErrNotActive     = errors.New("coordinator: server owns no partition")
)

// Envelope is one message the caller must deliver to a Matrix server.
type Envelope struct {
	To  id.ServerID
	Msg protocol.Message
}

// Config tunes the Coordinator.
type Config struct {
	// World is the full map rectangle of the game.
	World geom.Rect
	// ExtraRadii lists additional visibility radii beyond the game default
	// (the paper's "distinct sets of overlap regions, each for a different
	// R" for exceptional object classes).
	ExtraRadii []float64
	// Static, when non-empty, switches the coordinator into the paper's
	// static-partitioning baseline: the i-th registering server is pinned
	// to Static[i] forever, and all split/reclaim requests are denied.
	// The rectangles must tile World exactly.
	Static []geom.Rect
	// HeartbeatEvery is the interval servers are expected to beat at.
	// Zero disables every health feature (leases, death detection,
	// adoption, drain) — the pre-health behaviour, which the deterministic
	// simulation relies on.
	HeartbeatEvery time.Duration
	// LeaseMisses is how many consecutive missed beats expire a lease.
	// Defaults to 3 when zero.
	LeaseMisses int
	// Clock supplies lease time. Defaults to the wall clock; tests inject
	// a virtual clock to expire leases deterministically.
	Clock clock.Clock
	// Policy decides spare selection and child placement on splits (nil =
	// the default paper policy: FIFO spares, split-to-left). The instance
	// must be exclusive to this coordinator.
	Policy policy.Policy
}

// serverState tracks one registered server.
type serverState struct {
	id      id.ServerID
	addr    string
	radius  float64
	active  bool // owns a partition (vs. spare in the pool)
	clients int

	// Health state, all idle while Config.HeartbeatEvery == 0.
	draining bool      // evacuating its partition after a drain grant
	retired  bool      // drained with exit; never returns to the pool
	dead     bool      // lease expired or control connection dropped
	lastBeat time.Time // instant of the last heartbeat (or registration)
	beats    uint64    // heartbeats received
	cpTick   uint64    // checkpoint tick reported by the last heartbeat
}

// Coordinator is the MC. Safe for concurrent use.
type Coordinator struct {
	mu      sync.Mutex
	cfg     Config
	pol     policy.Policy // never nil; called only under mu
	gen     id.Generator
	m       *space.Map // nil until the first active server registers
	servers map[id.ServerID]*serverState
	spares  []id.ServerID // FIFO resource pool of registered, unassigned servers
	radius  float64       // the game's default visibility radius
	splits  int
	reclaim int

	// Static-baseline state: partitions assigned so far, pending map build.
	staticAssigned []space.Partition

	// Health/remediation state (idle while cfg.HeartbeatEvery == 0).
	checkpoints map[id.ServerID][]byte // last complete checkpoint blob per server
	cpPartial   map[id.ServerID][]byte // in-flight chunked checkpoint uploads
	parked      []id.ServerID          // dead owners awaiting a spare (FIFO)
	deaths      int
	adoptions   int
	drains      int

	// Decision audit state. corr numbers topology decisions (splits,
	// adoptions, drains); every control frame one decision fans out into
	// carries the same value, so a handoff is traceable
	// coordinator→server→client across process traces. decisions is a
	// bounded ring of the most recent decisions for /fleetz. Neither is
	// serialized into State: they are observability, not topology, and the
	// snapshot golden format must not change (a restored coordinator
	// renumbers from zero).
	corr      uint64
	decisions []Decision
}

// maxRecentDecisions bounds the /fleetz decision ring.
const maxRecentDecisions = 64

// Decision is one audited coordinator action, kept in the recent-decisions
// ring and served on /fleetz. Seq is the correlation ID stamped on the
// frames the decision produced (0 for denials, which send none).
type Decision struct {
	Seq     uint64             `json:"seq,omitempty"`
	Kind    string             `json:"kind"` // "split", "reclaim", "adopt", "drain"
	Server  id.ServerID        `json:"server"`
	Child   id.ServerID        `json:"child,omitempty"`
	Granted bool               `json:"granted"`
	Reason  string             `json:"reason,omitempty"`
	Inputs  map[string]float64 `json:"inputs,omitempty"`
	Policy  string             `json:"policy,omitempty"` // policy that decided (split/reclaim only)
}

// nextCorrLocked numbers one granted decision.
func (c *Coordinator) nextCorrLocked() uint64 {
	c.corr++
	return c.corr
}

// recordLocked appends d to the bounded recent-decisions ring.
func (c *Coordinator) recordLocked(d Decision) {
	if len(c.decisions) >= maxRecentDecisions {
		copy(c.decisions, c.decisions[1:])
		c.decisions = c.decisions[:len(c.decisions)-1]
	}
	c.decisions = append(c.decisions, d)
}

// RecentDecisions returns the newest decisions, oldest first (bounded by
// maxRecentDecisions).
func (c *Coordinator) RecentDecisions() []Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Decision(nil), c.decisions...)
}

// New creates a Coordinator for the given world.
func New(cfg Config) (*Coordinator, error) {
	if cfg.World.Empty() {
		return nil, errors.New("coordinator: empty world")
	}
	for _, r := range cfg.ExtraRadii {
		if r <= 0 {
			return nil, fmt.Errorf("%w: %v", ErrBadRadius, r)
		}
	}
	if cfg.HeartbeatEvery < 0 {
		return nil, errors.New("coordinator: negative heartbeat interval")
	}
	if cfg.LeaseMisses < 0 {
		return nil, errors.New("coordinator: negative lease misses")
	}
	pol := cfg.Policy
	if pol == nil {
		var err error
		if pol, err = policy.New(""); err != nil {
			return nil, err
		}
	}
	return &Coordinator{
		cfg:         cfg,
		pol:         pol,
		servers:     make(map[id.ServerID]*serverState),
		checkpoints: make(map[id.ServerID][]byte),
		cpPartial:   make(map[id.ServerID][]byte),
	}, nil
}

// Register adds a server. The first registration becomes the active root
// server owning the whole world; later registrations join the spare pool
// (the paper's "non-Matrix external entity" that supplies available
// servers). The returned envelopes carry the initial overlap tables.
func (c *Coordinator) Register(addr string, radius float64) (*protocol.RegisterReply, []Envelope, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if radius < 0 {
		return nil, nil, fmt.Errorf("%w: %v", ErrBadRadius, radius)
	}
	sid := c.gen.NextServer()
	st := &serverState{id: sid, addr: addr, radius: radius, lastBeat: c.now()}
	c.servers[sid] = st

	if len(c.cfg.Static) > 0 {
		return c.registerStaticLocked(st)
	}

	if c.m == nil {
		m, err := space.NewMap(c.cfg.World, sid)
		if err != nil {
			delete(c.servers, sid)
			return nil, nil, err
		}
		c.m = m
		c.radius = radius
		st.active = true
		reply := &protocol.RegisterReply{Server: sid, Bounds: c.cfg.World, World: c.cfg.World}
		envs, err := c.tableEnvelopesLocked()
		if err != nil {
			return nil, nil, err
		}
		return reply, envs, nil
	}

	// Spare: no partition yet.
	c.spares = append(c.spares, sid)
	reply := &protocol.RegisterReply{Server: sid, Bounds: geom.Rect{}, World: c.cfg.World}
	if c.healthEnabled() && len(c.parked) > 0 {
		// A region is parked waiting for capacity; the new spare adopts it
		// immediately rather than waiting for the next lease tick.
		victim := c.parked[0]
		c.parked = c.parked[1:]
		return reply, c.adoptLocked(victim), nil
	}
	return reply, nil, nil
}

// registerStaticLocked pins registrations to the preset static partitions.
// Once every partition has an owner, the preset map is built and the
// overlap tables go out to everyone.
func (c *Coordinator) registerStaticLocked(st *serverState) (*protocol.RegisterReply, []Envelope, error) {
	idx := len(c.staticAssigned)
	if idx >= len(c.cfg.Static) {
		// Extra servers beyond the static layout idle as spares forever.
		c.spares = append(c.spares, st.id)
		return &protocol.RegisterReply{Server: st.id, World: c.cfg.World}, nil, nil
	}
	bounds := c.cfg.Static[idx]
	st.active = true
	if idx == 0 {
		c.radius = st.radius
	}
	c.staticAssigned = append(c.staticAssigned, space.Partition{Owner: st.id, Bounds: bounds})
	reply := &protocol.RegisterReply{Server: st.id, Bounds: bounds, World: c.cfg.World}
	if len(c.staticAssigned) < len(c.cfg.Static) {
		return reply, nil, nil
	}
	m, err := space.NewPresetMap(c.cfg.World, c.staticAssigned)
	if err != nil {
		return nil, nil, fmt.Errorf("coordinator: static layout: %w", err)
	}
	c.m = m
	envs, err := c.tableEnvelopesLocked()
	if err != nil {
		return nil, nil, err
	}
	return reply, envs, nil
}

// HandleMessage dispatches a control message from server `from` and returns
// the envelopes to deliver.
func (c *Coordinator) HandleMessage(from id.ServerID, m protocol.Message) ([]Envelope, error) {
	switch msg := m.(type) {
	case *protocol.SplitRequest:
		return c.handleSplit(from, msg)
	case *protocol.ReclaimRequest:
		return c.handleReclaim(from, msg)
	case *protocol.LoadReport:
		return c.handleLoadReport(from, msg)
	case *protocol.NonProximalQuery:
		return c.handleNonProximal(from, msg)
	case *protocol.Heartbeat:
		return c.handleHeartbeat(from, msg)
	case *protocol.SnapshotData:
		return c.handleCheckpoint(from, msg)
	case *protocol.DrainRequest:
		return c.handleDrainRequest(from, msg)
	default:
		return nil, fmt.Errorf("coordinator: unexpected message %v from %v", m.MsgType(), from)
	}
}

// placementPolicy adapts a policy.Placement into a space.SplitPolicy so
// the map validates a pluggable policy's placement exactly like one of
// its built-in split rules (non-empty pieces, minimum extent, tiling
// invariant). A policy that returns a bad placement gets its split
// denied with the map's error.
type placementPolicy struct {
	place policy.Placement
	name  string
}

func (p placementPolicy) Split(geom.Rect) (keep, give geom.Rect) {
	return p.place.Keep, p.place.Give
}

func (p placementPolicy) Name() string { return p.name }

// handleSplit services a split request: let the policy pick the spare
// and the placement, split the requester's partition, and broadcast
// fresh overlap tables.
func (c *Coordinator) handleSplit(from id.ServerID, req *protocol.SplitRequest) ([]Envelope, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	deny := func(reason string) []Envelope {
		c.recordLocked(Decision{Kind: "split", Server: from, Reason: reason, Policy: c.pol.Name(),
			Inputs: map[string]float64{"clients": float64(req.Clients), "spares": float64(len(c.spares))}})
		return []Envelope{{To: from, Msg: &protocol.SplitReply{Granted: false, Reason: reason}}}
	}
	st, ok := c.servers[from]
	if !ok || !st.active || c.m == nil {
		return deny("unknown or inactive server"), fmt.Errorf("%w: %v", ErrUnknownServer, from)
	}
	st.clients = int(req.Clients)
	if len(c.cfg.Static) > 0 {
		return deny("static partitioning"), nil
	}
	if len(c.spares) == 0 {
		return deny("pool exhausted"), nil
	}
	childID := c.pol.PickSpare(policy.PoolView{Spares: append([]id.ServerID(nil), c.spares...)})
	idx := -1
	for i, s := range c.spares {
		if s == childID {
			idx = i
			break
		}
	}
	if idx < 0 {
		return deny(fmt.Sprintf("policy %q picked %v, which is not a spare", c.pol.Name(), childID)), nil
	}
	child := c.servers[childID]
	bounds, err := c.m.Bounds(from)
	if err != nil {
		return deny(err.Error()), nil
	}
	place := c.pol.PlaceChild(policy.SplitView{
		Parent:  from,
		Child:   childID,
		Bounds:  bounds,
		World:   c.cfg.World,
		Clients: int(req.Clients),
		Spares:  len(c.spares),
	})
	keep, give, err := c.m.Split(from, childID, placementPolicy{place: place, name: c.pol.Name()})
	if err != nil {
		return deny(err.Error()), nil
	}
	c.spares = append(c.spares[:idx], c.spares[idx+1:]...)
	child.active = true
	child.draining = false
	c.splits++
	corr := c.nextCorrLocked()
	c.recordLocked(Decision{Seq: corr, Kind: "split", Server: from, Child: childID, Granted: true,
		Policy: c.pol.Name(),
		Inputs: map[string]float64{"clients": float64(req.Clients), "spares": float64(len(c.spares))}})

	out := []Envelope{
		{To: from, Msg: &protocol.SplitReply{
			Granted:   true,
			Child:     childID,
			ChildAddr: child.addr,
			Keep:      keep,
			Give:      give,
			Corr:      corr,
		}},
		{To: childID, Msg: &protocol.RangeUpdate{Server: childID, Bounds: give, Corr: corr}},
	}
	tables, err := c.tableEnvelopesLocked()
	if err != nil {
		return out, err
	}
	return append(out, tables...), nil
}

// handleReclaim folds child back into parent and rebroadcasts tables.
func (c *Coordinator) handleReclaim(from id.ServerID, req *protocol.ReclaimRequest) ([]Envelope, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	deny := func(reason string) []Envelope {
		c.recordLocked(Decision{Kind: "reclaim", Server: req.Parent, Child: req.Child, Reason: reason, Policy: c.pol.Name()})
		return []Envelope{{To: from, Msg: &protocol.ReclaimReply{Granted: false, Reason: reason}}}
	}
	if c.m == nil {
		return deny("no active map"), nil
	}
	if len(c.cfg.Static) > 0 {
		return deny("static partitioning"), nil
	}
	if req.Parent != from {
		return deny("only the parent may reclaim"), nil
	}
	parent, err := c.m.Parent(req.Child)
	if err != nil || parent != req.Parent {
		return deny("not your child"), nil
	}
	if !c.m.CanReclaim(req.Child) {
		if kids := c.m.Children(req.Child); len(kids) > 0 {
			return deny(fmt.Sprintf("child still has children %v", kids)), nil
		}
		return deny("child partition not mergeable yet"), nil
	}
	_, merged, err := c.m.Reclaim(req.Child)
	if err != nil {
		return deny(err.Error()), nil
	}
	child := c.servers[req.Child]
	childClients := child.clients
	child.active = false
	child.clients = 0
	c.spares = append(c.spares, req.Child)
	c.reclaim++
	corr := c.nextCorrLocked()
	c.recordLocked(Decision{Seq: corr, Kind: "reclaim", Server: req.Parent, Child: req.Child, Granted: true,
		Policy: c.pol.Name(),
		Inputs: map[string]float64{"child_clients": float64(childClients), "spares": float64(len(c.spares))}})

	parentAddr := ""
	if ps, ok := c.servers[from]; ok {
		parentAddr = ps.addr
	}
	out := []Envelope{
		{To: from, Msg: &protocol.ReclaimReply{Granted: true, Merged: merged}},
		// The reclaimed child is deactivated (empty bounds) and told to
		// hand every client to the absorbing parent.
		{To: req.Child, Msg: &protocol.RangeUpdate{
			Server: req.Child,
			Bounds: geom.Rect{},
			Handoff: []protocol.HandoffTarget{{
				Server: from,
				Addr:   parentAddr,
				Bounds: merged,
			}},
			Corr: corr,
		}},
	}
	tables, err := c.tableEnvelopesLocked()
	if err != nil {
		return out, err
	}
	return append(out, tables...), nil
}

// handleLoadReport records a server's load and relays it to the server's
// split-tree parent so reclaim decisions stay local to the parent.
func (c *Coordinator) handleLoadReport(from id.ServerID, rep *protocol.LoadReport) ([]Envelope, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.servers[from]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownServer, from)
	}
	st.clients = int(rep.Clients)
	if c.m == nil || !st.active {
		return nil, nil
	}
	parent, err := c.m.Parent(from)
	if err != nil || !parent.Valid() {
		return nil, nil
	}
	return []Envelope{{To: parent, Msg: &protocol.LoadReport{
		Server:   from,
		Clients:  rep.Clients,
		QueueLen: rep.QueueLen,
	}}}, nil
}

// handleNonProximal answers the consistency set for an arbitrary point —
// the paper's fallback for "uncommon cases involving non-proximal
// interactions".
func (c *Coordinator) handleNonProximal(from id.ServerID, q *protocol.NonProximalQuery) ([]Envelope, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		return nil, errors.New("coordinator: no active map")
	}
	radius := q.Radius
	if radius <= 0 {
		radius = c.radius
	}
	set := overlap.ConsistencySet(q.Point, from, c.m.Partitions(), radius)
	reply := &protocol.NonProximalReply{
		Servers: set,
		Peers:   c.peerAddrsLocked(set),
	}
	return []Envelope{{To: from, Msg: reply}}, nil
}

// tableEnvelopesLocked recomputes and packages overlap tables for every
// active server, one per distinct radius in use.
func (c *Coordinator) tableEnvelopesLocked() ([]Envelope, error) {
	parts := c.m.Partitions()
	version := c.m.Version()
	radii := c.radiiLocked()
	var out []Envelope
	for _, r := range radii {
		tables, err := overlap.BuildAll(parts, r, version)
		if err != nil {
			return nil, fmt.Errorf("coordinator: build tables (r=%v): %w", r, err)
		}
		for _, part := range parts {
			tab := tables[part.Owner]
			regions := tab.Regions()
			// Collect the peers this table can route to, with addresses.
			var peerSet overlap.Set
			for _, reg := range regions {
				peerSet = peerSet.Union(reg.Peers)
			}
			out = append(out, Envelope{
				To: part.Owner,
				Msg: &protocol.OverlapTable{
					Server:  part.Owner,
					Version: version,
					Bounds:  part.Bounds,
					Radius:  r,
					Regions: protocol.RegionsToWire(regions),
					Peers:   c.peerAddrsLocked(peerSet),
				},
			})
		}
	}
	// Deterministic delivery order helps tests and debugging.
	sort.SliceStable(out, func(i, j int) bool { return out[i].To < out[j].To })
	return out, nil
}

// radiiLocked returns the default radius plus configured extras, deduped.
func (c *Coordinator) radiiLocked() []float64 {
	radii := []float64{c.radius}
	for _, r := range c.cfg.ExtraRadii {
		dup := false
		for _, have := range radii {
			if have == r {
				dup = true
				break
			}
		}
		if !dup {
			radii = append(radii, r)
		}
	}
	return radii
}

// peerAddrsLocked resolves addresses and current bounds for a set of
// servers.
func (c *Coordinator) peerAddrsLocked(set overlap.Set) []protocol.PeerAddr {
	out := make([]protocol.PeerAddr, 0, len(set))
	for _, sid := range set {
		st, ok := c.servers[sid]
		if !ok {
			continue
		}
		var bounds geom.Rect
		if c.m != nil {
			if b, err := c.m.Bounds(sid); err == nil {
				bounds = b
			}
		}
		out = append(out, protocol.PeerAddr{Server: sid, Addr: st.addr, Bounds: bounds})
	}
	return out
}

// Resync rebuilds a restarted server's topology view: the overlap tables it
// currently owes (when it still owns a partition) followed by a RangeUpdate
// carrying its authoritative bounds and a handoff target for every active
// partition, so a server restored from a stale checkpoint can immediately
// redirect clients it no longer owns. A server that lost its partition while
// down (reclaimed during the outage) receives only the deactivating
// RangeUpdate.
func (c *Coordinator) Resync(sid id.ServerID) ([]Envelope, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resyncLocked(sid)
}

func (c *Coordinator) resyncLocked(sid id.ServerID) ([]Envelope, error) {
	if _, ok := c.servers[sid]; !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownServer, sid)
	}
	if c.m == nil {
		return nil, nil
	}
	handoff := c.handoffTargetsLocked(sid)
	bounds, err := c.m.Bounds(sid)
	if err != nil {
		// Not in the map: the server was reclaimed while down; it rejoins
		// as a deactivated spare and hands every client away.
		return []Envelope{{To: sid, Msg: &protocol.RangeUpdate{Server: sid, Handoff: handoff}}}, nil
	}
	// Only this server's tables are rebuilt (one per radius) — recoveries
	// must not pay the whole-fleet recomputation a topology change does.
	parts := c.m.Partitions()
	version := c.m.Version()
	var out []Envelope
	for _, r := range c.radiiLocked() {
		tab, err := overlap.BuildTable(sid, parts, r, version)
		if err != nil {
			return nil, fmt.Errorf("coordinator: resync table (r=%v): %w", r, err)
		}
		regions := tab.Regions()
		var peerSet overlap.Set
		for _, reg := range regions {
			peerSet = peerSet.Union(reg.Peers)
		}
		out = append(out, Envelope{
			To: sid,
			Msg: &protocol.OverlapTable{
				Server:  sid,
				Version: version,
				Bounds:  bounds,
				Radius:  r,
				Regions: protocol.RegionsToWire(regions),
				Peers:   c.peerAddrsLocked(peerSet),
			},
		})
	}
	out = append(out, Envelope{To: sid, Msg: &protocol.RangeUpdate{Server: sid, Bounds: bounds, Handoff: handoff}})
	return out, nil
}

// handoffTargetsLocked lists every active partition except exclude's as a
// handoff target, so the receiver can redirect any client it does not own.
func (c *Coordinator) handoffTargetsLocked(exclude id.ServerID) []protocol.HandoffTarget {
	var out []protocol.HandoffTarget
	for _, part := range c.m.Partitions() {
		if part.Owner == exclude {
			continue
		}
		addr := ""
		if st, ok := c.servers[part.Owner]; ok {
			addr = st.addr
		}
		out = append(out, protocol.HandoffTarget{Server: part.Owner, Addr: addr, Bounds: part.Bounds})
	}
	return out
}

// ServerSnap is one registered server inside a State snapshot. The health
// fields are omitted when zero so snapshots from health-disabled deployments
// (the deterministic sim) stay byte-identical to the pre-health format.
type ServerSnap struct {
	ID      id.ServerID
	Addr    string
	Radius  float64
	Active  bool
	Clients int

	Draining         bool   `json:",omitempty"`
	Retired          bool   `json:",omitempty"`
	Dead             bool   `json:",omitempty"`
	Beats            uint64 `json:",omitempty"`
	LastBeatUnixNano int64  `json:",omitempty"`
	CheckpointTick   uint64 `json:",omitempty"`
}

// CheckpointSnap is one server's last shipped checkpoint blob inside a State
// snapshot.
type CheckpointSnap struct {
	ID   id.ServerID
	Blob []byte
}

// State is the Coordinator's serializable snapshot. Servers are sorted by
// ID; spares and parked regions keep their FIFO order.
type State struct {
	Gen      id.GeneratorState
	Radius   float64
	Splits   int
	Reclaims int
	Servers  []ServerSnap
	Spares   []id.ServerID
	Static   []space.Partition
	Map      *space.MapState

	Deaths      int              `json:",omitempty"`
	Adoptions   int              `json:",omitempty"`
	Drains      int              `json:",omitempty"`
	Parked      []id.ServerID    `json:",omitempty"`
	Checkpoints []CheckpointSnap `json:",omitempty"`

	// PolicyState is the placement policy's internal snapshot; nil for
	// stateless policies (including the default paper policy), so snapshots
	// taken before the policy engine existed and snapshots of the default
	// configuration encode byte-identically.
	PolicyState json.RawMessage `json:",omitempty"`
}

// CaptureState snapshots the coordinator.
func (c *Coordinator) CaptureState() *State {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := &State{
		Gen:       c.gen.State(),
		Radius:    c.radius,
		Splits:    c.splits,
		Reclaims:  c.reclaim,
		Spares:    append([]id.ServerID(nil), c.spares...),
		Static:    append([]space.Partition(nil), c.staticAssigned...),
		Deaths:    c.deaths,
		Adoptions: c.adoptions,
		Drains:    c.drains,
		Parked:    append([]id.ServerID(nil), c.parked...),
	}
	ids := make([]id.ServerID, 0, len(c.servers))
	for sid := range c.servers {
		ids = append(ids, sid)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, sid := range ids {
		s := c.servers[sid]
		snap := ServerSnap{ID: sid, Addr: s.addr, Radius: s.radius, Active: s.active, Clients: s.clients}
		if c.healthEnabled() {
			snap.Draining = s.draining
			snap.Retired = s.retired
			snap.Dead = s.dead
			snap.Beats = s.beats
			snap.CheckpointTick = s.cpTick
			if !s.lastBeat.IsZero() {
				snap.LastBeatUnixNano = s.lastBeat.UnixNano()
			}
		}
		st.Servers = append(st.Servers, snap)
	}
	cpIDs := make([]id.ServerID, 0, len(c.checkpoints))
	for sid := range c.checkpoints {
		cpIDs = append(cpIDs, sid)
	}
	sort.Slice(cpIDs, func(i, j int) bool { return cpIDs[i] < cpIDs[j] })
	for _, sid := range cpIDs {
		st.Checkpoints = append(st.Checkpoints, CheckpointSnap{ID: sid, Blob: append([]byte(nil), c.checkpoints[sid]...)})
	}
	if c.m != nil {
		ms := c.m.State()
		st.Map = &ms
	}
	if ps := c.pol.State(); len(ps) > 0 {
		st.PolicyState = json.RawMessage(ps)
	}
	return st
}

// RestoreState overwrites the coordinator's mutable state from a snapshot,
// keeping its config. The snapshot is not retained.
func (c *Coordinator) RestoreState(st *State) error {
	var m *space.Map
	if st.Map != nil {
		var err error
		m, err = space.NewMapFromState(*st.Map)
		if err != nil {
			return fmt.Errorf("coordinator: restore map: %w", err)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen.SetState(st.Gen)
	c.radius = st.Radius
	c.splits = st.Splits
	c.reclaim = st.Reclaims
	c.spares = append([]id.ServerID(nil), st.Spares...)
	c.staticAssigned = append([]space.Partition(nil), st.Static...)
	c.deaths = st.Deaths
	c.adoptions = st.Adoptions
	c.drains = st.Drains
	c.parked = append([]id.ServerID(nil), st.Parked...)
	c.checkpoints = make(map[id.ServerID][]byte, len(st.Checkpoints))
	for _, cp := range st.Checkpoints {
		c.checkpoints[cp.ID] = append([]byte(nil), cp.Blob...)
	}
	c.cpPartial = make(map[id.ServerID][]byte)
	c.servers = make(map[id.ServerID]*serverState, len(st.Servers))
	for _, s := range st.Servers {
		ss := &serverState{
			id: s.ID, addr: s.Addr, radius: s.Radius, active: s.Active, clients: s.Clients,
			draining: s.Draining, retired: s.Retired, dead: s.Dead,
			beats: s.Beats, cpTick: s.CheckpointTick,
		}
		if s.LastBeatUnixNano != 0 {
			ss.lastBeat = time.Unix(0, s.LastBeatUnixNano)
		} else if c.healthEnabled() {
			// Pre-health snapshot restored into a health-enabled
			// coordinator: grant a fresh lease instead of an instant expiry.
			ss.lastBeat = c.now()
		}
		c.servers[s.ID] = ss
	}
	c.m = m
	if err := c.pol.RestoreState(st.PolicyState); err != nil {
		return fmt.Errorf("coordinator: restore policy state: %w", err)
	}
	return nil
}

// --- introspection (used by tooling, experiments and tests) ---

// ActiveServers returns the IDs of servers that currently own partitions,
// sorted.
func (c *Coordinator) ActiveServers() []id.ServerID {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []id.ServerID
	for sid, st := range c.servers {
		if st.active {
			out = append(out, sid)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SpareCount returns the number of servers waiting in the pool.
func (c *Coordinator) SpareCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.spares)
}

// Partitions snapshots the current partitioning (empty before the first
// registration).
func (c *Coordinator) Partitions() []space.Partition {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		return nil
	}
	return c.m.Partitions()
}

// Splits returns the number of granted splits.
func (c *Coordinator) Splits() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.splits
}

// Reclaims returns the number of granted reclamations.
func (c *Coordinator) Reclaims() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reclaim
}

// Validate checks the internal space invariants (used by tests and
// long-running soak tooling).
func (c *Coordinator) Validate() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		return nil
	}
	return c.m.Validate()
}
