package coordinator

import (
	"testing"

	"matrix/internal/geom"
	"matrix/internal/protocol"
	"matrix/internal/staticpart"
)

func newStaticMC(t *testing.T, n int) (*Coordinator, []*protocol.RegisterReply) {
	t.Helper()
	world := geom.R(0, 0, 100, 100)
	tiles, err := staticpart.Grid(world, n)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{World: world, Static: tiles})
	if err != nil {
		t.Fatal(err)
	}
	replies := make([]*protocol.RegisterReply, n)
	for i := 0; i < n; i++ {
		reply, envs, err := c.Register("s", 5)
		if err != nil {
			t.Fatalf("register %d: %v", i, err)
		}
		replies[i] = reply
		// Tables only go out once the last static server registers.
		if i < n-1 && len(envs) != 0 {
			t.Fatalf("register %d produced %d envelopes before layout complete", i, len(envs))
		}
		if i == n-1 && len(envs) != n {
			t.Fatalf("final register produced %d envelopes, want %d tables", len(envs), n)
		}
	}
	return c, replies
}

func TestStaticRegistrationAssignsTiles(t *testing.T) {
	c, replies := newStaticMC(t, 4)
	seen := map[string]bool{}
	for _, r := range replies {
		if r.Bounds.Empty() {
			t.Fatalf("static server %v got empty bounds", r.Server)
		}
		seen[r.Bounds.String()] = true
	}
	if len(seen) != 4 {
		t.Errorf("distinct tiles = %d", len(seen))
	}
	if got := len(c.ActiveServers()); got != 4 {
		t.Errorf("active = %d", got)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestStaticDeniesSplit(t *testing.T) {
	c, replies := newStaticMC(t, 2)
	envs, err := c.HandleMessage(replies[0].Server, &protocol.SplitRequest{Server: replies[0].Server, Clients: 900})
	if err != nil {
		t.Fatal(err)
	}
	rep, ok := envs[0].Msg.(*protocol.SplitReply)
	if !ok || rep.Granted {
		t.Fatalf("static split must be denied: %+v", envs[0].Msg)
	}
	if rep.Reason != "static partitioning" {
		t.Errorf("reason = %q", rep.Reason)
	}
	if c.Splits() != 0 {
		t.Errorf("Splits = %d", c.Splits())
	}
}

func TestStaticDeniesReclaim(t *testing.T) {
	c, replies := newStaticMC(t, 2)
	envs, err := c.HandleMessage(replies[0].Server, &protocol.ReclaimRequest{Parent: replies[0].Server, Child: replies[1].Server})
	if err != nil {
		t.Fatal(err)
	}
	rep, ok := envs[0].Msg.(*protocol.ReclaimReply)
	if !ok || rep.Granted {
		t.Fatalf("static reclaim must be denied: %+v", envs[0].Msg)
	}
}

func TestStaticExtraRegistrationsAreIdleSpares(t *testing.T) {
	c, _ := newStaticMC(t, 2)
	reply, envs, err := c.Register("extra", 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reply.Bounds.Empty() {
		t.Error("extra static server must be a spare")
	}
	if len(envs) != 0 {
		t.Error("extra registration must not emit tables")
	}
	if c.SpareCount() != 1 {
		t.Errorf("SpareCount = %d", c.SpareCount())
	}
}
