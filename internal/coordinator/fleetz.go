// /fleetz: a JSON snapshot of the fleet for operators — the region tree,
// per-server load and lease state, and the recent decision ring — served by
// the coordinator host next to /metrics.
package coordinator

import (
	"sort"

	"matrix/internal/geom"
	"matrix/internal/id"
)

// FleetRegion is one partition in the split tree.
type FleetRegion struct {
	Owner    id.ServerID   `json:"owner"`
	Bounds   geom.Rect     `json:"bounds"`
	Parent   id.ServerID   `json:"parent,omitempty"`
	Children []id.ServerID `json:"children,omitempty"`
	// Depth is the partition's distance from the root of the split tree.
	Depth int `json:"depth"`
}

// FleetServer is one registered server's load and lease state.
type FleetServer struct {
	ID       id.ServerID `json:"id"`
	Addr     string      `json:"addr"`
	Active   bool        `json:"active"`
	Clients  int         `json:"clients"`
	Draining bool        `json:"draining,omitempty"`
	Retired  bool        `json:"retired,omitempty"`
	Dead     bool        `json:"dead,omitempty"`
	Beats    uint64      `json:"beats,omitempty"`
	// LastBeatAgoMs is how stale the lease is at snapshot time.
	LastBeatAgoMs   int64  `json:"last_beat_ago_ms,omitempty"`
	CheckpointTick  uint64 `json:"checkpoint_tick,omitempty"`
	CheckpointBytes int    `json:"checkpoint_bytes,omitempty"`
}

// FleetSnapshot is the /fleetz document.
type FleetSnapshot struct {
	World     geom.Rect     `json:"world"`
	Static    bool          `json:"static,omitempty"`
	Regions   []FleetRegion `json:"regions"`
	Servers   []FleetServer `json:"servers"`
	Spares    []id.ServerID `json:"spares,omitempty"`
	Parked    []id.ServerID `json:"parked,omitempty"`
	Splits    int           `json:"splits"`
	Reclaims  int           `json:"reclaims"`
	Deaths    int           `json:"deaths,omitempty"`
	Adoptions int           `json:"adoptions,omitempty"`
	Drains    int           `json:"drains,omitempty"`
	// Decisions is the recent decision ring, oldest first.
	Decisions []Decision `json:"decisions,omitempty"`
}

// Fleet snapshots the coordinator for /fleetz.
func (c *Coordinator) Fleet() FleetSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := FleetSnapshot{
		World:     c.cfg.World,
		Static:    len(c.cfg.Static) > 0,
		Spares:    append([]id.ServerID(nil), c.spares...),
		Parked:    append([]id.ServerID(nil), c.parked...),
		Splits:    c.splits,
		Reclaims:  c.reclaim,
		Deaths:    c.deaths,
		Adoptions: c.adoptions,
		Drains:    c.drains,
		Decisions: append([]Decision(nil), c.decisions...),
		Regions:   []FleetRegion{},
		Servers:   []FleetServer{},
	}
	if c.m != nil {
		for _, part := range c.m.Partitions() {
			r := FleetRegion{Owner: part.Owner, Bounds: part.Bounds}
			if p, err := c.m.Parent(part.Owner); err == nil && p.Valid() {
				r.Parent = p
			}
			r.Children = c.m.Children(part.Owner)
			for at := part.Owner; ; {
				p, err := c.m.Parent(at)
				if err != nil || !p.Valid() {
					break
				}
				r.Depth++
				at = p
			}
			snap.Regions = append(snap.Regions, r)
		}
		sort.Slice(snap.Regions, func(i, j int) bool { return snap.Regions[i].Owner < snap.Regions[j].Owner })
	}
	now := c.now()
	ids := make([]id.ServerID, 0, len(c.servers))
	for sid := range c.servers {
		ids = append(ids, sid)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, sid := range ids {
		st := c.servers[sid]
		fs := FleetServer{
			ID: sid, Addr: st.addr, Active: st.active, Clients: st.clients,
			Draining: st.draining, Retired: st.retired, Dead: st.dead,
			Beats: st.beats, CheckpointTick: st.cpTick,
			CheckpointBytes: len(c.checkpoints[sid]),
		}
		if c.healthEnabled() && !st.lastBeat.IsZero() {
			fs.LastBeatAgoMs = now.Sub(st.lastBeat).Milliseconds()
		}
		snap.Servers = append(snap.Servers, fs)
	}
	return snap
}
