package coordinator

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"matrix/internal/clock"
	"matrix/internal/geom"
	"matrix/internal/id"
	"matrix/internal/protocol"
)

// newHealthMC builds a coordinator with health enabled on a virtual clock
// (1s beats, 3 misses => 3s lease).
func newHealthMC(t *testing.T) (*Coordinator, *clock.Virtual) {
	t.Helper()
	vc := clock.NewVirtual(time.Unix(1000, 0))
	c, err := New(Config{
		World:          geom.R(0, 0, 100, 100),
		HeartbeatEvery: time.Second,
		LeaseMisses:    3,
		Clock:          vc,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c, vc
}

// beat delivers a heartbeat from sid, failing the test on error.
func beat(t *testing.T, c *Coordinator, sid id.ServerID) []Envelope {
	t.Helper()
	envs, err := c.HandleMessage(sid, &protocol.Heartbeat{Server: sid})
	if err != nil {
		t.Fatalf("Heartbeat(%v): %v", sid, err)
	}
	return envs
}

// shipCheckpoint uploads blob as sid's checkpoint in one final chunk.
func shipCheckpoint(t *testing.T, c *Coordinator, sid id.ServerID, blob []byte) {
	t.Helper()
	if _, err := c.HandleMessage(sid, &protocol.SnapshotData{Blob: blob, Final: true}); err != nil {
		t.Fatalf("checkpoint(%v): %v", sid, err)
	}
}

// msgsTo filters the messages addressed to sid, in order.
func msgsTo(envs []Envelope, sid id.ServerID) []protocol.Message {
	var out []protocol.Message
	for _, e := range envs {
		if e.To == sid {
			out = append(out, e.Msg)
		}
	}
	return out
}

func TestHeartbeatRenewsLease(t *testing.T) {
	c, vc := newHealthMC(t)
	r1, _ := register(t, c, "a:1", 5)
	// Beat every second for 10 seconds: lease never expires.
	for i := 0; i < 10; i++ {
		vc.Advance(time.Second)
		beat(t, c, r1.Server)
		if envs := c.Tick(); len(envs) != 0 {
			t.Fatalf("tick %d produced %d envelopes", i, len(envs))
		}
	}
	if c.Deaths() != 0 {
		t.Errorf("Deaths = %d", c.Deaths())
	}
}

func TestLeaseExpiryAdoptsFromCheckpoint(t *testing.T) {
	c, vc := newHealthMC(t)
	r1, _ := register(t, c, "a:1", 5)
	r2, _ := register(t, c, "b:2", 5) // spare
	beat(t, c, r2.Server)             // the spare stays alive
	blob := []byte(`{"world":"state"}`)
	shipCheckpoint(t, c, r1.Server, blob)

	// Miss more than 3 beats, keeping the spare's lease fresh.
	for i := 0; i < 4; i++ {
		vc.Advance(time.Second)
		beat(t, c, r2.Server)
	}
	envs := c.Tick()
	if c.Deaths() != 1 || c.Adoptions() != 1 {
		t.Fatalf("Deaths=%d Adoptions=%d, want 1/1", c.Deaths(), c.Adoptions())
	}

	// The spare's envelope order is the restore contract: Adopt chunks
	// carrying the victim's checkpoint, then its table, then the
	// activating RangeUpdate.
	got := msgsTo(envs, r2.Server)
	if len(got) < 3 {
		t.Fatalf("spare got %d messages, want >= 3", len(got))
	}
	adopt, ok := got[0].(*protocol.Adopt)
	if !ok {
		t.Fatalf("first message is %T, want Adopt", got[0])
	}
	if adopt.Victim != r1.Server || !adopt.Final || !bytes.Equal(adopt.Blob, blob) {
		t.Errorf("Adopt = %+v", adopt)
	}
	if !adopt.Bounds.Eq(geom.R(0, 0, 100, 100)) {
		t.Errorf("adopted bounds = %v", adopt.Bounds)
	}
	last, ok := got[len(got)-1].(*protocol.RangeUpdate)
	if !ok || !last.Bounds.Eq(adopt.Bounds) {
		t.Fatalf("last message = %#v, want activating RangeUpdate", got[len(got)-1])
	}
	sawTable := false
	for _, m := range got[1 : len(got)-1] {
		if _, ok := m.(*protocol.OverlapTable); ok {
			sawTable = true
		}
	}
	if !sawTable {
		t.Error("no OverlapTable between Adopt and RangeUpdate")
	}

	// The map now shows the spare owning the whole world.
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := c.ActiveServers(); len(got) != 1 || got[0] != r2.Server {
		t.Errorf("ActiveServers = %v", got)
	}
	// The victim's checkpoint was consumed.
	if n := c.CheckpointSize(r1.Server); n != 0 {
		t.Errorf("victim checkpoint retained (%d bytes)", n)
	}
}

func TestDisconnectDeclaresDeadImmediately(t *testing.T) {
	c, _ := newHealthMC(t)
	r1, _ := register(t, c, "a:1", 5)
	r2, _ := register(t, c, "b:2", 5)
	envs := c.HandleDisconnect(r1.Server)
	if c.Deaths() != 1 || c.Adoptions() != 1 {
		t.Fatalf("Deaths=%d Adoptions=%d, want 1/1", c.Deaths(), c.Adoptions())
	}
	if got := msgsTo(envs, r2.Server); len(got) == 0 {
		t.Fatal("spare got no envelopes")
	}
	if _, ok := msgsTo(envs, r2.Server)[0].(*protocol.Adopt); !ok {
		t.Error("spare's first message is not Adopt")
	}
	// A second disconnect for the same server is a no-op.
	if envs := c.HandleDisconnect(r1.Server); envs != nil {
		t.Errorf("double disconnect produced %d envelopes", len(envs))
	}
}

func TestAdoptionParksWhenPoolEmpty(t *testing.T) {
	c, _ := newHealthMC(t)
	r1, _ := register(t, c, "a:1", 5)
	if envs := c.HandleDisconnect(r1.Server); len(envs) != 0 {
		t.Fatalf("no-spare death produced %d envelopes", len(envs))
	}
	if got := c.Parked(); len(got) != 1 || got[0] != r1.Server {
		t.Fatalf("Parked = %v, want [%v]", got, r1.Server)
	}
	// The region is not lost: the map still records the dead owner.
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}

	// A fresh spare registering adopts the parked region immediately.
	r2, envs := register(t, c, "b:2", 5)
	if len(envs) == 0 {
		t.Fatal("registration did not trigger adoption")
	}
	if _, ok := msgsTo(envs, r2.Server)[0].(*protocol.Adopt); !ok {
		t.Errorf("first message to new spare is %T, want Adopt", envs[0].Msg)
	}
	if len(c.Parked()) != 0 {
		t.Errorf("Parked = %v after adoption", c.Parked())
	}
	if got := c.ActiveServers(); len(got) != 1 || got[0] != r2.Server {
		t.Errorf("ActiveServers = %v", got)
	}
	if c.SpareCount() != 0 {
		t.Errorf("SpareCount = %d", c.SpareCount())
	}
}

func TestZombieHeartbeatDemotedAfterReplacement(t *testing.T) {
	c, _ := newHealthMC(t)
	r1, _ := register(t, c, "a:1", 5)
	register(t, c, "b:2", 5)
	c.HandleDisconnect(r1.Server) // spare adopts

	// The "dead" server beats again: it was paused, not crashed. It must
	// be demoted — deactivating RangeUpdate with a handoff for the new
	// owner — and re-pooled as a spare.
	envs := beat(t, c, r1.Server)
	var demote *protocol.RangeUpdate
	for _, m := range msgsTo(envs, r1.Server) {
		if ru, ok := m.(*protocol.RangeUpdate); ok {
			demote = ru
		}
	}
	if demote == nil {
		t.Fatal("zombie got no RangeUpdate")
	}
	if !demote.Bounds.Empty() {
		t.Errorf("zombie bounds = %v, want empty (deactivated)", demote.Bounds)
	}
	if len(demote.Handoff) == 0 {
		t.Error("zombie demotion carries no handoff targets")
	}
	if c.SpareCount() != 1 {
		t.Errorf("SpareCount = %d, want 1 (zombie re-pooled)", c.SpareCount())
	}
}

func TestZombieHeartbeatRevivedWhileParked(t *testing.T) {
	c, vc := newHealthMC(t)
	r1, _ := register(t, c, "a:1", 5)
	vc.Advance(10 * time.Second)
	c.Tick() // lease expires, no spare: region parks
	if len(c.Parked()) != 1 {
		t.Fatalf("Parked = %v", c.Parked())
	}
	// The owner beats again before any spare appeared: it keeps its
	// region and is resynced in place.
	envs := beat(t, c, r1.Server)
	if len(c.Parked()) != 0 {
		t.Errorf("still parked after revival: %v", c.Parked())
	}
	if got := c.ActiveServers(); len(got) != 1 || got[0] != r1.Server {
		t.Errorf("ActiveServers = %v", got)
	}
	msgs := msgsTo(envs, r1.Server)
	if len(msgs) == 0 {
		t.Fatal("revived server got no resync envelopes")
	}
	ru, ok := msgs[len(msgs)-1].(*protocol.RangeUpdate)
	if !ok || !ru.Bounds.Eq(geom.R(0, 0, 100, 100)) {
		t.Errorf("revival RangeUpdate = %#v", msgs[len(msgs)-1])
	}
}

func TestCheckpointChunksAccumulate(t *testing.T) {
	c, _ := newHealthMC(t)
	r1, _ := register(t, c, "a:1", 5)
	if _, err := c.HandleMessage(r1.Server, &protocol.SnapshotData{Blob: []byte("part1|")}); err != nil {
		t.Fatal(err)
	}
	if n := c.CheckpointSize(r1.Server); n != 0 {
		t.Fatalf("partial upload already visible (%d bytes)", n)
	}
	if _, err := c.HandleMessage(r1.Server, &protocol.SnapshotData{Blob: []byte("part2"), Final: true}); err != nil {
		t.Fatal(err)
	}
	if n := c.CheckpointSize(r1.Server); n != len("part1|part2") {
		t.Errorf("CheckpointSize = %d", n)
	}
	// A later upload replaces the blob outright.
	shipCheckpoint(t, c, r1.Server, []byte("v2"))
	if n := c.CheckpointSize(r1.Server); n != 2 {
		t.Errorf("CheckpointSize after replace = %d", n)
	}
}

func TestDrainHandsPartitionToSpare(t *testing.T) {
	c, _ := newHealthMC(t)
	r1, _ := register(t, c, "a:1", 5)
	r2, _ := register(t, c, "b:2", 5)
	envs, err := c.Drain(r1.Server, false)
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if c.Drains() != 1 {
		t.Errorf("Drains = %d", c.Drains())
	}
	// The spare is activated with the drainee's exact rectangle.
	spareMsgs := msgsTo(envs, r2.Server)
	var activated bool
	for _, m := range spareMsgs {
		if ru, ok := m.(*protocol.RangeUpdate); ok && ru.Bounds.Eq(geom.R(0, 0, 100, 100)) {
			activated = true
		}
	}
	if !activated {
		t.Error("spare never activated with the drained bounds")
	}
	// The drainee is deactivated with handoff targets, then told to drain.
	dMsgs := msgsTo(envs, r1.Server)
	if len(dMsgs) < 2 {
		t.Fatalf("drainee got %d messages", len(dMsgs))
	}
	ru, ok := dMsgs[len(dMsgs)-2].(*protocol.RangeUpdate)
	if !ok || !ru.Bounds.Empty() || len(ru.Handoff) == 0 {
		t.Errorf("drainee deactivation = %#v", dMsgs[len(dMsgs)-2])
	}
	dr, ok := dMsgs[len(dMsgs)-1].(*protocol.DrainRequest)
	if !ok || dr.Exit {
		t.Errorf("drainee final message = %#v, want DrainRequest{Exit:false}", dMsgs[len(dMsgs)-1])
	}
	// The drainee re-pooled immediately (crash-mid-drain then reads as a
	// dead spare, not a lost region).
	if c.SpareCount() != 1 {
		t.Errorf("SpareCount = %d, want 1", c.SpareCount())
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Draining twice is refused.
	if _, err := c.Drain(r1.Server, false); err == nil {
		t.Error("second drain must be refused")
	}
}

func TestDrainCrashMidDrainIsDeadSpare(t *testing.T) {
	c, _ := newHealthMC(t)
	r1, _ := register(t, c, "a:1", 5)
	register(t, c, "b:2", 5)
	if _, err := c.Drain(r1.Server, false); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	// The drainee dies before finishing its evacuation. Its region already
	// belongs to the spare, so the death must not park anything or adopt
	// again — it just leaves the pool.
	envs := c.HandleDisconnect(r1.Server)
	if len(envs) != 0 {
		t.Errorf("mid-drain crash produced %d envelopes", len(envs))
	}
	if c.Adoptions() != 0 {
		t.Errorf("Adoptions = %d, want 0", c.Adoptions())
	}
	if len(c.Parked()) != 0 {
		t.Errorf("Parked = %v", c.Parked())
	}
	if c.SpareCount() != 0 {
		t.Errorf("SpareCount = %d", c.SpareCount())
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestDrainFoldsIntoParentWhenPoolEmpty(t *testing.T) {
	c, _ := newHealthMC(t)
	r1, _ := register(t, c, "a:1", 5)
	r2, _ := register(t, c, "b:2", 5)
	if _, err := c.HandleMessage(r1.Server, &protocol.SplitRequest{Server: r1.Server, Clients: 100}); err != nil {
		t.Fatalf("split: %v", err)
	}
	// Pool is now empty; draining the child merges it back into r1.
	envs, err := c.Drain(r2.Server, false)
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	var grew bool
	for _, m := range msgsTo(envs, r1.Server) {
		if ru, ok := m.(*protocol.RangeUpdate); ok && ru.Bounds.Eq(geom.R(0, 0, 100, 100)) {
			grew = true
		}
	}
	if !grew {
		t.Error("parent never got the merged bounds")
	}
	if got := c.ActiveServers(); len(got) != 1 || got[0] != r1.Server {
		t.Errorf("ActiveServers = %v", got)
	}
	if c.SpareCount() != 1 {
		t.Errorf("SpareCount = %d", c.SpareCount())
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestDrainDenials(t *testing.T) {
	c, _ := newHealthMC(t)
	r1, _ := register(t, c, "a:1", 5)
	if _, err := c.Drain(99, false); !errors.Is(err, ErrUnknownServer) {
		t.Errorf("unknown: %v", err)
	}
	// Sole owner, no spare, not mergeable: nowhere to put the region.
	if _, err := c.Drain(r1.Server, false); !errors.Is(err, ErrPoolExhausted) {
		t.Errorf("rootless drain: %v", err)
	}
	r2, _ := register(t, c, "b:2", 5)
	// Draining an idle spare without exit is pointless.
	if _, err := c.Drain(r2.Server, false); !errors.Is(err, ErrNotActive) {
		t.Errorf("idle spare: %v", err)
	}
	// Dead servers cannot drain.
	c.HandleDisconnect(r2.Server)
	if _, err := c.Drain(r2.Server, false); err == nil {
		t.Error("dead server drain must fail")
	}
}

func TestDrainSpareWithExitRetires(t *testing.T) {
	c, _ := newHealthMC(t)
	register(t, c, "a:1", 5)
	r2, _ := register(t, c, "b:2", 5)
	envs, err := c.Drain(r2.Server, true)
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	dr, ok := envs[len(envs)-1].Msg.(*protocol.DrainRequest)
	if !ok || !dr.Exit || envs[len(envs)-1].To != r2.Server {
		t.Errorf("retire envelope = %#v", envs[len(envs)-1])
	}
	if c.SpareCount() != 0 {
		t.Errorf("SpareCount = %d", c.SpareCount())
	}
	// The retired server's exit-disconnect is expected, not a death.
	if envs := c.HandleDisconnect(r2.Server); envs != nil {
		t.Errorf("retired disconnect produced envelopes")
	}
	if c.Deaths() != 0 {
		t.Errorf("Deaths = %d", c.Deaths())
	}
}

func TestServerInitiatedDrainRepliesOverWire(t *testing.T) {
	c, _ := newHealthMC(t)
	r1, _ := register(t, c, "a:1", 5)
	register(t, c, "b:2", 5)
	envs, err := c.HandleMessage(r1.Server, &protocol.DrainRequest{Server: r1.Server})
	if err != nil {
		t.Fatalf("DrainRequest: %v", err)
	}
	reply, ok := envs[0].Msg.(*protocol.DrainReply)
	if !ok || envs[0].To != r1.Server || !reply.Granted {
		t.Fatalf("first envelope = %#v", envs[0])
	}
	// A denied drain reports the reason instead of erroring the stream.
	envs, err = c.HandleMessage(r1.Server, &protocol.DrainRequest{Server: r1.Server})
	if err != nil {
		t.Fatalf("second DrainRequest: %v", err)
	}
	reply, ok = envs[0].Msg.(*protocol.DrainReply)
	if !ok || reply.Granted || reply.Reason == "" {
		t.Fatalf("denial = %#v", envs[0].Msg)
	}
}

func TestSpareFIFOPreservedAcrossSnapshotRestore(t *testing.T) {
	c, vc := newHealthMC(t)
	r1, _ := register(t, c, "a:1", 5)
	r2, _ := register(t, c, "b:2", 5)
	r3, _ := register(t, c, "c:3", 5)
	r4, _ := register(t, c, "d:4", 5)
	shipCheckpoint(t, c, r1.Server, []byte("cp1"))

	st := c.CaptureState()
	c2, err := New(Config{World: geom.R(0, 0, 100, 100), HeartbeatEvery: time.Second, LeaseMisses: 3, Clock: vc})
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.RestoreState(st); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	// FIFO order of the pool survives the round trip: a split after
	// restore must pick r2, then r3, then r4.
	want := []id.ServerID{r2.Server, r3.Server, r4.Server}
	for i, sid := range want {
		envs, err := c2.HandleMessage(c2.ActiveServers()[0], &protocol.SplitRequest{Clients: 100})
		if err != nil {
			t.Fatalf("split %d: %v", i, err)
		}
		sr := envs[0].Msg.(*protocol.SplitReply)
		if !sr.Granted || sr.Child != sid {
			t.Fatalf("split %d granted=%v child=%v, want %v", i, sr.Granted, sr.Child, sid)
		}
	}
	// The checkpoint blob came through too.
	if n := c2.CheckpointSize(r1.Server); n != 3 {
		t.Errorf("restored checkpoint size = %d", n)
	}
}

func TestParkedFIFOPreservedAcrossSnapshotRestore(t *testing.T) {
	c, vc := newHealthMC(t)
	r1, _ := register(t, c, "a:1", 5)
	r2, _ := register(t, c, "b:2", 5)
	// Split so both own regions, then kill both with an empty pool.
	if _, err := c.HandleMessage(r1.Server, &protocol.SplitRequest{Clients: 100}); err != nil {
		t.Fatal(err)
	}
	c.HandleDisconnect(r1.Server)
	c.HandleDisconnect(r2.Server)
	if got := c.Parked(); len(got) != 2 || got[0] != r1.Server || got[1] != r2.Server {
		t.Fatalf("Parked = %v", got)
	}

	st := c.CaptureState()
	c2, err := New(Config{World: geom.R(0, 0, 100, 100), HeartbeatEvery: time.Second, LeaseMisses: 3, Clock: vc})
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.RestoreState(st); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	if got := c2.Parked(); len(got) != 2 || got[0] != r1.Server || got[1] != r2.Server {
		t.Fatalf("restored Parked = %v", got)
	}
	// New spares adopt in park order: r1's region first.
	r5, envs := register(t, c2, "e:5", 5)
	adopt, ok := msgsTo(envs, r5.Server)[0].(*protocol.Adopt)
	if !ok || adopt.Victim != r1.Server {
		t.Fatalf("first adoption = %#v, want victim %v", envs[0].Msg, r1.Server)
	}
	if got := c2.Parked(); len(got) != 1 || got[0] != r2.Server {
		t.Errorf("Parked after first adoption = %v", got)
	}
}

func TestHealthDisabledIsInert(t *testing.T) {
	c := newTestMC(t) // no HeartbeatEvery
	r1, _ := register(t, c, "a:1", 5)
	register(t, c, "b:2", 5)
	// Heartbeats are tolerated but change nothing.
	if envs := beat(t, c, r1.Server); len(envs) != 0 {
		t.Errorf("heartbeat produced %d envelopes", len(envs))
	}
	if envs := c.Tick(); envs != nil {
		t.Errorf("Tick produced envelopes with health disabled")
	}
	if envs := c.HandleDisconnect(r1.Server); envs != nil {
		t.Errorf("HandleDisconnect produced envelopes with health disabled")
	}
	if _, err := c.Drain(r1.Server, false); err == nil {
		t.Error("Drain must be refused with health disabled")
	}
	if got := c.ActiveServers(); len(got) != 1 || got[0] != r1.Server {
		t.Errorf("ActiveServers = %v", got)
	}
}

// TestSnapshotOmitsHealthFieldsWhenDisabled pins the wire/golden stability
// contract: a health-disabled coordinator's JSON snapshot must not mention
// any health field, so pre-health golden snapshots stay byte-identical.
func TestSnapshotOmitsHealthFieldsWhenDisabled(t *testing.T) {
	c := newTestMC(t)
	register(t, c, "a:1", 5)
	register(t, c, "b:2", 5)
	blob, err := json.Marshal(c.CaptureState())
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"Deaths", "Adoptions", "Drains", "Parked", "Checkpoints", "Beats", "LastBeatUnixNano", "Dead", "Draining", "Retired"} {
		if bytes.Contains(blob, []byte(`"`+field+`"`)) {
			t.Errorf("disabled-health snapshot leaks field %q", field)
		}
	}
}

func TestNewRejectsNegativeHealthConfig(t *testing.T) {
	if _, err := New(Config{World: geom.R(0, 0, 1, 1), HeartbeatEvery: -time.Second}); err == nil {
		t.Error("negative heartbeat interval must be rejected")
	}
	if _, err := New(Config{World: geom.R(0, 0, 1, 1), LeaseMisses: -1}); err == nil {
		t.Error("negative lease misses must be rejected")
	}
}
