// Fleet health: heartbeat leases, death detection, warm-spare adoption and
// operator drain.
//
// The sim proved checkpoint recovery works when a whole run is restarted
// from a snapshot; this file makes the *live* cluster survive the same
// failures without restarting anything. Servers renew a lease with periodic
// Heartbeat frames and ship checkpoint blobs between beats; the coordinator
// expires leases on its clock, declares the holder dead, and hands the dead
// server's partition to the first warm spare (restored from the victim's
// last checkpoint). Everything here is inert while Config.HeartbeatEvery is
// zero, so health-unaware deployments — in particular the deterministic
// simulation — behave exactly as before.
package coordinator

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"matrix/internal/id"
	"matrix/internal/protocol"
)

// adoptChunkSize bounds the blob slice carried by one Adopt frame, mirroring
// the host's snapshot chunking so a large checkpoint never approaches
// protocol.MaxFrameSize.
const adoptChunkSize = 1 << 20

// defaultLeaseMisses is how many beats a server may miss before its lease
// expires when Config.LeaseMisses is zero.
const defaultLeaseMisses = 3

// healthEnabled reports whether heartbeat/lease tracking is on.
func (c *Coordinator) healthEnabled() bool { return c.cfg.HeartbeatEvery > 0 }

func (c *Coordinator) now() time.Time {
	if c.cfg.Clock != nil {
		return c.cfg.Clock.Now()
	}
	return time.Now()
}

// leaseLocked is how long a server may go without beating before it is
// declared dead.
func (c *Coordinator) leaseLocked() time.Duration {
	misses := c.cfg.LeaseMisses
	if misses <= 0 {
		misses = defaultLeaseMisses
	}
	return time.Duration(misses) * c.cfg.HeartbeatEvery
}

func indexOf(s []id.ServerID, v id.ServerID) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	return -1
}

// handleHeartbeat renews from's lease. A beat from a server previously
// declared dead means it was paused or partitioned, not crashed: if its
// region is still parked it is revived in place; if a spare already adopted
// the region the zombie is demoted back into the pool and resynced so it
// redirects any clients it still holds.
func (c *Coordinator) handleHeartbeat(from id.ServerID, hb *protocol.Heartbeat) ([]Envelope, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.servers[from]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownServer, from)
	}
	if !c.healthEnabled() {
		return nil, nil
	}
	st.lastBeat = c.now()
	st.beats++
	st.clients = int(hb.Clients)
	st.cpTick = hb.CheckpointTick
	if !st.dead {
		return nil, nil
	}
	st.dead = false
	if i := indexOf(c.parked, from); i >= 0 {
		// Nobody adopted the region yet: the returning server still owns it.
		c.parked = append(c.parked[:i], c.parked[i+1:]...)
		st.active = true
		return c.resyncLocked(from)
	}
	// Replaced while away: demote to the spare pool and hand clients over.
	st.active = false
	st.draining = false
	if !st.retired && indexOf(c.spares, from) < 0 {
		c.spares = append(c.spares, from)
	}
	return c.resyncLocked(from)
}

// handleCheckpoint accumulates a server's chunked checkpoint upload and
// installs it as the server's recovery blob when the final chunk arrives.
func (c *Coordinator) handleCheckpoint(from id.ServerID, msg *protocol.SnapshotData) ([]Envelope, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.servers[from]; !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownServer, from)
	}
	c.cpPartial[from] = append(c.cpPartial[from], msg.Blob...)
	if msg.Final {
		c.checkpoints[from] = c.cpPartial[from]
		delete(c.cpPartial, from)
	}
	return nil, nil
}

// HandleDisconnect reacts to a server's control connection dropping. With
// health enabled a dropped connection is an immediate lease expiry — a TCP
// reset is a faster death signal than waiting out N missed beats. With
// health disabled it is a no-op, preserving the pre-health contract that a
// reconnecting server resyncs explicitly.
func (c *Coordinator) HandleDisconnect(sid id.ServerID) []Envelope {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.healthEnabled() {
		return nil
	}
	st, ok := c.servers[sid]
	if !ok || st.dead || st.retired {
		return nil
	}
	return c.declareDeadLocked(sid)
}

// Tick advances failure detection: leases older than HeartbeatEvery ×
// LeaseMisses expire, and parked regions retry adoption against any spares
// that have appeared. The coordinator host calls it once per heartbeat
// interval; tests call it after advancing a virtual clock.
func (c *Coordinator) Tick() []Envelope {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.healthEnabled() {
		return nil
	}
	lease := c.leaseLocked()
	now := c.now()
	var expired []id.ServerID
	for sid, st := range c.servers {
		if st.dead || st.retired || st.lastBeat.IsZero() {
			continue
		}
		if now.Sub(st.lastBeat) > lease {
			expired = append(expired, sid)
		}
	}
	sort.Slice(expired, func(i, j int) bool { return expired[i] < expired[j] })
	var out []Envelope
	for _, sid := range expired {
		out = append(out, c.declareDeadLocked(sid)...)
	}
	for len(c.parked) > 0 && len(c.spares) > 0 {
		victim := c.parked[0]
		c.parked = c.parked[1:]
		out = append(out, c.adoptLocked(victim)...)
	}
	return out
}

// declareDeadLocked marks sid dead and starts remediation. A dead spare
// (including a server that crashed mid-drain, which re-pooled when its drain
// was granted) simply leaves the pool; a dead partition owner triggers
// adoption.
func (c *Coordinator) declareDeadLocked(sid id.ServerID) []Envelope {
	st := c.servers[sid]
	st.dead = true
	c.deaths++
	delete(c.cpPartial, sid) // a half-shipped checkpoint is useless
	if i := indexOf(c.spares, sid); i >= 0 {
		c.spares = append(c.spares[:i], c.spares[i+1:]...)
		return nil
	}
	if !st.active || c.m == nil {
		return nil
	}
	st.active = false
	return c.adoptLocked(sid)
}

// adoptLocked hands victim's partition to the first spare in the pool,
// restored from the victim's last shipped checkpoint. With no spare
// available the victim parks for a later Tick or registration to retry —
// regions are never silently dropped.
func (c *Coordinator) adoptLocked(victim id.ServerID) []Envelope {
	if c.m == nil {
		return nil
	}
	if _, err := c.m.Bounds(victim); err != nil {
		return nil // already adopted or reclaimed away
	}
	if len(c.spares) == 0 {
		if indexOf(c.parked, victim) < 0 {
			c.parked = append(c.parked, victim)
		}
		return nil
	}
	spareID := c.spares[0]
	bounds, err := c.m.ReplaceOwner(victim, spareID)
	if err != nil {
		return nil
	}
	c.spares = c.spares[1:]
	spare := c.servers[spareID]
	spare.active = true
	spare.draining = false
	c.adoptions++

	blob := c.checkpoints[victim]
	delete(c.checkpoints, victim)
	corr := c.nextCorrLocked()
	c.recordLocked(Decision{Seq: corr, Kind: "adopt", Server: victim, Child: spareID, Granted: true,
		Inputs: map[string]float64{
			"checkpoint_bytes": float64(len(blob)),
			"checkpoint_tick":  float64(c.servers[victim].cpTick),
			"spares":           float64(len(c.spares)),
			"parked":           float64(len(c.parked)),
		}})

	// Envelope order on the spare's connection is the restore contract:
	// checkpoint chunks, then overlap tables, then the activating
	// RangeUpdate — the spare must hold the victim's world before it owns
	// the victim's rectangle. The handoff list lets it immediately migrate
	// avatars the stale checkpoint places outside the adopted bounds.
	var out []Envelope
	if len(blob) == 0 {
		// Cold adoption: no checkpoint was ever shipped. The spare starts
		// the region empty and clients rebuild their avatars on reconnect.
		out = append(out, Envelope{To: spareID, Msg: &protocol.Adopt{Victim: victim, Bounds: bounds, Final: true, Corr: corr}})
	} else {
		for off := 0; off < len(blob); off += adoptChunkSize {
			end := off + adoptChunkSize
			if end > len(blob) {
				end = len(blob)
			}
			out = append(out, Envelope{To: spareID, Msg: &protocol.Adopt{
				Victim: victim,
				Bounds: bounds,
				Blob:   blob[off:end],
				Final:  end == len(blob),
				Corr:   corr,
			}})
		}
	}
	if tables, err := c.tableEnvelopesLocked(); err == nil {
		out = append(out, tables...)
	}
	out = append(out, Envelope{To: spareID, Msg: &protocol.RangeUpdate{
		Server:  spareID,
		Bounds:  bounds,
		Handoff: c.handoffTargetsLocked(spareID),
		Corr:    corr,
	}})
	// Best-effort demotion in case the victim is a zombie still draining
	// its socket; for a truly dead process the envelope is simply dropped.
	out = append(out, Envelope{To: victim, Msg: &protocol.RangeUpdate{
		Server:  victim,
		Handoff: c.handoffTargetsLocked(victim),
		Corr:    corr,
	}})
	return out
}

// handleDrainRequest services a server-initiated drain (matrix-server
// -drain): the requester gets a DrainReply verdict, then the usual drain
// envelopes.
func (c *Coordinator) handleDrainRequest(from id.ServerID, req *protocol.DrainRequest) ([]Envelope, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	target := req.Server
	if !target.Valid() {
		target = from
	}
	envs, err := c.drainLocked(target, req.Exit)
	if err != nil {
		return []Envelope{{To: from, Msg: &protocol.DrainReply{Granted: false, Reason: err.Error()}}}, nil
	}
	return append([]Envelope{{To: from, Msg: &protocol.DrainReply{Granted: true}}}, envs...), nil
}

// Drain evacuates target's partition and removes it from service: its
// rectangle goes to a warm spare if one is free, else merges back into its
// split-tree parent. The drainee migrates every client through the live
// handoff path, then re-joins the spare pool — or retires for good when
// exit is set. Operator tooling (the coordinator admin port) calls this
// directly; servers request it over the wire via DrainRequest.
func (c *Coordinator) Drain(target id.ServerID, exit bool) ([]Envelope, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.drainLocked(target, exit)
}

func (c *Coordinator) drainLocked(target id.ServerID, exit bool) ([]Envelope, error) {
	if !c.healthEnabled() {
		return nil, errors.New("coordinator: health tracking disabled (set -heartbeat-every)")
	}
	st, ok := c.servers[target]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownServer, target)
	}
	switch {
	case st.dead:
		return nil, fmt.Errorf("coordinator: server %v is dead", target)
	case st.retired:
		return nil, fmt.Errorf("coordinator: server %v already retired", target)
	case st.draining:
		return nil, fmt.Errorf("coordinator: server %v already draining", target)
	}
	if !st.active {
		// An idle spare has nothing to migrate; draining it only makes
		// sense as a retirement.
		if !exit {
			return nil, fmt.Errorf("%w: %v is already an idle spare", ErrNotActive, target)
		}
		if i := indexOf(c.spares, target); i >= 0 {
			c.spares = append(c.spares[:i], c.spares[i+1:]...)
		}
		st.retired = true
		c.drains++
		corr := c.nextCorrLocked()
		c.recordLocked(Decision{Seq: corr, Kind: "drain", Server: target, Granted: true,
			Inputs: map[string]float64{"exit": 1, "spares": float64(len(c.spares))}})
		return []Envelope{{To: target, Msg: &protocol.DrainRequest{Server: target, Exit: true, Corr: corr}}}, nil
	}
	if c.m == nil {
		return nil, errors.New("coordinator: no active map")
	}
	drainClients := st.clients
	corr := c.nextCorrLocked()
	var out []Envelope
	var successor id.ServerID
	if len(c.spares) > 0 {
		// A warm spare takes over the exact rectangle; the drainee's
		// clients and objects flow to it through live handoff, so no
		// checkpoint is involved.
		spareID := c.spares[0]
		bounds, err := c.m.ReplaceOwner(target, spareID)
		if err != nil {
			return nil, err
		}
		c.spares = c.spares[1:]
		spare := c.servers[spareID]
		spare.active = true
		spare.draining = false
		successor = spareID
		out = append(out, Envelope{To: spareID, Msg: &protocol.RangeUpdate{
			Server:  spareID,
			Bounds:  bounds,
			Handoff: c.handoffTargetsLocked(spareID),
			Corr:    corr,
		}})
	} else if c.m.CanReclaim(target) {
		// No spare capacity: fold the rectangle back into the parent, the
		// same merge a reclamation performs.
		parent, merged, err := c.m.Reclaim(target)
		if err != nil {
			return nil, err
		}
		successor = parent
		out = append(out, Envelope{To: parent, Msg: &protocol.RangeUpdate{Server: parent, Bounds: merged, Corr: corr}})
	} else {
		return nil, fmt.Errorf("%w: no spare and partition of %v is not mergeable", ErrPoolExhausted, target)
	}
	st.active = false
	st.clients = 0
	st.draining = true
	c.drains++
	c.recordLocked(Decision{Seq: corr, Kind: "drain", Server: target, Child: successor, Granted: true,
		Inputs: map[string]float64{"clients": float64(drainClients), "exit": b2f(exit), "spares": float64(len(c.spares))}})
	if exit {
		st.retired = true
	} else {
		// Re-pool immediately: a crash mid-drain then reads as a dead
		// spare (regions are already elsewhere), not a lost partition.
		c.spares = append(c.spares, target)
	}
	if tables, err := c.tableEnvelopesLocked(); err == nil {
		out = append(out, tables...)
	}
	// Deactivate the drainee last so its successors' tables are already
	// out when it starts migrating clients away.
	out = append(out, Envelope{To: target, Msg: &protocol.RangeUpdate{
		Server:  target,
		Handoff: c.handoffTargetsLocked(target),
		Corr:    corr,
	}})
	out = append(out, Envelope{To: target, Msg: &protocol.DrainRequest{Server: target, Exit: exit, Corr: corr}})
	return out, nil
}

// b2f renders a flag as a decision input.
func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// --- health introspection (tooling, /metrics and tests) ---

// Deaths returns the number of servers declared dead so far.
func (c *Coordinator) Deaths() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.deaths
}

// Adoptions returns the number of partitions adopted by spares.
func (c *Coordinator) Adoptions() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.adoptions
}

// Drains returns the number of granted drains.
func (c *Coordinator) Drains() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.drains
}

// Parked returns the dead owners whose regions still await a spare, in
// retry (FIFO) order.
func (c *Coordinator) Parked() []id.ServerID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]id.ServerID(nil), c.parked...)
}

// CheckpointSize returns the byte length of sid's last complete checkpoint
// (zero when none was shipped).
func (c *Coordinator) CheckpointSize(sid id.ServerID) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.checkpoints[sid])
}
