package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WriteJSON renders the ring as Chrome trace-event JSON (the JSON Object
// Format: {"traceEvents": [...]}) with microsecond timestamps, the shape
// Perfetto and chrome://tracing load directly. A nil tracer writes an empty
// trace, so dump endpoints need no nil checks.
func (t *Tracer) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	for i, e := range t.Events() {
		if i > 0 {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		if err := writeEventJSON(bw, e); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// writeEventJSON renders one event. Hand-rolled rather than encoding/json
// so a quarter-million-event ring dumps without building an []any mirror.
func writeEventJSON(bw *bufio.Writer, e Event) error {
	bw.WriteString(`{"name":`)
	writeJSONString(bw, e.Name)
	bw.WriteString(`,"ph":"`)
	bw.WriteByte(e.Ph)
	bw.WriteString(`","ts":`)
	bw.WriteString(strconv.FormatInt(e.TS, 10))
	bw.WriteString(`,"pid":`)
	bw.WriteString(strconv.FormatInt(int64(e.Pid), 10))
	bw.WriteString(`,"tid":`)
	bw.WriteString(strconv.FormatInt(int64(e.Tid), 10))
	if e.Cat != "" {
		bw.WriteString(`,"cat":`)
		writeJSONString(bw, e.Cat)
	}
	if e.Ph == PhaseSlice {
		bw.WriteString(`,"dur":`)
		bw.WriteString(strconv.FormatInt(e.Dur, 10))
	}
	if e.Ph == PhaseAsyncBegin || e.Ph == PhaseAsyncInstant || e.Ph == PhaseAsyncEnd {
		// Nestable async events correlate on "id2.global" (string form keeps
		// 64-bit ids exact across JSON implementations).
		bw.WriteString(`,"id2":{"global":"0x`)
		bw.WriteString(strconv.FormatUint(e.ID, 16))
		bw.WriteString(`"}`)
	}
	if e.ArgName != "" {
		bw.WriteString(`,"args":{`)
		writeJSONString(bw, e.ArgName)
		bw.WriteByte(':')
		if e.Arg2 != "" {
			writeJSONString(bw, e.Arg2)
		} else {
			bw.WriteString(strconv.FormatInt(e.Arg, 10))
		}
		bw.WriteByte('}')
	}
	bw.WriteByte('}')
	return nil
}

// writeJSONString writes s as a JSON string. Names are static ASCII in
// practice; escape defensively anyway.
func writeJSONString(bw *bufio.Writer, s string) {
	bw.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			bw.WriteByte('\\')
			bw.WriteByte(c)
		case c < 0x20:
			fmt.Fprintf(bw, `\u%04x`, c)
		default:
			bw.WriteByte(c)
		}
	}
	bw.WriteByte('"')
}

// WriteText renders the ring as a human-readable dump, one event per line,
// sorted by timestamp. Useful when a browser is out of reach.
func (t *Tracer) WriteText(w io.Writer) error {
	events := t.Events()
	sort.SliceStable(events, func(i, j int) bool { return events[i].TS < events[j].TS })
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# trace: %d events, %d dropped\n", len(events), t.Dropped())
	for _, e := range events {
		if e.Ph == PhaseMetadata {
			fmt.Fprintf(bw, "meta pid=%d tid=%d %s=%s\n", e.Pid, e.Tid, e.Name, e.Arg2)
			continue
		}
		fmt.Fprintf(bw, "%12dus pid=%-3d tid=%-3d %c %-20s", e.TS, e.Pid, e.Tid, e.Ph, e.Name)
		if e.Ph == PhaseSlice {
			fmt.Fprintf(bw, " dur=%dus", e.Dur)
		}
		if e.Ph == PhaseAsyncBegin || e.Ph == PhaseAsyncInstant || e.Ph == PhaseAsyncEnd {
			fmt.Fprintf(bw, " id=0x%x", e.ID)
		}
		if e.ArgName != "" {
			if e.Arg2 != "" {
				fmt.Fprintf(bw, " %s=%s", e.ArgName, e.Arg2)
			} else {
				fmt.Fprintf(bw, " %s=%d", e.ArgName, e.Arg)
			}
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// validPhases is the set of "ph" values this package emits; ValidateJSON
// rejects anything else.
var validPhases = map[string]bool{
	"X": true, "i": true, "b": true, "n": true, "e": true, "C": true, "M": true,
}

// ValidateJSON structurally checks data against the Chrome trace-event JSON
// Object Format: a traceEvents array whose members carry name/ph/ts/pid/tid,
// where complete events carry a non-negative dur and async events carry a
// correlation id. This is the schema contract Perfetto's importer relies
// on; tests use it to keep exports loadable.
func ValidateJSON(data []byte) error {
	var top struct {
		TraceEvents []map[string]json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &top); err != nil {
		return fmt.Errorf("trace: not valid JSON: %w", err)
	}
	if top.TraceEvents == nil {
		return fmt.Errorf("trace: missing traceEvents array")
	}
	for i, ev := range top.TraceEvents {
		var ph, name string
		if err := unmarshalField(ev, "ph", &ph); err != nil {
			return fmt.Errorf("trace: event %d: %w", i, err)
		}
		if !validPhases[ph] {
			return fmt.Errorf("trace: event %d: unknown phase %q", i, ph)
		}
		if err := unmarshalField(ev, "name", &name); err != nil {
			return fmt.Errorf("trace: event %d: %w", i, err)
		}
		if name == "" {
			return fmt.Errorf("trace: event %d: empty name", i)
		}
		if ph == "M" {
			continue // metadata events carry no timestamp
		}
		var ts float64
		if err := unmarshalField(ev, "ts", &ts); err != nil {
			return fmt.Errorf("trace: event %d (%s): %w", i, name, err)
		}
		var pid, tid int64
		if err := unmarshalField(ev, "pid", &pid); err != nil {
			return fmt.Errorf("trace: event %d (%s): %w", i, name, err)
		}
		if err := unmarshalField(ev, "tid", &tid); err != nil {
			return fmt.Errorf("trace: event %d (%s): %w", i, name, err)
		}
		if ph == "X" {
			var dur float64
			if err := unmarshalField(ev, "dur", &dur); err != nil {
				return fmt.Errorf("trace: event %d (%s): %w", i, name, err)
			}
			if dur < 0 {
				return fmt.Errorf("trace: event %d (%s): negative dur %g", i, name, dur)
			}
		}
		if ph == "b" || ph == "n" || ph == "e" {
			if _, ok := ev["id"]; !ok {
				if _, ok := ev["id2"]; !ok {
					return fmt.Errorf("trace: event %d (%s): async event without id", i, name)
				}
			}
		}
	}
	return nil
}

// unmarshalField decodes one required field of a raw event object.
func unmarshalField(ev map[string]json.RawMessage, key string, dst any) error {
	raw, ok := ev[key]
	if !ok {
		return fmt.Errorf("missing %q", key)
	}
	if err := json.Unmarshal(raw, dst); err != nil {
		return fmt.Errorf("bad %q: %w", key, err)
	}
	return nil
}
