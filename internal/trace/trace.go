// Package trace is a ring-buffered, near-zero-overhead span/event tracer
// for the Matrix middleware. One Tracer follows packets and tick phases
// across every layer of a process and exports the ring as Chrome
// trace-event JSON (loadable in Perfetto / chrome://tracing) or as a
// plain-text dump.
//
// Design constraints, in order:
//
//  1. Off means off. A nil *Tracer is the disabled tracer: every method is
//     nil-safe and returns immediately, so call sites hold a possibly-nil
//     pointer and emit unconditionally. The disabled path performs zero
//     allocations (pinned by test) and must never influence simulation
//     results — tracing is not allowed on the fingerprint path.
//
//  2. Enabled is cheap. Emitting an event is one atomic add to reserve a
//     ring slot plus a struct store: no locks, no fmt, no interface boxing,
//     no allocations (also pinned by test). Event names must be static
//     strings; dynamic context travels in the integer Arg/ID fields.
//
//  3. The ring forgets. Capacity is fixed at construction; when the ring
//     wraps, the oldest events are overwritten and Dropped() counts them.
//     Exports therefore show the most recent window of activity, which is
//     what a "why is it slow right now" investigation wants.
//
// Clocks are pluggable: the deterministic simulation installs a virtual
// clock anchored to the tick (see internal/sim), live hosts use wall time
// since process start. Timestamps are microseconds, matching the Chrome
// trace-event format.
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// Phase bytes follow the Chrome trace-event format ("ph" field).
const (
	PhaseSlice        = 'X' // complete event: ts + dur
	PhaseInstant      = 'i' // point-in-time marker
	PhaseAsyncBegin   = 'b' // async (nestable) span start, correlated by ID
	PhaseAsyncInstant = 'n' // async span step
	PhaseAsyncEnd     = 'e' // async span end
	PhaseCounter      = 'C' // counter sample
	PhaseMetadata     = 'M' // process/thread naming
)

// Event is one fixed-size ring slot. Strings must be static (no per-event
// formatting); per-event data goes in ID and Arg.
type Event struct {
	TS   int64  // microseconds, tracer clock
	Dur  int64  // microseconds, PhaseSlice only
	ID   uint64 // async-span correlation id, async phases only
	Arg  int64  // value of ArgName (slices/instants) or counter value
	Name string // event name (static string)
	Cat  string // category (static string; groups async spans)
	Arg2 string // value of ArgName when textual (metadata names)
	Pid  int32  // trace process id (a logical component, not an OS pid)
	Tid  int32  // trace thread id within Pid
	Ph   byte   // one of the Phase* bytes
	// ArgName labels Arg (or Arg2) in the exported args object; empty means
	// no args.
	ArgName string
}

// Tracer records Events into a fixed ring. The zero value is not usable;
// construct with New. A nil Tracer is the disabled tracer.
type Tracer struct {
	ring []Event
	mask uint64
	pos  atomic.Uint64

	// ringMu orders ring reads against emitters: emit holds the read side
	// (two uncontended atomic ops — the fast path stays allocation-free),
	// Events the write side, so a live HTTP dump never observes a slot
	// mid-store. Emitter-vs-emitter wrap reuse is governed separately; see
	// emit.
	ringMu sync.RWMutex

	clockMu sync.Mutex
	clock   func() int64
	start   time.Time
}

// DefaultCapacity is the ring size used by New when cap <= 0: large enough
// that a full flashcrowd tick window (phase slices + packet spans) fits.
const DefaultCapacity = 1 << 18

// New returns a Tracer with capacity rounded up to a power of two (cap <= 0
// selects DefaultCapacity). The default clock is wall microseconds since
// New was called; override with SetClock before emitting.
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	t := &Tracer{ring: make([]Event, n), mask: uint64(n - 1), start: time.Now()}
	t.clock = func() int64 { return time.Since(t.start).Microseconds() }
	return t
}

// SetClock replaces the tracer clock (microseconds). The simulation installs
// a virtual clock here so trace time is tick time, keeping wall-clock jitter
// out of the deterministic timeline. Call before events are emitted.
func (t *Tracer) SetClock(now func() int64) {
	if t == nil {
		return
	}
	t.clockMu.Lock()
	t.clock = now
	t.clockMu.Unlock()
}

// Now reads the tracer clock in microseconds. Returns 0 on the nil tracer,
// so `start := tr.Now()` is safe to compute unconditionally.
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return t.clock()
}

// emit reserves a ring slot and stores e. Concurrent emitters get distinct
// logical slots from the atomic add; physical slots are only reused after a
// full wrap, so concurrent use is race-free as long as fewer than capacity
// events are emitted between synchronization points among the emitters. The
// engine holds this by construction: workers emit at most a few thousand
// events per tick into a quarter-million-slot ring and rejoin the stepping
// goroutine at the phase barrier every tick.
func (t *Tracer) emit(e Event) {
	t.ringMu.RLock()
	idx := t.pos.Add(1) - 1
	t.ring[idx&t.mask] = e
	t.ringMu.RUnlock()
}

// Slice records a complete span [start, start+dur) on (pid, tid).
func (t *Tracer) Slice(pid, tid int32, name string, start, dur int64) {
	if t == nil {
		return
	}
	t.emit(Event{Ph: PhaseSlice, Pid: pid, Tid: tid, Name: name, TS: start, Dur: dur})
}

// SliceArg is Slice with one integer argument (e.g. server=3).
func (t *Tracer) SliceArg(pid, tid int32, name string, start, dur int64, argName string, arg int64) {
	if t == nil {
		return
	}
	t.emit(Event{Ph: PhaseSlice, Pid: pid, Tid: tid, Name: name, TS: start, Dur: dur, ArgName: argName, Arg: arg})
}

// Instant records a point event on (pid, tid).
func (t *Tracer) Instant(pid, tid int32, name string, ts int64) {
	if t == nil {
		return
	}
	t.emit(Event{Ph: PhaseInstant, Pid: pid, Tid: tid, Name: name, TS: ts})
}

// InstantArg is Instant with one integer argument.
func (t *Tracer) InstantArg(pid, tid int32, name string, ts int64, argName string, arg int64) {
	if t == nil {
		return
	}
	t.emit(Event{Ph: PhaseInstant, Pid: pid, Tid: tid, Name: name, TS: ts, ArgName: argName, Arg: arg})
}

// AsyncBegin opens an async span correlated by (cat, id). Async spans may
// hop between pids — that is the point: a packet span begins on the server
// that admitted it and steps across every server that touches it.
func (t *Tracer) AsyncBegin(pid int32, cat, name string, id uint64, ts int64) {
	if t == nil {
		return
	}
	t.emit(Event{Ph: PhaseAsyncBegin, Pid: pid, Cat: cat, Name: name, ID: id, TS: ts})
}

// AsyncStep records an instant inside the async span (cat, id).
func (t *Tracer) AsyncStep(pid int32, cat, name string, id uint64, ts int64) {
	if t == nil {
		return
	}
	t.emit(Event{Ph: PhaseAsyncInstant, Pid: pid, Cat: cat, Name: name, ID: id, TS: ts})
}

// AsyncStepArg is AsyncStep with one integer argument (e.g. peer=4).
func (t *Tracer) AsyncStepArg(pid int32, cat, name string, id uint64, ts int64, argName string, arg int64) {
	if t == nil {
		return
	}
	t.emit(Event{Ph: PhaseAsyncInstant, Pid: pid, Cat: cat, Name: name, ID: id, TS: ts, ArgName: argName, Arg: arg})
}

// AsyncEnd closes the async span (cat, id).
func (t *Tracer) AsyncEnd(pid int32, cat, name string, id uint64, ts int64) {
	if t == nil {
		return
	}
	t.emit(Event{Ph: PhaseAsyncEnd, Pid: pid, Cat: cat, Name: name, ID: id, TS: ts})
}

// Counter records a sampled value rendered as a counter track.
func (t *Tracer) Counter(pid int32, name string, ts, value int64) {
	if t == nil {
		return
	}
	t.emit(Event{Ph: PhaseCounter, Pid: pid, Name: name, TS: ts, ArgName: "value", Arg: value})
}

// NameProcess labels pid in the trace viewer.
func (t *Tracer) NameProcess(pid int32, name string) {
	if t == nil {
		return
	}
	t.emit(Event{Ph: PhaseMetadata, Pid: pid, Name: "process_name", ArgName: "name", Arg2: name})
}

// NameThread labels (pid, tid) in the trace viewer.
func (t *Tracer) NameThread(pid, tid int32, name string) {
	if t == nil {
		return
	}
	t.emit(Event{Ph: PhaseMetadata, Pid: pid, Tid: tid, Name: "thread_name", ArgName: "name", Arg2: name})
}

// Len reports how many events the ring currently holds.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	n := t.pos.Load()
	if n > uint64(len(t.ring)) {
		return len(t.ring)
	}
	return int(n)
}

// Dropped reports how many events were overwritten after the ring wrapped.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	n := t.pos.Load()
	if n <= uint64(len(t.ring)) {
		return 0
	}
	return n - uint64(len(t.ring))
}

// Events returns a copy of the ring in emission order (oldest first).
// Metadata events are hoisted to the front so process/thread names survive
// ring wrap. Safe to call while emitters run — the copy excludes them for
// its duration — so a live HTTP dump sees a consistent window.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.ringMu.Lock()
	n := t.pos.Load()
	var out []Event
	if n <= uint64(len(t.ring)) {
		out = append(out, t.ring[:n]...)
	} else {
		head := n & t.mask
		out = append(out, t.ring[head:]...)
		out = append(out, t.ring[:head]...)
	}
	t.ringMu.Unlock()
	// Stable partition: metadata first, everything else in emission order.
	meta := make([]Event, 0, 8)
	rest := out[:0:len(out)]
	for _, e := range out {
		if e.Ph == PhaseMetadata {
			meta = append(meta, e)
		} else {
			rest = append(rest, e)
		}
	}
	return append(meta, rest...)
}
