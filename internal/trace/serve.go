package trace

import (
	"fmt"
	"io"
	"net"
	"net/http"
)

// traceServer ties the dump HTTP server to its listener for Close.
type traceServer struct {
	srv *http.Server
}

// Close implements io.Closer.
func (s *traceServer) Close() error { return s.srv.Close() }

// Serve starts an HTTP server on addr exposing the live ring:
//
//	GET /trace       Chrome trace-event JSON (load in Perfetto)
//	GET /trace.json  alias for /trace
//	GET /trace.txt   plain-text dump
//
// Each request snapshots the ring at that moment; dumping does not pause
// the traced process, so a dump taken mid-tick can contain a torn event at
// the write frontier. It returns the bound address and a closer that stops
// the server.
func (t *Tracer) Serve(addr string) (string, io.Closer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("trace: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	dumpJSON := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = t.WriteJSON(w)
	}
	mux.HandleFunc("/trace", dumpJSON)
	mux.HandleFunc("/trace.json", dumpJSON)
	mux.HandleFunc("/trace.txt", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = t.WriteText(w)
	})
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), &traceServer{srv: srv}, nil
}
