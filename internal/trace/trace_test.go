package trace

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// TestNilTracerIsSafe exercises every method on the disabled (nil) tracer.
func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.SetClock(func() int64 { return 42 })
	if got := tr.Now(); got != 0 {
		t.Fatalf("nil Now() = %d, want 0", got)
	}
	tr.Slice(1, 2, "s", 0, 1)
	tr.SliceArg(1, 2, "s", 0, 1, "k", 3)
	tr.Instant(1, 2, "i", 0)
	tr.InstantArg(1, 2, "i", 0, "k", 3)
	tr.AsyncBegin(1, "c", "a", 7, 0)
	tr.AsyncStep(1, "c", "a", 7, 1)
	tr.AsyncStepArg(1, "c", "a", 7, 1, "k", 3)
	tr.AsyncEnd(1, "c", "a", 7, 2)
	tr.Counter(1, "n", 0, 9)
	tr.NameProcess(1, "p")
	tr.NameThread(1, 2, "t")
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatalf("nil tracer reported state: len=%d dropped=%d", tr.Len(), tr.Dropped())
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("nil WriteJSON: %v", err)
	}
	if err := ValidateJSON(buf.Bytes()); err != nil {
		t.Fatalf("nil tracer JSON invalid: %v", err)
	}
}

// TestDisabledPathZeroAllocs pins the acceptance criterion: the disabled
// (nil-tracer) path is 0 allocs/op.
func TestDisabledPathZeroAllocs(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		start := tr.Now()
		tr.Slice(1, 0, "tick", start, tr.Now()-start)
		tr.AsyncBegin(1, "packet", "packet", 123, start)
		tr.AsyncStepArg(1, "packet", "peer-forward", 123, start, "peer", 4)
		tr.AsyncEnd(1, "packet", "packet", 123, start)
		tr.Counter(1, "queue", start, 7)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer path allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestEnabledPathZeroAllocs pins that emitting into the ring allocates
// nothing either: the hot path is an atomic add plus a struct store.
func TestEnabledPathZeroAllocs(t *testing.T) {
	tr := New(1 << 10)
	tr.SetClock(func() int64 { return 5 })
	allocs := testing.AllocsPerRun(1000, func() {
		start := tr.Now()
		tr.Slice(1, 0, "tick", start, 10)
		tr.AsyncBegin(1, "packet", "packet", 123, start)
		tr.AsyncStepArg(1, "packet", "peer-forward", 123, start, "peer", 4)
		tr.AsyncEnd(1, "packet", "packet", 123, start)
		tr.Counter(1, "queue", start, 7)
	})
	if allocs != 0 {
		t.Fatalf("enabled tracer path allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestRingWrap checks capacity rounding, drop accounting, and that Events
// returns the newest window with metadata hoisted to the front.
func TestRingWrap(t *testing.T) {
	tr := New(100) // rounds up to 128
	tr.NameProcess(1, "engine")
	for i := 0; i < 200; i++ {
		tr.Instant(1, 0, "e", int64(i))
	}
	if tr.Len() != 128 {
		t.Fatalf("Len = %d, want 128", tr.Len())
	}
	if tr.Dropped() != 201-128 {
		t.Fatalf("Dropped = %d, want %d", tr.Dropped(), 201-128)
	}
	evs := tr.Events()
	if len(evs) != 128 {
		t.Fatalf("Events len = %d, want 128", len(evs))
	}
	// The newest instant must be the final event, and metadata (if still in
	// the window) comes first. The NameProcess event was overwritten here,
	// so every event is an instant and the oldest surviving TS is 200-128+1.
	if last := evs[len(evs)-1]; last.TS != 199 {
		t.Fatalf("last event TS = %d, want 199", last.TS)
	}
	if first := evs[0]; first.TS != 199-127 {
		t.Fatalf("first event TS = %d, want %d", first.TS, 199-127)
	}
}

// TestMetadataSurvivesWrap: metadata hoisting only applies to events still
// in the ring; emit metadata and stay under capacity, it leads the export.
func TestMetadataSurvivesWrap(t *testing.T) {
	tr := New(128)
	tr.Instant(1, 0, "early", 1)
	tr.NameProcess(1, "engine")
	tr.Instant(1, 0, "late", 2)
	evs := tr.Events()
	if len(evs) != 3 || evs[0].Ph != PhaseMetadata {
		t.Fatalf("metadata not hoisted: %+v", evs)
	}
}

// TestWriteJSONShape decodes the export with encoding/json and checks the
// exact field layout Perfetto expects for each phase.
func TestWriteJSONShape(t *testing.T) {
	tr := New(1 << 8)
	tr.NameProcess(7, "server-7")
	tr.NameThread(7, 2, "worker-2")
	tr.SliceArg(7, 2, "phase-a", 100, 50, "server", 3)
	tr.Instant(7, 0, "mark \"x\"", 120)
	tr.AsyncBegin(7, "packet", "packet", 0xdeadbeef, 100)
	tr.AsyncStepArg(7, "packet", "peer-forward", 0xdeadbeef, 110, "peer", 4)
	tr.AsyncEnd(7, "packet", "packet", 0xdeadbeef, 130)
	tr.Counter(7, "queue-len", 140, 17)

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := ValidateJSON(buf.Bytes()); err != nil {
		t.Fatalf("export fails own validator: %v\n%s", err, buf.String())
	}
	var top struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &top); err != nil {
		t.Fatalf("export is not JSON: %v", err)
	}
	if len(top.TraceEvents) != 8 {
		t.Fatalf("got %d events, want 8", len(top.TraceEvents))
	}
	byName := func(name, ph string) map[string]any {
		for _, e := range top.TraceEvents {
			if e["name"] == name && e["ph"] == ph {
				return e
			}
		}
		t.Fatalf("no event name=%q ph=%q", name, ph)
		return nil
	}
	slice := byName("phase-a", "X")
	if slice["dur"].(float64) != 50 || slice["ts"].(float64) != 100 {
		t.Fatalf("slice fields wrong: %v", slice)
	}
	if args := slice["args"].(map[string]any); args["server"].(float64) != 3 {
		t.Fatalf("slice args wrong: %v", args)
	}
	begin := byName("packet", "b")
	id2 := begin["id2"].(map[string]any)
	if id2["global"] != "0xdeadbeef" {
		t.Fatalf("async id wrong: %v", begin)
	}
	if begin["cat"] != "packet" {
		t.Fatalf("async cat wrong: %v", begin)
	}
	meta := byName("process_name", "M")
	if meta["args"].(map[string]any)["name"] != "server-7" {
		t.Fatalf("process metadata wrong: %v", meta)
	}
	ctr := byName("queue-len", "C")
	if ctr["args"].(map[string]any)["value"].(float64) != 17 {
		t.Fatalf("counter args wrong: %v", ctr)
	}
	// The quoted instant name must round-trip through escaping.
	byName(`mark "x"`, "i")
}

// TestValidateJSONRejects feeds the validator malformed documents.
func TestValidateJSONRejects(t *testing.T) {
	bad := []struct{ name, doc string }{
		{"not json", `{`},
		{"no traceEvents", `{"foo":1}`},
		{"unknown phase", `{"traceEvents":[{"name":"x","ph":"Z","ts":0,"pid":0,"tid":0}]}`},
		{"missing ts", `{"traceEvents":[{"name":"x","ph":"i","pid":0,"tid":0}]}`},
		{"missing name", `{"traceEvents":[{"ph":"i","ts":0,"pid":0,"tid":0}]}`},
		{"slice without dur", `{"traceEvents":[{"name":"x","ph":"X","ts":0,"pid":0,"tid":0}]}`},
		{"async without id", `{"traceEvents":[{"name":"x","ph":"b","ts":0,"pid":0,"tid":0}]}`},
	}
	for _, tc := range bad {
		if err := ValidateJSON([]byte(tc.doc)); err == nil {
			t.Errorf("%s: validator accepted %s", tc.name, tc.doc)
		}
	}
	ok := `{"traceEvents":[{"name":"x","ph":"b","ts":0,"pid":0,"tid":0,"id":"0x1"}]}`
	if err := ValidateJSON([]byte(ok)); err != nil {
		t.Errorf("validator rejected plain-id async event: %v", err)
	}
}

// TestConcurrentEmit hammers the ring from many goroutines under the race
// detector: distinct atomic slots mean no data races and no lost counts.
func TestConcurrentEmit(t *testing.T) {
	// Stay under capacity: concurrent emitters may only share the ring
	// race-free while a wrap cannot reuse a slot between sync points (the
	// engine's per-tick worker barrier guarantees this in real use).
	tr := New(1 << 13)
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.SliceArg(1, int32(w), "work", int64(i), 1, "worker", int64(w))
			}
		}(w)
	}
	wg.Wait()
	if got := tr.pos.Load(); got != workers*per {
		t.Fatalf("emitted %d events, want %d", got, workers*per)
	}
}

// TestWriteText smoke-checks the plain-text dump.
func TestWriteText(t *testing.T) {
	tr := New(1 << 8)
	tr.NameProcess(1, "engine")
	tr.Slice(1, 0, "tick", 100, 42)
	tr.AsyncBegin(1, "packet", "packet", 9, 101)
	var buf bytes.Buffer
	if err := tr.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"tick", "dur=42us", "id=0x9", "process_name=engine", "3 events"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text dump missing %q:\n%s", want, out)
		}
	}
}

// TestServe dumps the ring over HTTP and validates both endpoints.
func TestServe(t *testing.T) {
	tr := New(1 << 8)
	tr.Slice(1, 0, "tick", 0, 10)
	addr, closer, err := tr.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer closer.Close()
	resp, err := http.Get("http://" + addr + "/trace")
	if err != nil {
		t.Fatalf("GET /trace: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := ValidateJSON(body); err != nil {
		t.Fatalf("/trace body invalid: %v", err)
	}
	resp, err = http.Get("http://" + addr + "/trace.txt")
	if err != nil {
		t.Fatalf("GET /trace.txt: %v", err)
	}
	txt, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(txt), "tick") {
		t.Fatalf("/trace.txt missing event:\n%s", txt)
	}
}
