package protocol

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"matrix/internal/geom"
	"matrix/internal/id"
	"matrix/internal/overlap"
)

// roundTrip marshals and unmarshals m, failing the test on any error.
func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	frame, err := Marshal(m)
	if err != nil {
		t.Fatalf("Marshal(%v): %v", m.MsgType(), err)
	}
	got, err := Unmarshal(frame)
	if err != nil {
		t.Fatalf("Unmarshal(%v): %v", m.MsgType(), err)
	}
	return got
}

func TestRoundTripAllTypes(t *testing.T) {
	msgs := []Message{
		&GameUpdate{
			Client:   42,
			Seq:      7,
			Kind:     KindMove,
			Origin:   geom.Pt(1.5, -2.25),
			Dest:     geom.Pt(3, 4),
			SentUnix: 123456789,
			Payload:  []byte("fire!"),
		},
		&GameUpdate{}, // zero payload
		&Forward{From: 3, Update: GameUpdate{Client: 1, Kind: KindAction, Payload: []byte{0, 1, 2}}},
		&RegisterRequest{Addr: "10.0.0.1:4000", Radius: 25.5},
		&RegisterReply{Server: 5, Bounds: geom.R(0, 0, 50, 100), World: geom.R(0, 0, 100, 100)},
		&LoadReport{Server: 2, Clients: 312, QueueLen: 98},
		&OverlapTable{
			Server:  1,
			Version: 9,
			Bounds:  geom.R(50, 0, 100, 100),
			Radius:  5,
			Regions: []TableRegion{
				{Bounds: geom.R(50, 0, 55, 100), Peers: []id.ServerID{2}},
				{Bounds: geom.R(50, 0, 55, 5), Peers: []id.ServerID{2, 3}},
			},
			Peers: []PeerAddr{{Server: 2, Addr: "a:1"}, {Server: 3, Addr: "b:2"}},
		},
		&OverlapTable{Server: 4, Version: 1, Bounds: geom.R(0, 0, 1, 1)}, // empty table
		&SplitRequest{Server: 1, Clients: 450},
		&SplitReply{Granted: true, Child: 9, ChildAddr: "c:3", Keep: geom.R(0, 0, 1, 1), Give: geom.R(1, 0, 2, 1)},
		&SplitReply{Granted: false, Reason: "pool exhausted"},
		&ReclaimRequest{Parent: 1, Child: 2},
		&ReclaimReply{Granted: true, Merged: geom.R(0, 0, 2, 2)},
		&ReclaimReply{Granted: false, Reason: "child too loaded"},
		&Redirect{Client: 77, NewOwner: 4, NewAddr: "d:4"},
		&StateTransfer{
			From: 1, To: 2, Final: true,
			Objects: []ObjectState{
				{Object: 1, Client: 9, Pos: geom.Pt(4, 5), Payload: []byte("hp=50")},
				{Object: 2, Pos: geom.Pt(6, 7)},
			},
		},
		&StateTransfer{From: 1, To: 2}, // empty transfer
		&NonProximalQuery{Server: 3, Point: geom.Pt(10, 20), Radius: 100},
		&NonProximalReply{Servers: []id.ServerID{1, 2, 3}, Peers: []PeerAddr{{Server: 1, Addr: "x:1"}}},
		&NonProximalReply{},
		&ClientHello{Client: 12, Pos: geom.Pt(1, 2)},
		&ClientHello{Client: 12, Pos: geom.Pt(1, 2), Token: "s3cret"},
		&ClientWelcome{Server: 2, Bounds: geom.R(0, 0, 10, 10)},
		&RangeUpdate{Server: 6, Bounds: geom.R(5, 5, 10, 10)},
		&RangeUpdate{
			Server: 6, Bounds: geom.R(5, 5, 10, 10),
			Handoff: []HandoffTarget{{Server: 7, Addr: "h:7", Bounds: geom.R(0, 0, 5, 10)}},
		},
		&Ack{Of: TypeSplitRequest},
		&ErrorMsg{Of: TypeReclaimRequest, Reason: "no such child"},
		&SnapshotRequest{},
		&SnapshotData{Blob: []byte(`{"Version":1}`)},
		&SnapshotData{Blob: []byte("chunk"), Final: true},
		&SnapshotData{Final: true}, // empty final chunk
		&Heartbeat{Server: 3, Clients: 12, QueueLen: 4, CheckpointTick: 99},
		&Heartbeat{},
		&DrainRequest{Server: 7, Exit: true},
		&DrainRequest{Server: 7},
		&DrainReply{Granted: true},
		&DrainReply{Granted: false, Reason: "no spare capacity"},
		&Adopt{Victim: 2, Bounds: geom.R(0, 0, 50, 100), Blob: []byte("blob"), Final: true},
		&Adopt{Victim: 2, Final: true}, // cold adoption: no checkpoint
	}
	for _, m := range msgs {
		m := m
		t.Run(m.MsgType().String(), func(t *testing.T) {
			got := roundTrip(t, m)
			if got.MsgType() != m.MsgType() {
				t.Fatalf("type changed: %v -> %v", m.MsgType(), got.MsgType())
			}
			if !reflect.DeepEqual(normalize(m), normalize(got)) {
				t.Fatalf("round trip mismatch:\n sent %#v\n got  %#v", m, got)
			}
		})
	}
}

// normalize maps nil and empty slices to a canonical form so DeepEqual
// tolerates the decoder's empty-slice representation choices.
func normalize(m Message) Message {
	switch v := m.(type) {
	case *SnapshotData:
		c := *v
		if len(c.Blob) == 0 {
			c.Blob = nil
		}
		return &c
	case *Adopt:
		c := *v
		if len(c.Blob) == 0 {
			c.Blob = nil
		}
		return &c
	case *GameUpdate:
		c := *v
		if len(c.Payload) == 0 {
			c.Payload = nil
		}
		return &c
	case *Forward:
		c := *v
		if len(c.Update.Payload) == 0 {
			c.Update.Payload = nil
		}
		return &c
	case *OverlapTable:
		c := *v
		if len(c.Regions) == 0 {
			c.Regions = nil
		}
		if len(c.Peers) == 0 {
			c.Peers = nil
		}
		return &c
	case *StateTransfer:
		c := *v
		if len(c.Objects) == 0 {
			c.Objects = nil
		}
		for i := range c.Objects {
			if len(c.Objects[i].Payload) == 0 {
				c.Objects[i].Payload = nil
			}
		}
		return &c
	case *NonProximalReply:
		c := *v
		if len(c.Servers) == 0 {
			c.Servers = nil
		}
		if len(c.Peers) == 0 {
			c.Peers = nil
		}
		return &c
	default:
		return m
	}
}

func TestWriteRead(t *testing.T) {
	var buf bytes.Buffer
	want := []Message{
		&LoadReport{Server: 1, Clients: 10, QueueLen: 2},
		&Ack{Of: TypeLoadReport},
		&GameUpdate{Client: 5, Kind: KindChat, Payload: []byte("hello world")},
	}
	for _, m := range want {
		if err := Write(&buf, m); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	for i, w := range want {
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("Read %d: %v", i, err)
		}
		if got.MsgType() != w.MsgType() {
			t.Fatalf("Read %d: type %v, want %v", i, got.MsgType(), w.MsgType())
		}
	}
	if _, err := Read(&buf); err == nil {
		t.Fatal("Read past end must fail")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(nil); !errors.Is(err, ErrTruncated) {
		t.Errorf("nil frame: %v", err)
	}
	if _, err := Unmarshal([]byte{0, 0, 0, 0}); !errors.Is(err, ErrTruncated) {
		t.Errorf("short frame: %v", err)
	}
	// Unknown type byte.
	frame := []byte{0, 0, 0, 0, 250}
	if _, err := Unmarshal(frame); !errors.Is(err, ErrBadType) {
		t.Errorf("bad type: %v", err)
	}
	// Declared body longer than actual.
	frame = []byte{0, 0, 0, 9, uint8(TypeAck), 1}
	if _, err := Unmarshal(frame); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated body: %v", err)
	}
	// Trailing garbage after a valid body.
	good, err := Marshal(&Ack{Of: TypeLoadReport})
	if err != nil {
		t.Fatal(err)
	}
	bad := append(good[:len(good):len(good)], 0xFF)
	bad[3]++ // fix length to include the garbage byte
	if _, err := Unmarshal(bad); err == nil {
		t.Error("trailing bytes must be rejected")
	}
}

func TestCorruptedBodiesNeverPanic(t *testing.T) {
	// Every message type decoded from random bytes must return an error or
	// a message, never panic or over-read.
	rnd := rand.New(rand.NewSource(7))
	for typ := TypeGameUpdate; typ < typeMax; typ++ {
		for trial := 0; trial < 200; trial++ {
			n := rnd.Intn(64)
			body := make([]byte, n)
			rnd.Read(body)
			frame := make([]byte, 0, 5+n)
			frame = append(frame, byte(n>>24), byte(n>>16), byte(n>>8), byte(n))
			frame = append(frame, uint8(typ))
			frame = append(frame, body...)
			_, _ = Unmarshal(frame) // must not panic
		}
	}
}

func TestFrameSizeLimit(t *testing.T) {
	big := &GameUpdate{Payload: make([]byte, MaxFrameSize+1)}
	if _, err := Marshal(big); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized marshal: %v", err)
	}
	// A frame header claiming a huge body must be rejected by Read before
	// allocating.
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, uint8(TypeAck)})
	if _, err := Read(&buf); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("huge header: %v", err)
	}
}

func TestGameUpdateQuickRoundTrip(t *testing.T) {
	f := func(client uint64, seq uint64, kind uint8, ox, oy, dx, dy float64, sent int64, payload []byte) bool {
		m := &GameUpdate{
			Client:   id.ClientID(client),
			Seq:      id.PacketSeq(seq),
			Kind:     UpdateKind(kind),
			Origin:   geom.Pt(ox, oy),
			Dest:     geom.Pt(dx, dy),
			SentUnix: sent,
			Payload:  payload,
		}
		frame, err := Marshal(m)
		if err != nil {
			return false
		}
		got, err := Unmarshal(frame)
		if err != nil {
			return false
		}
		g, ok := got.(*GameUpdate)
		if !ok {
			return false
		}
		if g.Client != m.Client || g.Seq != m.Seq || g.Kind != m.Kind || g.SentUnix != m.SentUnix {
			return false
		}
		if len(g.Payload) != len(m.Payload) {
			return false
		}
		return bytes.Equal(g.Payload, m.Payload)
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestRegionsWireConversion(t *testing.T) {
	regions := []overlap.Region{
		{Bounds: geom.R(0, 0, 5, 100), Peers: overlap.NewSet(2, 3)},
		{Bounds: geom.R(0, 0, 5, 5), Peers: overlap.NewSet(4)},
	}
	wire := RegionsToWire(regions)
	back := RegionsFromWire(wire)
	if len(back) != len(regions) {
		t.Fatalf("got %d regions", len(back))
	}
	for i := range back {
		if !back[i].Bounds.Eq(regions[i].Bounds) {
			t.Errorf("region %d bounds %v != %v", i, back[i].Bounds, regions[i].Bounds)
		}
		if !back[i].Peers.Equal(regions[i].Peers) {
			t.Errorf("region %d peers %v != %v", i, back[i].Peers, regions[i].Peers)
		}
	}
	// Wire form must not alias the original peer slices.
	wire[0].Peers[0] = 99
	if regions[0].Peers[0] == 99 {
		t.Error("RegionsToWire must copy peer slices")
	}
}

func TestMsgTypeStrings(t *testing.T) {
	for typ := TypeGameUpdate; typ < typeMax; typ++ {
		if s := typ.String(); s == "" || s[0] == 'm' && s[1] == 's' && s[2] == 'g' {
			t.Errorf("type %d has no name: %q", uint8(typ), s)
		}
	}
	if MsgType(0).String() != "msgtype(0)" {
		t.Errorf("zero type: %q", MsgType(0).String())
	}
}

func TestUpdateKindStrings(t *testing.T) {
	kinds := []UpdateKind{KindMove, KindAction, KindChat, KindSpawn, KindDespawn}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if seen[s] {
			t.Errorf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
	if UpdateKind(99).String() != "kind(99)" {
		t.Error("unknown kind String")
	}
}

// --- append-style encoding and batches ---

// sampleMessages returns one instance of every non-batch message type with
// non-trivial field values.
func sampleMessages() []Message {
	return []Message{
		&GameUpdate{Client: 42, Seq: 7, Kind: KindMove, Origin: geom.Pt(1.5, -2.25),
			Dest: geom.Pt(3, 4), SentUnix: 123456789, Payload: []byte("fire!")},
		&Forward{From: 3, Update: GameUpdate{Client: 1, Kind: KindAction, Payload: []byte{0, 1, 2}}},
		&RegisterRequest{Addr: "10.0.0.1:4000", Radius: 25.5},
		&RegisterReply{Server: 5, Bounds: geom.R(0, 0, 50, 100), World: geom.R(0, 0, 100, 100)},
		&LoadReport{Server: 2, Clients: 312, QueueLen: 98},
		&OverlapTable{Server: 1, Version: 9, Bounds: geom.R(50, 0, 100, 100), Radius: 5,
			Regions: []TableRegion{{Bounds: geom.R(50, 0, 55, 100), Peers: []id.ServerID{2}}},
			Peers:   []PeerAddr{{Server: 2, Addr: "a:1"}}},
		&SplitRequest{Server: 1, Clients: 450},
		&SplitReply{Granted: true, Child: 9, ChildAddr: "c:3", Keep: geom.R(0, 0, 1, 1), Give: geom.R(1, 0, 2, 1)},
		&ReclaimRequest{Parent: 1, Child: 2},
		&ReclaimReply{Granted: true, Merged: geom.R(0, 0, 2, 2)},
		&Redirect{Client: 77, NewOwner: 4, NewAddr: "d:4"},
		&StateTransfer{From: 1, To: 2, Final: true,
			Objects: []ObjectState{{Object: 1, Client: 9, Pos: geom.Pt(4, 5), Payload: []byte("hp=50")}}},
		&NonProximalQuery{Server: 3, Point: geom.Pt(10, 20), Radius: 100},
		&NonProximalReply{Servers: []id.ServerID{1, 2, 3}, Peers: []PeerAddr{{Server: 1, Addr: "x:1"}}},
		&ClientHello{Client: 12, Pos: geom.Pt(1, 2)},
		&ClientWelcome{Server: 2, Bounds: geom.R(0, 0, 10, 10)},
		&RangeUpdate{Server: 6, Bounds: geom.R(5, 5, 10, 10),
			Handoff: []HandoffTarget{{Server: 7, Addr: "h:7", Bounds: geom.R(0, 0, 5, 10)}}},
		&Ack{Of: TypeSplitRequest},
		&ErrorMsg{Of: TypeReclaimRequest, Reason: "no such child"},
		&SnapshotRequest{},
		&SnapshotData{Blob: []byte("state")},
		&Heartbeat{Server: 3, Clients: 12, QueueLen: 4, CheckpointTick: 99},
		&DrainRequest{Server: 7, Exit: true},
		&DrainReply{Granted: false, Reason: "no spare capacity"},
		&Adopt{Victim: 2, Bounds: geom.R(0, 0, 50, 100), Blob: []byte("blob"), Final: true},
	}
}

// TestAppendEncodeMatchesMarshal pins AppendEncode to the wire format
// Marshal produces, for every message type, including appending after
// existing bytes.
func TestAppendEncodeMatchesMarshal(t *testing.T) {
	for _, m := range sampleMessages() {
		want, err := Marshal(m)
		if err != nil {
			t.Fatalf("Marshal(%v): %v", m.MsgType(), err)
		}
		got, err := AppendEncode(nil, m)
		if err != nil {
			t.Fatalf("AppendEncode(%v): %v", m.MsgType(), err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%v: AppendEncode differs from Marshal", m.MsgType())
		}
		prefixed, err := AppendEncode([]byte("prefix"), m)
		if err != nil {
			t.Fatalf("AppendEncode prefixed (%v): %v", m.MsgType(), err)
		}
		if !bytes.Equal(prefixed, append([]byte("prefix"), want...)) {
			t.Errorf("%v: AppendEncode after prefix differs", m.MsgType())
		}
	}
}

// TestAppendEncodeOversizedRestoresDst verifies the error path truncates
// dst back to its original contents.
func TestAppendEncodeOversizedRestoresDst(t *testing.T) {
	big := &GameUpdate{Payload: make([]byte, MaxFrameSize+1)}
	dst := []byte("keep")
	out, err := AppendEncode(dst, big)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v", err)
	}
	if string(out) != "keep" {
		t.Errorf("dst not restored: %q", out[:min(len(out), 16)])
	}
}

// TestAppendEncodeZeroAlloc is the codec allocation budget: steady-state
// encoding into a reused buffer must not allocate at all.
func TestAppendEncodeZeroAlloc(t *testing.T) {
	u := &GameUpdate{Client: 42, Seq: 7, Kind: KindMove, Origin: geom.Pt(123.5, 456.25),
		Dest: geom.Pt(124, 457), SentUnix: 1234567890, Payload: make([]byte, 48)}
	buf := make([]byte, 0, 256)
	allocs := testing.AllocsPerRun(200, func() {
		var err error
		buf, err = AppendEncode(buf[:0], u)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("AppendEncode allocates %.1f/op, budget is 0", allocs)
	}
}

// TestSizeZeroAlloc pins Size (called once per forwarded packet) to zero
// steady-state allocations.
func TestSizeZeroAlloc(t *testing.T) {
	f := &Forward{From: 3, Update: GameUpdate{Client: 42, Kind: KindMove, Payload: make([]byte, 48)}}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := Size(f); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Size allocates %.1f/op, budget is 0", allocs)
	}
}

// TestBatchRoundTrip packs every message type into one Batch frame and
// decodes it back.
func TestBatchRoundTrip(t *testing.T) {
	in := sampleMessages()
	got := roundTrip(t, &Batch{Msgs: in})
	b, ok := got.(*Batch)
	if !ok {
		t.Fatalf("decoded %v", got.MsgType())
	}
	if len(b.Msgs) != len(in) {
		t.Fatalf("got %d messages, want %d", len(b.Msgs), len(in))
	}
	for i := range in {
		if !reflect.DeepEqual(normalize(in[i]), normalize(b.Msgs[i])) {
			t.Errorf("element %d (%v) mismatch:\n sent %#v\n got  %#v",
				i, in[i].MsgType(), in[i], b.Msgs[i])
		}
	}
}

// TestBatchRejectsNesting: batches must not nest, on encode or decode.
func TestBatchRejectsNesting(t *testing.T) {
	nested := &Batch{Msgs: []Message{&Batch{Msgs: []Message{&Ack{Of: TypeAck}}}}}
	frame, err := Marshal(nested) // encodeBody cannot fail; decode must
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(frame); err == nil {
		t.Error("decoding a nested batch must fail")
	}
	if _, _, err := AppendBatches(nil, nil, []Message{&Batch{}}); err == nil {
		t.Error("AppendBatches must reject a Batch element")
	}
}

// TestAppendBatchesSingleMatchesSend: one message is framed directly, so a
// single-message batch costs exactly the same bytes as Marshal.
func TestAppendBatchesSingleMatchesSend(t *testing.T) {
	m := &LoadReport{Server: 2, Clients: 312, QueueLen: 98}
	want, _ := Marshal(m)
	out, ends, err := AppendBatches(nil, nil, []Message{m})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, want) {
		t.Errorf("single-message batch differs from Marshal")
	}
	if len(ends) != 1 || ends[0] != len(out) {
		t.Errorf("ends = %v, want [%d]", ends, len(out))
	}
}

// TestAppendBatchesMatchesBatchMarshal: the incremental encoder must
// produce exactly the frame Marshal(&Batch{...}) would.
func TestAppendBatchesMatchesBatchMarshal(t *testing.T) {
	ms := sampleMessages()
	want, err := Marshal(&Batch{Msgs: ms})
	if err != nil {
		t.Fatal(err)
	}
	out, ends, err := AppendBatches(nil, nil, ms)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, want) {
		t.Error("AppendBatches differs from Marshal(&Batch{...})")
	}
	if len(ends) != 1 || ends[0] != len(out) {
		t.Errorf("ends = %v, want one frame of %d bytes", ends, len(out))
	}
}

// TestAppendBatchesChunksAtMaxFrameSize: a message set too large for one
// frame is split into several valid Batch frames preserving order.
func TestAppendBatchesChunksAtMaxFrameSize(t *testing.T) {
	// Eleven ~1MiB payloads cannot fit one 4MiB frame.
	var ms []Message
	for i := 0; i < 11; i++ {
		p := make([]byte, 1<<20)
		p[0] = byte(i)
		ms = append(ms, &GameUpdate{Client: id.ClientID(i + 1), Payload: p})
	}
	out, ends, err := AppendBatches(nil, nil, ms)
	if err != nil {
		t.Fatal(err)
	}
	if len(ends) < 2 {
		t.Fatalf("expected multiple frames, got %d", len(ends))
	}
	var decoded []Message
	start := 0
	for _, end := range ends {
		m, err := Unmarshal(out[start:end])
		if err != nil {
			t.Fatalf("frame ending at %d: %v", end, err)
		}
		b, ok := m.(*Batch)
		if !ok {
			t.Fatalf("frame ending at %d decoded as %v", end, m.MsgType())
		}
		decoded = append(decoded, b.Msgs...)
		start = end
	}
	if start != len(out) {
		t.Errorf("frames cover %d of %d bytes", start, len(out))
	}
	if len(decoded) != len(ms) {
		t.Fatalf("decoded %d messages, want %d", len(decoded), len(ms))
	}
	for i := range ms {
		want := ms[i].(*GameUpdate)
		got, ok := decoded[i].(*GameUpdate)
		if !ok || got.Client != want.Client || !bytes.Equal(got.Payload, want.Payload) {
			t.Errorf("element %d corrupted by chunking", i)
		}
	}
}

// TestAppendBatchesElementTooLarge: an element that cannot fit any frame
// alone must error out with dst restored.
func TestAppendBatchesElementTooLarge(t *testing.T) {
	ms := []Message{
		&Ack{Of: TypeAck},
		&GameUpdate{Payload: make([]byte, MaxFrameSize+1)},
	}
	dst := []byte("keep")
	out, _, err := AppendBatches(dst, nil, ms)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v", err)
	}
	if string(out) != "keep" {
		t.Error("dst not restored on error")
	}
}

// TestReadFrameReusesBuffer: ReadFrame must reuse a sufficient buffer and
// the decoded message must not alias it.
func TestReadFrameReusesBuffer(t *testing.T) {
	frame, _ := Marshal(&GameUpdate{Client: 1, Payload: []byte("payload")})
	var src bytes.Buffer
	src.Write(frame)
	buf := make([]byte, 0, 1024)
	got, err := ReadFrame(&src, buf)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &buf[:1][0] {
		t.Error("ReadFrame did not reuse the provided buffer")
	}
	m, err := Unmarshal(got)
	if err != nil {
		t.Fatal(err)
	}
	u := m.(*GameUpdate)
	for i := range got {
		got[i] = 0xFF // clobber the frame; the message must be unaffected
	}
	if string(u.Payload) != "payload" {
		t.Error("decoded message aliases the frame buffer")
	}
}

// TestAppendBatchesHugeElementFallsBackToDirectFrame: an element whose
// body fits MaxFrameSize but whose batch wrapping would not must be sent
// as a direct frame, not rejected — SendBatch must deliver anything Send
// can.
func TestAppendBatchesHugeElementFallsBackToDirectFrame(t *testing.T) {
	// GameUpdate body is 61 bytes + payload; make the body exactly
	// MaxFrameSize so the 9-byte Batch wrapper pushes it over.
	huge := &GameUpdate{Client: 2, Payload: make([]byte, MaxFrameSize-61)}
	ms := []Message{
		&Ack{Of: TypeAck},
		huge,
		&Ack{Of: TypeError},
	}
	out, ends, err := AppendBatches(nil, nil, ms)
	if err != nil {
		t.Fatalf("AppendBatches: %v", err)
	}
	var decoded []Message
	start := 0
	for _, end := range ends {
		m, err := Unmarshal(out[start:end])
		if err != nil {
			t.Fatalf("frame ending at %d: %v", end, err)
		}
		if b, ok := m.(*Batch); ok {
			decoded = append(decoded, b.Msgs...)
		} else {
			decoded = append(decoded, m)
		}
		start = end
	}
	if len(decoded) != 3 {
		t.Fatalf("decoded %d messages, want 3", len(decoded))
	}
	if decoded[0].MsgType() != TypeAck || decoded[2].MsgType() != TypeAck {
		t.Errorf("order not preserved: %v, %v", decoded[0].MsgType(), decoded[2].MsgType())
	}
	g, ok := decoded[1].(*GameUpdate)
	if !ok || len(g.Payload) != len(huge.Payload) {
		t.Errorf("huge element corrupted")
	}
}

// TestBatchDecodeRejectsInflatedCount: a frame whose element count claims
// more elements than its bytes could hold must fail fast, before the
// count can amplify the preallocation.
func TestBatchDecodeRejectsInflatedCount(t *testing.T) {
	frame := []byte{0, 0, 0, 4, uint8(TypeBatch), 0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := Unmarshal(frame); !errors.Is(err, ErrTruncated) {
		t.Errorf("inflated count: %v", err)
	}
}
