package protocol

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"matrix/internal/geom"
	"matrix/internal/id"
	"matrix/internal/overlap"
)

// roundTrip marshals and unmarshals m, failing the test on any error.
func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	frame, err := Marshal(m)
	if err != nil {
		t.Fatalf("Marshal(%v): %v", m.MsgType(), err)
	}
	got, err := Unmarshal(frame)
	if err != nil {
		t.Fatalf("Unmarshal(%v): %v", m.MsgType(), err)
	}
	return got
}

func TestRoundTripAllTypes(t *testing.T) {
	msgs := []Message{
		&GameUpdate{
			Client:   42,
			Seq:      7,
			Kind:     KindMove,
			Origin:   geom.Pt(1.5, -2.25),
			Dest:     geom.Pt(3, 4),
			SentUnix: 123456789,
			Payload:  []byte("fire!"),
		},
		&GameUpdate{}, // zero payload
		&Forward{From: 3, Update: GameUpdate{Client: 1, Kind: KindAction, Payload: []byte{0, 1, 2}}},
		&RegisterRequest{Addr: "10.0.0.1:4000", Radius: 25.5},
		&RegisterReply{Server: 5, Bounds: geom.R(0, 0, 50, 100), World: geom.R(0, 0, 100, 100)},
		&LoadReport{Server: 2, Clients: 312, QueueLen: 98},
		&OverlapTable{
			Server:  1,
			Version: 9,
			Bounds:  geom.R(50, 0, 100, 100),
			Radius:  5,
			Regions: []TableRegion{
				{Bounds: geom.R(50, 0, 55, 100), Peers: []id.ServerID{2}},
				{Bounds: geom.R(50, 0, 55, 5), Peers: []id.ServerID{2, 3}},
			},
			Peers: []PeerAddr{{Server: 2, Addr: "a:1"}, {Server: 3, Addr: "b:2"}},
		},
		&OverlapTable{Server: 4, Version: 1, Bounds: geom.R(0, 0, 1, 1)}, // empty table
		&SplitRequest{Server: 1, Clients: 450},
		&SplitReply{Granted: true, Child: 9, ChildAddr: "c:3", Keep: geom.R(0, 0, 1, 1), Give: geom.R(1, 0, 2, 1)},
		&SplitReply{Granted: false, Reason: "pool exhausted"},
		&ReclaimRequest{Parent: 1, Child: 2},
		&ReclaimReply{Granted: true, Merged: geom.R(0, 0, 2, 2)},
		&ReclaimReply{Granted: false, Reason: "child too loaded"},
		&Redirect{Client: 77, NewOwner: 4, NewAddr: "d:4"},
		&StateTransfer{
			From: 1, To: 2, Final: true,
			Objects: []ObjectState{
				{Object: 1, Client: 9, Pos: geom.Pt(4, 5), Payload: []byte("hp=50")},
				{Object: 2, Pos: geom.Pt(6, 7)},
			},
		},
		&StateTransfer{From: 1, To: 2}, // empty transfer
		&NonProximalQuery{Server: 3, Point: geom.Pt(10, 20), Radius: 100},
		&NonProximalReply{Servers: []id.ServerID{1, 2, 3}, Peers: []PeerAddr{{Server: 1, Addr: "x:1"}}},
		&NonProximalReply{},
		&ClientHello{Client: 12, Pos: geom.Pt(1, 2)},
		&ClientWelcome{Server: 2, Bounds: geom.R(0, 0, 10, 10)},
		&RangeUpdate{Server: 6, Bounds: geom.R(5, 5, 10, 10)},
		&RangeUpdate{
			Server: 6, Bounds: geom.R(5, 5, 10, 10),
			Handoff: []HandoffTarget{{Server: 7, Addr: "h:7", Bounds: geom.R(0, 0, 5, 10)}},
		},
		&Ack{Of: TypeSplitRequest},
		&ErrorMsg{Of: TypeReclaimRequest, Reason: "no such child"},
	}
	for _, m := range msgs {
		m := m
		t.Run(m.MsgType().String(), func(t *testing.T) {
			got := roundTrip(t, m)
			if got.MsgType() != m.MsgType() {
				t.Fatalf("type changed: %v -> %v", m.MsgType(), got.MsgType())
			}
			if !reflect.DeepEqual(normalize(m), normalize(got)) {
				t.Fatalf("round trip mismatch:\n sent %#v\n got  %#v", m, got)
			}
		})
	}
}

// normalize maps nil and empty slices to a canonical form so DeepEqual
// tolerates the decoder's empty-slice representation choices.
func normalize(m Message) Message {
	switch v := m.(type) {
	case *GameUpdate:
		c := *v
		if len(c.Payload) == 0 {
			c.Payload = nil
		}
		return &c
	case *Forward:
		c := *v
		if len(c.Update.Payload) == 0 {
			c.Update.Payload = nil
		}
		return &c
	case *OverlapTable:
		c := *v
		if len(c.Regions) == 0 {
			c.Regions = nil
		}
		if len(c.Peers) == 0 {
			c.Peers = nil
		}
		return &c
	case *StateTransfer:
		c := *v
		if len(c.Objects) == 0 {
			c.Objects = nil
		}
		for i := range c.Objects {
			if len(c.Objects[i].Payload) == 0 {
				c.Objects[i].Payload = nil
			}
		}
		return &c
	case *NonProximalReply:
		c := *v
		if len(c.Servers) == 0 {
			c.Servers = nil
		}
		if len(c.Peers) == 0 {
			c.Peers = nil
		}
		return &c
	default:
		return m
	}
}

func TestWriteRead(t *testing.T) {
	var buf bytes.Buffer
	want := []Message{
		&LoadReport{Server: 1, Clients: 10, QueueLen: 2},
		&Ack{Of: TypeLoadReport},
		&GameUpdate{Client: 5, Kind: KindChat, Payload: []byte("hello world")},
	}
	for _, m := range want {
		if err := Write(&buf, m); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	for i, w := range want {
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("Read %d: %v", i, err)
		}
		if got.MsgType() != w.MsgType() {
			t.Fatalf("Read %d: type %v, want %v", i, got.MsgType(), w.MsgType())
		}
	}
	if _, err := Read(&buf); err == nil {
		t.Fatal("Read past end must fail")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(nil); !errors.Is(err, ErrTruncated) {
		t.Errorf("nil frame: %v", err)
	}
	if _, err := Unmarshal([]byte{0, 0, 0, 0}); !errors.Is(err, ErrTruncated) {
		t.Errorf("short frame: %v", err)
	}
	// Unknown type byte.
	frame := []byte{0, 0, 0, 0, 250}
	if _, err := Unmarshal(frame); !errors.Is(err, ErrBadType) {
		t.Errorf("bad type: %v", err)
	}
	// Declared body longer than actual.
	frame = []byte{0, 0, 0, 9, uint8(TypeAck), 1}
	if _, err := Unmarshal(frame); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated body: %v", err)
	}
	// Trailing garbage after a valid body.
	good, err := Marshal(&Ack{Of: TypeLoadReport})
	if err != nil {
		t.Fatal(err)
	}
	bad := append(good[:len(good):len(good)], 0xFF)
	bad[3]++ // fix length to include the garbage byte
	if _, err := Unmarshal(bad); err == nil {
		t.Error("trailing bytes must be rejected")
	}
}

func TestCorruptedBodiesNeverPanic(t *testing.T) {
	// Every message type decoded from random bytes must return an error or
	// a message, never panic or over-read.
	rnd := rand.New(rand.NewSource(7))
	for typ := TypeGameUpdate; typ < typeMax; typ++ {
		for trial := 0; trial < 200; trial++ {
			n := rnd.Intn(64)
			body := make([]byte, n)
			rnd.Read(body)
			frame := make([]byte, 0, 5+n)
			frame = append(frame, byte(n>>24), byte(n>>16), byte(n>>8), byte(n))
			frame = append(frame, uint8(typ))
			frame = append(frame, body...)
			_, _ = Unmarshal(frame) // must not panic
		}
	}
}

func TestFrameSizeLimit(t *testing.T) {
	big := &GameUpdate{Payload: make([]byte, MaxFrameSize+1)}
	if _, err := Marshal(big); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized marshal: %v", err)
	}
	// A frame header claiming a huge body must be rejected by Read before
	// allocating.
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, uint8(TypeAck)})
	if _, err := Read(&buf); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("huge header: %v", err)
	}
}

func TestGameUpdateQuickRoundTrip(t *testing.T) {
	f := func(client uint64, seq uint64, kind uint8, ox, oy, dx, dy float64, sent int64, payload []byte) bool {
		m := &GameUpdate{
			Client:   id.ClientID(client),
			Seq:      id.PacketSeq(seq),
			Kind:     UpdateKind(kind),
			Origin:   geom.Pt(ox, oy),
			Dest:     geom.Pt(dx, dy),
			SentUnix: sent,
			Payload:  payload,
		}
		frame, err := Marshal(m)
		if err != nil {
			return false
		}
		got, err := Unmarshal(frame)
		if err != nil {
			return false
		}
		g, ok := got.(*GameUpdate)
		if !ok {
			return false
		}
		if g.Client != m.Client || g.Seq != m.Seq || g.Kind != m.Kind || g.SentUnix != m.SentUnix {
			return false
		}
		if len(g.Payload) != len(m.Payload) {
			return false
		}
		return bytes.Equal(g.Payload, m.Payload)
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestRegionsWireConversion(t *testing.T) {
	regions := []overlap.Region{
		{Bounds: geom.R(0, 0, 5, 100), Peers: overlap.NewSet(2, 3)},
		{Bounds: geom.R(0, 0, 5, 5), Peers: overlap.NewSet(4)},
	}
	wire := RegionsToWire(regions)
	back := RegionsFromWire(wire)
	if len(back) != len(regions) {
		t.Fatalf("got %d regions", len(back))
	}
	for i := range back {
		if !back[i].Bounds.Eq(regions[i].Bounds) {
			t.Errorf("region %d bounds %v != %v", i, back[i].Bounds, regions[i].Bounds)
		}
		if !back[i].Peers.Equal(regions[i].Peers) {
			t.Errorf("region %d peers %v != %v", i, back[i].Peers, regions[i].Peers)
		}
	}
	// Wire form must not alias the original peer slices.
	wire[0].Peers[0] = 99
	if regions[0].Peers[0] == 99 {
		t.Error("RegionsToWire must copy peer slices")
	}
}

func TestMsgTypeStrings(t *testing.T) {
	for typ := TypeGameUpdate; typ < typeMax; typ++ {
		if s := typ.String(); s == "" || s[0] == 'm' && s[1] == 's' && s[2] == 'g' {
			t.Errorf("type %d has no name: %q", uint8(typ), s)
		}
	}
	if MsgType(0).String() != "msgtype(0)" {
		t.Errorf("zero type: %q", MsgType(0).String())
	}
}

func TestUpdateKindStrings(t *testing.T) {
	kinds := []UpdateKind{KindMove, KindAction, KindChat, KindSpawn, KindDespawn}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if seen[s] {
			t.Errorf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
	if UpdateKind(99).String() != "kind(99)" {
		t.Error("unknown kind String")
	}
}
