package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"

	"matrix/internal/geom"
	"matrix/internal/id"
)

// MaxFrameSize bounds a single message on the wire. State transfers chunk
// themselves below this; anything larger indicates corruption.
const MaxFrameSize = 4 << 20 // 4 MiB

// Codec errors.
var (
	ErrFrameTooLarge = errors.New("protocol: frame exceeds MaxFrameSize")
	ErrBadType       = errors.New("protocol: unknown message type")
	ErrTruncated     = errors.New("protocol: truncated message body")
)

// buffer is an append-only encoder.
type buffer struct {
	b []byte
}

func (w *buffer) u8(v uint8)   { w.b = append(w.b, v) }
func (w *buffer) u32(v uint32) { w.b = binary.BigEndian.AppendUint32(w.b, v) }
func (w *buffer) u64(v uint64) { w.b = binary.BigEndian.AppendUint64(w.b, v) }
func (w *buffer) i32(v int32)  { w.u32(uint32(v)) }
func (w *buffer) i64(v int64)  { w.u64(uint64(v)) }
func (w *buffer) f64(v float64) {
	w.u64(math.Float64bits(v))
}
func (w *buffer) boolean(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}
func (w *buffer) bytes(v []byte) {
	w.u32(uint32(len(v)))
	w.b = append(w.b, v...)
}
func (w *buffer) str(v string) { w.bytes([]byte(v)) }
func (w *buffer) point(p geom.Point) {
	w.f64(p.X)
	w.f64(p.Y)
}
func (w *buffer) rect(r geom.Rect) {
	w.f64(r.MinX)
	w.f64(r.MinY)
	w.f64(r.MaxX)
	w.f64(r.MaxY)
}
func (w *buffer) serverID(s id.ServerID) { w.u32(uint32(s)) }
func (w *buffer) serverIDs(s []id.ServerID) {
	w.u32(uint32(len(s)))
	for _, v := range s {
		w.serverID(v)
	}
}

// reader is a bounds-checked decoder over one frame.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = ErrTruncated
	}
}

func (r *reader) u8() uint8 {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) i32() int32    { return int32(r.u32()) }
func (r *reader) i64() int64    { return int64(r.u64()) }
func (r *reader) f64() float64  { return math.Float64frombits(r.u64()) }
func (r *reader) boolean() bool { return r.u8() != 0 }

func (r *reader) bytes() []byte {
	n := int(r.u32())
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) {
		r.fail()
		return nil
	}
	out := make([]byte, n)
	copy(out, r.b[r.off:r.off+n])
	r.off += n
	return out
}

func (r *reader) str() string { return string(r.bytes()) }

func (r *reader) point() geom.Point {
	return geom.Point{X: r.f64(), Y: r.f64()}
}

func (r *reader) rect() geom.Rect {
	return geom.Rect{MinX: r.f64(), MinY: r.f64(), MaxX: r.f64(), MaxY: r.f64()}
}

func (r *reader) serverID() id.ServerID { return id.ServerID(r.u32()) }

func (r *reader) serverIDs() []id.ServerID {
	n := int(r.u32())
	if r.err != nil || n < 0 || n > len(r.b) {
		r.fail()
		return nil
	}
	out := make([]id.ServerID, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.serverID())
	}
	if r.err != nil {
		return nil
	}
	return out
}

// --- per-message bodies ---

func (m *GameUpdate) encodeBody(b *buffer) {
	b.u64(uint64(m.Client))
	b.u64(uint64(m.Seq))
	b.u8(uint8(m.Kind))
	b.point(m.Origin)
	b.point(m.Dest)
	b.i64(m.SentUnix)
	b.bytes(m.Payload)
}

func (m *GameUpdate) decodeBody(r *reader) error {
	m.Client = id.ClientID(r.u64())
	m.Seq = id.PacketSeq(r.u64())
	m.Kind = UpdateKind(r.u8())
	m.Origin = r.point()
	m.Dest = r.point()
	m.SentUnix = r.i64()
	m.Payload = r.bytes()
	return r.err
}

func (m *Forward) encodeBody(b *buffer) {
	b.serverID(m.From)
	m.Update.encodeBody(b)
}

func (m *Forward) decodeBody(r *reader) error {
	m.From = r.serverID()
	return m.Update.decodeBody(r)
}

func (m *RegisterRequest) encodeBody(b *buffer) {
	b.str(m.Addr)
	b.f64(m.Radius)
}

func (m *RegisterRequest) decodeBody(r *reader) error {
	m.Addr = r.str()
	m.Radius = r.f64()
	return r.err
}

func (m *RegisterReply) encodeBody(b *buffer) {
	b.serverID(m.Server)
	b.rect(m.Bounds)
	b.rect(m.World)
}

func (m *RegisterReply) decodeBody(r *reader) error {
	m.Server = r.serverID()
	m.Bounds = r.rect()
	m.World = r.rect()
	return r.err
}

func (m *LoadReport) encodeBody(b *buffer) {
	b.serverID(m.Server)
	b.i32(m.Clients)
	b.i32(m.QueueLen)
}

func (m *LoadReport) decodeBody(r *reader) error {
	m.Server = r.serverID()
	m.Clients = r.i32()
	m.QueueLen = r.i32()
	return r.err
}

func (m *OverlapTable) encodeBody(b *buffer) {
	b.serverID(m.Server)
	b.u64(m.Version)
	b.rect(m.Bounds)
	b.f64(m.Radius)
	b.u32(uint32(len(m.Regions)))
	for _, reg := range m.Regions {
		b.rect(reg.Bounds)
		b.serverIDs(reg.Peers)
	}
	b.u32(uint32(len(m.Peers)))
	for _, p := range m.Peers {
		b.serverID(p.Server)
		b.str(p.Addr)
		b.rect(p.Bounds)
	}
}

func (m *OverlapTable) decodeBody(r *reader) error {
	m.Server = r.serverID()
	m.Version = r.u64()
	m.Bounds = r.rect()
	m.Radius = r.f64()
	nRegions := int(r.u32())
	if r.err != nil || nRegions < 0 || nRegions > len(r.b) {
		r.fail()
		return r.err
	}
	m.Regions = make([]TableRegion, 0, nRegions)
	for i := 0; i < nRegions; i++ {
		reg := TableRegion{Bounds: r.rect(), Peers: r.serverIDs()}
		if r.err != nil {
			return r.err
		}
		m.Regions = append(m.Regions, reg)
	}
	nPeers := int(r.u32())
	if r.err != nil || nPeers < 0 || nPeers > len(r.b) {
		r.fail()
		return r.err
	}
	m.Peers = make([]PeerAddr, 0, nPeers)
	for i := 0; i < nPeers; i++ {
		p := PeerAddr{Server: r.serverID(), Addr: r.str(), Bounds: r.rect()}
		if r.err != nil {
			return r.err
		}
		m.Peers = append(m.Peers, p)
	}
	return r.err
}

func (m *SplitRequest) encodeBody(b *buffer) {
	b.serverID(m.Server)
	b.i32(m.Clients)
}

func (m *SplitRequest) decodeBody(r *reader) error {
	m.Server = r.serverID()
	m.Clients = r.i32()
	return r.err
}

func (m *SplitReply) encodeBody(b *buffer) {
	b.boolean(m.Granted)
	b.serverID(m.Child)
	b.str(m.ChildAddr)
	b.rect(m.Keep)
	b.rect(m.Give)
	b.str(m.Reason)
	// Corr is an optional trailing field (the ClientHello.Token pattern):
	// omitted when zero so unstamped frames keep the historical encoding.
	if m.Corr != 0 {
		b.u64(m.Corr)
	}
}

func (m *SplitReply) decodeBody(r *reader) error {
	m.Granted = r.boolean()
	m.Child = r.serverID()
	m.ChildAddr = r.str()
	m.Keep = r.rect()
	m.Give = r.rect()
	m.Reason = r.str()
	if r.err == nil && r.off < len(r.b) {
		m.Corr = r.u64()
	}
	return r.err
}

func (m *ReclaimRequest) encodeBody(b *buffer) {
	b.serverID(m.Parent)
	b.serverID(m.Child)
}

func (m *ReclaimRequest) decodeBody(r *reader) error {
	m.Parent = r.serverID()
	m.Child = r.serverID()
	return r.err
}

func (m *ReclaimReply) encodeBody(b *buffer) {
	b.boolean(m.Granted)
	b.rect(m.Merged)
	b.str(m.Reason)
}

func (m *ReclaimReply) decodeBody(r *reader) error {
	m.Granted = r.boolean()
	m.Merged = r.rect()
	m.Reason = r.str()
	return r.err
}

func (m *Redirect) encodeBody(b *buffer) {
	b.u64(uint64(m.Client))
	b.serverID(m.NewOwner)
	b.str(m.NewAddr)
	if m.Corr != 0 { // optional trailing field, see SplitReply
		b.u64(m.Corr)
	}
}

func (m *Redirect) decodeBody(r *reader) error {
	m.Client = id.ClientID(r.u64())
	m.NewOwner = r.serverID()
	m.NewAddr = r.str()
	if r.err == nil && r.off < len(r.b) {
		m.Corr = r.u64()
	}
	return r.err
}

func (m *StateTransfer) encodeBody(b *buffer) {
	b.serverID(m.From)
	b.serverID(m.To)
	b.boolean(m.Final)
	b.u32(uint32(len(m.Objects)))
	for _, o := range m.Objects {
		b.u64(uint64(o.Object))
		b.u64(uint64(o.Client))
		b.point(o.Pos)
		b.bytes(o.Payload)
	}
}

func (m *StateTransfer) decodeBody(r *reader) error {
	m.From = r.serverID()
	m.To = r.serverID()
	m.Final = r.boolean()
	n := int(r.u32())
	if r.err != nil || n < 0 || n > len(r.b) {
		r.fail()
		return r.err
	}
	m.Objects = make([]ObjectState, 0, n)
	for i := 0; i < n; i++ {
		o := ObjectState{
			Object: id.ObjectID(r.u64()),
			Client: id.ClientID(r.u64()),
			Pos:    r.point(),
		}
		o.Payload = r.bytes()
		if r.err != nil {
			return r.err
		}
		m.Objects = append(m.Objects, o)
	}
	return r.err
}

func (m *NonProximalQuery) encodeBody(b *buffer) {
	b.serverID(m.Server)
	b.point(m.Point)
	b.f64(m.Radius)
}

func (m *NonProximalQuery) decodeBody(r *reader) error {
	m.Server = r.serverID()
	m.Point = r.point()
	m.Radius = r.f64()
	return r.err
}

func (m *NonProximalReply) encodeBody(b *buffer) {
	b.serverIDs(m.Servers)
	b.u32(uint32(len(m.Peers)))
	for _, p := range m.Peers {
		b.serverID(p.Server)
		b.str(p.Addr)
		b.rect(p.Bounds)
	}
}

func (m *NonProximalReply) decodeBody(r *reader) error {
	m.Servers = r.serverIDs()
	n := int(r.u32())
	if r.err != nil || n < 0 || n > len(r.b) {
		r.fail()
		return r.err
	}
	m.Peers = make([]PeerAddr, 0, n)
	for i := 0; i < n; i++ {
		p := PeerAddr{Server: r.serverID(), Addr: r.str(), Bounds: r.rect()}
		if r.err != nil {
			return r.err
		}
		m.Peers = append(m.Peers, p)
	}
	return r.err
}

func (m *ClientHello) encodeBody(b *buffer) {
	b.u64(uint64(m.Client))
	b.point(m.Pos)
	// The token is an optional trailing field: omitted entirely when empty
	// so token-free hellos keep the historical encoding (golden frames,
	// byte-parity and fingerprints unchanged), present as a length-prefixed
	// string otherwise. Unmarshal rejects trailing garbage, so the decoder
	// reads it exactly when bytes remain.
	if m.Token != "" {
		b.str(m.Token)
	}
}

func (m *ClientHello) decodeBody(r *reader) error {
	m.Client = id.ClientID(r.u64())
	m.Pos = r.point()
	if r.err == nil && r.off < len(r.b) {
		m.Token = r.str()
	}
	return r.err
}

func (m *ClientWelcome) encodeBody(b *buffer) {
	b.serverID(m.Server)
	b.rect(m.Bounds)
}

func (m *ClientWelcome) decodeBody(r *reader) error {
	m.Server = r.serverID()
	m.Bounds = r.rect()
	return r.err
}

func (m *RangeUpdate) encodeBody(b *buffer) {
	b.serverID(m.Server)
	b.rect(m.Bounds)
	b.u32(uint32(len(m.Handoff)))
	for _, h := range m.Handoff {
		b.serverID(h.Server)
		b.str(h.Addr)
		b.rect(h.Bounds)
	}
	if m.Corr != 0 { // optional trailing field, see SplitReply
		b.u64(m.Corr)
	}
}

func (m *RangeUpdate) decodeBody(r *reader) error {
	m.Server = r.serverID()
	m.Bounds = r.rect()
	n := int(r.u32())
	if r.err != nil || n < 0 || n > len(r.b) {
		r.fail()
		return r.err
	}
	m.Handoff = make([]HandoffTarget, 0, n)
	for i := 0; i < n; i++ {
		h := HandoffTarget{Server: r.serverID(), Addr: r.str(), Bounds: r.rect()}
		if r.err != nil {
			return r.err
		}
		m.Handoff = append(m.Handoff, h)
	}
	if len(m.Handoff) == 0 {
		m.Handoff = nil
	}
	if r.err == nil && r.off < len(r.b) {
		m.Corr = r.u64()
	}
	return r.err
}

func (m *Ack) encodeBody(b *buffer) { b.u8(uint8(m.Of)) }

func (m *Ack) decodeBody(r *reader) error {
	m.Of = MsgType(r.u8())
	return r.err
}

func (m *ErrorMsg) encodeBody(b *buffer) {
	b.u8(uint8(m.Of))
	b.str(m.Reason)
}

func (m *ErrorMsg) decodeBody(r *reader) error {
	m.Of = MsgType(r.u8())
	m.Reason = r.str()
	return r.err
}

func (m *Batch) encodeBody(b *buffer) {
	b.u32(uint32(len(m.Msgs)))
	for _, sub := range m.Msgs {
		// Each element is a complete nested frame so the decoder can slice
		// without understanding the element's body.
		start := len(b.b)
		b.b = append(b.b, 0, 0, 0, 0, uint8(sub.MsgType()))
		sub.encodeBody(b)
		binary.BigEndian.PutUint32(b.b[start:], uint32(len(b.b)-start-frameHeaderSize))
	}
}

func (m *Batch) decodeBody(r *reader) error {
	n := int(r.u32())
	// Every element costs at least its 5-byte header, so a count claiming
	// more than the remaining bytes allow is corrupt — rejecting it here
	// also stops a hostile count from amplifying the preallocation below
	// beyond the frame's own size.
	if r.err != nil || n < 0 || n > (len(r.b)-r.off)/frameHeaderSize {
		r.fail()
		return r.err
	}
	m.Msgs = make([]Message, 0, n)
	for i := 0; i < n; i++ {
		ln := int(r.u32())
		t := MsgType(r.u8())
		if r.err != nil {
			return r.err
		}
		if ln < 0 || r.off+ln > len(r.b) {
			r.fail()
			return r.err
		}
		if t == TypeBatch {
			return errors.New("protocol: nested batch")
		}
		sub, err := newMessage(t)
		if err != nil {
			return err
		}
		sr := &reader{b: r.b[r.off : r.off+ln]}
		if err := sub.decodeBody(sr); err != nil {
			return err
		}
		if sr.off != len(sr.b) {
			return fmt.Errorf("protocol: %d trailing bytes in batch element %v", len(sr.b)-sr.off, t)
		}
		r.off += ln
		m.Msgs = append(m.Msgs, sub)
	}
	return r.err
}

func (m *SnapshotRequest) encodeBody(b *buffer) {}

func (m *SnapshotRequest) decodeBody(r *reader) error { return r.err }

func (m *SnapshotData) encodeBody(b *buffer) {
	b.bytes(m.Blob)
	b.boolean(m.Final)
}

func (m *SnapshotData) decodeBody(r *reader) error {
	m.Blob = r.bytes()
	m.Final = r.boolean()
	return r.err
}

func (m *Heartbeat) encodeBody(b *buffer) {
	b.serverID(m.Server)
	b.i32(m.Clients)
	b.i32(m.QueueLen)
	b.u64(m.CheckpointTick)
}

func (m *Heartbeat) decodeBody(r *reader) error {
	m.Server = r.serverID()
	m.Clients = r.i32()
	m.QueueLen = r.i32()
	m.CheckpointTick = r.u64()
	return r.err
}

func (m *DrainRequest) encodeBody(b *buffer) {
	b.serverID(m.Server)
	b.boolean(m.Exit)
	if m.Corr != 0 { // optional trailing field, see SplitReply
		b.u64(m.Corr)
	}
}

func (m *DrainRequest) decodeBody(r *reader) error {
	m.Server = r.serverID()
	m.Exit = r.boolean()
	if r.err == nil && r.off < len(r.b) {
		m.Corr = r.u64()
	}
	return r.err
}

func (m *DrainReply) encodeBody(b *buffer) {
	b.boolean(m.Granted)
	b.str(m.Reason)
}

func (m *DrainReply) decodeBody(r *reader) error {
	m.Granted = r.boolean()
	m.Reason = r.str()
	return r.err
}

func (m *Adopt) encodeBody(b *buffer) {
	b.serverID(m.Victim)
	b.rect(m.Bounds)
	b.bytes(m.Blob)
	b.boolean(m.Final)
	if m.Corr != 0 { // optional trailing field, see SplitReply
		b.u64(m.Corr)
	}
}

func (m *Adopt) decodeBody(r *reader) error {
	m.Victim = r.serverID()
	m.Bounds = r.rect()
	m.Blob = r.bytes()
	m.Final = r.boolean()
	if r.err == nil && r.off < len(r.b) {
		m.Corr = r.u64()
	}
	return r.err
}

// newMessage allocates the empty message for a wire type.
func newMessage(t MsgType) (Message, error) {
	switch t {
	case TypeGameUpdate:
		return &GameUpdate{}, nil
	case TypeForward:
		return &Forward{}, nil
	case TypeRegisterRequest:
		return &RegisterRequest{}, nil
	case TypeRegisterReply:
		return &RegisterReply{}, nil
	case TypeLoadReport:
		return &LoadReport{}, nil
	case TypeOverlapTable:
		return &OverlapTable{}, nil
	case TypeSplitRequest:
		return &SplitRequest{}, nil
	case TypeSplitReply:
		return &SplitReply{}, nil
	case TypeReclaimRequest:
		return &ReclaimRequest{}, nil
	case TypeReclaimReply:
		return &ReclaimReply{}, nil
	case TypeRedirect:
		return &Redirect{}, nil
	case TypeStateTransfer:
		return &StateTransfer{}, nil
	case TypeNonProximalQuery:
		return &NonProximalQuery{}, nil
	case TypeNonProximalReply:
		return &NonProximalReply{}, nil
	case TypeClientHello:
		return &ClientHello{}, nil
	case TypeClientWelcome:
		return &ClientWelcome{}, nil
	case TypeRangeUpdate:
		return &RangeUpdate{}, nil
	case TypeAck:
		return &Ack{}, nil
	case TypeError:
		return &ErrorMsg{}, nil
	case TypeBatch:
		return &Batch{}, nil
	case TypeSnapshotRequest:
		return &SnapshotRequest{}, nil
	case TypeSnapshotData:
		return &SnapshotData{}, nil
	case TypeHeartbeat:
		return &Heartbeat{}, nil
	case TypeDrainRequest:
		return &DrainRequest{}, nil
	case TypeDrainReply:
		return &DrainReply{}, nil
	case TypeAdopt:
		return &Adopt{}, nil
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadType, uint8(t))
	}
}

// frameHeaderSize is the per-frame envelope: u32 body length + u8 type.
const frameHeaderSize = 5

// AppendEncode encodes m into a self-describing frame
// ([u32 body length][u8 type][body]) appended to dst, and returns the
// extended slice. It is the allocation-lean sibling of Marshal: a caller
// that keeps reusing the returned slice (`buf = AppendEncode(buf[:0], m)`)
// encodes at zero allocations per message in steady state. On error dst is
// returned truncated to its original length.
func AppendEncode(dst []byte, m Message) ([]byte, error) {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, uint8(m.MsgType()))
	dst = appendBody(dst, m)
	bodyLen := len(dst) - start - frameHeaderSize
	if bodyLen > MaxFrameSize {
		return dst[:start], fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, bodyLen)
	}
	binary.BigEndian.PutUint32(dst[start:], uint32(bodyLen))
	return dst, nil
}

// bufPool recycles buffer headers. encodeBody takes *buffer through an
// interface, so a stack-local buffer would escape and cost one allocation
// per encode; cycling the 3-word header through a pool keeps append-style
// encoding at zero steady-state allocations. The byte storage itself
// always belongs to the caller.
var bufPool = sync.Pool{New: func() any { return new(buffer) }}

// appendBody appends m's encoded body (no envelope) to dst.
func appendBody(dst []byte, m Message) []byte {
	w := bufPool.Get().(*buffer)
	w.b = dst
	m.encodeBody(w)
	dst = w.b
	w.b = nil // never retain the caller's storage
	bufPool.Put(w)
	return dst
}

// Marshal encodes m into a freshly allocated self-describing frame:
// [u32 body length][u8 type][body]. Hot paths that can reuse a buffer
// should prefer AppendEncode.
func Marshal(m Message) ([]byte, error) {
	return AppendEncode(nil, m)
}

// AppendBatches encodes ms into as few Batch frames as MaxFrameSize
// allows, appended to dst. A single message is framed directly (wrapping
// one message in a Batch buys nothing), so SendBatch of one message costs
// exactly the same bytes as Send. frameEnds — appended to the ends
// argument, which callers may reuse like dst — holds the end offset of
// every produced frame within the returned slice, letting frame-oriented
// transports (the in-memory queue) split the buffer without re-parsing.
// An element whose batch wrapping would overflow MaxFrameSize is emitted
// as a direct frame, so anything Send can deliver, a batch can too. On
// error dst is returned truncated to its original length.
func AppendBatches(dst []byte, ends []int, ms []Message) (out []byte, frameEnds []int, err error) {
	frameEnds = ends[:0]
	for _, m := range ms {
		if m == nil {
			return dst, frameEnds, errors.New("protocol: nil message in batch")
		}
		if _, nested := m.(*Batch); nested {
			return dst, frameEnds, errors.New("protocol: nested batch")
		}
	}
	switch len(ms) {
	case 0:
		return dst, frameEnds, nil
	case 1:
		out, err = AppendEncode(dst, ms[0])
		if err != nil {
			return dst[:len(dst):len(dst)], frameEnds, err
		}
		return out, append(frameEnds, len(out)), nil
	}
	orig := len(dst)
	out = dst
	frameStart := -1 // start of the open Batch frame, -1 when none
	countOff := 0    // offset of the open frame's element count
	count := uint32(0)
	finish := func() {
		binary.BigEndian.PutUint32(out[frameStart:], uint32(len(out)-frameStart-frameHeaderSize))
		binary.BigEndian.PutUint32(out[countOff:], count)
		frameEnds = append(frameEnds, len(out))
		frameStart = -1
	}
	for _, m := range ms {
		for {
			if frameStart < 0 {
				frameStart = len(out)
				out = append(out, 0, 0, 0, 0, uint8(TypeBatch))
				countOff = len(out)
				out = append(out, 0, 0, 0, 0)
				count = 0
			}
			mark := len(out)
			out = append(out, 0, 0, 0, 0, uint8(m.MsgType()))
			out = appendBody(out, m)
			subBody := len(out) - mark - frameHeaderSize
			binary.BigEndian.PutUint32(out[mark:], uint32(subBody))
			if len(out)-frameStart-frameHeaderSize <= MaxFrameSize {
				count++
				break
			}
			// The open frame overflowed. Drop the just-written element and
			// either close the frame and retry in a fresh one, or — if the
			// element overflows even an otherwise-empty batch (the wrapper
			// costs 9 bytes) — emit it as a direct frame: anything Send can
			// deliver, SendBatch must deliver too. AppendEncode enforces
			// the genuine MaxFrameSize limit on the element itself.
			if count == 0 {
				out = out[:frameStart]
				frameStart = -1
				direct, err := AppendEncode(out, m)
				if err != nil {
					// The byte buffer is truncated to its original
					// contents, so offsets of already-finished frames
					// must not survive either.
					return dst[:orig:orig], frameEnds[:0], err
				}
				out = direct
				frameEnds = append(frameEnds, len(out))
				break
			}
			out = out[:mark]
			finish()
		}
	}
	if frameStart >= 0 {
		finish()
	}
	return out, frameEnds, nil
}

// Unmarshal decodes one frame previously produced by Marshal.
func Unmarshal(frame []byte) (Message, error) {
	if len(frame) < 5 {
		return nil, ErrTruncated
	}
	n := binary.BigEndian.Uint32(frame)
	if n > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	if len(frame) != int(n)+5 {
		return nil, fmt.Errorf("%w: frame says %d body bytes, have %d", ErrTruncated, n, len(frame)-5)
	}
	m, err := newMessage(MsgType(frame[4]))
	if err != nil {
		return nil, err
	}
	r := &reader{b: frame[5:]}
	if err := m.decodeBody(r); err != nil {
		return nil, fmt.Errorf("decode %v: %w", m.MsgType(), err)
	}
	if r.off != len(r.b) {
		return nil, fmt.Errorf("protocol: %d trailing bytes after %v", len(r.b)-r.off, m.MsgType())
	}
	return m, nil
}

// sizePool recycles scratch encode buffers so Size is allocation-free in
// steady state: the fast path calls it once per forwarded packet.
var sizePool = sync.Pool{New: func() any { return &buffer{b: make([]byte, 0, 512)} }}

// Size returns the number of bytes m occupies on the wire (envelope
// included) without allocating the frame twice. Bandwidth accounting in the
// evaluation harness uses it.
func Size(m Message) (int, error) {
	w := sizePool.Get().(*buffer)
	w.b = w.b[:0]
	m.encodeBody(w)
	n := len(w.b)
	if cap(w.b) <= 64<<10 { // don't let one huge state transfer pin memory
		sizePool.Put(w)
	}
	if n > MaxFrameSize {
		return 0, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	return frameHeaderSize + n, nil
}

// Write encodes m and writes the frame to w.
func Write(w io.Writer, m Message) error {
	frame, err := Marshal(m)
	if err != nil {
		return err
	}
	_, err = w.Write(frame)
	return err
}

// ReadFrame reads exactly one length-prefixed frame from r, reusing buf's
// storage when it is large enough. The returned slice is only valid until
// the next ReadFrame with the same buf; decoded messages never alias it
// (the decoder copies every byte/string field), so transports can recycle
// one buffer per connection.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	total := int(n) + frameHeaderSize
	if cap(buf) < total {
		buf = make([]byte, total)
	}
	frame := buf[:total]
	copy(frame, hdr[:])
	if _, err := io.ReadFull(r, frame[frameHeaderSize:]); err != nil {
		return nil, fmt.Errorf("protocol: body: %w", err)
	}
	return frame, nil
}

// Read reads exactly one frame from r and decodes it.
func Read(r io.Reader) (Message, error) {
	frame, err := ReadFrame(r, nil)
	if err != nil {
		return nil, err
	}
	return Unmarshal(frame)
}
