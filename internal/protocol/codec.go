package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"matrix/internal/geom"
	"matrix/internal/id"
)

// MaxFrameSize bounds a single message on the wire. State transfers chunk
// themselves below this; anything larger indicates corruption.
const MaxFrameSize = 4 << 20 // 4 MiB

// Codec errors.
var (
	ErrFrameTooLarge = errors.New("protocol: frame exceeds MaxFrameSize")
	ErrBadType       = errors.New("protocol: unknown message type")
	ErrTruncated     = errors.New("protocol: truncated message body")
)

// buffer is an append-only encoder.
type buffer struct {
	b []byte
}

func (w *buffer) u8(v uint8)   { w.b = append(w.b, v) }
func (w *buffer) u32(v uint32) { w.b = binary.BigEndian.AppendUint32(w.b, v) }
func (w *buffer) u64(v uint64) { w.b = binary.BigEndian.AppendUint64(w.b, v) }
func (w *buffer) i32(v int32)  { w.u32(uint32(v)) }
func (w *buffer) i64(v int64)  { w.u64(uint64(v)) }
func (w *buffer) f64(v float64) {
	w.u64(math.Float64bits(v))
}
func (w *buffer) boolean(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}
func (w *buffer) bytes(v []byte) {
	w.u32(uint32(len(v)))
	w.b = append(w.b, v...)
}
func (w *buffer) str(v string) { w.bytes([]byte(v)) }
func (w *buffer) point(p geom.Point) {
	w.f64(p.X)
	w.f64(p.Y)
}
func (w *buffer) rect(r geom.Rect) {
	w.f64(r.MinX)
	w.f64(r.MinY)
	w.f64(r.MaxX)
	w.f64(r.MaxY)
}
func (w *buffer) serverID(s id.ServerID) { w.u32(uint32(s)) }
func (w *buffer) serverIDs(s []id.ServerID) {
	w.u32(uint32(len(s)))
	for _, v := range s {
		w.serverID(v)
	}
}

// reader is a bounds-checked decoder over one frame.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = ErrTruncated
	}
}

func (r *reader) u8() uint8 {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) i32() int32    { return int32(r.u32()) }
func (r *reader) i64() int64    { return int64(r.u64()) }
func (r *reader) f64() float64  { return math.Float64frombits(r.u64()) }
func (r *reader) boolean() bool { return r.u8() != 0 }

func (r *reader) bytes() []byte {
	n := int(r.u32())
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) {
		r.fail()
		return nil
	}
	out := make([]byte, n)
	copy(out, r.b[r.off:r.off+n])
	r.off += n
	return out
}

func (r *reader) str() string { return string(r.bytes()) }

func (r *reader) point() geom.Point {
	return geom.Point{X: r.f64(), Y: r.f64()}
}

func (r *reader) rect() geom.Rect {
	return geom.Rect{MinX: r.f64(), MinY: r.f64(), MaxX: r.f64(), MaxY: r.f64()}
}

func (r *reader) serverID() id.ServerID { return id.ServerID(r.u32()) }

func (r *reader) serverIDs() []id.ServerID {
	n := int(r.u32())
	if r.err != nil || n < 0 || n > len(r.b) {
		r.fail()
		return nil
	}
	out := make([]id.ServerID, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.serverID())
	}
	if r.err != nil {
		return nil
	}
	return out
}

// --- per-message bodies ---

func (m *GameUpdate) encodeBody(b *buffer) {
	b.u64(uint64(m.Client))
	b.u64(uint64(m.Seq))
	b.u8(uint8(m.Kind))
	b.point(m.Origin)
	b.point(m.Dest)
	b.i64(m.SentUnix)
	b.bytes(m.Payload)
}

func (m *GameUpdate) decodeBody(r *reader) error {
	m.Client = id.ClientID(r.u64())
	m.Seq = id.PacketSeq(r.u64())
	m.Kind = UpdateKind(r.u8())
	m.Origin = r.point()
	m.Dest = r.point()
	m.SentUnix = r.i64()
	m.Payload = r.bytes()
	return r.err
}

func (m *Forward) encodeBody(b *buffer) {
	b.serverID(m.From)
	m.Update.encodeBody(b)
}

func (m *Forward) decodeBody(r *reader) error {
	m.From = r.serverID()
	return m.Update.decodeBody(r)
}

func (m *RegisterRequest) encodeBody(b *buffer) {
	b.str(m.Addr)
	b.f64(m.Radius)
}

func (m *RegisterRequest) decodeBody(r *reader) error {
	m.Addr = r.str()
	m.Radius = r.f64()
	return r.err
}

func (m *RegisterReply) encodeBody(b *buffer) {
	b.serverID(m.Server)
	b.rect(m.Bounds)
	b.rect(m.World)
}

func (m *RegisterReply) decodeBody(r *reader) error {
	m.Server = r.serverID()
	m.Bounds = r.rect()
	m.World = r.rect()
	return r.err
}

func (m *LoadReport) encodeBody(b *buffer) {
	b.serverID(m.Server)
	b.i32(m.Clients)
	b.i32(m.QueueLen)
}

func (m *LoadReport) decodeBody(r *reader) error {
	m.Server = r.serverID()
	m.Clients = r.i32()
	m.QueueLen = r.i32()
	return r.err
}

func (m *OverlapTable) encodeBody(b *buffer) {
	b.serverID(m.Server)
	b.u64(m.Version)
	b.rect(m.Bounds)
	b.f64(m.Radius)
	b.u32(uint32(len(m.Regions)))
	for _, reg := range m.Regions {
		b.rect(reg.Bounds)
		b.serverIDs(reg.Peers)
	}
	b.u32(uint32(len(m.Peers)))
	for _, p := range m.Peers {
		b.serverID(p.Server)
		b.str(p.Addr)
		b.rect(p.Bounds)
	}
}

func (m *OverlapTable) decodeBody(r *reader) error {
	m.Server = r.serverID()
	m.Version = r.u64()
	m.Bounds = r.rect()
	m.Radius = r.f64()
	nRegions := int(r.u32())
	if r.err != nil || nRegions < 0 || nRegions > len(r.b) {
		r.fail()
		return r.err
	}
	m.Regions = make([]TableRegion, 0, nRegions)
	for i := 0; i < nRegions; i++ {
		reg := TableRegion{Bounds: r.rect(), Peers: r.serverIDs()}
		if r.err != nil {
			return r.err
		}
		m.Regions = append(m.Regions, reg)
	}
	nPeers := int(r.u32())
	if r.err != nil || nPeers < 0 || nPeers > len(r.b) {
		r.fail()
		return r.err
	}
	m.Peers = make([]PeerAddr, 0, nPeers)
	for i := 0; i < nPeers; i++ {
		p := PeerAddr{Server: r.serverID(), Addr: r.str(), Bounds: r.rect()}
		if r.err != nil {
			return r.err
		}
		m.Peers = append(m.Peers, p)
	}
	return r.err
}

func (m *SplitRequest) encodeBody(b *buffer) {
	b.serverID(m.Server)
	b.i32(m.Clients)
}

func (m *SplitRequest) decodeBody(r *reader) error {
	m.Server = r.serverID()
	m.Clients = r.i32()
	return r.err
}

func (m *SplitReply) encodeBody(b *buffer) {
	b.boolean(m.Granted)
	b.serverID(m.Child)
	b.str(m.ChildAddr)
	b.rect(m.Keep)
	b.rect(m.Give)
	b.str(m.Reason)
}

func (m *SplitReply) decodeBody(r *reader) error {
	m.Granted = r.boolean()
	m.Child = r.serverID()
	m.ChildAddr = r.str()
	m.Keep = r.rect()
	m.Give = r.rect()
	m.Reason = r.str()
	return r.err
}

func (m *ReclaimRequest) encodeBody(b *buffer) {
	b.serverID(m.Parent)
	b.serverID(m.Child)
}

func (m *ReclaimRequest) decodeBody(r *reader) error {
	m.Parent = r.serverID()
	m.Child = r.serverID()
	return r.err
}

func (m *ReclaimReply) encodeBody(b *buffer) {
	b.boolean(m.Granted)
	b.rect(m.Merged)
	b.str(m.Reason)
}

func (m *ReclaimReply) decodeBody(r *reader) error {
	m.Granted = r.boolean()
	m.Merged = r.rect()
	m.Reason = r.str()
	return r.err
}

func (m *Redirect) encodeBody(b *buffer) {
	b.u64(uint64(m.Client))
	b.serverID(m.NewOwner)
	b.str(m.NewAddr)
}

func (m *Redirect) decodeBody(r *reader) error {
	m.Client = id.ClientID(r.u64())
	m.NewOwner = r.serverID()
	m.NewAddr = r.str()
	return r.err
}

func (m *StateTransfer) encodeBody(b *buffer) {
	b.serverID(m.From)
	b.serverID(m.To)
	b.boolean(m.Final)
	b.u32(uint32(len(m.Objects)))
	for _, o := range m.Objects {
		b.u64(uint64(o.Object))
		b.u64(uint64(o.Client))
		b.point(o.Pos)
		b.bytes(o.Payload)
	}
}

func (m *StateTransfer) decodeBody(r *reader) error {
	m.From = r.serverID()
	m.To = r.serverID()
	m.Final = r.boolean()
	n := int(r.u32())
	if r.err != nil || n < 0 || n > len(r.b) {
		r.fail()
		return r.err
	}
	m.Objects = make([]ObjectState, 0, n)
	for i := 0; i < n; i++ {
		o := ObjectState{
			Object: id.ObjectID(r.u64()),
			Client: id.ClientID(r.u64()),
			Pos:    r.point(),
		}
		o.Payload = r.bytes()
		if r.err != nil {
			return r.err
		}
		m.Objects = append(m.Objects, o)
	}
	return r.err
}

func (m *NonProximalQuery) encodeBody(b *buffer) {
	b.serverID(m.Server)
	b.point(m.Point)
	b.f64(m.Radius)
}

func (m *NonProximalQuery) decodeBody(r *reader) error {
	m.Server = r.serverID()
	m.Point = r.point()
	m.Radius = r.f64()
	return r.err
}

func (m *NonProximalReply) encodeBody(b *buffer) {
	b.serverIDs(m.Servers)
	b.u32(uint32(len(m.Peers)))
	for _, p := range m.Peers {
		b.serverID(p.Server)
		b.str(p.Addr)
		b.rect(p.Bounds)
	}
}

func (m *NonProximalReply) decodeBody(r *reader) error {
	m.Servers = r.serverIDs()
	n := int(r.u32())
	if r.err != nil || n < 0 || n > len(r.b) {
		r.fail()
		return r.err
	}
	m.Peers = make([]PeerAddr, 0, n)
	for i := 0; i < n; i++ {
		p := PeerAddr{Server: r.serverID(), Addr: r.str(), Bounds: r.rect()}
		if r.err != nil {
			return r.err
		}
		m.Peers = append(m.Peers, p)
	}
	return r.err
}

func (m *ClientHello) encodeBody(b *buffer) {
	b.u64(uint64(m.Client))
	b.point(m.Pos)
}

func (m *ClientHello) decodeBody(r *reader) error {
	m.Client = id.ClientID(r.u64())
	m.Pos = r.point()
	return r.err
}

func (m *ClientWelcome) encodeBody(b *buffer) {
	b.serverID(m.Server)
	b.rect(m.Bounds)
}

func (m *ClientWelcome) decodeBody(r *reader) error {
	m.Server = r.serverID()
	m.Bounds = r.rect()
	return r.err
}

func (m *RangeUpdate) encodeBody(b *buffer) {
	b.serverID(m.Server)
	b.rect(m.Bounds)
	b.u32(uint32(len(m.Handoff)))
	for _, h := range m.Handoff {
		b.serverID(h.Server)
		b.str(h.Addr)
		b.rect(h.Bounds)
	}
}

func (m *RangeUpdate) decodeBody(r *reader) error {
	m.Server = r.serverID()
	m.Bounds = r.rect()
	n := int(r.u32())
	if r.err != nil || n < 0 || n > len(r.b) {
		r.fail()
		return r.err
	}
	m.Handoff = make([]HandoffTarget, 0, n)
	for i := 0; i < n; i++ {
		h := HandoffTarget{Server: r.serverID(), Addr: r.str(), Bounds: r.rect()}
		if r.err != nil {
			return r.err
		}
		m.Handoff = append(m.Handoff, h)
	}
	if len(m.Handoff) == 0 {
		m.Handoff = nil
	}
	return r.err
}

func (m *Ack) encodeBody(b *buffer) { b.u8(uint8(m.Of)) }

func (m *Ack) decodeBody(r *reader) error {
	m.Of = MsgType(r.u8())
	return r.err
}

func (m *ErrorMsg) encodeBody(b *buffer) {
	b.u8(uint8(m.Of))
	b.str(m.Reason)
}

func (m *ErrorMsg) decodeBody(r *reader) error {
	m.Of = MsgType(r.u8())
	m.Reason = r.str()
	return r.err
}

// newMessage allocates the empty message for a wire type.
func newMessage(t MsgType) (Message, error) {
	switch t {
	case TypeGameUpdate:
		return &GameUpdate{}, nil
	case TypeForward:
		return &Forward{}, nil
	case TypeRegisterRequest:
		return &RegisterRequest{}, nil
	case TypeRegisterReply:
		return &RegisterReply{}, nil
	case TypeLoadReport:
		return &LoadReport{}, nil
	case TypeOverlapTable:
		return &OverlapTable{}, nil
	case TypeSplitRequest:
		return &SplitRequest{}, nil
	case TypeSplitReply:
		return &SplitReply{}, nil
	case TypeReclaimRequest:
		return &ReclaimRequest{}, nil
	case TypeReclaimReply:
		return &ReclaimReply{}, nil
	case TypeRedirect:
		return &Redirect{}, nil
	case TypeStateTransfer:
		return &StateTransfer{}, nil
	case TypeNonProximalQuery:
		return &NonProximalQuery{}, nil
	case TypeNonProximalReply:
		return &NonProximalReply{}, nil
	case TypeClientHello:
		return &ClientHello{}, nil
	case TypeClientWelcome:
		return &ClientWelcome{}, nil
	case TypeRangeUpdate:
		return &RangeUpdate{}, nil
	case TypeAck:
		return &Ack{}, nil
	case TypeError:
		return &ErrorMsg{}, nil
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadType, uint8(t))
	}
}

// Marshal encodes m into a self-describing frame:
// [u32 body length][u8 type][body].
func Marshal(m Message) ([]byte, error) {
	var body buffer
	m.encodeBody(&body)
	if len(body.b) > MaxFrameSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(body.b))
	}
	out := make([]byte, 0, 5+len(body.b))
	out = binary.BigEndian.AppendUint32(out, uint32(len(body.b)))
	out = append(out, uint8(m.MsgType()))
	out = append(out, body.b...)
	return out, nil
}

// Unmarshal decodes one frame previously produced by Marshal.
func Unmarshal(frame []byte) (Message, error) {
	if len(frame) < 5 {
		return nil, ErrTruncated
	}
	n := binary.BigEndian.Uint32(frame)
	if n > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	if len(frame) != int(n)+5 {
		return nil, fmt.Errorf("%w: frame says %d body bytes, have %d", ErrTruncated, n, len(frame)-5)
	}
	m, err := newMessage(MsgType(frame[4]))
	if err != nil {
		return nil, err
	}
	r := &reader{b: frame[5:]}
	if err := m.decodeBody(r); err != nil {
		return nil, fmt.Errorf("decode %v: %w", m.MsgType(), err)
	}
	if r.off != len(r.b) {
		return nil, fmt.Errorf("protocol: %d trailing bytes after %v", len(r.b)-r.off, m.MsgType())
	}
	return m, nil
}

// Size returns the number of bytes m occupies on the wire (envelope
// included) without allocating the frame twice. Bandwidth accounting in the
// evaluation harness uses it.
func Size(m Message) (int, error) {
	var body buffer
	m.encodeBody(&body)
	if len(body.b) > MaxFrameSize {
		return 0, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(body.b))
	}
	return 5 + len(body.b), nil
}

// Write encodes m and writes the frame to w.
func Write(w io.Writer, m Message) error {
	frame, err := Marshal(m)
	if err != nil {
		return err
	}
	_, err = w.Write(frame)
	return err
}

// Read reads exactly one frame from r and decodes it.
func Read(r io.Reader) (Message, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	frame := make([]byte, 5+n)
	copy(frame, hdr[:])
	if _, err := io.ReadFull(r, frame[5:]); err != nil {
		return nil, fmt.Errorf("protocol: body: %w", err)
	}
	return Unmarshal(frame)
}
