package protocol

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// FuzzUnmarshal feeds arbitrary frames to the decoder. Whatever the bytes,
// Unmarshal must return a message or an error — never panic, never
// over-read — and anything it accepts must re-marshal and decode again
// (the wire format is closed under round-trips).
func FuzzUnmarshal(f *testing.F) {
	for _, m := range sampleMessages() {
		frame, err := Marshal(m)
		if err != nil {
			f.Fatalf("marshal seed %v: %v", m.MsgType(), err)
		}
		f.Add(frame)
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})                // header one byte short
	f.Add([]byte{0, 0, 0, 0, byte(typeMax)}) // unknown type
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1}) // absurd length claim
	f.Fuzz(func(t *testing.T, frame []byte) {
		m, err := Unmarshal(frame)
		if err != nil {
			return
		}
		out, err := Marshal(m)
		if err != nil {
			t.Fatalf("accepted frame re-marshals with error: %v", err)
		}
		if _, err := Unmarshal(out); err != nil {
			t.Fatalf("re-marshaled frame no longer decodes: %v", err)
		}
	})
}

// FuzzReadFrame streams arbitrary bytes through the framer: it must slice
// frames or fail cleanly, and every frame it produces must be safe to hand
// to Unmarshal.
func FuzzReadFrame(f *testing.F) {
	var stream bytes.Buffer
	for _, m := range sampleMessages() {
		if err := Write(&stream, m); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(stream.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 3, 9, 1})          // truncated body
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0}) // length over MaxFrameSize
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		var buf []byte
		for {
			frame, err := ReadFrame(r, buf)
			if err != nil {
				return
			}
			if len(frame) < frameHeaderSize {
				t.Fatalf("ReadFrame returned a %d-byte frame, shorter than its own header", len(frame))
			}
			_, _ = Unmarshal(frame)
			buf = frame
		}
	})
}

// TestRegenerateFuzzCorpus rewrites the committed seed corpus under
// testdata/fuzz/ from sampleMessages(). Gated behind an env var: run
//
//	MATRIX_REGEN_FUZZ_CORPUS=1 go test ./internal/protocol -run TestRegenerateFuzzCorpus
//
// after adding a message type, and commit the new files.
func TestRegenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("MATRIX_REGEN_FUZZ_CORPUS") == "" {
		t.Skip("set MATRIX_REGEN_FUZZ_CORPUS=1 to rewrite testdata/fuzz/")
	}
	write := func(target, name string, data []byte) {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var stream bytes.Buffer
	for _, m := range sampleMessages() {
		frame, err := Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		write("FuzzUnmarshal", fmt.Sprintf("seed-%s", m.MsgType()), frame)
		stream.Write(frame)
	}
	write("FuzzUnmarshal", "seed-truncated-header", []byte{0, 0, 0, 0})
	write("FuzzUnmarshal", "seed-unknown-type", []byte{0, 0, 0, 0, byte(typeMax)})
	write("FuzzUnmarshal", "seed-absurd-length", []byte{0xff, 0xff, 0xff, 0xff, 1})
	write("FuzzReadFrame", "seed-all-types-stream", stream.Bytes())
	write("FuzzReadFrame", "seed-truncated-body", []byte{0, 0, 0, 3, 9, 1})
	write("FuzzReadFrame", "seed-oversized-length", []byte{0xff, 0xff, 0xff, 0xff, 0})
}
