package protocol

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"matrix/internal/geom"
)

// helloFrameV0 hand-builds the historical ClientHello encoding (u64 client
// + two f64 coordinates, no token field), exactly what every pre-token
// peer put on the wire.
func helloFrameV0(client uint64, x, y float64) []byte {
	body := binary.BigEndian.AppendUint64(nil, client)
	body = binary.BigEndian.AppendUint64(body, math.Float64bits(x))
	body = binary.BigEndian.AppendUint64(body, math.Float64bits(y))
	frame := binary.BigEndian.AppendUint32(nil, uint32(len(body)))
	frame = append(frame, uint8(TypeClientHello))
	return append(frame, body...)
}

// TestClientHelloTokenBackwardCompatible pins the wire contract of the
// optional token: a token-free hello encodes byte-identically to the
// historical format, and the historical format still decodes.
func TestClientHelloTokenBackwardCompatible(t *testing.T) {
	old := helloFrameV0(12, 1, 2)

	// Token-free hellos must not change on the wire — golden frames,
	// byte-parity between transports and sim fingerprints all depend on it.
	got, err := Marshal(&ClientHello{Client: 12, Pos: geom.Pt(1, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, old) {
		t.Fatalf("token-free hello encoding changed:\n got  %x\n want %x", got, old)
	}

	// A frame from a pre-token sender decodes with an empty token.
	m, err := Unmarshal(old)
	if err != nil {
		t.Fatalf("historical frame no longer decodes: %v", err)
	}
	hello, ok := m.(*ClientHello)
	if !ok {
		t.Fatalf("decoded %T, want *ClientHello", m)
	}
	if hello.Client != 12 || hello.Pos != geom.Pt(1, 2) || hello.Token != "" {
		t.Fatalf("decoded %+v, want client 12 at (1,2) with empty token", hello)
	}

	// A tokened hello is strictly the old frame plus the trailing string.
	tokened, err := Marshal(&ClientHello{Client: 12, Pos: geom.Pt(1, 2), Token: "s3cret"})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tokened[5:5+len(old)-5], old[5:]) {
		t.Fatalf("tokened hello does not extend the historical body:\n got  %x\n old  %x", tokened, old)
	}
	back, err := Unmarshal(tokened)
	if err != nil {
		t.Fatal(err)
	}
	if h := back.(*ClientHello); h.Token != "s3cret" {
		t.Fatalf("token round trip = %q, want %q", h.Token, "s3cret")
	}
}
