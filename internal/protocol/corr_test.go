package protocol

import (
	"bytes"
	"testing"

	"matrix/internal/geom"
)

// corrMessages builds each correlation-capable message twice: unstamped
// (Corr 0, the historical encoding) and stamped.
func corrMessages(corr uint64) []Message {
	return []Message{
		&SplitReply{Granted: true, Child: 3, ChildAddr: "s3", Keep: geom.Rect{MaxX: 1, MaxY: 1},
			Give: geom.Rect{MinX: 1, MaxX: 2, MaxY: 1}, Corr: corr},
		&RangeUpdate{Server: 2, Bounds: geom.Rect{MaxX: 4, MaxY: 4},
			Handoff: []HandoffTarget{{Server: 3, Addr: "s3", Bounds: geom.Rect{MaxX: 2, MaxY: 2}}}, Corr: corr},
		&RangeUpdate{Server: 2, Corr: corr}, // empty bounds + nil handoff (deactivation)
		&Redirect{Client: 9, NewOwner: 3, NewAddr: "s3", Corr: corr},
		&DrainRequest{Server: 2, Exit: true, Corr: corr},
		&Adopt{Victim: 2, Bounds: geom.Rect{MaxX: 4, MaxY: 4}, Blob: []byte{1, 2}, Final: true, Corr: corr},
	}
}

// TestCorrBackwardCompatible pins the optional-trailing-field contract for
// every correlation-capable message: an unstamped message encodes
// byte-identically to the pre-correlation format (so golden frames, fuzz
// corpora and fingerprints are unchanged), a stamped one is strictly the
// old body plus the trailing u64, and an unstamped frame decodes to Corr 0.
func TestCorrBackwardCompatible(t *testing.T) {
	plain := corrMessages(0)
	stamped := corrMessages(0xDEADBEEF12345)
	for i := range plain {
		oldFrame, err := Marshal(plain[i])
		if err != nil {
			t.Fatalf("%T: %v", plain[i], err)
		}
		newFrame, err := Marshal(stamped[i])
		if err != nil {
			t.Fatalf("%T: %v", stamped[i], err)
		}
		if len(newFrame) != len(oldFrame)+8 || !bytes.Equal(newFrame[5:len(oldFrame)], oldFrame[5:]) {
			t.Errorf("%T: stamped frame is not old body + trailing u64", stamped[i])
		}
		back, err := Unmarshal(newFrame)
		if err != nil {
			t.Fatalf("%T: stamped frame does not decode: %v", stamped[i], err)
		}
		if got := corrOf(back); got != 0xDEADBEEF12345 {
			t.Errorf("%T: corr round trip = %#x", back, got)
		}
		legacy, err := Unmarshal(oldFrame)
		if err != nil {
			t.Fatalf("%T: pre-correlation frame no longer decodes: %v", plain[i], err)
		}
		if got := corrOf(legacy); got != 0 {
			t.Errorf("%T: legacy frame decoded corr %#x, want 0", legacy, got)
		}
	}
}

func corrOf(m Message) uint64 {
	switch v := m.(type) {
	case *SplitReply:
		return v.Corr
	case *RangeUpdate:
		return v.Corr
	case *Redirect:
		return v.Corr
	case *DrainRequest:
		return v.Corr
	case *Adopt:
		return v.Corr
	}
	return 0
}
