// Package protocol defines the Matrix wire protocol: the spatially-tagged
// game packets that game servers hand to their Matrix servers, and the
// control-plane messages exchanged with peer Matrix servers and with the
// Matrix Coordinator (registration, load reports, overlap tables, splits,
// reclamations, client redirects and state transfer).
//
// Messages are encoded with a compact length-prefixed binary framing
// (encoding/binary, big endian) suitable both for TCP transports and for the
// in-process transport used by the simulation harness. Hot paths encode
// append-style into caller-owned buffers (AppendEncode, AppendBatches) so
// steady-state encoding is allocation-free, and the Batch frame packs a
// whole tick's traffic to one peer into a single frame.
package protocol

import (
	"fmt"

	"matrix/internal/geom"
	"matrix/internal/id"
	"matrix/internal/overlap"
)

// MsgType discriminates message payloads on the wire.
type MsgType uint8

// Message type values. They start at 1 so a zero byte is detectably invalid.
const (
	TypeGameUpdate MsgType = iota + 1
	TypeForward
	TypeRegisterRequest
	TypeRegisterReply
	TypeLoadReport
	TypeOverlapTable
	TypeSplitRequest
	TypeSplitReply
	TypeReclaimRequest
	TypeReclaimReply
	TypeRedirect
	TypeStateTransfer
	TypeNonProximalQuery
	TypeNonProximalReply
	TypeClientHello
	TypeClientWelcome
	TypeRangeUpdate
	TypeAck
	TypeError
	TypeBatch
	TypeSnapshotRequest
	TypeSnapshotData
	TypeHeartbeat
	TypeDrainRequest
	TypeDrainReply
	TypeAdopt

	typeMax // sentinel for validation
)

// NumMsgTypes sizes arrays indexed by MsgType (values start at 1, so index
// 0 is unused). The middleware stats block uses it to pre-resolve one
// counter per message type with no map on the hot path.
const NumMsgTypes = int(typeMax)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	names := [...]string{
		TypeGameUpdate:       "game-update",
		TypeForward:          "forward",
		TypeRegisterRequest:  "register-request",
		TypeRegisterReply:    "register-reply",
		TypeLoadReport:       "load-report",
		TypeOverlapTable:     "overlap-table",
		TypeSplitRequest:     "split-request",
		TypeSplitReply:       "split-reply",
		TypeReclaimRequest:   "reclaim-request",
		TypeReclaimReply:     "reclaim-reply",
		TypeRedirect:         "redirect",
		TypeStateTransfer:    "state-transfer",
		TypeNonProximalQuery: "non-proximal-query",
		TypeNonProximalReply: "non-proximal-reply",
		TypeClientHello:      "client-hello",
		TypeClientWelcome:    "client-welcome",
		TypeRangeUpdate:      "range-update",
		TypeAck:              "ack",
		TypeError:            "error",
		TypeBatch:            "batch",
		TypeSnapshotRequest:  "snapshot-request",
		TypeSnapshotData:     "snapshot-data",
		TypeHeartbeat:        "heartbeat",
		TypeDrainRequest:     "drain-request",
		TypeDrainReply:       "drain-reply",
		TypeAdopt:            "adopt",
	}
	if int(t) < len(names) && names[t] != "" {
		return names[t]
	}
	return fmt.Sprintf("msgtype(%d)", uint8(t))
}

// Message is implemented by every protocol message.
type Message interface {
	// MsgType returns the wire discriminator for the message.
	MsgType() MsgType
	// encodeBody appends the message body (without the envelope).
	encodeBody(b *buffer)
	// decodeBody parses the message body.
	decodeBody(r *reader) error
}

// UpdateKind classifies a game update's role in the game, so workload models
// can mix traffic classes without the middleware understanding game logic.
type UpdateKind uint8

// Update kinds used by the bundled game workloads.
const (
	KindMove UpdateKind = iota + 1
	KindAction
	KindChat
	KindSpawn
	KindDespawn
)

// String implements fmt.Stringer.
func (k UpdateKind) String() string {
	switch k {
	case KindMove:
		return "move"
	case KindAction:
		return "action"
	case KindChat:
		return "chat"
	case KindSpawn:
		return "spawn"
	case KindDespawn:
		return "despawn"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// GameUpdate is the paper's spatially-tagged game packet: the game server
// forwards every client packet to its Matrix server "appropriately tagged
// with the spatial coordinates (in the game world) of the packet's origin
// and destination".
type GameUpdate struct {
	Client   id.ClientID  // the acting client's global ID (callsign)
	Seq      id.PacketSeq // per-client sequence number
	Kind     UpdateKind   // traffic class
	Origin   geom.Point   // where the event originates
	Dest     geom.Point   // where the event lands (== Origin for most)
	SentUnix int64        // send timestamp, ns since epoch (latency metric)
	Payload  []byte       // opaque game bytes (Matrix never reads them)
}

// MsgType implements Message.
func (*GameUpdate) MsgType() MsgType { return TypeGameUpdate }

// Forward wraps a GameUpdate traveling between Matrix servers, recording the
// origin server so receivers can verify ranges and account traffic.
type Forward struct {
	From   id.ServerID
	Update GameUpdate
}

// MsgType implements Message.
func (*Forward) MsgType() MsgType { return TypeForward }

// RegisterRequest is sent by a new Matrix server to the MC: "when a game
// server starts, it sends Matrix the visibility radius of clients in the
// game".
type RegisterRequest struct {
	Addr   string  // transport address peers should dial
	Radius float64 // the game's radius of visibility
}

// MsgType implements Message.
func (*RegisterRequest) MsgType() MsgType { return TypeRegisterRequest }

// RegisterReply assigns the server its ID and initial map range.
type RegisterReply struct {
	Server id.ServerID
	Bounds geom.Rect
	World  geom.Rect
}

// MsgType implements Message.
func (*RegisterReply) MsgType() MsgType { return TypeRegisterReply }

// LoadReport is the game server's periodic load notification.
type LoadReport struct {
	Server   id.ServerID
	Clients  int32 // connected clients
	QueueLen int32 // receive-queue length (the paper's Figure 2b metric)
}

// MsgType implements Message.
func (*LoadReport) MsgType() MsgType { return TypeLoadReport }

// TableRegion is one overlap region on the wire.
type TableRegion struct {
	Bounds geom.Rect
	Peers  []id.ServerID
}

// PeerAddr pairs a server with its dialable transport address and current
// partition bounds. The bounds let a Matrix server resolve "who owns this
// point" for adjacent partitions locally — used when a client's movement
// carries it across a partition boundary and the game server must hand it
// off ("each server is only responsible for clients located within its
// assigned partition").
type PeerAddr struct {
	Server id.ServerID
	Addr   string
	Bounds geom.Rect
}

// OverlapTable carries a server's freshly computed overlap regions plus the
// addresses of every peer it may need to forward to.
type OverlapTable struct {
	Server  id.ServerID
	Version uint64
	Bounds  geom.Rect
	Radius  float64
	Regions []TableRegion
	Peers   []PeerAddr
}

// MsgType implements Message.
func (*OverlapTable) MsgType() MsgType { return TypeOverlapTable }

// SplitRequest asks the MC for a fresh server to shed load onto. The
// decision to split is purely local to the requesting Matrix server.
type SplitRequest struct {
	Server  id.ServerID
	Clients int32 // current load, for the MC's records
}

// MsgType implements Message.
func (*SplitRequest) MsgType() MsgType { return TypeSplitRequest }

// SplitReply grants (or denies) a split. On success the requester keeps
// Keep and the new child server owns Give.
type SplitReply struct {
	Granted   bool
	Child     id.ServerID
	ChildAddr string
	Keep      geom.Rect
	Give      geom.Rect
	Reason    string // populated when denied
	// Corr is the coordinator decision's correlation ID: every frame a
	// single split/adopt/drain decision fans out into carries the same
	// value, so one handoff can be followed coordinator→server→client
	// across process traces. Zero (the pre-correlation encoding) means
	// unstamped; it is an optional trailing wire field on every message
	// that carries it.
	Corr uint64
}

// MsgType implements Message.
func (*SplitReply) MsgType() MsgType { return TypeSplitReply }

// ReclaimRequest asks the MC to fold child's partition back into parent.
type ReclaimRequest struct {
	Parent id.ServerID
	Child  id.ServerID
}

// MsgType implements Message.
func (*ReclaimRequest) MsgType() MsgType { return TypeReclaimRequest }

// ReclaimReply reports the outcome of a reclamation.
type ReclaimReply struct {
	Granted bool
	Merged  geom.Rect
	Reason  string
}

// MsgType implements Message.
func (*ReclaimReply) MsgType() MsgType { return TypeReclaimReply }

// Redirect tells a game client to reconnect to a different game server. The
// client never learns why (Matrix is transparent to players).
type Redirect struct {
	Client   id.ClientID
	NewOwner id.ServerID
	NewAddr  string
	// Corr carries the correlation ID of the topology decision that
	// displaced the client (see SplitReply.Corr); zero for boundary
	// crossings, which are client movement rather than a decision.
	Corr uint64
}

// MsgType implements Message.
func (*Redirect) MsgType() MsgType { return TypeRedirect }

// ObjectState is one migrating game object (client avatar or map object).
type ObjectState struct {
	Object  id.ObjectID
	Client  id.ClientID // zero for non-player objects
	Pos     geom.Point
	Payload []byte
}

// StateTransfer moves game state between game servers during splits and
// reclamations ("the overloaded game server will forward all game specific
// state ... to the new game server via Matrix").
type StateTransfer struct {
	From    id.ServerID
	To      id.ServerID
	Objects []ObjectState
	Final   bool // true on the last chunk of a transfer
}

// MsgType implements Message.
func (*StateTransfer) MsgType() MsgType { return TypeStateTransfer }

// NonProximalQuery asks the MC for the consistency set of an arbitrary
// point, used for the paper's "rare non-proximal interactions".
type NonProximalQuery struct {
	Server id.ServerID // asking server
	Point  geom.Point
	Radius float64
}

// MsgType implements Message.
func (*NonProximalQuery) MsgType() MsgType { return TypeNonProximalQuery }

// NonProximalReply carries the consistency set for a NonProximalQuery.
type NonProximalReply struct {
	Servers []id.ServerID
	Peers   []PeerAddr
}

// MsgType implements Message.
func (*NonProximalReply) MsgType() MsgType { return TypeNonProximalReply }

// ClientHello is a game client joining a game server.
type ClientHello struct {
	Client id.ClientID
	Pos    geom.Point
	// Token is the optional session credential the middleware auth stage
	// verifies. It rides the wire only when non-empty, so token-free hellos
	// encode byte-identically to the historical format.
	Token string
}

// MsgType implements Message.
func (*ClientHello) MsgType() MsgType { return TypeClientHello }

// ClientWelcome acknowledges a join and tells the client its server.
type ClientWelcome struct {
	Server id.ServerID
	Bounds geom.Rect
}

// MsgType implements Message.
func (*ClientWelcome) MsgType() MsgType { return TypeClientWelcome }

// HandoffTarget names the server that takes over a region the receiver is
// giving up, so the game server can redirect the right clients to the right
// place ("Matrix provides the identity of the appropriate game server").
type HandoffTarget struct {
	Server id.ServerID
	Addr   string
	Bounds geom.Rect
}

// RangeUpdate tells a game server its new map range after a split or
// reclamation. Handoff lists where displaced clients must be redirected:
// after a split it names the new child and its piece; after a reclamation
// (empty Bounds) it names the parent that absorbed the partition.
type RangeUpdate struct {
	Server  id.ServerID
	Bounds  geom.Rect
	Handoff []HandoffTarget
	// Corr carries the correlation ID of the decision that produced this
	// bounds change (see SplitReply.Corr); zero when unstamped.
	Corr uint64
}

// MsgType implements Message.
func (*RangeUpdate) MsgType() MsgType { return TypeRangeUpdate }

// Ack is a generic positive acknowledgement keyed by the request type.
type Ack struct {
	Of MsgType
}

// MsgType implements Message.
func (*Ack) MsgType() MsgType { return TypeAck }

// ErrorMsg is a generic failure reply.
type ErrorMsg struct {
	Of     MsgType
	Reason string
}

// MsgType implements Message.
func (*ErrorMsg) MsgType() MsgType { return TypeError }

// Batch packs any number of messages into one frame, so a transport can
// send everything destined for the same peer in a tick as a single write
// (the paper's per-message marshalling cost amortized across the tick).
// Batches never nest. Transports unpack batches transparently on receive:
// Conn.Recv hands back the contained messages one at a time.
type Batch struct {
	Msgs []Message
}

// MsgType implements Message.
func (*Batch) MsgType() MsgType { return TypeBatch }

// SnapshotRequest asks a live Matrix server to dump its complete state (its
// own state plus its co-located game server's) as a snapshot blob. Operators
// use it to checkpoint or inspect a running server without stopping it.
type SnapshotRequest struct{}

// MsgType implements Message.
func (*SnapshotRequest) MsgType() MsgType { return TypeSnapshotRequest }

// SnapshotData carries a snapshot blob, chunked so a node whose state
// exceeds MaxFrameSize still dumps cleanly (like StateTransfer, for the
// same reason): the sender streams consecutive Blob chunks and sets Final
// on the last one; the receiver concatenates. The assembled blob's format
// is owned by internal/snapshot (versioned; see snapshot.MarshalNode).
type SnapshotData struct {
	Blob  []byte
	Final bool
}

// MsgType implements Message.
func (*SnapshotData) MsgType() MsgType { return TypeSnapshotData }

// Heartbeat is a server's periodic proof of life to the MC, piggybacking
// its load signals. The MC renews the server's lease on every beat; a
// server that misses enough beats is declared dead and its partition is
// adopted by a warm spare (see internal/coordinator). CheckpointTick counts
// the checkpoints the server has shipped so far, so operators can see how
// stale a crash restore would be.
type Heartbeat struct {
	Server         id.ServerID
	Clients        int32
	QueueLen       int32
	CheckpointTick uint64
}

// MsgType implements Message.
func (*Heartbeat) MsgType() MsgType { return TypeHeartbeat }

// DrainRequest asks the MC to migrate every region owned by Server away via
// the live handoff path. A server sends it for itself on its registered
// connection (operator-initiated drain relayed by the host); the MC also
// sends it server-bound to announce an admin-initiated drain, so the
// drained host knows whether to retire into the spare pool or exit once
// its evacuation completes.
type DrainRequest struct {
	Server id.ServerID
	Exit   bool // exit after draining instead of re-joining the spare pool
	// Corr carries the drain decision's correlation ID (see
	// SplitReply.Corr); zero when unstamped (operator-originated admin
	// frames — the coordinator stamps the copy it forwards).
	Corr uint64
}

// MsgType implements Message.
func (*DrainRequest) MsgType() MsgType { return TypeDrainRequest }

// DrainReply reports a drain decision.
type DrainReply struct {
	Granted bool
	Reason  string // populated when denied
}

// MsgType implements Message.
func (*DrainReply) MsgType() MsgType { return TypeDrainReply }

// Adopt tells a warm spare it is taking over a dead server's partition,
// carrying the victim's last checkpoint blob (chunked like SnapshotData;
// empty on the final chunk when no checkpoint was ever shipped — a cold
// adoption that serves the region with a fresh world). The activating
// RangeUpdate follows the final chunk on the same connection, so the world
// is restored before the bounds arrive.
type Adopt struct {
	Victim id.ServerID
	Bounds geom.Rect
	Blob   []byte
	Final  bool
	// Corr carries the adoption decision's correlation ID (see
	// SplitReply.Corr); zero when unstamped.
	Corr uint64
}

// MsgType implements Message.
func (*Adopt) MsgType() MsgType { return TypeAdopt }

// RegionsToWire converts overlap regions to their wire form.
func RegionsToWire(regions []overlap.Region) []TableRegion {
	out := make([]TableRegion, len(regions))
	for i, r := range regions {
		peers := make([]id.ServerID, len(r.Peers))
		copy(peers, r.Peers)
		out[i] = TableRegion{Bounds: r.Bounds, Peers: peers}
	}
	return out
}

// RegionsFromWire converts wire regions back to overlap regions.
func RegionsFromWire(regions []TableRegion) []overlap.Region {
	out := make([]overlap.Region, len(regions))
	for i, r := range regions {
		out[i] = overlap.Region{Bounds: r.Bounds, Peers: overlap.NewSet(r.Peers...)}
	}
	return out
}
