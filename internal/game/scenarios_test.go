package game

import (
	"fmt"
	"reflect"
	"testing"

	"matrix/internal/geom"
	"matrix/internal/id"
	"matrix/internal/netem"
)

// checkBalanced verifies a generated script validates and fully drains:
// per tag, leaves remove exactly what joins added.
func checkBalanced(t *testing.T, s Script) {
	t.Helper()
	if err := s.Validate(); err != nil {
		t.Fatalf("generated script invalid: %v", err)
	}
	net := map[string]int{}
	for _, e := range s {
		switch e.Kind {
		case EventJoin:
			net[e.Tag] += e.Count
		case EventLeave:
			net[e.Tag] -= e.Count
		}
	}
	for tag, n := range net {
		if n != 0 {
			t.Errorf("tag %q does not drain: net %d clients", tag, n)
		}
	}
}

func TestFlashCrowdScript(t *testing.T) {
	world := geom.R(0, 0, 1000, 1000)
	s := FlashCrowdScript(world, 5, 500, 25, 12, 42)
	checkBalanced(t, s)
	if want := 5 * 3; len(s) != want {
		t.Errorf("len = %d, want %d (join + two drains per wave)", len(s), want)
	}
	if !reflect.DeepEqual(s, FlashCrowdScript(world, 5, 500, 25, 12, 42)) {
		t.Error("same seed must generate the same script")
	}
	if reflect.DeepEqual(s, FlashCrowdScript(world, 5, 500, 25, 12, 43)) {
		t.Error("different seeds must place waves differently")
	}
	for _, e := range s {
		if e.Kind == EventJoin && !world.Contains(e.Center) {
			t.Errorf("wave center %v outside world", e.Center)
		}
	}
}

func TestMigrationScript(t *testing.T) {
	world := geom.R(0, 0, 1000, 1000)
	s := MigrationScript(world, 3, 4, 250, 30, 7)
	checkBalanced(t, s)
	if want := 3 * 4 * 2; len(s) != want {
		t.Errorf("len = %d, want %d (join+leave per hop per crowd)", len(s), want)
	}
	if !reflect.DeepEqual(s, MigrationScript(world, 3, 4, 250, 30, 7)) {
		t.Error("same seed must generate the same script")
	}
	// Hops chain: each crowd's hop h leave coincides with its hop h+1 join.
	joins := map[string]float64{}
	for _, e := range s {
		if e.Kind == EventJoin {
			joins[e.Tag] = e.At
		}
	}
	for _, e := range s {
		if e.Kind != EventLeave {
			continue
		}
		var c, h int
		if _, err := fmt.Sscanf(e.Tag, "crowd%d-hop%d", &c, &h); err != nil {
			t.Fatalf("unexpected tag %q", e.Tag)
		}
		next, ok := joins[fmt.Sprintf("crowd%d-hop%d", c, h+1)]
		if !ok {
			continue // final hop
		}
		if next != e.At {
			t.Errorf("crowd %d hop %d: leave at %v but next join at %v", c, h, e.At, next)
		}
	}
}

func TestReclaimStressScript(t *testing.T) {
	world := geom.R(0, 0, 1000, 1000)
	s := ReclaimStressScript(world, 6, 500, 12, 12)
	checkBalanced(t, s)
	if want := 6 * 2; len(s) != want {
		t.Errorf("len = %d, want %d", len(s), want)
	}
	// All surges hammer the same point — that is the point.
	center := s[0].Center
	for _, e := range s {
		if e.Kind == EventJoin && e.Center != center {
			t.Errorf("surge moved: %v vs %v", e.Center, center)
		}
	}
}

func TestScriptValidateNetemKinds(t *testing.T) {
	good := Script{
		{At: 0, Kind: EventJoin, Count: 10, Spread: 5},
		{At: 5, Kind: EventImpair, Impair: netem.LinkConfig{DelayMs: 40, JitterMs: 20}},
		{At: 10, Kind: EventPartition, Servers: []id.ServerID{2}},
		{At: 15, Kind: EventCrash, Servers: []id.ServerID{3}},
		{At: 20, Kind: EventRecover},
		{At: 25, Kind: EventHeal},
	}
	if err := good.Validate(); err != nil {
		t.Errorf("netem script: %v", err)
	}
	if !good.HasImpairment() {
		t.Error("HasImpairment = false for an impairing script")
	}
	plain := Script{{At: 0, Kind: EventJoin, Count: 10}}
	if plain.HasImpairment() {
		t.Error("HasImpairment = true for a population-only script")
	}
	bad := Script{{At: 0, Kind: EventPartition}}
	if err := bad.Validate(); err == nil {
		t.Error("partition without servers must fail")
	}
	bad = Script{{At: 0, Kind: EventCrash}}
	if err := bad.Validate(); err == nil {
		t.Error("crash without servers must fail")
	}
	bad = Script{{At: 0, Kind: EventImpair, Impair: netem.LinkConfig{Loss: 2}}}
	if err := bad.Validate(); err == nil {
		t.Error("invalid impair config must fail")
	}
}

func TestJitterStormScript(t *testing.T) {
	world := geom.R(0, 0, 1000, 1000)
	baseline := netem.LinkConfig{DelayMs: 40, JitterMs: 100}
	storm := netem.LinkConfig{DelayMs: 100, JitterMs: 300}
	s := JitterStormScript(world, 500, 40, 75, baseline, storm)
	checkBalanced(t, s)
	var impairs []netem.LinkConfig
	for _, e := range s {
		if e.Kind == EventImpair {
			impairs = append(impairs, e.Impair)
		}
	}
	if len(impairs) != 2 || impairs[0] != storm || impairs[1] != baseline {
		t.Errorf("impair sequence = %+v, want storm then baseline", impairs)
	}
}

func TestPartitionScript(t *testing.T) {
	world := geom.R(0, 0, 1000, 1000)
	s := PartitionScript(world, 600, 40, 65)
	checkBalanced(t, s)
	cutAt, healAt := -1.0, -1.0
	for _, e := range s {
		switch e.Kind {
		case EventPartition:
			cutAt = e.At
		case EventHeal:
			healAt = e.At
		}
	}
	if cutAt != 40 || healAt != 65 {
		t.Errorf("cut/heal at %v/%v, want 40/65", cutAt, healAt)
	}
}

func TestCrashStormScript(t *testing.T) {
	world := geom.R(0, 0, 1000, 1000)
	victims := []id.ServerID{2, 3, 2}
	s := CrashStormScript(world, 450, 45, 18, 12, victims)
	checkBalanced(t, s)
	var crashes, recovers int
	for i, e := range s {
		switch e.Kind {
		case EventCrash:
			crashes++
		case EventRecover:
			recovers++
		}
		if i > 0 && e.At < s[i-1].At {
			t.Fatal("crash storm script out of order")
		}
	}
	if crashes != len(victims) || recovers != len(victims) {
		t.Errorf("crashes=%d recovers=%d, want %d each", crashes, recovers, len(victims))
	}
}
