package game

import (
	"fmt"
	"reflect"
	"testing"

	"matrix/internal/geom"
)

// checkBalanced verifies a generated script validates and fully drains:
// per tag, leaves remove exactly what joins added.
func checkBalanced(t *testing.T, s Script) {
	t.Helper()
	if err := s.Validate(); err != nil {
		t.Fatalf("generated script invalid: %v", err)
	}
	net := map[string]int{}
	for _, e := range s {
		switch e.Kind {
		case EventJoin:
			net[e.Tag] += e.Count
		case EventLeave:
			net[e.Tag] -= e.Count
		}
	}
	for tag, n := range net {
		if n != 0 {
			t.Errorf("tag %q does not drain: net %d clients", tag, n)
		}
	}
}

func TestFlashCrowdScript(t *testing.T) {
	world := geom.R(0, 0, 1000, 1000)
	s := FlashCrowdScript(world, 5, 500, 25, 12, 42)
	checkBalanced(t, s)
	if want := 5 * 3; len(s) != want {
		t.Errorf("len = %d, want %d (join + two drains per wave)", len(s), want)
	}
	if !reflect.DeepEqual(s, FlashCrowdScript(world, 5, 500, 25, 12, 42)) {
		t.Error("same seed must generate the same script")
	}
	if reflect.DeepEqual(s, FlashCrowdScript(world, 5, 500, 25, 12, 43)) {
		t.Error("different seeds must place waves differently")
	}
	for _, e := range s {
		if e.Kind == EventJoin && !world.Contains(e.Center) {
			t.Errorf("wave center %v outside world", e.Center)
		}
	}
}

func TestMigrationScript(t *testing.T) {
	world := geom.R(0, 0, 1000, 1000)
	s := MigrationScript(world, 3, 4, 250, 30, 7)
	checkBalanced(t, s)
	if want := 3 * 4 * 2; len(s) != want {
		t.Errorf("len = %d, want %d (join+leave per hop per crowd)", len(s), want)
	}
	if !reflect.DeepEqual(s, MigrationScript(world, 3, 4, 250, 30, 7)) {
		t.Error("same seed must generate the same script")
	}
	// Hops chain: each crowd's hop h leave coincides with its hop h+1 join.
	joins := map[string]float64{}
	for _, e := range s {
		if e.Kind == EventJoin {
			joins[e.Tag] = e.At
		}
	}
	for _, e := range s {
		if e.Kind != EventLeave {
			continue
		}
		var c, h int
		if _, err := fmt.Sscanf(e.Tag, "crowd%d-hop%d", &c, &h); err != nil {
			t.Fatalf("unexpected tag %q", e.Tag)
		}
		next, ok := joins[fmt.Sprintf("crowd%d-hop%d", c, h+1)]
		if !ok {
			continue // final hop
		}
		if next != e.At {
			t.Errorf("crowd %d hop %d: leave at %v but next join at %v", c, h, e.At, next)
		}
	}
}

func TestReclaimStressScript(t *testing.T) {
	world := geom.R(0, 0, 1000, 1000)
	s := ReclaimStressScript(world, 6, 500, 12, 12)
	checkBalanced(t, s)
	if want := 6 * 2; len(s) != want {
		t.Errorf("len = %d, want %d", len(s), want)
	}
	// All surges hammer the same point — that is the point.
	center := s[0].Center
	for _, e := range s {
		if e.Kind == EventJoin && e.Center != center {
			t.Errorf("surge moved: %v vs %v", e.Center, center)
		}
	}
}
