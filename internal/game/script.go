package game

import (
	"errors"
	"fmt"
	"sort"

	"matrix/internal/geom"
	"matrix/internal/id"
	"matrix/internal/netem"
)

// EventKind classifies a workload script event.
type EventKind uint8

// Event kinds.
const (
	// EventJoin adds clients near a point.
	EventJoin EventKind = iota + 1
	// EventLeave removes clients previously added under the same tag.
	EventLeave
	// EventImpair replaces the network-emulation link impairment applied
	// to every link from this time on (see Event.Impair).
	EventImpair
	// EventPartition cuts the listed servers off the server backbone:
	// peer links to the rest of the fleet blackhole until an EventHeal.
	EventPartition
	// EventHeal reconnects the listed servers (empty Servers heals every
	// partition).
	EventHeal
	// EventCrash fail-stops the listed servers: they stop processing and
	// every link touching them blackholes until an EventRecover.
	EventCrash
	// EventRecover resumes the listed crashed servers (empty Servers
	// recovers all).
	EventRecover
	// EventCrashLose fail-stops the listed servers like EventCrash, but the
	// crash also loses their in-memory state: on the matching EventRecover
	// each one restarts from its last periodic checkpoint (or cold, when
	// checkpointing is off), resyncs its topology from the coordinator, and
	// every client it served must reconnect.
	EventCrashLose
)

// Event is one scripted population or network-condition change.
type Event struct {
	// At is the virtual time in seconds.
	At float64
	// Kind says what happens.
	Kind EventKind
	// Count is how many clients (join/leave events).
	Count int
	// Center and Spread place joining clients (joiners scatter uniformly
	// within Spread of Center and stay attracted to it).
	Center geom.Point
	Spread float64
	// Tag groups joiners so a later leave event removes the same crowd.
	Tag string
	// Servers lists the targets of partition/heal/crash/recover events,
	// in coordinator registration order (server-1 is the adaptive root;
	// spares become active in split order for a fixed seed).
	Servers []id.ServerID
	// Impair is the new fleet-wide link impairment for EventImpair.
	Impair netem.LinkConfig
}

// impairment reports whether the event changes network conditions rather
// than population.
func (e Event) impairment() bool { return e.Kind >= EventImpair }

// Script is a time-ordered population schedule.
type Script []Event

// Validate checks ordering and field sanity.
func (s Script) Validate() error {
	for i, e := range s {
		switch e.Kind {
		case EventJoin, EventLeave:
			if e.Count <= 0 {
				return fmt.Errorf("game: event %d has count %d", i, e.Count)
			}
			if e.Kind == EventJoin && e.Spread < 0 {
				return fmt.Errorf("game: event %d has negative spread", i)
			}
		case EventImpair:
			if err := e.Impair.Validate(); err != nil {
				return fmt.Errorf("game: event %d: %w", i, err)
			}
		case EventPartition, EventCrash, EventCrashLose:
			if len(e.Servers) == 0 {
				return fmt.Errorf("game: event %d names no servers", i)
			}
		case EventHeal, EventRecover:
			// An empty server list legitimately means "all".
		default:
			return fmt.Errorf("game: event %d has invalid kind", i)
		}
		if i > 0 && e.At < s[i-1].At {
			return errors.New("game: script events must be time-ordered")
		}
	}
	return nil
}

// HasImpairment reports whether any event changes network conditions —
// the simulator activates its netem model when so.
func (s Script) HasImpairment() bool {
	for _, e := range s {
		if e.impairment() {
			return true
		}
	}
	return false
}

// Sorted returns a copy of the script ordered by time (stable).
func (s Script) Sorted() Script {
	out := make(Script, len(s))
	copy(out, s)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// PrefixBefore returns the time-sorted events strictly before cutoff —
// the executed prefix of a run snapshotted at cutoff. Both sides of the
// branching contract use it: warmup runs truncate their script with it,
// and restore-time validation compares prefixes through it, so the
// "strictly before" boundary can never drift between the two.
func (s Script) PrefixBefore(cutoff float64) Script {
	var out Script
	for _, e := range s.Sorted() {
		if e.At >= cutoff {
			break
		}
		out = append(out, e)
	}
	return out
}

// Due returns the events with from <= At < to, assuming s is sorted.
func (s Script) Due(from, to float64) []Event {
	var out []Event
	for _, e := range s {
		if e.At >= to {
			break
		}
		if e.At >= from {
			out = append(out, e)
		}
	}
	return out
}

// Figure2Script reproduces the paper's Figure 2 experiment on the given
// world: "a hotspot of 600 clients ... was introduced at around the 10
// second mark for about 75 seconds, after which the entire hotspot
// gradually disappeared (indicated by 200 clients disappearing at fixed
// intervals). The hotspot was reintroduced at a different position in the
// world at 170 seconds, for about 50 seconds, and then gradually removed."
//
// The first hotspot is placed in the right half of the world so that after
// the first split-to-left (which hands the left half away) the load stays
// with server 1, forcing the recursive second split the paper describes.
func Figure2Script(world geom.Rect) Script {
	// The hotspot centers sit on dyadic cut lines (3/4, 1/4) so the
	// recursive split-to-left halvings bisect the crowds the way the
	// paper's run did, instead of shaving slivers off their edges.
	h1 := geom.Pt(
		world.MinX+0.75*world.Width(),
		world.MinY+0.25*world.Height(),
	)
	h2 := geom.Pt(
		world.MinX+0.25*world.Width(),
		world.MinY+0.75*world.Height(),
	)
	spread := 0.06 * world.Width()
	return Script{
		// Hotspot 1: 600 clients at t=10, drained 200 at a time from t=85.
		{At: 10, Kind: EventJoin, Count: 600, Center: h1, Spread: spread, Tag: "hotspot1"},
		{At: 85, Kind: EventLeave, Count: 200, Tag: "hotspot1"},
		{At: 110, Kind: EventLeave, Count: 200, Tag: "hotspot1"},
		{At: 135, Kind: EventLeave, Count: 200, Tag: "hotspot1"},
		// Hotspot 2 at a different position: t=170 for ~50s, then removed.
		{At: 170, Kind: EventJoin, Count: 600, Center: h2, Spread: spread, Tag: "hotspot2"},
		{At: 220, Kind: EventLeave, Count: 200, Tag: "hotspot2"},
		{At: 240, Kind: EventLeave, Count: 200, Tag: "hotspot2"},
		{At: 260, Kind: EventLeave, Count: 200, Tag: "hotspot2"},
	}
}
