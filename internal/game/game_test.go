package game

import (
	"math"
	"testing"

	"matrix/internal/geom"
	"matrix/internal/protocol"
)

func TestBundledProfilesValid(t *testing.T) {
	for name, p := range Profiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if p.Name != name {
			t.Errorf("profile keyed %q has name %q", name, p.Name)
		}
	}
	if len(Profiles()) != 3 {
		t.Errorf("bundled profiles = %d, want 3 (the paper's games)", len(Profiles()))
	}
}

func TestProfileShapesDiffer(t *testing.T) {
	bz, dm, q2 := Bzflag(), Daimonin(), Quake2()
	// The traffic shapes that matter to Matrix must be distinct: Quake is
	// fastest, Daimonin slowest and chattiest.
	if !(q2.UpdatesPerSec > bz.UpdatesPerSec && bz.UpdatesPerSec > dm.UpdatesPerSec) {
		t.Error("update rates must order quake2 > bzflag > daimonin")
	}
	if !(dm.ChatFraction > bz.ChatFraction && dm.ChatFraction > q2.ChatFraction) {
		t.Error("daimonin must be the chattiest")
	}
	if !(q2.MoveSpeed > bz.MoveSpeed && bz.MoveSpeed > dm.MoveSpeed) {
		t.Error("move speeds must order quake2 > bzflag > daimonin")
	}
}

func TestProfileValidate(t *testing.T) {
	bad := Bzflag()
	bad.Name = ""
	if err := bad.Validate(); err == nil {
		t.Error("empty name must fail")
	}
	bad = Bzflag()
	bad.MoveFraction = 0.9 // breaks the mix sum
	if err := bad.Validate(); err == nil {
		t.Error("bad mix must fail")
	}
	bad = Bzflag()
	bad.Radius = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero radius must fail")
	}
}

func TestMoverStaysInWorld(t *testing.T) {
	world := geom.R(0, 0, 100, 100)
	for _, p := range Profiles() {
		m := NewMover(p, world, 7)
		pos := geom.Pt(50, 50)
		for i := 0; i < 2000; i++ {
			pos = m.Step(pos, 0.1)
			if !world.Contains(pos) {
				t.Fatalf("%s: escaped world at %v after step %d", p.Name, pos, i)
			}
		}
	}
}

func TestMoverSpeedBound(t *testing.T) {
	p := Bzflag()
	world := geom.R(0, 0, 1000, 1000)
	m := NewMover(p, world, 3)
	pos := geom.Pt(500, 500)
	const dt = 0.1
	for i := 0; i < 500; i++ {
		next := m.Step(pos, dt)
		moved := next.Sub(pos).Norm()
		// A step may be shorter (waypoint arrival) but never much longer
		// than speed*dt, except for the waypoint-arrival teleport to the
		// target itself, which is also bounded by speed*dt by definition
		// of arrival... allow tiny epsilon.
		if moved > p.MoveSpeed*dt+1e-9 {
			// Arrival at waypoint jumps to the target; that jump is <=
			// speed*dt only when dist <= maxDist, which Step guarantees.
			t.Fatalf("step %d moved %v > speed*dt %v", i, moved, p.MoveSpeed*dt)
		}
		pos = next
	}
}

func TestMoverZeroDt(t *testing.T) {
	m := NewMover(Bzflag(), geom.R(0, 0, 10, 10), 1)
	p := geom.Pt(5, 5)
	if got := m.Step(p, 0); got != p {
		t.Errorf("zero dt moved: %v", got)
	}
}

func TestMoverAttraction(t *testing.T) {
	world := geom.R(0, 0, 1000, 1000)
	m := NewMover(Bzflag(), world, 11)
	center := geom.Pt(800, 300)
	const spread = 50.0
	m.Attract(center, spread)
	pos := center
	// After settling, positions stay within spread (+ one step slack).
	slack := Bzflag().MoveSpeed * 0.1
	for i := 0; i < 3000; i++ {
		pos = m.Step(pos, 0.1)
		if d := pos.Sub(center).Norm(); d > spread+slack+1e-9 {
			t.Fatalf("attracted mover strayed %v from center at step %d", d, i)
		}
	}
	// Release: eventually leaves the hotspot.
	m.Attract(center, 0)
	escaped := false
	for i := 0; i < 5000; i++ {
		pos = m.Step(pos, 0.1)
		if pos.Sub(center).Norm() > spread*3 {
			escaped = true
			break
		}
	}
	if !escaped {
		t.Error("released mover never left the hotspot")
	}
}

func TestPickKindDistribution(t *testing.T) {
	p := Bzflag()
	m := NewMover(p, geom.R(0, 0, 10, 10), 5)
	counts := map[protocol.UpdateKind]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[m.PickKind()]++
	}
	got := float64(counts[protocol.KindMove]) / n
	if math.Abs(got-p.MoveFraction) > 0.02 {
		t.Errorf("move fraction = %v, want ~%v", got, p.MoveFraction)
	}
	got = float64(counts[protocol.KindChat]) / n
	if math.Abs(got-p.ChatFraction) > 0.02 {
		t.Errorf("chat fraction = %v, want ~%v", got, p.ChatFraction)
	}
}

func TestActionTargetWithinRange(t *testing.T) {
	p := Bzflag()
	world := geom.R(0, 0, 1000, 1000)
	m := NewMover(p, world, 2)
	pos := geom.Pt(500, 500)
	for i := 0; i < 1000; i++ {
		tgt := m.ActionTarget(pos)
		if d := tgt.Sub(pos).Norm(); d > p.ActionRange+1e-9 {
			t.Fatalf("action landed %v away, range %v", d, p.ActionRange)
		}
		if !world.Contains(tgt) {
			t.Fatalf("action target outside world: %v", tgt)
		}
	}
}

func TestScriptValidate(t *testing.T) {
	good := Script{
		{At: 0, Kind: EventJoin, Count: 10, Spread: 5},
		{At: 5, Kind: EventLeave, Count: 10},
	}
	if err := good.Validate(); err != nil {
		t.Errorf("good script: %v", err)
	}
	bad := Script{{At: 5, Kind: EventJoin, Count: 10}, {At: 1, Kind: EventLeave, Count: 1}}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-order script must fail")
	}
	bad = Script{{At: 0, Kind: EventJoin, Count: 0}}
	if err := bad.Validate(); err == nil {
		t.Error("zero count must fail")
	}
	bad = Script{{At: 0, Kind: EventKind(9), Count: 1}}
	if err := bad.Validate(); err == nil {
		t.Error("bad kind must fail")
	}
}

func TestScriptDue(t *testing.T) {
	s := Script{
		{At: 1, Kind: EventJoin, Count: 1},
		{At: 5, Kind: EventJoin, Count: 2},
		{At: 9, Kind: EventLeave, Count: 1},
	}
	due := s.Due(1, 5)
	if len(due) != 1 || due[0].Count != 1 {
		t.Errorf("Due(1,5) = %+v", due)
	}
	due = s.Due(5, 100)
	if len(due) != 2 {
		t.Errorf("Due(5,100) = %+v", due)
	}
	if got := s.Due(2, 3); len(got) != 0 {
		t.Errorf("Due(2,3) = %+v", got)
	}
}

func TestScriptSorted(t *testing.T) {
	s := Script{
		{At: 5, Kind: EventJoin, Count: 1},
		{At: 1, Kind: EventJoin, Count: 2},
	}
	sorted := s.Sorted()
	if sorted[0].At != 1 || sorted[1].At != 5 {
		t.Errorf("Sorted = %+v", sorted)
	}
	// Original untouched.
	if s[0].At != 5 {
		t.Error("Sorted mutated the receiver")
	}
}

func TestFigure2ScriptShape(t *testing.T) {
	world := geom.R(0, 0, 1000, 1000)
	s := Figure2Script(world)
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// 600 join at t=10, 600 leave in 200-chunks, then again elsewhere.
	if s[0].At != 10 || s[0].Count != 600 || s[0].Kind != EventJoin {
		t.Errorf("first event = %+v", s[0])
	}
	joins, leaves := 0, 0
	for _, e := range s {
		switch e.Kind {
		case EventJoin:
			joins += e.Count
		case EventLeave:
			leaves += e.Count
		}
	}
	if joins != 1200 || leaves != 1200 {
		t.Errorf("joins=%d leaves=%d, want 1200 each", joins, leaves)
	}
	// Hotspots at different positions; both inside the world.
	if s[0].Center == s[4].Center {
		t.Error("second hotspot must be at a different position")
	}
	if !world.Contains(s[0].Center) || !world.Contains(s[4].Center) {
		t.Error("hotspot centers must be inside the world")
	}
	// First hotspot must be in the right half so the first split-to-left
	// (handing the LEFT half away) leaves the load on server 1.
	if s[0].Center.X <= world.Center().X {
		t.Error("first hotspot must be in the right half of the world")
	}
}

// TestMoverReplayContinuesIdentically pins the snapshot replay trick:
// NewMoverFromState reseeds and fast-forwards the PRNG by the recorded
// draw count, so the continued walk is byte-identical to an uninterrupted
// one — including attraction changes and every update-kind draw.
func TestMoverReplayContinuesIdentically(t *testing.T) {
	world := geom.R(0, 0, 500, 500)
	m := NewMover(Bzflag(), world, 1234)
	pos := geom.Pt(250, 250)
	for i := 0; i < 57; i++ {
		if i == 20 {
			m.Attract(geom.Pt(100, 100), 40)
		}
		pos = m.Step(pos, 0.2)
		m.PickKind()
		if i%7 == 0 {
			m.ActionTarget(pos)
		}
	}
	st := m.State()
	replayed := NewMoverFromState(Bzflag(), world, st)

	p1, p2 := pos, pos
	for i := 0; i < 200; i++ {
		p1 = m.Step(p1, 0.2)
		p2 = replayed.Step(p2, 0.2)
		if p1 != p2 {
			t.Fatalf("step %d: original %v, replayed %v", i, p1, p2)
		}
		if k1, k2 := m.PickKind(), replayed.PickKind(); k1 != k2 {
			t.Fatalf("step %d: kind %v vs %v", i, k1, k2)
		}
		if a1, a2 := m.ActionTarget(p1), replayed.ActionTarget(p2); a1 != a2 {
			t.Fatalf("step %d: action target %v vs %v", i, a1, a2)
		}
	}
}
