package game

import (
	"fmt"
	"math/rand"

	"matrix/internal/geom"
	"matrix/internal/id"
	"matrix/internal/netem"
)

// This file holds the script generators behind the named workload
// scenarios (internal/experiments' scenario table): stress shapes beyond
// the paper's single Figure 2 schedule, all deterministic in their seed.

// FlashCrowdScript models flash-crowd churn: `waves` sudden crowds of
// `count` clients each materialize at random points, linger only `dwell`
// seconds, and vanish again, with `period` seconds between wave starts.
// Waves overlap whenever dwell+drain exceeds period, so the cluster is
// forced to split for crowds that are already dissolving — the
// pathological case for any slow-reacting partitioner.
func FlashCrowdScript(world geom.Rect, waves, count int, period, dwell float64, seed int64) Script {
	rnd := rand.New(rand.NewSource(seed))
	spread := 0.06 * world.Width()
	var s Script
	t := 5.0
	for w := 0; w < waves; w++ {
		center := randPoint(rnd, world, spread)
		tag := fmt.Sprintf("flash%d", w)
		s = append(s, Event{At: t, Kind: EventJoin, Count: count, Center: center, Spread: spread, Tag: tag})
		// Drain in two gulps: half at dwell, the rest shortly after, so the
		// leave edge is steep but not a single-tick cliff.
		s = append(s, Event{At: t + dwell, Kind: EventLeave, Count: count / 2, Tag: tag})
		s = append(s, Event{At: t + dwell + 3, Kind: EventLeave, Count: count - count/2, Tag: tag})
		t += period
	}
	return s.Sorted()
}

// MigrationScript models a multi-hotspot migration storm: `crowds`
// simultaneous hotspots of `count` clients each hop to a fresh random
// location every `dwellPerHop` seconds, `hops` times. Each hop is a full
// leave+rejoin at the new point, so ownership of every crowd keeps
// crossing partition boundaries while other crowds hold their load — the
// worst case for split placement and reclaim hysteresis at once.
func MigrationScript(world geom.Rect, crowds, hops, count int, dwellPerHop float64, seed int64) Script {
	rnd := rand.New(rand.NewSource(seed))
	spread := 0.05 * world.Width()
	var s Script
	for c := 0; c < crowds; c++ {
		// Stagger crowd starts so hops interleave instead of synchronizing.
		t := 5.0 + float64(c)*dwellPerHop/float64(crowds)
		for h := 0; h < hops; h++ {
			center := randPoint(rnd, world, spread)
			tag := fmt.Sprintf("crowd%d-hop%d", c, h)
			s = append(s, Event{At: t, Kind: EventJoin, Count: count, Center: center, Spread: spread, Tag: tag})
			s = append(s, Event{At: t + dwellPerHop, Kind: EventLeave, Count: count, Tag: tag})
			t += dwellPerHop
		}
	}
	return s.Sorted()
}

// ReclaimStressScript models split/reclaim thrash: one fixed point is
// hammered with `cycles` rounds of `count` clients joining and then fully
// leaving `dwell` seconds later, with only `gap` quiet seconds between
// rounds. Every round pushes the owner over the overload threshold and
// then drops it under the reclaim threshold, so the topology wants to
// oscillate; the dwell/cooldown hysteresis is what keeps the event count
// bounded.
func ReclaimStressScript(world geom.Rect, cycles, count int, dwell, gap float64) Script {
	center := geom.Pt(
		world.MinX+0.75*world.Width(),
		world.MinY+0.25*world.Height(),
	)
	spread := 0.06 * world.Width()
	var s Script
	t := 5.0
	for c := 0; c < cycles; c++ {
		tag := fmt.Sprintf("surge%d", c)
		s = append(s, Event{At: t, Kind: EventJoin, Count: count, Center: center, Spread: spread, Tag: tag})
		s = append(s, Event{At: t + dwell, Kind: EventLeave, Count: count, Tag: tag})
		t += dwell + gap
	}
	return s
}

// JitterStormScript models a hotspot played over a WAN that degrades
// mid-match: `count` clients pile onto the dyadic hotspot point at t=5,
// and at `worsenAt` an impair event swaps the baseline link for `storm`
// (typically much heavier jitter, forcing reordering) until `calmAt`
// restores `baseline`. The crowd drains near the end so reclaim runs under
// the restored network.
func JitterStormScript(world geom.Rect, count int, worsenAt, calmAt float64, baseline, storm netem.LinkConfig) Script {
	center := geom.Pt(
		world.MinX+0.75*world.Width(),
		world.MinY+0.25*world.Height(),
	)
	spread := 0.06 * world.Width()
	return Script{
		{At: 5, Kind: EventJoin, Count: count, Center: center, Spread: spread, Tag: "storm"},
		{At: worsenAt, Kind: EventImpair, Impair: storm},
		{At: calmAt, Kind: EventImpair, Impair: baseline},
		{At: calmAt + 15, Kind: EventLeave, Count: count, Tag: "storm"},
	}
}

// PartitionScript models a backbone partition: a hotspot big enough to
// force a split joins at t=5, and once the child server (server-2, the
// first spare a deterministic run activates) is carrying the load, it is
// cut off the inter-server network from `cutAt` to `healAt`. Peer
// forwarding across the partition blackholes while clients keep talking to
// their own servers — the consistency-set half of the protocol runs
// degraded, the session half doesn't.
func PartitionScript(world geom.Rect, count int, cutAt, healAt float64) Script {
	center := geom.Pt(
		world.MinX+0.75*world.Width(),
		world.MinY+0.25*world.Height(),
	)
	spread := 0.10 * world.Width()
	return Script{
		{At: 5, Kind: EventJoin, Count: count, Center: center, Spread: spread, Tag: "hot"},
		{At: cutAt, Kind: EventPartition, Servers: []id.ServerID{2}},
		{At: healAt, Kind: EventHeal, Servers: []id.ServerID{2}},
		{At: healAt + 15, Kind: EventLeave, Count: count, Tag: "hot"},
	}
}

// CrashStormScript models rolling server failures under sustained load:
// two hotspots of `count` clients each force the fleet to split out
// several children, then the listed victims crash for `downtime` seconds
// one after another, `interval` seconds apart, starting at `firstCrash`.
// Crashed servers freeze (state retained) and all their links blackhole;
// their clients' traffic drops until recovery.
func CrashStormScript(world geom.Rect, count int, firstCrash, interval, downtime float64, victims []id.ServerID) Script {
	spread := 0.08 * world.Width()
	s := Script{
		{At: 5, Kind: EventJoin, Count: count, Center: geom.Pt(
			world.MinX+0.75*world.Width(), world.MinY+0.25*world.Height(),
		), Spread: spread, Tag: "east"},
		{At: 8, Kind: EventJoin, Count: count, Center: geom.Pt(
			world.MinX+0.25*world.Width(), world.MinY+0.75*world.Height(),
		), Spread: spread, Tag: "west"},
	}
	lastRecover := firstCrash + downtime
	for i, v := range victims {
		at := firstCrash + float64(i)*interval
		s = append(s, Event{At: at, Kind: EventCrash, Servers: []id.ServerID{v}})
		s = append(s, Event{At: at + downtime, Kind: EventRecover, Servers: []id.ServerID{v}})
		if at+downtime > lastRecover {
			lastRecover = at + downtime
		}
	}
	// Drain once the storm has passed, so reclaim runs over the healed
	// fleet.
	s = append(s, Event{At: lastRecover + 5, Kind: EventLeave, Count: count, Tag: "east"})
	s = append(s, Event{At: lastRecover + 5, Kind: EventLeave, Count: count, Tag: "west"})
	return s.Sorted()
}

// RecoveryScript models a real, state-losing crash of a *loaded* server.
// The crowd joins in the left half of the world at x=0.375·W — the piece
// the first split hands to server-2 (split-to-left) and the second split
// leaves with it — so the first spare ends up carrying the hotspot. A
// transient wave then joins and fully departs before `crashAt`: servers
// that checkpoint rarely roll back past the departure and resurrect the
// wave as ghosts, so checkpoint staleness becomes measurable. At `crashAt`
// the victims crash losing their in-memory state; at `recoverAt` they
// restart from their last checkpoint (cold when checkpointing is off),
// resync topology from the coordinator, and every client they served
// reconnects — the recovery gap and rejoin storm E7 measures. The crowd
// half-drains afterwards so reclaim runs over the recovered fleet.
func RecoveryScript(world geom.Rect, count int, crashAt, recoverAt float64, victims []id.ServerID) Script {
	center := geom.Pt(
		world.MinX+0.375*world.Width(),
		world.MinY+0.25*world.Height(),
	)
	spread := 0.08 * world.Width()
	waveStart := crashAt * 0.5
	waveEnd := crashAt - 8
	return Script{
		{At: 5, Kind: EventJoin, Count: count, Center: center, Spread: spread, Tag: "town"},
		{At: waveStart, Kind: EventJoin, Count: count / 4, Center: center, Spread: spread, Tag: "wave"},
		{At: waveEnd, Kind: EventLeave, Count: count / 4, Tag: "wave"},
		{At: crashAt, Kind: EventCrashLose, Servers: victims},
		{At: recoverAt, Kind: EventRecover, Servers: victims},
		{At: recoverAt + 25, Kind: EventLeave, Count: count / 2, Tag: "town"},
	}
}

// randPoint picks a point uniformly inside world, inset by margin so a
// crowd scattered around it stays mostly on the map.
func randPoint(rnd *rand.Rand, world geom.Rect, margin float64) geom.Point {
	w := world.Width() - 2*margin
	h := world.Height() - 2*margin
	return geom.Pt(
		world.MinX+margin+rnd.Float64()*w,
		world.MinY+margin+rnd.Float64()*h,
	)
}
