// Package game models the three games the paper evaluated Matrix with —
// BzFlag (tank shooter), Daimonin (role-playing game) and Quake 2 (fast
// shooter) — as synthetic workload profiles.
//
// Matrix never interprets game logic: it sees only spatially tagged packets.
// What distinguishes games from the middleware's point of view is their
// traffic shape: update rate, movement speed, visibility radius, payload
// size and the mix of update kinds. Reproducing those shapes exercises the
// same middleware code paths as running the real games.
package game

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"matrix/internal/geom"
	"matrix/internal/protocol"
)

// Profile is one game's traffic shape.
type Profile struct {
	// Name identifies the game in experiment output.
	Name string
	// Radius is the zone of visibility in world units.
	Radius float64
	// MoveSpeed is avatar speed in world units per second.
	MoveSpeed float64
	// UpdatesPerSec is the per-client update rate.
	UpdatesPerSec float64
	// PayloadBytes is the typical opaque payload size per update.
	PayloadBytes int
	// MoveFraction, ActionFraction and ChatFraction give the traffic mix
	// (they should sum to 1; Validate checks).
	MoveFraction, ActionFraction, ChatFraction float64
	// ActionRange is how far actions (shots, spells) land from the actor.
	ActionRange float64
}

// Validate checks internal consistency.
func (p Profile) Validate() error {
	if p.Name == "" {
		return errors.New("game: profile needs a name")
	}
	if p.Radius <= 0 || p.MoveSpeed < 0 || p.UpdatesPerSec <= 0 {
		return fmt.Errorf("game: profile %q has non-positive rates", p.Name)
	}
	sum := p.MoveFraction + p.ActionFraction + p.ChatFraction
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("game: profile %q mix sums to %v, want 1", p.Name, sum)
	}
	return nil
}

// Bzflag returns the BzFlag-like profile: a tank battle with moderate
// movement, frequent shots, and a generous visibility radius (tanks see far
// across open battlefields).
func Bzflag() Profile {
	return Profile{
		Name:           "bzflag",
		Radius:         40,
		MoveSpeed:      25,
		UpdatesPerSec:  5,
		PayloadBytes:   48,
		MoveFraction:   0.70,
		ActionFraction: 0.28,
		ChatFraction:   0.02,
		ActionRange:    40,
	}
}

// Daimonin returns the Daimonin-like profile: a role-playing game with slow
// tile-based movement, short sight range, and plenty of chat.
func Daimonin() Profile {
	return Profile{
		Name:           "daimonin",
		Radius:         25,
		MoveSpeed:      8,
		UpdatesPerSec:  2,
		PayloadBytes:   96,
		MoveFraction:   0.55,
		ActionFraction: 0.20,
		ChatFraction:   0.25,
		ActionRange:    10,
	}
}

// Quake2 returns the Quake 2-like profile: a twitch shooter with fast
// movement and a very high update rate over a modest visibility radius.
func Quake2() Profile {
	return Profile{
		Name:           "quake2",
		Radius:         35,
		MoveSpeed:      40,
		UpdatesPerSec:  10,
		PayloadBytes:   32,
		MoveFraction:   0.60,
		ActionFraction: 0.39,
		ChatFraction:   0.01,
		ActionRange:    80,
	}
}

// Profiles returns all bundled profiles keyed by name.
func Profiles() map[string]Profile {
	out := map[string]Profile{}
	for _, p := range []Profile{Bzflag(), Daimonin(), Quake2()} {
		out[p.Name] = p
	}
	return out
}

// Mover drives one avatar's movement: a random waypoint walk, optionally
// pinned near an attraction point (the hotspot). Not safe for concurrent
// use; each simulated client owns one.
type Mover struct {
	rng     *rand.Rand
	profile Profile
	world   geom.Rect
	target  geom.Point
	attract *geom.Point // non-nil pins the walk near this point
	spread  float64

	seed  int64  // construction seed, for snapshot/replay
	draws uint64 // Float64 draws consumed so far, for snapshot/replay
}

// NewMover creates a mover starting toward a random waypoint.
func NewMover(profile Profile, world geom.Rect, seed int64) *Mover {
	m := &Mover{
		rng:     rand.New(rand.NewSource(seed)),
		profile: profile,
		world:   world,
		seed:    seed,
	}
	m.target = m.randomPoint()
	return m
}

// MoverState is a Mover's serializable snapshot. math/rand sources are not
// directly serializable, so the state records the construction seed and the
// number of uniform draws consumed; NewMoverFromState replays that many
// draws to land the stream on the identical position.
type MoverState struct {
	Seed    int64
	Draws   uint64
	Target  geom.Point
	Attract *geom.Point
	Spread  float64
}

// State snapshots the mover.
func (m *Mover) State() MoverState {
	st := MoverState{Seed: m.seed, Draws: m.draws, Target: m.target, Spread: m.spread}
	if m.attract != nil {
		c := *m.attract
		st.Attract = &c
	}
	return st
}

// NewMoverFromState rebuilds a mover mid-walk: the PRNG is reseeded and
// fast-forwarded by the recorded draw count, so the continued trajectory is
// byte-identical to an uninterrupted walk.
func NewMoverFromState(profile Profile, world geom.Rect, st MoverState) *Mover {
	m := &Mover{
		rng:     rand.New(rand.NewSource(st.Seed)),
		profile: profile,
		world:   world,
		seed:    st.Seed,
		draws:   st.Draws,
		target:  st.Target,
		spread:  st.Spread,
	}
	for i := uint64(0); i < st.Draws; i++ {
		m.rng.Float64()
	}
	if st.Attract != nil {
		c := *st.Attract
		m.attract = &c
	}
	return m
}

// f64 draws one uniform float, counting it for snapshot replay.
func (m *Mover) f64() float64 {
	m.draws++
	return m.rng.Float64()
}

// Attract pins the walk to waypoints within spread of center (how hotspot
// crowds mill about the town hall). Passing spread <= 0 releases the pin.
func (m *Mover) Attract(center geom.Point, spread float64) {
	if spread <= 0 {
		m.attract = nil
		return
	}
	c := center
	m.attract = &c
	m.spread = spread
	m.target = m.randomPoint()
}

// randomPoint picks the next waypoint.
func (m *Mover) randomPoint() geom.Point {
	if m.attract != nil {
		ang := m.f64() * 2 * math.Pi
		// sqrt makes the waypoints area-uniform over the disc (a plain
		// uniform radius would pile density up at the center).
		r := math.Sqrt(m.f64()) * m.spread
		p := geom.Pt(m.attract.X+r*math.Cos(ang), m.attract.Y+r*math.Sin(ang))
		return clampInterior(m.world, p)
	}
	return geom.Pt(
		m.world.MinX+m.f64()*m.world.Width(),
		m.world.MinY+m.f64()*m.world.Height(),
	)
}

// clampInterior clamps p into the half-open world.
func clampInterior(w geom.Rect, p geom.Point) geom.Point {
	q := w.Clamp(p)
	if q.X >= w.MaxX {
		q.X = math.Nextafter(w.MaxX, w.MinX)
	}
	if q.Y >= w.MaxY {
		q.Y = math.Nextafter(w.MaxY, w.MinY)
	}
	return q
}

// Step advances the avatar from pos by dt seconds toward the current
// waypoint, picking a fresh waypoint on arrival.
func (m *Mover) Step(pos geom.Point, dt float64) geom.Point {
	if dt <= 0 {
		return pos
	}
	maxDist := m.profile.MoveSpeed * dt
	delta := m.target.Sub(pos)
	dist := delta.Norm()
	if dist <= maxDist || dist == 0 {
		arrived := m.target
		m.target = m.randomPoint()
		return clampInterior(m.world, arrived)
	}
	step := delta.Scale(maxDist / dist)
	return clampInterior(m.world, pos.Add(step))
}

// PickKind draws an update kind from the profile's traffic mix.
func (m *Mover) PickKind() protocol.UpdateKind {
	v := m.f64()
	switch {
	case v < m.profile.MoveFraction:
		return protocol.KindMove
	case v < m.profile.MoveFraction+m.profile.ActionFraction:
		return protocol.KindAction
	default:
		return protocol.KindChat
	}
}

// ActionTarget picks where an action lands relative to pos.
func (m *Mover) ActionTarget(pos geom.Point) geom.Point {
	ang := m.f64() * 2 * math.Pi
	r := m.f64() * m.profile.ActionRange
	return clampInterior(m.world, geom.Pt(pos.X+r*math.Cos(ang), pos.Y+r*math.Sin(ang)))
}
