package spatial

import (
	"math/rand"
	"sort"
	"testing"

	"matrix/internal/geom"
)

func sorted(ks []int) []int {
	out := append([]int(nil), ks...)
	sort.Ints(out)
	return out
}

func TestInsertQueryBasics(t *testing.T) {
	g := NewGrid[int](10)
	g.Insert(1, geom.Pt(5, 5))
	g.Insert(2, geom.Pt(50, 50))
	g.Insert(3, geom.Pt(7, 5))
	if g.Len() != 3 {
		t.Fatalf("Len = %d", g.Len())
	}
	got := sorted(g.QueryCircle(geom.Pt(5, 5), 3, nil))
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("QueryCircle = %v", got)
	}
	// Inclusive boundary.
	got = g.QueryCircle(geom.Pt(5, 5), 2, nil)
	if len(got) != 2 {
		t.Fatalf("inclusive boundary: %v", got)
	}
	got = g.QueryCircle(geom.Pt(5, 5), 1.999, nil)
	if len(got) != 1 {
		t.Fatalf("exclusive: %v", got)
	}
}

func TestMoveAcrossCells(t *testing.T) {
	g := NewGrid[int](10)
	g.Insert(1, geom.Pt(5, 5))
	g.Insert(1, geom.Pt(95, 95)) // move far away
	if g.Len() != 1 {
		t.Fatalf("Len = %d after move", g.Len())
	}
	if got := g.QueryCircle(geom.Pt(5, 5), 5, nil); len(got) != 0 {
		t.Fatalf("old cell still occupied: %v", got)
	}
	if got := g.QueryCircle(geom.Pt(95, 95), 1, nil); len(got) != 1 {
		t.Fatalf("new cell empty: %v", got)
	}
	p, ok := g.Position(1)
	if !ok || p != geom.Pt(95, 95) {
		t.Fatalf("Position = %v,%v", p, ok)
	}
}

func TestMoveWithinCell(t *testing.T) {
	g := NewGrid[int](10)
	g.Insert(1, geom.Pt(5, 5))
	g.Insert(1, geom.Pt(6, 6))
	if got := g.QueryCircle(geom.Pt(6, 6), 0.5, nil); len(got) != 1 {
		t.Fatalf("in-cell move lost: %v", got)
	}
	if p, _ := g.Position(1); p != geom.Pt(6, 6) {
		t.Fatalf("Position = %v", p)
	}
}

func TestRemove(t *testing.T) {
	g := NewGrid[int](10)
	g.Insert(1, geom.Pt(5, 5))
	g.Remove(1)
	g.Remove(99) // unknown: no-op
	if g.Len() != 0 {
		t.Fatalf("Len = %d", g.Len())
	}
	if _, ok := g.Position(1); ok {
		t.Fatal("removed entity still has position")
	}
	if got := g.QueryCircle(geom.Pt(5, 5), 10, nil); len(got) != 0 {
		t.Fatalf("removed entity still found: %v", got)
	}
}

func TestQueryRect(t *testing.T) {
	g := NewGrid[int](10)
	g.Insert(1, geom.Pt(5, 5))
	g.Insert(2, geom.Pt(15, 5))
	g.Insert(3, geom.Pt(10, 5)) // on boundary: half-open => belongs to [10,20)
	r := geom.R(0, 0, 10, 10)
	got := sorted(g.QueryRect(r, nil))
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("QueryRect = %v", got)
	}
	out := sorted(g.QueryOutsideRect(r, nil))
	if len(out) != 2 || out[0] != 2 || out[1] != 3 {
		t.Fatalf("QueryOutsideRect = %v", out)
	}
	if got := g.QueryRect(geom.Rect{}, nil); len(got) != 0 {
		t.Fatalf("empty rect query = %v", got)
	}
}

func TestNegativeCoordinates(t *testing.T) {
	g := NewGrid[int](10)
	g.Insert(1, geom.Pt(-5, -5))
	g.Insert(2, geom.Pt(-15, -15))
	got := g.QueryCircle(geom.Pt(-5, -5), 1, nil)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("negative coords: %v", got)
	}
}

func TestNegativeRadius(t *testing.T) {
	g := NewGrid[int](10)
	g.Insert(1, geom.Pt(0, 0))
	if got := g.QueryCircle(geom.Pt(0, 0), -1, nil); len(got) != 0 {
		t.Fatalf("negative radius: %v", got)
	}
}

func TestKeys(t *testing.T) {
	g := NewGrid[int](10)
	g.Insert(1, geom.Pt(0, 0))
	g.Insert(2, geom.Pt(5, 5))
	ks := sorted(g.Keys(nil))
	if len(ks) != 2 || ks[0] != 1 || ks[1] != 2 {
		t.Fatalf("Keys = %v", ks)
	}
}

func TestDefaultCellSize(t *testing.T) {
	g := NewGrid[int](0)
	g.Insert(1, geom.Pt(0.5, 0.5))
	if got := g.QueryCircle(geom.Pt(0, 0), 1, nil); len(got) != 1 {
		t.Fatalf("default cell: %v", got)
	}
}

// TestGridMatchesBruteForce cross-checks grid queries against a linear scan
// over randomized positions, cell sizes and radii.
func TestGridMatchesBruteForce(t *testing.T) {
	rnd := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		cell := []float64{1, 5, 10, 33}[rnd.Intn(4)]
		g := NewGrid[int](cell)
		type ent struct {
			k int
			p geom.Point
		}
		var ents []ent
		for i := 0; i < 200; i++ {
			p := geom.Pt(rnd.Float64()*200-100, rnd.Float64()*200-100)
			g.Insert(i, p)
			ents = append(ents, ent{i, p})
		}
		// Random moves.
		for i := 0; i < 50; i++ {
			k := rnd.Intn(200)
			p := geom.Pt(rnd.Float64()*200-100, rnd.Float64()*200-100)
			g.Insert(k, p)
			ents[k].p = p
		}
		// Random removals.
		removed := map[int]bool{}
		for i := 0; i < 20; i++ {
			k := rnd.Intn(200)
			g.Remove(k)
			removed[k] = true
		}
		for q := 0; q < 20; q++ {
			center := geom.Pt(rnd.Float64()*200-100, rnd.Float64()*200-100)
			radius := rnd.Float64() * 50
			want := map[int]bool{}
			for _, e := range ents {
				if removed[e.k] {
					continue
				}
				dx, dy := e.p.X-center.X, e.p.Y-center.Y
				if dx*dx+dy*dy <= radius*radius {
					want[e.k] = true
				}
			}
			got := g.QueryCircle(center, radius, nil)
			if len(got) != len(want) {
				t.Fatalf("trial %d: got %d, want %d", trial, len(got), len(want))
			}
			for _, k := range got {
				if !want[k] {
					t.Fatalf("trial %d: unexpected %d in result", trial, k)
				}
			}
		}
	}
}

func TestQueryReusesDst(t *testing.T) {
	g := NewGrid[int](10)
	g.Insert(1, geom.Pt(0, 0))
	buf := make([]int, 0, 8)
	got := g.QueryCircle(geom.Pt(0, 0), 1, buf)
	if len(got) != 1 {
		t.Fatal("query failed")
	}
	if cap(got) != cap(buf) {
		t.Error("dst not reused")
	}
}
