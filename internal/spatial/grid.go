// Package spatial provides a uniform hash grid for radius queries over
// moving entities — the interest-management substrate game servers use to
// find "all clients whose zone of visibility contains this event" without
// scanning every connected client per packet.
package spatial

import (
	"math"

	"matrix/internal/geom"
)

// Grid is a uniform spatial hash from cells to entity keys. The zero value
// is not usable; call NewGrid. Grid is not safe for concurrent use (each
// game server owns one and serializes access through its inbox).
type Grid[K comparable] struct {
	cell  float64
	cells map[[2]int32]map[K]geom.Point
	pos   map[K]geom.Point
}

// NewGrid creates a grid with the given cell size. Radius queries are most
// efficient when cell is close to the typical query radius. A non-positive
// cell defaults to 1.
func NewGrid[K comparable](cell float64) *Grid[K] {
	if cell <= 0 {
		cell = 1
	}
	return &Grid[K]{
		cell:  cell,
		cells: make(map[[2]int32]map[K]geom.Point),
		pos:   make(map[K]geom.Point),
	}
}

// cellOf maps a point to its cell coordinates.
func (g *Grid[K]) cellOf(p geom.Point) [2]int32 {
	return [2]int32{int32(math.Floor(p.X / g.cell)), int32(math.Floor(p.Y / g.cell))}
}

// Len returns the number of entities in the grid.
func (g *Grid[K]) Len() int { return len(g.pos) }

// Insert adds or moves an entity to p.
func (g *Grid[K]) Insert(k K, p geom.Point) {
	if old, ok := g.pos[k]; ok {
		oc, nc := g.cellOf(old), g.cellOf(p)
		if oc == nc {
			g.pos[k] = p
			g.cells[oc][k] = p
			return
		}
		g.removeFromCell(k, oc)
	}
	g.pos[k] = p
	c := g.cellOf(p)
	m, ok := g.cells[c]
	if !ok {
		m = make(map[K]geom.Point)
		g.cells[c] = m
	}
	m[k] = p
}

// Remove deletes an entity; unknown keys are a no-op.
func (g *Grid[K]) Remove(k K) {
	p, ok := g.pos[k]
	if !ok {
		return
	}
	delete(g.pos, k)
	g.removeFromCell(k, g.cellOf(p))
}

func (g *Grid[K]) removeFromCell(k K, c [2]int32) {
	if m, ok := g.cells[c]; ok {
		delete(m, k)
		if len(m) == 0 {
			delete(g.cells, c)
		}
	}
}

// Position returns the stored position of k.
func (g *Grid[K]) Position(k K) (geom.Point, bool) {
	p, ok := g.pos[k]
	return p, ok
}

// QueryCircle appends to dst every entity within dist of center (Euclidean,
// inclusive) and returns the extended slice. Pass a reused dst to avoid
// allocation on hot paths.
func (g *Grid[K]) QueryCircle(center geom.Point, dist float64, dst []K) []K {
	if dist < 0 {
		return dst
	}
	minC := g.cellOf(geom.Pt(center.X-dist, center.Y-dist))
	maxC := g.cellOf(geom.Pt(center.X+dist, center.Y+dist))
	d2 := dist * dist
	for cx := minC[0]; cx <= maxC[0]; cx++ {
		for cy := minC[1]; cy <= maxC[1]; cy++ {
			m, ok := g.cells[[2]int32{cx, cy}]
			if !ok {
				continue
			}
			for k, p := range m {
				dx, dy := p.X-center.X, p.Y-center.Y
				if dx*dx+dy*dy <= d2 {
					dst = append(dst, k)
				}
			}
		}
	}
	return dst
}

// QueryRect appends every entity inside r (half-open) to dst.
func (g *Grid[K]) QueryRect(r geom.Rect, dst []K) []K {
	if r.Empty() {
		return dst
	}
	minC := g.cellOf(geom.Pt(r.MinX, r.MinY))
	maxC := g.cellOf(geom.Pt(r.MaxX, r.MaxY))
	for cx := minC[0]; cx <= maxC[0]; cx++ {
		for cy := minC[1]; cy <= maxC[1]; cy++ {
			m, ok := g.cells[[2]int32{cx, cy}]
			if !ok {
				continue
			}
			for k, p := range m {
				if r.Contains(p) {
					dst = append(dst, k)
				}
			}
		}
	}
	return dst
}

// QueryOutsideRect appends every entity NOT inside r to dst — exactly the
// set a game server must redirect after its range shrinks.
func (g *Grid[K]) QueryOutsideRect(r geom.Rect, dst []K) []K {
	for k, p := range g.pos {
		if !r.Contains(p) {
			dst = append(dst, k)
		}
	}
	return dst
}

// Keys appends all entity keys to dst.
func (g *Grid[K]) Keys(dst []K) []K {
	for k := range g.pos {
		dst = append(dst, k)
	}
	return dst
}
