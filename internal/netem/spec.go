package netem

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseSpec parses the comma-separated key=value impairment syntax the cmd/
// binaries accept, e.g.
//
//	delay=40ms,jitter=25ms,loss=2%
//	loss=0.01,burst=0.3,burst-enter=0.02,burst-exit=0.25
//
// Delay and jitter take a Go duration ("40ms") or a bare millisecond count;
// probabilities take a fraction ("0.02") or a percentage ("2%"). An empty
// spec (or "off") is the zero, pass-through config.
func ParseSpec(spec string) (LinkConfig, error) {
	var l LinkConfig
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "off" {
		return l, nil
	}
	for _, part := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return l, fmt.Errorf("netem: bad spec element %q (want key=value)", part)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		var err error
		switch key {
		case "delay":
			l.DelayMs, err = parseMs(val)
		case "jitter":
			l.JitterMs, err = parseMs(val)
		case "loss":
			l.Loss, err = parseProb(val)
		case "burst":
			l.BurstLoss, err = parseProb(val)
		case "burst-enter":
			l.BurstEnter, err = parseProb(val)
		case "burst-exit":
			l.BurstExit, err = parseProb(val)
		default:
			return l, fmt.Errorf("netem: unknown spec key %q", key)
		}
		if err != nil {
			return l, fmt.Errorf("netem: spec %s=%s: %w", key, val, err)
		}
	}
	// A burst rate without transition probabilities would silently never
	// fire; give the chain sane defaults so "burst=0.3" alone works.
	if l.BurstLoss > 0 && l.BurstEnter == 0 {
		l.BurstEnter = 0.01
	}
	if l.BurstEnter > 0 && l.BurstExit == 0 {
		l.BurstExit = 0.25
	}
	return l, l.Validate()
}

// parseMs accepts "40ms"/"1.5s" (Go duration) or a bare number of
// milliseconds. Negative values fail in either form with the same error,
// naming the offending element — the bare-number fallback must reject
// "-5" exactly as the duration branch rejects "-5ms", not defer to the
// trailing LinkConfig.Validate (whose message points at neither the key
// nor the value the operator typed).
func parseMs(s string) (float64, error) {
	if d, err := time.ParseDuration(s); err == nil {
		if d < 0 {
			return 0, fmt.Errorf("negative duration %v", d)
		}
		return float64(d) / float64(time.Millisecond), nil
	}
	ms, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("want a duration or milliseconds, got %q", s)
	}
	if ms < 0 {
		return 0, fmt.Errorf("negative duration %v", time.Duration(ms*float64(time.Millisecond)))
	}
	return ms, nil
}

// parseProb accepts "0.05" or "5%".
func parseProb(s string) (float64, error) {
	pct := strings.HasSuffix(s, "%")
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		return 0, fmt.Errorf("want a probability or percentage, got %q", s)
	}
	if pct {
		v /= 100
	}
	return v, nil
}
