package netem

import (
	"testing"
)

// FuzzParseSpec throws arbitrary CLI strings at the impairment parser: it
// must return a config or an error — never panic — and every config it
// accepts must satisfy its own Validate (ParseSpec promises validated
// output, so the operator's first run is also the last place it can lie).
func FuzzParseSpec(f *testing.F) {
	for _, seed := range []string{
		"",
		"off",
		"delay=40ms,jitter=25ms,loss=2%",
		"loss=0.01,burst=0.3,burst-enter=0.02,burst-exit=0.25",
		"delay=5",
		"delay=-1ms",
		"loss=200%",
		"burst=0.3",
		"delay",
		"delay=",
		"=40ms",
		"delay=40ms,,loss=1%",
		"delay=1h",
		"loss=NaN",
		"loss=Inf",
		"delay=9e999",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		l, err := ParseSpec(spec)
		if err != nil {
			return
		}
		if verr := l.Validate(); verr != nil {
			t.Fatalf("ParseSpec(%q) accepted an invalid config %+v: %v", spec, l, verr)
		}
		// The String rendering of an accepted config must itself be safe.
		_ = l.String()
	})
}
