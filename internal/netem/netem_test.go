package netem

import (
	"testing"

	"matrix/internal/id"
	"matrix/internal/protocol"
)

func TestZeroConfigIsPassThrough(t *testing.T) {
	if (Config{}).Enabled() {
		t.Fatal("zero Config must not enable emulation")
	}
	if !(LinkConfig{}).Zero() {
		t.Fatal("zero LinkConfig must report Zero")
	}
	m := NewModel(Config{})
	for i := 0; i < 100; i++ {
		v := m.Judge(ClientEndpoint(1), ServerEndpoint(1), true)
		if v.Drop || v.Severed || v.DelaySec != 0 {
			t.Fatalf("zero-config Judge impaired a packet: %+v", v)
		}
	}
}

func TestValidate(t *testing.T) {
	bad := []LinkConfig{
		{DelayMs: -1},
		{JitterMs: -1},
		{Loss: 1.5},
		{BurstLoss: -0.1},
		{BurstEnter: 0.1}, // no exit: never leaves the bad state
	}
	for _, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", l)
		}
	}
	good := LinkConfig{DelayMs: 40, JitterMs: 25, Loss: 0.02, BurstLoss: 0.3, BurstEnter: 0.01, BurstExit: 0.25}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate(%+v) = %v", good, err)
	}
}

// judgeSequence runs n packets over one link and returns the drop pattern.
func judgeSequence(m *Model, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = m.Judge(ClientEndpoint(7), ServerEndpoint(1), true).Drop
	}
	return out
}

func TestDeterministicForFixedSeed(t *testing.T) {
	cfg := Config{Seed: 42, Link: LinkConfig{Loss: 0.1, JitterMs: 50}}
	a := NewModel(cfg)
	b := NewModel(cfg)
	for i := 0; i < 1000; i++ {
		va := a.Judge(ClientEndpoint(7), ServerEndpoint(1), true)
		vb := b.Judge(ClientEndpoint(7), ServerEndpoint(1), true)
		if va != vb {
			t.Fatalf("packet %d: verdicts diverged: %+v vs %+v", i, va, vb)
		}
	}
	c := NewModel(Config{Seed: 43, Link: cfg.Link})
	diff := 0
	sa, sc := judgeSequence(NewModel(cfg), 500), judgeSequence(c, 500)
	for i := range sa {
		if sa[i] != sc[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical drop patterns")
	}
}

func TestLinkStreamsIndependent(t *testing.T) {
	cfg := Config{Seed: 1, Link: LinkConfig{Loss: 0.2}}
	// Link (7→1) must judge identically whether or not other links have
	// been exercised in between.
	a := NewModel(cfg)
	seqA := judgeSequence(a, 200)
	b := NewModel(cfg)
	var interleaved []bool
	for i := 0; i < 200; i++ {
		b.Judge(ClientEndpoint(99), ServerEndpoint(2), true) // unrelated link
		interleaved = append(interleaved, b.Judge(ClientEndpoint(7), ServerEndpoint(1), true).Drop)
	}
	for i := range seqA {
		if seqA[i] != interleaved[i] {
			t.Fatalf("packet %d: foreign link traffic shifted this link's stream", i)
		}
	}
}

func TestIIDLossRate(t *testing.T) {
	m := NewModel(Config{Seed: 5, Link: LinkConfig{Loss: 0.1}})
	const n = 20000
	drops := 0
	for _, d := range judgeSequence(m, n) {
		if d {
			drops++
		}
	}
	rate := float64(drops) / n
	if rate < 0.08 || rate > 0.12 {
		t.Errorf("i.i.d. loss rate = %.4f, want ≈0.10", rate)
	}
}

func TestBurstLossClusters(t *testing.T) {
	// Gilbert–Elliott with near-lossless Good state: drops should arrive
	// in runs, so the conditional drop probability after a drop must be
	// far higher than the marginal rate.
	m := NewModel(Config{Seed: 11, Link: LinkConfig{BurstLoss: 0.8, BurstEnter: 0.02, BurstExit: 0.2}})
	seq := judgeSequence(m, 50000)
	drops, dropAfterDrop, afterDrop := 0, 0, 0
	for i, d := range seq {
		if d {
			drops++
		}
		if i > 0 && seq[i-1] {
			afterDrop++
			if d {
				dropAfterDrop++
			}
		}
	}
	marginal := float64(drops) / float64(len(seq))
	conditional := float64(dropAfterDrop) / float64(afterDrop)
	if drops == 0 {
		t.Fatal("burst model never dropped")
	}
	if conditional < 2*marginal {
		t.Errorf("drops not bursty: P(drop|drop)=%.3f vs marginal %.3f", conditional, marginal)
	}
}

func TestControlPlaneExemptFromLoss(t *testing.T) {
	m := NewModel(Config{Seed: 3, Link: LinkConfig{Loss: 1}})
	if v := m.Judge(ClientEndpoint(1), ServerEndpoint(1), false); v.Drop {
		t.Fatal("control packet dropped by loss model")
	}
	if v := m.Judge(ClientEndpoint(1), ServerEndpoint(1), true); !v.Drop {
		t.Fatal("data packet survived loss=1")
	}
}

func TestDataPlaneClassification(t *testing.T) {
	if !DataPlane(&protocol.GameUpdate{}) || !DataPlane(&protocol.Forward{}) {
		t.Error("game updates and forwards must ride the data plane")
	}
	for _, m := range []protocol.Message{
		&protocol.ClientHello{}, &protocol.ClientWelcome{}, &protocol.Redirect{},
		&protocol.StateTransfer{}, &protocol.RangeUpdate{}, &protocol.LoadReport{},
	} {
		if DataPlane(m) {
			t.Errorf("%v classified as data plane", m.MsgType())
		}
	}
}

func TestDelayAndJitter(t *testing.T) {
	m := NewModel(Config{Seed: 9, Link: LinkConfig{DelayMs: 40, JitterMs: 100}})
	sawJitter := false
	for i := 0; i < 200; i++ {
		v := m.Judge(ClientEndpoint(1), ServerEndpoint(1), true)
		if v.DelaySec < 0.040 || v.DelaySec >= 0.140 {
			t.Fatalf("delay %.4fs outside [base, base+jitter)", v.DelaySec)
		}
		if v.DelaySec > 0.041 {
			sawJitter = true
		}
	}
	if !sawJitter {
		t.Error("jitter never materialized")
	}
}

func TestPartitionSeversBackboneOnly(t *testing.T) {
	m := NewModel(Config{Seed: 1})
	m.Cut([]id.ServerID{2})
	if !m.Judge(ServerEndpoint(1), ServerEndpoint(2), true).Severed {
		t.Error("cut server reachable from backbone")
	}
	if !m.Judge(ServerEndpoint(2), ServerEndpoint(1), true).Severed {
		t.Error("backbone reachable from cut server")
	}
	if m.Judge(ClientEndpoint(5), ServerEndpoint(2), true).Severed {
		t.Error("partition severed a client link")
	}
	if m.Judge(ServerEndpoint(1), ServerEndpoint(3), true).Severed {
		t.Error("partition severed an uninvolved backbone link")
	}
	// Two servers on the same side of the cut still talk.
	m.Cut([]id.ServerID{3})
	if m.Judge(ServerEndpoint(2), ServerEndpoint(3), true).Severed {
		t.Error("two cut servers should share the minority side")
	}
	m.Heal(nil)
	if m.Judge(ServerEndpoint(1), ServerEndpoint(2), true).Severed {
		t.Error("heal(all) left a partition")
	}
}

func TestCrashSeversEverything(t *testing.T) {
	m := NewModel(Config{Seed: 1})
	m.Crash([]id.ServerID{2})
	if !m.Crashed(2) || m.Crashed(1) {
		t.Fatal("crash bookkeeping wrong")
	}
	if !m.Judge(ClientEndpoint(5), ServerEndpoint(2), true).Severed {
		t.Error("client link to crashed server alive")
	}
	if !m.Judge(ServerEndpoint(2), ServerEndpoint(1), true).Severed {
		t.Error("peer link from crashed server alive")
	}
	m.Recover([]id.ServerID{2})
	if m.Crashed(2) || m.Judge(ClientEndpoint(5), ServerEndpoint(2), true).Severed {
		t.Error("recover did not restore the server")
	}
}

func TestParseSpec(t *testing.T) {
	l, err := ParseSpec("delay=40ms,jitter=25ms,loss=2%")
	if err != nil {
		t.Fatal(err)
	}
	if l.DelayMs != 40 || l.JitterMs != 25 || l.Loss != 0.02 {
		t.Errorf("parsed %+v", l)
	}
	l, err = ParseSpec("loss=0.01,burst=0.3")
	if err != nil {
		t.Fatal(err)
	}
	if l.BurstLoss != 0.3 || l.BurstEnter <= 0 || l.BurstExit <= 0 {
		t.Errorf("burst defaults not applied: %+v", l)
	}
	if l, err := ParseSpec(""); err != nil || !l.Zero() {
		t.Errorf("empty spec: %+v, %v", l, err)
	}
	if l, err := ParseSpec("off"); err != nil || !l.Zero() {
		t.Errorf("off spec: %+v, %v", l, err)
	}
	for _, bad := range []string{"delay", "delay=fast", "nope=1", "loss=200%"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) = nil error", bad)
		}
	}
	// Bare milliseconds and String round-trip.
	l, err = ParseSpec("delay=15,jitter=5")
	if err != nil || l.DelayMs != 15 || l.JitterMs != 5 {
		t.Errorf("bare ms: %+v, %v", l, err)
	}
	rt, err := ParseSpec(l.String())
	if err != nil || rt != l {
		t.Errorf("String round-trip: %+v -> %q -> %+v (%v)", l, l.String(), rt, err)
	}
}

// TestParseSpecNegativeDurations pins the error shape for negative delay
// and jitter in both accepted forms: the Go-duration branch ("-5ms") and
// the bare-millisecond fallback ("-5") must fail identically, at parse
// time, naming the offending element — the fallback used to accept the
// value and leave the failure to the trailing Validate, whose message
// named neither.
func TestParseSpecNegativeDurations(t *testing.T) {
	for _, tc := range []struct {
		spec string
		want string // error substring, "" = must parse
	}{
		{"delay=-5ms", `netem: spec delay=-5ms: negative duration -5ms`},
		{"delay=-5", `netem: spec delay=-5: negative duration -5ms`},
		{"jitter=-5ms", `netem: spec jitter=-5ms: negative duration -5ms`},
		{"jitter=-5", `netem: spec jitter=-5: negative duration -5ms`},
		{"delay=-1.5s", `netem: spec delay=-1.5s: negative duration -1.5s`},
		{"delay=-1500", `netem: spec delay=-1500: negative duration -1.5s`},
		{"jitter=-0.5", `netem: spec jitter=-0.5: negative duration -500µs`},
		{"delay=0", ""},
		{"delay=0ms,jitter=0", ""},
		{"delay=5,jitter=2.5", ""},
	} {
		_, err := ParseSpec(tc.spec)
		if tc.want == "" {
			if err != nil {
				t.Errorf("ParseSpec(%q): unexpected error %v", tc.spec, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("ParseSpec(%q) = nil error, want %q", tc.spec, tc.want)
			continue
		}
		if err.Error() != tc.want {
			t.Errorf("ParseSpec(%q) error = %q, want %q", tc.spec, err.Error(), tc.want)
		}
	}
}
