// Package netem is a deterministic, seedable network-condition model: it
// decides, packet by packet, whether a message crossing a link is dropped,
// delayed, or blackholed. The same model serves two deployments:
//
//   - the simulation harness consults Model for every client↔server and
//     server↔server hop, turning the simulator's instant lossless delivery
//     into emulated degraded networking (latency + jitter, i.i.d. and
//     Gilbert–Elliott burst loss, backbone partitions, server crashes) while
//     staying byte-identical for a fixed (seed, config) pair;
//   - the live stack wraps any transport.Conn in a netem Conn (see conn.go)
//     so the cmd/ binaries can run real TCP clusters under impairment.
//
// The zero value of every config type is an exact pass-through: no loss, no
// delay, no state — the gate the simulator's determinism contract relies on.
//
// Loss applies to the data plane only (GameUpdate and Forward packets, see
// DataPlane): session control — hellos, welcomes, redirects, state
// transfers, range updates — models a reliable channel and is delayed but
// never randomly lost, mirroring a TCP deployment where congestion loss
// manifests as latency. Partitions and crashes blackhole everything; a
// sustained outage stalls reliable channels too.
package netem

import (
	"errors"
	"fmt"
	"maps"
	"slices"
	"sort"

	"matrix/internal/id"
	"matrix/internal/protocol"
)

// LinkConfig describes the impairment applied to one direction of one
// link. The zero value is a perfect link.
type LinkConfig struct {
	// DelayMs is the base one-way delay in milliseconds.
	DelayMs float64
	// JitterMs adds a per-packet uniform random delay in [0, JitterMs).
	// Jitter larger than the consumer's delivery quantum causes
	// reordering: a later packet can draw a shorter delay and overtake an
	// earlier one (bandwidth-free reordering via delayed delivery).
	JitterMs float64
	// Loss is the i.i.d. per-packet loss probability in [0, 1].
	Loss float64
	// BurstLoss is the loss probability while the link's Gilbert–Elliott
	// chain is in the Bad state. Bursts are entered with probability
	// BurstEnter per packet and left with probability BurstExit per
	// packet; BurstEnter == 0 disables the chain entirely.
	BurstLoss float64
	// BurstEnter is the per-packet Good→Bad transition probability.
	BurstEnter float64
	// BurstExit is the per-packet Bad→Good transition probability.
	BurstExit float64
}

// Zero reports whether the link is a perfect pass-through.
func (l LinkConfig) Zero() bool { return l == LinkConfig{} }

// Validate checks field ranges.
func (l LinkConfig) Validate() error {
	if l.DelayMs < 0 || l.JitterMs < 0 {
		return errors.New("netem: negative delay or jitter")
	}
	for _, p := range []float64{l.Loss, l.BurstLoss, l.BurstEnter, l.BurstExit} {
		if p < 0 || p > 1 {
			return fmt.Errorf("netem: probability %v outside [0,1]", p)
		}
	}
	if l.BurstEnter > 0 && l.BurstExit == 0 {
		return errors.New("netem: BurstEnter without BurstExit never leaves the bad state")
	}
	return nil
}

// String renders the non-zero fields in the ParseSpec syntax.
func (l LinkConfig) String() string {
	if l.Zero() {
		return "off"
	}
	s := ""
	add := func(format string, args ...any) {
		if s != "" {
			s += ","
		}
		s += fmt.Sprintf(format, args...)
	}
	if l.DelayMs > 0 {
		add("delay=%gms", l.DelayMs)
	}
	if l.JitterMs > 0 {
		add("jitter=%gms", l.JitterMs)
	}
	if l.Loss > 0 {
		add("loss=%g", l.Loss)
	}
	if l.BurstEnter > 0 {
		add("burst=%g,burst-enter=%g,burst-exit=%g", l.BurstLoss, l.BurstEnter, l.BurstExit)
	}
	return s
}

// Config parameterizes a Model. The zero value disables emulation.
type Config struct {
	// Seed feeds every link's PRNG stream. Zero lets the consumer derive
	// one (the simulator uses its own run seed), so varying the run seed
	// varies the impairment draws too.
	Seed int64
	// Link is the impairment applied to every link. Timed changes
	// (impair/partition/crash script events) mutate the live model.
	Link LinkConfig
}

// Enabled reports whether the config asks for any emulation at all.
func (c Config) Enabled() bool { return !c.Link.Zero() }

// Validate checks the config.
func (c Config) Validate() error { return c.Link.Validate() }

// Endpoint names one end of a link: a server or a client.
type Endpoint struct {
	Server id.ServerID
	Client id.ClientID
}

// ServerEndpoint returns the endpoint for a Matrix/game server pair.
func ServerEndpoint(s id.ServerID) Endpoint { return Endpoint{Server: s} }

// ClientEndpoint returns the endpoint for a game client.
func ClientEndpoint(c id.ClientID) Endpoint { return Endpoint{Client: c} }

// isServer reports whether the endpoint is a server.
func (e Endpoint) isServer() bool { return e.Server != id.None }

// key folds the endpoint into a stable 64-bit identity for link hashing.
func (e Endpoint) key() uint64 {
	if e.isServer() {
		return uint64(e.Server)
	}
	return 1<<63 | uint64(e.Client)
}

// Verdict is the model's decision for one packet.
type Verdict struct {
	// Drop means the packet was lost to the random-loss models.
	Drop bool
	// Severed means the packet hit a blackhole (partition or crash).
	// Severed packets are always dropped.
	Severed bool
	// DelaySec is the one-way latency the packet must experience.
	DelaySec float64
}

// Model is the deterministic network-condition engine. It is not safe for
// concurrent use: the simulator drives it from its single-threaded tick
// loop (each Sim owns its own Model, so worker pools stay race-free).
type Model struct {
	seed    int64
	link    LinkConfig
	links   map[linkKey]*linkState
	crashed map[id.ServerID]bool
	cut     map[id.ServerID]bool
}

type linkKey struct{ from, to uint64 }

// linkState is one directed link's mutable state: its PRNG stream and its
// Gilbert–Elliott loss-chain position.
type linkState struct {
	rng rng64
	bad bool
}

// NewModel builds a model from cfg. The zero config yields a model that
// passes every packet untouched (consumers usually skip the model entirely
// in that case).
func NewModel(cfg Config) *Model {
	return &Model{
		seed:    cfg.Seed,
		link:    cfg.Link,
		links:   make(map[linkKey]*linkState),
		crashed: make(map[id.ServerID]bool),
		cut:     make(map[id.ServerID]bool),
	}
}

// SetLink replaces the impairment applied to every link from now on
// (timed impair script events). Link PRNG streams and burst states carry
// over — only the parameters change.
func (m *Model) SetLink(l LinkConfig) { m.link = l }

// Link returns the impairment currently in effect.
func (m *Model) Link() LinkConfig { return m.link }

// Cut partitions the given servers off the server backbone: every
// server↔server link with exactly one end inside the cut set blackholes.
// Client links are unaffected (the partition severs the inter-server
// network, not the last mile).
func (m *Model) Cut(servers []id.ServerID) {
	for _, s := range servers {
		m.cut[s] = true
	}
}

// Heal reconnects the given servers; an empty list heals every partition.
func (m *Model) Heal(servers []id.ServerID) {
	if len(servers) == 0 {
		clear(m.cut)
		return
	}
	for _, s := range servers {
		delete(m.cut, s)
	}
}

// Crash fail-stops the given servers: they stop processing and every link
// touching them blackholes until Recover. State is retained (the pause
// model of a crashed-then-restarted process whose peers kept their view).
func (m *Model) Crash(servers []id.ServerID) {
	for _, s := range servers {
		m.crashed[s] = true
	}
}

// Recover resumes the given servers; an empty list recovers all.
func (m *Model) Recover(servers []id.ServerID) {
	if len(servers) == 0 {
		clear(m.crashed)
		return
	}
	for _, s := range servers {
		delete(m.crashed, s)
	}
}

// Crashed reports whether a server is currently fail-stopped.
func (m *Model) Crashed(s id.ServerID) bool { return m.crashed[s] }

// CutOff reports whether a server is currently partitioned off the
// backbone.
func (m *Model) CutOff(s id.ServerID) bool { return m.cut[s] }

// Severed reports whether the from→to link is currently blackholed by a
// partition or crash. Consumers holding messages in flight re-check it at
// delivery time: a packet in the pipe when the link went down is lost.
func (m *Model) Severed(from, to Endpoint) bool {
	if from.isServer() && m.crashed[from.Server] {
		return true
	}
	if to.isServer() && m.crashed[to.Server] {
		return true
	}
	if from.isServer() && to.isServer() && m.cut[from.Server] != m.cut[to.Server] {
		return true
	}
	return false
}

// Judge decides one packet's fate on the from→to link. lossEligible says
// whether the packet rides the lossy data plane (see DataPlane); control
// packets are delayed but never randomly dropped. Severed packets consume
// no PRNG draws, so topology events do not shift other links' streams.
func (m *Model) Judge(from, to Endpoint, lossEligible bool) Verdict {
	if m.Severed(from, to) {
		return Verdict{Drop: true, Severed: true}
	}
	needLoss := lossEligible && (m.link.Loss > 0 || m.link.BurstEnter > 0)
	var v Verdict
	v.DelaySec = m.link.DelayMs / 1000
	if !needLoss && m.link.JitterMs == 0 {
		return v // no draws needed: keep the link map lean on delay-only configs
	}
	st := m.state(from, to)
	if needLoss && st.judgeLoss(m.link) {
		return Verdict{Drop: true}
	}
	if m.link.JitterMs > 0 {
		v.DelaySec += st.rng.float() * m.link.JitterMs / 1000
	}
	return v
}

// state returns (creating on first use) the directed link's state. Each
// link's PRNG stream depends only on the model seed and the endpoints, so
// per-link decision sequences are independent of which other links exist.
func (m *Model) state(from, to Endpoint) *linkState {
	k := linkKey{from.key(), to.key()}
	st, ok := m.links[k]
	if !ok {
		st = &linkState{rng: rng64{state: mix64(mix64(uint64(m.seed)^k.from) ^ k.to)}}
		m.links[k] = st
	}
	return st
}

// judgeLoss runs the loss models: the Gilbert–Elliott chain steps once per
// data packet, and the effective loss probability is the i.i.d. rate in the
// Good state or BurstLoss in the Bad state (whichever is higher, so an
// i.i.d. floor survives bursts).
func (st *linkState) judgeLoss(l LinkConfig) bool {
	if l.BurstEnter > 0 {
		if st.bad {
			if st.rng.float() < l.BurstExit {
				st.bad = false
			}
		} else if st.rng.float() < l.BurstEnter {
			st.bad = true
		}
	}
	p := l.Loss
	if st.bad && l.BurstLoss > p {
		p = l.BurstLoss
	}
	return p > 0 && st.rng.float() < p
}

// CrashedServers returns the currently fail-stopped servers, sorted.
func (m *Model) CrashedServers() []id.ServerID {
	return sortedIDs(m.crashed)
}

// CutServers returns the currently partitioned-off servers, sorted.
func (m *Model) CutServers() []id.ServerID {
	return sortedIDs(m.cut)
}

func sortedIDs(set map[id.ServerID]bool) []id.ServerID {
	return slices.Sorted(maps.Keys(set))
}

// LinkState is one directed link's snapshot inside ModelState: the opaque
// endpoint keys, the PRNG position and the Gilbert–Elliott chain state.
type LinkState struct {
	From uint64
	To   uint64
	RNG  uint64
	Bad  bool
}

// ModelState is a Model's serializable snapshot. Links are sorted by
// (From, To) so encoding the same model twice is byte-identical.
type ModelState struct {
	Seed    int64
	Link    LinkConfig
	Links   []LinkState
	Crashed []id.ServerID
	Cut     []id.ServerID
}

// State snapshots the model: current link impairment, every link stream's
// PRNG position and burst state, and the partition/crash sets.
func (m *Model) State() ModelState {
	st := ModelState{
		Seed:    m.seed,
		Link:    m.link,
		Crashed: sortedIDs(m.crashed),
		Cut:     sortedIDs(m.cut),
	}
	keys := make([]linkKey, 0, len(m.links))
	for k := range m.links {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].from != keys[j].from {
			return keys[i].from < keys[j].from
		}
		return keys[i].to < keys[j].to
	})
	for _, k := range keys {
		ls := m.links[k]
		st.Links = append(st.Links, LinkState{From: k.from, To: k.to, RNG: ls.rng.state, Bad: ls.bad})
	}
	return st
}

// NewModelFromState rebuilds a model mid-run: every link stream resumes at
// its exact PRNG position, so the continued decision sequence is
// byte-identical to an uninterrupted run.
func NewModelFromState(st ModelState) *Model {
	m := NewModel(Config{Seed: st.Seed, Link: st.Link})
	for _, ls := range st.Links {
		m.links[linkKey{ls.From, ls.To}] = &linkState{rng: rng64{state: ls.RNG}, bad: ls.Bad}
	}
	for _, s := range st.Crashed {
		m.crashed[s] = true
	}
	for _, s := range st.Cut {
		m.cut[s] = true
	}
	return m
}

// DataPlane reports whether a message rides the lossy data plane. Game
// updates and their peer forwards are fair game; everything else is
// session or topology control that a real deployment carries reliably.
func DataPlane(m protocol.Message) bool {
	switch m.(type) {
	case *protocol.GameUpdate, *protocol.Forward:
		return true
	}
	return false
}

// rng64 is a splitmix64 PRNG: tiny, seedable, and allocation-free, so
// every link affords its own independent stream.
type rng64 struct{ state uint64 }

func (r *rng64) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	return mix64(r.state)
}

// float returns a uniform float64 in [0, 1).
func (r *rng64) float() float64 { return float64(r.next()>>11) / float64(1<<53) }

// mix64 is the splitmix64 finalizer, also used to hash link identities
// into seeds.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
