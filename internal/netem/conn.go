package netem

import (
	"container/heap"
	"sync"
	"sync/atomic"
	"time"

	"matrix/internal/protocol"
	"matrix/internal/transport"
)

// Conn wraps a transport.Conn with live (wall-clock) impairment on the
// send side: data-plane messages can be lost, and everything can be
// delayed by the configured latency + jitter. Delayed messages are
// released by a background pump in deadline order, so jitter reorders them
// exactly as it would on a real degraded path. The receive side is a pure
// pass-through — impair both ends' conns to model a bad link both ways.
//
// Send and SendBatch report nil for impaired (dropped or deferred)
// messages, the way a kernel accepts a datagram it may never deliver; a
// later transport failure surfaces on the next call.
type Conn struct {
	inner transport.Conn

	mu      sync.Mutex
	link    LinkConfig
	st      linkState
	q       sendQueue
	seq     uint64
	stats   ConnStats
	closed  bool
	sendErr error

	wake     chan struct{}
	done     chan struct{}
	pumpDone chan struct{}
}

// ConnStats counts one Conn's impairment decisions.
type ConnStats struct {
	// Lost is how many messages the loss models dropped.
	Lost uint64
	// Delayed is how many sends (messages or whole batches) were deferred.
	Delayed uint64
	// Passed is how many messages were accepted for transmission.
	Passed uint64
}

// WrapConn wraps inner with the given impairment. A zero link config
// returns inner unchanged (exact pass-through).
func WrapConn(inner transport.Conn, link LinkConfig, seed int64) transport.Conn {
	if link.Zero() {
		return inner
	}
	c := &Conn{
		inner:    inner,
		link:     link,
		st:       linkState{rng: rng64{state: mix64(uint64(seed))}},
		wake:     make(chan struct{}, 1),
		done:     make(chan struct{}),
		pumpDone: make(chan struct{}),
	}
	go c.pump()
	return c
}

// Stats snapshots the impairment counters.
func (c *Conn) Stats() ConnStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Send implements transport.Conn.
func (c *Conn) Send(m protocol.Message) error {
	c.mu.Lock()
	if err := c.usableLocked(); err != nil {
		c.mu.Unlock()
		return err
	}
	if DataPlane(m) && c.st.judgeLoss(c.link) {
		c.stats.Lost++
		c.mu.Unlock()
		return nil
	}
	c.stats.Passed++
	delay := c.delayLocked()
	if delay <= 0 {
		c.mu.Unlock()
		return c.inner.Send(m)
	}
	c.stats.Delayed++
	c.pushLocked(time.Now().Add(delay), []protocol.Message{m})
	c.mu.Unlock()
	return nil
}

// SendBatch implements transport.Conn. Loss is judged per message (the
// models see individual packets), while delay is drawn once for the whole
// batch — it travels as one frame on the wire.
func (c *Conn) SendBatch(ms []protocol.Message) error {
	if len(ms) == 0 {
		return nil
	}
	c.mu.Lock()
	if err := c.usableLocked(); err != nil {
		c.mu.Unlock()
		return err
	}
	keep := make([]protocol.Message, 0, len(ms))
	for _, m := range ms {
		if DataPlane(m) && c.st.judgeLoss(c.link) {
			c.stats.Lost++
			continue
		}
		keep = append(keep, m)
	}
	if len(keep) == 0 {
		c.mu.Unlock()
		return nil
	}
	c.stats.Passed += uint64(len(keep))
	delay := c.delayLocked()
	if delay <= 0 {
		c.mu.Unlock()
		return c.inner.SendBatch(keep)
	}
	c.stats.Delayed++
	c.pushLocked(time.Now().Add(delay), keep)
	c.mu.Unlock()
	return nil
}

// usableLocked checks for teardown or an earlier asynchronous send error.
func (c *Conn) usableLocked() error {
	if c.closed {
		return transport.ErrClosed
	}
	return c.sendErr
}

// delayLocked draws this send's latency.
func (c *Conn) delayLocked() time.Duration {
	d := c.link.DelayMs
	if c.link.JitterMs > 0 {
		d += c.st.rng.float() * c.link.JitterMs
	}
	return time.Duration(d * float64(time.Millisecond))
}

// pushLocked queues messages for release at deadline and nudges the pump.
func (c *Conn) pushLocked(at time.Time, ms []protocol.Message) {
	c.seq++
	heap.Push(&c.q, sendEntry{at: at, seq: c.seq, ms: ms})
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// pump releases queued sends in deadline order (FIFO within a deadline).
func (c *Conn) pump() {
	defer close(c.pumpDone)
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		c.mu.Lock()
		if len(c.q) == 0 {
			c.mu.Unlock()
			select {
			case <-c.wake:
				continue
			case <-c.done:
				return
			}
		}
		if wait := time.Until(c.q[0].at); wait > 0 {
			c.mu.Unlock()
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(wait)
			select {
			case <-timer.C:
			case <-c.wake: // an earlier deadline may have arrived
			case <-c.done:
				return
			}
			continue
		}
		e := heap.Pop(&c.q).(sendEntry)
		c.mu.Unlock()
		if err := c.inner.SendBatch(e.ms); err != nil {
			c.mu.Lock()
			if c.sendErr == nil {
				c.sendErr = err
			}
			c.mu.Unlock()
		}
	}
}

// Recv implements transport.Conn (pass-through).
func (c *Conn) Recv() (protocol.Message, error) { return c.inner.Recv() }

// Close implements transport.Conn. Messages still queued for delayed
// release are discarded, as a dying link would discard them. The inner
// conn closes before the pump is reaped: a pump blocked mid-write on a
// stalled peer is unblocked by the close, so Close never hangs on it.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	close(c.done)
	err := c.inner.Close()
	<-c.pumpDone
	return err
}

// RemoteAddr implements transport.Conn.
func (c *Conn) RemoteAddr() string { return c.inner.RemoteAddr() }

// BytesSent implements transport.Conn (bytes actually transmitted).
func (c *Conn) BytesSent() uint64 { return c.inner.BytesSent() }

// BytesReceived implements transport.Conn.
func (c *Conn) BytesReceived() uint64 { return c.inner.BytesReceived() }

// sendEntry is one deferred send.
type sendEntry struct {
	at  time.Time
	seq uint64
	ms  []protocol.Message
}

// sendQueue is a min-heap of deferred sends ordered by (deadline, seq).
type sendQueue []sendEntry

func (q sendQueue) Len() int { return len(q) }
func (q sendQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}
func (q sendQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *sendQueue) Push(x any)   { *q = append(*q, x.(sendEntry)) }
func (q *sendQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1].ms = nil
	*q = old[:n-1]
	return e
}

// Network wraps a transport.Network so every connection it produces —
// dialed or accepted — carries the given impairment. A zero link config
// returns the inner network unchanged. Each connection gets its own PRNG
// stream derived from seed.
func WrapNetwork(inner transport.Network, link LinkConfig, seed int64) transport.Network {
	if link.Zero() {
		return inner
	}
	return &netemNetwork{inner: inner, link: link, seed: seed}
}

type netemNetwork struct {
	inner transport.Network
	link  LinkConfig
	seed  int64
	ctr   atomic.Int64
}

func (n *netemNetwork) connSeed() int64 {
	return int64(mix64(uint64(n.seed) ^ uint64(n.ctr.Add(1))))
}

// Listen implements transport.Network.
func (n *netemNetwork) Listen(addr string) (transport.Listener, error) {
	l, err := n.inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &netemListener{inner: l, net: n}, nil
}

// Dial implements transport.Network.
func (n *netemNetwork) Dial(addr string) (transport.Conn, error) {
	c, err := n.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	return WrapConn(c, n.link, n.connSeed()), nil
}

type netemListener struct {
	inner transport.Listener
	net   *netemNetwork
}

// Accept implements transport.Listener.
func (l *netemListener) Accept() (transport.Conn, error) {
	c, err := l.inner.Accept()
	if err != nil {
		return nil, err
	}
	return WrapConn(c, l.net.link, l.net.connSeed()), nil
}

// Addr implements transport.Listener.
func (l *netemListener) Addr() string { return l.inner.Addr() }

// Close implements transport.Listener.
func (l *netemListener) Close() error { return l.inner.Close() }

var (
	_ transport.Conn     = (*Conn)(nil)
	_ transport.Network  = (*netemNetwork)(nil)
	_ transport.Listener = (*netemListener)(nil)
)
