package netem

import (
	"testing"
	"time"

	"matrix/internal/geom"
	"matrix/internal/id"
	"matrix/internal/protocol"
	"matrix/internal/transport"
)

// connPair dials an in-memory listener and returns the (wrapped) dialer
// side plus the raw accepted side.
func connPair(t *testing.T, link LinkConfig, seed int64) (client transport.Conn, server transport.Conn) {
	t.Helper()
	net := transport.NewMemNetwork()
	l, err := net.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan transport.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	raw, err := net.Dial("srv")
	if err != nil {
		t.Fatal(err)
	}
	client = WrapConn(raw, link, seed)
	server = <-accepted
	t.Cleanup(func() {
		_ = client.Close()
		_ = server.Close()
		_ = l.Close()
	})
	return client, server
}

func update(i int) *protocol.GameUpdate {
	return &protocol.GameUpdate{
		Client: id.ClientID(i),
		Kind:   protocol.KindMove,
		Origin: geom.Pt(1, 2),
		Dest:   geom.Pt(3, 4),
	}
}

// recvN collects n messages or fails after a timeout.
func recvN(t *testing.T, c transport.Conn, n int) []protocol.Message {
	t.Helper()
	out := make(chan protocol.Message, n)
	go func() {
		for i := 0; i < n; i++ {
			m, err := c.Recv()
			if err != nil {
				return
			}
			out <- m
		}
	}()
	var got []protocol.Message
	deadline := time.After(10 * time.Second)
	for len(got) < n {
		select {
		case m := <-out:
			got = append(got, m)
		case <-deadline:
			t.Fatalf("received %d of %d messages before timeout", len(got), n)
		}
	}
	return got
}

func TestWrapConnZeroConfigReturnsInner(t *testing.T) {
	net := transport.NewMemNetwork()
	l, err := net.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	raw, err := net.Dial("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if wrapped := WrapConn(raw, LinkConfig{}, 1); wrapped != raw {
		t.Fatal("zero link config must return the inner conn unchanged")
	}
	if WrapNetwork(net, LinkConfig{}, 1) != transport.Network(net) {
		t.Fatal("zero link config must return the inner network unchanged")
	}
}

func TestImpairedSendRecvAndBatch(t *testing.T) {
	// Delay-only impairment: everything arrives, later than sent, in order.
	client, server := connPair(t, LinkConfig{DelayMs: 30}, 7)
	start := time.Now()
	if err := client.Send(update(1)); err != nil {
		t.Fatal(err)
	}
	if err := client.SendBatch([]protocol.Message{update(2), update(3)}); err != nil {
		t.Fatal(err)
	}
	got := recvN(t, server, 3)
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("3 messages arrived after %v, want ≥ ~30ms of emulated delay", elapsed)
	}
	for i, m := range got {
		u, ok := m.(*protocol.GameUpdate)
		if !ok || u.Client != id.ClientID(i+1) {
			t.Fatalf("message %d = %#v, want update %d (order preserved without jitter)", i, m, i+1)
		}
	}
	st := client.(*Conn).Stats()
	if st.Passed != 3 || st.Lost != 0 || st.Delayed != 2 {
		t.Errorf("stats = %+v, want 3 passed / 0 lost / 2 delayed sends", st)
	}
}

func TestImpairedConnDropsDataKeepsControl(t *testing.T) {
	client, server := connPair(t, LinkConfig{Loss: 1}, 7)
	for i := 0; i < 5; i++ {
		if err := client.Send(update(i)); err != nil {
			t.Fatal(err)
		}
	}
	hello := &protocol.ClientHello{Client: 42, Pos: geom.Pt(1, 1)}
	if err := client.Send(hello); err != nil {
		t.Fatal(err)
	}
	got := recvN(t, server, 1)
	if h, ok := got[0].(*protocol.ClientHello); !ok || h.Client != 42 {
		t.Fatalf("got %#v, want the hello (data packets all lost)", got[0])
	}
	st := client.(*Conn).Stats()
	if st.Lost != 5 || st.Passed != 1 {
		t.Errorf("stats = %+v, want 5 lost / 1 passed", st)
	}
	// A batch mixing data and control keeps only the control half.
	if err := client.SendBatch([]protocol.Message{update(9), hello, update(10)}); err != nil {
		t.Fatal(err)
	}
	got = recvN(t, server, 1)
	if _, ok := got[0].(*protocol.ClientHello); !ok {
		t.Fatalf("batch survivor = %#v, want hello", got[0])
	}
}

func TestJitterReorders(t *testing.T) {
	// 150ms of jitter over many sends: some later message should overtake
	// an earlier one.
	client, server := connPair(t, LinkConfig{JitterMs: 150}, 3)
	const n = 40
	for i := 0; i < n; i++ {
		if err := client.Send(update(i + 1)); err != nil {
			t.Fatal(err)
		}
	}
	got := recvN(t, server, n)
	reordered := false
	prev := id.ClientID(0)
	for _, m := range got {
		u := m.(*protocol.GameUpdate)
		if u.Client < prev {
			reordered = true
		}
		prev = u.Client
	}
	if !reordered {
		t.Error("150ms jitter over 40 sends produced no reordering")
	}
}

func TestWrapNetworkImpairsBothDirections(t *testing.T) {
	inner := transport.NewMemNetwork()
	nw := WrapNetwork(inner, LinkConfig{Loss: 1}, 5)
	l, err := nw.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan transport.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	dialer, err := nw.Dial("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer dialer.Close()
	srv := <-accepted
	defer srv.Close()
	if _, ok := dialer.(*Conn); !ok {
		t.Fatal("dialed conn not wrapped")
	}
	if _, ok := srv.(*Conn); !ok {
		t.Fatal("accepted conn not wrapped")
	}
	if err := dialer.Send(update(1)); err != nil {
		t.Fatal(err)
	}
	if err := srv.Send(update(2)); err != nil {
		t.Fatal(err)
	}
	if st := dialer.(*Conn).Stats(); st.Lost != 1 {
		t.Errorf("dialer stats = %+v, want 1 lost", st)
	}
	if st := srv.(*Conn).Stats(); st.Lost != 1 {
		t.Errorf("server stats = %+v, want 1 lost", st)
	}
}

func TestCloseDiscardsQueuedSends(t *testing.T) {
	client, _ := connPair(t, LinkConfig{DelayMs: 5000}, 1)
	if err := client.Send(update(1)); err != nil {
		t.Fatal(err)
	}
	doneCh := make(chan error, 1)
	go func() { doneCh <- client.Close() }()
	select {
	case err := <-doneCh:
		if err != nil {
			t.Fatalf("Close = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close blocked on a queued delayed send")
	}
	if err := client.Send(update(2)); err == nil {
		t.Fatal("Send after Close succeeded")
	}
}
