// Package middleware implements the wire-path interceptor chain the hosts
// run on every inbound frame before it reaches the game server: per-client
// rate limiting, overload admission control, session auth and async audit
// — the protocol-level guard rails the paper's adaptive middleware assumes
// but never specifies.
//
// The chain follows the classic functional-middleware shape:
//
//	type Handler func(req *Request) Verdict
//	type Middleware func(next Handler) Handler
//
// Middlewares registered first run first on the request path; code they
// run after calling next executes in reverse order (the response path).
// A stage short-circuits by returning a non-Admit verdict without calling
// next.
//
// The chain is allocation-free in steady state: it is composed once at
// construction, the Request is caller-owned and reused across frames, and
// every stage keeps its hot state in pre-resolved atomic counters or
// per-client buckets — never behind a map lookup that allocates. The same
// chain judges frames deterministically inside the simulation (the caller
// supplies the virtual clock through Request.Now), so admission decisions
// fold into Result.Fingerprint byte-for-byte.
package middleware

import (
	"fmt"

	"matrix/internal/id"
	"matrix/internal/protocol"
)

// Source classifies where a frame entered the host.
type Source uint8

// Frame sources.
const (
	// SourceClient marks frames arriving on a game client's connection.
	SourceClient Source = iota + 1
	// SourcePeer marks frames arriving from a peer Matrix server.
	SourcePeer
)

// String implements fmt.Stringer.
func (s Source) String() string {
	switch s {
	case SourceClient:
		return "client"
	case SourcePeer:
		return "peer"
	default:
		return fmt.Sprintf("source(%d)", uint8(s))
	}
}

// Verdict is the chain's admission decision for one frame.
type Verdict uint8

// Verdicts. Admit is the zero value so an empty chain admits everything.
const (
	// Admit delivers the frame.
	Admit Verdict = iota
	// DropRateLimited rejects a frame that exceeded its client's token
	// bucket.
	DropRateLimited
	// DropOverload sheds a data-plane frame because the receive queue is
	// past the admission threshold.
	DropOverload
	// DropAuth rejects a ClientHello whose session token failed
	// verification.
	DropAuth
)

// Admitted reports whether the frame should be delivered.
func (v Verdict) Admitted() bool { return v == Admit }

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case Admit:
		return "admit"
	case DropRateLimited:
		return "rate-limited"
	case DropOverload:
		return "overload-shed"
	case DropAuth:
		return "auth-rejected"
	default:
		return fmt.Sprintf("verdict(%d)", uint8(v))
	}
}

// Request is the request-scoped context threaded through the chain for one
// frame. Callers own it and reuse it across frames (one per connection
// pump, one per simulation), so judging a frame allocates nothing. Stages
// may write fields (Auth sets Authenticated) and later stages observe the
// writes — that is the context-propagation contract.
type Request struct {
	// Source says which kind of connection delivered the frame.
	Source Source
	// Client is the acting client (SourceClient frames).
	Client id.ClientID
	// Peer is the sending Matrix server (SourcePeer frames).
	Peer id.ServerID
	// Msg is the decoded frame under judgment.
	Msg protocol.Message
	// Now is the host clock in seconds. Live hosts pass monotonic wall
	// time; the simulation passes its virtual clock, which is what makes
	// rate-limit decisions deterministic there.
	Now float64
	// QueueLen is the receiving game server's current queue length, the
	// admission stage's load signal.
	QueueLen int
	// Authenticated is set by the auth stage once the session token
	// verifies; downstream stages and the host may trust it.
	Authenticated bool
}

// Handler judges one frame.
type Handler func(req *Request) Verdict

// Middleware wraps a handler with one stage of the chain.
type Middleware func(next Handler) Handler

// Compose builds the chain's handler. mws[0] is the outermost stage: first
// to see the request, last to see the response. The wrap runs in reverse
// so registration order equals request order.
func Compose(mws ...Middleware) Handler {
	h := admitAll
	for i := len(mws) - 1; i >= 0; i-- {
		h = mws[i](h)
	}
	return h
}

// admitAll is the chain's innermost handler.
func admitAll(*Request) Verdict { return Admit }

// Chain is an assembled interceptor chain plus the state its stages share:
// the stats block, the rate limiter (for snapshots) and the auditor (for
// shutdown).
type Chain struct {
	handler Handler
	stats   *Stats
	limiter *RateLimiter
	auditor *Auditor
}

// New assembles the standard chain cfg describes. The observe stage is
// always installed outermost so Stats sees the final verdict of every
// frame regardless of which stage produced it.
func New(cfg Config) (*Chain, error) {
	if err := validateStages(cfg.Stages); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	c := &Chain{stats: &Stats{}}
	mws := make([]Middleware, 0, len(cfg.Stages)+1)
	mws = append(mws, Observe(c.stats))
	for _, s := range cfg.Stages {
		switch s {
		case StageAuth:
			if cfg.AuthSecret == "" {
				return nil, fmt.Errorf("middleware: stage %q requires an auth secret", s)
			}
			mws = append(mws, Auth(cfg.AuthSecret))
		case StageRateLimit:
			if err := ValidateRate(cfg.RateLimitPerSec); err != nil {
				return nil, err
			}
			c.limiter = NewRateLimiter(cfg.RateLimitPerSec, cfg.RateLimitBurst)
			mws = append(mws, c.limiter.Middleware())
		case StageAdmission:
			if cfg.ShedQueue <= 0 {
				return nil, fmt.Errorf("middleware: shed queue must be positive (got %d)", cfg.ShedQueue)
			}
			mws = append(mws, Admission(cfg.ShedQueue))
		case StageAudit:
			c.auditor = NewAuditor(cfg.AuditBuffer, &c.stats.AuditLost, cfg.AuditSink)
			mws = append(mws, c.auditor.Middleware())
		}
	}
	c.handler = Compose(mws...)
	return c, nil
}

// Handle judges one frame. Safe for concurrent use when the stages are
// (all built-ins are); each caller must pass its own Request.
func (c *Chain) Handle(req *Request) Verdict { return c.handler(req) }

// Stats exposes the chain's decision counters.
func (c *Chain) Stats() *Stats { return c.stats }

// Limiter returns the rate-limit stage's limiter, nil when not installed.
func (c *Chain) Limiter() *RateLimiter { return c.limiter }

// Close flushes and stops the audit goroutine, if any.
func (c *Chain) Close() {
	if c.auditor != nil {
		c.auditor.Close()
	}
}
