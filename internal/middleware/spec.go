package middleware

import (
	"fmt"
	"strings"
)

// Stage names accepted in a -middleware spec.
const (
	StageAuth      = "auth"
	StageRateLimit = "ratelimit"
	StageAdmission = "admission"
	StageAudit     = "audit"
)

// knownStages is the error-message rendering of the stage set.
const knownStages = "auth, ratelimit, admission, audit"

// Config assembles a standard chain from the CLI-facing knobs.
type Config struct {
	// Stages lists the built-in stages to install, in registration order
	// (= request order). Empty disables the chain.
	Stages []string
	// AuthSecret is the shared session token the auth stage requires on
	// every ClientHello. Mandatory when Stages includes "auth".
	AuthSecret string
	// RateLimitPerSec is the per-client sustained admission rate for the
	// ratelimit stage (0 = default 200 updates/sec; negative is an error).
	RateLimitPerSec float64
	// RateLimitBurst is the token-bucket depth (<=0 = 2x RateLimitPerSec).
	RateLimitBurst float64
	// ShedQueue is the receive-queue length at which the admission stage
	// starts shedding data-plane frames (0 = default 5000).
	ShedQueue int
	// AuditBuffer bounds the async audit queue (<=0 = 1024).
	AuditBuffer int
	// AuditSink receives audited events on the auditor's goroutine
	// (nil = overflow-counted only).
	AuditSink func(Event)
}

// Enabled reports whether the config installs any stage at all.
func (c Config) Enabled() bool { return len(c.Stages) > 0 }

// withDefaults fills the zero-value knobs.
func (c Config) withDefaults() Config {
	if c.RateLimitPerSec == 0 {
		c.RateLimitPerSec = 200
	}
	if c.RateLimitBurst <= 0 {
		c.RateLimitBurst = 2 * c.RateLimitPerSec
	}
	if c.ShedQueue == 0 {
		c.ShedQueue = 5000
	}
	if c.AuditBuffer <= 0 {
		c.AuditBuffer = 1024
	}
	return c
}

// ParseSpec parses a -middleware stage list such as
// "auth,ratelimit,admission,audit". Order is preserved — it becomes the
// chain's registration order. An empty spec yields a nil list (chain
// disabled). Errors follow netem.ParseSpec's shape: the offending element
// quoted, with what was expected.
func ParseSpec(spec string) ([]string, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	parts := strings.Split(spec, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		s := strings.ToLower(strings.TrimSpace(p))
		if s == "" {
			return nil, fmt.Errorf("middleware: bad spec element %q (want a stage name: %s)", p, knownStages)
		}
		out = append(out, s)
	}
	if err := validateStages(out); err != nil {
		return nil, err
	}
	return out, nil
}

// validateStages rejects unknown and duplicate stage names.
func validateStages(stages []string) error {
	var seen [4]bool
	idx := func(s string) int {
		switch s {
		case StageAuth:
			return 0
		case StageRateLimit:
			return 1
		case StageAdmission:
			return 2
		case StageAudit:
			return 3
		}
		return -1
	}
	for _, s := range stages {
		i := idx(s)
		if i < 0 {
			return fmt.Errorf("middleware: unknown stage %q (known: %s)", s, knownStages)
		}
		if seen[i] {
			return fmt.Errorf("middleware: duplicate stage %q", s)
		}
		seen[i] = true
	}
	return nil
}

// ValidateRate rejects a non-positive (or NaN) rate limit, the parse-time
// guard behind the -rate-limit flag.
func ValidateRate(perSec float64) error {
	if !(perSec > 0) {
		return fmt.Errorf("middleware: rate limit must be positive (got %v)", perSec)
	}
	return nil
}
