package middleware

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"matrix/internal/id"
	"matrix/internal/metrics"
	"matrix/internal/netem"
	"matrix/internal/protocol"
)

// --- session auth ---

// Auth verifies the session token on every ClientHello arriving from a
// client connection: a mismatch rejects the frame with DropAuth, a match
// marks the request Authenticated for downstream stages. Frames that are
// not client hellos pass through untouched — peers and the coordinator
// authenticate by topology (they are dialed, not dialing).
func Auth(secret string) Middleware {
	return func(next Handler) Handler {
		return func(req *Request) Verdict {
			if hello, ok := req.Msg.(*protocol.ClientHello); ok && req.Source == SourceClient {
				if hello.Token != secret {
					return DropAuth
				}
				req.Authenticated = true
			}
			return next(req)
		}
	}
}

// --- per-client token-bucket rate limiting ---

// bucket is one client's token bucket. Tokens refill continuously at the
// limiter's rate up to the burst depth; each admitted update spends one.
type bucket struct {
	tokens float64
	last   float64 // clock seconds of the last refill
}

// RateLimiter admits per-client game updates at a sustained rate with a
// bounded burst. Buckets are keyed by client ID and refilled lazily from
// Request.Now, so the same limiter is exact on a wall clock (live host)
// and on the simulation's virtual clock (deterministic).
type RateLimiter struct {
	perSec float64
	burst  float64

	mu      sync.Mutex
	buckets map[id.ClientID]*bucket
}

// NewRateLimiter builds a limiter admitting perSec updates/sec sustained
// with bursts up to burst (<=0 defaults to 2*perSec).
func NewRateLimiter(perSec, burst float64) *RateLimiter {
	if burst <= 0 {
		burst = 2 * perSec
	}
	return &RateLimiter{perSec: perSec, burst: burst, buckets: make(map[id.ClientID]*bucket)}
}

// Middleware returns the chain stage. Only client-sourced game updates are
// limited; control messages, peer forwards and despawns (dropping a leave
// would strand a ghost avatar) always pass.
func (l *RateLimiter) Middleware() Middleware {
	return func(next Handler) Handler {
		return func(req *Request) Verdict {
			if req.Source == SourceClient && rateLimited(req.Msg) && !l.Allow(req.Client, req.Now) {
				return DropRateLimited
			}
			return next(req)
		}
	}
}

// rateLimited reports whether m is subject to per-client rate limiting.
func rateLimited(m protocol.Message) bool {
	u, ok := m.(*protocol.GameUpdate)
	return ok && u.Kind != protocol.KindDespawn
}

// Allow spends one token from c's bucket at clock second now, reporting
// whether one was available. A client's first frame allocates its bucket;
// after that the path is a map hit under a mutex — no allocation.
func (l *RateLimiter) Allow(c id.ClientID, now float64) bool {
	l.mu.Lock()
	b, ok := l.buckets[c]
	if !ok {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[c] = b
	}
	if now > b.last {
		b.tokens += (now - b.last) * l.perSec
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	admitted := b.tokens >= 1
	if admitted {
		b.tokens--
	}
	l.mu.Unlock()
	return admitted
}

// Forget drops a client's bucket (the client disconnected).
func (l *RateLimiter) Forget(c id.ClientID) {
	l.mu.Lock()
	delete(l.buckets, c)
	l.mu.Unlock()
}

// Reset drops every bucket — what a process restart does to limiter state,
// which is exactly how the simulation models node crashes.
func (l *RateLimiter) Reset() {
	l.mu.Lock()
	l.buckets = make(map[id.ClientID]*bucket)
	l.mu.Unlock()
}

// BucketState is one client bucket's snapshot.
type BucketState struct {
	Client id.ClientID
	Tokens float64
	Last   float64
}

// State snapshots every bucket sorted by client ID, so encoding a state
// twice is byte-identical (the snapshot subsystem's golden contract).
func (l *RateLimiter) State() []BucketState {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]BucketState, 0, len(l.buckets))
	for c, b := range l.buckets {
		out = append(out, BucketState{Client: c, Tokens: b.tokens, Last: b.last})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Client < out[j].Client })
	return out
}

// SetState replaces the limiter's buckets with a snapshot.
func (l *RateLimiter) SetState(bs []BucketState) {
	l.mu.Lock()
	l.buckets = make(map[id.ClientID]*bucket, len(bs))
	for _, b := range bs {
		l.buckets[b.Client] = &bucket{tokens: b.Tokens, last: b.Last}
	}
	l.mu.Unlock()
}

// --- overload admission control ---

// Admission sheds data-plane frames (netem.DataPlane: GameUpdate and
// Forward) once the receiving queue reaches shedQueue, while control-plane
// messages always pass: under overload the chain degrades game fidelity
// before it degrades cluster coordination — the same priority the paper's
// split machinery relies on to dig a server out of a flash crowd. Despawns
// are exempt like everywhere else: dropping a leave strands a ghost.
func Admission(shedQueue int) Middleware {
	return func(next Handler) Handler {
		return func(req *Request) Verdict {
			if req.QueueLen >= shedQueue && Sheddable(req.Msg) {
				return DropOverload
			}
			return next(req)
		}
	}
}

// Sheddable reports whether m may be dropped under overload: data plane
// per netem's classification, minus despawns. Exported so the simulator's
// deterministic admission path shares the exact wire-path classification.
func Sheddable(m protocol.Message) bool {
	if !netem.DataPlane(m) {
		return false // control plane: never shed
	}
	switch u := m.(type) {
	case *protocol.GameUpdate:
		return u.Kind != protocol.KindDespawn
	case *protocol.Forward:
		return u.Update.Kind != protocol.KindDespawn
	}
	return true
}

// --- decision metrics ---

// Stats aggregates the chain's decisions in pre-resolved atomic counters:
// a fixed array indexed by MsgType plus one counter per drop reason, so
// the hot path never touches a map or a lock.
type Stats struct {
	// Admitted counts delivered frames by message type.
	Admitted [protocol.NumMsgTypes]metrics.Counter
	// RateLimited counts frames dropped by the ratelimit stage.
	RateLimited metrics.Counter
	// Shed counts frames dropped by the admission stage.
	Shed metrics.Counter
	// AuthFailed counts hellos rejected by the auth stage.
	AuthFailed metrics.Counter
	// AuditLost counts audit events discarded because the async queue was
	// full (the hot path never blocks on the auditor).
	AuditLost metrics.Counter
}

// Observe counts verdicts into st. The accounting runs after next returns
// — on the response path — so it observes the chain's final decision no
// matter which inner stage produced it; New installs it outermost.
func Observe(st *Stats) Middleware {
	return func(next Handler) Handler {
		return func(req *Request) Verdict {
			v := next(req)
			switch v {
			case Admit:
				if t := int(req.Msg.MsgType()); t > 0 && t < len(st.Admitted) {
					st.Admitted[t].Inc()
				}
			case DropRateLimited:
				st.RateLimited.Inc()
			case DropOverload:
				st.Shed.Inc()
			case DropAuth:
				st.AuthFailed.Inc()
			}
			return v
		}
	}
}

// WritePrometheus renders the stats in the Prometheus text exposition
// format (scrape-time only; allocation here is fine).
func (st *Stats) WritePrometheus(w io.Writer) {
	fmt.Fprintf(w, "# TYPE matrix_mw_admitted_total counter\n")
	for t := 1; t < len(st.Admitted); t++ {
		if v := st.Admitted[t].Value(); v > 0 {
			fmt.Fprintf(w, "matrix_mw_admitted_total{type=%q} %d\n", protocol.MsgType(t).String(), v)
		}
	}
	fmt.Fprintf(w, "# TYPE matrix_mw_dropped_total counter\n")
	fmt.Fprintf(w, "matrix_mw_dropped_total{reason=\"rate-limited\"} %d\n", st.RateLimited.Value())
	fmt.Fprintf(w, "matrix_mw_dropped_total{reason=\"overload-shed\"} %d\n", st.Shed.Value())
	fmt.Fprintf(w, "matrix_mw_dropped_total{reason=\"auth-rejected\"} %d\n", st.AuthFailed.Value())
	fmt.Fprintf(w, "# TYPE matrix_mw_audit_lost_total counter\nmatrix_mw_audit_lost_total %d\n", st.AuditLost.Value())
}

// --- async audit export ---

// Event is one audited admission decision.
type Event struct {
	Time    float64
	Source  Source
	Client  id.ClientID
	Peer    id.ServerID
	Type    protocol.MsgType
	Verdict Verdict
}

// Auditor exports drop decisions asynchronously: the stage does a
// non-blocking send of an Event value into a bounded channel and one
// background goroutine drains it into the sink. A full queue counts the
// event as lost instead of ever blocking a frame.
type Auditor struct {
	ch   chan Event
	lost *metrics.Counter
	wg   sync.WaitGroup
}

// NewAuditor starts the drain goroutine. buffer <= 0 defaults to 1024;
// sink may be nil (events are then dropped after counting, which still
// exercises the queue for tests). lost, when non-nil, counts overflow.
func NewAuditor(buffer int, lost *metrics.Counter, sink func(Event)) *Auditor {
	if buffer <= 0 {
		buffer = 1024
	}
	a := &Auditor{ch: make(chan Event, buffer), lost: lost}
	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		for e := range a.ch {
			if sink != nil {
				sink(e)
			}
		}
	}()
	return a
}

// Middleware returns the chain stage: non-admit verdicts are audited on
// the response path.
func (a *Auditor) Middleware() Middleware {
	return func(next Handler) Handler {
		return func(req *Request) Verdict {
			v := next(req)
			if v != Admit {
				select {
				case a.ch <- Event{Time: req.Now, Source: req.Source, Client: req.Client, Peer: req.Peer, Type: req.Msg.MsgType(), Verdict: v}:
				default:
					if a.lost != nil {
						a.lost.Inc()
					}
				}
			}
			return v
		}
	}
}

// Close flushes the queue and stops the drain goroutine.
func (a *Auditor) Close() {
	close(a.ch)
	a.wg.Wait()
}
