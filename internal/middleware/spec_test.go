package middleware

import (
	"math"
	"strings"
	"testing"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		spec    string
		want    []string
		wantErr string
	}{
		{spec: "", want: nil},
		{spec: "   ", want: nil},
		{spec: "ratelimit", want: []string{"ratelimit"}},
		{spec: "auth,ratelimit,admission,audit", want: []string{"auth", "ratelimit", "admission", "audit"}},
		// Order is preserved (registration order = request order).
		{spec: "admission,ratelimit", want: []string{"admission", "ratelimit"}},
		// Whitespace and case are forgiven.
		{spec: " Auth , RATELIMIT ", want: []string{"auth", "ratelimit"}},
		{spec: "auth,,ratelimit", wantErr: "bad spec element"},
		{spec: "ratelimit,", wantErr: "bad spec element"},
		{spec: "throttle", wantErr: `unknown stage "throttle"`},
		{spec: "auth,auth", wantErr: `duplicate stage "auth"`},
	}
	for _, tc := range cases {
		t.Run(tc.spec, func(t *testing.T) {
			got, err := ParseSpec(tc.spec)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("ParseSpec(%q) error = %v, want containing %q", tc.spec, err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseSpec(%q) error = %v", tc.spec, err)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("ParseSpec(%q) = %v, want %v", tc.spec, got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("ParseSpec(%q) = %v, want %v", tc.spec, got, tc.want)
				}
			}
		})
	}
}

func TestValidateRate(t *testing.T) {
	for _, bad := range []float64{0, -1, -0.5, math.NaN(), math.Inf(-1)} {
		if err := ValidateRate(bad); err == nil || !strings.Contains(err.Error(), "rate limit must be positive") {
			t.Fatalf("ValidateRate(%v) = %v, want positive-rate error", bad, err)
		}
	}
	for _, good := range []float64{0.1, 1, 200, math.Inf(1)} {
		if err := ValidateRate(good); err != nil {
			t.Fatalf("ValidateRate(%v) = %v, want nil", good, err)
		}
	}
}
