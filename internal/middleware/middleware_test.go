package middleware

import (
	"strings"
	"testing"

	"matrix/internal/geom"
	"matrix/internal/id"
	"matrix/internal/protocol"
)

func update(c id.ClientID, kind protocol.UpdateKind) *protocol.GameUpdate {
	return &protocol.GameUpdate{Client: c, Kind: kind, Origin: geom.Pt(1, 2), Dest: geom.Pt(1, 2)}
}

func clientReq(m protocol.Message) *Request {
	return &Request{Source: SourceClient, Client: 7, Msg: m}
}

// tag appends a label on the request path and another on the response
// path, recording the chain's traversal order.
func tag(log *[]string, name string) Middleware {
	return func(next Handler) Handler {
		return func(req *Request) Verdict {
			*log = append(*log, name+"-req")
			v := next(req)
			*log = append(*log, name+"-resp")
			return v
		}
	}
}

func TestComposeOrdering(t *testing.T) {
	var log []string
	h := Compose(tag(&log, "a"), tag(&log, "b"), tag(&log, "c"))
	if v := h(clientReq(update(7, protocol.KindMove))); v != Admit {
		t.Fatalf("verdict = %v, want admit", v)
	}
	want := []string{"a-req", "b-req", "c-req", "c-resp", "b-resp", "a-resp"}
	if len(log) != len(want) {
		t.Fatalf("log = %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log[%d] = %q, want %q (full: %v)", i, log[i], want[i], log)
		}
	}
}

func TestComposeShortCircuit(t *testing.T) {
	var log []string
	deny := func(next Handler) Handler {
		return func(req *Request) Verdict { return DropOverload }
	}
	h := Compose(tag(&log, "outer"), deny, tag(&log, "inner"))
	if v := h(clientReq(update(7, protocol.KindMove))); v != DropOverload {
		t.Fatalf("verdict = %v, want overload-shed", v)
	}
	// The inner stage never ran; the outer stage still saw the response.
	want := []string{"outer-req", "outer-resp"}
	if len(log) != 2 || log[0] != want[0] || log[1] != want[1] {
		t.Fatalf("log = %v, want %v", log, want)
	}
}

func TestContextPropagation(t *testing.T) {
	var sawAuth bool
	inspect := func(next Handler) Handler {
		return func(req *Request) Verdict {
			sawAuth = req.Authenticated
			return next(req)
		}
	}
	h := Compose(Auth("sesame"), inspect)

	hello := &protocol.ClientHello{Client: 7, Token: "sesame"}
	req := clientReq(hello)
	if v := h(req); v != Admit {
		t.Fatalf("verdict = %v, want admit", v)
	}
	if !sawAuth {
		t.Fatal("downstream stage did not observe Authenticated set by auth")
	}
	if !req.Authenticated {
		t.Fatal("caller did not observe Authenticated")
	}
}

func TestAuth(t *testing.T) {
	h := Compose(Auth("sesame"))
	if v := h(clientReq(&protocol.ClientHello{Client: 7, Token: "wrong"})); v != DropAuth {
		t.Fatalf("bad token: verdict = %v, want auth-rejected", v)
	}
	if v := h(clientReq(&protocol.ClientHello{Client: 7})); v != DropAuth {
		t.Fatalf("missing token: verdict = %v, want auth-rejected", v)
	}
	if v := h(clientReq(&protocol.ClientHello{Client: 7, Token: "sesame"})); v != Admit {
		t.Fatalf("good token: verdict = %v, want admit", v)
	}
	// Non-hello frames are not auth's business.
	if v := h(clientReq(update(7, protocol.KindMove))); v != Admit {
		t.Fatalf("update: verdict = %v, want admit", v)
	}
	// Peer-sourced hellos (state replay) are not authenticated either.
	if v := h(&Request{Source: SourcePeer, Peer: 2, Msg: &protocol.ClientHello{Client: 7}}); v != Admit {
		t.Fatalf("peer hello: verdict = %v, want admit", v)
	}
}

func TestRateLimit(t *testing.T) {
	l := NewRateLimiter(10, 2) // 10/sec sustained, burst of 2
	h := Compose(l.Middleware())

	req := clientReq(update(7, protocol.KindMove))
	// The burst admits two back-to-back frames, the third drops.
	for i := 0; i < 2; i++ {
		if v := h(req); v != Admit {
			t.Fatalf("burst frame %d: verdict = %v, want admit", i, v)
		}
	}
	if v := h(req); v != DropRateLimited {
		t.Fatalf("over burst: verdict = %v, want rate-limited", v)
	}
	// 100ms refills one token at 10/sec.
	req.Now = 0.1
	if v := h(req); v != Admit {
		t.Fatalf("after refill: verdict = %v, want admit", v)
	}
	if v := h(req); v != DropRateLimited {
		t.Fatalf("refill spent: verdict = %v, want rate-limited", v)
	}
	// Despawns are exempt: dropping a leave strands a ghost avatar.
	if v := h(clientReq(update(7, protocol.KindDespawn))); v != Admit {
		t.Fatalf("despawn: verdict = %v, want admit", v)
	}
	// Control-plane frames are exempt.
	if v := h(clientReq(&protocol.ClientHello{Client: 7})); v != Admit {
		t.Fatalf("hello: verdict = %v, want admit", v)
	}
	// Peer forwards are not client-limited.
	fwd := &protocol.Forward{From: 2, Update: *update(7, protocol.KindMove)}
	if v := h(&Request{Source: SourcePeer, Peer: 2, Msg: fwd}); v != Admit {
		t.Fatalf("peer forward: verdict = %v, want admit", v)
	}
	// Another client has its own bucket.
	other := &Request{Source: SourceClient, Client: 8, Msg: update(8, protocol.KindMove)}
	if v := h(other); v != Admit {
		t.Fatalf("other client: verdict = %v, want admit", v)
	}
	// Forget resets client 7 to a fresh (full) bucket.
	l.Forget(7)
	req.Now = 0.1 // unchanged clock: only the reset explains an admit
	if v := h(req); v != Admit {
		t.Fatalf("after forget: verdict = %v, want admit", v)
	}
}

func TestRateLimiterState(t *testing.T) {
	l := NewRateLimiter(10, 2)
	l.Allow(9, 0.5)
	l.Allow(3, 1.0)
	l.Allow(3, 1.0)
	st := l.State()
	if len(st) != 2 || st[0].Client != 3 || st[1].Client != 9 {
		t.Fatalf("state not sorted by client: %+v", st)
	}
	restored := NewRateLimiter(10, 2)
	restored.SetState(st)
	// Client 3 spent its burst at t=1.0; both limiters must agree.
	if l.Allow(3, 1.0) != restored.Allow(3, 1.0) {
		t.Fatal("restored limiter disagrees with original")
	}
	rst := restored.State()
	if len(rst) != len(st) {
		t.Fatalf("restored state has %d buckets, want %d", len(rst), len(st))
	}
}

func TestAdmission(t *testing.T) {
	h := Compose(Admission(100))

	overloaded := func(m protocol.Message) *Request {
		r := clientReq(m)
		r.QueueLen = 100
		return r
	}
	// Below threshold everything passes.
	if v := h(clientReq(update(7, protocol.KindMove))); v != Admit {
		t.Fatalf("under threshold: verdict = %v, want admit", v)
	}
	// At threshold, data plane sheds...
	if v := h(overloaded(update(7, protocol.KindMove))); v != DropOverload {
		t.Fatalf("update at threshold: verdict = %v, want overload-shed", v)
	}
	fwd := &protocol.Forward{From: 2, Update: *update(7, protocol.KindAction)}
	if v := h(overloaded(fwd)); v != DropOverload {
		t.Fatalf("forward at threshold: verdict = %v, want overload-shed", v)
	}
	// ...but control plane and despawns always pass.
	if v := h(overloaded(&protocol.ClientHello{Client: 7})); v != Admit {
		t.Fatalf("hello at threshold: verdict = %v, want admit", v)
	}
	if v := h(overloaded(&protocol.LoadReport{Server: 1})); v != Admit {
		t.Fatalf("load report at threshold: verdict = %v, want admit", v)
	}
	if v := h(overloaded(update(7, protocol.KindDespawn))); v != Admit {
		t.Fatalf("despawn at threshold: verdict = %v, want admit", v)
	}
	despawnFwd := &protocol.Forward{From: 2, Update: *update(7, protocol.KindDespawn)}
	if v := h(overloaded(despawnFwd)); v != Admit {
		t.Fatalf("despawn forward at threshold: verdict = %v, want admit", v)
	}
}

func TestObserveAndAudit(t *testing.T) {
	var events []Event
	ch, err := New(Config{
		Stages:          []string{StageAudit, StageRateLimit, StageAdmission},
		RateLimitPerSec: 10,
		RateLimitBurst:  1,
		ShedQueue:       100,
		AuditSink:       func(e Event) { events = append(events, e) },
	})
	if err != nil {
		t.Fatal(err)
	}

	req := clientReq(update(7, protocol.KindMove))
	if v := ch.Handle(req); v != Admit {
		t.Fatalf("first: verdict = %v, want admit", v)
	}
	if v := ch.Handle(req); v != DropRateLimited {
		t.Fatalf("second: verdict = %v, want rate-limited", v)
	}
	shedReq := clientReq(update(8, protocol.KindMove))
	shedReq.Client = 8
	shedReq.QueueLen = 100
	if v := ch.Handle(shedReq); v != DropOverload {
		t.Fatalf("overload: verdict = %v, want overload-shed", v)
	}
	ch.Close() // flush the audit queue

	st := ch.Stats()
	if got := st.Admitted[protocol.TypeGameUpdate].Value(); got != 1 {
		t.Fatalf("admitted game updates = %d, want 1", got)
	}
	if got := st.RateLimited.Value(); got != 1 {
		t.Fatalf("rate limited = %d, want 1", got)
	}
	if got := st.Shed.Value(); got != 1 {
		t.Fatalf("shed = %d, want 1", got)
	}
	if len(events) != 2 {
		t.Fatalf("audited events = %d, want 2 (%+v)", len(events), events)
	}
	if events[0].Verdict != DropRateLimited || events[0].Client != 7 {
		t.Fatalf("event 0 = %+v, want rate-limited client 7", events[0])
	}
	if events[1].Verdict != DropOverload || events[1].Client != 7+1 {
		t.Fatalf("event 1 = %+v, want overload-shed client 8", events[1])
	}

	var b strings.Builder
	st.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`matrix_mw_admitted_total{type="game-update"} 1`,
		`matrix_mw_dropped_total{reason="rate-limited"} 1`,
		`matrix_mw_dropped_total{reason="overload-shed"} 1`,
		"matrix_mw_audit_lost_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestNewConfigErrors(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"unknown stage", Config{Stages: []string{"squelch"}}, "unknown stage"},
		{"duplicate stage", Config{Stages: []string{StageAudit, StageAudit}}, "duplicate stage"},
		{"auth without secret", Config{Stages: []string{StageAuth}}, "requires an auth secret"},
		{"negative rate", Config{Stages: []string{StageRateLimit}, RateLimitPerSec: -3}, "rate limit must be positive"},
		{"negative shed queue", Config{Stages: []string{StageAdmission}, ShedQueue: -1}, "shed queue must be positive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.cfg)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("New(%+v) error = %v, want containing %q", tc.cfg, err, tc.want)
			}
		})
	}
	// The empty config is the disabled chain: valid and admit-everything.
	ch, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer ch.Close()
	if v := ch.Handle(clientReq(update(7, protocol.KindMove))); v != Admit {
		t.Fatalf("empty chain verdict = %v, want admit", v)
	}
}

// TestChainAllocs pins the PR 2 contract on the new hot path: judging a
// frame through the full four-stage chain allocates nothing in steady
// state (after the client's token bucket exists).
func TestChainAllocs(t *testing.T) {
	ch, err := New(Config{
		Stages:          []string{StageAuth, StageRateLimit, StageAdmission, StageAudit},
		AuthSecret:      "sesame",
		RateLimitPerSec: 1e9, // never limits: the steady state is the admit path
		ShedQueue:       1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ch.Close()

	req := clientReq(update(7, protocol.KindMove))
	ch.Handle(req) // warm up: allocates client 7's bucket
	allocs := testing.AllocsPerRun(1000, func() {
		req.Now += 1e-6
		if v := ch.Handle(req); v != Admit {
			t.Fatalf("verdict = %v, want admit", v)
		}
	})
	if allocs != 0 {
		t.Fatalf("chain hot path allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestChainDropAllocs pins the drop paths too: a rate-limited frame with
// the audit stage active must also stay allocation-free (the audit event
// is a value send into a buffered channel).
func TestChainDropAllocs(t *testing.T) {
	ch, err := New(Config{
		Stages:          []string{StageRateLimit, StageAdmission, StageAudit},
		RateLimitPerSec: 1e-9, // never refills: the steady state is the drop path
		RateLimitBurst:  1,
		ShedQueue:       1 << 20,
		AuditBuffer:     8, // overflows immediately; overflow must not allocate either
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ch.Close()

	req := clientReq(update(7, protocol.KindMove))
	ch.Handle(req)
	allocs := testing.AllocsPerRun(1000, func() {
		if v := ch.Handle(req); v != DropRateLimited {
			t.Fatalf("verdict = %v, want rate-limited", v)
		}
	})
	if allocs != 0 {
		t.Fatalf("chain drop path allocates %.1f allocs/op, want 0", allocs)
	}
}
