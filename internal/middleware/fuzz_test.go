package middleware

import (
	"strings"
	"testing"
)

// FuzzParseSpec throws arbitrary -middleware stage lists at the parser: it
// must never panic, anything it accepts must contain only known stages
// with no duplicates, and parsing the canonical re-join of an accepted
// list must accept it again with the same result (idempotent
// normalization).
func FuzzParseSpec(f *testing.F) {
	for _, seed := range []string{
		"",
		"auth",
		"auth,ratelimit,admission,audit",
		"AUDIT, auth",
		"auth,,audit",
		"auth,auth",
		"teleport",
		",",
		"auth,ratelimit,",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		stages, err := ParseSpec(spec)
		if err != nil {
			return
		}
		seen := make(map[string]bool, len(stages))
		for _, s := range stages {
			switch s {
			case StageAuth, StageRateLimit, StageAdmission, StageAudit:
			default:
				t.Fatalf("ParseSpec(%q) accepted unknown stage %q", spec, s)
			}
			if seen[s] {
				t.Fatalf("ParseSpec(%q) accepted duplicate stage %q", spec, s)
			}
			seen[s] = true
		}
		again, err := ParseSpec(strings.Join(stages, ","))
		if err != nil {
			t.Fatalf("re-parse of normalized %v failed: %v", stages, err)
		}
		if len(again) != len(stages) {
			t.Fatalf("re-parse of %v produced %v", stages, again)
		}
		for i := range stages {
			if again[i] != stages[i] {
				t.Fatalf("re-parse of %v produced %v", stages, again)
			}
		}
	})
}
