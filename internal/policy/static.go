package policy

import "matrix/internal/id"

// static is the straw man every adaptive policy is judged against: the
// fleet never reshapes itself. Splits and reclaims are both refused, so
// whatever partitioning the world started with (one root server, or a
// staticpart grid) persists for the whole run — experiment E8 pairs this
// policy with internal/staticpart's most-square grid to reproduce the
// paper's static baseline.
type static struct{}

func (static) Name() string { return "static" }

func (static) ShouldSplit(v LoadView) Verdict {
	return Verdict{Reason: "static partitioning never splits", Inputs: splitInputs(v)}
}

func (static) ShouldReclaim(v FamilyView) Verdict {
	return Verdict{Reason: "static partitioning never reclaims", Inputs: reclaimInputs(v)}
}

// PlaceChild and PickSpare keep the paper's behavior so a coordinator
// running this policy still handles an operator-forced split sanely.
func (static) PlaceChild(v SplitView) Placement { return paperPlacement(v) }
func (static) PickSpare(v PoolView) id.ServerID { return paperPickSpare(v) }

func (static) NoteEvent(Event)           {}
func (static) State() []byte             { return nil }
func (static) RestoreState([]byte) error { return nil }
