package policy

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"matrix/internal/geom"
	"matrix/internal/id"
)

// testThresholds are the paper's defaults, spelled out so the tables
// below read against concrete numbers.
func testThresholds() Thresholds {
	return Thresholds{
		OverloadClients:  300,
		UnderloadClients: 150,
		OverloadQueue:    3000,
		SplitCooldown:    2 * time.Second,
		ReclaimDwell:     3 * time.Second,
		ReclaimHeadroom:  0.75,
	}
}

func at(s float64) time.Time { return time.Unix(0, int64(s*float64(time.Second))) }

func TestRegistry(t *testing.T) {
	want := []string{"paper", "hysteresis", "predictive", "costaware", "static"}
	names := Names()
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("Names()[%d] = %q, want %q", i, names[i], n)
		}
		if Describe(n) == "" {
			t.Errorf("Describe(%q) is empty", n)
		}
		p, err := New(n)
		if err != nil {
			t.Fatalf("New(%q): %v", n, err)
		}
		if p.Name() != n {
			t.Errorf("New(%q).Name() = %q", n, p.Name())
		}
		if err := Valid(n); err != nil {
			t.Errorf("Valid(%q): %v", n, err)
		}
	}
	if Describe("nope") != "" {
		t.Errorf("Describe of unknown = %q", Describe("nope"))
	}
	p, err := New("")
	if err != nil || p.Name() != Default {
		t.Errorf("New(\"\") = %v, %v; want the %q policy", p, err, Default)
	}
	if _, err := New("nope"); err == nil || !strings.Contains(err.Error(), "paper") {
		t.Errorf("New(\"nope\") = %v; want an error listing the registered names", err)
	}
	if Normalize("") != Default || Normalize("costaware") != "costaware" {
		t.Errorf("Normalize: %q, %q", Normalize(""), Normalize("costaware"))
	}
}

func TestPaperShouldSplit(t *testing.T) {
	cfg := testThresholds()
	cases := []struct {
		name string
		v    LoadView
		act  bool
	}{
		{"under both thresholds", LoadView{Now: at(10), Clients: 299, QueueLen: 2999, Cfg: cfg}, false},
		{"client threshold", LoadView{Now: at(10), Clients: 300, Cfg: cfg}, true},
		{"queue threshold", LoadView{Now: at(10), Clients: 10, QueueLen: 3000, Cfg: cfg}, true},
		{"queue trigger off", LoadView{Now: at(10), Clients: 10, QueueLen: 9999,
			Cfg: Thresholds{OverloadClients: 300, SplitCooldown: 2 * time.Second}}, false},
		{"cooling down", LoadView{Now: at(10), Clients: 400, HaveSplit: true, LastSplit: at(9), Cfg: cfg}, false},
		{"cooldown served", LoadView{Now: at(12), Clients: 400, HaveSplit: true, LastSplit: at(9), Cfg: cfg}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			v := paper{}.ShouldSplit(c.v)
			if v.Act != c.act {
				t.Errorf("Act = %v (%s), want %v", v.Act, v.Reason, c.act)
			}
			if v.Reason == "" || len(v.Inputs) == 0 {
				t.Errorf("verdict must carry a reason and its inputs: %+v", v)
			}
		})
	}
}

func TestPaperShouldReclaim(t *testing.T) {
	cfg := testThresholds()
	child := ChildView{ID: 2, Known: true, Clients: 40, Below: true, BelowSince: at(10)}
	cases := []struct {
		name string
		v    FamilyView
		act  bool
	}{
		{"dwell served", FamilyView{Now: at(13), Clients: 50, Child: child, Cfg: cfg}, true},
		{"dwell not served", FamilyView{Now: at(12.9), Clients: 50, Child: child, Cfg: cfg}, false},
		{"not below", FamilyView{Now: at(20), Clients: 50,
			Child: ChildView{ID: 2, Known: true, Below: false}, Cfg: cfg}, false},
		{"below-since unset", FamilyView{Now: at(20), Clients: 50,
			Child: ChildView{ID: 2, Known: true, Below: true}, Cfg: cfg}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			v := paper{}.ShouldReclaim(c.v)
			if v.Act != c.act {
				t.Errorf("Act = %v (%s), want %v", v.Act, v.Reason, c.act)
			}
		})
	}
}

func TestPaperPlacementAndSpares(t *testing.T) {
	bounds := geom.R(0, 0, 100, 50)
	lo, hi := bounds.SplitHalf()
	p := paper{}.PlaceChild(SplitView{Parent: 1, Child: 2, Bounds: bounds, World: bounds})
	if p.Keep != hi || p.Give != lo {
		t.Errorf("paper placement = keep %v give %v, want keep %v give %v", p.Keep, p.Give, hi, lo)
	}
	if got := (paper{}).PickSpare(PoolView{}); got != id.None {
		t.Errorf("PickSpare on empty pool = %v, want None", got)
	}
	if got := (paper{}).PickSpare(PoolView{Spares: []id.ServerID{7, 3, 5}}); got != 7 {
		t.Errorf("PickSpare = %v, want the FIFO head 7", got)
	}
}

// TestHysteresisDwell pins the rival's defining behavior: overload must
// persist a full SplitCooldown before a split is requested, and the
// streak resets the moment load drops under the thresholds.
func TestHysteresisDwell(t *testing.T) {
	cfg := testThresholds()
	h := &hysteresis{}
	over := func(s float64) LoadView { return LoadView{Now: at(s), Clients: 400, Cfg: cfg} }
	under := func(s float64) LoadView { return LoadView{Now: at(s), Clients: 10, Cfg: cfg} }

	if v := h.ShouldSplit(over(10)); v.Act {
		t.Fatalf("first overload report split immediately: %+v", v)
	}
	if v := h.ShouldSplit(over(11.9)); v.Act {
		t.Fatalf("split before the dwell was served: %+v", v)
	}
	if v := h.ShouldSplit(over(12)); !v.Act {
		t.Fatalf("dwell served but no split: %+v", v)
	}
	// A dip resets the streak: the next overload starts a fresh dwell.
	h.ShouldSplit(under(13))
	if v := h.ShouldSplit(over(14)); v.Act {
		t.Fatalf("streak survived a dip under the thresholds: %+v", v)
	}
	if v := h.ShouldSplit(over(16)); !v.Act {
		t.Fatalf("fresh dwell served but no split: %+v", v)
	}
}

// TestPredictiveForecast pins the rival's defining behavior: a rising
// client count splits before the threshold is ever crossed, while flat
// load at the same level does not.
func TestPredictiveForecast(t *testing.T) {
	cfg := testThresholds()
	p := &predictive{}
	// 200 → 260 clients over 2s: slope 30/s, 5s forecast 410 ≥ 300.
	p.ShouldSplit(LoadView{Now: at(10), Clients: 200, Cfg: cfg})
	v := p.ShouldSplit(LoadView{Now: at(12), Clients: 260, Cfg: cfg})
	if !v.Act || !strings.Contains(v.Reason, "forecast") {
		t.Fatalf("rising load did not trigger a predictive split: %+v", v)
	}
	// Flat load at the same count never forecasts past the threshold.
	flat := &predictive{}
	flat.ShouldSplit(LoadView{Now: at(10), Clients: 260, Cfg: cfg})
	if v := flat.ShouldSplit(LoadView{Now: at(12), Clients: 260, Cfg: cfg}); v.Act {
		t.Fatalf("flat load triggered a predictive split: %+v", v)
	}
	// Actual overload still splits regardless of the trend.
	if v := flat.ShouldSplit(LoadView{Now: at(14), Clients: 300, Cfg: cfg}); !v.Act {
		t.Fatalf("overload did not split: %+v", v)
	}
	// History is bounded.
	for i := 0; i < 3*predictiveHistory; i++ {
		p.ShouldSplit(LoadView{Now: at(20 + float64(i)), Clients: 100, Cfg: cfg})
	}
	if len(p.hist) != predictiveHistory {
		t.Errorf("history grew to %d, want cap %d", len(p.hist), predictiveHistory)
	}
}

// TestCostawareChurn pins the rival's defining behavior: each recent
// topology event adds one full ReclaimDwell to the dwell a reclaim must
// serve, and events age out of the window.
func TestCostawareChurn(t *testing.T) {
	cfg := testThresholds()
	fam := func(s float64) FamilyView {
		return FamilyView{Now: at(s), Clients: 50,
			Child: ChildView{ID: 2, Known: true, Below: true, BelowSince: at(10)}, Cfg: cfg}
	}
	c := &costaware{}
	// No churn: behaves like paper (dwell 3s, served at t=13).
	if v := c.ShouldReclaim(fam(13)); !v.Act {
		t.Fatalf("no churn but reclaim denied: %+v", v)
	}
	// One recent event doubles the dwell: denied at t=13, granted at 16.
	c.NoteEvent(Event{Now: at(12), Kind: "split", Child: 3})
	if v := c.ShouldReclaim(fam(13)); v.Act {
		t.Fatalf("churn did not stretch the dwell: %+v", v)
	}
	if v := c.ShouldReclaim(fam(16)); !v.Act {
		t.Fatalf("stretched dwell served but reclaim denied: %+v", v)
	}
	// The event ages out of the window and the dwell relaxes back.
	if v := c.ShouldReclaim(fam(12 + costawareWindow.Seconds() + 1)); !v.Act {
		t.Fatalf("expired churn still stretches the dwell: %+v", v)
	}
	if len(c.eventsNs) != 0 {
		t.Errorf("expired events not pruned: %v", c.eventsNs)
	}
}

// TestCostawarePlacement pins the central-half rule: the piece whose
// center is nearer the world center is kept, the peripheral one given.
func TestCostawarePlacement(t *testing.T) {
	world := geom.R(0, 0, 1000, 1000)
	c := &costaware{}
	// A corner region: its low half hugs the corner, its high half faces
	// the center — keep the high half.
	p := c.PlaceChild(SplitView{Bounds: geom.R(0, 0, 500, 250), World: world})
	lo, hi := geom.R(0, 0, 500, 250).SplitHalf()
	if p.Keep != hi || p.Give != lo {
		t.Errorf("corner region: keep %v give %v, want keep %v give %v", p.Keep, p.Give, hi, lo)
	}
	// Mirrored on the far side: the low half is the central one.
	p = c.PlaceChild(SplitView{Bounds: geom.R(500, 750, 1000, 1000), World: world})
	lo, hi = geom.R(500, 750, 1000, 1000).SplitHalf()
	if p.Keep != lo || p.Give != hi {
		t.Errorf("far region: keep %v give %v, want keep %v give %v", p.Keep, p.Give, lo, hi)
	}
}

func TestStaticDeniesEverything(t *testing.T) {
	cfg := testThresholds()
	s := static{}
	if v := s.ShouldSplit(LoadView{Now: at(10), Clients: 9999, QueueLen: 99999, Cfg: cfg}); v.Act {
		t.Errorf("static split granted: %+v", v)
	}
	v := s.ShouldReclaim(FamilyView{Now: at(99), Clients: 0,
		Child: ChildView{ID: 2, Known: true, Below: true, BelowSince: at(1)}, Cfg: cfg})
	if v.Act {
		t.Errorf("static reclaim granted: %+v", v)
	}
}

// TestStateRoundTrip drives every registered policy through some
// decisions, snapshots its state, restores it into a fresh instance and
// checks the re-captured state is byte-identical — the determinism
// contract snapshot/restore relies on. It also checks that restoring nil
// resets state and that garbage fails loudly on stateful policies.
func TestStateRoundTrip(t *testing.T) {
	cfg := testThresholds()
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			p, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			p.ShouldSplit(LoadView{Now: at(10), Clients: 400, Cfg: cfg})
			p.ShouldSplit(LoadView{Now: at(11), Clients: 450, Cfg: cfg})
			p.NoteEvent(Event{Now: at(11), Kind: "split", Child: 2})
			st := p.State()

			fresh, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			if err := fresh.RestoreState(st); err != nil {
				t.Fatalf("RestoreState: %v", err)
			}
			if got := fresh.State(); !bytes.Equal(got, st) {
				t.Errorf("state round trip: %s != %s", got, st)
			}
			if err := fresh.RestoreState(nil); err != nil {
				t.Fatalf("RestoreState(nil): %v", err)
			}
			if got := fresh.State(); len(got) != 0 {
				t.Errorf("state after nil restore = %s, want empty", got)
			}
			if len(st) > 0 {
				if err := fresh.RestoreState([]byte("{garbage")); err == nil {
					t.Error("RestoreState accepted garbage")
				}
			}
		})
	}
}
