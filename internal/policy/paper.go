package policy

import (
	"time"

	"matrix/internal/id"
)

// paper is the default policy: the thresholds and anti-oscillation
// heuristics the reproduction has used since PR 1, extracted verbatim so
// every pre-refactor fingerprint is reproduced byte-identically.
type paper struct{}

func (paper) Name() string { return "paper" }

// splitInputs lists the values every threshold-style split decision
// reads, in the order the pre-refactor audit reported them.
func splitInputs(v LoadView) []KV {
	return []KV{
		{"clients", float64(v.Clients)},
		{"queue", float64(v.QueueLen)},
		{"overload-clients", float64(v.Cfg.OverloadClients)},
		{"overload-queue", float64(v.Cfg.OverloadQueue)},
		{"split-cooldown-s", v.Cfg.SplitCooldown.Seconds()},
	}
}

// paperOverloaded is the paper's overload trigger: client count at the
// threshold, or queue depth at the (optional) queue threshold.
func paperOverloaded(v LoadView) bool {
	return v.Clients >= v.Cfg.OverloadClients ||
		(v.Cfg.OverloadQueue > 0 && v.QueueLen >= v.Cfg.OverloadQueue)
}

// paperCoolingDown is the split-storm guard: a server that already split
// must wait out the cooldown before splitting again.
func paperCoolingDown(v LoadView) bool {
	return v.HaveSplit && v.Now.Sub(v.LastSplit) < v.Cfg.SplitCooldown
}

func (paper) ShouldSplit(v LoadView) Verdict {
	in := splitInputs(v)
	if !paperOverloaded(v) {
		return Verdict{Reason: "load under both thresholds", Inputs: in}
	}
	if paperCoolingDown(v) {
		return Verdict{Reason: "split cooldown", Inputs: in}
	}
	return Verdict{Act: true, Reason: "overloaded", Inputs: in}
}

// reclaimInputs lists the values every threshold-style reclaim decision
// reads, in the order the pre-refactor audit reported them. The child
// block is present only once the child has reported load.
func reclaimInputs(v FamilyView) []KV {
	in := []KV{
		{"parent-clients", float64(v.Clients)},
		{"parent-queue", float64(v.QueueLen)},
		{"underload-clients", float64(v.Cfg.UnderloadClients)},
		{"reclaim-headroom", v.Cfg.ReclaimHeadroom},
		{"reclaim-dwell-s", v.Cfg.ReclaimDwell.Seconds()},
	}
	if v.Child.Known {
		below := 0.0
		if v.Child.Below {
			below = 1
		}
		in = append(in,
			KV{"child-clients", float64(v.Child.Clients)},
			KV{"child-queue", float64(v.Child.QueueLen)},
			KV{"child-below", below},
		)
	}
	return in
}

// paperReclaim is the paper's reclaim rule: the mechanism's combined-
// under condition must hold now and must have held for the full dwell.
// Policies that only adjust the dwell reuse it.
func paperReclaim(v FamilyView, dwell time.Duration) (bool, string) {
	if !v.Child.Below {
		return false, "combined load not under the reclaim ceiling"
	}
	if v.Child.BelowSince.IsZero() || v.Now.Sub(v.Child.BelowSince) < dwell {
		return false, "reclaim dwell not served"
	}
	return true, "child idle past the dwell"
}

func (paper) ShouldReclaim(v FamilyView) Verdict {
	act, reason := paperReclaim(v, v.Cfg.ReclaimDwell)
	return Verdict{Act: act, Reason: reason, Inputs: reclaimInputs(v)}
}

// paperPlacement is the paper's split geometry: halve across the longer
// axis and hand the left/low piece to the new server.
func paperPlacement(v SplitView) Placement {
	lo, hi := v.Bounds.SplitHalf()
	return Placement{Keep: hi, Give: lo, Reason: "split-to-left"}
}

func (paper) PlaceChild(v SplitView) Placement { return paperPlacement(v) }

// paperPickSpare takes the oldest spare: the pool is FIFO.
func paperPickSpare(v PoolView) id.ServerID {
	if len(v.Spares) == 0 {
		return id.None
	}
	return v.Spares[0]
}

func (paper) PickSpare(v PoolView) id.ServerID { return paperPickSpare(v) }

func (paper) NoteEvent(Event)           {}
func (paper) State() []byte             { return nil }
func (paper) RestoreState([]byte) error { return nil }
