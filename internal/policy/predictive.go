package policy

import (
	"encoding/json"
	"time"

	"matrix/internal/id"
)

// predictiveHistory is how many load observations the forecast keeps;
// predictiveHorizon is how far ahead it extrapolates. Observations
// arrive at the report cadence (one per epoch), so eight of them span a
// few seconds of recent trend.
const (
	predictiveHistory = 8
	predictiveHorizon = 5 * time.Second
)

// predictive splits on the load derivative: every split decision logs an
// observation (time, clients), and when the straight-line forecast over
// the horizon crosses the overload threshold the split is requested
// *before* the server is actually overloaded — trading a slightly larger
// fleet for never serving a crowd from inside an overload. Reclaim,
// placement and spare selection are the paper's.
type predictive struct {
	hist []predictiveObs
}

type predictiveObs struct {
	TNs     int64 `json:"t"`
	Clients int   `json:"c"`
}

func (*predictive) Name() string { return "predictive" }

func (p *predictive) ShouldSplit(v LoadView) Verdict {
	p.hist = append(p.hist, predictiveObs{TNs: v.Now.UnixNano(), Clients: v.Clients})
	if len(p.hist) > predictiveHistory {
		p.hist = p.hist[len(p.hist)-predictiveHistory:]
	}
	slope := 0.0 // clients per second
	first, last := p.hist[0], p.hist[len(p.hist)-1]
	if dt := float64(last.TNs-first.TNs) / float64(time.Second); dt > 0 {
		slope = float64(last.Clients-first.Clients) / dt
	}
	forecast := float64(v.Clients) + slope*predictiveHorizon.Seconds()
	in := append(splitInputs(v),
		KV{"slope-per-s", slope},
		KV{"forecast-clients", forecast},
		KV{"horizon-s", predictiveHorizon.Seconds()},
	)
	rising := slope > 0 && forecast >= float64(v.Cfg.OverloadClients)
	if !paperOverloaded(v) && !rising {
		return Verdict{Reason: "load under thresholds and forecast flat", Inputs: in}
	}
	if paperCoolingDown(v) {
		return Verdict{Reason: "split cooldown", Inputs: in}
	}
	if paperOverloaded(v) {
		return Verdict{Act: true, Reason: "overloaded", Inputs: in}
	}
	return Verdict{Act: true, Reason: "forecast crosses the overload threshold", Inputs: in}
}

func (*predictive) ShouldReclaim(v FamilyView) Verdict {
	act, reason := paperReclaim(v, v.Cfg.ReclaimDwell)
	return Verdict{Act: act, Reason: reason, Inputs: reclaimInputs(v)}
}

func (*predictive) PlaceChild(v SplitView) Placement { return paperPlacement(v) }
func (*predictive) PickSpare(v PoolView) id.ServerID { return paperPickSpare(v) }
func (*predictive) NoteEvent(Event)                  {}

type predictiveState struct {
	Hist []predictiveObs `json:"hist"`
}

func (p *predictive) State() []byte {
	if len(p.hist) == 0 {
		return nil
	}
	b, _ := json.Marshal(predictiveState{Hist: p.hist})
	return b
}

func (p *predictive) RestoreState(b []byte) error {
	p.hist = nil
	if len(b) == 0 {
		return nil
	}
	var st predictiveState
	if err := json.Unmarshal(b, &st); err != nil {
		return err
	}
	p.hist = st.Hist
	return nil
}
