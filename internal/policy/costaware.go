package policy

import (
	"encoding/json"
	"time"

	"matrix/internal/id"
)

// costawareWindow is how long a topology event keeps counting as recent
// churn; each recent event adds one full ReclaimDwell to the dwell a
// reclaim must serve.
const costawareWindow = 30 * time.Second

// costaware prices the migration storm a topology change causes: every
// granted split or reclaim this server was party to counts as recent
// churn, and each recent event stretches the reclaim dwell by one full
// ReclaimDwell — a family that just reshaped itself must prove the calm
// is real before handing clients around again. Placement keeps the half
// nearer the world center (where populations concentrate), handing the
// peripheral half to the child so fewer clients migrate on the next
// reshape. Split trigger and spare selection are the paper's.
type costaware struct {
	// eventsNs are recent topology-event times, oldest first.
	eventsNs []int64
}

func (*costaware) Name() string { return "costaware" }

func (c *costaware) ShouldSplit(v LoadView) Verdict {
	in := splitInputs(v)
	if !paperOverloaded(v) {
		return Verdict{Reason: "load under both thresholds", Inputs: in}
	}
	if paperCoolingDown(v) {
		return Verdict{Reason: "split cooldown", Inputs: in}
	}
	return Verdict{Act: true, Reason: "overloaded", Inputs: in}
}

// recent counts churn events still inside the window, pruning the rest.
func (c *costaware) recent(now time.Time) int {
	cut := now.Add(-costawareWindow).UnixNano()
	for len(c.eventsNs) > 0 && c.eventsNs[0] < cut {
		c.eventsNs = c.eventsNs[1:]
	}
	return len(c.eventsNs)
}

func (c *costaware) ShouldReclaim(v FamilyView) Verdict {
	churn := c.recent(v.Now)
	dwell := v.Cfg.ReclaimDwell * time.Duration(1+churn)
	act, reason := paperReclaim(v, dwell)
	in := append(reclaimInputs(v),
		KV{"recent-churn", float64(churn)},
		KV{"scaled-dwell-s", dwell.Seconds()},
	)
	if !act && v.Child.Below && churn > 0 {
		reason = "reclaim dwell stretched by recent churn"
	}
	return Verdict{Act: act, Reason: reason, Inputs: in}
}

// PlaceChild keeps the half whose center is nearer the world center and
// gives the peripheral half away; on a tie it falls back to the paper's
// split-to-left.
func (*costaware) PlaceChild(v SplitView) Placement {
	lo, hi := v.Bounds.SplitHalf()
	wc := v.World.Center()
	dLo := lo.Center().Sub(wc).Norm()
	dHi := hi.Center().Sub(wc).Norm()
	if dLo < dHi {
		return Placement{Keep: lo, Give: hi, Reason: "keep the central half"}
	}
	return Placement{Keep: hi, Give: lo, Reason: "keep the central half"}
}

func (*costaware) PickSpare(v PoolView) id.ServerID { return paperPickSpare(v) }

func (c *costaware) NoteEvent(e Event) {
	c.eventsNs = append(c.eventsNs, e.Now.UnixNano())
	c.recent(e.Now)
}

type costawareState struct {
	EventsNs []int64 `json:"eventsNs"`
}

func (c *costaware) State() []byte {
	if len(c.eventsNs) == 0 {
		return nil
	}
	b, _ := json.Marshal(costawareState{EventsNs: c.eventsNs})
	return b
}

func (c *costaware) RestoreState(b []byte) error {
	c.eventsNs = nil
	if len(b) == 0 {
		return nil
	}
	var st costawareState
	if err := json.Unmarshal(b, &st); err != nil {
		return err
	}
	c.eventsNs = st.EventsNs
	return nil
}
