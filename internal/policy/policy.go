// Package policy separates the control plane's *decisions* from the
// mechanism that executes them. The four topology decisions a Matrix
// deployment makes — when an overloaded server splits, where the child's
// region is carved, when a parent reclaims an idle child, and which spare
// backs the next split — were hard-coded across internal/load,
// internal/core and internal/coordinator; this package puts them behind
// one interface so rival heuristics can be swapped in by name and judged
// head-to-head by the experiment suite (E8).
//
// The mechanism/policy boundary: trackers, servers and the coordinator
// own the measurements (client counts, queue depths, dwell timers, the
// spare pool, the space map) and drive the protocol; a Policy only reads
// immutable views of those measurements and answers. Implementations
// need no internal locking — every instance is owned by exactly one
// tracker or one coordinator and is called under the owner's mutex.
//
// Determinism contract for stateful policies: a policy may keep internal
// state (dwell anchors, load history, churn windows) but it must evolve
// only from the views and events it is handed — never from wall-clock
// reads, map iteration or randomness — and it must round-trip through
// State/RestoreState exactly, so a run restored from a snapshot finishes
// byte-identical to the uninterrupted run.
package policy

import (
	"fmt"
	"strings"
	"time"

	"matrix/internal/geom"
	"matrix/internal/id"
)

// KV is one named input a policy read while deciding, in read order. The
// flight recorder's decision audit reproduces these verbatim, so every
// audited split/reclaim names the exact numbers that produced it.
type KV struct {
	Key string
	Val float64
}

// Verdict is a policy's answer to a should-we question.
type Verdict struct {
	// Act is true when the policy wants the action taken now.
	Act bool
	// Reason is a short human explanation ("overloaded", "split cooldown").
	Reason string
	// Inputs are the values the policy read, for the decision audit.
	Inputs []KV
}

// Thresholds is the policy-visible slice of load.Config: the paper's
// tunables, already sanitized (defaults filled in, ranges validated).
type Thresholds struct {
	// OverloadClients is the split trigger (paper: 300 clients).
	OverloadClients int
	// UnderloadClients is the reclaim-candidate bound (paper: 150).
	UnderloadClients int
	// OverloadQueue, when positive, also triggers on queue depth.
	OverloadQueue int
	// SplitCooldown is the minimum interval between one server's splits.
	SplitCooldown time.Duration
	// ReclaimDwell is how long combined load must stay quiet pre-reclaim.
	ReclaimDwell time.Duration
	// ReclaimHeadroom caps combined load at this fraction of overload.
	ReclaimHeadroom float64
}

// LoadView is what a split decision may read: one server's latest load
// report plus its split history, on the policy clock (virtual in the sim).
type LoadView struct {
	Now       time.Time
	Clients   int
	QueueLen  int
	HaveSplit bool
	// LastSplit is meaningful only when HaveSplit is true.
	LastSplit time.Time
	Cfg       Thresholds
}

// ChildView is one child's load as its parent last heard it.
type ChildView struct {
	ID id.ServerID
	// Known is false until the child's first relayed load report.
	Known    bool
	Clients  int
	QueueLen int
	// Below reports the mechanism's combined-under condition right now;
	// BelowSince is when the current quiet streak began (zero when none).
	// The tracker maintains the streak from the paper's combined-load
	// predicate; policies are free to use it or apply their own test.
	Below      bool
	BelowSince time.Time
}

// FamilyView is what a reclaim decision may read: the parent's own load
// and one candidate child.
type FamilyView struct {
	Now      time.Time
	Clients  int
	QueueLen int
	Child    ChildView
	Cfg      Thresholds
}

// SplitView is what a placement decision may read: the parent region
// being divided and the pool pressure behind the split.
type SplitView struct {
	Parent  id.ServerID
	Child   id.ServerID
	Bounds  geom.Rect
	World   geom.Rect
	Clients int
	Spares  int
}

// Placement is where the child goes: Keep and Give must partition
// SplitView.Bounds into two disjoint non-empty rectangles (the space map
// rejects anything else).
type Placement struct {
	Keep   geom.Rect
	Give   geom.Rect
	Reason string
}

// PoolView is what a spare-selection decision may read: the warm-spare
// pool in arrival (FIFO) order.
type PoolView struct {
	Spares []id.ServerID
}

// Event is feedback a policy receives when a topology action it (or its
// peer instance at the coordinator) approved actually happened.
type Event struct {
	Now time.Time
	// Kind is "split" or "reclaim".
	Kind  string
	Child id.ServerID
}

// Policy answers the four topology questions. One instance serves one
// decision site (a server's tracker, or the coordinator); instances are
// never shared, so implementations need no locking.
type Policy interface {
	// Name is the registered identifier ("paper", "hysteresis", ...).
	Name() string
	// ShouldSplit decides whether the server should request a split now.
	ShouldSplit(LoadView) Verdict
	// ShouldReclaim decides whether the parent should reclaim the child.
	ShouldReclaim(FamilyView) Verdict
	// PlaceChild carves the child's region out of the parent's.
	PlaceChild(SplitView) Placement
	// PickSpare chooses the next child from a non-empty spare pool. The
	// returned ID must be one of PoolView.Spares.
	PickSpare(PoolView) id.ServerID
	// NoteEvent feeds back a granted split/reclaim (for churn tracking).
	NoteEvent(Event)
	// State snapshots the policy's internal state deterministically; nil
	// means stateless. RestoreState(State()) must reproduce the policy
	// exactly — the snapshot/restore fingerprint contract depends on it.
	State() []byte
	// RestoreState rebuilds internal state from a State() snapshot. A nil
	// or empty snapshot resets to the fresh state.
	RestoreState([]byte) error
}

// Default is the policy used when no name is given.
const Default = "paper"

type entry struct {
	name string
	desc string
	make func() Policy
}

// registry lists the policies in presentation order, paper first.
var registry = []entry{
	{"paper", "the paper's heuristics: overload at 300 clients (or queue depth), 2s split cooldown, reclaim after a 3s combined-under dwell, FIFO spares, split-to-left", func() Policy { return paper{} }},
	{"hysteresis", "paper plus a split-side dwell: overload must persist one full cooldown before a split is requested, damping flash-crowd overreaction", func() Policy { return &hysteresis{} }},
	{"predictive", "load-derivative trigger: splits early when the 5s client-count forecast crosses the overload threshold, reclaims like paper", func() Policy { return &predictive{} }},
	{"costaware", "migration-storm penalty: reclaim dwell stretches with recent topology churn, and splits hand away the half farther from the world center", func() Policy { return &costaware{} }},
	{"static", "straw man: never splits, never reclaims — the fleet keeps whatever partitioning it started with (pair with a static grid)", func() Policy { return static{} }},
}

// Names returns the registered policy names in presentation order.
func Names() []string {
	names := make([]string, len(registry))
	for i, e := range registry {
		names[i] = e.name
	}
	return names
}

// Describe returns name's one-line description, or "" for unknown names.
func Describe(name string) string {
	for _, e := range registry {
		if e.name == name {
			return e.desc
		}
	}
	return ""
}

// New builds a fresh instance of the named policy; the empty string means
// Default. Unknown names fail with the valid names listed, so a mistyped
// -policy flag is caught at parse time.
func New(name string) (Policy, error) {
	if name == "" {
		name = Default
	}
	for _, e := range registry {
		if e.name == name {
			return e.make(), nil
		}
	}
	return nil, fmt.Errorf("policy: unknown policy %q (known: %s)", name, strings.Join(Names(), ", "))
}

// Valid reports whether name refers to a registered policy (or is empty,
// meaning Default), returning the New error otherwise.
func Valid(name string) error {
	_, err := New(name)
	return err
}

// Normalize maps the empty name to Default and leaves others unchanged,
// so callers can compare policy identities.
func Normalize(name string) string {
	if name == "" {
		return Default
	}
	return name
}
