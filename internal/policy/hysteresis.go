package policy

import (
	"encoding/json"
	"time"

	"matrix/internal/id"
)

// hysteresis is the paper policy with a dwell on the split side as well:
// the overload condition must persist for one full SplitCooldown before
// a split is requested, so a single spiky load report (one flash-crowd
// tick, a transient queue burst) no longer costs a server. Reclaim,
// placement and spare selection are the paper's.
type hysteresis struct {
	// aboveSince anchors the current overload streak; zero when the
	// server is not overloaded.
	aboveSince time.Time
}

func (*hysteresis) Name() string { return "hysteresis" }

func (h *hysteresis) ShouldSplit(v LoadView) Verdict {
	in := splitInputs(v)
	if !paperOverloaded(v) {
		h.aboveSince = time.Time{}
		return Verdict{Reason: "load under both thresholds", Inputs: in}
	}
	if h.aboveSince.IsZero() {
		h.aboveSince = v.Now
	}
	held := v.Now.Sub(h.aboveSince)
	in = append(in,
		KV{"above-for-s", held.Seconds()},
		KV{"split-dwell-s", v.Cfg.SplitCooldown.Seconds()},
	)
	if held < v.Cfg.SplitCooldown {
		return Verdict{Reason: "overload dwell not served", Inputs: in}
	}
	if paperCoolingDown(v) {
		return Verdict{Reason: "split cooldown", Inputs: in}
	}
	return Verdict{Act: true, Reason: "overload persisted past the dwell", Inputs: in}
}

func (*hysteresis) ShouldReclaim(v FamilyView) Verdict {
	act, reason := paperReclaim(v, v.Cfg.ReclaimDwell)
	return Verdict{Act: act, Reason: reason, Inputs: reclaimInputs(v)}
}

func (*hysteresis) PlaceChild(v SplitView) Placement { return paperPlacement(v) }
func (*hysteresis) PickSpare(v PoolView) id.ServerID { return paperPickSpare(v) }
func (*hysteresis) NoteEvent(Event)                  {}

type hysteresisState struct {
	AboveSinceNs int64 `json:"aboveSinceNs"`
}

func (h *hysteresis) State() []byte {
	if h.aboveSince.IsZero() {
		return nil
	}
	b, _ := json.Marshal(hysteresisState{AboveSinceNs: h.aboveSince.UnixNano()})
	return b
}

func (h *hysteresis) RestoreState(b []byte) error {
	h.aboveSince = time.Time{}
	if len(b) == 0 {
		return nil
	}
	var st hysteresisState
	if err := json.Unmarshal(b, &st); err != nil {
		return err
	}
	if st.AboveSinceNs != 0 {
		h.aboveSince = time.Unix(0, st.AboveSinceNs)
	}
	return nil
}
