// Package gameclient implements the game-client substrate: the player-side
// state machine that talks to game servers, transparently switches servers
// when redirected (the client "is informed of these switches by its current
// game server and is unaware of Matrix"), and measures the response latency
// the paper's user-study proxy evaluates.
package gameclient

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"matrix/internal/clock"
	"matrix/internal/geom"
	"matrix/internal/id"
	"matrix/internal/protocol"
)

// Client errors.
var (
	ErrNotConnected = errors.New("gameclient: not connected")
	ErrNilMessage   = errors.New("gameclient: nil message")
)

// Event is what a Handle call tells the host to do next.
type Event uint8

// Event values.
const (
	// EventNone requires no action.
	EventNone Event = iota + 1
	// EventConnected means the welcome arrived; the client is in the game.
	EventConnected
	// EventSwitchServer means the host must reconnect the transport to
	// Client.ServerAddr and re-send Hello (Matrix redirected us).
	EventSwitchServer
	// EventUpdate means a game update was delivered (visible world event).
	EventUpdate
)

// String implements fmt.Stringer.
func (e Event) String() string {
	switch e {
	case EventNone:
		return "none"
	case EventConnected:
		return "connected"
	case EventSwitchServer:
		return "switch-server"
	case EventUpdate:
		return "update"
	default:
		return fmt.Sprintf("event(%d)", uint8(e))
	}
}

// Config tunes a client.
type Config struct {
	// ID is the globally unique callsign.
	ID id.ClientID
	// Pos is the starting position.
	Pos geom.Point
	// Clock stamps outgoing packets (nil = wall clock).
	Clock clock.Clock
}

// Stats is a snapshot of client-side counters.
type Stats struct {
	Sent      uint64
	Received  uint64
	EchoCount uint64
	Switches  uint64
	Welcomes  uint64
}

// Client is one game client. Safe for concurrent use.
type Client struct {
	mu         sync.Mutex
	id         id.ClientID
	pos        geom.Point
	clk        clock.Clock
	seq        id.PacketSeq
	connected  bool
	server     id.ServerID
	serverAddr string
	stats      Stats
	latencies  []time.Duration
}

// New creates a client.
func New(cfg Config) (*Client, error) {
	if cfg.ID == 0 {
		return nil, errors.New("gameclient: zero client id")
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.Wall{}
	}
	return &Client{id: cfg.ID, pos: cfg.Pos, clk: clk}, nil
}

// ID returns the client's callsign.
func (c *Client) ID() id.ClientID { return c.id }

// Pos returns the client's current position.
func (c *Client) Pos() geom.Point {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pos
}

// Connected reports whether a welcome has been received from the current
// server.
func (c *Client) Connected() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.connected
}

// Server returns the current game server's identity.
func (c *Client) Server() id.ServerID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.server
}

// ServerAddr returns the address of the server the client should be
// connected to (set by redirects).
func (c *Client) ServerAddr() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.serverAddr
}

// Stats returns a snapshot of the counters.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Latencies returns a copy of all measured action→echo response latencies
// (the paper's player-experience metric).
func (c *Client) Latencies() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]time.Duration, len(c.latencies))
	copy(out, c.latencies)
	return out
}

// Disconnect marks the client as not connected (its transport died — e.g.
// the server restarted and reset every connection). The host is expected to
// re-send Hello to rejoin; server identity and address are kept.
func (c *Client) Disconnect() {
	c.mu.Lock()
	c.connected = false
	c.mu.Unlock()
}

// State is a Client's serializable snapshot.
type State struct {
	ID          id.ClientID
	Pos         geom.Point
	Seq         id.PacketSeq
	Connected   bool
	Server      id.ServerID
	ServerAddr  string
	Stats       Stats
	LatenciesNs []int64
}

// State snapshots the client.
func (c *Client) State() State {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := State{
		ID:         c.id,
		Pos:        c.pos,
		Seq:        c.seq,
		Connected:  c.connected,
		Server:     c.server,
		ServerAddr: c.serverAddr,
		Stats:      c.stats,
	}
	st.LatenciesNs = make([]int64, len(c.latencies))
	for i, d := range c.latencies {
		st.LatenciesNs[i] = int64(d)
	}
	return st
}

// NewFromState rebuilds a client from a snapshot; clk stamps packets from
// now on (nil = wall clock).
func NewFromState(st State, clk clock.Clock) (*Client, error) {
	c, err := New(Config{ID: st.ID, Pos: st.Pos, Clock: clk})
	if err != nil {
		return nil, err
	}
	c.seq = st.Seq
	c.connected = st.Connected
	c.server = st.Server
	c.serverAddr = st.ServerAddr
	c.stats = st.Stats
	c.latencies = make([]time.Duration, len(st.LatenciesNs))
	for i, ns := range st.LatenciesNs {
		c.latencies[i] = time.Duration(ns)
	}
	return c, nil
}

// Hello builds the join message for the current position.
func (c *Client) Hello() *protocol.ClientHello {
	c.mu.Lock()
	defer c.mu.Unlock()
	return &protocol.ClientHello{Client: c.id, Pos: c.pos}
}

// MakeMove builds a movement update to dest, locally adopting the new
// position (the game server remains authoritative on its side).
func (c *Client) MakeMove(dest geom.Point) *protocol.GameUpdate {
	c.mu.Lock()
	defer c.mu.Unlock()
	u := c.makeLocked(protocol.KindMove, c.pos, dest)
	c.pos = dest
	return u
}

// MakeAction builds a non-movement update (shot, interaction) targeted at
// dest.
func (c *Client) MakeAction(kind protocol.UpdateKind, dest geom.Point) *protocol.GameUpdate {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.makeLocked(kind, c.pos, dest)
}

func (c *Client) makeLocked(kind protocol.UpdateKind, origin, dest geom.Point) *protocol.GameUpdate {
	c.seq++
	c.stats.Sent++
	return &protocol.GameUpdate{
		Client:   c.id,
		Seq:      c.seq,
		Kind:     kind,
		Origin:   origin,
		Dest:     dest,
		SentUnix: c.clk.Now().UnixNano(),
	}
}

// Handle processes one message from the server and says what to do next.
func (c *Client) Handle(m protocol.Message) (Event, error) {
	if m == nil {
		return EventNone, ErrNilMessage
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	switch msg := m.(type) {
	case *protocol.ClientWelcome:
		c.connected = true
		c.server = msg.Server
		c.stats.Welcomes++
		return EventConnected, nil
	case *protocol.Redirect:
		if msg.Client != c.id {
			return EventNone, fmt.Errorf("gameclient: redirect for %v delivered to %v", msg.Client, c.id)
		}
		c.connected = false
		c.server = msg.NewOwner
		c.serverAddr = msg.NewAddr
		c.stats.Switches++
		return EventSwitchServer, nil
	case *protocol.GameUpdate:
		c.stats.Received++
		if msg.Client == c.id {
			// Echo of our own action: the response-latency sample.
			c.stats.EchoCount++
			lat := c.clk.Now().Sub(time.Unix(0, msg.SentUnix))
			if lat >= 0 {
				c.latencies = append(c.latencies, lat)
			}
		}
		return EventUpdate, nil
	default:
		return EventNone, fmt.Errorf("gameclient: unexpected message %v", m.MsgType())
	}
}
