package gameclient

import (
	"errors"
	"testing"
	"time"

	"matrix/internal/clock"
	"matrix/internal/geom"
	"matrix/internal/protocol"
)

func newTestClient(t *testing.T) (*Client, *clock.Virtual) {
	t.Helper()
	clk := clock.NewVirtual(time.Unix(100, 0))
	c, err := New(Config{ID: 7, Pos: geom.Pt(10, 10), Clock: clk})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c, clk
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("zero id must fail")
	}
}

func TestHelloAndWelcome(t *testing.T) {
	c, _ := newTestClient(t)
	h := c.Hello()
	if h.Client != 7 || h.Pos != geom.Pt(10, 10) {
		t.Errorf("hello = %+v", h)
	}
	if c.Connected() {
		t.Error("must not be connected before welcome")
	}
	ev, err := c.Handle(&protocol.ClientWelcome{Server: 3, Bounds: geom.R(0, 0, 100, 100)})
	if err != nil || ev != EventConnected {
		t.Fatalf("welcome: ev=%v err=%v", ev, err)
	}
	if !c.Connected() || c.Server() != 3 {
		t.Error("welcome not applied")
	}
}

func TestMoveSequenceAndPosition(t *testing.T) {
	c, _ := newTestClient(t)
	u1 := c.MakeMove(geom.Pt(20, 20))
	u2 := c.MakeMove(geom.Pt(30, 30))
	if u1.Seq != 1 || u2.Seq != 2 {
		t.Errorf("seqs = %d,%d", u1.Seq, u2.Seq)
	}
	if u1.Origin != geom.Pt(10, 10) || u1.Dest != geom.Pt(20, 20) {
		t.Errorf("u1 = %+v", u1)
	}
	if u2.Origin != geom.Pt(20, 20) {
		t.Errorf("u2 origin = %v (must chain from prior move)", u2.Origin)
	}
	if c.Pos() != geom.Pt(30, 30) {
		t.Errorf("Pos = %v", c.Pos())
	}
	if u1.Kind != protocol.KindMove {
		t.Errorf("kind = %v", u1.Kind)
	}
}

func TestActionKeepsPosition(t *testing.T) {
	c, _ := newTestClient(t)
	u := c.MakeAction(protocol.KindAction, geom.Pt(50, 50))
	if u.Origin != geom.Pt(10, 10) || u.Dest != geom.Pt(50, 50) {
		t.Errorf("action = %+v", u)
	}
	if c.Pos() != geom.Pt(10, 10) {
		t.Errorf("action must not move the client: %v", c.Pos())
	}
}

func TestEchoLatencyMeasured(t *testing.T) {
	c, clk := newTestClient(t)
	u := c.MakeAction(protocol.KindAction, geom.Pt(11, 10))
	clk.Advance(150 * time.Millisecond)
	ev, err := c.Handle(u)
	if err != nil || ev != EventUpdate {
		t.Fatalf("echo: ev=%v err=%v", ev, err)
	}
	lats := c.Latencies()
	if len(lats) != 1 || lats[0] != 150*time.Millisecond {
		t.Fatalf("latencies = %v", lats)
	}
	st := c.Stats()
	if st.EchoCount != 1 || st.Received != 1 || st.Sent != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestForeignUpdateNotAnEcho(t *testing.T) {
	c, _ := newTestClient(t)
	other := &protocol.GameUpdate{Client: 99, Kind: protocol.KindAction}
	ev, err := c.Handle(other)
	if err != nil || ev != EventUpdate {
		t.Fatalf("ev=%v err=%v", ev, err)
	}
	if len(c.Latencies()) != 0 {
		t.Error("foreign update recorded a latency")
	}
	if c.Stats().EchoCount != 0 {
		t.Error("foreign update counted as echo")
	}
}

func TestRedirectSwitchesServer(t *testing.T) {
	c, _ := newTestClient(t)
	if _, err := c.Handle(&protocol.ClientWelcome{Server: 1}); err != nil {
		t.Fatal(err)
	}
	ev, err := c.Handle(&protocol.Redirect{Client: 7, NewOwner: 4, NewAddr: "d:4"})
	if err != nil || ev != EventSwitchServer {
		t.Fatalf("redirect: ev=%v err=%v", ev, err)
	}
	if c.Connected() {
		t.Error("redirect must disconnect until the next welcome")
	}
	if c.Server() != 4 || c.ServerAddr() != "d:4" {
		t.Errorf("server = %v addr = %q", c.Server(), c.ServerAddr())
	}
	if c.Stats().Switches != 1 {
		t.Errorf("Switches = %d", c.Stats().Switches)
	}
	// Misdelivered redirect errors.
	if _, err := c.Handle(&protocol.Redirect{Client: 8}); err == nil {
		t.Error("misdelivered redirect must error")
	}
}

func TestHandleNilAndUnexpected(t *testing.T) {
	c, _ := newTestClient(t)
	if _, err := c.Handle(nil); !errors.Is(err, ErrNilMessage) {
		t.Errorf("nil: %v", err)
	}
	if _, err := c.Handle(&protocol.Ack{}); err == nil {
		t.Error("unexpected type must error")
	}
}

func TestLatenciesCopy(t *testing.T) {
	c, clk := newTestClient(t)
	u := c.MakeAction(protocol.KindAction, geom.Pt(11, 10))
	clk.Advance(time.Millisecond)
	if _, err := c.Handle(u); err != nil {
		t.Fatal(err)
	}
	lats := c.Latencies()
	lats[0] = 0
	if c.Latencies()[0] == 0 {
		t.Error("Latencies must return a copy")
	}
}

func TestEventString(t *testing.T) {
	names := map[Event]string{
		EventNone:         "none",
		EventConnected:    "connected",
		EventSwitchServer: "switch-server",
		EventUpdate:       "update",
	}
	for ev, want := range names {
		if ev.String() != want {
			t.Errorf("%d String = %q, want %q", ev, ev.String(), want)
		}
	}
	if Event(0).String() != "event(0)" {
		t.Error("invalid event String")
	}
}
