package staticpart

import (
	"testing"

	"matrix/internal/geom"
)

func TestGridTilesWorld(t *testing.T) {
	world := geom.R(0, 0, 100, 60)
	for _, n := range []int{1, 2, 3, 4, 6, 7, 9, 12, 16} {
		tiles, err := Grid(world, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(tiles) != n {
			t.Fatalf("n=%d: got %d tiles", n, len(tiles))
		}
		var area float64
		for i, a := range tiles {
			if a.Empty() {
				t.Fatalf("n=%d: tile %d empty", n, i)
			}
			area += a.Area()
			for j := i + 1; j < len(tiles); j++ {
				if a.Intersects(tiles[j]) {
					t.Fatalf("n=%d: tiles %d and %d overlap", n, i, j)
				}
			}
			if !world.ContainsRect(a) {
				t.Fatalf("n=%d: tile %d escapes world", n, i)
			}
		}
		if diff := area - world.Area(); diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("n=%d: tiles cover %v, world %v", n, area, world.Area())
		}
	}
}

func TestGridSquareness(t *testing.T) {
	tiles, err := Grid(geom.R(0, 0, 100, 100), 4)
	if err != nil {
		t.Fatal(err)
	}
	// 4 partitions on a square world must be a 2x2 grid.
	for _, tile := range tiles {
		if tile.Width() != 50 || tile.Height() != 50 {
			t.Fatalf("tile %v not 50x50", tile)
		}
	}
}

func TestGridErrors(t *testing.T) {
	if _, err := Grid(geom.Rect{}, 4); err == nil {
		t.Error("empty world must fail")
	}
	if _, err := Grid(geom.R(0, 0, 1, 1), 0); err == nil {
		t.Error("zero count must fail")
	}
	if _, err := Grid(geom.R(0, 0, 1, 1), -1); err == nil {
		t.Error("negative count must fail")
	}
}

func TestGridPrimeCount(t *testing.T) {
	tiles, err := Grid(geom.R(0, 0, 100, 100), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tiles) != 5 {
		t.Fatalf("got %d tiles", len(tiles))
	}
	// Prime counts degrade to a 1 x n strip layout; still a valid tiling.
	for _, tile := range tiles {
		if tile.Width() != 20 {
			t.Fatalf("strip width = %v", tile.Width())
		}
	}
}

func TestEveryPointOwnedOnce(t *testing.T) {
	world := geom.R(0, 0, 90, 90)
	tiles, err := Grid(world, 9)
	if err != nil {
		t.Fatal(err)
	}
	pts := []geom.Point{
		geom.Pt(0, 0), geom.Pt(30, 30), geom.Pt(45, 45), geom.Pt(30, 0),
		geom.Pt(0, 30), geom.Pt(89.99, 89.99), geom.Pt(60, 60),
	}
	for _, p := range pts {
		owners := 0
		for _, tile := range tiles {
			if tile.Contains(p) {
				owners++
			}
		}
		if owners != 1 {
			t.Errorf("point %v owned by %d tiles", p, owners)
		}
	}
}
