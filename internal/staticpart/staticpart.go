// Package staticpart builds the static-partitioning baseline the paper
// compares Matrix against: a fixed grid of partitions assigned to a fixed
// set of servers, with no splits and no reclamations. Commercial MMOGs of
// the paper's era (Everquest, Final Fantasy XI) "carefully partition the
// game world between different servers"; this package reproduces that
// strategy so the evaluation can show where it fails.
package staticpart

import (
	"errors"
	"fmt"
	"math"

	"matrix/internal/geom"
)

// Grid divides world into n tiles arranged in the most square grid whose
// cell count is exactly n. Tiles are returned row-major (bottom-left
// first). It errs when n has no feasible layout (n <= 0).
func Grid(world geom.Rect, n int) ([]geom.Rect, error) {
	if world.Empty() {
		return nil, errors.New("staticpart: empty world")
	}
	if n <= 0 {
		return nil, fmt.Errorf("staticpart: invalid partition count %d", n)
	}
	// Choose rows as the largest divisor of n that is <= sqrt(n), so the
	// grid is as square as the divisor structure allows (primes degrade to
	// 1 x n columns).
	rows := 1
	for d := 1; d <= int(math.Sqrt(float64(n))); d++ {
		if n%d == 0 {
			rows = d
		}
	}
	cols := n / rows
	out := make([]geom.Rect, 0, n)
	w := world.Width() / float64(cols)
	h := world.Height() / float64(rows)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			minX := world.MinX + float64(c)*w
			minY := world.MinY + float64(r)*h
			maxX := minX + w
			maxY := minY + h
			// Snap the outer edges exactly to the world's to avoid float
			// drift breaking the tiling invariant.
			if c == cols-1 {
				maxX = world.MaxX
			}
			if r == rows-1 {
				maxY = world.MaxY
			}
			out = append(out, geom.R(minX, minY, maxX, maxY))
		}
	}
	return out, nil
}
