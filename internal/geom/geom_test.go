package geom

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestPointOps(t *testing.T) {
	tests := []struct {
		name string
		got  Point
		want Point
	}{
		{"add", Pt(1, 2).Add(Pt(3, 4)), Pt(4, 6)},
		{"sub", Pt(1, 2).Sub(Pt(3, 4)), Pt(-2, -2)},
		{"scale", Pt(1, -2).Scale(2.5), Pt(2.5, -5)},
		{"add-zero", Pt(7, 9).Add(Pt(0, 0)), Pt(7, 9)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.got != tt.want {
				t.Fatalf("got %v, want %v", tt.got, tt.want)
			}
		})
	}
}

func TestPointNorm(t *testing.T) {
	if got := Pt(3, 4).Norm(); got != 5 {
		t.Fatalf("Norm() = %v, want 5", got)
	}
	if got := Pt(0, 0).Norm(); got != 0 {
		t.Fatalf("Norm() = %v, want 0", got)
	}
}

func TestMetrics(t *testing.T) {
	a, b := Pt(0, 0), Pt(3, 4)
	tests := []struct {
		m    Metric
		want float64
		name string
	}{
		{Euclidean{}, 5, "euclidean"},
		{Manhattan{}, 7, "manhattan"},
		{Chebyshev{}, 4, "chebyshev"},
	}
	for _, tt := range tests {
		t.Run(tt.m.Name(), func(t *testing.T) {
			if got := tt.m.Distance(a, b); got != tt.want {
				t.Fatalf("Distance = %v, want %v", got, tt.want)
			}
			if tt.m.Name() != tt.name {
				t.Fatalf("Name = %q, want %q", tt.m.Name(), tt.name)
			}
		})
	}
}

func TestMetricSymmetry(t *testing.T) {
	metrics := []Metric{Euclidean{}, Manhattan{}, Chebyshev{}}
	for _, m := range metrics {
		m := m
		f := func(ax, ay, bx, by float64) bool {
			a, b := Pt(ax, ay), Pt(bx, by)
			d1, d2 := m.Distance(a, b), m.Distance(b, a)
			return d1 == d2 && d1 >= 0
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", m.Name(), err)
		}
	}
}

func TestMetricTriangleInequality(t *testing.T) {
	metrics := []Metric{Euclidean{}, Manhattan{}, Chebyshev{}}
	for _, m := range metrics {
		m := m
		f := func(ax, ay, bx, by, cx, cy int16) bool {
			a := Pt(float64(ax), float64(ay))
			b := Pt(float64(bx), float64(by))
			c := Pt(float64(cx), float64(cy))
			// Small epsilon for float rounding in Hypot.
			return m.Distance(a, c) <= m.Distance(a, b)+m.Distance(b, c)+1e-9
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", m.Name(), err)
		}
	}
}

func TestRectEmpty(t *testing.T) {
	tests := []struct {
		name string
		r    Rect
		want bool
	}{
		{"zero", Rect{}, true},
		{"inverted-x", R(5, 0, 4, 10), true},
		{"inverted-y", R(0, 5, 10, 4), true},
		{"line-x", R(0, 0, 0, 10), true},
		{"normal", R(0, 0, 10, 10), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.r.Empty(); got != tt.want {
				t.Fatalf("Empty() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestRectDims(t *testing.T) {
	r := R(1, 2, 4, 10)
	if got := r.Width(); got != 3 {
		t.Errorf("Width = %v, want 3", got)
	}
	if got := r.Height(); got != 8 {
		t.Errorf("Height = %v, want 8", got)
	}
	if got := r.Area(); got != 24 {
		t.Errorf("Area = %v, want 24", got)
	}
	if got := r.Center(); got != Pt(2.5, 6) {
		t.Errorf("Center = %v, want (2.5,6)", got)
	}
	var empty Rect
	if empty.Width() != 0 || empty.Height() != 0 || empty.Area() != 0 {
		t.Errorf("empty rect dims should be zero")
	}
}

func TestRectContainsHalfOpen(t *testing.T) {
	r := R(0, 0, 10, 10)
	tests := []struct {
		p    Point
		want bool
	}{
		{Pt(0, 0), true},    // min corner included
		{Pt(10, 10), false}, // max corner excluded
		{Pt(10, 5), false},  // max-x edge excluded
		{Pt(5, 10), false},  // max-y edge excluded
		{Pt(0, 9.999), true},
		{Pt(5, 5), true},
		{Pt(-0.001, 5), false},
	}
	for _, tt := range tests {
		if got := r.Contains(tt.p); got != tt.want {
			t.Errorf("Contains(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if !r.ContainsClosed(Pt(10, 10)) {
		t.Errorf("ContainsClosed should include max corner")
	}
}

func TestRectTilingAssignsEveryPointOnce(t *testing.T) {
	// Half-open semantics must assign boundary points to exactly one tile.
	tiles := []Rect{R(0, 0, 5, 5), R(5, 0, 10, 5), R(0, 5, 5, 10), R(5, 5, 10, 10)}
	pts := []Point{Pt(5, 5), Pt(5, 0), Pt(0, 5), Pt(2.5, 5), Pt(5, 7), Pt(0, 0)}
	for _, p := range pts {
		n := 0
		for _, tile := range tiles {
			if tile.Contains(p) {
				n++
			}
		}
		if n != 1 {
			t.Errorf("point %v contained in %d tiles, want exactly 1", p, n)
		}
	}
}

func TestRectIntersect(t *testing.T) {
	tests := []struct {
		name string
		a, b Rect
		want Rect
	}{
		{"overlap", R(0, 0, 10, 10), R(5, 5, 15, 15), R(5, 5, 10, 10)},
		{"disjoint", R(0, 0, 5, 5), R(6, 6, 10, 10), Rect{}},
		{"touching-edge", R(0, 0, 5, 5), R(5, 0, 10, 5), Rect{}},
		{"nested", R(0, 0, 10, 10), R(2, 2, 4, 4), R(2, 2, 4, 4)},
		{"self", R(1, 1, 2, 2), R(1, 1, 2, 2), R(1, 1, 2, 2)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.a.Intersect(tt.b)
			if !got.Eq(tt.want) {
				t.Fatalf("Intersect = %v, want %v", got, tt.want)
			}
			if tt.a.Intersects(tt.b) != !tt.want.Empty() {
				t.Fatalf("Intersects disagrees with Intersect emptiness")
			}
		})
	}
}

func TestRectIntersectCommutative(t *testing.T) {
	f := func(a, b Rect) bool {
		ab, ba := a.Intersect(b), b.Intersect(a)
		return ab.Eq(ba) && a.Intersects(b) == b.Intersects(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRectUnionContainsBoth(t *testing.T) {
	f := func(a, b Rect) bool {
		u := a.Union(b)
		return u.ContainsRect(a) && u.ContainsRect(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	u := R(0, 0, 1, 1).Union(R(5, 5, 6, 6))
	if !u.Eq(R(0, 0, 6, 6)) {
		t.Errorf("Union = %v, want [0,6)x[0,6)", u)
	}
}

func TestRectExpand(t *testing.T) {
	r := R(5, 5, 10, 10)
	if got := r.Expand(2); !got.Eq(R(3, 3, 12, 12)) {
		t.Errorf("Expand(2) = %v", got)
	}
	if got := r.Expand(-3); !got.Empty() {
		t.Errorf("Expand(-3) should be empty, got %v", got)
	}
	var empty Rect
	if got := empty.Expand(5); !got.Empty() {
		t.Errorf("expanding empty rect should remain empty, got %v", got)
	}
}

func TestRectDistanceTo(t *testing.T) {
	r := R(0, 0, 10, 10)
	tests := []struct {
		p    Point
		want float64
	}{
		{Pt(5, 5), 0},
		{Pt(0, 0), 0},
		{Pt(13, 5), 3},
		{Pt(5, -4), 4},
		{Pt(13, 14), 5}, // corner: 3-4-5 triangle
		{Pt(-3, -4), 5},
	}
	for _, tt := range tests {
		if got := r.DistanceTo(tt.p); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("DistanceTo(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestIntersectsCircle(t *testing.T) {
	r := R(0, 0, 10, 10)
	tests := []struct {
		name string
		c    Point
		rad  float64
		want bool
	}{
		{"inside", Pt(5, 5), 0, true},
		{"outside-near", Pt(12, 5), 2, true},
		{"outside-far", Pt(12, 5), 1.9, false},
		{"corner-hit", Pt(13, 14), 5, true},
		{"corner-miss", Pt(13, 14), 4.99, false},
		{"negative-radius", Pt(5, 5), -1, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := r.IntersectsCircle(tt.c, tt.rad); got != tt.want {
				t.Fatalf("IntersectsCircle = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestIntersectsCircleMatchesExpandApprox(t *testing.T) {
	// The circle test must be at least as strict as the expanded-rect test:
	// expand(R).Contains(p) is a superset of circle intersection.
	f := func(px, py int16, rad uint8) bool {
		r := R(0, 0, 100, 100)
		p := Pt(float64(px)/10, float64(py)/10)
		d := float64(rad)
		if r.IntersectsCircle(p, d) && !r.Expand(d).ContainsClosed(p) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClamp(t *testing.T) {
	r := R(0, 0, 10, 10)
	tests := []struct {
		p, want Point
	}{
		{Pt(5, 5), Pt(5, 5)},
		{Pt(-3, 5), Pt(0, 5)},
		{Pt(15, 22), Pt(10, 10)},
	}
	for _, tt := range tests {
		if got := r.Clamp(tt.p); got != tt.want {
			t.Errorf("Clamp(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestSplitAt(t *testing.T) {
	r := R(0, 0, 10, 4)
	lo, hi := r.SplitAt(AxisX, 6)
	if !lo.Eq(R(0, 0, 6, 4)) || !hi.Eq(R(6, 0, 10, 4)) {
		t.Fatalf("SplitAt(X,6) = %v, %v", lo, hi)
	}
	lo, hi = r.SplitAt(AxisY, 1)
	if !lo.Eq(R(0, 0, 10, 1)) || !hi.Eq(R(0, 1, 10, 4)) {
		t.Fatalf("SplitAt(Y,1) = %v, %v", lo, hi)
	}
	// Out-of-range cut clamps: one side empty.
	lo, hi = r.SplitAt(AxisX, -5)
	if !lo.Empty() || !hi.Eq(r) {
		t.Fatalf("SplitAt(X,-5) = %v, %v", lo, hi)
	}
}

func TestSplitHalf(t *testing.T) {
	// Wider than tall: splits on X.
	lo, hi := R(0, 0, 10, 4).SplitHalf()
	if !lo.Eq(R(0, 0, 5, 4)) || !hi.Eq(R(5, 0, 10, 4)) {
		t.Fatalf("SplitHalf wide = %v, %v", lo, hi)
	}
	// Taller than wide: splits on Y.
	lo, hi = R(0, 0, 4, 10).SplitHalf()
	if !lo.Eq(R(0, 0, 4, 5)) || !hi.Eq(R(0, 5, 4, 10)) {
		t.Fatalf("SplitHalf tall = %v, %v", lo, hi)
	}
	// Square prefers X.
	lo, _ = R(0, 0, 6, 6).SplitHalf()
	if !lo.Eq(R(0, 0, 3, 6)) {
		t.Fatalf("SplitHalf square lo = %v", lo)
	}
}

func TestSplitHalfPartitionsExactly(t *testing.T) {
	f := func(x, y int16, w, h uint8) bool {
		r := R(float64(x), float64(y), float64(x)+float64(w)+1, float64(y)+float64(h)+1)
		lo, hi := r.SplitHalf()
		// Halves must not overlap, must tile r, and areas must sum.
		if lo.Intersects(hi) {
			return false
		}
		if !lo.Union(hi).Eq(r) {
			return false
		}
		return math.Abs(lo.Area()+hi.Area()-r.Area()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLongerAxis(t *testing.T) {
	if R(0, 0, 10, 5).LongerAxis() != AxisX {
		t.Error("wide rect should prefer X")
	}
	if R(0, 0, 5, 10).LongerAxis() != AxisY {
		t.Error("tall rect should prefer Y")
	}
	if R(0, 0, 5, 5).LongerAxis() != AxisX {
		t.Error("square should prefer X")
	}
}

func TestAxisString(t *testing.T) {
	if AxisX.String() != "x" || AxisY.String() != "y" {
		t.Error("axis names wrong")
	}
	if Axis(0).String() != "axis(0)" {
		t.Errorf("invalid axis String = %q", Axis(0).String())
	}
}

func TestRectString(t *testing.T) {
	got := R(0, 0, 1, 2).String()
	if got == "" {
		t.Error("String should be non-empty")
	}
}

// Generate lets testing/quick build well-formed (occasionally empty)
// rectangles with coordinates small enough that float rounding cannot
// invalidate geometric identities.
func (Rect) Generate(rnd *rand.Rand, size int) reflect.Value {
	coord := func() float64 { return float64(rnd.Intn(2001)-1000) / 4 }
	r := Rect{MinX: coord(), MinY: coord(), MaxX: coord(), MaxY: coord()}
	if rnd.Intn(10) > 0 { // mostly well-formed
		if r.MaxX < r.MinX {
			r.MinX, r.MaxX = r.MaxX, r.MinX
		}
		if r.MaxY < r.MinY {
			r.MinY, r.MaxY = r.MaxY, r.MinY
		}
	}
	return reflect.ValueOf(r)
}
