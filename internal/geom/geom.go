// Package geom provides the two-dimensional geometry substrate used by the
// Matrix middleware: points, axis-aligned rectangles, distance metrics, and
// the circle/rectangle intersection predicates that define consistency sets.
//
// All coordinates are float64 in the game world's own units. The package is
// deliberately free of any Matrix-specific concepts so it can be reused by
// game workload models and by the partitioning engine alike.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the 2-D game world.
type Point struct {
	X, Y float64
}

// Pt is shorthand for constructing a Point.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns the vector sum p+q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector difference p-q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by k.
func (p Point) Scale(k float64) Point { return Point{p.X * k, p.Y * k} }

// Norm returns the Euclidean length of the vector p.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.3f,%.3f)", p.X, p.Y) }

// Metric computes a game-specific distance between two points. The paper
// requires only that games expose "a game-specific distance metric"; Matrix
// treats it as opaque. Implementations must be symmetric, non-negative and
// satisfy the triangle inequality for overlap regions to be conservative.
type Metric interface {
	// Distance returns the distance between a and b.
	Distance(a, b Point) float64
	// Name identifies the metric for diagnostics.
	Name() string
}

// Euclidean is the standard L2 metric, the default for all bundled games.
type Euclidean struct{}

// Distance implements Metric.
func (Euclidean) Distance(a, b Point) float64 { return math.Hypot(a.X-b.X, a.Y-b.Y) }

// Name implements Metric.
func (Euclidean) Name() string { return "euclidean" }

// Manhattan is the L1 metric, useful for grid-movement games.
type Manhattan struct{}

// Distance implements Metric.
func (Manhattan) Distance(a, b Point) float64 {
	return math.Abs(a.X-b.X) + math.Abs(a.Y-b.Y)
}

// Name implements Metric.
func (Manhattan) Name() string { return "manhattan" }

// Chebyshev is the L∞ metric.
type Chebyshev struct{}

// Distance implements Metric.
func (Chebyshev) Distance(a, b Point) float64 {
	return math.Max(math.Abs(a.X-b.X), math.Abs(a.Y-b.Y))
}

// Name implements Metric.
func (Chebyshev) Name() string { return "chebyshev" }

var (
	_ Metric = Euclidean{}
	_ Metric = Manhattan{}
	_ Metric = Chebyshev{}
)

// Rect is an axis-aligned rectangle, closed on the min edge and open on the
// max edge ([MinX,MaxX) × [MinY,MaxY)) so that a tiling of rectangles assigns
// every point to exactly one tile. A Rect with MaxX<=MinX or MaxY<=MinY is
// empty.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// R is shorthand for constructing a Rect.
func R(minX, minY, maxX, maxY float64) Rect {
	return Rect{MinX: minX, MinY: minY, MaxX: maxX, MaxY: maxY}
}

// Empty reports whether the rectangle contains no points.
func (r Rect) Empty() bool { return r.MaxX <= r.MinX || r.MaxY <= r.MinY }

// Width returns the X extent (zero for empty rects).
func (r Rect) Width() float64 {
	if r.Empty() {
		return 0
	}
	return r.MaxX - r.MinX
}

// Height returns the Y extent (zero for empty rects).
func (r Rect) Height() float64 {
	if r.Empty() {
		return 0
	}
	return r.MaxY - r.MinY
}

// Area returns the area of the rectangle (zero for empty rects).
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Center returns the midpoint of the rectangle.
func (r Rect) Center() Point { return Point{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2} }

// Contains reports whether p lies inside r (min-closed, max-open).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X < r.MaxX && p.Y >= r.MinY && p.Y < r.MaxY
}

// ContainsClosed reports whether p lies inside the closure of r. Use it for
// boundary-insensitive checks such as "could this point possibly interact
// with this partition".
func (r Rect) ContainsClosed(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// Intersect returns the intersection of r and s (possibly empty).
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		MinX: math.Max(r.MinX, s.MinX),
		MinY: math.Max(r.MinY, s.MinY),
		MaxX: math.Min(r.MaxX, s.MaxX),
		MaxY: math.Min(r.MaxY, s.MaxY),
	}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Intersects reports whether r and s share any interior point.
func (r Rect) Intersects(s Rect) bool {
	return r.MinX < s.MaxX && s.MinX < r.MaxX && r.MinY < s.MaxY && s.MinY < r.MaxY
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		MinX: math.Min(r.MinX, s.MinX),
		MinY: math.Min(r.MinY, s.MinY),
		MaxX: math.Max(r.MaxX, s.MaxX),
		MaxY: math.Max(r.MaxY, s.MaxY),
	}
}

// Expand returns the rectangle grown by d on every side (the Minkowski sum
// with an axis-aligned square of half-width d). Expanding an empty rect
// yields an empty rect. A negative d shrinks the rectangle and may empty it.
func (r Rect) Expand(d float64) Rect {
	if r.Empty() {
		return Rect{}
	}
	out := Rect{MinX: r.MinX - d, MinY: r.MinY - d, MaxX: r.MaxX + d, MaxY: r.MaxY + d}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Clamp returns p moved to the nearest point inside the closure of r.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, r.MinX), r.MaxX),
		Y: math.Min(math.Max(p.Y, r.MinY), r.MaxY),
	}
}

// DistanceTo returns the Euclidean distance from p to the closure of r
// (zero when p is inside).
func (r Rect) DistanceTo(p Point) float64 {
	dx := math.Max(math.Max(r.MinX-p.X, 0), p.X-r.MaxX)
	dy := math.Max(math.Max(r.MinY-p.Y, 0), p.Y-r.MaxY)
	return math.Hypot(dx, dy)
}

// IntersectsCircle reports whether the circle of radius rad centered at c
// intersects the closure of r. This is the predicate behind Equation 1 of
// the paper: a partition belongs to C(σ) iff the visibility circle at σ
// touches it.
func (r Rect) IntersectsCircle(c Point, rad float64) bool {
	if r.Empty() || rad < 0 {
		return false
	}
	return r.DistanceTo(c) <= rad
}

// Eq reports exact equality of two rectangles.
func (r Rect) Eq(s Rect) bool {
	return r.MinX == s.MinX && r.MinY == s.MinY && r.MaxX == s.MaxX && r.MaxY == s.MaxY
}

// ContainsRect reports whether s is entirely inside the closure of r.
func (r Rect) ContainsRect(s Rect) bool {
	if s.Empty() {
		return true
	}
	return s.MinX >= r.MinX && s.MinY >= r.MinY && s.MaxX <= r.MaxX && s.MaxY <= r.MaxY
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%.3f,%.3f)x[%.3f,%.3f)", r.MinX, r.MaxX, r.MinY, r.MaxY)
}

// Axis identifies a coordinate axis.
type Axis int

// Axis values. They start at 1 so the zero value is detectably invalid.
const (
	AxisX Axis = iota + 1
	AxisY
)

// String implements fmt.Stringer.
func (a Axis) String() string {
	switch a {
	case AxisX:
		return "x"
	case AxisY:
		return "y"
	default:
		return fmt.Sprintf("axis(%d)", int(a))
	}
}

// LongerAxis returns the axis along which r is longer, preferring X on ties.
func (r Rect) LongerAxis() Axis {
	if r.Height() > r.Width() {
		return AxisY
	}
	return AxisX
}

// SplitAt cuts r along the given axis at coordinate v, returning the
// lower/left half and the upper/right half. If v lies outside r, one half is
// empty and the other equals r.
func (r Rect) SplitAt(axis Axis, v float64) (lo, hi Rect) {
	if r.Empty() {
		return Rect{}, Rect{}
	}
	switch axis {
	case AxisY:
		v = math.Min(math.Max(v, r.MinY), r.MaxY)
		lo = Rect{MinX: r.MinX, MinY: r.MinY, MaxX: r.MaxX, MaxY: v}
		hi = Rect{MinX: r.MinX, MinY: v, MaxX: r.MaxX, MaxY: r.MaxY}
	default:
		v = math.Min(math.Max(v, r.MinX), r.MaxX)
		lo = Rect{MinX: r.MinX, MinY: r.MinY, MaxX: v, MaxY: r.MaxY}
		hi = Rect{MinX: v, MinY: r.MinY, MaxX: r.MaxX, MaxY: r.MaxY}
	}
	if lo.Empty() {
		lo = Rect{}
	}
	if hi.Empty() {
		hi = Rect{}
	}
	return lo, hi
}

// SplitHalf cuts r into two equal pieces across its longer axis, the paper's
// "split into two equal pieces" policy. The first return value is the
// lower/left piece (the one Matrix hands to the new child server).
func (r Rect) SplitHalf() (lo, hi Rect) {
	axis := r.LongerAxis()
	if axis == AxisY {
		return r.SplitAt(AxisY, (r.MinY+r.MaxY)/2)
	}
	return r.SplitAt(AxisX, (r.MinX+r.MaxX)/2)
}
