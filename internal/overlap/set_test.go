package overlap

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"matrix/internal/id"
)

func TestNewSetNormalizes(t *testing.T) {
	tests := []struct {
		name string
		in   []id.ServerID
		want Set
	}{
		{"empty", nil, nil},
		{"single", []id.ServerID{3}, Set{3}},
		{"sorted", []id.ServerID{3, 1, 2}, Set{1, 2, 3}},
		{"dedup", []id.ServerID{2, 2, 1, 1}, Set{1, 2}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := NewSet(tt.in...)
			if !got.Equal(tt.want) {
				t.Fatalf("NewSet(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestSetContains(t *testing.T) {
	s := NewSet(1, 3, 5)
	for _, v := range []id.ServerID{1, 3, 5} {
		if !s.Contains(v) {
			t.Errorf("Contains(%v) = false", v)
		}
	}
	for _, v := range []id.ServerID{0, 2, 4, 6} {
		if s.Contains(v) {
			t.Errorf("Contains(%v) = true", v)
		}
	}
	var empty Set
	if empty.Contains(1) {
		t.Error("empty set contains nothing")
	}
}

func TestSetUnion(t *testing.T) {
	tests := []struct {
		a, b, want Set
	}{
		{NewSet(1, 2), NewSet(2, 3), NewSet(1, 2, 3)},
		{nil, NewSet(1), NewSet(1)},
		{NewSet(1), nil, NewSet(1)},
		{nil, nil, nil},
		{NewSet(5, 7), NewSet(1, 9), NewSet(1, 5, 7, 9)},
	}
	for _, tt := range tests {
		if got := tt.a.Union(tt.b); !got.Equal(tt.want) {
			t.Errorf("%v.Union(%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestSetWithout(t *testing.T) {
	s := NewSet(1, 2, 3)
	if got := s.Without(2); !got.Equal(NewSet(1, 3)) {
		t.Errorf("Without(2) = %v", got)
	}
	if got := s.Without(9); !got.Equal(s) {
		t.Errorf("Without(absent) = %v", got)
	}
	if got := NewSet(1).Without(1); got != nil {
		t.Errorf("Without(last) = %v, want nil", got)
	}
	// Original unchanged.
	if !s.Equal(NewSet(1, 2, 3)) {
		t.Error("Without mutated the receiver")
	}
}

func TestSetSubset(t *testing.T) {
	tests := []struct {
		a, b Set
		want bool
	}{
		{nil, NewSet(1), true},
		{NewSet(1), nil, false},
		{NewSet(1, 3), NewSet(1, 2, 3), true},
		{NewSet(1, 4), NewSet(1, 2, 3), false},
		{NewSet(1, 2, 3), NewSet(1, 2, 3), true},
	}
	for _, tt := range tests {
		if got := tt.a.IsSubsetOf(tt.b); got != tt.want {
			t.Errorf("%v.IsSubsetOf(%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestSetKeyCanonical(t *testing.T) {
	if NewSet(3, 1).Key() != NewSet(1, 3).Key() {
		t.Error("Key must be order-insensitive")
	}
	if NewSet(1, 3).Key() == NewSet(1, 2).Key() {
		t.Error("different sets must have different keys")
	}
	if NewSet().Key() != "" {
		t.Error("empty set key must be empty")
	}
	if NewSet(12).Key() == NewSet(1, 2).Key() {
		t.Error("key must be unambiguous between {12} and {1,2}")
	}
}

func TestSetString(t *testing.T) {
	if got := NewSet(2, 1).String(); got != "{1,2}" {
		t.Errorf("String = %q", got)
	}
	var empty Set
	if empty.String() != "{}" {
		t.Errorf("empty String = %q", empty.String())
	}
}

func TestSetClone(t *testing.T) {
	s := NewSet(1, 2)
	c := s.Clone()
	c[0] = 9
	if s[0] != 1 {
		t.Error("Clone shares storage")
	}
	if Set(nil).Clone() != nil {
		t.Error("nil Clone should stay nil")
	}
}

func genSet(rnd *rand.Rand) Set {
	n := rnd.Intn(6)
	ids := make([]id.ServerID, n)
	for i := range ids {
		ids[i] = id.ServerID(rnd.Intn(10) + 1)
	}
	return NewSet(ids...)
}

// Generate implements quick.Generator for Set.
func (Set) Generate(rnd *rand.Rand, size int) reflect.Value {
	return reflect.ValueOf(genSet(rnd))
}

func TestSetUnionProperties(t *testing.T) {
	comm := func(a, b Set) bool { return a.Union(b).Equal(b.Union(a)) }
	if err := quick.Check(comm, nil); err != nil {
		t.Errorf("union not commutative: %v", err)
	}
	subset := func(a, b Set) bool {
		u := a.Union(b)
		return a.IsSubsetOf(u) && b.IsSubsetOf(u)
	}
	if err := quick.Check(subset, nil); err != nil {
		t.Errorf("operands not subsets of union: %v", err)
	}
	idem := func(a Set) bool { return a.Union(a).Equal(a) }
	if err := quick.Check(idem, nil); err != nil {
		t.Errorf("union not idempotent: %v", err)
	}
}
