package overlap

import (
	"fmt"
	"sort"

	"matrix/internal/geom"
	"matrix/internal/id"
	"matrix/internal/space"
)

// ConsistencySet evaluates Equation 1 of the paper exactly: the set of
// servers other than owner whose partitions intersect the visibility circle
// of radius r centered at p. It is the ground truth the table-based fast
// path is checked against, and what the Matrix Coordinator answers for rare
// non-proximal interactions.
func ConsistencySet(p geom.Point, owner id.ServerID, parts []space.Partition, r float64) Set {
	var out Set
	for _, part := range parts {
		if part.Owner == owner {
			continue
		}
		if part.Bounds.IntersectsCircle(p, r) {
			out = append(out, part.Owner)
		}
	}
	if out == nil {
		return nil
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Region is one overlap region: a rectangle of the owner's partition whose
// points all share the same non-empty consistency set. "An update at any
// point in that overlap region requires all the servers in that overlap
// region to be informed of the update" (paper §3.1).
type Region struct {
	Bounds geom.Rect
	Peers  Set
}

// Table is one server's routing table: the overlap regions of its partition
// plus a grid index over them. The Matrix Coordinator builds tables with
// axis-aligned bounding-box arithmetic (exactly the computation the paper
// describes) and pushes them to Matrix servers; lookups on the packet path
// touch no locks and allocate nothing.
//
// The AABB construction is conservative near partition corners: it may
// include a peer whose true Euclidean distance is slightly beyond R. That
// errs on the side of more consistency (a superset of C(σ)), never less.
type Table struct {
	owner   id.ServerID
	bounds  geom.Rect
	radius  float64
	version uint64

	// Cell grid: xs and ys are the sorted cut coordinates; cell (i,j) spans
	// [xs[i],xs[i+1]) x [ys[j],ys[j+1]) and holds an index into sets
	// (-1 = interior, empty consistency set).
	xs, ys []float64
	cells  []int32 // row-major: cells[j*(len(xs)-1)+i]
	sets   []Set

	regions []Region // merged maximal regions, for size metrics and tests
}

// BuildTable computes the overlap table for owner given the current global
// partition list and the game's radius of visibility. Partitions other than
// the owner's whose R-expansion misses the owner's bounds are pruned
// immediately, which is what keeps tables small when R ≪ partition size.
func BuildTable(owner id.ServerID, parts []space.Partition, radius float64, version uint64) (*Table, error) {
	var bounds geom.Rect
	found := false
	for _, p := range parts {
		if p.Owner == owner {
			bounds = p.Bounds
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("overlap: owner %v not in partition list", owner)
	}
	if radius < 0 {
		return nil, fmt.Errorf("overlap: negative radius %v", radius)
	}

	t := &Table{owner: owner, bounds: bounds, radius: radius, version: version}

	// Clip every neighbour's expanded rectangle against the owner's bounds.
	type clip struct {
		peer id.ServerID
		rect geom.Rect
	}
	var clips []clip
	for _, p := range parts {
		if p.Owner == owner {
			continue
		}
		c := p.Bounds.Expand(radius).Intersect(bounds)
		if c.Empty() {
			continue
		}
		clips = append(clips, clip{peer: p.Owner, rect: c})
	}
	if len(clips) == 0 {
		// Whole partition is interior: single empty cell.
		t.xs = []float64{bounds.MinX, bounds.MaxX}
		t.ys = []float64{bounds.MinY, bounds.MaxY}
		t.cells = []int32{-1}
		return t, nil
	}

	// Build the arrangement grid from all clip edges.
	xs := []float64{bounds.MinX, bounds.MaxX}
	ys := []float64{bounds.MinY, bounds.MaxY}
	for _, c := range clips {
		xs = append(xs, c.rect.MinX, c.rect.MaxX)
		ys = append(ys, c.rect.MinY, c.rect.MaxY)
	}
	t.xs = dedupSorted(xs)
	t.ys = dedupSorted(ys)
	nx, ny := len(t.xs)-1, len(t.ys)-1

	// Assign each cell its consistency set (deduplicated via canonical key).
	t.cells = make([]int32, nx*ny)
	setIdx := make(map[string]int32)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			center := geom.Pt((t.xs[i]+t.xs[i+1])/2, (t.ys[j]+t.ys[j+1])/2)
			var members Set
			for _, c := range clips {
				if c.rect.Contains(center) {
					members = append(members, c.peer)
				}
			}
			if members == nil {
				t.cells[j*nx+i] = -1
				continue
			}
			sort.Slice(members, func(a, b int) bool { return members[a] < members[b] })
			key := members.Key()
			idx, ok := setIdx[key]
			if !ok {
				idx = int32(len(t.sets))
				t.sets = append(t.sets, members)
				setIdx[key] = idx
			}
			t.cells[j*nx+i] = idx
		}
	}

	t.regions = t.mergeRegions()
	return t, nil
}

// dedupSorted sorts and removes duplicates (within a tolerance of exact
// equality; cuts come from identical float arithmetic so exact comparison is
// safe).
func dedupSorted(v []float64) []float64 {
	sort.Float64s(v)
	w := 1
	for r := 1; r < len(v); r++ {
		if v[r] != v[r-1] {
			v[w] = v[r]
			w++
		}
	}
	return v[:w]
}

// mergeRegions coalesces grid cells with identical sets into maximal
// rectangles (greedy: grow right, then grow down full-width).
func (t *Table) mergeRegions() []Region {
	nx, ny := len(t.xs)-1, len(t.ys)-1
	visited := make([]bool, nx*ny)
	var out []Region
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			at := j*nx + i
			if visited[at] || t.cells[at] < 0 {
				continue
			}
			want := t.cells[at]
			// Grow right.
			i2 := i
			for i2+1 < nx && !visited[j*nx+i2+1] && t.cells[j*nx+i2+1] == want {
				i2++
			}
			// Grow down as long as the whole row span matches.
			j2 := j
			for j2+1 < ny {
				ok := true
				for k := i; k <= i2; k++ {
					if visited[(j2+1)*nx+k] || t.cells[(j2+1)*nx+k] != want {
						ok = false
						break
					}
				}
				if !ok {
					break
				}
				j2++
			}
			for jj := j; jj <= j2; jj++ {
				for ii := i; ii <= i2; ii++ {
					visited[jj*nx+ii] = true
				}
			}
			out = append(out, Region{
				Bounds: geom.R(t.xs[i], t.ys[j], t.xs[i2+1], t.ys[j2+1]),
				Peers:  t.sets[want].Clone(),
			})
		}
	}
	return out
}

// Owner returns the server this table belongs to.
func (t *Table) Owner() id.ServerID { return t.owner }

// Bounds returns the partition the table covers.
func (t *Table) Bounds() geom.Rect { return t.bounds }

// Radius returns the visibility radius the table was built for.
func (t *Table) Radius() float64 { return t.radius }

// Version returns the topology version the table was built from.
func (t *Table) Version() uint64 { return t.version }

// Regions returns the merged overlap regions (copy-free; callers must not
// mutate).
func (t *Table) Regions() []Region { return t.regions }

// OverlapArea returns the total area of all overlap regions — the quantity
// the paper's microbenchmark correlates with inter-Matrix traffic.
func (t *Table) OverlapArea() float64 {
	var a float64
	for _, r := range t.regions {
		a += r.Bounds.Area()
	}
	return a
}

// OverlapFraction returns OverlapArea divided by the partition area.
func (t *Table) OverlapFraction() float64 {
	if t.bounds.Area() == 0 {
		return 0
	}
	return t.OverlapArea() / t.bounds.Area()
}

// Lookup returns the consistency set for a point in the owner's partition.
// It is the paper's O(1) fast-path operation: two branchless binary searches
// over tiny cut arrays and one slice index; no allocation, no locks. Points
// outside the partition return nil (the caller verifies ranges separately).
func (t *Table) Lookup(p geom.Point) Set {
	if !t.bounds.Contains(p) {
		return nil
	}
	i := searchCut(t.xs, p.X)
	j := searchCut(t.ys, p.Y)
	nx := len(t.xs) - 1
	if i < 0 || i >= nx || j < 0 || j >= len(t.ys)-1 {
		return nil
	}
	idx := t.cells[j*nx+i]
	if idx < 0 {
		return nil
	}
	return t.sets[idx]
}

// searchCut returns the cell index k such that cuts[k] <= v < cuts[k+1].
func searchCut(cuts []float64, v float64) int {
	lo, hi := 0, len(cuts)-1
	for lo < hi-1 {
		mid := (lo + hi) / 2
		if cuts[mid] <= v {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// NewTableFromRegions reconstructs a lookup table from overlap regions
// received over the wire. Matrix servers call this when the MC pushes a
// fresh OverlapTable, rebuilding the same O(1) grid index the MC computed.
func NewTableFromRegions(owner id.ServerID, bounds geom.Rect, radius float64, version uint64, regions []Region) (*Table, error) {
	if bounds.Empty() {
		return nil, fmt.Errorf("overlap: empty bounds for %v", owner)
	}
	t := &Table{owner: owner, bounds: bounds, radius: radius, version: version}
	t.regions = make([]Region, len(regions))
	for i, r := range regions {
		if r.Bounds.Empty() || !bounds.ContainsRect(r.Bounds) {
			return nil, fmt.Errorf("overlap: region %v escapes bounds %v", r.Bounds, bounds)
		}
		t.regions[i] = Region{Bounds: r.Bounds, Peers: r.Peers.Clone()}
	}
	xs := []float64{bounds.MinX, bounds.MaxX}
	ys := []float64{bounds.MinY, bounds.MaxY}
	for _, r := range t.regions {
		xs = append(xs, r.Bounds.MinX, r.Bounds.MaxX)
		ys = append(ys, r.Bounds.MinY, r.Bounds.MaxY)
	}
	t.xs = dedupSorted(xs)
	t.ys = dedupSorted(ys)
	nx, ny := len(t.xs)-1, len(t.ys)-1
	t.cells = make([]int32, nx*ny)
	setIdx := make(map[string]int32)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			center := geom.Pt((t.xs[i]+t.xs[i+1])/2, (t.ys[j]+t.ys[j+1])/2)
			t.cells[j*nx+i] = -1
			for _, r := range t.regions {
				if r.Bounds.Contains(center) {
					key := r.Peers.Key()
					idx, ok := setIdx[key]
					if !ok {
						idx = int32(len(t.sets))
						t.sets = append(t.sets, r.Peers.Clone())
						setIdx[key] = idx
					}
					t.cells[j*nx+i] = idx
					break
				}
			}
		}
	}
	return t, nil
}

// BuildAll computes the tables for every partition at once (what the MC does
// after each split or reclamation).
func BuildAll(parts []space.Partition, radius float64, version uint64) (map[id.ServerID]*Table, error) {
	out := make(map[id.ServerID]*Table, len(parts))
	for _, p := range parts {
		t, err := BuildTable(p.Owner, parts, radius, version)
		if err != nil {
			return nil, err
		}
		out[p.Owner] = t
	}
	return out, nil
}
