package overlap

import (
	"math/rand"
	"testing"

	"matrix/internal/geom"
	"matrix/internal/id"
	"matrix/internal/space"
)

// twoPartitions builds the canonical two-server world: server 2 owns the
// left half [0,50), server 1 the right half [50,100) of a 100x100 world.
func twoPartitions() []space.Partition {
	return []space.Partition{
		{Owner: 1, Bounds: geom.R(50, 0, 100, 100)},
		{Owner: 2, Bounds: geom.R(0, 0, 50, 100)},
	}
}

func TestConsistencySetTwoServers(t *testing.T) {
	parts := twoPartitions()
	const r = 5
	tests := []struct {
		name  string
		p     geom.Point
		owner id.ServerID
		want  Set
	}{
		{"interior-right", geom.Pt(80, 50), 1, nil},
		{"near-boundary-right", geom.Pt(52, 50), 1, NewSet(2)},
		{"at-boundary", geom.Pt(50, 50), 1, NewSet(2)},
		{"interior-left", geom.Pt(20, 50), 2, nil},
		{"near-boundary-left", geom.Pt(47, 50), 2, NewSet(1)},
		{"exactly-r-away", geom.Pt(55, 50), 1, NewSet(2)},
		{"just-past-r", geom.Pt(55.001, 50), 1, nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := ConsistencySet(tt.p, tt.owner, parts, r)
			if !got.Equal(tt.want) {
				t.Fatalf("C(%v) = %v, want %v", tt.p, got, tt.want)
			}
		})
	}
}

func TestConsistencySetInfiniteRadiusIsGlobal(t *testing.T) {
	// "If R is infinite, all updates must be globally propagated" (§3.1).
	parts := twoPartitions()
	got := ConsistencySet(geom.Pt(80, 50), 1, parts, 1e18)
	if !got.Equal(NewSet(2)) {
		t.Fatalf("C = %v, want all other servers", got)
	}
}

func TestBuildTableTwoServersBand(t *testing.T) {
	parts := twoPartitions()
	const r = 5.0
	tab, err := BuildTable(1, parts, r, 7)
	if err != nil {
		t.Fatalf("BuildTable: %v", err)
	}
	if tab.Owner() != 1 || tab.Radius() != r || tab.Version() != 7 {
		t.Errorf("metadata: owner=%v radius=%v version=%d", tab.Owner(), tab.Radius(), tab.Version())
	}
	// The overlap area must be exactly the r-wide band along the shared
	// edge: r * world height.
	if got, want := tab.OverlapArea(), r*100.0; got != want {
		t.Errorf("OverlapArea = %v, want %v", got, want)
	}
	if got, want := tab.OverlapFraction(), r*100.0/(50*100); got != want {
		t.Errorf("OverlapFraction = %v, want %v", got, want)
	}
	regions := tab.Regions()
	if len(regions) != 1 {
		t.Fatalf("got %d regions, want 1 band: %+v", len(regions), regions)
	}
	if !regions[0].Bounds.Eq(geom.R(50, 0, 55, 100)) {
		t.Errorf("band = %v", regions[0].Bounds)
	}
	if !regions[0].Peers.Equal(NewSet(2)) {
		t.Errorf("band peers = %v", regions[0].Peers)
	}
}

func TestTableLookupTwoServers(t *testing.T) {
	parts := twoPartitions()
	tab, err := BuildTable(1, parts, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		p    geom.Point
		want Set
	}{
		{geom.Pt(80, 50), nil},       // deep interior
		{geom.Pt(52, 10), NewSet(2)}, // inside band
		{geom.Pt(50, 0), NewSet(2)},  // band min corner
		{geom.Pt(54.999, 99), NewSet(2)},
		{geom.Pt(55, 50), nil}, // band max edge is exclusive
		{geom.Pt(20, 50), nil}, // not our partition at all
		{geom.Pt(-1, -1), nil}, // outside world
	}
	for _, tt := range tests {
		if got := tab.Lookup(tt.p); !got.Equal(tt.want) {
			t.Errorf("Lookup(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestZeroRadiusMeansNoOverlap(t *testing.T) {
	parts := twoPartitions()
	tab, err := BuildTable(1, parts, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// With R=0 the expansion adds nothing; the clip of the neighbour
	// against our half-open partition is a zero-width rect => no regions.
	if got := tab.OverlapArea(); got != 0 {
		t.Errorf("OverlapArea = %v, want 0", got)
	}
	if got := tab.Lookup(geom.Pt(50, 50)); got != nil {
		t.Errorf("Lookup on boundary with R=0 = %v, want nil", got)
	}
}

func TestBuildTableErrors(t *testing.T) {
	parts := twoPartitions()
	if _, err := BuildTable(9, parts, 5, 1); err == nil {
		t.Error("unknown owner must fail")
	}
	if _, err := BuildTable(1, parts, -1, 1); err == nil {
		t.Error("negative radius must fail")
	}
}

func TestBuildAll(t *testing.T) {
	parts := twoPartitions()
	tabs, err := BuildAll(parts, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 2 {
		t.Fatalf("got %d tables", len(tabs))
	}
	for owner, tab := range tabs {
		if tab.Owner() != owner {
			t.Errorf("table keyed %v has owner %v", owner, tab.Owner())
		}
		if tab.Version() != 3 {
			t.Errorf("version = %d", tab.Version())
		}
	}
}

func TestFourQuadrantsCornerSet(t *testing.T) {
	// Four quadrants: a point near the center of the world sees all three
	// other servers — the paper's Figure 1(a) three-server overlap.
	parts := []space.Partition{
		{Owner: 1, Bounds: geom.R(50, 50, 100, 100)}, // NE
		{Owner: 2, Bounds: geom.R(0, 50, 50, 100)},   // NW
		{Owner: 3, Bounds: geom.R(0, 0, 50, 50)},     // SW
		{Owner: 4, Bounds: geom.R(50, 0, 100, 50)},   // SE
	}
	tab, err := BuildTable(1, parts, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Just inside NE's min corner: all three peers.
	if got := tab.Lookup(geom.Pt(51, 51)); !got.Equal(NewSet(2, 3, 4)) {
		t.Errorf("corner Lookup = %v, want {2,3,4}", got)
	}
	// On the west band but north of the corner zone: only NW.
	if got := tab.Lookup(geom.Pt(51, 80)); !got.Equal(NewSet(2)) {
		t.Errorf("west band Lookup = %v, want {2}", got)
	}
	// South band east of corner zone: only SE.
	if got := tab.Lookup(geom.Pt(80, 51)); !got.Equal(NewSet(4)) {
		t.Errorf("south band Lookup = %v, want {4}", got)
	}
	// Deep interior: empty.
	if got := tab.Lookup(geom.Pt(90, 90)); got != nil {
		t.Errorf("interior Lookup = %v, want nil", got)
	}
	// Overlap area: west band (5x50) + south band (50x5) - double-counted
	// 5x5 corner counted once each set; total covered area = 5*50 + 5*50 - 25.
	want := 5.0*50 + 5.0*50 - 25
	if got := tab.OverlapArea(); got != want {
		t.Errorf("OverlapArea = %v, want %v", got, want)
	}
}

func TestRegionsDisjointAndConsistentWithLookup(t *testing.T) {
	parts := randomPartitions(t, 12, 99)
	tabs, err := BuildAll(parts, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range tabs {
		regions := tab.Regions()
		for i := range regions {
			if regions[i].Bounds.Empty() {
				t.Fatalf("empty region in table of %v", tab.Owner())
			}
			if len(regions[i].Peers) == 0 {
				t.Fatalf("region with empty peer set in table of %v", tab.Owner())
			}
			for j := i + 1; j < len(regions); j++ {
				if regions[i].Bounds.Intersects(regions[j].Bounds) {
					t.Fatalf("regions %d and %d of %v overlap", i, j, tab.Owner())
				}
			}
			// A point inside the region must look up to the same set.
			c := regions[i].Bounds.Center()
			if got := tab.Lookup(c); !got.Equal(regions[i].Peers) {
				t.Fatalf("Lookup(%v) = %v, region says %v", c, got, regions[i].Peers)
			}
		}
	}
}

// randomPartitions drives the space fuzzer to produce a realistic dynamic
// partitioning with n servers.
func randomPartitions(t *testing.T, n int, seed int64) []space.Partition {
	t.Helper()
	rnd := rand.New(rand.NewSource(seed))
	m, err := space.NewMap(geom.R(0, 0, 1000, 1000), 1)
	if err != nil {
		t.Fatal(err)
	}
	var gen id.Generator
	gen.NextServer()
	live := []id.ServerID{1}
	for len(live) < n {
		victim := live[rnd.Intn(len(live))]
		child := gen.NextServer()
		if _, _, err := m.Split(victim, child, space.SplitToLeft{}); err != nil {
			t.Fatal(err)
		}
		live = append(live, child)
	}
	return m.Partitions()
}

// TestTableIsConservativeSupersetOfExact verifies the key correctness
// property: the AABB-based table never returns fewer servers than the exact
// Euclidean consistency set (Equation 1). It may return slightly more near
// corners; that costs bandwidth, never consistency.
func TestTableIsConservativeSupersetOfExact(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		parts := randomPartitions(t, 10, seed)
		const r = 12.5
		tabs, err := BuildAll(parts, r, 1)
		if err != nil {
			t.Fatal(err)
		}
		rnd := rand.New(rand.NewSource(seed * 100))
		for i := 0; i < 3000; i++ {
			p := geom.Pt(rnd.Float64()*1000, rnd.Float64()*1000)
			var owner id.ServerID
			for _, part := range parts {
				if part.Bounds.Contains(p) {
					owner = part.Owner
					break
				}
			}
			if !owner.Valid() {
				continue // on a max edge of the world
			}
			exact := ConsistencySet(p, owner, parts, r)
			table := tabs[owner].Lookup(p)
			if !exact.IsSubsetOf(table) {
				t.Fatalf("seed %d point %v owner %v: exact %v ⊄ table %v",
					seed, p, owner, exact, table)
			}
			// And the table itself must match the AABB ground truth
			// exactly: peer listed iff its R-expansion contains p.
			for _, part := range parts {
				if part.Owner == owner {
					continue
				}
				inExp := part.Bounds.Expand(r).Contains(p)
				if inExp != table.Contains(part.Owner) {
					t.Fatalf("seed %d point %v: AABB says %v for peer %v, table says %v",
						seed, p, inExp, part.Owner, table.Contains(part.Owner))
				}
			}
		}
	}
}

func TestTableLookupNoAlloc(t *testing.T) {
	parts := randomPartitions(t, 8, 5)
	tab, err := BuildTable(1, parts, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := tab.Bounds(), 0
	p := b.Center()
	allocs := testing.AllocsPerRun(100, func() {
		_ = tab.Lookup(p)
	})
	if allocs != 0 {
		t.Errorf("Lookup allocates %v per run, want 0", allocs)
	}
}

func TestSingleServerNoRegions(t *testing.T) {
	parts := []space.Partition{{Owner: 1, Bounds: geom.R(0, 0, 100, 100)}}
	tab, err := BuildTable(1, parts, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Regions()) != 0 {
		t.Errorf("single server should have no overlap regions, got %d", len(tab.Regions()))
	}
	if got := tab.Lookup(geom.Pt(1, 1)); got != nil {
		t.Errorf("Lookup = %v, want nil", got)
	}
}
