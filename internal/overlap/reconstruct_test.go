package overlap

import (
	"math/rand"
	"testing"

	"matrix/internal/geom"
)

func TestReconstructMatchesOriginal(t *testing.T) {
	for _, seed := range []int64{11, 22, 33} {
		parts := randomPartitions(t, 9, seed)
		const r = 15.0
		tabs, err := BuildAll(parts, r, 4)
		if err != nil {
			t.Fatal(err)
		}
		rnd := rand.New(rand.NewSource(seed))
		for _, orig := range tabs {
			rebuilt, err := NewTableFromRegions(orig.Owner(), orig.Bounds(), orig.Radius(), orig.Version(), orig.Regions())
			if err != nil {
				t.Fatalf("reconstruct %v: %v", orig.Owner(), err)
			}
			if rebuilt.Owner() != orig.Owner() || rebuilt.Version() != orig.Version() {
				t.Fatal("metadata mismatch")
			}
			if rebuilt.OverlapArea() != orig.OverlapArea() {
				t.Fatalf("OverlapArea %v != %v", rebuilt.OverlapArea(), orig.OverlapArea())
			}
			// Lookups must agree everywhere in the partition.
			b := orig.Bounds()
			for i := 0; i < 1000; i++ {
				p := geom.Pt(
					b.MinX+rnd.Float64()*b.Width(),
					b.MinY+rnd.Float64()*b.Height(),
				)
				if got, want := rebuilt.Lookup(p), orig.Lookup(p); !got.Equal(want) {
					t.Fatalf("owner %v point %v: rebuilt %v, original %v", orig.Owner(), p, got, want)
				}
			}
		}
	}
}

func TestReconstructValidation(t *testing.T) {
	if _, err := NewTableFromRegions(1, geom.Rect{}, 5, 1, nil); err == nil {
		t.Error("empty bounds must fail")
	}
	// Region escaping bounds.
	regions := []Region{{Bounds: geom.R(0, 0, 20, 20), Peers: NewSet(2)}}
	if _, err := NewTableFromRegions(1, geom.R(0, 0, 10, 10), 5, 1, regions); err == nil {
		t.Error("escaping region must fail")
	}
	// Empty region rect.
	regions = []Region{{Bounds: geom.Rect{}, Peers: NewSet(2)}}
	if _, err := NewTableFromRegions(1, geom.R(0, 0, 10, 10), 5, 1, regions); err == nil {
		t.Error("empty region must fail")
	}
}

func TestReconstructEmptyRegionList(t *testing.T) {
	tab, err := NewTableFromRegions(1, geom.R(0, 0, 10, 10), 5, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.Lookup(geom.Pt(5, 5)); got != nil {
		t.Errorf("Lookup = %v, want nil", got)
	}
	if tab.OverlapArea() != 0 {
		t.Error("no regions means zero overlap area")
	}
}

func TestReconstructDoesNotAliasInput(t *testing.T) {
	regions := []Region{{Bounds: geom.R(0, 0, 5, 10), Peers: NewSet(2, 3)}}
	tab, err := NewTableFromRegions(1, geom.R(0, 0, 10, 10), 5, 1, regions)
	if err != nil {
		t.Fatal(err)
	}
	regions[0].Peers[0] = 99
	if got := tab.Lookup(geom.Pt(1, 1)); !got.Equal(NewSet(2, 3)) {
		t.Errorf("table aliased caller's peer slice: %v", got)
	}
}
