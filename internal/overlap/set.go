// Package overlap implements the paper's localized-consistency machinery:
// consistency sets (Equation 1), overlap regions, and the per-server lookup
// tables the Matrix Coordinator distributes so that Matrix servers can
// resolve "which peers must see this update" with an O(1) table lookup on
// the packet fast path.
package overlap

import (
	"sort"
	"strconv"
	"strings"

	"matrix/internal/id"
)

// Set is a sorted, duplicate-free collection of server IDs — the value of a
// consistency set C(σ). The zero value is the empty set.
type Set []id.ServerID

// NewSet builds a normalized Set from arbitrary IDs.
func NewSet(ids ...id.ServerID) Set {
	if len(ids) == 0 {
		return nil
	}
	out := make(Set, len(ids))
	copy(out, ids)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	// Compact duplicates in place.
	w := 1
	for r := 1; r < len(out); r++ {
		if out[r] != out[r-1] {
			out[w] = out[r]
			w++
		}
	}
	return out[:w]
}

// Contains reports whether s includes v.
func (s Set) Contains(v id.ServerID) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	return i < len(s) && s[i] == v
}

// Equal reports whether two sets hold the same IDs.
func (s Set) Equal(o Set) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Union returns the union of s and o as a new Set.
func (s Set) Union(o Set) Set {
	out := make(Set, 0, len(s)+len(o))
	i, j := 0, 0
	for i < len(s) && j < len(o) {
		switch {
		case s[i] < o[j]:
			out = append(out, s[i])
			i++
		case s[i] > o[j]:
			out = append(out, o[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, o[j:]...)
	if len(out) == 0 {
		return nil
	}
	return out
}

// Without returns s with v removed, sharing no storage with s.
func (s Set) Without(v id.ServerID) Set {
	out := make(Set, 0, len(s))
	for _, e := range s {
		if e != v {
			out = append(out, e)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// IsSubsetOf reports whether every element of s is in o.
func (s Set) IsSubsetOf(o Set) bool {
	i, j := 0, 0
	for i < len(s) && j < len(o) {
		switch {
		case s[i] == o[j]:
			i++
			j++
		case s[i] > o[j]:
			j++
		default:
			return false
		}
	}
	return i == len(s)
}

// Clone returns a copy of s.
func (s Set) Clone() Set {
	if len(s) == 0 {
		return nil
	}
	out := make(Set, len(s))
	copy(out, s)
	return out
}

// Key returns a canonical string usable as a map key for grouping points by
// identical consistency sets (how overlap regions are defined).
func (s Set) Key() string {
	if len(s) == 0 {
		return ""
	}
	var b strings.Builder
	for i, e := range s {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatUint(uint64(e), 10))
	}
	return b.String()
}

// String implements fmt.Stringer.
func (s Set) String() string {
	if len(s) == 0 {
		return "{}"
	}
	return "{" + s.Key() + "}"
}
