// Package transport carries protocol messages between Matrix components.
//
// Two interchangeable implementations are provided behind the Network
// interface: TCP (production mode, used by the cmd/ binaries) and an
// in-memory network (used by integration tests and anywhere real sockets
// are unnecessary). Both frame messages with the protocol codec, so byte
// counts are identical across the two — which is what lets the simulation
// harness report the paper's bandwidth microbenchmarks faithfully.
package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"matrix/internal/protocol"
)

// Transport errors.
var (
	ErrClosed      = errors.New("transport: connection closed")
	ErrNoSuchAddr  = errors.New("transport: no listener at address")
	ErrAddrInUse   = errors.New("transport: address already in use")
	ErrListnClosed = errors.New("transport: listener closed")
)

// Conn is a bidirectional, ordered, reliable message pipe.
type Conn interface {
	// Send encodes and transmits one message.
	Send(m protocol.Message) error
	// SendBatch transmits ms in order as a single Batch frame (chunked
	// only if MaxFrameSize forces it; one message is framed directly, so
	// SendBatch of one message costs exactly the same bytes as Send).
	// This is the per-tick amortized path: one frame per peer per tick
	// instead of one per message.
	SendBatch(ms []protocol.Message) error
	// Recv blocks until a message arrives or the connection closes.
	// Batch frames are unpacked transparently: the contained messages are
	// returned one at a time, in order.
	Recv() (protocol.Message, error)
	// Close shuts the connection down; pending Recv calls return ErrClosed.
	Close() error
	// RemoteAddr names the peer for diagnostics.
	RemoteAddr() string
	// BytesSent returns the total payload bytes sent on this connection.
	BytesSent() uint64
	// BytesReceived returns the total payload bytes received.
	BytesReceived() uint64
}

// Listener accepts inbound connections.
type Listener interface {
	// Accept blocks for the next inbound connection.
	Accept() (Conn, error)
	// Addr returns the address peers should dial.
	Addr() string
	// Close stops accepting; pending Accepts return ErrListnClosed.
	Close() error
}

// Network creates listeners and dials peers. Implementations must be safe
// for concurrent use.
type Network interface {
	// Listen starts accepting at addr ("" lets the implementation choose).
	Listen(addr string) (Listener, error)
	// Dial connects to a listener.
	Dial(addr string) (Conn, error)
}

// TimeoutDialer is implemented by networks whose Dial can enforce a
// deadline natively (TCP). Callers that need a bounded dial should use it
// when available and fall back to racing Dial against a timer otherwise.
type TimeoutDialer interface {
	// DialTimeout connects to a listener, failing after d.
	DialTimeout(addr string, d time.Duration) (Conn, error)
}

// --- TCP implementation ---

// TCPNetwork is the production transport over real sockets.
type TCPNetwork struct{}

// Listen implements Network. An empty addr binds an ephemeral localhost
// port.
func (TCPNetwork) Listen(addr string) (Listener, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &tcpListener{l: l}, nil
}

// Dial implements Network.
func (TCPNetwork) Dial(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return newTCPConn(c), nil
}

// DialTimeout implements TimeoutDialer: a dial to a blackholed address
// fails after d instead of the kernel's (much longer) SYN timeout.
func (TCPNetwork) DialTimeout(addr string, d time.Duration) (Conn, error) {
	c, err := net.DialTimeout("tcp", addr, d)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return newTCPConn(c), nil
}

type tcpListener struct {
	l net.Listener
}

func (t *tcpListener) Accept() (Conn, error) {
	c, err := t.l.Accept()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrListnClosed, err)
	}
	return newTCPConn(c), nil
}

func (t *tcpListener) Addr() string { return t.l.Addr().String() }

func (t *tcpListener) Close() error { return t.l.Close() }

// pendingMsgs drains received Batch frames one message at a time. Both
// Conn implementations share it so the unpack semantics (consumed slots
// cleared, empty batches yield nothing, pending drained before the next
// frame) cannot diverge between the transports the byte-parity tests
// hold equal. Callers synchronize access with their receive mutex.
type pendingMsgs struct{ q []protocol.Message }

// pop returns the next pending message, if any.
func (p *pendingMsgs) pop() (protocol.Message, bool) {
	if len(p.q) == 0 {
		return nil, false
	}
	m := p.q[0]
	p.q[0] = nil
	p.q = p.q[1:]
	return m, true
}

// absorb stashes a Batch's contents and reports whether m was one (the
// caller then loops back to pop; an empty batch legitimately yields
// nothing).
func (p *pendingMsgs) absorb(m protocol.Message) bool {
	b, ok := m.(*protocol.Batch)
	if ok {
		p.q = b.Msgs
	}
	return ok
}

type tcpConn struct {
	c        net.Conn
	writeMu  sync.Mutex // frames must not interleave; also guards encBuf/endsBuf
	encBuf   []byte     // reused encode buffer
	endsBuf  []int      // reused frame-boundary buffer
	readMu   sync.Mutex // guards readBuf and pending
	readBuf  []byte     // reused frame buffer (decoded messages never alias it)
	pending  pendingMsgs
	countsMu sync.Mutex
	sent     uint64
	received uint64
}

func newTCPConn(c net.Conn) *tcpConn { return &tcpConn{c: c} }

// maxRetainedBuf caps the encode/read buffers a connection keeps between
// calls: one burst tick (a mass migration, a huge state transfer) must not
// pin multi-MB buffers on every peer connection forever.
const maxRetainedBuf = 64 << 10

// retain keeps buf for reuse unless it grew past maxRetainedBuf.
func retain(buf []byte) []byte {
	if cap(buf) > maxRetainedBuf {
		return nil
	}
	return buf[:0]
}

func (t *tcpConn) Send(m protocol.Message) error {
	t.writeMu.Lock()
	defer t.writeMu.Unlock()
	frame, err := protocol.AppendEncode(t.encBuf[:0], m)
	if err != nil {
		return err
	}
	t.encBuf = retain(frame)
	return t.write(frame)
}

func (t *tcpConn) SendBatch(ms []protocol.Message) error {
	if len(ms) == 0 {
		return nil
	}
	t.writeMu.Lock()
	defer t.writeMu.Unlock()
	// All frames are contiguous in the buffer: one Write regardless of how
	// many Batch frames MaxFrameSize forced. Both scratch buffers are
	// reused, so the steady-state batch send does not allocate.
	out, ends, err := protocol.AppendBatches(t.encBuf[:0], t.endsBuf, ms)
	t.endsBuf = ends[:0]
	if err != nil {
		return err
	}
	t.encBuf = retain(out)
	return t.write(out)
}

// write sends raw pre-framed bytes and accounts them. Callers hold writeMu.
func (t *tcpConn) write(frames []byte) error {
	if _, err := t.c.Write(frames); err != nil {
		return fmt.Errorf("%w: %v", ErrClosed, err)
	}
	t.countsMu.Lock()
	t.sent += uint64(len(frames))
	t.countsMu.Unlock()
	return nil
}

func (t *tcpConn) Recv() (protocol.Message, error) {
	t.readMu.Lock()
	defer t.readMu.Unlock()
	for {
		if m, ok := t.pending.pop(); ok {
			return m, nil
		}
		frame, err := protocol.ReadFrame(t.c, t.readBuf)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrClosed, err)
		}
		t.readBuf = retain(frame)
		t.countsMu.Lock()
		t.received += uint64(len(frame))
		t.countsMu.Unlock()
		m, err := protocol.Unmarshal(frame)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrClosed, err)
		}
		if !t.pending.absorb(m) {
			return m, nil
		}
	}
}

func (t *tcpConn) Close() error { return t.c.Close() }

func (t *tcpConn) RemoteAddr() string { return t.c.RemoteAddr().String() }

func (t *tcpConn) BytesSent() uint64 {
	t.countsMu.Lock()
	defer t.countsMu.Unlock()
	return t.sent
}

func (t *tcpConn) BytesReceived() uint64 {
	t.countsMu.Lock()
	defer t.countsMu.Unlock()
	return t.received
}

// --- in-memory implementation ---

// MemNetwork is an in-process Network keyed by string addresses. It is the
// transport used by integration tests: identical framing and byte counts to
// TCP with no sockets.
type MemNetwork struct {
	mu        sync.Mutex
	listeners map[string]*memListener
	nextAuto  int
}

// NewMemNetwork returns an empty in-memory network.
func NewMemNetwork() *MemNetwork {
	return &MemNetwork{listeners: make(map[string]*memListener)}
}

// Listen implements Network.
func (n *MemNetwork) Listen(addr string) (Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if addr == "" {
		n.nextAuto++
		addr = fmt.Sprintf("mem:%d", n.nextAuto)
	}
	if _, ok := n.listeners[addr]; ok {
		return nil, fmt.Errorf("%w: %s", ErrAddrInUse, addr)
	}
	l := &memListener{
		net:     n,
		addr:    addr,
		backlog: make(chan *memConn, 1),
		closed:  make(chan struct{}),
	}
	n.listeners[addr] = l
	return l, nil
}

// Dial implements Network.
func (n *MemNetwork) Dial(addr string) (Conn, error) {
	n.mu.Lock()
	l, ok := n.listeners[addr]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchAddr, addr)
	}
	client, server := newMemPair(addr, "dialer")
	select {
	case l.backlog <- server:
		return client, nil
	case <-l.closed:
		return nil, fmt.Errorf("%w: %s", ErrNoSuchAddr, addr)
	}
}

func (n *MemNetwork) remove(addr string) {
	n.mu.Lock()
	delete(n.listeners, addr)
	n.mu.Unlock()
}

type memListener struct {
	net     *MemNetwork
	addr    string
	backlog chan *memConn
	closed  chan struct{}
	once    sync.Once
}

func (l *memListener) Accept() (Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.closed:
		return nil, ErrListnClosed
	}
}

func (l *memListener) Addr() string { return l.addr }

func (l *memListener) Close() error {
	l.once.Do(func() {
		close(l.closed)
		l.net.remove(l.addr)
	})
	return nil
}

// memQueue is an unbounded FIFO of frames with close semantics.
type memQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	frames [][]byte
	closed bool
}

func newMemQueue() *memQueue {
	q := &memQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *memQueue) push(frame []byte) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	q.frames = append(q.frames, frame)
	q.cond.Signal()
	return nil
}

// pushAll enqueues every frame or none (connection closed), mirroring the
// TCP side's single contiguous Write: a chunked batch is never partially
// delivered.
func (q *memQueue) pushAll(frames [][]byte) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	q.frames = append(q.frames, frames...)
	q.cond.Broadcast()
	return nil
}

func (q *memQueue) pop() ([]byte, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.frames) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.frames) == 0 {
		return nil, ErrClosed
	}
	f := q.frames[0]
	q.frames = q.frames[1:]
	return f, nil
}

func (q *memQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// memConn is one side of an in-memory connection pair.
type memConn struct {
	out      *memQueue
	in       *memQueue
	remote   string
	peer     *memConn
	recvMu   sync.Mutex // guards pending (queue pops are ordered under it)
	pending  pendingMsgs
	countsMu sync.Mutex
	sent     uint64
	received uint64
}

func newMemPair(listenerAddr, dialerName string) (client, server *memConn) {
	a2b := newMemQueue()
	b2a := newMemQueue()
	client = &memConn{out: a2b, in: b2a, remote: listenerAddr}
	server = &memConn{out: b2a, in: a2b, remote: dialerName}
	client.peer = server
	server.peer = client
	return client, server
}

func (c *memConn) Send(m protocol.Message) error {
	frame, err := protocol.Marshal(m)
	if err != nil {
		return err
	}
	if err := c.out.push(frame); err != nil {
		return err
	}
	c.countsMu.Lock()
	c.sent += uint64(len(frame))
	c.countsMu.Unlock()
	return nil
}

func (c *memConn) SendBatch(ms []protocol.Message) error {
	if len(ms) == 0 {
		return nil
	}
	// The queue retains pushed frames, so they are encoded into a fresh
	// buffer (no reuse) and split at the frame boundaries AppendBatches
	// reports — byte accounting stays identical to the TCP implementation:
	// the total is the same contiguous encoding TCP writes, delivered
	// all-or-nothing.
	out, ends, err := protocol.AppendBatches(nil, nil, ms)
	if err != nil {
		return err
	}
	frames := make([][]byte, len(ends))
	start := 0
	for i, end := range ends {
		frames[i] = out[start:end]
		start = end
	}
	if err := c.out.pushAll(frames); err != nil {
		return err
	}
	c.countsMu.Lock()
	c.sent += uint64(len(out))
	c.countsMu.Unlock()
	return nil
}

func (c *memConn) Recv() (protocol.Message, error) {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	for {
		if m, ok := c.pending.pop(); ok {
			return m, nil
		}
		frame, err := c.in.pop()
		if err != nil {
			return nil, err
		}
		c.countsMu.Lock()
		c.received += uint64(len(frame))
		c.countsMu.Unlock()
		m, err := protocol.Unmarshal(frame)
		if err != nil {
			return nil, err
		}
		if !c.pending.absorb(m) {
			return m, nil
		}
	}
}

func (c *memConn) Close() error {
	c.out.close()
	c.in.close()
	return nil
}

func (c *memConn) RemoteAddr() string { return c.remote }

func (c *memConn) BytesSent() uint64 {
	c.countsMu.Lock()
	defer c.countsMu.Unlock()
	return c.sent
}

func (c *memConn) BytesReceived() uint64 {
	c.countsMu.Lock()
	defer c.countsMu.Unlock()
	return c.received
}

var (
	_ Network       = TCPNetwork{}
	_ TimeoutDialer = TCPNetwork{}
	_ Network       = (*MemNetwork)(nil)
	_ Conn          = (*tcpConn)(nil)
	_ Conn          = (*memConn)(nil)
	_ Listener      = (*tcpListener)(nil)
	_ Listener      = (*memListener)(nil)
)
