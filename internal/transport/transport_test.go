package transport

import (
	"errors"
	"sync"
	"testing"
	"time"

	"matrix/internal/geom"
	"matrix/internal/id"
	"matrix/internal/protocol"
)

// networks returns one instance of every Network implementation under a
// descriptive name, so every test runs against both.
func networks() map[string]Network {
	return map[string]Network{
		"mem": NewMemNetwork(),
		"tcp": TCPNetwork{},
	}
}

func TestSendRecvRoundTrip(t *testing.T) {
	for name, nw := range networks() {
		nw := nw
		t.Run(name, func(t *testing.T) {
			l, err := nw.Listen("")
			if err != nil {
				t.Fatalf("Listen: %v", err)
			}
			defer l.Close()

			type result struct {
				m   protocol.Message
				err error
			}
			got := make(chan result, 1)
			go func() {
				c, err := l.Accept()
				if err != nil {
					got <- result{err: err}
					return
				}
				defer c.Close()
				m, err := c.Recv()
				got <- result{m: m, err: err}
			}()

			c, err := nw.Dial(l.Addr())
			if err != nil {
				t.Fatalf("Dial: %v", err)
			}
			defer c.Close()
			want := &protocol.LoadReport{Server: 3, Clients: 42, QueueLen: 7}
			if err := c.Send(want); err != nil {
				t.Fatalf("Send: %v", err)
			}
			r := <-got
			if r.err != nil {
				t.Fatalf("server side: %v", r.err)
			}
			lr, ok := r.m.(*protocol.LoadReport)
			if !ok {
				t.Fatalf("got %T", r.m)
			}
			if lr.Server != 3 || lr.Clients != 42 || lr.QueueLen != 7 {
				t.Fatalf("payload mismatch: %+v", lr)
			}
		})
	}
}

func TestBidirectionalAndOrdering(t *testing.T) {
	for name, nw := range networks() {
		nw := nw
		t.Run(name, func(t *testing.T) {
			l, err := nw.Listen("")
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()

			const n = 50
			errs := make(chan error, 1)
			go func() {
				c, err := l.Accept()
				if err != nil {
					errs <- err
					return
				}
				defer c.Close()
				// Echo every message back.
				for i := 0; i < n; i++ {
					m, err := c.Recv()
					if err != nil {
						errs <- err
						return
					}
					if err := c.Send(m); err != nil {
						errs <- err
						return
					}
				}
				errs <- nil
			}()

			c, err := nw.Dial(l.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			for i := 0; i < n; i++ {
				if err := c.Send(&protocol.GameUpdate{Seq: id.PacketSeq(1000 + i)}); err != nil {
					t.Fatalf("Send %d: %v", i, err)
				}
			}
			for i := 0; i < n; i++ {
				m, err := c.Recv()
				if err != nil {
					t.Fatalf("Recv %d: %v", i, err)
				}
				gu, ok := m.(*protocol.GameUpdate)
				if !ok {
					t.Fatalf("Recv %d: %T", i, m)
				}
				if gu.Seq != id.PacketSeq(1000+i) {
					t.Fatalf("out of order: got %d at index %d", gu.Seq, i)
				}
			}
			if err := <-errs; err != nil {
				t.Fatalf("server: %v", err)
			}
		})
	}
}

func TestRecvAfterCloseFails(t *testing.T) {
	for name, nw := range networks() {
		nw := nw
		t.Run(name, func(t *testing.T) {
			l, err := nw.Listen("")
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			accepted := make(chan Conn, 1)
			go func() {
				c, err := l.Accept()
				if err == nil {
					accepted <- c
				}
			}()
			c, err := nw.Dial(l.Addr())
			if err != nil {
				t.Fatal(err)
			}
			s := <-accepted
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}
			done := make(chan error, 1)
			go func() {
				_, err := s.Recv()
				done <- err
			}()
			select {
			case err := <-done:
				if err == nil {
					t.Fatal("Recv after peer close must fail")
				}
			case <-time.After(5 * time.Second):
				t.Fatal("Recv did not observe close")
			}
			s.Close()
		})
	}
}

func TestDialUnknownAddr(t *testing.T) {
	mem := NewMemNetwork()
	if _, err := mem.Dial("mem:999"); !errors.Is(err, ErrNoSuchAddr) {
		t.Errorf("mem dial unknown: %v", err)
	}
	if _, err := (TCPNetwork{}).Dial("127.0.0.1:1"); err == nil {
		t.Error("tcp dial closed port should fail")
	}
}

func TestMemListenDuplicateAddr(t *testing.T) {
	mem := NewMemNetwork()
	l, err := mem.Listen("svc")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := mem.Listen("svc"); !errors.Is(err, ErrAddrInUse) {
		t.Errorf("duplicate listen: %v", err)
	}
}

func TestMemListenerCloseReleasesAddr(t *testing.T) {
	mem := NewMemNetwork()
	l, err := mem.Listen("svc")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := mem.Dial("svc"); !errors.Is(err, ErrNoSuchAddr) {
		t.Errorf("dial after close: %v", err)
	}
	// Address is reusable.
	l2, err := mem.Listen("svc")
	if err != nil {
		t.Fatalf("relisten: %v", err)
	}
	l2.Close()
}

func TestListenerCloseUnblocksAccept(t *testing.T) {
	for name, nw := range networks() {
		nw := nw
		t.Run(name, func(t *testing.T) {
			l, err := nw.Listen("")
			if err != nil {
				t.Fatal(err)
			}
			done := make(chan error, 1)
			go func() {
				_, err := l.Accept()
				done <- err
			}()
			time.Sleep(10 * time.Millisecond)
			l.Close()
			select {
			case err := <-done:
				if err == nil {
					t.Fatal("Accept must fail after Close")
				}
			case <-time.After(5 * time.Second):
				t.Fatal("Accept did not unblock")
			}
		})
	}
}

func TestByteAccounting(t *testing.T) {
	mem := NewMemNetwork()
	l, err := mem.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	c, err := mem.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s := <-accepted
	defer s.Close()

	msg := &protocol.RangeUpdate{Server: 1, Bounds: geom.R(0, 0, 5, 5)}
	wantSize, err := protocol.Size(msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send(msg); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recv(); err != nil {
		t.Fatal(err)
	}
	if got := c.BytesSent(); got != uint64(wantSize) {
		t.Errorf("BytesSent = %d, want %d", got, wantSize)
	}
	if got := s.BytesReceived(); got != uint64(wantSize) {
		t.Errorf("BytesReceived = %d, want %d", got, wantSize)
	}
}

func TestMemConcurrentSenders(t *testing.T) {
	mem := NewMemNetwork()
	l, err := mem.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	c, err := mem.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s := <-accepted
	defer s.Close()

	const senders, per = 4, 100
	var wg sync.WaitGroup
	for i := 0; i < senders; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				if err := c.Send(&protocol.Ack{Of: protocol.TypeLoadReport}); err != nil {
					t.Errorf("Send: %v", err)
					return
				}
			}
		}()
	}
	recvDone := make(chan int, 1)
	go func() {
		n := 0
		for n < senders*per {
			if _, err := s.Recv(); err != nil {
				break
			}
			n++
		}
		recvDone <- n
	}()
	wg.Wait()
	select {
	case n := <-recvDone:
		if n != senders*per {
			t.Errorf("received %d, want %d", n, senders*per)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("receiver stalled")
	}
}

func TestProtocolSizeMatchesMarshal(t *testing.T) {
	msgs := []protocol.Message{
		&protocol.Ack{Of: protocol.TypeLoadReport},
		&protocol.GameUpdate{Payload: []byte("abcdef")},
		&protocol.RegisterRequest{Addr: "host:1", Radius: 3},
	}
	for _, m := range msgs {
		frame, err := protocol.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		n, err := protocol.Size(m)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(frame) {
			t.Errorf("%v: Size=%d, frame=%d", m.MsgType(), n, len(frame))
		}
	}
}
