package transport

import (
	"errors"
	"sync"
	"testing"
	"time"

	"matrix/internal/geom"
	"matrix/internal/id"
	"matrix/internal/protocol"
)

// networks returns one instance of every Network implementation under a
// descriptive name, so every test runs against both.
func networks() map[string]Network {
	return map[string]Network{
		"mem": NewMemNetwork(),
		"tcp": TCPNetwork{},
	}
}

func TestSendRecvRoundTrip(t *testing.T) {
	for name, nw := range networks() {
		nw := nw
		t.Run(name, func(t *testing.T) {
			l, err := nw.Listen("")
			if err != nil {
				t.Fatalf("Listen: %v", err)
			}
			defer l.Close()

			type result struct {
				m   protocol.Message
				err error
			}
			got := make(chan result, 1)
			go func() {
				c, err := l.Accept()
				if err != nil {
					got <- result{err: err}
					return
				}
				defer c.Close()
				m, err := c.Recv()
				got <- result{m: m, err: err}
			}()

			c, err := nw.Dial(l.Addr())
			if err != nil {
				t.Fatalf("Dial: %v", err)
			}
			defer c.Close()
			want := &protocol.LoadReport{Server: 3, Clients: 42, QueueLen: 7}
			if err := c.Send(want); err != nil {
				t.Fatalf("Send: %v", err)
			}
			r := <-got
			if r.err != nil {
				t.Fatalf("server side: %v", r.err)
			}
			lr, ok := r.m.(*protocol.LoadReport)
			if !ok {
				t.Fatalf("got %T", r.m)
			}
			if lr.Server != 3 || lr.Clients != 42 || lr.QueueLen != 7 {
				t.Fatalf("payload mismatch: %+v", lr)
			}
		})
	}
}

func TestBidirectionalAndOrdering(t *testing.T) {
	for name, nw := range networks() {
		nw := nw
		t.Run(name, func(t *testing.T) {
			l, err := nw.Listen("")
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()

			const n = 50
			errs := make(chan error, 1)
			go func() {
				c, err := l.Accept()
				if err != nil {
					errs <- err
					return
				}
				defer c.Close()
				// Echo every message back.
				for i := 0; i < n; i++ {
					m, err := c.Recv()
					if err != nil {
						errs <- err
						return
					}
					if err := c.Send(m); err != nil {
						errs <- err
						return
					}
				}
				errs <- nil
			}()

			c, err := nw.Dial(l.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			for i := 0; i < n; i++ {
				if err := c.Send(&protocol.GameUpdate{Seq: id.PacketSeq(1000 + i)}); err != nil {
					t.Fatalf("Send %d: %v", i, err)
				}
			}
			for i := 0; i < n; i++ {
				m, err := c.Recv()
				if err != nil {
					t.Fatalf("Recv %d: %v", i, err)
				}
				gu, ok := m.(*protocol.GameUpdate)
				if !ok {
					t.Fatalf("Recv %d: %T", i, m)
				}
				if gu.Seq != id.PacketSeq(1000+i) {
					t.Fatalf("out of order: got %d at index %d", gu.Seq, i)
				}
			}
			if err := <-errs; err != nil {
				t.Fatalf("server: %v", err)
			}
		})
	}
}

func TestRecvAfterCloseFails(t *testing.T) {
	for name, nw := range networks() {
		nw := nw
		t.Run(name, func(t *testing.T) {
			l, err := nw.Listen("")
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			accepted := make(chan Conn, 1)
			go func() {
				c, err := l.Accept()
				if err == nil {
					accepted <- c
				}
			}()
			c, err := nw.Dial(l.Addr())
			if err != nil {
				t.Fatal(err)
			}
			s := <-accepted
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}
			done := make(chan error, 1)
			go func() {
				_, err := s.Recv()
				done <- err
			}()
			select {
			case err := <-done:
				if err == nil {
					t.Fatal("Recv after peer close must fail")
				}
			case <-time.After(5 * time.Second):
				t.Fatal("Recv did not observe close")
			}
			s.Close()
		})
	}
}

func TestDialUnknownAddr(t *testing.T) {
	mem := NewMemNetwork()
	if _, err := mem.Dial("mem:999"); !errors.Is(err, ErrNoSuchAddr) {
		t.Errorf("mem dial unknown: %v", err)
	}
	if _, err := (TCPNetwork{}).Dial("127.0.0.1:1"); err == nil {
		t.Error("tcp dial closed port should fail")
	}
}

func TestMemListenDuplicateAddr(t *testing.T) {
	mem := NewMemNetwork()
	l, err := mem.Listen("svc")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := mem.Listen("svc"); !errors.Is(err, ErrAddrInUse) {
		t.Errorf("duplicate listen: %v", err)
	}
}

func TestMemListenerCloseReleasesAddr(t *testing.T) {
	mem := NewMemNetwork()
	l, err := mem.Listen("svc")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := mem.Dial("svc"); !errors.Is(err, ErrNoSuchAddr) {
		t.Errorf("dial after close: %v", err)
	}
	// Address is reusable.
	l2, err := mem.Listen("svc")
	if err != nil {
		t.Fatalf("relisten: %v", err)
	}
	l2.Close()
}

func TestListenerCloseUnblocksAccept(t *testing.T) {
	for name, nw := range networks() {
		nw := nw
		t.Run(name, func(t *testing.T) {
			l, err := nw.Listen("")
			if err != nil {
				t.Fatal(err)
			}
			done := make(chan error, 1)
			go func() {
				_, err := l.Accept()
				done <- err
			}()
			time.Sleep(10 * time.Millisecond)
			l.Close()
			select {
			case err := <-done:
				if err == nil {
					t.Fatal("Accept must fail after Close")
				}
			case <-time.After(5 * time.Second):
				t.Fatal("Accept did not unblock")
			}
		})
	}
}

func TestByteAccounting(t *testing.T) {
	mem := NewMemNetwork()
	l, err := mem.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	c, err := mem.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s := <-accepted
	defer s.Close()

	msg := &protocol.RangeUpdate{Server: 1, Bounds: geom.R(0, 0, 5, 5)}
	wantSize, err := protocol.Size(msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send(msg); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recv(); err != nil {
		t.Fatal(err)
	}
	if got := c.BytesSent(); got != uint64(wantSize) {
		t.Errorf("BytesSent = %d, want %d", got, wantSize)
	}
	if got := s.BytesReceived(); got != uint64(wantSize) {
		t.Errorf("BytesReceived = %d, want %d", got, wantSize)
	}
}

func TestMemConcurrentSenders(t *testing.T) {
	mem := NewMemNetwork()
	l, err := mem.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	c, err := mem.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s := <-accepted
	defer s.Close()

	const senders, per = 4, 100
	var wg sync.WaitGroup
	for i := 0; i < senders; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				if err := c.Send(&protocol.Ack{Of: protocol.TypeLoadReport}); err != nil {
					t.Errorf("Send: %v", err)
					return
				}
			}
		}()
	}
	recvDone := make(chan int, 1)
	go func() {
		n := 0
		for n < senders*per {
			if _, err := s.Recv(); err != nil {
				break
			}
			n++
		}
		recvDone <- n
	}()
	wg.Wait()
	select {
	case n := <-recvDone:
		if n != senders*per {
			t.Errorf("received %d, want %d", n, senders*per)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("receiver stalled")
	}
}

func TestProtocolSizeMatchesMarshal(t *testing.T) {
	msgs := []protocol.Message{
		&protocol.Ack{Of: protocol.TypeLoadReport},
		&protocol.GameUpdate{Payload: []byte("abcdef")},
		&protocol.RegisterRequest{Addr: "host:1", Radius: 3},
	}
	for _, m := range msgs {
		frame, err := protocol.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		n, err := protocol.Size(m)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(frame) {
			t.Errorf("%v: Size=%d, frame=%d", m.MsgType(), n, len(frame))
		}
	}
}

// connPair dials a fresh connection pair on nw.
func connPair(t *testing.T, nw Network) (client, server Conn) {
	t.Helper()
	l, err := nw.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	client, err = nw.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	server = <-accepted
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

// batchSample is a mixed per-tick batch: forwards plus a state transfer,
// what one peer receives in one tick.
func batchSample() []protocol.Message {
	return []protocol.Message{
		&protocol.Forward{From: 1, Update: protocol.GameUpdate{
			Client: 7, Seq: 1, Kind: protocol.KindMove,
			Origin: geom.Pt(1, 2), Dest: geom.Pt(3, 4), Payload: []byte("aa")}},
		&protocol.Forward{From: 1, Update: protocol.GameUpdate{
			Client: 8, Seq: 2, Kind: protocol.KindAction,
			Origin: geom.Pt(5, 6), Dest: geom.Pt(5, 6), Payload: []byte("bbb")}},
		&protocol.StateTransfer{From: 1, To: 2, Final: true,
			Objects: []protocol.ObjectState{{Client: 9, Pos: geom.Pt(7, 8)}}},
	}
}

// TestSendBatchRoundTrip sends one batch and expects Recv to unpack the
// messages transparently, in order, on both transports.
func TestSendBatchRoundTrip(t *testing.T) {
	for name, nw := range networks() {
		nw := nw
		t.Run(name, func(t *testing.T) {
			c, s := connPair(t, nw)
			want := batchSample()
			if err := c.SendBatch(want); err != nil {
				t.Fatalf("SendBatch: %v", err)
			}
			// A follow-up single send must arrive after the batch contents.
			if err := c.Send(&protocol.Ack{Of: protocol.TypeForward}); err != nil {
				t.Fatalf("Send: %v", err)
			}
			for i, w := range want {
				got, err := s.Recv()
				if err != nil {
					t.Fatalf("Recv %d: %v", i, err)
				}
				if got.MsgType() != w.MsgType() {
					t.Fatalf("Recv %d: type %v, want %v", i, got.MsgType(), w.MsgType())
				}
				if f, ok := got.(*protocol.Forward); ok {
					if f.Update.Client != w.(*protocol.Forward).Update.Client {
						t.Fatalf("Recv %d: client %v", i, f.Update.Client)
					}
				}
			}
			tail, err := s.Recv()
			if err != nil {
				t.Fatalf("tail Recv: %v", err)
			}
			if tail.MsgType() != protocol.TypeAck {
				t.Fatalf("tail = %v, want ack", tail.MsgType())
			}
		})
	}
}

// TestSendBatchByteParity is the bandwidth-faithfulness contract: for the
// same batch, TCP and the in-memory transport must report identical
// BytesSent and BytesReceived (and a single-message batch must cost
// exactly what Send costs).
func TestSendBatchByteParity(t *testing.T) {
	counts := make(map[string][2]uint64)
	for name, nw := range networks() {
		nw := nw
		t.Run(name, func(t *testing.T) {
			c, s := connPair(t, nw)
			if err := c.SendBatch(batchSample()); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < len(batchSample()); i++ {
				if _, err := s.Recv(); err != nil {
					t.Fatal(err)
				}
			}
			counts[name] = [2]uint64{c.BytesSent(), s.BytesReceived()}
			if counts[name][0] != counts[name][1] {
				t.Errorf("%s: sent %d != received %d", name, counts[name][0], counts[name][1])
			}

			// Single-message parity with Send.
			c2, s2 := connPair(t, nw)
			single := &protocol.LoadReport{Server: 3, Clients: 10, QueueLen: 1}
			wantSize, err := protocol.Size(single)
			if err != nil {
				t.Fatal(err)
			}
			if err := c2.SendBatch([]protocol.Message{single}); err != nil {
				t.Fatal(err)
			}
			if _, err := s2.Recv(); err != nil {
				t.Fatal(err)
			}
			if got := c2.BytesSent(); got != uint64(wantSize) {
				t.Errorf("%s: single-message batch sent %d bytes, Send costs %d", name, got, wantSize)
			}
		})
	}
	if len(counts) == 2 && counts["mem"] != counts["tcp"] {
		t.Errorf("byte accounting diverged: mem %v, tcp %v", counts["mem"], counts["tcp"])
	}
}

// TestSendBatchEmpty is a no-op and must not confuse the stream.
func TestSendBatchEmpty(t *testing.T) {
	for name, nw := range networks() {
		nw := nw
		t.Run(name, func(t *testing.T) {
			c, s := connPair(t, nw)
			if err := c.SendBatch(nil); err != nil {
				t.Fatal(err)
			}
			if got := c.BytesSent(); got != 0 {
				t.Errorf("empty batch sent %d bytes", got)
			}
			if err := c.Send(&protocol.Ack{Of: protocol.TypeAck}); err != nil {
				t.Fatal(err)
			}
			m, err := s.Recv()
			if err != nil || m.MsgType() != protocol.TypeAck {
				t.Fatalf("got %v, %v", m, err)
			}
		})
	}
}
